#!/bin/sh
# Persistent-store smoke test (make store-smoke / make ci), two legs:
#
# 1. Crash durability: start jasd with -store-dir, serve the golden
#    quick-scale run, SIGKILL the daemon (no drain, no flush), restart it
#    on the same store, resubmit the same config — the report must be
#    byte-identical and /metrics must show zero simulations of any kind:
#    everything hydrated from disk.
#
# 2. Replication: two replicas share one store directory. The same config
#    submitted to each yields byte-identical reports at the cost of one
#    request-level and one detail simulation TOTAL across both replicas —
#    the second replica hits the entries the first one wrote. A router
#    instance over both replicas proxies requests end to end.
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}
tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/jasd" ./cmd/jasd
$GO build -o "$tmp/jasctl" ./cmd/jasctl

# wait_addr FILE: block until jasd has written its resolved address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "store-smoke: jasd did not start ($1)" >&2
            cat "$tmp"/*.log >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "http://$(cat "$1")"
}

# sim_count ADDR KIND: read one jasd_sims_total series off /metrics.
sim_count() {
    "$tmp/jasctl" -addr "$1" metrics | grep -F "jasd_sims_total{kind=\"$2\"}" | awk '{print $2}'
}

# --- Leg 1: kill -9, restart, zero re-simulation -------------------------

store1="$tmp/store1"
"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr1" -store-dir "$store1" 2>"$tmp/jasd1.log" &
pid=$!
pids="$pid"
addr=$(wait_addr "$tmp/addr1")

"$tmp/jasctl" -addr "$addr" submit -scale quick -seed 1 -wait -format md >"$tmp/report1.md"
if ! diff -u testdata/golden_report_quick.md "$tmp/report1.md"; then
    echo "store-smoke: stored report drifted from golden" >&2
    exit 1
fi
if [ "$(sim_count "$addr" request-level)" != "1" ] || [ "$(sim_count "$addr" detail)" != "1" ]; then
    echo "store-smoke: first run did not simulate once per fidelity" >&2
    "$tmp/jasctl" -addr "$addr" metrics >&2
    exit 1
fi

# Crash hard: no drain, no goodbye. Durability must not depend on a clean
# shutdown — entries were written atomically when each artifact finished.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pids=""

"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr2" -store-dir "$store1" 2>"$tmp/jasd2.log" &
pid=$!
pids="$pid"
addr=$(wait_addr "$tmp/addr2")

"$tmp/jasctl" -addr "$addr" submit -scale quick -seed 1 -wait -format md >"$tmp/report2.md"
if ! cmp -s "$tmp/report1.md" "$tmp/report2.md"; then
    echo "store-smoke: post-restart report differs from pre-crash report" >&2
    exit 1
fi
for kind in request-level detail variant; do
    if [ "$(sim_count "$addr" "$kind")" != "0" ]; then
        echo "store-smoke: restarted daemon re-simulated ($kind)" >&2
        "$tmp/jasctl" -addr "$addr" metrics >&2
        exit 1
    fi
done
hits=$("$tmp/jasctl" -addr "$addr" metrics | grep -F 'jasd_store_hits_total{kind="request-level"}' | awk '{print $2}')
if [ "${hits:-0}" -lt 1 ]; then
    echo "store-smoke: restart served no store hits" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid"
pids=""
if ! grep -q "drained cleanly" "$tmp/jasd2.log"; then
    echo "store-smoke: restarted daemon did not drain" >&2
    cat "$tmp/jasd2.log" >&2
    exit 1
fi

# --- Leg 2: two replicas, one store, one simulation total ----------------

store2="$tmp/store2"
"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addrA" -store-dir "$store2" 2>"$tmp/jasdA.log" &
pidA=$!
pids="$pidA"
"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addrB" -store-dir "$store2" 2>"$tmp/jasdB.log" &
pidB=$!
pids="$pids $pidB"
addrA=$(wait_addr "$tmp/addrA")
addrB=$(wait_addr "$tmp/addrB")

"$tmp/jasctl" -addr "$addrA" submit -scale quick -seed 3 -wait -format md >"$tmp/reportA.md"
"$tmp/jasctl" -addr "$addrB" submit -scale quick -seed 3 -wait -format md >"$tmp/reportB.md"
if ! cmp -s "$tmp/reportA.md" "$tmp/reportB.md"; then
    echo "store-smoke: replicas served different reports for one config" >&2
    exit 1
fi
for kind in request-level detail; do
    total=$(( $(sim_count "$addrA" "$kind") + $(sim_count "$addrB" "$kind") ))
    if [ "$total" != "1" ]; then
        echo "store-smoke: $kind simulated $total times across two replicas, want 1" >&2
        "$tmp/jasctl" -addr "$addrA" metrics >&2
        "$tmp/jasctl" -addr "$addrB" metrics >&2
        exit 1
    fi
done

# The consistent-hash router fronts both replicas: a fresh config routed
# through it lands on exactly one replica, and ID-bearing follow-ups find
# the same owner (the report fetch below would 404 on the wrong replica).
"$tmp/jasd" -route "$addrA,$addrB" -addr 127.0.0.1:0 -addrfile "$tmp/addrR" 2>"$tmp/jasdR.log" &
pidR=$!
pids="$pids $pidR"
addrR=$(wait_addr "$tmp/addrR")

"$tmp/jasctl" -addr "$addrR" submit -scale quick -seed 4 -wait -format md >"$tmp/reportR.md"
"$tmp/jasctl" -addr "$addrR" submit -scale quick -seed 4 -wait -format md >"$tmp/reportR2.md"
if ! cmp -s "$tmp/reportR.md" "$tmp/reportR2.md"; then
    echo "store-smoke: routed resubmission served a different report" >&2
    exit 1
fi

for p in $pids; do kill -TERM "$p" 2>/dev/null || true; done
for p in $pids; do wait "$p" 2>/dev/null || true; done
pids=""
echo "store-smoke: ok"
