#!/bin/sh
# Loadgen smoke test (make loadgen-smoke / make ci): the spec-driven load
# generator end to end against a real daemon. jasrun records a ramp
# arrival trace standalone (-trace-only: zero simulations); jasd then
# serves a steady job, the ramp-spec job, and the replayed-trace job.
# Required invariants: the three load shapes get three distinct job IDs
# (arrival participates in the canonical config), the ramp job and its
# trace replay produce byte-identical markdown reports, re-submitting the
# trace dedups onto the same job, and re-recording the trace reproduces
# the file byte for byte.
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/jasd" ./cmd/jasd
$GO build -o "$tmp/jasctl" ./cmd/jasctl
$GO build -o "$tmp/jasrun" ./cmd/jasrun

cat >"$tmp/ramp.json" <<'EOF'
{"version":1,"cohorts":[{"name":"rampers","process":{"kind":"ramp","start_factor":0.5,"target_factor":1.5,"steps":4,"step_ms":2000}}]}
EOF

# Record the ramp's arrival trace without simulating anything, twice: the
# same spec + seed must produce a byte-identical trace.
"$tmp/jasrun" -scale quick -seed 7 -duration-ms 8000 -ramp-ms 2000 \
    -arrival "$tmp/ramp.json" -record-trace "$tmp/ramp.trace" -trace-only
"$tmp/jasrun" -scale quick -seed 7 -duration-ms 8000 -ramp-ms 2000 \
    -arrival "$tmp/ramp.json" -record-trace "$tmp/ramp2.trace" -trace-only
if ! cmp -s "$tmp/ramp.trace" "$tmp/ramp2.trace"; then
    echo "loadgen-smoke: same spec + seed recorded different traces" >&2
    exit 1
fi

"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -workers 4 2>"$tmp/jasd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "loadgen-smoke: jasd did not start" >&2
        cat "$tmp/jasd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="http://$(cat "$tmp/addr")"

submit_id() {
    # submit without -wait prints the job status JSON; extract the id.
    "$tmp/jasctl" -addr "$addr" submit -scale quick -seed 7 \
        -duration-ms 8000 -ramp-ms 2000 "$@" |
        sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -1
}

steady_id=$(submit_id)
ramp_id=$(submit_id -arrival "$tmp/ramp.json")
replay_id=$(submit_id -replay-trace "$tmp/ramp.trace")
if [ -z "$steady_id" ] || [ -z "$ramp_id" ] || [ -z "$replay_id" ]; then
    echo "loadgen-smoke: missing job id (steady=$steady_id ramp=$ramp_id replay=$replay_id)" >&2
    exit 1
fi

# Three load shapes, three distinct jobs: the arrival spec is part of the
# canonical config and the job ID hash.
if [ "$ramp_id" = "$steady_id" ] || [ "$replay_id" = "$steady_id" ] || [ "$replay_id" = "$ramp_id" ]; then
    echo "loadgen-smoke: load shapes coalesced (steady=$steady_id ramp=$ramp_id replay=$replay_id)" >&2
    exit 1
fi

# Re-submitting the same trace dedups onto the existing replay job.
replay_again=$(submit_id -replay-trace "$tmp/ramp.trace")
if [ "$replay_again" != "$replay_id" ]; then
    echo "loadgen-smoke: identical trace submission got a new job ($replay_again vs $replay_id)" >&2
    exit 1
fi

# The ramp job and its trace replay must render byte-identical markdown
# reports (markdown carries no job identity; the trace replays exactly
# the arrivals the spec generated).
"$tmp/jasctl" -addr "$addr" report -wait -format md "$ramp_id" >"$tmp/ramp.md"
"$tmp/jasctl" -addr "$addr" report -wait -format md "$replay_id" >"$tmp/replay.md"
if ! cmp -s "$tmp/ramp.md" "$tmp/replay.md"; then
    echo "loadgen-smoke: trace replay report differs from the generating run" >&2
    diff "$tmp/ramp.md" "$tmp/replay.md" >&2 || true
    exit 1
fi
# Re-fetching the replay report is byte-stable too.
"$tmp/jasctl" -addr "$addr" report -wait -format md "$replay_id" >"$tmp/replay2.md"
if ! cmp -s "$tmp/replay.md" "$tmp/replay2.md"; then
    echo "loadgen-smoke: replay report not byte-stable across fetches" >&2
    exit 1
fi

# The job status surfaces the load shape.
"$tmp/jasctl" -addr "$addr" status "$ramp_id" >"$tmp/ramp.status"
if ! grep -q '"arrival": *"1 cohort (ramp)"' "$tmp/ramp.status"; then
    echo "loadgen-smoke: ramp status missing arrival summary" >&2
    cat "$tmp/ramp.status" >&2
    exit 1
fi
"$tmp/jasctl" -addr "$addr" status "$replay_id" >"$tmp/replay.status"
if ! grep -q '"arrival": *"trace (8 windows)"' "$tmp/replay.status"; then
    echo "loadgen-smoke: replay status missing trace summary" >&2
    cat "$tmp/replay.status" >&2
    exit 1
fi

# A spec naming a class the pack does not have is a 400, not a job.
if "$tmp/jasctl" -addr "$addr" submit -scale quick \
    -arrival /dev/stdin >"$tmp/bad.out" 2>&1 <<'EOF'
{"version":1,"cohorts":[{"name":"a","mix":{"Checkout":2}}]}
EOF
then
    echo "loadgen-smoke: unknown mix class was accepted" >&2
    cat "$tmp/bad.out" >&2
    exit 1
fi
if ! grep -q "unknown class" "$tmp/bad.out"; then
    echo "loadgen-smoke: bad-spec rejection lacks the class error" >&2
    cat "$tmp/bad.out" >&2
    exit 1
fi

# Re-recording the trace (replaying it into a new trace file) reproduces
# the original file byte for byte — the record -> replay -> re-record
# round trip, through the same binaries the jobs used.
"$tmp/jasrun" -scale quick -seed 7 -duration-ms 8000 -ramp-ms 2000 \
    -replay-trace "$tmp/ramp.trace" -record-trace "$tmp/reramp.trace" -trace-only
if ! cmp -s "$tmp/ramp.trace" "$tmp/reramp.trace"; then
    echo "loadgen-smoke: record -> replay -> re-record is not byte-identical" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid"
pid=""
if ! grep -q "drained cleanly" "$tmp/jasd.log"; then
    echo "loadgen-smoke: graceful shutdown did not drain" >&2
    cat "$tmp/jasd.log" >&2
    exit 1
fi
echo "loadgen-smoke: ok (3 shapes, 3 jobs, trace replay byte-identical)"
