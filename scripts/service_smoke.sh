#!/bin/sh
# Service smoke test (make service-smoke / make ci): start jasd on a
# random port, submit the quick-scale run through jasctl, and require the
# served markdown report to be byte-identical to the pinned golden file —
# the serving layer must not perturb the deterministic pipeline. Also
# checks that SIGTERM drains cleanly.
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/jasd" ./cmd/jasd
$GO build -o "$tmp/jasctl" ./cmd/jasctl

"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -workers 2 2>"$tmp/jasd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "service-smoke: jasd did not start" >&2
        cat "$tmp/jasd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="http://$(cat "$tmp/addr")"

"$tmp/jasctl" -addr "$addr" submit -scale quick -seed 1 -wait -format md >"$tmp/report.md"
if ! diff -u testdata/golden_report_quick.md "$tmp/report.md"; then
    echo "service-smoke: served report drifted from golden" >&2
    exit 1
fi

# The metrics surface must reflect the run we just served.
"$tmp/jasctl" -addr "$addr" metrics >"$tmp/metrics.txt"
for want in 'jasd_jobs_total{state="done"} 1' 'jasd_queue_depth 0' 'jasd_jops'; do
    if ! grep -qF "$want" "$tmp/metrics.txt"; then
        echo "service-smoke: /metrics missing '$want'" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    fi
done

kill -TERM "$pid"
wait "$pid"
pid=""
if ! grep -q "drained cleanly" "$tmp/jasd.log"; then
    echo "service-smoke: graceful shutdown did not drain" >&2
    cat "$tmp/jasd.log" >&2
    exit 1
fi
echo "service-smoke: ok"
