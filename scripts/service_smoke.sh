#!/bin/sh
# Service smoke test (make service-smoke / make ci): start jasd on a
# random port, submit the quick-scale run through jasctl, and require the
# served markdown report to be byte-identical to the pinned golden file —
# the serving layer must not perturb the deterministic pipeline. Then
# cancel an in-flight run with jasctl cancel, require the RSS-proxy
# metrics (resident jobs, hub bytes) to return to baseline once the
# done-ring TTL evicts everything, and check that SIGTERM drains cleanly.
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/jasd" ./cmd/jasd
$GO build -o "$tmp/jasctl" ./cmd/jasctl

# -done-ttl is short so the retention assertions below can watch eviction
# bring the resident gauges back to zero within the smoke run.
"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -workers 2 -done-ttl 2s 2>"$tmp/jasd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "service-smoke: jasd did not start" >&2
        cat "$tmp/jasd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="http://$(cat "$tmp/addr")"

"$tmp/jasctl" -addr "$addr" submit -scale quick -seed 1 -wait -format md >"$tmp/report.md"
if ! diff -u testdata/golden_report_quick.md "$tmp/report.md"; then
    echo "service-smoke: served report drifted from golden" >&2
    exit 1
fi

# The metrics surface must reflect the run we just served.
"$tmp/jasctl" -addr "$addr" metrics >"$tmp/metrics.txt"
for want in 'jasd_jobs_total{state="done"} 1' 'jasd_queue_depth 0' 'jasd_jops'; do
    if ! grep -qF "$want" "$tmp/metrics.txt"; then
        echo "service-smoke: /metrics missing '$want'" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    fi
done

# Cancellation: submit a run far too long to finish, wait for it to start
# producing windows, then cancel it. The run must retire as canceled (no
# report) and the cancellation must be counted.
"$tmp/jasctl" -addr "$addr" submit -scale quick -seed 2 -duration-ms 600000 >"$tmp/submit.json"
id=$(grep -o '"id": "[^"]*"' "$tmp/submit.json" | head -1 | cut -d'"' -f4)
if [ -z "$id" ]; then
    echo "service-smoke: no job id in submit response" >&2
    cat "$tmp/submit.json" >&2
    exit 1
fi
i=0
while ! "$tmp/jasctl" -addr "$addr" status "$id" | grep -q '"windows_streamed": [1-9]'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "service-smoke: long run produced no windows" >&2
        exit 1
    fi
    sleep 0.1
done
"$tmp/jasctl" -addr "$addr" cancel "$id" >/dev/null
i=0
while ! "$tmp/jasctl" -addr "$addr" status "$id" | grep -q '"state": "canceled"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "service-smoke: cancelled run did not abort" >&2
        "$tmp/jasctl" -addr "$addr" status "$id" >&2
        exit 1
    fi
    sleep 0.1
done
if ! "$tmp/jasctl" -addr "$addr" metrics | grep -qF 'jasd_jobs_cancelled_total 1'; then
    echo "service-smoke: cancellation not counted" >&2
    exit 1
fi

# Retention: after the done-ring TTL passes, both jobs (the finished
# golden run and the cancelled one) are evicted, so the RSS-proxy gauges
# fall back to their empty-service baseline.
sleep 3
"$tmp/jasctl" -addr "$addr" metrics >"$tmp/metrics_after.txt"
for want in 'jasd_resident_jobs 0' 'jasd_hub_bytes 0' 'jasd_jobs_evicted_total 2'; do
    if ! grep -qF "$want" "$tmp/metrics_after.txt"; then
        echo "service-smoke: retention metrics missing '$want'" >&2
        cat "$tmp/metrics_after.txt" >&2
        exit 1
    fi
done
if "$tmp/jasctl" -addr "$addr" status "$id" >/dev/null 2>&1; then
    echo "service-smoke: evicted job still answers status" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid"
pid=""
if ! grep -q "drained cleanly" "$tmp/jasd.log"; then
    echo "service-smoke: graceful shutdown did not drain" >&2
    cat "$tmp/jasd.log" >&2
    exit 1
fi
echo "service-smoke: ok"
