#!/bin/sh
# Sweep smoke test (make sweep-smoke / make ci): start jasd on a random
# port, submit a 12-cell page-size x detail-frac grid through jasctl
# sweep, and require the tentpole invariant end to end: every cell shares
# one heap capacity and differs only in detail-only knobs, so the whole
# grid must execute exactly ONE request-level simulation (asserted from
# /metrics) while each cell still gets its own detail run and report.
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/jasd" ./cmd/jasd
$GO build -o "$tmp/jasctl" ./cmd/jasctl

"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -workers 4 2>"$tmp/jasd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "sweep-smoke: jasd did not start" >&2
        cat "$tmp/jasd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="http://$(cat "$tmp/addr")"

# 2 page sizes x 6 detail fractions: the quick heap is a 16 MB multiple,
# so all 12 cells map to one RequestKey. Short durations keep CI fast.
cat >"$tmp/grid.json" <<'EOF'
{
  "base": {"scale": "quick", "seed": 7, "duration_ms": 8000, "ramp_ms": 2000},
  "axes": [
    {"param": "heap_page", "values": ["4K", "16M"]},
    {"param": "detail_frac", "values": [0.01, 0.02, 0.03, 0.04, 0.05, 0.06]}
  ]
}
EOF

"$tmp/jasctl" -addr "$addr" sweep -grid "$tmp/grid.json" -table >"$tmp/sweep.out" 2>"$tmp/sweep.err"

rows=$(grep -c '"job_id"' "$tmp/sweep.out" || true)
if [ "$rows" -ne 12 ]; then
    echo "sweep-smoke: expected 12 row lines, got $rows" >&2
    cat "$tmp/sweep.out" >&2
    exit 1
fi
if ! grep -q '"done":true.*"state":"done"' "$tmp/sweep.out"; then
    echo "sweep-smoke: stream did not end with a done terminal line" >&2
    cat "$tmp/sweep.out" >&2
    exit 1
fi
if grep -q '"state":"failed"' "$tmp/sweep.out"; then
    echo "sweep-smoke: a cell failed" >&2
    cat "$tmp/sweep.out" >&2
    exit 1
fi
# The comparison table (appended by -table) carries one line per cell.
if [ "$(grep -c '^| [0-9]' "$tmp/sweep.out")" -ne 12 ]; then
    echo "sweep-smoke: comparison table incomplete" >&2
    cat "$tmp/sweep.out" >&2
    exit 1
fi

# The tentpole assertion: 12 cells, ONE request-level simulation, 12
# detail simulations; the request-level cache saw 1 miss and 11 hits.
"$tmp/jasctl" -addr "$addr" metrics >"$tmp/metrics.txt"
for want in \
    'jasd_sims_total{kind="request-level"} 1' \
    'jasd_sims_total{kind="detail"} 12' \
    'jasd_request_cache_misses_total 1' \
    'jasd_request_cache_hits_total 11' \
    'jasd_sweeps_total{state="done"} 1' \
    'jasd_sweep_cells_total 12'; do
    if ! grep -qF "$want" "$tmp/metrics.txt"; then
        echo "sweep-smoke: /metrics missing '$want'" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    fi
done

# The sweep's status reports the sharing arithmetic directly.
id=$(sed -n 's/.*sweep \(sw[0-9a-f]*\) submitted.*/\1/p' "$tmp/sweep.err" | head -1)
if [ -z "$id" ]; then
    echo "sweep-smoke: no sweep id announced" >&2
    cat "$tmp/sweep.err" >&2
    exit 1
fi
"$tmp/jasctl" -addr "$addr" sweep status "$id" >"$tmp/status.json"
for want in '"cells": 12' '"distinct_request_keys": 1' '"state": "done"'; do
    if ! grep -qF "$want" "$tmp/status.json"; then
        echo "sweep-smoke: sweep status missing '$want'" >&2
        cat "$tmp/status.json" >&2
        exit 1
    fi
done

# A grid over the cell cap is rejected up front.
if "$tmp/jasctl" -addr "$addr" sweep -grid /dev/stdin -tail=false >"$tmp/cap.out" 2>&1 <<'EOF'
{
  "base": {"scale": "quick"},
  "axes": [{"param": "seed", "values": [1,2,3,4,5,6,7,8,9]},
           {"param": "ir", "values": [10,20,30,40,50,60,70,80]}]
}
EOF
then
    echo "sweep-smoke: oversized grid was accepted" >&2
    exit 1
fi
if ! grep -q "more than 64 cells" "$tmp/cap.out"; then
    echo "sweep-smoke: oversized grid rejected without the cap message" >&2
    cat "$tmp/cap.out" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid"
pid=""
if ! grep -q "drained cleanly" "$tmp/jasd.log"; then
    echo "sweep-smoke: graceful shutdown did not drain" >&2
    cat "$tmp/jasd.log" >&2
    exit 1
fi
echo "sweep-smoke: ok (12 cells, 1 request-level simulation)"
