#!/bin/sh
# Shard smoke test (make shard-smoke / make ci): the core-sharded detail
# schedule must be invisible in every result. jasrun -sharded must emit a
# quick-scale markdown report byte-identical to the pinned golden, a real
# jasd started with -sharded must serve the same bytes, and /metrics must
# surface the shard gauge and the per-shard merge-stall counters. On
# multi-core hosts this exercises the concurrent merge end to end; on
# 1-vCPU hosts the auto mode collapses to the fused loop and the smoke
# verifies exactly that collapse (gauge 0, identical bytes).
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# Standalone: the sharded report must match the golden byte for byte.
$GO run ./cmd/jasrun -sharded -scale quick -markdown >"$tmp/report_cli.md"
if ! diff -u testdata/golden_report_quick.md "$tmp/report_cli.md"; then
    echo "shard-smoke: jasrun -sharded report drifted from golden" >&2
    exit 1
fi

$GO build -o "$tmp/jasd" ./cmd/jasd
$GO build -o "$tmp/jasctl" ./cmd/jasctl

"$tmp/jasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -workers 2 -sharded 2>"$tmp/jasd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shard-smoke: jasd did not start" >&2
        cat "$tmp/jasd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="http://$(cat "$tmp/addr")"

"$tmp/jasctl" -addr "$addr" submit -scale quick -seed 1 -wait -format md >"$tmp/report_srv.md"
if ! diff -u testdata/golden_report_quick.md "$tmp/report_srv.md"; then
    echo "shard-smoke: served sharded report drifted from golden" >&2
    exit 1
fi

# The shard observability series must be present: the gauge always, and
# one merge-stall counter series per shard the gauge advertises (a 1-vCPU
# host advertises 0 shards and may legitimately expose no stall series).
"$tmp/jasctl" -addr "$addr" metrics >"$tmp/metrics.txt"
if ! grep -q '^jasd_detail_shards ' "$tmp/metrics.txt"; then
    echo "shard-smoke: /metrics missing jasd_detail_shards" >&2
    cat "$tmp/metrics.txt" >&2
    exit 1
fi
shards=$(awk '$1 == "jasd_detail_shards" { print int($2) }' "$tmp/metrics.txt")
stall_series=$(grep -c '^jasd_shard_merge_stalls_total{' "$tmp/metrics.txt" || true)
if [ "$stall_series" -lt "$shards" ]; then
    echo "shard-smoke: $shards shards advertised but only $stall_series merge-stall series" >&2
    cat "$tmp/metrics.txt" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid"
pid=""
echo "shard-smoke: ok (shards=$shards)"
