// Coscheduling: the Section 4.2.3 argument. For TPC-W-like workloads a
// large share of L2 misses are served by cache-to-cache transfers of
// modified lines, so scheduling communicating threads near each other pays
// off. The paper measures jas2004 and finds almost no modified cross-chip
// traffic — so intelligent thread co-scheduling would buy little.
//
// This example prints the Figure 9 source distribution and computes an
// upper bound on what perfect co-scheduling could save: the cycles spent on
// L2.75 transfers that nearer placement could turn into local hits.
package main

import (
	"fmt"
	"log"

	"jasworkload"
	"jasworkload/internal/power4"
)

func main() {
	cfg := jasworkload.DefaultConfig(jasworkload.ScaleQuick)
	d, err := jasworkload.RunDetail(cfg, "dsource", "cpi")
	if err != nil {
		log.Fatal(err)
	}
	f9, err := d.Fig9()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f9.String())

	f5src, err := d.Fig5()
	if err != nil {
		log.Fatal(err)
	}

	// Upper bound on co-scheduling benefit: every cross-chip transfer
	// (shared or modified) becomes a local L2 hit.
	p := power4.DefaultPenalties()
	crossShare := f9.Share[power4.SrcL275Shr] + f9.Share[power4.SrcL275Mod]
	ctr := d.SUT.AggregateCounters()
	missPerInst := ctr.Rate(power4.EvL1DLoadMiss)
	savedCyclesPerInst := crossShare * missPerInst * (p.RemoteL2 - p.L2Latency) * p.LoadExposure
	fmt.Printf("\nperfect co-scheduling upper bound:\n")
	fmt.Printf("  cross-chip share of L1 misses: %.1f%% (modified only: %.1f%%)\n",
		100*crossShare, 100*f9.ModifiedShare)
	fmt.Printf("  CPI saved at best: %.4f of %.2f  (%.2f%%)\n",
		savedCyclesPerInst, f5src.MeanCPI, 100*savedCyclesPerInst/f5src.MeanCPI)
	fmt.Printf("\nThe paper's conclusion holds: with so little modified sharing, there\n")
	fmt.Printf("is almost nothing for intelligent thread co-scheduling to recover —\n")
	fmt.Printf("unlike TPC-W, where cache-to-cache transfers dominated L2 misses.\n")
}
