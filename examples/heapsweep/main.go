// Heapsweep: the GC-tuning scenario behind Section 4.1.1. The paper argues
// that with an appropriately sized heap the collector costs under 2% of
// runtime, contradicting studies that measured small heaps. This example
// sweeps the heap size at a fixed load and shows GC share, pause times and
// compaction activity growing as the heap shrinks — and the response-time
// audit failing once collections dominate.
//
// The grid is expressed through core.Sweep and doubled with a page-size
// axis to demonstrate split-key reuse: every heap size here is a 16 MB
// multiple, so its 4K and 16M cells round to the same heap capacity and
// share one request-level simulation. With BaselineCacheBytes pinned, the
// 14-cell grid therefore costs exactly 7 request-level runs — asserted at
// the end via SimCounts.
package main

import (
	"fmt"
	"log"

	"jasworkload"
	"jasworkload/internal/core"
)

func main() {
	core.ResetSimCounts()

	base := jasworkload.DefaultConfig(jasworkload.ScaleQuick)
	// Pinning the cache keeps it off the heap-size axis; the auto default
	// would derive a different cache per heap size anyway (it tracks the
	// raw heap), but an explicit value makes the sharing story plain.
	base.BaselineCacheBytes = 96 << 20

	sweep := core.Sweep{Base: base, Axes: []core.Axis{
		{Param: "heap_mb", Values: []any{768, 512, 384, 256, 192, 144, 128}},
		{Param: "heap_page", Values: []any{"4K", "16M"}},
	}}
	cells, err := sweep.Expand(64)
	if err != nil {
		log.Fatal(err)
	}
	distinct := core.DistinctRequestKeys(cells)

	runs := make([]*core.RequestLevelRun, len(cells))
	g := core.NewGroup(jasworkload.Parallelism())
	for i, cell := range cells {
		g.Go(func() error {
			run, err := jasworkload.RunRequestLevel(cell.Cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", cell.Label, err)
			}
			runs[i] = run
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("heap sweep at fixed load (IR 30), live set held at ~100 MB:")
	fmt.Println("  heap(MB)  gc-every(s)  pause(ms)  gc%runtime  compactions  audit")
	for i, cell := range cells {
		if cell.Cfg.HeapPageSize != base.HeapPageSize {
			continue // the page-size twin shares this row's run; print each heap once
		}
		f3 := runs[i].Fig3()
		_, pass := runs[i].Audit()
		fmt.Printf("  %8d  %11.1f  %9.0f  %9.2f%%  %11d  %v\n",
			cell.Cfg.HeapBytes>>20, f3.Summary.MeanIntervalSec, f3.Summary.MeanPauseMS,
			f3.Summary.PercentOfRuntime, f3.Summary.Compactions, pass)
	}

	sims := core.SimCounts()["request-level"]
	if sims != distinct {
		log.Fatalf("split-key reuse broken: %d cells with %d distinct request keys ran %d request-level simulations",
			len(cells), distinct, sims)
	}
	fmt.Printf("\n%d grid cells (7 heap sizes x 2 page sizes) ran %d request-level\n", len(cells), sims)
	fmt.Println("simulations: page-size twins of a 16 MB-multiple heap share one run.")
	fmt.Println("\nA generously sized heap keeps GC below 2% of runtime (the paper's")
	fmt.Println("observation, and why earlier small-heap studies measured GC as")
	fmt.Println("expensive); undersized heaps collect almost continuously until the")
	fmt.Println("run fails its response-time audit.")
}
