// Heapsweep: the GC-tuning scenario behind Section 4.1.1. The paper argues
// that with an appropriately sized heap the collector costs under 2% of
// runtime, contradicting studies that measured small heaps. This example
// sweeps the heap size at a fixed load and shows GC share, pause times and
// compaction activity growing as the heap shrinks — and the response-time
// audit failing once collections dominate.
//
// The sweep points are independent simulations, so they run concurrently
// on the experiment scheduler; rows are collected by index and printed in
// sweep order, identical at any parallelism.
package main

import (
	"fmt"
	"log"

	"jasworkload"
	"jasworkload/internal/core"
)

func main() {
	fmt.Println("heap sweep at fixed load (IR 30), live set held at ~100 MB:")
	fmt.Println("  heap(MB)  gc-every(s)  pause(ms)  gc%runtime  compactions  audit")
	sizesMB := []uint64{768, 512, 384, 256, 192, 144, 128}
	rows := make([]string, len(sizesMB))
	g := core.NewGroup(jasworkload.Parallelism())
	for i, mb := range sizesMB {
		g.Go(func() error {
			cfg := jasworkload.DefaultConfig(jasworkload.ScaleQuick)
			cfg.HeapBytes = mb << 20
			cfg.BaselineCacheBytes = 96 << 20
			run, err := jasworkload.RunRequestLevel(cfg)
			if err != nil {
				return fmt.Errorf("heap %d MB: %w", mb, err)
			}
			f3 := run.Fig3()
			_, pass := run.Audit()
			rows[i] = fmt.Sprintf("  %8d  %11.1f  %9.0f  %9.2f%%  %11d  %v",
				mb, f3.Summary.MeanIntervalSec, f3.Summary.MeanPauseMS,
				f3.Summary.PercentOfRuntime, f3.Summary.Compactions, pass)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Println(row)
	}
	fmt.Println("\nA generously sized heap keeps GC below 2% of runtime (the paper's")
	fmt.Println("observation, and why earlier small-heap studies measured GC as")
	fmt.Println("expensive); undersized heaps collect almost continuously until the")
	fmt.Println("run fails its response-time audit.")
}
