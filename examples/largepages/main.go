// Largepages: the Section 4.2.2 experiment. The paper's tuned system backs
// the 1 GB Java heap with 16 MB AIX large pages and measures DTLB hit rates
// rising 25% and ITLB 15% (through reduced pressure on the unified TLB).
// This example runs both configurations and prints the comparison, along
// with the paper's follow-on suggestion: executable/JIT code is still in
// 4 KB pages and would benefit too.
package main

import (
	"fmt"
	"log"

	"jasworkload"
)

func main() {
	cfg := jasworkload.DefaultConfig(jasworkload.ScaleQuick)
	abl, err := jasworkload.RunLargePageAblation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(abl.String())

	fmt.Println()
	fmt.Printf("Java heap with 16MB pages covers the whole heap with a handful of\n")
	fmt.Printf("translation entries; with 4KB pages the same heap needs thousands,\n")
	fmt.Printf("overflowing the ERATs and pressuring the unified TLB.\n")
	fmt.Printf("\nThe paper's unexploited follow-on: JIT-compiled code still sits in\n")
	fmt.Printf("4KB pages (%.2e ITLB misses/instr here); placing the code cache in\n", abl.LargeITLBPerInst)
	fmt.Printf("large pages is called out as a further opportunity (Section 4.2.2).\n")
}
