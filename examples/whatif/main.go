// Whatif: the optimizations the paper proposes but could not measure on
// fixed silicon, run as simulations over the same workload:
//
//   - a larger L2 and a lower-latency L3 (Section 4.2.3),
//   - JIT-compiled code in 16 MB pages (Section 4.2.2's "further room"),
//   - scaling the number of processor cores (Section 7, future work).
package main

import (
	"fmt"
	"log"

	"jasworkload/internal/core"
)

func main() {
	cfg := core.DefaultRunConfig(core.ScaleQuick)

	l2, err := core.L2SizeStudy(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"L2 capacity sweep (paper: 'Increasing the size of the L2 cache can improve performance')",
		"L2-share", l2))

	l3, err := core.L3LatencyStudy(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"\nL3 latency sweep (paper: 'a lower latency to L3 could also deliver sizeable performance benefits')",
		"latency", l3))

	code, err := core.CodeLargePagesStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"\nJIT code page size (paper: 'utilizing large pages for JIT compiled code ... will lead to additional performance improvements')",
		"ITLB/inst", code))

	scaling, err := core.CoreScalingStudy(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"\nCore-count scaling at proportional load (paper future work, Section 7)",
		"JOPS", scaling))
}
