// Whatif: the optimizations the paper proposes but could not measure on
// fixed silicon, run as simulations over the same workload:
//
//   - a larger L2 and a lower-latency L3 (Section 4.2.3),
//   - JIT-compiled code in 16 MB pages (Section 4.2.2's "further room"),
//   - scaling the number of processor cores (Section 7, future work).
//
// It opens with a split-key demonstration: a page-size x detail-frac grid
// whose four cells differ only in knobs the request-level engine never
// sees, so the whole grid shares a single request-level simulation
// (asserted via SimCounts) while each cell still gets its own detail run.
package main

import (
	"fmt"
	"log"

	"jasworkload/internal/core"
)

func main() {
	cfg := core.DefaultRunConfig(core.ScaleQuick)

	if err := splitKeyGrid(cfg); err != nil {
		log.Fatal(err)
	}

	l2, err := core.L2SizeStudy(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"L2 capacity sweep (paper: 'Increasing the size of the L2 cache can improve performance')",
		"L2-share", l2))

	l3, err := core.L3LatencyStudy(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"\nL3 latency sweep (paper: 'a lower latency to L3 could also deliver sizeable performance benefits')",
		"latency", l3))

	code, err := core.CodeLargePagesStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"\nJIT code page size (paper: 'utilizing large pages for JIT compiled code ... will lead to additional performance improvements')",
		"ITLB/inst", code))

	scaling, err := core.CoreScalingStudy(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWhatIf(
		"\nCore-count scaling at proportional load (paper future work, Section 7)",
		"JOPS", scaling))
}

// splitKeyGrid runs a 2x2 heap-page x detail-frac grid through the split
// artifact store and proves all four cells share one request-level run:
// the quick heap is a 16 MB multiple, so both page sizes round to the same
// heap capacity, and detail_frac never reaches the request-level engine.
func splitKeyGrid(base core.RunConfig) error {
	core.ResetSimCounts()
	sweep := core.Sweep{Base: base, Axes: []core.Axis{
		{Param: "heap_page", Values: []any{"4K", "16M"}},
		{Param: "detail_frac", Values: []any{0.01, 0.02}},
	}}
	cells, err := sweep.Expand(16)
	if err != nil {
		return err
	}
	distinct := core.DistinctRequestKeys(cells)

	fmt.Println("split-key grid: page size x detail fraction, one shared request-level run")
	fmt.Println("  cell  parameters                      JOPS    CPI")
	for _, cell := range cells {
		art := core.ForConfig(cell.Cfg)
		rl, err := art.RequestLevel()
		if err != nil {
			return fmt.Errorf("%s: %w", cell.Label, err)
		}
		det, err := art.Detail()
		if err != nil {
			return fmt.Errorf("%s: %w", cell.Label, err)
		}
		f5, err := det.Fig5()
		if err != nil {
			return fmt.Errorf("%s: %w", cell.Label, err)
		}
		fmt.Printf("  %4d  %-30s  %6.1f  %5.3f\n", cell.Index, cell.Label, rl.Fig2().JOPS, f5.MeanCPI)
	}

	sims := core.SimCounts()
	if got := sims["request-level"]; got != distinct {
		return fmt.Errorf("split-key reuse broken: %d cells with %d distinct request keys ran %d request-level simulations",
			len(cells), distinct, got)
	}
	if got := sims["detail"]; got != len(cells) {
		return fmt.Errorf("expected one detail run per cell: %d cells, %d detail simulations", len(cells), got)
	}
	fmt.Printf("\n%d cells, %d request-level simulation(s), %d detail simulations —\n",
		len(cells), sims["request-level"], sims["detail"])
	fmt.Println("detail-only knobs no longer re-buy the request-level run.")
	fmt.Println()
	return nil
}
