// Quickstart: run the simulated SPECjAppServer2004 system at a modest
// injection rate and print the headline numbers the paper leads with —
// throughput (JOPS), CPU utilization, CPI, and the GC overhead that the
// paper shows is far smaller than folklore says.
package main

import (
	"fmt"
	"log"

	"jasworkload"
)

func main() {
	cfg := jasworkload.DefaultConfig(jasworkload.ScaleQuick)

	// Request-level run: throughput, audit, GC.
	run, err := jasworkload.RunRequestLevel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f2 := run.Fig2()
	f3 := run.Fig3()
	fmt.Printf("injection rate %d -> JOPS %.1f (%.2f per IR), audit pass: %v\n",
		cfg.IR, f2.JOPS, f2.JOPS/float64(cfg.IR), f2.AuditPass)
	fmt.Printf("CPU utilization: %.0f%%\n", 100*run.MeanUtilization())
	fmt.Printf("GC: every %.0f s, %.0f ms pauses, %.2f%% of runtime (paper: <2%%)\n",
		f3.Summary.MeanIntervalSec, f3.Summary.MeanPauseMS, f3.Summary.PercentOfRuntime)

	// Instruction-detail run: the hardware's view.
	d, err := jasworkload.RunDetail(cfg, "cpi")
	if err != nil {
		log.Fatal(err)
	}
	f5, err := d.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPI: %.2f loaded vs %.2f idle; %.2f instructions dispatched per retired\n",
		f5.MeanCPI, f5.IdleCPI, f5.MeanSpec)
	fmt.Printf("L1D miss rate: %.1f%% of accesses\n", 100*f5.MeanL1Miss)
}
