// Package isa defines the abstract PowerPC-flavoured instruction stream
// that flows from the workload models (application server, JVM, GC, DB)
// into the POWER4 processor model.
//
// The stream is deliberately abstract: an instruction carries its dynamic
// class, the effective address of the instruction itself (for the I-side
// cache/translation path), the effective data address for memory
// operations, and branch outcome/target information for the predictors.
// That is exactly the information a trace-driven microarchitecture
// simulator needs; register dataflow is folded into the CPI model's
// penalty accounting.
package isa

import "fmt"

// Class is the dynamic instruction class.
type Class uint8

// Instruction classes. The split mirrors what the POWER4 HPM can
// distinguish: fixed-point/other work, loads, stores, conditional branches,
// indirect (register) branches, the LARX/STCX reservation pair, and the
// SYNC family of ordering instructions.
const (
	ClassALU Class = iota // fixed point, FP, logic: everything non-memory, non-branch
	ClassLoad
	ClassStore
	ClassBranchCond     // conditional relative branch
	ClassBranchIndirect // branch to CTR/LR: virtual calls, returns, switches
	ClassLarx           // load-and-reserve (LWARX/LDARX)
	ClassStcx           // store-conditional (STWCX/STDCX)
	ClassSync           // SYNC/LWSYNC/ISYNC ordering
	numClasses
)

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassALU:            "alu",
	ClassLoad:           "load",
	ClassStore:          "store",
	ClassBranchCond:     "bc",
	ClassBranchIndirect: "bctr",
	ClassLarx:           "larx",
	ClassStcx:           "stcx",
	ClassSync:           "sync",
}

// String returns a mnemonic-ish name for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMemory reports whether the class accesses the data cache.
func (c Class) IsMemory() bool {
	return c == ClassLoad || c == ClassStore || c == ClassLarx || c == ClassStcx
}

// IsLoad reports whether the class performs a data read.
func (c Class) IsLoad() bool { return c == ClassLoad || c == ClassLarx }

// IsStore reports whether the class performs a data write.
func (c Class) IsStore() bool { return c == ClassStore || c == ClassStcx }

// IsBranch reports whether the class redirects control flow.
func (c Class) IsBranch() bool { return c == ClassBranchCond || c == ClassBranchIndirect }

// Instr is one dynamic instruction.
type Instr struct {
	Class  Class
	PC     uint64 // effective address of the instruction (I-side)
	EA     uint64 // effective data address for memory classes
	Size   uint8  // access size in bytes for memory classes
	Taken  bool   // for ClassBranchCond: direction outcome
	Target uint64 // for taken branches: destination PC
	Return bool   // for ClassBranchIndirect: a function return (link-stack predicted)
	Kernel bool   // executed in privileged mode (OS / kernel time)
}

// Sink consumes a stream of instructions. The processor core implements
// Sink; trace recorders and multiplexers do too.
type Sink interface {
	Consume(ins *Instr)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ins *Instr)

// Consume calls f(ins).
func (f SinkFunc) Consume(ins *Instr) { f(ins) }

// CountingSink counts instructions by class; useful in tests and for
// verifying generated instruction mixes.
type CountingSink struct {
	Total  uint64
	ByKind [NumClasses]uint64
	Kernel uint64
}

// Consume implements Sink.
func (c *CountingSink) Consume(ins *Instr) {
	c.Total++
	c.ByKind[ins.Class]++
	if ins.Kernel {
		c.Kernel++
	}
}

// Loads returns the number of data-read instructions seen.
func (c *CountingSink) Loads() uint64 { return c.ByKind[ClassLoad] + c.ByKind[ClassLarx] }

// Stores returns the number of data-write instructions seen.
func (c *CountingSink) Stores() uint64 { return c.ByKind[ClassStore] + c.ByKind[ClassStcx] }

// Branches returns the number of branch instructions seen.
func (c *CountingSink) Branches() uint64 {
	return c.ByKind[ClassBranchCond] + c.ByKind[ClassBranchIndirect]
}

// Tee duplicates a stream to several sinks.
type Tee []Sink

// Consume forwards ins to every sink.
func (t Tee) Consume(ins *Instr) {
	for _, s := range t {
		s.Consume(ins)
	}
}
