package isa

import "context"

// Batch is a slice of instructions delivered to a BatchSink in emission
// order. A batch is only valid for the duration of the ConsumeBatch call:
// the emitter reuses the backing array, so sinks that need to retain
// instructions must copy them out.
type Batch = []Instr

// BatchSink is a Sink that can also accept instructions a batch at a
// time. ConsumeBatch(b) must be observably equivalent to calling
// Consume(&b[i]) for i in order — batching is a dispatch optimisation,
// never a semantic one.
type BatchSink interface {
	Sink
	ConsumeBatch(b Batch)
}

// DefaultBatchCap is the batch buffer capacity used by the trace
// emitter. 256 instructions keep the buffer at ~10 KiB (well inside L1D)
// while amortising the interface dispatch and per-batch counter flush
// over enough work that neither shows up in profiles.
const DefaultBatchCap = 256

// Batcher accumulates instructions into a reusable fixed-capacity buffer
// and flushes them to the bound sink — via ConsumeBatch when the sink
// supports it, or one Consume call per instruction otherwise, so plain
// Sinks keep working unchanged. The zero Batcher is not ready for use;
// call NewBatcher.
type Batcher struct {
	buf  []Instr
	dst  Sink
	bdst BatchSink // non-nil iff dst implements BatchSink
}

// NewBatcher returns a Batcher with the given buffer capacity
// (DefaultBatchCap if capacity <= 0), bound to no sink.
func NewBatcher(capacity int) *Batcher {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	return &Batcher{buf: make([]Instr, 0, capacity)}
}

// Bind flushes any buffered instructions to the previously bound sink
// and redirects the batcher to dst. Binding is unconditional: sinks may
// be uncomparable (SinkFunc), so no same-sink check is attempted.
func (b *Batcher) Bind(dst Sink) {
	b.Flush()
	b.dst = dst
	b.bdst, _ = dst.(BatchSink)
}

// Consume implements Sink: it appends a copy of ins to the buffer and
// flushes when the buffer reaches capacity.
func (b *Batcher) Consume(ins *Instr) {
	b.buf = append(b.buf, *ins)
	if len(b.buf) == cap(b.buf) {
		b.Flush()
	}
}

// Flush delivers all buffered instructions to the bound sink and empties
// the buffer. It is a no-op when the buffer is empty or no sink is bound.
func (b *Batcher) Flush() {
	if len(b.buf) == 0 || b.dst == nil {
		b.buf = b.buf[:0]
		return
	}
	if b.bdst != nil {
		b.bdst.ConsumeBatch(b.buf)
	} else {
		for i := range b.buf {
			b.dst.Consume(&b.buf[i])
		}
	}
	b.buf = b.buf[:0]
}

// Pending returns the number of buffered, not-yet-flushed instructions.
func (b *Batcher) Pending() int { return len(b.buf) }

// ConsumeBatch implements BatchSink for CountingSink: class counts
// commute, so the whole batch folds into the counters in one pass.
func (c *CountingSink) ConsumeBatch(b Batch) {
	c.Total += uint64(len(b))
	for i := range b {
		c.ByKind[b[i].Class]++
		if b[i].Kernel {
			c.Kernel++
		}
	}
}

// ConsumeBatch implements BatchSink for Tee: each sink receives the full
// batch (natively when it is itself a BatchSink) before the next sink,
// matching the per-instruction Tee ordering guarantee per sink. Note the
// cross-sink interleaving differs from per-instruction Tee (sink 0 sees
// the whole batch before sink 1 sees any of it); sinks in this codebase
// are independent, so only the per-sink order is part of the contract.
func (t Tee) ConsumeBatch(b Batch) {
	for _, s := range t {
		if bs, ok := s.(BatchSink); ok {
			bs.ConsumeBatch(b)
		} else {
			for i := range b {
				s.Consume(&b[i])
			}
		}
	}
}

// Recorder retains every instruction it consumes, in order. It is the
// trace recorder used by equivalence tests and the detail-stream
// benchmark: record once, replay many times.
type Recorder struct {
	Trace []Instr
}

// Consume implements Sink.
func (r *Recorder) Consume(ins *Instr) { r.Trace = append(r.Trace, *ins) }

// ConsumeBatch implements BatchSink.
func (r *Recorder) ConsumeBatch(b Batch) { r.Trace = append(r.Trace, b...) }

// Replay streams a recorded trace into dst in fixed-size batches when
// dst is a BatchSink, or instruction by instruction otherwise.
func Replay(trace []Instr, dst Sink, batchCap int) {
	ReplayContext(context.Background(), trace, dst, batchCap)
}

// ReplayContext is Replay with a cancellation point between batches: a
// multi-million-instruction replay stops within one batch (batchCap
// instructions) of ctx being cancelled instead of running to the end of
// the trace. Returns ctx's error when aborted, nil on a complete replay.
// Batches already delivered are never unwound, so an uncancelled ctx
// yields a replay identical to Replay.
func ReplayContext(ctx context.Context, trace []Instr, dst Sink, batchCap int) error {
	if batchCap <= 0 {
		batchCap = DefaultBatchCap
	}
	if bs, ok := dst.(BatchSink); ok {
		for len(trace) > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			n := batchCap
			if n > len(trace) {
				n = len(trace)
			}
			bs.ConsumeBatch(trace[:n])
			trace = trace[n:]
		}
		return nil
	}
	for i := range trace {
		if i%DefaultBatchCap == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		dst.Consume(&trace[i])
	}
	return nil
}
