package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	for c := ClassALU; c < Class(NumClasses); c++ {
		if c.String() == "" {
			t.Fatalf("class %d has empty name", c)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Fatalf("out-of-range class name = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                            Class
		isMem, isLoad, isStore, isBr bool
	}{
		{ClassALU, false, false, false, false},
		{ClassLoad, true, true, false, false},
		{ClassStore, true, false, true, false},
		{ClassBranchCond, false, false, false, true},
		{ClassBranchIndirect, false, false, false, true},
		{ClassLarx, true, true, false, false},
		{ClassStcx, true, false, true, false},
		{ClassSync, false, false, false, false},
	}
	for _, tc := range cases {
		if tc.c.IsMemory() != tc.isMem {
			t.Errorf("%v IsMemory = %v", tc.c, tc.c.IsMemory())
		}
		if tc.c.IsLoad() != tc.isLoad {
			t.Errorf("%v IsLoad = %v", tc.c, tc.c.IsLoad())
		}
		if tc.c.IsStore() != tc.isStore {
			t.Errorf("%v IsStore = %v", tc.c, tc.c.IsStore())
		}
		if tc.c.IsBranch() != tc.isBr {
			t.Errorf("%v IsBranch = %v", tc.c, tc.c.IsBranch())
		}
	}
}

func TestCountingSink(t *testing.T) {
	var cs CountingSink
	cs.Consume(&Instr{Class: ClassLoad})
	cs.Consume(&Instr{Class: ClassLarx})
	cs.Consume(&Instr{Class: ClassStore, Kernel: true})
	cs.Consume(&Instr{Class: ClassStcx})
	cs.Consume(&Instr{Class: ClassBranchCond})
	cs.Consume(&Instr{Class: ClassBranchIndirect})
	if cs.Total != 6 {
		t.Fatalf("Total = %d", cs.Total)
	}
	if cs.Loads() != 2 || cs.Stores() != 2 || cs.Branches() != 2 {
		t.Fatalf("loads/stores/branches = %d/%d/%d", cs.Loads(), cs.Stores(), cs.Branches())
	}
	if cs.Kernel != 1 {
		t.Fatalf("Kernel = %d", cs.Kernel)
	}
}

func TestTee(t *testing.T) {
	var a, b CountingSink
	tee := Tee{&a, &b}
	tee.Consume(&Instr{Class: ClassALU})
	tee.Consume(&Instr{Class: ClassLoad})
	if a.Total != 2 || b.Total != 2 {
		t.Fatalf("tee did not duplicate: %d/%d", a.Total, b.Total)
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	s := SinkFunc(func(*Instr) { n++ })
	s.Consume(&Instr{})
	if n != 1 {
		t.Fatal("SinkFunc not invoked")
	}
}

func TestMixValidate(t *testing.T) {
	for _, m := range []Mix{Jas2004UserMix(), GCMix(), KernelMix()} {
		if err := m.Validate(); err != nil {
			t.Fatalf("standard mix invalid: %v", err)
		}
	}
	bad := Mix{LoadRate: -0.1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	bad = Mix{LoadRate: 0.6, StoreRate: 0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("over-unity mix accepted")
	}
	if _, err := NewMixSampler(bad, 1); err == nil {
		t.Fatal("NewMixSampler accepted bad mix")
	}
}

// The sampler must reproduce configured rates exactly in the long run.
func TestMixSamplerRates(t *testing.T) {
	mix := Jas2004UserMix()
	s, err := NewMixSampler(mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2_000_000
	var counts [NumClasses]uint64
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	check := func(name string, got uint64, wantRate float64) {
		t.Helper()
		gotRate := float64(got) / n
		if math.Abs(gotRate-wantRate) > wantRate*0.01+1e-5 {
			t.Errorf("%s rate = %.6f, want %.6f", name, gotRate, wantRate)
		}
	}
	check("load", counts[ClassLoad], mix.LoadRate)
	check("store", counts[ClassStore], mix.StoreRate)
	check("cond", counts[ClassBranchCond], mix.CondRate)
	check("indirect", counts[ClassBranchIndirect], mix.IndirectRate)
	check("larx", counts[ClassLarx], mix.LarxRate)
	check("sync", counts[ClassSync], mix.SyncRate)
	// The paper's headline: ~1 memory op per 2 instructions.
	memRate := float64(counts[ClassLoad]+counts[ClassStore]+counts[ClassLarx]) / n
	if memRate < 0.5 || memRate > 0.56 {
		t.Errorf("memory op rate = %.4f, want ~0.53 (1 per ~1.9 instr)", memRate)
	}
}

func TestMixSamplerDeterministic(t *testing.T) {
	a, _ := NewMixSampler(Jas2004UserMix(), 42)
	b, _ := NewMixSampler(Jas2004UserMix(), 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

// Property: any valid random mix is reproduced to within 2% relative error
// over a long stream.
func TestMixSamplerRateProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Derive a small random but valid mix from the seed.
		r := func(k int64, scale float64) float64 {
			v := float64((seed>>uint(k*7))&0xff) / 255.0
			return v * scale
		}
		mix := Mix{
			LoadRate:  0.05 + r(0, 0.25),
			StoreRate: 0.05 + r(1, 0.15),
			CondRate:  0.02 + r(2, 0.1),
		}
		s, err := NewMixSampler(mix, seed)
		if err != nil {
			return false
		}
		const n = 300000
		var loads, stores uint64
		for i := 0; i < n; i++ {
			switch s.Next() {
			case ClassLoad:
				loads++
			case ClassStore:
				stores++
			}
		}
		ok := func(got uint64, want float64) bool {
			return math.Abs(float64(got)/n-want) <= want*0.02+1e-4
		}
		return ok(loads, mix.LoadRate) && ok(stores, mix.StoreRate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixSamplerStcxNeverEmitted(t *testing.T) {
	// STCX must be paired with LARX by lock models, never sampled directly.
	s, _ := NewMixSampler(Jas2004UserMix(), 3)
	for i := 0; i < 100000; i++ {
		if s.Next() == ClassStcx {
			t.Fatal("sampler emitted ClassStcx")
		}
	}
}
