package isa

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func randomTrace(n int, seed int64) []Instr {
	rng := rand.New(rand.NewSource(seed))
	trace := make([]Instr, n)
	for i := range trace {
		trace[i] = Instr{
			Class:  Class(rng.Intn(NumClasses)),
			PC:     uint64(rng.Int63()),
			EA:     uint64(rng.Int63()),
			Size:   uint8(1 << uint(rng.Intn(4))),
			Taken:  rng.Intn(2) == 0,
			Target: uint64(rng.Int63()),
			Return: rng.Intn(4) == 0,
			Kernel: rng.Intn(5) == 0,
		}
	}
	return trace
}

// TestBatcherEquivalence: streaming through a Batcher (any capacity, any
// sink kind) must be observably identical to direct per-instruction
// Consume calls.
func TestBatcherEquivalence(t *testing.T) {
	trace := randomTrace(1000, 42)

	var want CountingSink
	for i := range trace {
		want.Consume(&trace[i])
	}

	for _, capacity := range []int{1, 7, 256, 2048} {
		var got CountingSink
		b := NewBatcher(capacity)
		b.Bind(&got)
		for i := range trace {
			b.Consume(&trace[i])
		}
		b.Flush()
		if got != want {
			t.Fatalf("cap %d: batched counts %+v != direct %+v", capacity, got, want)
		}
	}
}

// TestBatcherPlainSinkAdapter: a sink without ConsumeBatch must still
// receive every instruction, in order, one at a time.
func TestBatcherPlainSinkAdapter(t *testing.T) {
	trace := randomTrace(300, 7)
	var got []Instr
	b := NewBatcher(64)
	b.Bind(SinkFunc(func(ins *Instr) { got = append(got, *ins) }))
	for i := range trace {
		b.Consume(&trace[i])
	}
	b.Flush()
	if !reflect.DeepEqual(got, trace) {
		t.Fatal("plain-sink adapter changed the stream")
	}
}

// TestBatcherBindFlushes: rebinding mid-stream must not drop or reorder
// buffered instructions — they flush to the old sink first.
func TestBatcherBindFlushes(t *testing.T) {
	trace := randomTrace(100, 9)
	var first, second Recorder
	b := NewBatcher(256)
	b.Bind(&first)
	for i := range trace[:60] {
		b.Consume(&trace[i])
	}
	b.Bind(&second) // must flush the 60 pending to first
	for i := 60; i < len(trace); i++ {
		b.Consume(&trace[i])
	}
	b.Flush()
	if len(first.Trace) != 60 || len(second.Trace) != 40 {
		t.Fatalf("split %d/%d, want 60/40", len(first.Trace), len(second.Trace))
	}
	all := append(append([]Instr(nil), first.Trace...), second.Trace...)
	if !reflect.DeepEqual(all, trace) {
		t.Fatal("rebinding perturbed the stream")
	}
}

// TestTeeConsumeBatch: every sink in the tee sees the full batch, with
// batch-aware sinks fed natively and plain sinks via the adapter loop.
func TestTeeConsumeBatch(t *testing.T) {
	trace := randomTrace(500, 3)

	var counts CountingSink
	var rec Recorder
	var plain []Instr
	tee := Tee{&counts, &rec, SinkFunc(func(ins *Instr) { plain = append(plain, *ins) })}
	Replay(trace, tee, 128)

	var want CountingSink
	for i := range trace {
		want.Consume(&trace[i])
	}
	if counts != want {
		t.Fatalf("tee counting sink diverged: %+v != %+v", counts, want)
	}
	if !reflect.DeepEqual(rec.Trace, trace) {
		t.Fatal("tee recorder diverged")
	}
	if !reflect.DeepEqual(plain, trace) {
		t.Fatal("tee plain sink diverged")
	}
}

// TestRecorderRoundTrip: record through a batcher, replay per
// instruction, and the trace survives both directions.
func TestRecorderRoundTrip(t *testing.T) {
	trace := randomTrace(700, 5)
	var rec Recorder
	b := NewBatcher(0) // default capacity
	b.Bind(&rec)
	for i := range trace {
		b.Consume(&trace[i])
	}
	b.Flush()
	if !reflect.DeepEqual(rec.Trace, trace) {
		t.Fatal("recorder trace differs from input")
	}

	var back Recorder
	Replay(rec.Trace, SinkFunc(back.Consume), 0)
	if !reflect.DeepEqual(back.Trace, trace) {
		t.Fatal("replay through plain-sink path differs")
	}
}

// TestReplayContextCancellation: a cancelled context stops the replay at
// the next batch boundary (and a pre-cancelled one consumes nothing),
// while a live context replays the trace bit-identically to Replay.
func TestReplayContextCancellation(t *testing.T) {
	trace := randomTrace(4*DefaultBatchCap+7, 9)

	pre, stop := context.WithCancel(context.Background())
	stop()
	var none CountingSink
	if err := ReplayContext(pre, trace, &none, 256); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled replay = %v", err)
	}
	if none != (CountingSink{}) {
		t.Fatalf("pre-cancelled replay consumed instructions: %+v", none)
	}

	// Cancel from inside the sink: the plain-sink path re-checks every
	// DefaultBatchCap instructions, so exactly one check interval runs.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	sink := SinkFunc(func(*Instr) {
		n++
		if n == DefaultBatchCap {
			cancel()
		}
	})
	if err := ReplayContext(ctx, trace, sink, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel = %v", err)
	}
	if n != DefaultBatchCap {
		t.Fatalf("consumed %d instructions after cancel, want %d", n, DefaultBatchCap)
	}

	var direct, viaCtx CountingSink
	Replay(trace, &direct, 128)
	if err := ReplayContext(context.Background(), trace, &viaCtx, 128); err != nil {
		t.Fatal(err)
	}
	if direct != viaCtx {
		t.Fatalf("live-context replay diverged: %+v vs %+v", viaCtx, direct)
	}
}
