package isa

import (
	"fmt"
	"math/rand"
)

// Mix describes a dynamic instruction mix as events-per-instruction rates.
// The remainder after all the listed classes is ClassALU.
//
// The paper reports for jas2004 user-level code: one load per 3.2 retired
// instructions, one store per 4.5, a LARX about every 600 instructions, and
// roughly one branch in five instructions (typical of compiled Java code).
type Mix struct {
	LoadRate     float64 // loads per instruction (1/3.2 for jas2004)
	StoreRate    float64 // stores per instruction (1/4.5)
	CondRate     float64 // conditional branches per instruction
	IndirectRate float64 // indirect branches per instruction
	LarxRate     float64 // LARX per instruction (1/600)
	SyncRate     float64 // SYNC-family per instruction
}

// Jas2004UserMix returns the mix measured for jas2004 user-level code
// (Section 4.2.3 and 4.2.4 of the paper).
func Jas2004UserMix() Mix {
	return Mix{
		LoadRate:     1.0 / 3.2,
		StoreRate:    1.0 / 4.5,
		CondRate:     0.16,  // ~1 conditional branch per 6 instructions
		IndirectRate: 0.022, // virtual calls, returns, switch tables
		LarxRate:     1.0 / 600.0,
		SyncRate:     1.0 / 850.0,
	}
}

// GCMix returns the mix used while the garbage collector runs: tight loops
// with heavier branching, more loads (pointer chasing during mark), fewer
// stores, and far fewer SYNC/LARX (Section 4.2.4: "GC contains far fewer
// SYNC instructions").
func GCMix() Mix {
	return Mix{
		LoadRate:     1.0 / 2.8,
		StoreRate:    1.0 / 9.0,
		CondRate:     0.22,
		IndirectRate: 0.004,
		LarxRate:     1.0 / 9000.0,
		SyncRate:     1.0 / 12000.0,
	}
}

// KernelMix returns the mix for privileged (OS) code: syscall paths with
// heavy synchronization — the paper measures SYNC-in-SRQ ~7% of cycles in
// privileged code versus <1% in user code.
func KernelMix() Mix {
	return Mix{
		LoadRate:     1.0 / 3.4,
		StoreRate:    1.0 / 4.8,
		CondRate:     0.17,
		IndirectRate: 0.012,
		LarxRate:     1.0 / 300.0,
		SyncRate:     1.0 / 110.0,
	}
}

// Validate checks that the rates are sane and sum below 1.
func (m Mix) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"LoadRate", m.LoadRate}, {"StoreRate", m.StoreRate},
		{"CondRate", m.CondRate}, {"IndirectRate", m.IndirectRate},
		{"LarxRate", m.LarxRate}, {"SyncRate", m.SyncRate},
	}
	var sum float64
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("isa: %s = %v out of [0,1]", r.name, r.v)
		}
		sum += r.v
	}
	if sum >= 1 {
		return fmt.Errorf("isa: mix rates sum to %v >= 1, no room for ALU ops", sum)
	}
	return nil
}

// MixSampler emits instruction classes at exactly the rates of a Mix using
// per-class fractional accumulators, with a seeded RNG used only to break
// scheduling ties so streams do not phase-lock. The long-run class
// frequencies are deterministic and exact, which makes the generated
// streams match the paper's measured rates precisely.
type MixSampler struct {
	mix Mix
	rng *rand.Rand
	acc [NumClasses]float64
}

// NewMixSampler validates the mix and builds a sampler.
func NewMixSampler(mix Mix, seed int64) (*MixSampler, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	s := &MixSampler{mix: mix, rng: rand.New(rand.NewSource(seed))}
	// Desynchronize the accumulators so the first instructions are not all
	// memory ops.
	for i := range s.acc {
		s.acc[i] = s.rng.Float64()
	}
	return s, nil
}

// Mix returns the sampler's configured mix.
func (s *MixSampler) Mix() Mix { return s.mix }

// rate returns the configured rate for class c.
func (s *MixSampler) rate(c Class) float64 {
	switch c {
	case ClassLoad:
		return s.mix.LoadRate
	case ClassStore:
		return s.mix.StoreRate
	case ClassBranchCond:
		return s.mix.CondRate
	case ClassBranchIndirect:
		return s.mix.IndirectRate
	case ClassLarx:
		return s.mix.LarxRate
	case ClassStcx:
		return 0 // STCX is emitted by lock models paired with LARX
	case ClassSync:
		return s.mix.SyncRate
	default:
		return 0
	}
}

// Next returns the class of the next instruction. Each non-ALU class has a
// fractional accumulator advanced by its rate; when the accumulator crosses
// 1, that class is due. When several classes are due at once, one is chosen
// uniformly and the rest stay due, preserving exact long-run rates.
func (s *MixSampler) Next() Class {
	due := make([]Class, 0, 4)
	for c := ClassLoad; c < numClasses; c++ {
		r := s.rate(c)
		if r == 0 {
			continue
		}
		s.acc[c] += r
		if s.acc[c] >= 1 {
			due = append(due, c)
		}
	}
	if len(due) == 0 {
		return ClassALU
	}
	pick := due[0]
	if len(due) > 1 {
		pick = due[s.rng.Intn(len(due))]
	}
	s.acc[pick] -= 1
	return pick
}
