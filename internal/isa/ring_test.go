package isa

import "testing"

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 {
		t.Fatalf("cap = %d", r.Cap())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Send(i)
		}
		r.Close()
	}()
	for i := 0; i < 100; i++ {
		got, ok := r.Recv()
		if !ok || got != i {
			t.Fatalf("recv %d: got %d ok=%v", i, got, ok)
		}
	}
	if _, ok := r.Recv(); ok {
		t.Fatal("recv after close+drain should report !ok")
	}
	<-done
}

func TestRingMinDepth(t *testing.T) {
	r := NewRing[string](0)
	if r.Cap() != 1 {
		t.Fatalf("depth 0 should clamp to 1, got %d", r.Cap())
	}
}

func TestPoolRecycles(t *testing.T) {
	allocs := 0
	p := NewPool(2, func() *int { allocs++; v := new(int); return v })
	if p.Size() != 2 || allocs != 2 {
		t.Fatalf("size=%d allocs=%d", p.Size(), allocs)
	}
	a := p.Get()
	b := p.Get()
	p.Put(a)
	p.Put(b)
	// Round trips must reuse the same two items, never alloc again.
	for i := 0; i < 10; i++ {
		v := p.Get()
		if v != a && v != b {
			t.Fatal("pool returned a foreign item")
		}
		p.Put(v)
	}
	if allocs != 2 {
		t.Fatalf("pool allocated after construction: %d", allocs)
	}
}

func TestAnnotatedSyncAnn(t *testing.T) {
	a := NewAnnotated[uint32](4)
	if cap(a.Ins) != 4 || cap(a.Ann) != 4 {
		t.Fatalf("caps %d/%d", cap(a.Ins), cap(a.Ann))
	}
	a.Ins = append(a.Ins, Instr{}, Instr{}, Instr{})
	a.SyncAnn()
	if len(a.Ann) != 3 {
		t.Fatalf("SyncAnn len = %d", len(a.Ann))
	}
	// Growth beyond the original capacity must work too.
	for i := 0; i < 10; i++ {
		a.Ins = append(a.Ins, Instr{})
	}
	a.SyncAnn()
	if len(a.Ann) != len(a.Ins) {
		t.Fatalf("SyncAnn after growth: %d vs %d", len(a.Ann), len(a.Ins))
	}
	a.Reset()
	if a.Len() != 0 || len(a.Ann) != 0 {
		t.Fatal("Reset did not empty the container")
	}
	if NewAnnotated[byte](0).Ins == nil || cap(NewAnnotated[byte](0).Ins) != DefaultBatchCap {
		t.Fatal("default capacity should be DefaultBatchCap")
	}
}
