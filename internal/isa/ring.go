package isa

// This file provides the plumbing for pipeline-parallel stream
// consumption: bounded single-producer/single-consumer rings that carry
// batches between pipeline stages, a fixed-size pool that recycles batch
// buffers so a steady-state pipeline allocates nothing per batch, and the
// Annotated container that lets successive stages attach per-instruction
// metadata without copying the instructions again.

// Ring is a bounded SPSC queue connecting two pipeline stages. Send
// blocks while the ring is full (backpressure toward the producer), Recv
// blocks while it is empty. It is implemented over a buffered channel,
// which is exactly a bounded ring with the scheduler providing the
// park/unpark; the capacity is the stage-decoupling depth.
type Ring[T any] struct {
	ch chan T
}

// NewRing returns a ring buffering up to depth items (minimum 1).
func NewRing[T any](depth int) *Ring[T] {
	if depth < 1 {
		depth = 1
	}
	return &Ring[T]{ch: make(chan T, depth)}
}

// Send enqueues v, blocking while the ring is full. Send after Close
// panics (a pipeline bug, not a recoverable condition).
func (r *Ring[T]) Send(v T) { r.ch <- v }

// Recv dequeues the oldest item, blocking while the ring is empty.
// ok is false once the ring is closed and drained.
func (r *Ring[T]) Recv() (T, bool) {
	v, ok := <-r.ch
	return v, ok
}

// TryRecv dequeues the oldest item without blocking. ok is false when
// the ring is momentarily empty (or closed and drained) — a consumer that
// needs the item falls back to a blocking Recv, which distinguishes the
// two. The non-blocking probe lets a multiplexing consumer count how
// often it would have stalled on each upstream ring.
func (r *Ring[T]) TryRecv() (T, bool) {
	var zero T
	select {
	case v, open := <-r.ch:
		if !open {
			return zero, false
		}
		return v, true
	default:
		return zero, false
	}
}

// Close marks the producer side finished; the consumer drains the
// remaining items and then sees ok == false.
func (r *Ring[T]) Close() { close(r.ch) }

// Cap returns the ring's buffering depth.
func (r *Ring[T]) Cap() int { return cap(r.ch) }

// Pool is a fixed-size free list of reusable batch payloads. All items
// are allocated up front; Get blocks until an item is recycled, which
// bounds the pipeline's total buffer memory to the pool size. Sized to
// cover every in-flight slot (rings plus one in-hand item per stage), a
// correctly plumbed pipeline never blocks in Get for long and never
// allocates after construction.
type Pool[T any] struct {
	ch chan T
}

// NewPool returns a pool pre-filled with size items from alloc.
func NewPool[T any](size int, alloc func() T) *Pool[T] {
	if size < 1 {
		size = 1
	}
	p := &Pool[T]{ch: make(chan T, size)}
	for i := 0; i < size; i++ {
		p.ch <- alloc()
	}
	return p
}

// Get takes an item from the pool, blocking until one is available.
func (p *Pool[T]) Get() T { return <-p.ch }

// Put returns an item to the pool. Putting more items than the pool's
// size is a plumbing bug and panics via the full channel... it cannot
// happen when every Put matches an earlier Get.
func (p *Pool[T]) Put(v T) { p.ch <- v }

// Size returns the pool's capacity.
func (p *Pool[T]) Size() int { return cap(p.ch) }

// Annotated pairs a copied batch of instructions with one annotation
// value per instruction. Pipeline stages communicate through it: an
// upstream stage appends instructions and fills in what it computed, a
// downstream stage reads both slices in order. Ins and Ann share
// indices; SyncAnn resizes Ann to match Ins.
type Annotated[A any] struct {
	Core int // consuming core, for multi-core pipelines
	Ins  []Instr
	Ann  []A
}

// NewAnnotated returns a container with capacity for cap instructions
// in both slices (so steady-state reuse never reallocates).
func NewAnnotated[A any](capacity int) *Annotated[A] {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	return &Annotated[A]{
		Ins: make([]Instr, 0, capacity),
		Ann: make([]A, 0, capacity),
	}
}

// Reset empties the container for reuse, keeping capacity.
func (a *Annotated[A]) Reset() {
	a.Ins = a.Ins[:0]
	a.Ann = a.Ann[:0]
}

// SyncAnn resizes Ann to len(Ins), growing its backing array only if the
// batch outgrew the original capacity. Annotation values are NOT zeroed:
// the first stage to write them assigns whole values.
func (a *Annotated[A]) SyncAnn() {
	if cap(a.Ann) < len(a.Ins) {
		a.Ann = make([]A, len(a.Ins))
		return
	}
	a.Ann = a.Ann[:len(a.Ins)]
}

// Len returns the number of buffered instructions.
func (a *Annotated[A]) Len() int { return len(a.Ins) }
