package db

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func entryPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "e.art")
}

func TestEntryFileRoundTrip(t *testing.T) {
	path := entryPath(t)
	payload := []byte("the payload \x00\x01\xff bytes")
	if err := WriteEntryFile(path, "detail", "abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEntryFile(path, "detail", "abc123")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	// Empty payloads round-trip too.
	if err := WriteEntryFile(path, "detail", "abc123", nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadEntryFile(path, "detail", "abc123")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload read back %d bytes", len(got))
	}
}

func TestEntryFileMissing(t *testing.T) {
	_, err := ReadEntryFile(filepath.Join(t.TempDir(), "nope.art"), "k", "x")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorruptEntry) {
		t.Fatal("missing file reported as corrupt")
	}
}

func TestEntryFileCorruption(t *testing.T) {
	payload := []byte(strings.Repeat("simulation figures ", 64))
	write := func(t *testing.T) string {
		t.Helper()
		path := entryPath(t)
		if err := WriteEntryFile(path, "request-level", "deadbeef", payload); err != nil {
			t.Fatal(err)
		}
		return path
	}
	damage := []struct {
		name string
		hurt func(t *testing.T, path string)
	}{
		{"truncated tail", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)-7], 0o644)
		}},
		{"truncated header", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:10], 0o644)
		}},
		{"flipped payload byte", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			data[len(data)-1] ^= 0x40
			os.WriteFile(path, data, 0o644)
		}},
		{"flipped header byte", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			data[0] ^= 0x40
			os.WriteFile(path, data, 0o644)
		}},
		{"future version", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			data[8] = 0xee // version field, little-endian low byte
			os.WriteFile(path, data, 0o644)
		}},
		{"empty file", func(t *testing.T, path string) {
			os.WriteFile(path, nil, 0o644)
		}},
		{"trailing garbage", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, append(data, 'x'), 0o644)
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			path := write(t)
			d.hurt(t, path)
			if _, err := ReadEntryFile(path, "request-level", "deadbeef"); !errors.Is(err, ErrCorruptEntry) {
				t.Fatalf("damaged entry read as %v, want ErrCorruptEntry", err)
			}
		})
	}
}

func TestEntryFileLabelMismatch(t *testing.T) {
	path := entryPath(t)
	if err := WriteEntryFile(path, "detail", "key1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEntryFile(path, "scalars", "key1"); !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("wrong kind read as %v, want ErrCorruptEntry", err)
	}
	if _, err := ReadEntryFile(path, "detail", "key2"); !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("wrong key read as %v, want ErrCorruptEntry", err)
	}
}

// Concurrent same-path writers must converge to exactly one valid entry
// with no temp files left behind — the atomic temp+rename discipline.
func TestEntryFileConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.art")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := WriteEntryFile(path, "k", "x", []byte("same bytes every writer")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, err := ReadEntryFile(path, "k", "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "same bytes every writer" {
		t.Fatalf("converged payload %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d files left in dir, want 1 (temp files leaked)", len(ents))
	}
}

func TestEntryFileLabelTooLong(t *testing.T) {
	if err := WriteEntryFile(entryPath(t), strings.Repeat("k", maxEntryLabel+1), "x", nil); err == nil {
		t.Fatal("oversized kind accepted")
	}
}
