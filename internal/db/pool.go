package db

import (
	"errors"
	"fmt"

	"jasworkload/internal/mem"
)

// PageID identifies a table page.
type PageID struct {
	Table int
	Page  uint32
}

// Storage is the backing store under the buffer pool. Latencies are in
// simulated milliseconds per page transfer.
type Storage interface {
	// ReadMS returns the latency of fetching one page.
	ReadMS() float64
	// WriteMS returns the latency of writing back one page.
	WriteMS() float64
	// Name describes the backend.
	Name() string
}

// RAMDisk is the paper's primary configuration: an OS-managed RAM disk
// holding the database files, giving effectively free page I/O and ~0%
// I/O wait.
type RAMDisk struct{}

// ReadMS returns ~0 (a memcpy).
func (RAMDisk) ReadMS() float64 { return 0.005 }

// WriteMS returns ~0.
func (RAMDisk) WriteMS() float64 { return 0.005 }

// Name returns "ramdisk".
func (RAMDisk) Name() string { return "ramdisk" }

// DiskModel is a small rotating-disk array: with too few spindles the
// I/O wait grows until response times fail, which is exactly what the
// paper observed with 2 disks.
type DiskModel struct {
	Spindles   int     // number of disks striped over
	SeekMS     float64 // average seek + rotational latency
	TransferMS float64 // per-page transfer time
}

// DefaultDiskModel returns a 2-spindle array like the paper's.
func DefaultDiskModel() DiskModel {
	return DiskModel{Spindles: 2, SeekMS: 4.5, TransferMS: 0.2}
}

// ReadMS returns the effective per-page read latency, amortized over
// spindles (requests queue behind each other on few disks).
func (d DiskModel) ReadMS() float64 {
	if d.Spindles < 1 {
		return d.SeekMS + d.TransferMS
	}
	return (d.SeekMS + d.TransferMS) / float64(d.Spindles)
}

// WriteMS returns the effective per-page write latency.
func (d DiskModel) WriteMS() float64 { return d.ReadMS() }

// Name returns a description like "disk(x2)".
func (d DiskModel) Name() string { return fmt.Sprintf("disk(x%d)", d.Spindles) }

// BufferPool caches table pages in frames carved out of the simulated
// DB-buffer memory region. Frame addresses feed the memory trace; misses
// accumulate I/O wait from the storage backend.
type BufferPool struct {
	region    *mem.Region
	pageBytes uint64
	capFrames int            // frames the region can hold
	frames    []PageID       // materialized frames only; grows toward capFrames
	present   map[PageID]int // -> frame index
	dirty     []bool
	clock     []bool // second-chance bits
	hand      int

	storage Storage

	hits     uint64
	misses   uint64
	ioWaitMS float64
}

// NewBufferPool builds a pool of frames covering the given region. Like
// the present map, the per-frame residency tables (frame tags, dirty and
// clock bits) are sized to the resident working set as it grows, not to
// the region's frame count: frames are claimed in clock order, so a run
// whose page population never approaches the region size pays only for
// the prefix it actually touches — a 2 GB region at 4 KB pages would
// otherwise pre-allocate half a million frame slots per simulation.
func NewBufferPool(region *mem.Region, pageBytes uint64, storage Storage) (*BufferPool, error) {
	if region == nil {
		return nil, errors.New("db: nil buffer region")
	}
	if pageBytes == 0 || region.Size/pageBytes == 0 {
		return nil, fmt.Errorf("db: bad page size %d for region of %d bytes", pageBytes, region.Size)
	}
	if storage == nil {
		return nil, errors.New("db: nil storage")
	}
	return &BufferPool{
		region:    region,
		pageBytes: pageBytes,
		capFrames: int(region.Size / pageBytes),
		present:   make(map[PageID]int),
		storage:   storage,
	}, nil
}

// Frames returns the number of frames the region holds.
func (bp *BufferPool) Frames() int { return bp.capFrames }

// Storage returns the backing store.
func (bp *BufferPool) Storage() Storage { return bp.storage }

// Touch ensures the page is resident and returns the address of the
// touched slot within its frame. write marks the frame dirty.
func (bp *BufferPool) Touch(p PageID, write bool) uint64 {
	idx, ok := bp.present[p]
	if ok {
		bp.hits++
		bp.clock[idx] = true
	} else {
		bp.misses++
		bp.ioWaitMS += bp.storage.ReadMS()
		idx = bp.evict()
		bp.frames[idx] = p
		bp.present[p] = idx
		bp.clock[idx] = true
		bp.dirty[idx] = false
	}
	if write {
		bp.dirty[idx] = true
	}
	// Address: frame base plus a page-dependent offset so different pages
	// in the same frame do not alias to one line.
	off := (uint64(p.Page)*2048 + uint64(p.Table)*256) % bp.pageBytes
	return bp.region.Base + uint64(idx)*bp.pageBytes + off
}

// evict frees a frame using the clock (second chance) algorithm. Frames
// are claimed in hand order, so while the pool is cold every
// materialized frame is occupied and the hand sits on the next
// never-used index — claiming it is exactly what the eager layout's
// empty-frame scan did, at the same index.
func (bp *BufferPool) evict() int {
	if n := len(bp.frames); n < bp.capFrames {
		bp.grow(n + 1)
		bp.frames = bp.frames[:n+1]
		bp.dirty = bp.dirty[:n+1]
		bp.clock = bp.clock[:n+1]
		bp.hand = (n + 1) % bp.capFrames
		return n
	}
	for {
		if bp.clock[bp.hand] {
			bp.clock[bp.hand] = false
			bp.hand = (bp.hand + 1) % len(bp.frames)
			continue
		}
		idx := bp.hand
		victim := bp.frames[idx]
		if bp.dirty[idx] {
			bp.ioWaitMS += bp.storage.WriteMS()
		}
		delete(bp.present, victim)
		bp.hand = (bp.hand + 1) % len(bp.frames)
		return idx
	}
}

// grow ensures capacity for at least want frames of bookkeeping,
// doubling (capped at the region's frame count) so growth cost is
// amortized and a working set far below capacity never allocates the
// tail.
func (bp *BufferPool) grow(want int) {
	if cap(bp.frames) >= want {
		return
	}
	newCap := cap(bp.frames) * 2
	if newCap < 256 {
		newCap = 256
	}
	if newCap < want {
		newCap = want
	}
	if newCap > bp.capFrames {
		newCap = bp.capFrames
	}
	frames := make([]PageID, len(bp.frames), newCap)
	copy(frames, bp.frames)
	bp.frames = frames
	dirty := make([]bool, len(bp.dirty), newCap)
	copy(dirty, bp.dirty)
	bp.dirty = dirty
	clock := make([]bool, len(bp.clock), newCap)
	copy(clock, bp.clock)
	bp.clock = clock
}

// HitRate returns the lifetime buffer-pool hit rate.
func (bp *BufferPool) HitRate() float64 {
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}

// TakeIOWaitMS returns and clears accumulated I/O wait.
func (bp *BufferPool) TakeIOWaitMS() float64 {
	w := bp.ioWaitMS
	bp.ioWaitMS = 0
	return w
}
