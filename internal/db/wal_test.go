package db

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func walDB(t *testing.T, group int) *Database {
	t.Helper()
	d := testDB(t)
	if err := d.EnableWAL(group); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewWALValidation(t *testing.T) {
	if _, err := NewWAL(nil, 4); err == nil {
		t.Fatal("nil storage accepted")
	}
	if _, err := NewWAL(RAMDisk{}, 0); err == nil {
		t.Fatal("zero group size accepted")
	}
}

func TestWALRecordsCommittedWork(t *testing.T) {
	d := walDB(t, 1)
	d.CreateTable("t", 2, 10)
	tx := d.Begin()
	tx.Insert("t", Row{1, 10})
	tx.Update("t", 1, 1, 99)
	tx.Delete("t", 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	w := d.WAL()
	// insert + update + delete + commit marker
	if w.Appended() != 4 {
		t.Fatalf("records = %d, want 4", w.Appended())
	}
	tail := w.Tail()
	kinds := []LogKind{LogInsert, LogUpdate, LogDelete, LogCommit}
	for i, k := range kinds {
		if tail[i].Kind != k {
			t.Fatalf("record %d kind = %v, want %v", i, tail[i].Kind, k)
		}
	}
	// LSNs monotonic and txn ids present.
	for i := 1; i < len(tail); i++ {
		if tail[i].LSN <= tail[i-1].LSN {
			t.Fatal("LSNs not monotonic")
		}
	}
	if tail[0].Txn == 0 {
		t.Fatal("txn id missing")
	}
	// group=1: every commit flushes.
	if w.Flushes() != 1 || w.FlushedLSN() != w.LSN() {
		t.Fatalf("flushes=%d flushed=%d lsn=%d", w.Flushes(), w.FlushedLSN(), w.LSN())
	}
}

func TestWALAbortLogsNothing(t *testing.T) {
	d := walDB(t, 1)
	d.CreateTable("t", 2, 10)
	tx := d.Begin()
	tx.Insert("t", Row{1, 10})
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if d.WAL().Appended() != 0 {
		t.Fatal("aborted transaction reached the log")
	}
	// Read-only commits log nothing either.
	ro := d.Begin()
	ro.Commit()
	if d.WAL().Appended() != 0 {
		t.Fatal("read-only commit logged records")
	}
}

func TestWALGroupCommit(t *testing.T) {
	d := walDB(t, 4)
	d.CreateTable("t", 2, 10)
	for i := 0; i < 7; i++ {
		tx := d.Begin()
		tx.Insert("t", Row{Value(i), 0})
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	w := d.WAL()
	// 7 commits at group size 4: one flush after the 4th; 3 buffered.
	if w.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", w.Flushes())
	}
	if w.FlushedLSN() == w.LSN() {
		t.Fatal("tail unexpectedly durable")
	}
	w.Flush()
	if w.FlushedLSN() != w.LSN() {
		t.Fatal("explicit flush did not catch up")
	}
	if w.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", w.Flushes())
	}
	// Idempotent when already durable.
	w.Flush()
	if w.Flushes() != 2 {
		t.Fatal("no-op flush counted")
	}
	if w.TakeWaitMS() <= 0 {
		t.Fatal("no flush latency accumulated")
	}
	if w.TakeWaitMS() != 0 {
		t.Fatal("TakeWaitMS did not clear")
	}
}

func TestWALTailBounded(t *testing.T) {
	d := walDB(t, 1)
	d.CreateTable("t", 2, 10)
	for i := 0; i < 5000; i++ {
		tx := d.Begin()
		tx.Insert("t", Row{Value(i), 0})
		tx.Commit()
	}
	w := d.WAL()
	if len(w.Tail()) > 4096 {
		t.Fatalf("tail grew to %d records", len(w.Tail()))
	}
	if w.Appended() != 10000 { // insert + commit per txn
		t.Fatalf("appended = %d", w.Appended())
	}
	// The retained tail is the most recent suffix.
	tail := w.Tail()
	if tail[len(tail)-1].LSN != w.LSN() {
		t.Fatal("tail does not end at the head LSN")
	}
}

// Property: replaying the redo log of committed transactions onto a copy of
// the initial state reproduces the final state exactly.
func TestWALReplayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := testDB(t)
		dst := testDB(t)
		for _, d := range []*Database{src, dst} {
			d.CreateTable("t", 2, 10)
			setup := d.Begin()
			for i := 0; i < 10; i++ {
				setup.Insert("t", Row{Value(i), Value(i * 10)})
			}
			setup.Commit()
		}
		// The WAL starts at the checkpointed base image, like the SUT's.
		if err := src.EnableWAL(1); err != nil {
			t.Fatal(err)
		}
		// Random committed AND aborted transactions on src.
		for txn := 0; txn < 15; txn++ {
			tx := src.Begin()
			for op := 0; op < 4; op++ {
				k := Value(rng.Intn(30))
				switch rng.Intn(3) {
				case 0:
					tx.Insert("t", Row{k, Value(rng.Intn(100))})
				case 1:
					tx.Update("t", k, 1, Value(rng.Intn(100)))
				case 2:
					tx.Delete("t", k)
				}
			}
			if rng.Intn(3) == 0 {
				tx.Abort()
			} else {
				tx.Commit()
			}
		}
		if err := Replay(dst, src.WAL().Tail()); err != nil {
			t.Logf("replay: %v", err)
			return false
		}
		a, _ := src.Scan("t", -1000, 1000, 0)
		b, _ := dst.Scan("t", -1000, 1000, 0)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	d := testDB(t)
	recs := []LogRecord{
		{Txn: 1, Kind: LogInsert, Table: "missing", Row: Row{1, 2}},
		{Txn: 1, Kind: LogCommit},
	}
	if err := Replay(d, recs); err == nil {
		t.Fatal("replay into a missing table accepted")
	}
	// Uncommitted records are skipped silently.
	recs2 := []LogRecord{{Txn: 9, Kind: LogInsert, Table: "missing", Row: Row{1, 2}}}
	if err := Replay(d, recs2); err != nil {
		t.Fatalf("uncommitted record not skipped: %v", err)
	}
}

// Interleaving explicit Flush calls with group commits must keep the
// accounting coherent: after any Flush the durable prefix covers the whole
// log and no commit is still counted pending, so the next group flush
// fires only after a full fresh batch.
func TestWALFlushInterleavesWithCommits(t *testing.T) {
	d := walDB(t, 3)
	d.CreateTable("t", 2, 10)
	commit := func(i int) {
		t.Helper()
		tx := d.Begin()
		tx.Insert("t", Row{Value(i), 0})
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	w := d.WAL()
	check := func(step string) {
		t.Helper()
		if w.FlushedLSN() != w.LSN() {
			t.Fatalf("%s: flushedLSN=%d lsn=%d", step, w.FlushedLSN(), w.LSN())
		}
		if w.pendingCommits != 0 {
			t.Fatalf("%s: %d commits still pending after flush", step, w.pendingCommits)
		}
	}

	commit(0)
	commit(1)
	w.Flush() // mid-batch checkpoint: 2 pending commits become durable
	check("mid-batch flush")
	if w.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", w.Flushes())
	}
	w.Flush() // already durable: a no-op write, but accounting still coherent
	check("no-op flush")

	// The checkpoint reset the batch: the group threshold needs 3 fresh
	// commits again, not 3 minus the pre-checkpoint count.
	commit(2)
	commit(3)
	if w.Flushes() != 1 {
		t.Fatalf("group flush fired early (flushes=%d)", w.Flushes())
	}
	commit(4)
	if w.Flushes() != 2 {
		t.Fatalf("group flush missing after full batch (flushes=%d)", w.Flushes())
	}
	check("group flush")
}

// Crash-recovery shape: a torn tail — the log ends mid-transaction, before
// the commit record made it out — replays to the pre-crash committed state,
// exactly like the artifact store treating a torn entry file as a miss. The
// in-flight transaction's records are skipped, never half-applied.
func TestWALReplayTornTail(t *testing.T) {
	src := testDB(t)
	dst := testDB(t)
	for _, d := range []*Database{src, dst} {
		d.CreateTable("t", 2, 10)
	}
	if err := src.EnableWAL(1); err != nil {
		t.Fatal(err)
	}
	tx := src.Begin()
	tx.Insert("t", Row{1, 10})
	tx.Insert("t", Row{2, 20})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := src.Begin()
	tx2.Insert("t", Row{3, 30})
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: drop the final commit record, as if the crash landed
	// between appending txn2's redo records and its commit marker.
	tail := src.WAL().Tail()
	if tail[len(tail)-1].Kind != LogCommit {
		t.Fatal("log does not end in a commit record")
	}
	torn := tail[:len(tail)-1]
	if err := Replay(dst, torn); err != nil {
		t.Fatalf("torn-tail replay: %v", err)
	}
	rows, err := dst.Scan("t", -1000, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("recovered %d rows, want 2 (torn txn must not apply)", len(rows))
	}
	for _, r := range rows {
		if r[0] == 3 {
			t.Fatal("torn transaction's insert survived recovery")
		}
	}
}

func TestLogKindString(t *testing.T) {
	for _, k := range []LogKind{LogInsert, LogDelete, LogUpdate, LogCommit} {
		if k.String() == "" {
			t.Fatal("unnamed kind")
		}
	}
	if LogKind(99).String() != "log(99)" {
		t.Fatal("out-of-range name")
	}
}
