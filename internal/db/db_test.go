package db

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"jasworkload/internal/mem"
)

func testPool(t *testing.T, bytes uint64, storage Storage) *BufferPool {
	t.Helper()
	as := mem.NewAddressSpace()
	r, err := as.AddRegion("dbbuffer", 1<<30, bytes, mem.Page4K, false)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBufferPool(r, 4096, storage)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func testDB(t *testing.T) *Database {
	t.Helper()
	d, err := NewDatabase(testPool(t, 16<<20, RAMDisk{}))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateTableValidation(t *testing.T) {
	d := testDB(t)
	if _, err := d.CreateTable("t", 0, 10); err == nil {
		t.Fatal("zero cols accepted")
	}
	if _, err := d.CreateTable("t", 2, 0); err == nil {
		t.Fatal("zero rpp accepted")
	}
	if _, err := d.CreateTable("t", 2, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", 2, 10); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := d.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	if len(d.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	d := testDB(t)
	if _, err := d.CreateTable("t", 3, 10); err != nil {
		t.Fatal(err)
	}
	tx := d.Begin()
	if err := tx.Insert("t", Row{1, 10, 100}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", Row{1, 11, 101}); !errors.Is(err, ErrDupKey) {
		t.Fatalf("want ErrDupKey, got %v", err)
	}
	if err := tx.Insert("t", Row{2, 20}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("want ErrBadSchema, got %v", err)
	}
	if err := tx.Update("t", 1, 1, 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", 1, 0, 5); !errors.Is(err, ErrBadSchema) {
		t.Fatal("primary key update accepted")
	}
	if err := tx.Update("t", 77, 1, 5); !errors.Is(err, ErrNoRow) {
		t.Fatal("update of missing row accepted")
	}
	row, err := tx.Get("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if row[1] != 99 {
		t.Fatalf("row = %v", row)
	}
	if err := tx.Delete("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("t", 1); !errors.Is(err, ErrNoRow) {
		t.Fatal("double delete accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("t", 1); !errors.Is(err, ErrNoRow) {
		t.Fatal("deleted row still readable")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	d := testDB(t)
	d.CreateTable("t", 2, 10)
	tx := d.Begin()
	tx.Insert("t", Row{1, 10})
	tx.Commit()
	row, _ := d.Get("t", 1)
	row[1] = 999
	again, _ := d.Get("t", 1)
	if again[1] != 10 {
		t.Fatal("Get leaked internal storage")
	}
}

func TestTxnAbortRollsBack(t *testing.T) {
	d := testDB(t)
	d.CreateTable("t", 2, 10)
	setup := d.Begin()
	setup.Insert("t", Row{1, 10})
	setup.Insert("t", Row{2, 20})
	setup.Commit()

	tx := d.Begin()
	tx.Insert("t", Row{3, 30})
	tx.Update("t", 1, 1, 99)
	tx.Delete("t", 2)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("t", 3); !errors.Is(err, ErrNoRow) {
		t.Fatal("aborted insert visible")
	}
	if row, _ := d.Get("t", 1); row[1] != 10 {
		t.Fatalf("aborted update visible: %v", row)
	}
	if row, err := d.Get("t", 2); err != nil || row[1] != 20 {
		t.Fatalf("aborted delete not restored: %v %v", row, err)
	}
}

func TestTxnFinishedGuards(t *testing.T) {
	d := testDB(t)
	d.CreateTable("t", 2, 10)
	tx := d.Begin()
	tx.Commit()
	if err := tx.Insert("t", Row{1, 1}); !errors.Is(err, ErrNoTxn) {
		t.Fatal("insert on finished txn accepted")
	}
	if err := tx.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Fatal("double commit accepted")
	}
	var nilTx *Txn
	if err := nilTx.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Fatal("nil txn commit accepted")
	}
}

// Property: for random interleavings of operations, abort restores the
// exact pre-transaction state.
func TestTxnAbortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testDB(t)
		d.CreateTable("t", 2, 10)
		setup := d.Begin()
		for i := 0; i < 20; i++ {
			setup.Insert("t", Row{Value(i), Value(i * 10)})
		}
		setup.Commit()
		// Snapshot.
		before, _ := d.Scan("t", -1000, 1000, 0)

		tx := d.Begin()
		for op := 0; op < 30; op++ {
			k := Value(rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				tx.Insert("t", Row{k, Value(rng.Intn(100))}) // may fail on dup; fine
			case 1:
				tx.Update("t", k, 1, Value(rng.Intn(100)))
			case 2:
				tx.Delete("t", k)
			}
		}
		if err := tx.Abort(); err != nil {
			return false
		}
		after, _ := d.Scan("t", -1000, 1000, 0)
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i][0] != after[i][0] || before[i][1] != after[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	d := testDB(t)
	d.CreateTable("t", 2, 10)
	tx := d.Begin()
	for _, k := range []Value{5, 1, 9, 3, 7} {
		tx.Insert("t", Row{k, k * 10})
	}
	tx.Commit()
	rows, err := d.Scan("t", 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != 3 || rows[1][0] != 5 || rows[2][0] != 7 {
		t.Fatalf("scan = %v", rows)
	}
	limited, _ := d.Scan("t", 0, 100, 2)
	if len(limited) != 2 {
		t.Fatalf("limit ignored: %d rows", len(limited))
	}
	if _, err := d.Scan("missing", 0, 1, 0); err == nil {
		t.Fatal("scan of missing table accepted")
	}
	// Scan stays correct after mutations (sort cache invalidation).
	tx2 := d.Begin()
	tx2.Insert("t", Row{4, 40})
	tx2.Commit()
	rows, _ = d.Scan("t", 3, 5, 0)
	if len(rows) != 3 || rows[1][0] != 4 {
		t.Fatalf("post-insert scan = %v", rows)
	}
}

func TestTracerSeesAddresses(t *testing.T) {
	d := testDB(t)
	d.CreateTable("t", 2, 10)
	var reads, writes int
	var addrs []uint64
	d.SetTracer(func(addr uint64, write bool) {
		addrs = append(addrs, addr)
		if write {
			writes++
		} else {
			reads++
		}
	})
	tx := d.Begin()
	tx.Insert("t", Row{1, 10})
	tx.Commit()
	d.Get("t", 1)
	if writes != 1 || reads != 1 {
		t.Fatalf("tracer saw %d writes, %d reads", writes, reads)
	}
	for _, a := range addrs {
		if a < 1<<30 {
			t.Fatalf("trace address %#x outside the buffer region", a)
		}
	}
	if d.TouchCount() != 2 {
		t.Fatalf("touch count = %d", d.TouchCount())
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	bp := testPool(t, 16<<10, RAMDisk{}) // 4 frames of 4 KB
	if bp.Frames() != 4 {
		t.Fatalf("frames = %d", bp.Frames())
	}
	p := func(n uint32) PageID { return PageID{Table: 0, Page: n} }
	a1 := bp.Touch(p(1), false)
	a2 := bp.Touch(p(1), false)
	if a1 != a2 {
		t.Fatal("same page moved between touches")
	}
	if bp.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", bp.HitRate())
	}
	// Evict by touching 5 distinct pages.
	for n := uint32(2); n <= 5; n++ {
		bp.Touch(p(n), false)
	}
	before := bp.TakeIOWaitMS()
	if before <= 0 {
		t.Fatal("no io wait accumulated")
	}
	if bp.TakeIOWaitMS() != 0 {
		t.Fatal("TakeIOWaitMS did not clear")
	}
}

func TestBufferPoolValidation(t *testing.T) {
	if _, err := NewBufferPool(nil, 4096, RAMDisk{}); err == nil {
		t.Fatal("nil region accepted")
	}
	as := mem.NewAddressSpace()
	r, _ := as.AddRegion("b", 1<<30, 16<<10, mem.Page4K, false)
	if _, err := NewBufferPool(r, 0, RAMDisk{}); err == nil {
		t.Fatal("zero page accepted")
	}
	if _, err := NewBufferPool(r, 4096, nil); err == nil {
		t.Fatal("nil storage accepted")
	}
	if _, err := NewDatabase(nil); err == nil {
		t.Fatal("nil pool accepted")
	}
}

func TestStorageModels(t *testing.T) {
	if (RAMDisk{}).ReadMS() > 0.1 {
		t.Fatal("ram disk too slow")
	}
	two := DefaultDiskModel()
	if two.Name() != "disk(x2)" || (RAMDisk{}).Name() != "ramdisk" {
		t.Fatal("names wrong")
	}
	eight := two
	eight.Spindles = 8
	if eight.ReadMS() >= two.ReadMS() {
		t.Fatal("more spindles must reduce effective latency")
	}
	zero := DiskModel{Spindles: 0, SeekMS: 5}
	if zero.ReadMS() != 5 {
		t.Fatal("zero spindles should degrade to raw latency")
	}
	if two.WriteMS() != two.ReadMS() {
		t.Fatal("symmetric disk model expected")
	}
}

func TestDiskBackedPoolAccumulatesWait(t *testing.T) {
	ram := testPool(t, 64<<10, RAMDisk{})
	disk := testPool(t, 64<<10, DefaultDiskModel())
	for n := uint32(0); n < 1000; n++ {
		ram.Touch(PageID{Page: n}, false)
		disk.Touch(PageID{Page: n}, false)
	}
	rw, dw := ram.TakeIOWaitMS(), disk.TakeIOWaitMS()
	if dw < 100*rw {
		t.Fatalf("disk wait %.2f not much larger than ram %.2f", dw, rw)
	}
}

func TestLoadScalesWithIR(t *testing.T) {
	d10 := testDB(t)
	if err := Load(d10, DefaultScaleConfig(10)); err != nil {
		t.Fatal(err)
	}
	d40 := testDB(t)
	if err := Load(d40, DefaultScaleConfig(40)); err != nil {
		t.Fatal(err)
	}
	t10, _ := d10.Table(TCustomers)
	t40, _ := d40.Table(TCustomers)
	if t40.Rows() != 4*t10.Rows() {
		t.Fatalf("customers %d vs %d: not IR-proportional", t10.Rows(), t40.Rows())
	}
	for _, name := range []string{TCustomers, TVehicles, TInventory, TOrders, TOrderLines, TParts, TWorkOrders, TSuppliers} {
		tb, err := d40.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Rows() == 0 {
			t.Fatalf("table %q empty", name)
		}
	}
	if err := Load(testDB(t), DefaultScaleConfig(0)); err == nil {
		t.Fatal("IR 0 accepted")
	}
	sz := SizesFor(DefaultScaleConfig(40))
	if sz.OrderLines != sz.Orders*3 {
		t.Fatal("orderline scaling wrong")
	}
}

func TestRowIDRecycling(t *testing.T) {
	d := testDB(t)
	tb, _ := d.CreateTable("t", 2, 10)
	tx := d.Begin()
	tx.Insert("t", Row{1, 10})
	tx.Delete("t", 1)
	tx.Insert("t", Row{2, 20})
	tx.Commit()
	if len(tb.rows) != 1 {
		t.Fatalf("row slots = %d, want recycled 1", len(tb.rows))
	}
	if tb.Rows() != 1 {
		t.Fatalf("live rows = %d", tb.Rows())
	}
}
