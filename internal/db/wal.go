package db

import (
	"errors"
	"fmt"
)

// LogKind enumerates write-ahead-log record types.
type LogKind uint8

// Log record kinds.
const (
	LogInsert LogKind = iota
	LogDelete
	LogUpdate
	LogCommit
)

// String names the kind.
func (k LogKind) String() string {
	switch k {
	case LogInsert:
		return "insert"
	case LogDelete:
		return "delete"
	case LogUpdate:
		return "update"
	case LogCommit:
		return "commit"
	default:
		return fmt.Sprintf("log(%d)", uint8(k))
	}
}

// LogRecord is one redo record. Only committed transactions' records are
// appended (redo-only logging: undo lives in the transaction itself).
type LogRecord struct {
	LSN   uint64
	Txn   uint64
	Kind  LogKind
	Table string
	Key   Value
	Col   int   // LogUpdate: column set
	Val   Value // LogUpdate: new value
	Row   Row   // LogInsert: full tuple
}

// WAL is the redo log: commit appends the transaction's records and a
// commit record; a group-commit policy batches flushes to the storage
// backend, whose write latency accumulates as log wait.
type WAL struct {
	storage Storage
	group   int // commits per flush

	lsn            uint64
	tail           []LogRecord // bounded in-memory tail for inspection/replay
	tailCap        int
	pendingCommits int
	flushes        uint64
	flushedLSN     uint64
	appended       uint64
	waitMS         float64
}

// NewWAL builds a log over the storage backend with the given group-commit
// batch size.
func NewWAL(storage Storage, groupCommit int) (*WAL, error) {
	if storage == nil {
		return nil, errors.New("db: nil WAL storage")
	}
	if groupCommit < 1 {
		return nil, fmt.Errorf("db: bad group-commit size %d", groupCommit)
	}
	return &WAL{storage: storage, group: groupCommit, tailCap: 4096}, nil
}

// append adds one record, returning its LSN.
func (w *WAL) append(rec LogRecord) uint64 {
	w.lsn++
	rec.LSN = w.lsn
	if len(w.tail) >= w.tailCap {
		copy(w.tail, w.tail[1:])
		w.tail = w.tail[:len(w.tail)-1]
	}
	w.tail = append(w.tail, rec)
	w.appended++
	return rec.LSN
}

// commit appends the transaction's redo records plus its commit record and
// runs the group-commit policy.
func (w *WAL) commit(txn uint64, recs []LogRecord) {
	for _, r := range recs {
		r.Txn = txn
		w.append(r)
	}
	w.append(LogRecord{Txn: txn, Kind: LogCommit})
	w.pendingCommits++
	if w.pendingCommits >= w.group {
		w.flush()
	}
}

// flush forces the log to storage.
func (w *WAL) flush() {
	if w.flushedLSN == w.lsn {
		// The whole log is already durable, so this flush performs no
		// storage write — but the accounting must stay coherent anyway:
		// once flushedLSN == lsn there can be no commit still awaiting
		// durability, so a surviving pendingCommits count would make the
		// next group threshold fire early. Every commit currently advances
		// lsn (it always appends its commit record) before counting itself
		// pending, so today this reset is a no-op; it pins the invariant
		// "flushed log => zero pending commits" against future record
		// batching rather than relying on that ordering.
		w.pendingCommits = 0
		return
	}
	w.flushes++
	w.flushedLSN = w.lsn
	w.pendingCommits = 0
	w.waitMS += w.storage.WriteMS()
}

// Flush forces out any buffered commits (shutdown / checkpoint).
func (w *WAL) Flush() { w.flush() }

// LSN returns the last assigned log sequence number.
func (w *WAL) LSN() uint64 { return w.lsn }

// FlushedLSN returns the durable prefix.
func (w *WAL) FlushedLSN() uint64 { return w.flushedLSN }

// Flushes returns how many storage writes the log performed.
func (w *WAL) Flushes() uint64 { return w.flushes }

// Appended returns how many records were ever appended.
func (w *WAL) Appended() uint64 { return w.appended }

// Tail returns the retained in-memory records (oldest first).
func (w *WAL) Tail() []LogRecord { return w.tail }

// TakeWaitMS returns and clears the accumulated flush latency.
func (w *WAL) TakeWaitMS() float64 {
	v := w.waitMS
	w.waitMS = 0
	return v
}

// Replay applies the committed transactions of a redo log to a database.
// Records of transactions without a commit record are skipped, as a
// recovery pass would. The database must contain the schema and the state
// the log was taken against.
func Replay(d *Database, records []LogRecord) error {
	committed := map[uint64]bool{}
	for _, r := range records {
		if r.Kind == LogCommit {
			committed[r.Txn] = true
		}
	}
	for _, r := range records {
		if !committed[r.Txn] {
			continue
		}
		t, err := d.Table(r.Table)
		switch r.Kind {
		case LogInsert:
			if err != nil {
				return fmt.Errorf("db: replay insert: %w", err)
			}
			if _, err := d.insertRow(t, r.Row); err != nil {
				return fmt.Errorf("db: replay insert lsn %d: %w", r.LSN, err)
			}
		case LogDelete:
			if err != nil {
				return fmt.Errorf("db: replay delete: %w", err)
			}
			if _, err := d.deleteRow(t, r.Key); err != nil {
				return fmt.Errorf("db: replay delete lsn %d: %w", r.LSN, err)
			}
		case LogUpdate:
			if err != nil {
				return fmt.Errorf("db: replay update: %w", err)
			}
			id, ok := t.pk[r.Key]
			if !ok {
				return fmt.Errorf("db: replay update lsn %d: %w", r.LSN, ErrNoRow)
			}
			t.rows[id][r.Col] = r.Val
		case LogCommit:
			// marker only
		}
	}
	return nil
}
