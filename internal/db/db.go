// Package db implements the minimal relational database substrate behind
// the simulated SUT: tables with primary-key hash indexes, a buffer pool
// whose frames live in the simulated DB-buffer region (so every row access
// produces a real address for the memory trace), transactions with undo,
// and pluggable storage backends — a RAM disk (the paper's primary
// configuration) and a rotating-disk model that produces the I/O wait the
// paper saw with only two physical disks.
package db

import (
	"errors"
	"fmt"
	"sort"
)

// Value is a column value. The workload only needs integer-valued columns;
// strings are interned upstream.
type Value int64

// Row is a tuple; column 0 is always the primary key.
type Row []Value

// RowID locates a row within its table.
type RowID uint32

// Common errors.
var (
	ErrNoTable   = errors.New("db: no such table")
	ErrDupKey    = errors.New("db: duplicate primary key")
	ErrNoRow     = errors.New("db: no such row")
	ErrBadSchema = errors.New("db: schema mismatch")
	ErrNoTxn     = errors.New("db: no active transaction")
)

// Table is a heap-of-rows table with a primary-key hash index and a lazily
// maintained ordered key index for range scans.
type Table struct {
	name        string
	cols        int
	id          int
	rowsPerPage int

	rows []Row
	free []RowID
	pk   map[Value]RowID

	// Ordered key index for range scans. sortedKeys[:sortedLen] is
	// sorted; inserts append to an unsorted tail that the next Scan
	// sorts and merges in (O(tail log tail + n), not a full re-sort).
	// Deletions leave stale keys in the prefix, so they force the next
	// Scan to rebuild from pk — rare in this workload's traffic.
	sortedKeys []Value
	sortedLen  int
	deleted    bool
	tailBuf    []Value // reindex scratch for the unsorted tail
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Cols returns the column count.
func (t *Table) Cols() int { return t.cols }

// Rows returns the number of live rows.
func (t *Table) Rows() int { return len(t.pk) }

// pageOf returns the table-local page number of a row.
func (t *Table) pageOf(id RowID) uint32 { return uint32(id) / uint32(t.rowsPerPage) }

// Database is a named set of tables bound to a buffer pool and storage.
type Database struct {
	tables  map[string]*Table
	order   []*Table
	pool    *BufferPool
	wal     *WAL
	txnSeq  uint64
	tracer  func(addr uint64, write bool)
	touched int
}

// NewDatabase creates an empty database over the given buffer pool.
func NewDatabase(pool *BufferPool) (*Database, error) {
	if pool == nil {
		return nil, errors.New("db: nil buffer pool")
	}
	return &Database{tables: map[string]*Table{}, pool: pool}, nil
}

// SetTracer installs a callback invoked with the buffer-frame address of
// every row touch; the workload feeds these into the processor model.
func (d *Database) SetTracer(f func(addr uint64, write bool)) { d.tracer = f }

// EnableWAL attaches a write-ahead log: every committed transaction's redo
// records are appended and group-committed to the storage backend.
func (d *Database) EnableWAL(groupCommit int) error {
	w, err := NewWAL(d.pool.Storage(), groupCommit)
	if err != nil {
		return err
	}
	d.wal = w
	return nil
}

// WAL returns the attached log, or nil.
func (d *Database) WAL() *WAL { return d.wal }

// TakeLogWaitMS returns and clears the accumulated log-flush latency (0
// when no WAL is attached).
func (d *Database) TakeLogWaitMS() float64 {
	if d.wal == nil {
		return 0
	}
	return d.wal.TakeWaitMS()
}

// CreateTable adds a table with the given column count (>= 1; column 0 is
// the primary key). rowsPerPage controls page-granularity locality.
func (d *Database) CreateTable(name string, cols, rowsPerPage int) (*Table, error) {
	if _, ok := d.tables[name]; ok {
		return nil, fmt.Errorf("db: table %q exists", name)
	}
	if cols < 1 || rowsPerPage < 1 {
		return nil, fmt.Errorf("db: bad schema for %q: cols=%d rpp=%d", name, cols, rowsPerPage)
	}
	t := &Table{
		name: name, cols: cols, id: len(d.order), rowsPerPage: rowsPerPage,
		pk: map[Value]RowID{},
	}
	d.tables[name] = t
	d.order = append(d.order, t)
	return t, nil
}

// Table looks a table up by name.
func (d *Database) Table(name string) (*Table, error) {
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Tables returns all tables in creation order.
func (d *Database) Tables() []*Table { return d.order }

// touch pulls the row's page through the buffer pool and reports the
// access to the tracer.
func (d *Database) touch(t *Table, id RowID, write bool) {
	addr := d.pool.Touch(PageID{Table: t.id, Page: t.pageOf(id)}, write)
	d.touched++
	if d.tracer != nil {
		d.tracer(addr, write)
	}
}

// TouchCount returns the number of row touches served (for tests).
func (d *Database) TouchCount() int { return d.touched }

// insertRow is the index-maintaining core of Insert.
func (d *Database) insertRow(t *Table, row Row) (RowID, error) {
	if len(row) != t.cols {
		return 0, fmt.Errorf("%w: table %q wants %d cols, got %d", ErrBadSchema, t.name, t.cols, len(row))
	}
	key := row[0]
	if _, dup := t.pk[key]; dup {
		return 0, fmt.Errorf("%w: %q key %d", ErrDupKey, t.name, key)
	}
	var id RowID
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[id] = append(Row(nil), row...)
	} else {
		t.rows = append(t.rows, append(Row(nil), row...))
		id = RowID(len(t.rows) - 1)
	}
	t.pk[key] = id
	t.sortedKeys = append(t.sortedKeys, key)
	return id, nil
}

// deleteRow removes a key, returning the old row.
func (d *Database) deleteRow(t *Table, key Value) (Row, error) {
	id, ok := t.pk[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q key %d", ErrNoRow, t.name, key)
	}
	old := t.rows[id]
	t.rows[id] = nil
	delete(t.pk, key)
	t.free = append(t.free, id)
	t.deleted = true
	return old, nil
}

// Get returns a copy of the row with the given primary key.
func (d *Database) Get(table string, key Value) (Row, error) {
	t, err := d.Table(table)
	if err != nil {
		return nil, err
	}
	id, ok := t.pk[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q key %d", ErrNoRow, table, key)
	}
	d.touch(t, id, false)
	return append(Row(nil), t.rows[id]...), nil
}

// reindex restores the sorted-key invariant before a range scan.
func (t *Table) reindex() {
	if t.deleted {
		t.sortedKeys = t.sortedKeys[:0]
		for k := range t.pk {
			t.sortedKeys = append(t.sortedKeys, k)
		}
		sort.Slice(t.sortedKeys, func(i, j int) bool { return t.sortedKeys[i] < t.sortedKeys[j] })
		t.deleted = false
		t.sortedLen = len(t.sortedKeys)
		return
	}
	if len(t.sortedKeys) == t.sortedLen {
		return
	}
	tail := append(t.tailBuf[:0], t.sortedKeys[t.sortedLen:]...)
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	// Backward merge of the sorted prefix with the scratch copy of the
	// tail: the write cursor k stays strictly above the prefix read
	// cursor (k >= i+j+1 > i), so no prefix key is clobbered unread.
	keys := t.sortedKeys
	i, k := t.sortedLen-1, len(keys)-1
	for j := len(tail) - 1; j >= 0; {
		if i >= 0 && keys[i] > tail[j] {
			keys[k] = keys[i]
			i--
		} else {
			keys[k] = tail[j]
			j--
		}
		k--
	}
	t.tailBuf = tail[:0]
	t.sortedLen = len(keys)
}

// Scan returns copies of rows with keys in [lo, hi], at most limit (0 = no
// limit), in key order.
func (d *Database) Scan(table string, lo, hi Value, limit int) ([]Row, error) {
	t, err := d.Table(table)
	if err != nil {
		return nil, err
	}
	t.reindex()
	start := sort.Search(len(t.sortedKeys), func(i int) bool { return t.sortedKeys[i] >= lo })
	var out []Row
	for i := start; i < len(t.sortedKeys) && t.sortedKeys[i] <= hi; i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		id := t.pk[t.sortedKeys[i]]
		d.touch(t, id, false)
		out = append(out, append(Row(nil), t.rows[id]...))
	}
	return out, nil
}
