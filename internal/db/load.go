package db

import (
	"fmt"
	"math/rand"
)

// Schema names for the jas2004-like database. Column 0 of every table is
// the primary key.
const (
	TCustomers  = "customers"  // key, credit, balance, since
	TVehicles   = "vehicles"   // key (model id), price, category
	TInventory  = "inventory"  // key (model id), quantity, reorder level
	TOrders     = "orders"     // key, customer, status, total
	TOrderLines = "orderlines" // key, order, model, qty
	TParts      = "parts"      // key, cost, assembly
	TWorkOrders = "workorders" // key, model, qty, status
	TSuppliers  = "suppliers"  // key, rating, leadtime
)

// ScaleConfig controls how the injection rate sizes the initial database,
// mirroring the benchmark rule that "busier servers tend to have larger
// data sets".
type ScaleConfig struct {
	IR              int
	CustomersPerIR  int
	VehiclesPerIR   int
	OrdersPerIR     int
	PartsPerIR      int
	WorkOrdersPerIR int
	Seed            int64
}

// DefaultScaleConfig returns the standard scaling.
func DefaultScaleConfig(ir int) ScaleConfig {
	return ScaleConfig{
		IR:              ir,
		CustomersPerIR:  75,
		VehiclesPerIR:   25,
		OrdersPerIR:     40,
		PartsPerIR:      50,
		WorkOrdersPerIR: 10,
		Seed:            1,
	}
}

// Sizes holds the initial table cardinalities for a scale.
type Sizes struct {
	Customers, Vehicles, Orders, OrderLines, Parts, WorkOrders, Suppliers int
}

// SizesFor computes the initial cardinalities.
func SizesFor(cfg ScaleConfig) Sizes {
	return Sizes{
		Customers:  cfg.IR * cfg.CustomersPerIR,
		Vehicles:   cfg.IR * cfg.VehiclesPerIR,
		Orders:     cfg.IR * cfg.OrdersPerIR,
		OrderLines: cfg.IR * cfg.OrdersPerIR * 3,
		Parts:      cfg.IR * cfg.PartsPerIR,
		WorkOrders: cfg.IR * cfg.WorkOrdersPerIR,
		Suppliers:  100,
	}
}

// Load creates and populates the jas2004 schema at the given scale.
func Load(d *Database, cfg ScaleConfig) error {
	if cfg.IR <= 0 {
		return fmt.Errorf("db: bad injection rate %d", cfg.IR)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sz := SizesFor(cfg)
	type tdef struct {
		name string
		cols int
		rpp  int
	}
	for _, td := range []tdef{
		{TCustomers, 4, 32},
		{TVehicles, 3, 64},
		{TInventory, 3, 64},
		{TOrders, 4, 32},
		{TOrderLines, 4, 48},
		{TParts, 3, 64},
		{TWorkOrders, 4, 32},
		{TSuppliers, 3, 64},
	} {
		if _, err := d.CreateTable(td.name, td.cols, td.rpp); err != nil {
			return err
		}
	}
	tx := d.Begin()
	for i := 0; i < sz.Customers; i++ {
		if err := tx.Insert(TCustomers, Row{Value(i), Value(rng.Intn(1000)), Value(rng.Intn(100000)), Value(rng.Intn(3650))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Vehicles; i++ {
		if err := tx.Insert(TVehicles, Row{Value(i), Value(15000 + rng.Intn(50000)), Value(rng.Intn(5))}); err != nil {
			return err
		}
		if err := tx.Insert(TInventory, Row{Value(i), Value(rng.Intn(500)), Value(50)}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Orders; i++ {
		cust := Value(rng.Intn(sz.Customers))
		if err := tx.Insert(TOrders, Row{Value(i), cust, 1, Value(rng.Intn(90000))}); err != nil {
			return err
		}
		for l := 0; l < 3; l++ {
			key := Value(i*3 + l)
			if err := tx.Insert(TOrderLines, Row{key, Value(i), Value(rng.Intn(sz.Vehicles)), Value(1 + rng.Intn(4))}); err != nil {
				return err
			}
		}
	}
	for i := 0; i < sz.Parts; i++ {
		if err := tx.Insert(TParts, Row{Value(i), Value(rng.Intn(900)), Value(rng.Intn(sz.Vehicles))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.WorkOrders; i++ {
		if err := tx.Insert(TWorkOrders, Row{Value(i), Value(rng.Intn(sz.Vehicles)), Value(1 + rng.Intn(10)), 0}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Suppliers; i++ {
		if err := tx.Insert(TSuppliers, Row{Value(i), Value(rng.Intn(10)), Value(1 + rng.Intn(30))}); err != nil {
			return err
		}
	}
	return tx.Commit()
}
