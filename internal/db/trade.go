package db

import (
	"fmt"
	"math/rand"
)

// Trade6-like schema. Column 0 is the primary key throughout.
const (
	TAccounts    = "accounts"    // key, balance, openOrders, loginCount
	TQuotes      = "quotes"      // key (symbol id), price, volume
	THoldings    = "holdings"    // key, account, symbol, quantity
	TTradeOrders = "tradeorders" // key, account, symbol, side
)

// TradeSizes holds the initial cardinalities for a trading scale.
type TradeSizes struct {
	Accounts, Quotes, Holdings int
}

// TradeSizesFor computes the IR-scaled cardinalities.
func TradeSizesFor(ir int) TradeSizes {
	return TradeSizes{
		Accounts: ir * 120,
		Quotes:   ir * 25,
		Holdings: ir * 240,
	}
}

// LoadTrade creates and populates the Trade6-like schema.
func LoadTrade(d *Database, ir int, seed int64) error {
	if ir <= 0 {
		return fmt.Errorf("db: bad injection rate %d", ir)
	}
	rng := rand.New(rand.NewSource(seed))
	sz := TradeSizesFor(ir)
	type tdef struct {
		name string
		cols int
		rpp  int
	}
	for _, td := range []tdef{
		{TAccounts, 4, 32},
		{TQuotes, 3, 64},
		{THoldings, 4, 48},
		{TTradeOrders, 4, 32},
	} {
		if _, err := d.CreateTable(td.name, td.cols, td.rpp); err != nil {
			return err
		}
	}
	tx := d.Begin()
	for i := 0; i < sz.Accounts; i++ {
		if err := tx.Insert(TAccounts, Row{Value(i), Value(10000 + rng.Intn(90000)), 0, Value(rng.Intn(500))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Quotes; i++ {
		if err := tx.Insert(TQuotes, Row{Value(i), Value(10 + rng.Intn(490)), Value(rng.Intn(1000000))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Holdings; i++ {
		acct := Value(rng.Intn(sz.Accounts))
		sym := Value(rng.Intn(sz.Quotes))
		if err := tx.Insert(THoldings, Row{Value(i), acct, sym, Value(1 + rng.Intn(200))}); err != nil {
			return err
		}
	}
	return tx.Commit()
}
