package db

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the on-disk entry format of the persistent artifact store:
// the durable analogue of the WAL's torn-tail discipline applied to whole
// files. One entry file holds one serialized artifact payload behind a
// versioned header and a checksum; like a torn WAL tail, any structurally
// damaged file (truncated, bit-flipped, mislabeled) is detected on read
// and reported as ErrCorruptEntry so the reader treats it as a miss — a
// corrupt entry is never served. Writes are atomic: the payload lands in a
// temp file in the same directory, is synced, and renamed into place, so
// a crash mid-write leaves either the old entry or no entry, never a torn
// one at the final path.
//
// Layout (little-endian):
//
//	magic    [8]byte  "JASSTOR1"
//	version  uint32   EntryFileVersion
//	kindLen  uint32   | kind string (what the payload is, e.g. "detail")
//	keyLen   uint32   | key string (the content address, a sha256 hex)
//	paylen   uint64   payload length
//	checksum [32]byte sha256 of the payload
//	payload  [paylen]byte

// EntryFileVersion is the current entry-file format version. Bump it when
// the header layout or the payload encoding changes incompatibly; readers
// treat other versions as corrupt (= a cache miss), never as data.
const EntryFileVersion = 1

// entryMagic identifies an artifact-store entry file.
var entryMagic = [8]byte{'J', 'A', 'S', 'S', 'T', 'O', 'R', '1'}

// ErrCorruptEntry reports a structurally damaged entry file: bad magic or
// version, truncation, checksum mismatch, or a kind/key label that does
// not match what the reader asked for. Callers must treat it as a miss.
var ErrCorruptEntry = errors.New("db: corrupt entry file")

// maxEntryLabel bounds the kind and key header strings; anything larger
// is damage, not data.
const maxEntryLabel = 4096

// WriteEntryFile atomically persists payload as a checksummed entry file.
// The bytes are written to a temp file in path's directory, synced, and
// renamed over path, so concurrent readers and a crash mid-write both see
// either the previous entry or the complete new one.
func WriteEntryFile(path, kind, key string, payload []byte) error {
	if len(kind) > maxEntryLabel || len(key) > maxEntryLabel {
		return fmt.Errorf("db: entry label too long (kind %d, key %d bytes)", len(kind), len(key))
	}
	var buf bytes.Buffer
	buf.Write(entryMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(EntryFileVersion))
	binary.Write(&buf, binary.LittleEndian, uint32(len(kind)))
	buf.WriteString(kind)
	binary.Write(&buf, binary.LittleEndian, uint32(len(key)))
	buf.WriteString(key)
	binary.Write(&buf, binary.LittleEndian, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	buf.Write(payload)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".entry-*")
	if err != nil {
		return fmt.Errorf("db: entry temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("db: entry write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("db: entry sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("db: entry close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("db: entry rename: %w", err)
	}
	return nil
}

// ReadEntryFile reads and validates the entry at path, returning its
// payload. A missing file returns the os.ReadFile error (fs.ErrNotExist);
// every structural problem — wrong magic or version, truncation, length
// overrun, checksum mismatch, or a kind/key that differs from the
// requested one — returns an error wrapping ErrCorruptEntry.
func ReadEntryFile(path, kind, key string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(what string) ([]byte, error) {
		return nil, fmt.Errorf("%w: %s: %s", ErrCorruptEntry, path, what)
	}
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := r.Read(magic[:]); err != nil || magic != entryMagic {
		return corrupt("bad magic")
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil || version != EntryFileVersion {
		return corrupt(fmt.Sprintf("version %d (want %d)", version, EntryFileVersion))
	}
	readLabel := func(name, want string) error {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("truncated %s length", name)
		}
		if n > maxEntryLabel || int64(n) > int64(r.Len()) {
			return fmt.Errorf("%s length %d out of range", name, n)
		}
		lab := make([]byte, n)
		if _, err := r.Read(lab); err != nil {
			return fmt.Errorf("truncated %s", name)
		}
		if string(lab) != want {
			return fmt.Errorf("%s %q (want %q)", name, lab, want)
		}
		return nil
	}
	if err := readLabel("kind", kind); err != nil {
		return corrupt(err.Error())
	}
	if err := readLabel("key", key); err != nil {
		return corrupt(err.Error())
	}
	var paylen uint64
	if err := binary.Read(r, binary.LittleEndian, &paylen); err != nil {
		return corrupt("truncated payload length")
	}
	var sum [32]byte
	if _, err := r.Read(sum[:]); err != nil {
		return corrupt("truncated checksum")
	}
	if paylen != uint64(r.Len()) {
		return corrupt(fmt.Sprintf("payload length %d, %d bytes remain", paylen, r.Len()))
	}
	payload := data[len(data)-r.Len():]
	if sha256.Sum256(payload) != sum {
		return corrupt("checksum mismatch")
	}
	return payload, nil
}
