package db

import "fmt"

// undoKind enumerates the operations a transaction can roll back.
type undoKind uint8

const (
	undoInsert undoKind = iota // undo by delete
	undoDelete                 // undo by reinsert
	undoUpdate                 // undo by restoring the old row
)

type undoRec struct {
	kind  undoKind
	table *Table
	key   Value
	old   Row
}

// Txn is a single-threaded transaction with undo-based rollback and
// redo logging on commit.
type Txn struct {
	db   *Database
	id   uint64
	undo []undoRec
	redo []LogRecord
	done bool
}

// Begin starts a transaction.
func (d *Database) Begin() *Txn {
	d.txnSeq++
	return &Txn{db: d, id: d.txnSeq}
}

func (tx *Txn) check() error {
	if tx == nil || tx.db == nil {
		return ErrNoTxn
	}
	if tx.done {
		return fmt.Errorf("%w: already finished", ErrNoTxn)
	}
	return nil
}

// Insert adds a row inside the transaction.
func (tx *Txn) Insert(table string, row Row) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	id, err := tx.db.insertRow(t, row)
	if err != nil {
		return err
	}
	tx.db.touch(t, id, true)
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, table: t, key: row[0]})
	if tx.db.wal != nil {
		tx.redo = append(tx.redo, LogRecord{Kind: LogInsert, Table: table, Key: row[0], Row: append(Row(nil), row...)})
	}
	return nil
}

// Delete removes a row by primary key inside the transaction.
func (tx *Txn) Delete(table string, key Value) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	if id, ok := t.pk[key]; ok {
		tx.db.touch(t, id, true)
	}
	old, err := tx.db.deleteRow(t, key)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoDelete, table: t, key: key, old: old})
	if tx.db.wal != nil {
		tx.redo = append(tx.redo, LogRecord{Kind: LogDelete, Table: table, Key: key})
	}
	return nil
}

// Update sets column col of the row with the given key.
func (tx *Txn) Update(table string, key Value, col int, v Value) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	id, ok := t.pk[key]
	if !ok {
		return fmt.Errorf("%w: %q key %d", ErrNoRow, table, key)
	}
	if col <= 0 || col >= t.cols {
		return fmt.Errorf("%w: column %d of %q (primary key is immutable)", ErrBadSchema, col, table)
	}
	tx.db.touch(t, id, true)
	old := append(Row(nil), t.rows[id]...)
	t.rows[id][col] = v
	tx.undo = append(tx.undo, undoRec{kind: undoUpdate, table: t, key: key, old: old})
	if tx.db.wal != nil {
		tx.redo = append(tx.redo, LogRecord{Kind: LogUpdate, Table: table, Key: key, Col: col, Val: v})
	}
	return nil
}

// Get reads a row inside the transaction (no locking: the simulated
// application server serializes conflicting work through its own locks).
func (tx *Txn) Get(table string, key Value) (Row, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	return tx.db.Get(table, key)
}

// Commit finishes the transaction, keeping its effects and making them
// durable through the WAL when one is attached.
func (tx *Txn) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.db.wal != nil && len(tx.redo) > 0 {
		tx.db.wal.commit(tx.id, tx.redo)
	}
	tx.done = true
	tx.undo = nil
	tx.redo = nil
	return nil
}

// Abort rolls every change back in reverse order.
func (tx *Txn) Abort() error {
	if err := tx.check(); err != nil {
		return err
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch u.kind {
		case undoInsert:
			if _, err := tx.db.deleteRow(u.table, u.key); err != nil {
				return fmt.Errorf("db: rollback delete: %w", err)
			}
		case undoDelete:
			if _, err := tx.db.insertRow(u.table, u.old); err != nil {
				return fmt.Errorf("db: rollback reinsert: %w", err)
			}
		case undoUpdate:
			id, ok := u.table.pk[u.key]
			if !ok {
				return fmt.Errorf("db: rollback update: %w", ErrNoRow)
			}
			u.table.rows[id] = u.old
		}
	}
	tx.done = true
	tx.undo = nil
	tx.redo = nil
	return nil
}
