package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := []float64{1, 2, 3, 4}
	r, err := Correlation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("constant-series r = %v, want 0", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err != ErrTooShort {
		t.Fatalf("want ErrTooShort, got %v", err)
	}
}

// Property: correlation is invariant under positive affine transforms and
// bounded by [-1, 1].
func TestCorrelationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		n := 8 + r1.Intn(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r1.NormFloat64()
			y[i] = r1.NormFloat64()
		}
		r, err := Correlation(x, y)
		if err != nil || r < -1 || r > 1 {
			return false
		}
		// Affine transform y' = a*y + b with a > 0 preserves r.
		a := 0.5 + rng.Float64()*10
		b := rng.NormFloat64() * 100
		y2 := make([]float64, n)
		for i := range y {
			y2[i] = a*y[i] + b
		}
		r2, err := Correlation(x, y2)
		if err != nil {
			return false
		}
		return almostEqual(r, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		n := 4 + r1.Intn(32)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r1.Float64() * 100
			y[i] = r1.Float64() * 100
		}
		a, _ := Correlation(x, y)
		b, _ := Correlation(y, x)
		return almostEqual(a, b, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.9, 9.1},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("want error on q out of range")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{5, 5, 5}); cv != 0 {
		t.Fatalf("constant cv = %v, want 0", cv)
	}
	if cv := CoefficientOfVariation([]float64{0, 0}); cv != 0 {
		t.Fatalf("zero-mean cv = %v, want 0", cv)
	}
	cv := CoefficientOfVariation([]float64{9, 11})
	if !almostEqual(cv, 0.1, 1e-12) {
		t.Fatalf("cv = %v, want 0.1", cv)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("cpi", 100)
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.At(3) != 3 {
		t.Fatalf("At(3) = %v", s.At(3))
	}
	if got := s.TimeSeconds(5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("TimeSeconds(5) = %v, want 0.5", got)
	}
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.At(0) != 2 {
		t.Fatalf("Slice = %+v", sub.Values)
	}
	// Out-of-range slicing clamps.
	if s.Slice(-1, 100).Len() != 10 {
		t.Fatal("clamped slice wrong")
	}
	if s.Slice(7, 3).Len() != 0 {
		t.Fatal("inverted slice should be empty")
	}
}

func TestRatioSeries(t *testing.T) {
	num := &Series{Name: "miss", WindowMS: 100, Values: []float64{1, 2, 0}}
	den := &Series{Name: "ld", WindowMS: 100, Values: []float64{4, 0, 8}}
	r, err := RatioSeries("rate", num, den)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0, 0}
	for i, w := range want {
		if r.Values[i] != w {
			t.Fatalf("ratio[%d] = %v, want %v", i, r.Values[i], w)
		}
	}
	den.Values = den.Values[:2]
	if _, err := RatioSeries("rate", num, den); err != ErrLengthMismatch {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestBezierSmoothEndpointsAndRange(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0, 10, 0, 10}
	out, err := BezierSmooth(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != xs[0] || out[49] != xs[len(xs)-1] {
		t.Fatalf("endpoints not interpolated: %v %v", out[0], out[49])
	}
	for _, v := range out {
		if v < -1e-9 || v > 10+1e-9 {
			t.Fatalf("bezier escaped convex hull: %v", v)
		}
	}
}

func TestBezierSmoothLongSeriesNoOverflow(t *testing.T) {
	xs := make([]float64, 2000) // C(1999, k) overflows float64 badly if naive
	for i := range xs {
		xs[i] = math.Sin(float64(i) / 50)
	}
	out, err := BezierSmooth(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite smooth value %v", v)
		}
	}
}

func TestBezierSmoothErrors(t *testing.T) {
	if _, err := BezierSmooth([]float64{1}, 10); err != ErrTooShort {
		t.Fatalf("want ErrTooShort, got %v", err)
	}
	if _, err := BezierSmooth([]float64{1, 2}, 1); err == nil {
		t.Fatal("want error for n < 2")
	}
}

func TestMovingAverage(t *testing.T) {
	out, err := MovingAverage([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Fatalf("ma[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := MovingAverage(nil, 2); err == nil {
		t.Fatal("want error for even window")
	}
}

// Property: a k=1 moving average is the identity.
func TestMovingAverageIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.Float64()
		}
		out, err := MovingAverage(xs, 1)
		if err != nil {
			return false
		}
		for i := range xs {
			if xs[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIPlot(t *testing.T) {
	s := &Series{Name: "x", WindowMS: 100, Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}}
	out := s.ASCIIPlot(8, 4)
	if out == "" {
		t.Fatal("empty plot")
	}
	if (&Series{}).ASCIIPlot(8, 4) != "" {
		t.Fatal("empty series should yield empty plot")
	}
	// Constant series should not panic (degenerate range).
	c := &Series{Name: "c", Values: []float64{5, 5, 5, 5}}
	if c.ASCIIPlot(4, 3) == "" {
		t.Fatal("constant series plot empty")
	}
}

func TestMinMax(t *testing.T) {
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}
