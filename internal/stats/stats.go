// Package stats provides the statistical machinery used by the
// characterization pipeline: Pearson correlation (the paper's Section 4.3
// formula), time series with windowed samples, Bezier smoothing (used for
// the paper's Figure 7), and summary statistics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when two series that must be paired
// sample-by-sample have different lengths.
var ErrLengthMismatch = errors.New("stats: series length mismatch")

// ErrTooShort is returned when an operation needs more samples than given.
var ErrTooShort = errors.New("stats: series too short")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Correlation computes the Pearson correlation coefficient between x and y
// using the exact formula quoted in the paper (Section 4.3):
//
//	r = Σ(x-x̄)(y-ȳ) / sqrt(Σ(x-x̄)² · Σ(y-ȳ)²)
//
// It returns a value in [-1, 1]. If either series is constant the
// correlation is undefined and 0 is returned (with a nil error) because the
// paper treats uncorrelated and degenerate series identically in Figure 10.
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, ErrTooShort
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx * syy)
	if den == 0 {
		return 0, nil
	}
	r := sxy / den
	// Guard against floating point drift outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrTooShort
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds descriptive statistics for one series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	p50, _ := Quantile(xs, 0.5)
	p90, _ := Quantile(xs, 0.9)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    p50,
		P90:    p90,
		Max:    Max(xs),
	}
}

// CoefficientOfVariation returns stddev/mean, or 0 when the mean is 0.
// The paper's steady-state argument ("the runtime profile of the workload
// is fairly constant") is checked with this.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}
