package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("index %d freq = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		if d := a.Draw(rng); d == 0 || d == 2 {
			t.Fatalf("drew zero-weight index %d", d)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if a.Draw(rng) != 0 {
			t.Fatal("single-outcome sampler drew nonzero")
		}
	}
}

func TestAliasSkewedDistribution(t *testing.T) {
	// Flat-profile-like: 8500 outcomes, heavy head.
	weights := make([]float64, 8500)
	for i := range weights {
		weights[i] = 1 / float64(i+8)
	}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, len(weights))
	const n = 1000000
	for i := 0; i < n; i++ {
		counts[a.Draw(rng)]++
	}
	// Head outcome frequency within 10% relative of expectation.
	var sum float64
	for _, w := range weights {
		sum += w
	}
	want := weights[0] / sum
	got := float64(counts[0]) / n
	if math.Abs(got-want) > want*0.1 {
		t.Fatalf("head freq %.5f, want %.5f", got, want)
	}
}
