package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named, uniformly sampled time series. Time is carried as the
// window index times the window length, matching how the HPM facility
// timestamps its samples.
type Series struct {
	Name     string
	WindowMS int // sampling window length in milliseconds
	Values   []float64
}

// NewSeries creates an empty series with the given name and window length.
func NewSeries(name string, windowMS int) *Series {
	return &Series{Name: name, WindowMS: windowMS}
}

// Append adds one sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// At returns the i-th sample.
func (s *Series) At(i int) float64 { return s.Values[i] }

// TimeSeconds returns the timestamp, in seconds, of sample i.
func (s *Series) TimeSeconds(i int) float64 {
	return float64(i) * float64(s.WindowMS) / 1000.0
}

// Summary returns descriptive statistics of the series values.
func (s *Series) Summary() Summary { return Summarize(s.Values) }

// Slice returns a sub-series covering samples [lo, hi).
func (s *Series) Slice(lo, hi int) *Series {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if lo > hi {
		lo = hi
	}
	return &Series{Name: s.Name, WindowMS: s.WindowMS, Values: s.Values[lo:hi]}
}

// RatioSeries builds an element-wise ratio num/den as a new series.
// Windows where den is zero yield zero.
func RatioSeries(name string, num, den *Series) (*Series, error) {
	if len(num.Values) != len(den.Values) {
		return nil, ErrLengthMismatch
	}
	out := &Series{Name: name, WindowMS: num.WindowMS, Values: make([]float64, len(num.Values))}
	for i := range num.Values {
		if den.Values[i] != 0 {
			out.Values[i] = num.Values[i] / den.Values[i]
		}
	}
	return out, nil
}

// BezierSmooth returns a smoothed copy of xs evaluated at n points along a
// Bezier curve whose control points are the samples. The paper applies
// Bezier smoothing to Figure 7 ("the graph has been fitted using Bezier
// smoothing"); gnuplot's `smooth bezier` is exactly this construction.
// For long series the binomial weights are computed in log space to avoid
// overflow. n must be >= 2.
func BezierSmooth(xs []float64, n int) ([]float64, error) {
	if len(xs) < 2 {
		return nil, ErrTooShort
	}
	if n < 2 {
		return nil, fmt.Errorf("stats: bezier needs n >= 2, got %d", n)
	}
	deg := len(xs) - 1
	// log C(deg, i) table.
	logC := make([]float64, len(xs))
	for i := 1; i <= deg; i++ {
		logC[i] = logC[i-1] + math.Log(float64(deg-i+1)) - math.Log(float64(i))
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		t := float64(k) / float64(n-1)
		switch t {
		case 0:
			out[k] = xs[0]
			continue
		case 1:
			out[k] = xs[deg]
			continue
		}
		lt, l1t := math.Log(t), math.Log(1-t)
		var sum float64
		for i := 0; i <= deg; i++ {
			w := math.Exp(logC[i] + float64(i)*lt + float64(deg-i)*l1t)
			sum += w * xs[i]
		}
		out[k] = sum
	}
	return out, nil
}

// MovingAverage returns the k-point centered moving average of xs (edges use
// the available neighbors). k must be odd and >= 1.
func MovingAverage(xs []float64, k int) ([]float64, error) {
	if k < 1 || k%2 == 0 {
		return nil, fmt.Errorf("stats: moving average window must be odd and >= 1, got %d", k)
	}
	half := k / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out, nil
}

// ASCIIPlot renders a compact ASCII chart of the series, width x height
// characters, for terminal figure output. It is intentionally simple: one
// character column per bucket of samples, '*' marks.
func (s *Series) ASCIIPlot(width, height int) string {
	if len(s.Values) == 0 || width < 2 || height < 2 {
		return ""
	}
	lo, hi := Min(s.Values), Max(s.Values)
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		// Average the samples that land in this column.
		a := c * len(s.Values) / width
		b := (c + 1) * len(s.Values) / width
		if b <= a {
			b = a + 1
		}
		if b > len(s.Values) {
			b = len(s.Values)
		}
		v := Mean(s.Values[a:b])
		row := int((v - lo) / (hi - lo) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[height-1-row][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [min=%.4g max=%.4g mean=%.4g]\n", s.Name, lo, hi, Mean(s.Values))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
