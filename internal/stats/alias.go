package stats

import (
	"errors"
	"math/rand"
)

// Alias is a Walker alias sampler: O(1) draws from a fixed discrete
// distribution. The workload uses it to draw methods from the 8,500-entry
// flat profile on every simulated invocation.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds a sampler over the given non-negative weights (they need
// not be normalized).
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("stats: empty weight vector")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("stats: negative weight")
		}
		sum += w
	}
	if sum == 0 {
		return nil, errors.New("stats: all-zero weights")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Draw samples one index using rng.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }
