// Package driver models the benchmark driver machine: it injects requests
// at a configured injection rate (IR), tracks per-class response times,
// audits the run against the benchmark's response-time rules (90% of web
// requests under 2 s, 90% of RMI requests under 5 s), and computes the
// JOPS metric. Like the real driver, it runs "outside" the SUT and does
// not consume SUT resources.
//
// The driver is workload-agnostic: classes are indices into the arrival
// rates and deadline slices the active workload pack supplies.
package driver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"jasworkload/internal/stats"
)

// Response-time requirements from the benchmark run rules.
const (
	WebDeadlineMS = 2000.0
	RMIDeadlineMS = 5000.0
	QuantileReq   = 0.90
)

// Config parameterizes the driver.
type Config struct {
	IR int
	// Rates are the per-class arrival rates in requests/second per unit of
	// IR, indexed by class.
	Rates []float64
	Seed  int64
}

// Driver generates Poisson arrivals per request class.
type Driver struct {
	cfg  Config
	rng  *rand.Rand
	sent []uint64
}

// New builds a driver.
func New(cfg Config) (*Driver, error) {
	if cfg.IR <= 0 {
		return nil, fmt.Errorf("driver: bad injection rate %d", cfg.IR)
	}
	var total float64
	for _, r := range cfg.Rates {
		if r < 0 {
			return nil, fmt.Errorf("driver: negative class rate %v", r)
		}
		total += r
	}
	if total <= 0 {
		return nil, errors.New("driver: empty mix")
	}
	return &Driver{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		sent: make([]uint64, len(cfg.Rates)),
	}, nil
}

// Arrival is one injected request with its offset within the window.
type Arrival struct {
	Class    int
	OffsetMS float64
}

// Window returns the arrivals for the next windowMS milliseconds, sorted
// by offset. Counts are Poisson with mean rate IR x mix; the constant IR
// makes the long-run rate constant, as in the benchmark.
func (d *Driver) Window(windowMS float64) []Arrival {
	var out []Arrival
	for class, perIR := range d.cfg.Rates {
		rate := float64(d.cfg.IR) * perIR // per second
		mean := rate * windowMS / 1000
		n := d.poisson(mean)
		for i := 0; i < n; i++ {
			out = append(out, Arrival{Class: class, OffsetMS: d.rng.Float64() * windowMS})
		}
		d.sent[class] += uint64(n)
	}
	// Insertion sort by offset (windows are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].OffsetMS < out[j-1].OffsetMS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// poisson samples a Poisson variate by Knuth's method (means here are
// modest; for large means it degrades gracefully via normal approximation).
func (d *Driver) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		n := int(mean + math.Sqrt(mean)*d.rng.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= d.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Sent returns per-class injected request counts.
func (d *Driver) Sent() []uint64 { return d.sent }

// Tracker accumulates response times and completions for the audit.
type Tracker struct {
	resp      [][]float64
	completed []uint64
	deadlines []float64
	failed    uint64
	startMS   float64
	endMS     float64
}

// NewTracker creates a tracker for a measurement interval starting at
// startMS (ramp-up excluded), auditing each class against its run-rule
// deadline.
func NewTracker(startMS float64, deadlines []float64) *Tracker {
	return &Tracker{
		resp:      make([][]float64, len(deadlines)),
		completed: make([]uint64, len(deadlines)),
		deadlines: deadlines,
		startMS:   startMS,
		endMS:     startMS,
	}
}

// Record logs one completed request.
func (t *Tracker) Record(class int, completionMS, responseMS float64) {
	if completionMS < t.startMS {
		return // ramp-up: excluded from the audit
	}
	t.resp[class] = append(t.resp[class], responseMS)
	t.completed[class]++
	if completionMS > t.endMS {
		t.endMS = completionMS
	}
}

// RecordFailure logs a request that errored out.
func (t *Tracker) RecordFailure() { t.failed++ }

// Completed returns per-class completion counts in the measured interval.
func (t *Tracker) Completed() []uint64 { return t.completed }

// JOPS returns jAppServer-Operations-per-Second over the measured interval.
func (t *Tracker) JOPS() float64 {
	elapsed := (t.endMS - t.startMS) / 1000
	if elapsed <= 0 {
		return 0
	}
	var n uint64
	for _, c := range t.completed {
		n += c
	}
	return float64(n) / elapsed
}

// ClassAudit is the per-class audit result.
type ClassAudit struct {
	Class      int
	Count      uint64
	P90MS      float64
	MeanMS     float64
	DeadlineMS float64
	Pass       bool
}

// Audit evaluates the run rules and returns per-class results plus the
// overall pass verdict. A class with no completed requests fails its
// audit (its quantile is unmeasurable), and a run with no completed
// requests — or more than 1% failures — fails overall.
func (t *Tracker) Audit() ([]ClassAudit, bool) {
	out := make([]ClassAudit, 0, len(t.deadlines))
	pass := true
	var total uint64
	for class, deadline := range t.deadlines {
		ca := ClassAudit{Class: class, Count: t.completed[class], DeadlineMS: deadline}
		if len(t.resp[class]) > 0 {
			p90, err := stats.Quantile(t.resp[class], QuantileReq)
			if err == nil {
				ca.P90MS = p90
			}
			ca.MeanMS = stats.Mean(t.resp[class])
			ca.Pass = ca.P90MS <= ca.DeadlineMS
		}
		pass = pass && ca.Pass
		total += ca.Count
		out = append(out, ca)
	}
	if total == 0 || t.failed > total/100 {
		pass = false
	}
	return out, pass
}
