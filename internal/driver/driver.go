// Package driver models the benchmark driver machine: it injects requests
// at a configured injection rate (IR), tracks per-class response times,
// audits the run against the benchmark's response-time rules (90% of web
// requests under 2 s, 90% of RMI requests under 5 s), and computes the
// JOPS metric. Like the real driver, it runs "outside" the SUT and does
// not consume SUT resources.
//
// The driver is workload-agnostic: classes are indices into the arrival
// rates and deadline slices the active workload pack supplies.
package driver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"jasworkload/internal/stats"
)

// Response-time requirements from the benchmark run rules.
const (
	WebDeadlineMS = 2000.0
	RMIDeadlineMS = 5000.0
	QuantileReq   = 0.90
)

// Config parameterizes the driver.
type Config struct {
	IR int
	// Rates are the per-class arrival rates in requests/second per unit of
	// IR, indexed by class.
	Rates []float64
	Seed  int64

	// Source, when non-nil, replaces the driver's built-in steady Poisson
	// loop as the producer of per-window arrivals (spec-driven cohorts,
	// bursts, ramps, trace replay — see internal/loadgen). The driver still
	// owns the per-class accounting and the audit; a nil Source is the
	// verbatim legacy path, bit-identical to the pre-Source driver.
	Source Source
}

// Source produces the arrivals of one window. Implementations must return
// arrivals sorted by offset with class indices inside [0, len(Rates)), and
// must be deterministic for a fixed construction seed: the engine's
// byte-identical-replay guarantees ride on it.
type Source interface {
	Window(windowMS float64) []Arrival
}

// Driver generates Poisson arrivals per request class.
type Driver struct {
	cfg  Config
	rng  *rand.Rand
	sent []uint64
}

// New builds a driver.
func New(cfg Config) (*Driver, error) {
	if cfg.IR <= 0 {
		return nil, fmt.Errorf("driver: bad injection rate %d", cfg.IR)
	}
	var total float64
	for _, r := range cfg.Rates {
		if r < 0 {
			return nil, fmt.Errorf("driver: negative class rate %v", r)
		}
		total += r
	}
	if total <= 0 {
		return nil, errors.New("driver: empty mix")
	}
	return &Driver{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		sent: make([]uint64, len(cfg.Rates)),
	}, nil
}

// Arrival is one injected request with its offset within the window.
type Arrival struct {
	Class    int
	OffsetMS float64
}

// Window returns the arrivals for the next windowMS milliseconds, sorted
// by offset. With a Source configured, the source produces the window
// (already sorted) and the driver only keeps the per-class accounting.
// Otherwise counts are Poisson with mean rate IR x mix; the constant IR
// makes the long-run rate constant, as in the benchmark.
func (d *Driver) Window(windowMS float64) []Arrival {
	if d.cfg.Source != nil {
		out := d.cfg.Source.Window(windowMS)
		for _, a := range out {
			d.sent[a.Class]++
		}
		return out
	}
	// Size the slice for the expected count plus slack for Poisson spread;
	// only the capacity is a guess, so under-estimates merely re-grow.
	var totalMean float64
	for _, perIR := range d.cfg.Rates {
		totalMean += float64(d.cfg.IR) * perIR * windowMS / 1000
	}
	out := make([]Arrival, 0, int(totalMean+4*math.Sqrt(totalMean))+4)
	for class, perIR := range d.cfg.Rates {
		rate := float64(d.cfg.IR) * perIR // per second
		mean := rate * windowMS / 1000
		n := Poisson(d.rng, mean)
		for i := 0; i < n; i++ {
			out = append(out, Arrival{Class: class, OffsetMS: d.rng.Float64() * windowMS})
		}
		d.sent[class] += uint64(n)
	}
	// Insertion sort by offset (windows are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].OffsetMS < out[j-1].OffsetMS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ptrsCutoff is the mean above which Poisson switches from Knuth's exact
// product method (O(mean) uniform draws) to the PTRS transformed-rejection
// sampler (O(1) draws, also exact). The cutoff sits above every per-class
// window mean the calibrated configurations produce, so the golden streams
// predate-and-postdate the sampler swap byte for byte.
const ptrsCutoff = 50

// Poisson samples a Poisson variate from rng: Knuth's exact product method
// for small means, and for large means the PTRS transformed-rejection
// sampler (Hörmann 1993) — exact, with ~1.1 (u,v) pairs consumed per
// variate instead of O(mean) uniforms. The loadgen sources share this
// sampler with the driver's legacy loop; TestPoissonGoldenSequence pins
// the draw sequence of both regimes.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > ptrsCutoff {
		return poissonPTRS(rng, mean)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS is the PTRS ("Poisson Transformed Rejection with Squeeze")
// sampler, valid for mean >= 10. Each attempt consumes exactly two
// uniforms; the acceptance rate is high enough that the expected draw
// count stays near two for any mean, where Knuth's method needs ~mean
// draws and the previous normal approximation was biased for skewed tails.
func poissonPTRS(rng *rand.Rand, mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int(k)
		}
	}
}

// Sent returns per-class injected request counts.
func (d *Driver) Sent() []uint64 { return d.sent }

// Tracker accumulates response times and completions for the audit.
type Tracker struct {
	resp      [][]float64
	completed []uint64
	deadlines []float64
	failed    uint64
	startMS   float64
	endMS     float64
}

// NewTracker creates a tracker for a measurement interval starting at
// startMS (ramp-up excluded), auditing each class against its run-rule
// deadline.
func NewTracker(startMS float64, deadlines []float64) *Tracker {
	return &Tracker{
		resp:      make([][]float64, len(deadlines)),
		completed: make([]uint64, len(deadlines)),
		deadlines: deadlines,
		startMS:   startMS,
		endMS:     startMS,
	}
}

// Record logs one completed request.
func (t *Tracker) Record(class int, completionMS, responseMS float64) {
	if completionMS < t.startMS {
		return // ramp-up: excluded from the audit
	}
	t.resp[class] = append(t.resp[class], responseMS)
	t.completed[class]++
	if completionMS > t.endMS {
		t.endMS = completionMS
	}
}

// RecordFailure logs a request that errored out.
func (t *Tracker) RecordFailure() { t.failed++ }

// Completed returns per-class completion counts in the measured interval.
func (t *Tracker) Completed() []uint64 { return t.completed }

// JOPS returns jAppServer-Operations-per-Second over the measured interval.
func (t *Tracker) JOPS() float64 {
	elapsed := (t.endMS - t.startMS) / 1000
	if elapsed <= 0 {
		return 0
	}
	var n uint64
	for _, c := range t.completed {
		n += c
	}
	return float64(n) / elapsed
}

// ClassAudit is the per-class audit result.
type ClassAudit struct {
	Class      int
	Count      uint64
	P90MS      float64
	MeanMS     float64
	DeadlineMS float64
	Pass       bool
}

// Audit evaluates the run rules and returns per-class results plus the
// overall pass verdict. A class with no completed requests fails its
// audit (its quantile is unmeasurable), and a run with no completed
// requests — or more than 1% failures — fails overall.
func (t *Tracker) Audit() ([]ClassAudit, bool) {
	out := make([]ClassAudit, 0, len(t.deadlines))
	pass := true
	var total uint64
	for class, deadline := range t.deadlines {
		ca := ClassAudit{Class: class, Count: t.completed[class], DeadlineMS: deadline}
		if len(t.resp[class]) > 0 {
			p90, err := stats.Quantile(t.resp[class], QuantileReq)
			if err == nil {
				ca.P90MS = p90
			}
			ca.MeanMS = stats.Mean(t.resp[class])
			ca.Pass = ca.P90MS <= ca.DeadlineMS
		}
		pass = pass && ca.Pass
		total += ca.Count
		out = append(out, ca)
	}
	if total == 0 || t.failed > total/100 {
		pass = false
	}
	return out, pass
}
