package driver

import (
	"math"
	"testing"

	"jasworkload/internal/server"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{IR: 0, Mix: server.DefaultMix()}); err == nil {
		t.Fatal("IR 0 accepted")
	}
	if _, err := New(Config{IR: 10}); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestWindowRates(t *testing.T) {
	d, err := New(Config{IR: 40, Mix: server.DefaultMix(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var counts [server.NumRequestTypes]int
	const windows = 600 // 10 minutes of 1s windows
	for w := 0; w < windows; w++ {
		for _, a := range d.Window(1000) {
			counts[a.Type]++
			if a.OffsetMS < 0 || a.OffsetMS >= 1000 {
				t.Fatalf("offset %v outside window", a.OffsetMS)
			}
		}
	}
	mix := server.DefaultMix()
	for rt := server.RequestType(0); rt < server.RequestType(server.NumRequestTypes); rt++ {
		want := 40 * mix.RatePerIR[rt] * windows
		got := float64(counts[rt])
		if math.Abs(got-want) > want*0.08 {
			t.Errorf("%v: %v arrivals, want ~%v", rt, got, want)
		}
	}
	// Total ~1.6 JOPS per IR injected.
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	perIRperSec := total / windows / 40
	if math.Abs(perIRperSec-1.6) > 0.1 {
		t.Fatalf("injected %.3f req/s/IR, want 1.6", perIRperSec)
	}
	sent := d.Sent()
	var sentTotal uint64
	for _, s := range sent {
		sentTotal += s
	}
	if sentTotal != uint64(total) {
		t.Fatal("Sent() disagrees with arrivals")
	}
}

func TestWindowSorted(t *testing.T) {
	d, _ := New(Config{IR: 100, Mix: server.DefaultMix(), Seed: 2})
	for w := 0; w < 20; w++ {
		arr := d.Window(1000)
		for i := 1; i < len(arr); i++ {
			if arr[i].OffsetMS < arr[i-1].OffsetMS {
				t.Fatal("arrivals not sorted")
			}
		}
	}
}

func TestPoissonLargeMean(t *testing.T) {
	d, _ := New(Config{IR: 1000, Mix: server.DefaultMix(), Seed: 3})
	var n int
	for w := 0; w < 50; w++ {
		n += len(d.Window(1000))
	}
	want := 1000 * 1.6 * 50.0
	if math.Abs(float64(n)-want) > want*0.05 {
		t.Fatalf("high-IR arrivals = %d, want ~%.0f", n, want)
	}
}

func TestTrackerJOPSAndAudit(t *testing.T) {
	tr := NewTracker(1000)
	// 100 requests over 10 seconds, all fast.
	for i := 0; i < 100; i++ {
		rt := server.RequestType(i % server.NumRequestTypes)
		at := 1000 + float64(i)*100
		tr.Record(rt, at+100, 150)
	}
	jops := tr.JOPS()
	if jops < 9 || jops > 11.5 {
		t.Fatalf("JOPS = %v, want ~10", jops)
	}
	audits, pass := tr.Audit()
	if !pass {
		t.Fatal("fast run failed audit")
	}
	if len(audits) != server.NumRequestTypes {
		t.Fatalf("audit classes = %d", len(audits))
	}
	for _, a := range audits {
		if !a.Pass || a.P90MS > a.DeadlineMS {
			t.Fatalf("class %v failed: %+v", a.Type, a)
		}
		if a.Type.IsWeb() && a.DeadlineMS != WebDeadlineMS {
			t.Fatal("web deadline wrong")
		}
		if !a.Type.IsWeb() && a.DeadlineMS != RMIDeadlineMS {
			t.Fatal("RMI deadline wrong")
		}
	}
}

func TestTrackerAuditFailsSlowWeb(t *testing.T) {
	tr := NewTracker(0)
	for i := 0; i < 100; i++ {
		// 85% fast, 15% very slow: p90 over the 2s web deadline.
		resp := 100.0
		if i%7 == 0 {
			resp = 30000
		}
		tr.Record(server.ReqBrowse, float64(i)*10+10, resp)
		tr.Record(server.ReqCreateVehicle, float64(i)*10+10, 100)
		tr.Record(server.ReqPurchase, float64(i)*10+10, 100)
		tr.Record(server.ReqManage, float64(i)*10+10, 100)
	}
	_, pass := tr.Audit()
	if pass {
		t.Fatal("slow web class passed the audit")
	}
}

func TestTrackerExcludesRampUp(t *testing.T) {
	tr := NewTracker(5000)
	tr.Record(server.ReqBrowse, 4000, 100) // during ramp-up
	if tr.Completed()[server.ReqBrowse] != 0 {
		t.Fatal("ramp-up request counted")
	}
	tr.Record(server.ReqBrowse, 6000, 100)
	if tr.Completed()[server.ReqBrowse] != 1 {
		t.Fatal("steady-state request not counted")
	}
}

func TestTrackerEmptyFails(t *testing.T) {
	tr := NewTracker(0)
	if _, pass := tr.Audit(); pass {
		t.Fatal("empty run passed")
	}
	if tr.JOPS() != 0 {
		t.Fatal("empty JOPS nonzero")
	}
}

func TestTrackerFailureBudget(t *testing.T) {
	tr := NewTracker(0)
	for i := 0; i < 100; i++ {
		tr.Record(server.ReqBrowse, float64(i+1)*10, 50)
		tr.Record(server.ReqPurchase, float64(i+1)*10, 50)
		tr.Record(server.ReqManage, float64(i+1)*10, 50)
		tr.Record(server.ReqCreateVehicle, float64(i+1)*10, 50)
	}
	for i := 0; i < 10; i++ {
		tr.RecordFailure()
	}
	if _, pass := tr.Audit(); pass {
		t.Fatal("run with >1% failures passed")
	}
}
