package driver

import (
	"math"
	"math/rand"
	"testing"
)

// jasRates/jasDeadlines mirror the default jas2004 pack (three web classes
// at 2 s, one RMI class at 5 s) without importing it: the driver is
// workload-agnostic and the tests exercise it the same way.
var (
	jasRates     = []float64{0.25, 0.25, 0.50, 0.60}
	jasDeadlines = []float64{WebDeadlineMS, WebDeadlineMS, WebDeadlineMS, RMIDeadlineMS}
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{IR: 0, Rates: jasRates}); err == nil {
		t.Fatal("IR 0 accepted")
	}
	if _, err := New(Config{IR: 10}); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := New(Config{IR: 10, Rates: []float64{0.5, -0.1}}); err == nil {
		t.Fatal("negative class rate accepted")
	}
	if _, err := New(Config{IR: 10, Rates: []float64{0, 0}}); err == nil {
		t.Fatal("all-zero mix accepted")
	}
}

func TestWindowRates(t *testing.T) {
	d, err := New(Config{IR: 40, Rates: jasRates, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(jasRates))
	const windows = 600 // 10 minutes of 1s windows
	for w := 0; w < windows; w++ {
		for _, a := range d.Window(1000) {
			counts[a.Class]++
			if a.OffsetMS < 0 || a.OffsetMS >= 1000 {
				t.Fatalf("offset %v outside window", a.OffsetMS)
			}
		}
	}
	for class, perIR := range jasRates {
		want := 40 * perIR * windows
		got := float64(counts[class])
		if math.Abs(got-want) > want*0.08 {
			t.Errorf("class %d: %v arrivals, want ~%v", class, got, want)
		}
	}
	// Total ~1.6 JOPS per IR injected.
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	perIRperSec := total / windows / 40
	if math.Abs(perIRperSec-1.6) > 0.1 {
		t.Fatalf("injected %.3f req/s/IR, want 1.6", perIRperSec)
	}
	sent := d.Sent()
	var sentTotal uint64
	for _, s := range sent {
		sentTotal += s
	}
	if sentTotal != uint64(total) {
		t.Fatal("Sent() disagrees with arrivals")
	}
}

func TestWindowSorted(t *testing.T) {
	d, _ := New(Config{IR: 100, Rates: jasRates, Seed: 2})
	for w := 0; w < 20; w++ {
		arr := d.Window(1000)
		for i := 1; i < len(arr); i++ {
			if arr[i].OffsetMS < arr[i-1].OffsetMS {
				t.Fatal("arrivals not sorted")
			}
		}
	}
}

func TestPoissonLargeMean(t *testing.T) {
	d, _ := New(Config{IR: 1000, Rates: jasRates, Seed: 3})
	var n int
	for w := 0; w < 50; w++ {
		n += len(d.Window(1000))
	}
	want := 1000 * 1.6 * 50.0
	if math.Abs(float64(n)-want) > want*0.05 {
		t.Fatalf("high-IR arrivals = %d, want ~%.0f", n, want)
	}
}

// TestPoissonGoldenSequence pins the exact draw sequence of both sampler
// regimes. The small-mean sequence is Knuth's product method verbatim — it
// predates the PTRS swap, so these values double as the proof that the
// calibrated golden streams (whose per-class window means all sit below
// the cutoff) were untouched. The large-mean sequence pins PTRS itself so
// any future change to it is a deliberate golden update, not drift.
func TestPoissonGoldenSequence(t *testing.T) {
	small := rand.New(rand.NewSource(7))
	wantSmall := []int{23, 34, 18, 32, 20, 27, 22, 30, 25, 28}
	for i, want := range wantSmall {
		if got := Poisson(small, 24); got != want {
			t.Fatalf("knuth draw %d: got %d, want %d", i, got, want)
		}
	}
	large := rand.New(rand.NewSource(7))
	wantLarge := []int{848, 777, 817, 788, 797, 766, 766, 816, 834, 860}
	for i, want := range wantLarge {
		if got := Poisson(large, 800); got != want {
			t.Fatalf("ptrs draw %d: got %d, want %d", i, got, want)
		}
	}
}

// The PTRS sampler is exact: its empirical mean and variance must both
// converge to the Poisson parameter (the old normal approximation got the
// mean right but clipped and rounded the tails).
func TestPoissonPTRSMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const mean, n = 300.0, 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(Poisson(rng, mean))
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mean) > 0.02*mean {
		t.Fatalf("ptrs mean = %.2f, want ~%.0f", m, mean)
	}
	if math.Abs(v-mean) > 0.05*mean {
		t.Fatalf("ptrs variance = %.2f, want ~%.0f (Poisson var == mean)", v, mean)
	}
}

func TestTrackerJOPSAndAudit(t *testing.T) {
	tr := NewTracker(1000, jasDeadlines)
	// 100 requests over 10 seconds, all fast.
	for i := 0; i < 100; i++ {
		class := i % len(jasDeadlines)
		at := 1000 + float64(i)*100
		tr.Record(class, at+100, 150)
	}
	jops := tr.JOPS()
	if jops < 9 || jops > 11.5 {
		t.Fatalf("JOPS = %v, want ~10", jops)
	}
	audits, pass := tr.Audit()
	if !pass {
		t.Fatal("fast run failed audit")
	}
	if len(audits) != len(jasDeadlines) {
		t.Fatalf("audit classes = %d", len(audits))
	}
	for _, a := range audits {
		if !a.Pass || a.P90MS > a.DeadlineMS {
			t.Fatalf("class %v failed: %+v", a.Class, a)
		}
		if a.DeadlineMS != jasDeadlines[a.Class] {
			t.Fatal("deadline not taken from the configured slice")
		}
	}
}

func TestTrackerAuditFailsSlowWeb(t *testing.T) {
	tr := NewTracker(0, jasDeadlines)
	for i := 0; i < 100; i++ {
		// 85% fast, 15% very slow: p90 over the 2s web deadline.
		resp := 100.0
		if i%7 == 0 {
			resp = 30000
		}
		tr.Record(2, float64(i)*10+10, resp)
		tr.Record(3, float64(i)*10+10, 100)
		tr.Record(0, float64(i)*10+10, 100)
		tr.Record(1, float64(i)*10+10, 100)
	}
	_, pass := tr.Audit()
	if pass {
		t.Fatal("slow web class passed the audit")
	}
}

func TestTrackerExcludesRampUp(t *testing.T) {
	tr := NewTracker(5000, jasDeadlines)
	tr.Record(2, 4000, 100) // during ramp-up
	if tr.Completed()[2] != 0 {
		t.Fatal("ramp-up request counted")
	}
	tr.Record(2, 6000, 100)
	if tr.Completed()[2] != 1 {
		t.Fatal("steady-state request not counted")
	}
}

func TestTrackerEmptyFails(t *testing.T) {
	tr := NewTracker(0, jasDeadlines)
	if _, pass := tr.Audit(); pass {
		t.Fatal("empty run passed")
	}
	if tr.JOPS() != 0 {
		t.Fatal("empty JOPS nonzero")
	}
}

func TestTrackerFailureBudget(t *testing.T) {
	tr := NewTracker(0, jasDeadlines)
	for i := 0; i < 100; i++ {
		tr.Record(2, float64(i+1)*10, 50)
		tr.Record(0, float64(i+1)*10, 50)
		tr.Record(1, float64(i+1)*10, 50)
		tr.Record(3, float64(i+1)*10, 50)
	}
	for i := 0; i < 10; i++ {
		tr.RecordFailure()
	}
	if _, pass := tr.Audit(); pass {
		t.Fatal("run with >1% failures passed")
	}
}

// A p90 exactly at the deadline is a pass: the run rules bound the
// quantile inclusively. Every response sits exactly on the limit, so any
// quantile definition yields p90 == deadline.
func TestTrackerAuditP90ExactlyAtLimit(t *testing.T) {
	tr := NewTracker(0, []float64{WebDeadlineMS})
	for i := 0; i < 100; i++ {
		tr.Record(0, float64(i+1)*10, WebDeadlineMS)
	}
	audits, pass := tr.Audit()
	if !pass {
		t.Fatal("p90 exactly at the deadline failed the audit")
	}
	if audits[0].P90MS != WebDeadlineMS {
		t.Fatalf("p90 = %v, want %v", audits[0].P90MS, WebDeadlineMS)
	}
	// One millisecond over the limit must flip the verdict.
	tr2 := NewTracker(0, []float64{WebDeadlineMS})
	for i := 0; i < 100; i++ {
		tr2.Record(0, float64(i+1)*10, WebDeadlineMS+1)
	}
	if _, pass := tr2.Audit(); pass {
		t.Fatal("p90 over the deadline passed the audit")
	}
}

// A class that never completes a request has an unmeasurable quantile: it
// must fail its own audit and drag the overall verdict down even when the
// other classes are fast.
func TestTrackerAuditZeroCompletionClass(t *testing.T) {
	tr := NewTracker(0, jasDeadlines)
	for i := 0; i < 100; i++ {
		tr.Record(0, float64(i+1)*10, 50)
		tr.Record(1, float64(i+1)*10, 50)
		tr.Record(2, float64(i+1)*10, 50)
		// class 3 never completes
	}
	audits, pass := tr.Audit()
	if pass {
		t.Fatal("run with a zero-completion class passed")
	}
	if audits[3].Pass || audits[3].Count != 0 {
		t.Fatalf("zero-completion class audit: %+v", audits[3])
	}
	for class := 0; class < 3; class++ {
		if !audits[class].Pass {
			t.Fatalf("fast class %d failed: %+v", class, audits[class])
		}
	}
}

// A single-class pack is a legal workload: the audit must size to one
// class and judge it alone.
func TestTrackerAuditSingleClassPack(t *testing.T) {
	tr := NewTracker(0, []float64{RMIDeadlineMS})
	for i := 0; i < 50; i++ {
		tr.Record(0, float64(i+1)*100, 400)
	}
	audits, pass := tr.Audit()
	if !pass {
		t.Fatal("single-class run failed")
	}
	if len(audits) != 1 {
		t.Fatalf("audit classes = %d, want 1", len(audits))
	}
	if audits[0].Class != 0 || audits[0].Count != 50 || audits[0].DeadlineMS != RMIDeadlineMS {
		t.Fatalf("single-class audit: %+v", audits[0])
	}
	if tr.JOPS() < 9 || tr.JOPS() > 11 {
		t.Fatalf("JOPS = %v, want ~10", tr.JOPS())
	}
}
