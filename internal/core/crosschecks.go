package core

import (
	"context"
	"fmt"
	"strings"

	"jasworkload/internal/jvm"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
	"jasworkload/internal/workload"
)

// CrossChecks reproduces the paper's two robustness checks:
//
//   - Section 6: "In a separate study, we observed a similar small GC
//     runtime overhead with Trade6, another J2EE workload."
//   - Sections 3.1/4.1.1 and footnote 2: "Whether we use J9 JVM or
//     Sovereign JVM, little CPU time is spent on garbage collection";
//     Sovereign shows a higher CPU utilization at the same injection rate.
type CrossChecks struct {
	// Workload names the pack of the baseline (and Sovereign) runs; the
	// Trade6 comparison always runs the trade6 pack.
	Workload string

	Jas2004GCShare float64 // % of runtime in GC, J9 + the config's pack
	Trade6GCShare  float64 // % of runtime in GC, J9 + Trade6

	J9Util           float64
	SovereignUtil    float64
	SovereignGCShare float64
	J9JOPS           float64
	SovereignJOPS    float64
}

// runVariant executes a request-level run with the given workload and JVM.
func runVariant(ctx context.Context, cfg RunConfig, w workload.Workload, v sim.JVMVariant) (gcShare, util, jops float64, err error) {
	noteSim("variant")
	// The crosschecks swap the subject (Trade6, Sovereign): an arrival
	// spec authored against the run's own pack — mix class names, trace
	// class indices — does not transfer, so variants run the legacy
	// steady loop. This also keeps the crosscheck rows identical between
	// a generative spec and its recorded trace, preserving report
	// byte-identity across record/replay.
	cfg.Arrival = ""
	scfg := sim.DefaultSUTConfig(cfg.IR)
	scfg.Seed = cfg.Seed
	scfg.HeapBytes = cfg.HeapBytes
	scfg.HeapPageSize = cfg.HeapPageSize
	scfg.App = server.AppFor(w)
	scfg.JVM = v
	scfg.Profile = w.TuneProfile(scfg.Profile)
	if cfg.Scale == ScaleQuick {
		scfg.Profile.NumMethods = 850
		scfg.Profile.WarmSet = 60
	}
	sut, err := sim.BuildSUT(scfg)
	if err != nil {
		return 0, 0, 0, err
	}
	eng, err := cfg.newEngine(sut, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := eng.RunContext(ctx); err != nil {
		return 0, 0, 0, err
	}
	dur, _ := cfg.durations()
	sum := jvm.Summarize(sut.Heap.Events(), dur)
	return sum.PercentOfRuntime, eng.MeanUtilization(), eng.Tracker().JOPS(), nil
}

// RunCrossChecks executes the variant runs, cached on cfg's artifact.
func RunCrossChecks(cfg RunConfig) (CrossChecks, error) {
	return ForConfig(cfg).CrossChecks()
}

// CrossChecks returns the variant comparisons for this artifact's
// configuration. The jas2004/J9 baseline is a view of the shared
// request-level run (it is the identical simulation), so only the Trade6
// and Sovereign variants execute — and they run concurrently.
func (a *Artifact) CrossChecks() (CrossChecks, error) {
	return a.CrossChecksContext(context.Background())
}

// CrossChecksContext is CrossChecks with cancellable variant runs; the
// first-caller-wins memo semantics of RequestLevelContext apply.
func (a *Artifact) CrossChecksContext(ctx context.Context) (CrossChecks, error) {
	return a.cc.do(func() (CrossChecks, error) {
		return loadOrCompute(ctx, kindCrossChecks, a.Cfg, func() (CrossChecks, error) {
			return a.runCrossChecks(ctx)
		})
	})
}

func (a *Artifact) runCrossChecks(ctx context.Context) (CrossChecks, error) {
	var res CrossChecks
	cfg := a.Cfg
	res.Workload = cfg.Workload
	w, err := cfg.workload()
	if err != nil {
		return res, err
	}
	t6, err := workload.Get("trade6")
	if err != nil {
		return res, err
	}
	g := NewGroup(Parallelism())
	g.Go(func() error {
		rl, err := a.RequestLevelContext(ctx)
		if err != nil {
			return fmt.Errorf("jas2004/J9: %w", err)
		}
		dur, _ := cfg.durations()
		sum := jvm.Summarize(rl.HeapEvents(), dur)
		res.Jas2004GCShare = sum.PercentOfRuntime
		res.J9Util = rl.MeanUtilization()
		res.J9JOPS = rl.JOPS()
		return nil
	})
	g.Go(func() error {
		var err error
		if res.Trade6GCShare, _, _, err = runVariant(ctx, cfg, t6, sim.JVMJ9); err != nil {
			return fmt.Errorf("trade6/J9: %w", err)
		}
		return nil
	})
	g.Go(func() error {
		var err error
		if res.SovereignGCShare, res.SovereignUtil, res.SovereignJOPS, err = runVariant(ctx, cfg, w, sim.JVMSovereign); err != nil {
			return fmt.Errorf("%s/Sovereign: %w", w.Name(), err)
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		return res, err
	}
	return res, nil
}

// String renders the cross-check table.
func (c CrossChecks) String() string {
	name := c.Workload
	if name == "" {
		name = workload.DefaultName
	}
	var b strings.Builder
	b.WriteString("Cross-checks (Sections 3.1, 4.1.1, 6)\n")
	fmt.Fprintf(&b, "GC share of runtime: %s/J9 %.2f%%, Trade6/J9 %.2f%%, %s/Sovereign %.2f%%\n",
		name, c.Jas2004GCShare, c.Trade6GCShare, name, c.SovereignGCShare)
	fmt.Fprintf(&b, "  (paper: all small — \"<2%%\"; Trade6 shows \"a similar small GC runtime overhead\")\n")
	fmt.Fprintf(&b, "CPU utilization at the same IR: J9 %.0f%%, Sovereign %.0f%%\n",
		100*c.J9Util, 100*c.SovereignUtil)
	fmt.Fprintf(&b, "  (paper footnote: Sovereign \"has a higher CPU utilization at the same IR\")\n")
	return b.String()
}
