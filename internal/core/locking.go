package core

import (
	"fmt"
	"strings"

	"jasworkload/internal/power4"
)

// LockingResult reproduces the Section 4.2.4 numbers: LARX frequency, the
// estimated share of instructions spent acquiring locks, the
// pthread_mutex_lock cycle estimate, and SYNC cost in user vs privileged
// code.
type LockingResult struct {
	// InstrPerLarx: a LARX executes about once every 600 user instructions.
	InstrPerLarx float64
	// LockAcquireInstrShare: assuming ~20 surrounding instructions per
	// acquisition, ~3% of instructions acquire locks.
	LockAcquireInstrShare float64
	// StcxFailRate: contended store-conditionals.
	StcxFailRate float64
	// MutexCycleShare estimates time in pthread_mutex_lock (paper: ~2%,
	// i.e. little contention/spinning despite frequent acquisition).
	MutexCycleShare float64
	// SyncSRQShareUser: fraction of user cycles with a SYNC in the SRQ
	// (paper: <1%).
	SyncSRQShareUser float64
	// SyncSRQShareKernel: same for privileged code (paper: ~7%).
	SyncSRQShareKernel float64
}

// lockAcquireOverhead is the paper's assumption: each LARX is surrounded by
// about 20 additional lock-acquisition instructions.
const lockAcquireOverhead = 20

// Locking computes the Section 4.2.4 table from a detail run. The result
// is computed once and cached on the run.
func (d *DetailRun) Locking() (LockingResult, error) {
	return d.locking.do(d.computeLocking)
}

func (d *DetailRun) computeLocking() (LockingResult, error) {
	var res LockingResult
	larxRate, err := d.steadyRatio("sync", power4.EvLarx, power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	if larxRate > 0 {
		res.InstrPerLarx = 1 / larxRate
	}
	res.LockAcquireInstrShare = larxRate * (lockAcquireOverhead + 2) // +LARX/STCX pair

	res.StcxFailRate, err = d.steadyRatio("sync", power4.EvStcxFail, power4.EvStcx)
	if err != nil {
		return res, err
	}
	// pthread_mutex_lock estimate: every acquisition runs the fast path
	// (~8 instructions of mutex code beyond the atomic), contended ones
	// fall into futex wait/spin (~300). Converted to a cycle share at the
	// measured rates this mirrors the paper's tprof-based ~2% estimate.
	res.MutexCycleShare = larxRate * (8 + res.StcxFailRate*300)

	syncAll, err := d.steadyRatio("sync", power4.EvSyncSRQCycles, power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	cpi, err := d.steadyRatio("sync", power4.EvCycles, power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	kernSync, err := d.steadyRatio("kernel", power4.EvKernelSyncSRQCycles, power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	kernCyc, err := d.steadyRatio("kernel", power4.EvKernelCycles, power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	if cpi > 0 {
		userSync := syncAll - kernSync
		userCyc := cpi - kernCyc
		if userCyc > 0 {
			res.SyncSRQShareUser = userSync / userCyc
		}
		if kernCyc > 0 {
			res.SyncSRQShareKernel = kernSync / kernCyc
		}
	}
	return res, nil
}

// String renders the table.
func (l LockingResult) String() string {
	var b strings.Builder
	b.WriteString("Locking, Contentions, and SYNC Cost (Section 4.2.4)\n")
	fmt.Fprintf(&b, "instructions per LARX      = %.0f (paper: ~600)\n", l.InstrPerLarx)
	fmt.Fprintf(&b, "lock-acquisition share     = %.1f%% of instructions (paper: ~3%%)\n", 100*l.LockAcquireInstrShare)
	fmt.Fprintf(&b, "STCX failure rate          = %.3f (little spinning)\n", l.StcxFailRate)
	fmt.Fprintf(&b, "pthread_mutex_lock cycles  = %.1f%% (paper: ~2%%)\n", 100*l.MutexCycleShare)
	fmt.Fprintf(&b, "SYNC-in-SRQ, user cycles   = %.2f%% (paper: <1%%)\n", 100*l.SyncSRQShareUser)
	fmt.Fprintf(&b, "SYNC-in-SRQ, kernel cycles = %.1f%% (paper: ~7%%)\n", 100*l.SyncSRQShareKernel)
	return b.String()
}
