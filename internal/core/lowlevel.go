package core

import (
	"context"
	"fmt"
	"strings"

	"jasworkload/internal/hpm"
	"jasworkload/internal/power4"
	"jasworkload/internal/sim"
	"jasworkload/internal/stats"
)

// DetailRun is one instruction-detail execution with every standard HPM
// group attached; Figures 5-10 and the locking table are memoized views of
// it.
type DetailRun struct {
	Cfg      RunConfig
	SUT      *sim.SUT
	Engine   *sim.Engine
	Monitors map[string]*hpm.Monitor

	// transSteady carries the persisted steady translation-group series
	// (keyed by event name) when the run was hydrated from the persistent
	// store; Monitors is nil then, and every figure memo is pre-filled.
	transSteady map[string]*stats.Series

	fig5    memo[Fig5Result]
	fig6    memo[Fig6Result]
	fig7    memo[Fig7Result]
	fig8    memo[Fig8Result]
	fig9    memo[Fig9Result]
	fig10   memo[Fig10Result]
	locking memo[LockingResult]
}

// RunDetail executes the workload at instruction-level (sampled) fidelity.
// Results are cached in the run store: repeated calls with an equivalent
// config return the same completed run without re-simulating. Monitors are
// pure observers, so the run always collects every standard HPM group; the
// groups argument only validates that the requested names exist.
func RunDetail(cfg RunConfig, groups ...string) (*DetailRun, error) {
	return ForConfig(cfg).Detail(groups...)
}

// runDetail executes the simulation (cache miss path). winFn, when
// non-nil, observes every completed window (streaming consumers); ctx
// aborts the run mid-window.
func runDetail(ctx context.Context, cfg RunConfig, winFn sim.WindowFunc, groups ...string) (*DetailRun, error) {
	sut, eng, mons, err := cfg.detailRun(ctx, winFn, groups...)
	if err != nil {
		return nil, err
	}
	if !eng.Finished() {
		return nil, fmt.Errorf("core: detail engine did not finish")
	}
	return &DetailRun{Cfg: cfg, SUT: sut, Engine: eng, Monitors: mons}, nil
}

// steadySeries extracts the steady-state part of an event's per-window
// series from the named group.
func (d *DetailRun) steadySeries(group string, ev power4.Event) (*stats.Series, error) {
	m, ok := d.Monitors[group]
	if !ok {
		if d.Monitors == nil && group == "translation" {
			// Hydrated run: the figures are pre-filled memos, and the only
			// post-hydration raw-series consumer (the large-page ablation)
			// reads the translation group, whose steady series the store
			// entry retains.
			if s, ok := d.transSteady[ev.String()]; ok {
				return s, nil
			}
		}
		return nil, fmt.Errorf("core: group %q not collected", group)
	}
	s, err := m.Series(ev)
	if err != nil {
		return nil, err
	}
	return s.Slice(steadyStart(d.Cfg), s.Len()), nil
}

// steadyRatio returns the steady-state total of num/den from a group.
func (d *DetailRun) steadyRatio(group string, num, den power4.Event) (float64, error) {
	n, err := d.steadySeries(group, num)
	if err != nil {
		return 0, err
	}
	dd, err := d.steadySeries(group, den)
	if err != nil {
		return 0, err
	}
	var sn, sd float64
	for i := range n.Values {
		sn += n.Values[i]
		sd += dd.Values[i]
	}
	if sd == 0 {
		return 0, nil
	}
	return sn / sd, nil
}

// gcWindows partitions steady windows into those containing a collection
// and those without.
func (d *DetailRun) gcWindows() (gc, quiet []int) {
	ws := d.Engine.Windows()
	for i := steadyStart(d.Cfg); i < len(ws); i++ {
		if ws[i].GCs > 0 {
			gc = append(gc, i-steadyStart(d.Cfg))
		} else {
			quiet = append(quiet, i-steadyStart(d.Cfg))
		}
	}
	return gc, quiet
}

// meanAt averages a series over the given indices.
func meanAt(s *stats.Series, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		if i < s.Len() {
			sum += s.At(i)
		}
	}
	return sum / float64(len(idx))
}

// ---------------------------------------------------------------- Figure 5

// Fig5Result is the CPI / speculation / L1 figure.
type Fig5Result struct {
	CPI        *stats.Series
	SpecRate   *stats.Series
	L1MissRate *stats.Series // L1D misses per L1D access
	MeanCPI    float64
	MeanSpec   float64
	MeanL1Miss float64
	IdleCPI    float64
	// CPIvsGC is the correlation between per-window CPI and GC pause time;
	// the paper: "we do not see a strong correlation".
	CPIvsGC float64
}

// Fig5 regenerates the CPI figure from a detail run. The result (including
// the idle-CPI probe, which builds a scratch SUT) is computed once and
// cached on the run.
func (d *DetailRun) Fig5() (Fig5Result, error) {
	return d.fig5.do(d.computeFig5)
}

func (d *DetailRun) computeFig5() (Fig5Result, error) {
	var res Fig5Result
	cyc, err := d.steadySeries("cpi", power4.EvCycles)
	if err != nil {
		return res, err
	}
	inst, err := d.steadySeries("cpi", power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	disp, err := d.steadySeries("cpi", power4.EvInstDispatched)
	if err != nil {
		return res, err
	}
	res.CPI, err = stats.RatioSeries("CPI", cyc, inst)
	if err != nil {
		return res, err
	}
	res.SpecRate, err = stats.RatioSeries("dispatched/completed", disp, inst)
	if err != nil {
		return res, err
	}
	ldm, err := d.steadySeries("cpi", power4.EvL1DLoadMiss)
	if err != nil {
		return res, err
	}
	stm, err := d.steadySeries("cpi", power4.EvL1DStoreMiss)
	if err != nil {
		return res, err
	}
	lds, err := d.steadySeries("cpi", power4.EvLoads)
	if err != nil {
		return res, err
	}
	sts, err := d.steadySeries("cpi", power4.EvStores)
	if err != nil {
		return res, err
	}
	res.L1MissRate = stats.NewSeries("L1D miss rate", 1000)
	for i := range ldm.Values {
		acc := lds.Values[i] + sts.Values[i]
		if acc > 0 {
			res.L1MissRate.Append((ldm.Values[i] + stm.Values[i]) / acc)
		} else {
			res.L1MissRate.Append(0)
		}
	}
	res.MeanCPI = stats.Mean(res.CPI.Values)
	res.MeanSpec = stats.Mean(res.SpecRate.Values)
	res.MeanL1Miss = stats.Mean(res.L1MissRate.Values)
	res.IdleCPI = IdleCPI(d.Cfg)

	gcPause := stats.NewSeries("gc", 1000)
	ws := d.Engine.Windows()
	for i := steadyStart(d.Cfg); i < len(ws); i++ {
		gcPause.Append(ws[i].GCPauseMS)
	}
	if gcPause.Len() == res.CPI.Len() {
		res.CPIvsGC, _ = stats.Correlation(res.CPI.Values, gcPause.Values)
	}
	return res, nil
}

// IdleCPI measures the CPI of an unloaded system: the OS idle loop run
// through a fresh core (the paper: ~0.7).
func IdleCPI(cfg RunConfig) float64 {
	sut, err := cfg.buildSUT()
	if err != nil {
		return 0
	}
	core := sut.Cores[0]
	sut.Server.EmitIdle(core, 200_000)
	ctr := core.Counters()
	return ctr.CPI()
}

// String renders the figure.
func (f Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: CPI, Speculation Rate, and L1 Miss Rate\n")
	if f.CPI != nil && f.CPI.Len() > 1 {
		b.WriteString(f.CPI.ASCIIPlot(60, 5))
	}
	fmt.Fprintf(&b, "mean CPI          = %.2f (paper: ~3, idle ~0.7; measured idle %.2f)\n", f.MeanCPI, f.IdleCPI)
	fmt.Fprintf(&b, "dispatch/complete = %.2f (paper: ~5 dispatched per ~2 retired)\n", f.MeanSpec)
	fmt.Fprintf(&b, "L1D miss rate     = %.3f (paper: ~0.14 overall)\n", f.MeanL1Miss)
	fmt.Fprintf(&b, "corr(CPI, GC)     = %+.2f (paper: no strong correlation)\n", f.CPIvsGC)
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Result is the branch-prediction figure.
type Fig6Result struct {
	CondMispredictRate   *stats.Series // per conditional branch
	TargetMispredictRate *stats.Series // per indirect branch
	MeanCondMiss         float64
	MeanTargetMiss       float64
	// GC windows show more branches and fewer mispredictions.
	BranchRateGC    float64 // branches per instruction in GC windows
	BranchRateQuiet float64
	CondMissGC      float64
	CondMissQuiet   float64
}

// Fig6 regenerates the branch figure. The result is computed once and
// cached on the run.
func (d *DetailRun) Fig6() (Fig6Result, error) {
	return d.fig6.do(d.computeFig6)
}

func (d *DetailRun) computeFig6() (Fig6Result, error) {
	var res Fig6Result
	cond, err := d.steadySeries("branch", power4.EvBrCond)
	if err != nil {
		return res, err
	}
	condM, err := d.steadySeries("branch", power4.EvBrCondMispred)
	if err != nil {
		return res, err
	}
	ind, err := d.steadySeries("branch", power4.EvBrIndirect)
	if err != nil {
		return res, err
	}
	indM, err := d.steadySeries("branch", power4.EvBrTargetMispred)
	if err != nil {
		return res, err
	}
	inst, err := d.steadySeries("branch", power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	res.CondMispredictRate, _ = stats.RatioSeries("cond mispredict", condM, cond)
	res.TargetMispredictRate, _ = stats.RatioSeries("target mispredict", indM, ind)
	res.MeanCondMiss = sumRatio(condM, cond)
	res.MeanTargetMiss = sumRatio(indM, ind)

	gc, quiet := d.gcWindows()
	brPerInst := stats.NewSeries("br/inst", 1000)
	for i := range cond.Values {
		if inst.Values[i] > 0 {
			brPerInst.Append((cond.Values[i] + ind.Values[i]) / inst.Values[i])
		} else {
			brPerInst.Append(0)
		}
	}
	res.BranchRateGC = meanAt(brPerInst, gc)
	res.BranchRateQuiet = meanAt(brPerInst, quiet)
	res.CondMissGC = meanAt(res.CondMispredictRate, gc)
	res.CondMissQuiet = meanAt(res.CondMispredictRate, quiet)
	return res, nil
}

func sumRatio(num, den *stats.Series) float64 {
	var n, d float64
	for i := range num.Values {
		n += num.Values[i]
		d += den.Values[i]
	}
	if d == 0 {
		return 0
	}
	return n / d
}

// String renders the figure.
func (f Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: Branch Prediction\n")
	fmt.Fprintf(&b, "conditional misprediction = %.3f (paper: ~0.06)\n", f.MeanCondMiss)
	fmt.Fprintf(&b, "indirect target mispredict = %.3f (paper: ~0.05)\n", f.MeanTargetMiss)
	fmt.Fprintf(&b, "GC windows: branches/inst %.3f vs %.3f quiet; cond miss %.3f vs %.3f quiet\n",
		f.BranchRateGC, f.BranchRateQuiet, f.CondMissGC, f.CondMissQuiet)
	return b.String()
}
