package core

import (
	"fmt"

	"jasworkload/internal/loadgen"
	"jasworkload/internal/workload"
)

// This file bridges the loadgen subsystem to run configurations: spec
// validation against a config's workload pack, and standalone trace
// recording. Recording never simulates anything — loadgen sources are
// pure functions of (spec, pack rates, seed) and never observe SUT
// state, so the stream captured here is byte-for-byte the stream a live
// run under the same config injects. That closure is what makes
// "record a trace, replay it through jasd, get the generating run's
// report byte-identically" hold.

// arrivalSourceConfig resolves the loadgen source parameters for a
// canonical config from its workload pack.
func arrivalSourceConfig(canon RunConfig) (loadgen.SourceConfig, error) {
	w, err := workload.Get(canon.Workload)
	if err != nil {
		return loadgen.SourceConfig{}, err
	}
	classes := w.Classes()
	cfg := loadgen.SourceConfig{
		IR:         canon.IR,
		Rates:      make([]float64, len(classes)),
		ClassNames: make([]string, len(classes)),
		Seed:       canon.Seed,
	}
	for i, c := range classes {
		cfg.Rates[i] = c.RatePerIR
		cfg.ClassNames[i] = c.Name
	}
	return cfg, nil
}

// CheckArrivalClasses validates a raw arrival spec against the named
// workload pack's request classes: every cohort-mix key must name a pack
// class and every trace class index must be in range. The sweep
// expander, the serving layer's JobSpec validation, and jasrun all gate
// on it.
func CheckArrivalClasses(rawSpec, workloadName string) error {
	spec, err := loadgen.Parse([]byte(rawSpec))
	if err != nil {
		return err
	}
	w, err := workload.Get(workloadName)
	if err != nil {
		return err
	}
	classes := w.Classes()
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.Name
	}
	return spec.CheckClasses(names)
}

// RecordArrivalTrace generates the arrival trace of cfg's run without
// simulating: one window per engine window (1 s) over the canonical run
// duration. The config must carry an arrival spec.
func RecordArrivalTrace(cfg RunConfig) (*loadgen.TraceSpec, error) {
	canon := cfg.Canonical()
	if canon.Arrival == "" {
		return nil, fmt.Errorf("core: config has no arrival spec to record")
	}
	spec, err := loadgen.Parse([]byte(canon.Arrival))
	if err != nil {
		return nil, err
	}
	scfg, err := arrivalSourceConfig(canon)
	if err != nil {
		return nil, err
	}
	return loadgen.Record(spec, scfg, 1000, int(canon.DurationMS/1000))
}
