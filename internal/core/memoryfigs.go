package core

import (
	"context"
	"fmt"
	"strings"

	"jasworkload/internal/mem"
	"jasworkload/internal/power4"
	"jasworkload/internal/stats"
)

// ---------------------------------------------------------------- Figure 7

// Fig7Result is the address-translation figure: ERAT and TLB misses per
// instruction, the ERAT-vs-TLB relationship, GC behaviour, and the
// large-page ablation.
type Fig7Result struct {
	DERATPerInst *stats.Series
	IERATPerInst *stats.Series
	DTLBPerInst  *stats.Series
	ITLBPerInst  *stats.Series

	MeanDERAT, MeanIERAT, MeanDTLB, MeanITLB float64
	// InstrBetweenDERAT: the paper reports >100 instructions retire
	// between DERAT misses.
	InstrBetweenDERAT float64
	// TLBSatisfiesDERAT: upon a DERAT miss, the TLB answers in ~75% of
	// cases.
	TLBSatisfiesDERAT float64
	// TLB misses per instruction drop by orders of magnitude during GC.
	DTLBQuietOverGC float64
}

// Fig7 regenerates the translation figure. The result is computed once and
// cached on the run; that also keeps the GC-only probe (which streams a
// collector trace through a scratch core) from perturbing repeat renders.
func (d *DetailRun) Fig7() (Fig7Result, error) {
	return d.fig7.do(d.computeFig7)
}

func (d *DetailRun) computeFig7() (Fig7Result, error) {
	var res Fig7Result
	inst, err := d.steadySeries("translation", power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	grab := func(ev power4.Event) (*stats.Series, float64, error) {
		s, err := d.steadySeries("translation", ev)
		if err != nil {
			return nil, 0, err
		}
		r, err := stats.RatioSeries(ev.String()+"/inst", s, inst)
		if err != nil {
			return nil, 0, err
		}
		return r, sumRatio(s, inst), nil
	}
	if res.DERATPerInst, res.MeanDERAT, err = grab(power4.EvDERATMiss); err != nil {
		return res, err
	}
	if res.IERATPerInst, res.MeanIERAT, err = grab(power4.EvIERATMiss); err != nil {
		return res, err
	}
	if res.DTLBPerInst, res.MeanDTLB, err = grab(power4.EvDTLBMiss); err != nil {
		return res, err
	}
	if res.ITLBPerInst, res.MeanITLB, err = grab(power4.EvITLBMiss); err != nil {
		return res, err
	}
	if res.MeanDERAT > 0 {
		res.InstrBetweenDERAT = 1 / res.MeanDERAT
		res.TLBSatisfiesDERAT = 1 - res.MeanDTLB/res.MeanDERAT
	}
	// The paper's GC spikes last 0.2-0.3 s inside 0.1 s samples; our 1 s
	// windows would dilute them, so the GC-only rate is measured directly
	// on a pure collector instruction stream (a scratch core against the
	// same memory hierarchy).
	gcRate := d.gcOnlyDTLBRate()
	if gcRate > 0 {
		res.DTLBQuietOverGC = res.MeanDTLB / gcRate
	} else if res.MeanDTLB > 0 {
		res.DTLBQuietOverGC = 1e4 // no GC TLB misses observed at all
	}
	return res, nil
}

// gcOnlyDTLBRate measures DTLB misses per instruction of the collector's
// own instruction stream, after warmup.
func (d *DetailRun) gcOnlyDTLBRate() float64 {
	core, err := power4.NewCore(power4.DefaultCoreConfig(0), d.SUT.Hier, d.SUT.Layout.Space)
	if err != nil {
		return 0
	}
	d.SUT.Server.EmitGC(core, 100_000)
	warm := core.Counters()
	d.SUT.Server.EmitGC(core, 300_000)
	ctr := core.Counters()
	delta := ctr.Sub(&warm)
	return delta.Rate(power4.EvDTLBMiss)
}

// Smoothed returns the Bezier-smoothed version of a per-instruction series,
// as the paper plots Figure 7.
func (f Fig7Result) Smoothed(s *stats.Series, points int) ([]float64, error) {
	return stats.BezierSmooth(s.Values, points)
}

// String renders the figure.
func (f Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: TLB Miss Frequency (per instruction)\n")
	fmt.Fprintf(&b, "DERAT %.2e  IERAT %.2e  DTLB %.2e  ITLB %.2e\n",
		f.MeanDERAT, f.MeanIERAT, f.MeanDTLB, f.MeanITLB)
	fmt.Fprintf(&b, "instructions between DERAT misses: %.0f (paper: >100)\n", f.InstrBetweenDERAT)
	fmt.Fprintf(&b, "TLB satisfies DERAT misses: %.0f%% (paper: 75%%)\n", 100*f.TLBSatisfiesDERAT)
	fmt.Fprintf(&b, "quiet/GC DTLB miss ratio: %.0fx (paper: 2-3 orders of magnitude)\n", f.DTLBQuietOverGC)
	return b.String()
}

// LargePageAblation compares the paper's tuned configuration (16 MB pages
// for the Java heap) against the 4 KB baseline: "enabling large pages
// increases DTLB hit rates by 25%, and ... ITLB hit rates also increase by
// 15%" (through reduced pressure on the unified TLB).
type LargePageAblation struct {
	LargeDTLBPerInst float64
	SmallDTLBPerInst float64
	LargeITLBPerInst float64
	SmallITLBPerInst float64
	// Hit-rate gains per data (instruction) translation access.
	DTLBHitGainPct float64
	ITLBHitGainPct float64
}

// RunLargePageAblation executes both configurations, scheduling them
// concurrently. The result is cached on cfg's artifact, and the leg whose
// page size matches cfg reuses the artifact's own detail run.
func RunLargePageAblation(cfg RunConfig) (LargePageAblation, error) {
	return ForConfig(cfg).LargePages()
}

// LargePages returns the Section 4.2.2 ablation for this artifact's
// configuration, executing both page-size legs concurrently on first use.
func (a *Artifact) LargePages() (LargePageAblation, error) {
	return a.LargePagesContext(context.Background())
}

// LargePagesContext is LargePages with cancellable legs; the
// first-caller-wins memo semantics of RequestLevelContext apply.
func (a *Artifact) LargePagesContext(ctx context.Context) (LargePageAblation, error) {
	return a.lp.do(func() (LargePageAblation, error) {
		return loadOrCompute(ctx, kindLargePages, a.Cfg, func() (LargePageAblation, error) {
			return runLargePageAblation(ctx, a.Cfg)
		})
	})
}

func runLargePageAblation(ctx context.Context, cfg RunConfig) (LargePageAblation, error) {
	var res LargePageAblation
	measure := func(ps mem.PageSize) (dtlb, itlb, dHit, iHit float64, err error) {
		c := cfg
		c.HeapPageSize = ps
		d, err := ForConfig(c).DetailContext(ctx, "translation", "cpi")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		inst, err := d.steadySeries("translation", power4.EvInstCompleted)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		dm, err := d.steadySeries("translation", power4.EvDTLBMiss)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		im, err := d.steadySeries("translation", power4.EvITLBMiss)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		de, err := d.steadySeries("translation", power4.EvDERATMiss)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ie, err := d.steadySeries("translation", power4.EvIERATMiss)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		dtlb = sumRatio(dm, inst)
		itlb = sumRatio(im, inst)
		// TLB hit rate per TLB access (= ERAT miss): 1 - tlbMiss/eratMiss.
		if r := sumRatio(dm, de); r < 1 {
			dHit = 1 - r
		}
		if r := sumRatio(im, ie); r < 1 {
			iHit = 1 - r
		}
		return dtlb, itlb, dHit, iHit, nil
	}
	var dHitL, iHitL, dHitS, iHitS float64
	g := NewGroup(Parallelism())
	g.Go(func() error {
		var err error
		res.LargeDTLBPerInst, res.LargeITLBPerInst, dHitL, iHitL, err = measure(mem.Page16M)
		return err
	})
	g.Go(func() error {
		var err error
		res.SmallDTLBPerInst, res.SmallITLBPerInst, dHitS, iHitS, err = measure(mem.Page4K)
		return err
	})
	if err := g.Wait(); err != nil {
		return res, err
	}
	if dHitS > 0 {
		res.DTLBHitGainPct = 100 * (dHitL - dHitS) / dHitS
	}
	if iHitS > 0 {
		res.ITLBHitGainPct = 100 * (iHitL - iHitS) / iHitS
	}
	return res, nil
}

// String renders the ablation.
func (a LargePageAblation) String() string {
	var b strings.Builder
	b.WriteString("Large-page ablation (Section 4.2.2)\n")
	fmt.Fprintf(&b, "DTLB miss/inst: large %.2e vs small %.2e (%.1fx reduction)\n",
		a.LargeDTLBPerInst, a.SmallDTLBPerInst, safeDiv(a.SmallDTLBPerInst, a.LargeDTLBPerInst))
	fmt.Fprintf(&b, "ITLB miss/inst: large %.2e vs small %.2e (%.1fx reduction)\n",
		a.LargeITLBPerInst, a.SmallITLBPerInst, safeDiv(a.SmallITLBPerInst, a.LargeITLBPerInst))
	fmt.Fprintf(&b, "TLB hit-rate gain: DTLB %+.0f%% (paper: +25%%), ITLB %+.0f%% (paper: +15%%)\n",
		a.DTLBHitGainPct, a.ITLBHitGainPct)
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ---------------------------------------------------------------- Figure 8

// Fig8Result is the L1 D-cache figure.
type Fig8Result struct {
	LoadMissRate  *stats.Series // per load
	StoreMissRate *stats.Series // per store
	MeanLoadMiss  float64       // paper: ~1/12
	MeanStoreMiss float64       // paper: ~1/5
	OverallMiss   float64       // paper: ~14%
	// During GC the store miss rate drops while load misses hold.
	StoreMissGC    float64
	StoreMissQuiet float64
	LoadMissGC     float64
	LoadMissQuiet  float64
}

// Fig8 regenerates the L1 D-cache figure. The result is computed once and
// cached on the run.
func (d *DetailRun) Fig8() (Fig8Result, error) {
	return d.fig8.do(d.computeFig8)
}

func (d *DetailRun) computeFig8() (Fig8Result, error) {
	var res Fig8Result
	ldm, err := d.steadySeries("cpi", power4.EvL1DLoadMiss)
	if err != nil {
		return res, err
	}
	stm, err := d.steadySeries("cpi", power4.EvL1DStoreMiss)
	if err != nil {
		return res, err
	}
	lds, err := d.steadySeries("cpi", power4.EvLoads)
	if err != nil {
		return res, err
	}
	sts, err := d.steadySeries("cpi", power4.EvStores)
	if err != nil {
		return res, err
	}
	res.LoadMissRate, _ = stats.RatioSeries("load miss rate", ldm, lds)
	res.StoreMissRate, _ = stats.RatioSeries("store miss rate", stm, sts)
	res.MeanLoadMiss = sumRatio(ldm, lds)
	res.MeanStoreMiss = sumRatio(stm, sts)
	var accesses, misses float64
	for i := range ldm.Values {
		accesses += lds.Values[i] + sts.Values[i]
		misses += ldm.Values[i] + stm.Values[i]
	}
	if accesses > 0 {
		res.OverallMiss = misses / accesses
	}
	gc, quiet := d.gcWindows()
	res.StoreMissGC = meanAt(res.StoreMissRate, gc)
	res.StoreMissQuiet = meanAt(res.StoreMissRate, quiet)
	res.LoadMissGC = meanAt(res.LoadMissRate, gc)
	res.LoadMissQuiet = meanAt(res.LoadMissRate, quiet)
	return res, nil
}

// String renders the figure.
func (f Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: L1 Data Cache Performance\n")
	fmt.Fprintf(&b, "miss per load  = %.3f (paper: ~1/12 = 0.083)\n", f.MeanLoadMiss)
	fmt.Fprintf(&b, "miss per store = %.3f (paper: ~1/5 = 0.20)\n", f.MeanStoreMiss)
	fmt.Fprintf(&b, "overall        = %.3f (paper: ~0.14)\n", f.OverallMiss)
	fmt.Fprintf(&b, "GC store miss %.3f vs quiet %.3f (paper: lower during GC)\n",
		f.StoreMissGC, f.StoreMissQuiet)
	return b.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Result is the data-source figure: where loads that miss the L1 are
// satisfied from.
type Fig9Result struct {
	Share map[power4.DataSource]float64
	// ModifiedShare is the L2.75-modified fraction: nearly zero, the basis
	// of the paper's conclusion that intelligent thread co-scheduling
	// would not help.
	ModifiedShare float64
}

// Fig9 regenerates the data-source figure. The result is computed once and
// cached on the run.
func (d *DetailRun) Fig9() (Fig9Result, error) {
	return d.fig9.do(d.computeFig9)
}

func (d *DetailRun) computeFig9() (Fig9Result, error) {
	res := Fig9Result{Share: map[power4.DataSource]float64{}}
	events := map[power4.DataSource]power4.Event{
		power4.SrcL2:      power4.EvDataFromL2,
		power4.SrcL275Shr: power4.EvDataFromL275Shr,
		power4.SrcL275Mod: power4.EvDataFromL275Mod,
		power4.SrcL3:      power4.EvDataFromL3,
		power4.SrcL35:     power4.EvDataFromL35,
		power4.SrcMem:     power4.EvDataFromMem,
	}
	totals := map[power4.DataSource]float64{}
	var sum float64
	for src, ev := range events {
		s, err := d.steadySeries("dsource", ev)
		if err != nil {
			return res, err
		}
		for _, v := range s.Values {
			totals[src] += v
			sum += v
		}
	}
	if sum == 0 {
		return res, fmt.Errorf("core: no L1D misses recorded")
	}
	for src, v := range totals {
		res.Share[src] = v / sum
	}
	res.ModifiedShare = res.Share[power4.SrcL275Mod]
	return res, nil
}

// String renders the figure.
func (f Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: Data Loaded From (after an L1 miss)\n")
	order := []power4.DataSource{power4.SrcL2, power4.SrcL275Shr, power4.SrcL275Mod,
		power4.SrcL3, power4.SrcL35, power4.SrcMem}
	for _, src := range order {
		fmt.Fprintf(&b, "  %-14s %6.2f%%\n", src, 100*f.Share[src])
	}
	fmt.Fprintf(&b, "modified cache-to-cache share: %.2f%% (paper: very little => co-scheduling unhelpful)\n",
		100*f.ModifiedShare)
	return b.String()
}
