package core

import (
	"context"
	"fmt"
	"strings"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	ID       string
	Artifact string
	Metric   string
	Paper    string
	Measured string
	Holds    bool
}

// Report is the full paper-vs-measured table.
type Report struct {
	Cfg  RunConfig
	Rows []Row
}

// add appends a row.
func (r *Report) add(id, artifact, metric, paper string, measured string, holds bool) {
	r.Rows = append(r.Rows, Row{ID: id, Artifact: artifact, Metric: metric, Paper: paper, Measured: measured, Holds: holds})
}

func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

// BuildReport runs every experiment at the given config and assembles the
// comparison table. This is what cmd/jasrun prints and what EXPERIMENTS.md
// records.
//
// The runs come from cfg's shared artifact, so exactly one request-level
// and one detail simulation execute per config, plus the two cross-check
// variants — and all independent simulations are scheduled concurrently.
// Each run owns its seeded RNGs and SUT, so the table (and Markdown
// rendering) is byte-identical regardless of parallelism.
func BuildReport(cfg RunConfig) (*Report, error) {
	return BuildReportContext(context.Background(), cfg)
}

// BuildReportContext is BuildReport with end-to-end cancellation: ctx
// reaches every engine window loop, so cancelling it stops the in-flight
// simulations mid-window instead of letting each run to its natural end.
// A cancelled build returns ctx's error and leaves cfg's artifact caching
// that error — Drop the artifact before retrying the config. With a ctx
// that is never cancelled the report is byte-identical to BuildReport's.
func BuildReportContext(ctx context.Context, cfg RunConfig) (*Report, error) {
	rep := &Report{Cfg: cfg}

	art := ForConfig(cfg)
	// The canonical workload name labels the pack-specific rows; for the
	// default pack the table is byte-identical to the pre-pack reports.
	wname := art.Cfg.Workload
	var (
		rl *RequestLevelRun
		d  *DetailRun
		cc CrossChecks
	)
	g := NewGroup(Parallelism())
	g.Go(func() error {
		var err error
		rl, err = art.RequestLevelContext(ctx)
		return err
	})
	g.Go(func() error {
		var err error
		d, err = art.DetailContext(ctx)
		return err
	})
	g.Go(func() error {
		var err error
		cc, err = art.CrossChecksContext(ctx)
		return err
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}

	// Request-level run: Figures 2-4 and the GC table.
	f2 := rl.Fig2()
	var steadySum float64
	maxCV := 0.0
	for rt := range f2.SteadyMean {
		steadySum += f2.SteadyMean[rt]
		if f2.SteadyCV[rt] > maxCV {
			maxCV = f2.SteadyCV[rt]
		}
	}
	rep.add("E1", "Fig 2", fmt.Sprintf("steady throughput of %d classes", len(f2.SteadyMean)), "constant after <5 min ramp",
		fmt.Sprintf("%.1f req/s total, max CV %.2f", steadySum, maxCV), maxCV < 0.5 && steadySum > 0)
	rep.add("E11", "§2", "JOPS per IR", "~1.6",
		fmt.Sprintf("%.2f", f2.JOPS/float64(cfg.IR)), within(f2.JOPS/float64(cfg.IR), 1.3, 1.9))

	f3 := rl.Fig3()
	// Pause and interval scale with the configured heap; normalize the
	// bounds so reduced-scale runs are judged fairly.
	hs := float64(cfg.HeapBytes) / float64(1<<30)
	gcIntLo, gcIntHi := 15.0, 45.0
	if cfg.Scale == ScaleQuick {
		gcIntLo, gcIntHi = 4, 45
	}
	rep.add("E2", "Fig 3", "time between GCs (s)", "25-28",
		fmt.Sprintf("%.1f", f3.Summary.MeanIntervalSec), within(f3.Summary.MeanIntervalSec, gcIntLo, gcIntHi))
	rep.add("E2", "Fig 3", "GC pause (ms)", "300-400",
		fmt.Sprintf("%.0f (heap %.2fx)", f3.Summary.MeanPauseMS, hs), within(f3.Summary.MeanPauseMS, 150*hs, 600*hs))
	rep.add("E2", "Fig 3", "GC share of runtime", "~1.3% (<2%)",
		fmt.Sprintf("%.2f%%", f3.Summary.PercentOfRuntime), within(f3.Summary.PercentOfRuntime, 0.3*hs, 2.5))
	rep.add("E2", "Fig 3", "mark share of GC time", ">80%",
		fmt.Sprintf("%.0f%%", 100*f3.Summary.MarkShare), within(f3.Summary.MarkShare, 0.7, 0.95))
	rep.add("E2", "Fig 3", "compactions", "0",
		fmt.Sprintf("%d", f3.Summary.Compactions), f3.Summary.Compactions == 0)
	rep.add("E2", "Fig 3", "used-heap growth (dark matter)", "~1 MB/min",
		fmt.Sprintf("%.2f MB/min", f3.Summary.UsedGrowthMBPerMin), f3.Summary.UsedGrowthMBPerMin > 0)

	f4 := rl.Fig4()
	rep.add("E3", "Fig 4", "WAS / (web+DB2) cycles", "~2",
		fmt.Sprintf("%.2f", f4.WASOverWebPlusDB), within(f4.WASOverWebPlusDB, 1.5, 2.7))
	rep.add("E3", "Fig 4", "JITed share of WAS", "~50%",
		fmt.Sprintf("%.0f%%", 100*f4.JITedShareOfWAS), within(f4.JITedShareOfWAS, 0.35, 0.62))
	rep.add("E3", "Fig 4", wname+" code share of CPU", "~2%",
		fmt.Sprintf("%.1f%%", 100*f4.Jas2004Share), within(f4.Jas2004Share, 0.004, 0.04))
	rep.add("E3", "Fig 4", "methods covering 50% of JITed time", "224 of 8500",
		fmt.Sprintf("%d of %d", f4.Report.MethodsFor50Pct, f4.Report.TotalMethods),
		within(float64(f4.Report.MethodsFor50Pct)/float64(f4.Report.TotalMethods), 0.01, 0.08))
	rep.add("E3", "Fig 4", "hottest method share of CPU", "<1%",
		fmt.Sprintf("%.2f%%", 100*f4.Report.HottestOverallShare), f4.Report.HottestOverallShare < 0.012)

	// Detail run: Figures 5-10 + locking.
	f5, err := d.Fig5()
	if err != nil {
		return nil, err
	}
	rep.add("E4", "Fig 5", "loaded CPI", "~3",
		fmt.Sprintf("%.2f", f5.MeanCPI), within(f5.MeanCPI, 2.2, 4.2))
	rep.add("E4", "Fig 5", "idle CPI", "~0.7",
		fmt.Sprintf("%.2f", f5.IdleCPI), within(f5.IdleCPI, 0.5, 0.95))
	rep.add("E4", "Fig 5", "dispatched/completed", "~2.4",
		fmt.Sprintf("%.2f", f5.MeanSpec), within(f5.MeanSpec, 1.9, 2.9))
	rep.add("E4", "Fig 5", "corr(CPI, GC)", "not strong",
		fmt.Sprintf("%+.2f", f5.CPIvsGC), f5.CPIvsGC < 0.6)

	f6, err := d.Fig6()
	if err != nil {
		return nil, err
	}
	rep.add("E5", "Fig 6", "conditional misprediction", "~6%",
		fmt.Sprintf("%.1f%%", 100*f6.MeanCondMiss), within(f6.MeanCondMiss, 0.035, 0.10))
	rep.add("E5", "Fig 6", "indirect target misprediction", "~5%",
		fmt.Sprintf("%.1f%%", 100*f6.MeanTargetMiss), within(f6.MeanTargetMiss, 0.02, 0.17))
	rep.add("E5", "Fig 6", "GC: more branches, fewer misses", "yes",
		fmt.Sprintf("br %.3f vs %.3f, miss %.3f vs %.3f",
			f6.BranchRateGC, f6.BranchRateQuiet, f6.CondMissGC, f6.CondMissQuiet),
		f6.BranchRateGC > f6.BranchRateQuiet && f6.CondMissGC < f6.CondMissQuiet)

	f7, err := d.Fig7()
	if err != nil {
		return nil, err
	}
	rep.add("E6", "Fig 7", "instructions between DERAT misses", ">100",
		fmt.Sprintf("%.0f", f7.InstrBetweenDERAT), f7.InstrBetweenDERAT > 100)
	rep.add("E6", "Fig 7", "TLB satisfies DERAT misses", "~75%",
		fmt.Sprintf("%.0f%%", 100*f7.TLBSatisfiesDERAT), within(f7.TLBSatisfiesDERAT, 0.5, 0.92))
	rep.add("E6", "Fig 7", "ERAT >> TLB miss rates", "top two lines are ERATs",
		fmt.Sprintf("DERAT/DTLB=%.1fx IERAT/ITLB=%.1fx", safeDiv(f7.MeanDERAT, f7.MeanDTLB), safeDiv(f7.MeanIERAT, f7.MeanITLB)),
		f7.MeanDERAT > f7.MeanDTLB && f7.MeanIERAT > f7.MeanITLB)
	rep.add("E6", "Fig 7", "GC: far fewer TLB misses", "2-3 orders",
		fmt.Sprintf("quiet/GC = %.0fx", f7.DTLBQuietOverGC), f7.DTLBQuietOverGC > 5)

	f8, err := d.Fig8()
	if err != nil {
		return nil, err
	}
	rep.add("E7", "Fig 8", "L1D miss per load", "~1/12 (0.083)",
		fmt.Sprintf("%.3f", f8.MeanLoadMiss), within(f8.MeanLoadMiss, 0.05, 0.15))
	rep.add("E7", "Fig 8", "L1D miss per store", "~1/5 (0.20)",
		fmt.Sprintf("%.3f", f8.MeanStoreMiss), within(f8.MeanStoreMiss, 0.12, 0.30))
	rep.add("E7", "Fig 8", "stores miss more than loads", "yes",
		fmt.Sprintf("%.3f > %.3f", f8.MeanStoreMiss, f8.MeanLoadMiss), f8.MeanStoreMiss > f8.MeanLoadMiss)
	rep.add("E7", "Fig 8", "overall L1D miss", "~14%",
		fmt.Sprintf("%.1f%%", 100*f8.OverallMiss), within(f8.OverallMiss, 0.08, 0.20))
	rep.add("E7", "Fig 8", "GC: store misses drop", "yes",
		fmt.Sprintf("%.3f vs %.3f quiet", f8.StoreMissGC, f8.StoreMissQuiet),
		f8.StoreMissGC < f8.StoreMissQuiet || f8.StoreMissGC == 0)

	f9, err := d.Fig9()
	if err != nil {
		return nil, err
	}
	rep.add("E8", "Fig 9", "L2 satisfies L1 misses", "~75%",
		fmt.Sprintf("%.0f%%", 100*l2share(f9)), within(l2share(f9), 0.55, 0.9))
	rep.add("E8", "Fig 9", "L3 share", "~15%",
		fmt.Sprintf("%.0f%%", 100*l3share(f9)), within(l3share(f9), 0.05, 0.25))
	rep.add("E8", "Fig 9", "L2.75 modified", "very little",
		fmt.Sprintf("%.1f%%", 100*f9.ModifiedShare), f9.ModifiedShare < 0.06)

	lk, err := d.Locking()
	if err != nil {
		return nil, err
	}
	rep.add("E9", "§4.2.4", "instructions per LARX", "~600",
		fmt.Sprintf("%.0f", lk.InstrPerLarx), within(lk.InstrPerLarx, 400, 900))
	rep.add("E9", "§4.2.4", "lock-acquisition instruction share", "~3%",
		fmt.Sprintf("%.1f%%", 100*lk.LockAcquireInstrShare), within(lk.LockAcquireInstrShare, 0.02, 0.05))
	rep.add("E9", "§4.2.4", "pthread_mutex_lock cycles", "~2%",
		fmt.Sprintf("%.1f%%", 100*lk.MutexCycleShare), within(lk.MutexCycleShare, 0.005, 0.04))
	rep.add("E9", "§4.2.4", "SYNC-in-SRQ user cycles", "<1%",
		fmt.Sprintf("%.2f%%", 100*lk.SyncSRQShareUser), lk.SyncSRQShareUser < 0.02)
	rep.add("E9", "§4.2.4", "SYNC-in-SRQ kernel cycles", "~7%",
		fmt.Sprintf("%.1f%%", 100*lk.SyncSRQShareKernel), within(lk.SyncSRQShareKernel, 0.03, 0.12))

	f10, err := d.Fig10()
	if err != nil {
		return nil, err
	}
	check := func(label string, wantPositive bool, strong bool) {
		r, ok := f10.Corr(label)
		holds := ok
		if wantPositive && strong {
			holds = holds && r > 0.30
		} else if !wantPositive {
			holds = holds && r < 0
		}
		want := "positive"
		if strong {
			want = "strongly positive"
		}
		if !wantPositive {
			want = "negative"
		}
		rep.add("E10", "Fig 10", "corr(CPI, "+label+")", want, fmt.Sprintf("%+.2f", r), holds)
	}
	check("Cond. Branch Mispred.", true, true)
	check("DTLB Miss", true, false)
	check("D$ Prefetch Stream Alloc.", true, true)
	check("SYNC in SRQ", true, false)

	check("Cyc w/ Instr. Comp.", false, false)
	check("Instr. from L1 I$", false, false)
	rep.add("E10", "Fig 10", "corr(CPI, deep I-fetch (L2+L3+mem))", "positive",
		fmt.Sprintf("%+.2f", f10.DeepIFetch), f10.DeepIFetch > 0.3)
	if r, ok := f10.Corr("Speculation Rate"); ok {
		rep.add("E10", "Fig 10", "corr(CPI, Speculation Rate)", "not strong",
			fmt.Sprintf("%+.2f", r), r < 0.6)
	}
	rep.add("E10", "Fig 10", "corr(speculation, L1D miss)", "~0.1 (weak)",
		fmt.Sprintf("%+.2f", f10.SpecVsL1), f10.SpecVsL1 < 0.5)
	rep.add("E10", "Fig 10", "corr(target miss, L1I miss)", "strong",
		fmt.Sprintf("%+.2f", f10.TargetMissVsICacheMiss), f10.TargetMissVsICacheMiss > 0.2)

	// Cross-checks: Trade6 and the Sovereign JVM (Sections 3.1, 4.1.1, 6).
	rep.add("E12", "§6", "Trade6 GC share", "similar small overhead",
		fmt.Sprintf("%.2f%% (%s %.2f%%)", cc.Trade6GCShare, wname, cc.Jas2004GCShare),
		cc.Trade6GCShare < 2.5)
	rep.add("E12", "§4.1.1", "Sovereign GC share", "little CPU time in GC",
		fmt.Sprintf("%.2f%%", cc.SovereignGCShare), cc.SovereignGCShare < 2.5)
	rep.add("E12", "§4.1 fn2", "Sovereign CPU util vs J9 at same IR", "higher",
		fmt.Sprintf("%.0f%% vs %.0f%%", 100*cc.SovereignUtil, 100*cc.J9Util),
		cc.SovereignUtil > cc.J9Util)

	return rep, nil
}

// l2share extracts the own-L2 share from a Fig9Result.
func l2share(f Fig9Result) float64 {
	for src, v := range f.Share {
		if src.String() == "L2" {
			return v
		}
	}
	return 0
}

// l3share extracts the MCM-local L3 share.
func l3share(f Fig9Result) float64 {
	for src, v := range f.Share {
		if src.String() == "L3" {
			return v
		}
	}
	return 0
}

// Markdown renders the report as the EXPERIMENTS.md table.
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("| ID | Artifact | Metric | Paper | Measured | Holds |\n")
	b.WriteString("|----|----------|--------|-------|----------|-------|\n")
	for _, row := range r.Rows {
		mark := "yes"
		if !row.Holds {
			mark = "NO"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
			row.ID, row.Artifact, row.Metric, row.Paper, row.Measured, mark)
	}
	return b.String()
}

// String renders the report for the terminal.
func (r *Report) String() string {
	var b strings.Builder
	pass := 0
	for _, row := range r.Rows {
		mark := "ok  "
		if !row.Holds {
			mark = "MISS"
		} else {
			pass++
		}
		fmt.Fprintf(&b, "[%s] %-4s %-8s %-42s paper: %-22s measured: %s\n",
			mark, row.ID, row.Artifact, row.Metric, row.Paper, row.Measured)
	}
	fmt.Fprintf(&b, "%d/%d paper observations hold\n", pass, len(r.Rows))
	return b.String()
}
