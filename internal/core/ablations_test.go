package core

import (
	"strings"
	"testing"
)

// ablCfg shortens what-if runs: each study point is a full engine run.
func ablCfg() RunConfig {
	cfg := DefaultRunConfig(ScaleQuick)
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	return cfg
}

func TestL2SizeStudyDirection(t *testing.T) {
	pts, err := L2SizeStudy(ablCfg(), []int{768, 6144})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Bigger L2 -> lower CPI and higher L2 share of misses.
	if pts[1].CPI >= pts[0].CPI {
		t.Fatalf("bigger L2 did not reduce CPI: %.2f -> %.2f", pts[0].CPI, pts[1].CPI)
	}
	if pts[1].Extra <= pts[0].Extra {
		t.Fatalf("bigger L2 did not raise its miss share: %.2f -> %.2f", pts[0].Extra, pts[1].Extra)
	}
}

func TestL3LatencyStudyDirection(t *testing.T) {
	pts, err := L3LatencyStudy(ablCfg(), []float64{110, 25})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].CPI >= pts[0].CPI {
		t.Fatalf("faster L3 did not reduce CPI: %.2f -> %.2f", pts[0].CPI, pts[1].CPI)
	}
}

func TestCodeLargePagesStudyDirection(t *testing.T) {
	pts, err := CodeLargePagesStudy(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// 16 MB code pages cut ITLB misses (paper's proposed optimization).
	if pts[1].Extra >= pts[0].Extra {
		t.Fatalf("large code pages did not cut ITLB misses: %.2e -> %.2e", pts[0].Extra, pts[1].Extra)
	}
	if pts[1].CPI >= pts[0].CPI {
		t.Fatalf("large code pages did not help CPI: %.2f -> %.2f", pts[0].CPI, pts[1].CPI)
	}
}

func TestCoreScalingStudyDirection(t *testing.T) {
	pts, err := CoreScalingStudy(ablCfg(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Twice the cores at twice the load: roughly twice the JOPS.
	ratio := pts[1].Extra / pts[0].Extra
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("JOPS scaling ratio = %.2f, want ~2", ratio)
	}
	// Both configurations deliver plausible CPI.
	for _, p := range pts {
		if p.CPI < 2 || p.CPI > 5.5 {
			t.Fatalf("%s: CPI %.2f out of range", p.Label, p.CPI)
		}
	}
}

func TestFormatWhatIf(t *testing.T) {
	out := FormatWhatIf("title", "x", []WhatIfPoint{{Label: "a", CPI: 3, Extra: 7}})
	if !strings.Contains(out, "title") || !strings.Contains(out, "CPI=3.00") || !strings.Contains(out, "x=7") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
}

func TestRunLargePageAblation(t *testing.T) {
	abl, err := RunLargePageAblation(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Large heap pages must cut DTLB misses per instruction.
	if abl.LargeDTLBPerInst >= abl.SmallDTLBPerInst {
		t.Fatalf("large pages did not cut DTLB misses: %.2e vs %.2e",
			abl.LargeDTLBPerInst, abl.SmallDTLBPerInst)
	}
	if abl.DTLBHitGainPct <= 0 {
		t.Fatalf("DTLB hit gain = %.1f%%, want positive", abl.DTLBHitGainPct)
	}
	if !strings.Contains(abl.String(), "Large-page ablation") {
		t.Fatal("missing rendering")
	}
}

func TestRunScalars(t *testing.T) {
	sc, err := RunScalars(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if sc.JOPSPerIR < 1.2 || sc.JOPSPerIR > 2.0 {
		t.Fatalf("JOPS/IR = %.2f", sc.JOPSPerIR)
	}
	if !sc.RAMDiskPasses {
		t.Fatal("RAM-disk configuration failed its audit")
	}
	if sc.KernelShare < 0.1 || sc.KernelShare > 0.3 {
		t.Fatalf("kernel share = %.2f, want ~0.2", sc.KernelShare)
	}
	// The 2-disk configuration drowns in I/O wait, as in the paper.
	if sc.DiskIOWaitShare <= 0.02 {
		t.Fatalf("disk iowait = %.3f, want substantial", sc.DiskIOWaitShare)
	}
	if sc.DiskPasses {
		t.Fatal("disk-starved run passed its response-time audit")
	}
	if !strings.Contains(sc.String(), "JOPS per IR") {
		t.Fatal("missing rendering")
	}
}

func TestRunCrossChecks(t *testing.T) {
	cc, err := RunCrossChecks(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Section 6: Trade6 shows a similarly small GC overhead.
	if cc.Trade6GCShare <= 0 || cc.Trade6GCShare > 2.5 {
		t.Fatalf("Trade6 GC share = %.2f%%", cc.Trade6GCShare)
	}
	if cc.Jas2004GCShare <= 0 || cc.Jas2004GCShare > 2.5 {
		t.Fatalf("jas2004 GC share = %.2f%%", cc.Jas2004GCShare)
	}
	// Section 4.1.1: both JVMs keep GC cheap.
	if cc.SovereignGCShare <= 0 || cc.SovereignGCShare > 2.5 {
		t.Fatalf("Sovereign GC share = %.2f%%", cc.SovereignGCShare)
	}
	// Footnote 2: Sovereign burns more CPU at the same IR.
	if cc.SovereignUtil <= cc.J9Util {
		t.Fatalf("Sovereign util %.2f not above J9 %.2f", cc.SovereignUtil, cc.J9Util)
	}
	// Same delivered throughput (the driver sets the rate, not the JVM).
	if cc.SovereignJOPS < cc.J9JOPS*0.9 || cc.SovereignJOPS > cc.J9JOPS*1.1 {
		t.Fatalf("JOPS diverged: %.1f vs %.1f", cc.SovereignJOPS, cc.J9JOPS)
	}
	if !strings.Contains(cc.String(), "Trade6") {
		t.Fatal("missing rendering")
	}
}
