package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"jasworkload/internal/mem"
)

// splitCfg is a reduced quick config for the split-key tests, with
// durations distinct from both testCfg and artifactCfg so these tests
// never collide with other tests' cached runs.
func splitCfg() RunConfig {
	cfg := DefaultRunConfig(ScaleQuick)
	cfg.DurationMS = 30_000
	cfg.RampMS = 10_000
	return cfg
}

// TestRequestKeyDerivation pins which knobs the request-level key ignores
// (page size, detail fraction — via the effective heap capacity) and which
// it must keep (seed, IR, raw heap bytes — the SUT derives the auto
// baseline cache from the unrounded value).
func TestRequestKeyDerivation(t *testing.T) {
	base := splitCfg() // 256MB heap (a 16M multiple), Page16M

	paged := base
	paged.HeapPageSize = mem.Page4K
	if base.RequestKey() != paged.RequestKey() {
		t.Error("page size alone changed the RequestKey (16M-multiple heap)")
	}

	sampled := base
	sampled.DetailFrac = 0.01
	if base.RequestKey() != sampled.RequestKey() {
		t.Error("detail fraction changed the RequestKey")
	}

	seeded := base
	seeded.Seed = base.Seed + 1
	if base.RequestKey() == seeded.RequestKey() {
		t.Error("seed did not change the RequestKey")
	}

	// 250MB is not a 16M multiple: with 16M pages the effective capacity
	// rounds to 256MB, with 4K pages it stays 250MB — different
	// request-level behaviour, so the keys must differ.
	odd16 := base
	odd16.HeapBytes = 250 << 20
	odd4 := odd16
	odd4.HeapPageSize = mem.Page4K
	if odd16.RequestKey() == odd4.RequestKey() {
		t.Error("page size must change the RequestKey for a non-multiple heap (capacity differs)")
	}

	// Same 256MB capacity, but the raw heap bytes differ — and with them
	// the auto-derived baseline cache — so no sharing.
	if odd16.RequestKey() == base.RequestKey() {
		t.Error("raw heap bytes must stay in the RequestKey (auto baseline cache)")
	}

	// With sharing disabled every canonical config is its own key.
	prev := SetShareRequestLevel(false)
	defer SetShareRequestLevel(prev)
	if base.RequestKey() == paged.RequestKey() {
		t.Error("sharing disabled, but page-size variants still share a key")
	}
}

// TestSplitKeyEquivalence is the tentpole guard: for configs differing
// only in detail-only knobs, the full report is byte-identical whether the
// request-level run is shared or private — only the simulation count
// changes (1 shared vs one per config).
func TestSplitKeyEquivalence(t *testing.T) {
	base := splitCfg()
	paged := base
	paged.HeapPageSize = mem.Page4K
	sampled := base
	sampled.DetailFrac = 0.01
	cfgs := []RunConfig{base, paged, sampled}

	run := func(share bool) ([]string, int) {
		prev := SetShareRequestLevel(share)
		defer SetShareRequestLevel(prev)
		Flush()
		resetSimStats()
		outs := make([]string, len(cfgs))
		for i, c := range cfgs {
			rep, err := BuildReport(c)
			if err != nil {
				t.Fatalf("BuildReport(share=%v, cfg %d): %v", share, i, err)
			}
			outs[i] = rep.Markdown()
		}
		return outs, simCount("request-level")
	}

	shared, sharedSims := run(true)
	private, privateSims := run(false)
	defer Flush() // drop runs cached under reduced durations

	for i := range cfgs {
		if shared[i] != private[i] {
			t.Errorf("config %d: report differs between shared and private request-level runs", i)
		}
	}
	if sharedSims != 1 {
		t.Errorf("shared request-level simulations = %d, want 1", sharedSims)
	}
	if privateSims != len(cfgs) {
		t.Errorf("private request-level simulations = %d, want %d", privateSims, len(cfgs))
	}
}

// TestDropKeepsSharedRequestLevelCell: dropping one of two artifacts that
// share a request-level cell must not orphan (or re-run) the cell the
// survivor still points at; dropping the last reference removes it.
func TestDropKeepsSharedRequestLevelCell(t *testing.T) {
	Flush()
	resetSimStats()
	base := splitCfg()
	base.Seed = 424_242
	paged := base
	paged.HeapPageSize = mem.Page4K

	a, b := ForConfig(base), ForConfig(paged)
	if a == b {
		t.Fatal("distinct canonical configs share an artifact")
	}
	r1, err := a.RequestLevel()
	if err != nil {
		t.Fatal(err)
	}
	if !Drop(a) {
		t.Fatal("drop of a cached artifact reported false")
	}
	// The survivor still holds the cell: no orphan, no re-simulation.
	r2, err := b.RequestLevel()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("surviving artifact lost the shared request-level run")
	}
	if n := simCount("request-level"); n != 1 {
		t.Fatalf("request-level simulations after partial drop = %d, want 1", n)
	}
	// Even a fresh artifact for the dropped config re-adopts the live cell.
	c := ForConfig(base)
	if r3, err := c.RequestLevel(); err != nil || r3 != r1 {
		t.Fatalf("re-created artifact did not adopt the live cell (err %v)", err)
	}
	Drop(c)
	if !Drop(b) {
		t.Fatal("drop of the surviving artifact reported false")
	}
	// Last reference gone: the cell is evicted and the next request
	// re-simulates.
	d := ForConfig(paged)
	if _, err := d.RequestLevel(); err != nil {
		t.Fatal(err)
	}
	if n := simCount("request-level"); n != 2 {
		t.Fatalf("request-level simulations after full drop = %d, want 2", n)
	}
	Drop(d)
}

// TestRequestLevelCancelNotSticky: a request-level attempt aborted by its
// only waiter's context does not poison the shared cell — the next caller
// re-executes and succeeds. (Detail memos cache cancellation errors and
// need Drop; the request-level cell must not, because it may be shared by
// configs the canceller never knew about.)
func TestRequestLevelCancelNotSticky(t *testing.T) {
	Flush()
	resetSimStats()
	cfg := splitCfg()
	cfg.Seed = 900_001
	a := ForConfig(cfg)
	defer func() {
		Drop(a)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(time.Millisecond, cancel)
	defer timer.Stop()
	if _, err := a.RequestLevelContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait returned %v, want context.Canceled", err)
	}
	if _, err := a.RequestLevelContext(context.Background()); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if n := simCount("request-level"); n != 2 {
		t.Fatalf("request-level simulations = %d, want 2 (aborted + retry)", n)
	}
}

// TestRequestLevelSharedCancellationSurvives: with two callers waiting on
// one shared cell, cancelling one caller's context returns its error but
// leaves the run alive for the other — the run aborts only when the last
// waiter is gone.
func TestRequestLevelSharedCancellationSurvives(t *testing.T) {
	Flush()
	resetSimStats()
	base := splitCfg()
	base.Seed = 900_002
	paged := base
	paged.HeapPageSize = mem.Page4K
	a, b := ForConfig(base), ForConfig(paged)
	defer func() {
		Drop(a)
		Drop(b)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := a.RequestLevelContext(ctx)
		errA <- err
	}()
	okB := make(chan error, 1)
	go func() {
		_, err := b.RequestLevelContext(context.Background())
		okB <- err
	}()
	time.Sleep(50 * time.Millisecond) // let both register as waiters
	cancel()

	if err := <-errA; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller returned %v", err)
	}
	if err := <-okB; err != nil {
		t.Fatalf("surviving caller's run failed: %v", err)
	}
	if n := simCount("request-level"); n != 1 {
		t.Fatalf("request-level simulations = %d, want 1 (run survived the cancel)", n)
	}
}
