package core

import (
	"strings"
	"testing"

	"jasworkload/internal/mem"
)

// TestSweepExpand: a 2x3 grid expands in odometer order with canonical
// cell configs and per-cell labels.
func TestSweepExpand(t *testing.T) {
	s := Sweep{
		Base: DefaultRunConfig(ScaleQuick),
		Axes: []Axis{
			{Param: "heap_page", Values: []any{"4K", "16M"}},
			{Param: "detail_frac", Values: []any{0.01, 0.02, 0.03}},
		},
	}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	if cells[0].Label != "heap_page=4K detail_frac=0.01" {
		t.Errorf("cell 0 label = %q", cells[0].Label)
	}
	if cells[5].Cfg.HeapPageSize != mem.Page16M || cells[5].Cfg.DetailFrac != 0.03 {
		t.Errorf("cell 5 config = %+v", cells[5].Cfg)
	}
	// Cells are canonical: durations resolved from the scale defaults.
	if cells[0].Cfg.DurationMS == 0 {
		t.Error("cell config not canonicalized")
	}
	// One page-size axis over a 16M-multiple heap needs a single
	// request-level simulation for all six cells.
	if n := DistinctRequestKeys(cells); n != 1 {
		t.Errorf("distinct request keys = %d, want 1", n)
	}
}

// TestSweepExpandDedup: grid points that canonicalize identically fold
// onto one cell, recording the folded labels as aliases.
func TestSweepExpandDedup(t *testing.T) {
	base := DefaultRunConfig(ScaleQuick)
	s := Sweep{
		Base: base,
		Axes: []Axis{
			// quick's default detail fraction is 0.02, so the explicit 0.02
			// canonicalizes onto the same cell as another explicit 0.02 —
			// here via equivalent spellings of the page size.
			{Param: "heap_page", Values: []any{"4K", "4k", "16M"}},
		},
	}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2 (4K/4k folded)", len(cells))
	}
	if len(cells[0].Aliases) != 1 || cells[0].Aliases[0] != "heap_page=4k" {
		t.Errorf("cell 0 aliases = %v, want [heap_page=4k]", cells[0].Aliases)
	}
}

// TestSweepExpandValidation covers the rejection paths: empty grids,
// unknown or duplicate parameters, bad values, overflowing the cap, and a
// ramp swept past the duration.
func TestSweepExpandValidation(t *testing.T) {
	base := DefaultRunConfig(ScaleQuick)
	cases := []struct {
		name string
		axes []Axis
		cap  int
		want string
	}{
		{"no axes", nil, 0, "no axes"},
		{"unknown param", []Axis{{Param: "heap_gb", Values: []any{1}}}, 0, "unknown parameter"},
		{"duplicate param", []Axis{
			{Param: "seed", Values: []any{1}},
			{Param: "seed", Values: []any{2}},
		}, 0, "duplicate axis"},
		{"empty values", []Axis{{Param: "seed", Values: nil}}, 0, "no values"},
		{"cap", []Axis{
			{Param: "seed", Values: []any{1, 2, 3}},
			{Param: "ir", Values: []any{10, 20, 30}},
		}, 8, "more than 8 cells"},
		{"bad page", []Axis{{Param: "heap_page", Values: []any{"2M"}}}, 0, `want "4K" or "16M"`},
		{"fractional ir", []Axis{{Param: "ir", Values: []any{1.5}}}, 0, "positive integer"},
		{"detail frac range", []Axis{{Param: "detail_frac", Values: []any{1.5}}}, 0, "fraction in (0,1]"},
		{"unknown workload", []Axis{{Param: "workload", Values: []any{"nope"}}}, 0, "nope"},
		{"ramp past duration", []Axis{{Param: "ramp_ms", Values: []any{999_999_999}}}, 0, "below duration_ms"},
	}
	for _, tc := range cases {
		_, err := Sweep{Base: base, Axes: tc.axes}.Expand(tc.cap)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestSweepDistinctRequestKeys: a heap axis keeps one request-level run
// per size, and a crossed detail axis adds none.
func TestSweepDistinctRequestKeys(t *testing.T) {
	base := DefaultRunConfig(ScaleQuick)
	base.BaselineCacheBytes = 96 << 20 // pinned, so sizes don't re-derive it
	s := Sweep{
		Base: base,
		Axes: []Axis{
			{Param: "heap_mb", Values: []any{128, 192, 256}},
			{Param: "detail_frac", Values: []any{0.01, 0.02}},
		},
	}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	if n := DistinctRequestKeys(cells); n != 3 {
		t.Errorf("distinct request keys = %d, want 3 (one per heap size)", n)
	}
	// With sharing disabled every cell pays full price.
	prev := SetShareRequestLevel(false)
	defer SetShareRequestLevel(prev)
	if n := DistinctRequestKeys(cells); n != 6 {
		t.Errorf("sharing off: distinct request keys = %d, want 6", n)
	}
}
