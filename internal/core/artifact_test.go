package core

import "testing"

// artifactCfg is a reduced quick config for the cache tests. It differs
// from testCfg's canonical durations, so these tests never collide with the
// figure tests' shared runs.
func artifactCfg() RunConfig {
	cfg := DefaultRunConfig(ScaleQuick)
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	return cfg
}

// TestArtifactSharesRequestLevelRun: two experiments needing the same
// config's request-level fidelity trigger exactly one simulation.
func TestArtifactSharesRequestLevelRun(t *testing.T) {
	Flush()
	resetSimStats()
	cfg := artifactCfg()

	r1, err := RunRequestLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ForConfig(cfg).RequestLevel()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("same config returned distinct request-level runs")
	}
	// Views over the run don't re-simulate either.
	_ = r2.Fig2()
	_ = r2.Fig4()
	if n := simCount("request-level"); n != 1 {
		t.Fatalf("request-level simulations = %d, want 1", n)
	}
}

// TestArtifactSharesDetailRun: any mix of HPM group subsets is served by a
// single detail simulation carrying all standard groups.
func TestArtifactSharesDetailRun(t *testing.T) {
	Flush()
	resetSimStats()
	cfg := artifactCfg()

	d1, err := RunDetail(cfg, "cpi")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := RunDetail(cfg, "branch", "translation")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same config returned distinct detail runs")
	}
	for _, g := range standardGroupNames() {
		if d1.Monitors[g] == nil {
			t.Fatalf("shared detail run lacks standard group %q", g)
		}
	}
	if n := simCount("detail"); n != 1 {
		t.Fatalf("detail simulations = %d, want 1", n)
	}
}

// TestArtifactDistinctConfigs: a different seed or scale is a different
// artifact and must re-simulate.
func TestArtifactDistinctConfigs(t *testing.T) {
	Flush()
	resetSimStats()
	cfg := artifactCfg()

	if _, err := RunRequestLevel(cfg); err != nil {
		t.Fatal(err)
	}
	seeded := cfg
	seeded.Seed = cfg.Seed + 1
	if _, err := RunRequestLevel(seeded); err != nil {
		t.Fatal(err)
	}
	if ForConfig(cfg) == ForConfig(seeded) {
		t.Fatal("different seeds share an artifact")
	}
	if n := simCount("request-level"); n != 2 {
		t.Fatalf("request-level simulations = %d, want 2 (distinct seeds)", n)
	}
}

// TestBuildReportSimulationBudget: the full report costs exactly one
// request-level run, one detail run, and the two cross-check variants.
func TestBuildReportSimulationBudget(t *testing.T) {
	Flush()
	resetSimStats()
	cfg := artifactCfg()

	if _, err := BuildReport(cfg); err != nil {
		t.Fatal(err)
	}
	if n := simCount("request-level"); n != 1 {
		t.Errorf("request-level simulations = %d, want 1", n)
	}
	if n := simCount("detail"); n != 1 {
		t.Errorf("detail simulations = %d, want 1", n)
	}
	if n := simCount("variant"); n != 2 {
		t.Errorf("variant simulations = %d, want 2 (Trade6, Sovereign)", n)
	}

	// A second report over the same config is free.
	if _, err := BuildReport(cfg); err != nil {
		t.Fatal(err)
	}
	if n := simCount("request-level") + simCount("detail") + simCount("variant"); n != 4 {
		t.Errorf("cached report re-simulated: total sims = %d, want 4", n)
	}
}

// TestDropEvictsArtifact covers the run-store escape hatch used by the
// service's retention/cancellation paths: Drop forgets the artifact (so a
// resubmission builds a fresh one, un-poisoning memos that cached a
// cancellation error) and is identity-guarded against double drops.
func TestDropEvictsArtifact(t *testing.T) {
	cfg := DefaultRunConfig(ScaleQuick)
	cfg.Seed = 987_654
	a := ForConfig(cfg)
	if !Drop(a) {
		t.Fatal("drop of a cached artifact reported false")
	}
	if Drop(a) {
		t.Fatal("second drop of the same artifact reported true")
	}
	b := ForConfig(cfg)
	if b == a {
		t.Fatal("run store still serves the dropped artifact")
	}
	if !Drop(b) {
		t.Fatal("replacement artifact not registered")
	}
}
