package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"jasworkload/internal/db"
	"jasworkload/internal/driver"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
	"jasworkload/internal/stats"
)

// This file is the persistent, content-addressed artifact store. Runs are
// pure functions of their canonical config, so a finished artifact can be
// serialized once and served forever: across daemon restarts, and across N
// jasd replicas sharing one directory. What is persisted is not the live
// engine (gigabytes of SUT state) but the materialized views a report
// consumes — the figure results plus the small window/scalar snapshots
// the remaining accessors need. A run rebuilt from the store ("hydrated")
// answers every report, sweep, and figure request byte-identically to the
// simulation that produced it, at zero simulation cost.
//
// Keys are the existing cache identities: request-level entries key on the
// RequestKey sha256, detail entries (and the crosschecks/scalars/largepages
// view memos that ride on the detail identity) on the canonical-config
// sha256 — the same value the service's job IDs truncate. Entries are
// written through db.WriteEntryFile (versioned header, payload checksum,
// temp-file + rename), so a torn or corrupt entry is detected on read and
// treated as a miss, never served.
//
// Cross-replica dedup uses store-level leases: a replica that misses tries
// to take <dir>/lease/<kind>-<key>.lock (O_CREATE|O_EXCL). The winner
// simulates, persists, releases; losers poll until the lease clears and
// then re-check the store, so two replicas racing the same key cost one
// simulation. A crashed holder's lease goes stale by mtime and is broken.

// Store entry kinds, doubling as the metric label values.
const (
	kindRequestLevel = "request-level"
	kindDetail       = "detail"
	kindCrossChecks  = "crosschecks"
	kindScalars      = "scalars"
	kindLargePages   = "largepages"
)

// storeKinds lists every entry kind in stable metric order.
var storeKinds = []string{kindRequestLevel, kindDetail, kindCrossChecks, kindScalars, kindLargePages}

// ArtifactStore is a disk-backed content-addressed store of finished runs.
// All methods are safe for concurrent use from many goroutines and many
// processes sharing the directory.
type ArtifactStore struct {
	dir       string
	leaseTTL  time.Duration // a lease older than this is a crashed holder
	leasePoll time.Duration

	mu         sync.Mutex
	hits       map[string]uint64
	misses     map[string]uint64
	writes     uint64
	writeFails uint64
	corrupt    uint64
	leaseWaits uint64
}

// OpenStore opens (creating if needed) the artifact store rooted at dir.
func OpenStore(dir string) (*ArtifactStore, error) {
	if dir == "" {
		return nil, errors.New("core: empty store directory")
	}
	for _, sub := range []string{kindRequestLevel, kindDetail, kindCrossChecks, kindScalars, kindLargePages, "lease"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("core: open store: %w", err)
		}
	}
	return &ArtifactStore{
		dir:       dir,
		leaseTTL:  10 * time.Minute,
		leasePoll: 25 * time.Millisecond,
		hits:      map[string]uint64{},
		misses:    map[string]uint64{},
	}, nil
}

// persistentStore is the process-wide store; nil means persistence is off
// (the default — pure in-memory caching, exactly the pre-store behaviour).
var persistentStore struct {
	mu sync.RWMutex
	s  *ArtifactStore
}

// SetStore installs s as the process-wide persistent store (nil disables
// persistence) and returns the previous one. Like SetShareRequestLevel,
// flip it only between experiments: in-memory artifacts created under the
// old setting keep the behaviour they were born with.
func SetStore(s *ArtifactStore) *ArtifactStore {
	persistentStore.mu.Lock()
	prev := persistentStore.s
	persistentStore.s = s
	persistentStore.mu.Unlock()
	return prev
}

// CurrentStore returns the installed persistent store, or nil.
func CurrentStore() *ArtifactStore {
	persistentStore.mu.RLock()
	defer persistentStore.mu.RUnlock()
	return persistentStore.s
}

// StoreStats is a snapshot of one store's counters.
type StoreStats struct {
	Hits       map[string]uint64 // by entry kind
	Misses     map[string]uint64
	Writes     uint64
	WriteFails uint64
	Corrupt    uint64 // torn/damaged entries detected (each also a miss)
	LeaseWaits uint64 // times a load waited out another replica's lease
	Bytes      int64  // bytes resident on disk
}

// Kinds lists every entry kind in the stable order metrics emit them.
func (StoreStats) Kinds() []string { return storeKinds }

// Stats snapshots the store's counters and measures its on-disk size.
func (s *ArtifactStore) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{
		Hits:       make(map[string]uint64, len(s.hits)),
		Misses:     make(map[string]uint64, len(s.misses)),
		Writes:     s.writes,
		WriteFails: s.writeFails,
		Corrupt:    s.corrupt,
		LeaseWaits: s.leaseWaits,
	}
	for k, v := range s.hits {
		st.Hits[k] = v
	}
	for k, v := range s.misses {
		st.Misses[k] = v
	}
	s.mu.Unlock()
	st.Bytes = s.bytes()
	return st
}

// PersistentStoreStats reports the installed store's statistics; ok is
// false when persistence is disabled.
func PersistentStoreStats() (StoreStats, bool) {
	s := CurrentStore()
	if s == nil {
		return StoreStats{}, false
	}
	return s.Stats(), true
}

// bytes walks the store directory and sums entry sizes.
func (s *ArtifactStore) bytes() int64 {
	var n int64
	filepath.WalkDir(s.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			n += info.Size()
		}
		return nil
	})
	return n
}

// ---------------------------------------------------------------- keys

// hashKey content-addresses a cache key: the full sha256 of its canonical
// Go representation (the same derivation the service's job IDs truncate;
// %#v includes unexported fields, so the whole RequestKey participates).
func hashKey(key any) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", key)))
	return hex.EncodeToString(sum[:])
}

// requestKeyHash addresses a request-level entry.
func requestKeyHash(k RequestKey) string { return hashKey(k) }

// detailKeyHash addresses a detail entry (and the view entries that share
// the detail identity) for a canonical config.
func detailKeyHash(cfg RunConfig) string { return hashKey(cfg.canonical()) }

// ---------------------------------------------------------------- entries

// rlStoreEntry is the persisted form of a request-level run: the three
// figure views plus the snapshot behind the run's scalar accessors.
type rlStoreEntry struct {
	Fig2      Fig2Result
	Fig3      Fig3Result
	Fig4      Fig4Result
	Windows   []sim.WindowStats
	JOPS      float64
	MeanUtil  float64
	SegTotals [server.NumSegments]uint64
	AuditRows []driver.ClassAudit
	AuditPass bool
}

// detStoreEntry is the persisted form of a detail run: figures 5-10, the
// locking table, and the steady translation-group series the large-page
// ablation consumes (keyed by event name).
type detStoreEntry struct {
	Fig5        Fig5Result
	Fig6        Fig6Result
	Fig7        Fig7Result
	Fig8        Fig8Result
	Fig9        Fig9Result
	Fig10       Fig10Result
	Locking     LockingResult
	TransSteady map[string]*stats.Series
}

// transSteadyEvents lists the translation-group events whose steady series
// must survive hydration (the large-page ablation re-reads them).
var transSteadyEvents = []power4.Event{
	power4.EvInstCompleted,
	power4.EvDTLBMiss,
	power4.EvITLBMiss,
	power4.EvDERATMiss,
	power4.EvIERATMiss,
}

// encode gobs a value for an entry payload.
func encodeEntry(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// entryPath places an entry in its kind subdirectory.
func (s *ArtifactStore) entryPath(kind, key string) string {
	return filepath.Join(s.dir, kind, key+".art")
}

// readEntry loads and decodes one entry into out. A missing file is a
// plain miss; a corrupt or undecodable one counts as corruption and is
// also a miss — never an error surfaced to the caller.
func (s *ArtifactStore) readEntry(kind, key string, out any) bool {
	payload, err := db.ReadEntryFile(s.entryPath(kind, key), kind, key)
	if err == nil {
		err = gob.NewDecoder(bytes.NewReader(payload)).Decode(out)
		if err == nil {
			s.note(func() { s.hits[kind]++ })
			return true
		}
		// Decodable header, undecodable payload: a stale or damaged entry.
		err = fmt.Errorf("%w: %v", db.ErrCorruptEntry, err)
	}
	if errors.Is(err, db.ErrCorruptEntry) {
		s.note(func() { s.corrupt++ })
	}
	s.note(func() { s.misses[kind]++ })
	return false
}

// writeEntry encodes and atomically persists one entry. Failures are
// counted but not propagated: the in-memory result is already correct, and
// the next process simply re-simulates.
func (s *ArtifactStore) writeEntry(kind, key string, v any) {
	payload, err := encodeEntry(v)
	if err == nil {
		err = db.WriteEntryFile(s.entryPath(kind, key), kind, key, payload)
	}
	if err != nil {
		s.note(func() { s.writeFails++ })
		return
	}
	s.note(func() { s.writes++ })
}

// note runs fn under the counter lock.
func (s *ArtifactStore) note(fn func()) {
	s.mu.Lock()
	fn()
	s.mu.Unlock()
}

// ------------------------------------------------------- request level

// loadRequestLevel hydrates a request-level run from the store.
func (s *ArtifactStore) loadRequestLevel(key string, cfg RunConfig) (*RequestLevelRun, bool) {
	var e rlStoreEntry
	if !s.readEntry(kindRequestLevel, key, &e) {
		return nil, false
	}
	r := &RequestLevelRun{Cfg: cfg, snap: &rlSnapshot{
		windows:   e.Windows,
		jops:      e.JOPS,
		meanUtil:  e.MeanUtil,
		segTotals: e.SegTotals,
		auditRows: e.AuditRows,
		auditPass: e.AuditPass,
	}}
	r.fig2.set(e.Fig2)
	r.fig3.set(e.Fig3)
	r.fig4.set(e.Fig4)
	return r, true
}

// saveRequestLevel persists a finished request-level run. Forcing the
// figure views here is what makes a later hydration free: they are exactly
// the memos a report reads.
func (s *ArtifactStore) saveRequestLevel(key string, run *RequestLevelRun) {
	rows, pass := run.Audit()
	s.writeEntry(kindRequestLevel, key, &rlStoreEntry{
		Fig2:      run.Fig2(),
		Fig3:      run.Fig3(),
		Fig4:      run.Fig4(),
		Windows:   run.Windows(),
		JOPS:      run.JOPS(),
		MeanUtil:  run.MeanUtilization(),
		SegTotals: run.SegmentTotals(),
		AuditRows: rows,
		AuditPass: pass,
	})
}

// ------------------------------------------------------------- detail

// loadDetail hydrates a detail run from the store.
func (s *ArtifactStore) loadDetail(key string, cfg RunConfig) (*DetailRun, bool) {
	var e detStoreEntry
	if !s.readEntry(kindDetail, key, &e) {
		return nil, false
	}
	d := &DetailRun{Cfg: cfg, transSteady: e.TransSteady}
	d.fig5.set(e.Fig5)
	d.fig6.set(e.Fig6)
	d.fig7.set(e.Fig7)
	d.fig8.set(e.Fig8)
	d.fig9.set(e.Fig9)
	d.fig10.set(e.Fig10)
	d.locking.set(e.Locking)
	return d, true
}

// saveDetail persists a finished detail run: every figure view plus the
// steady translation series. A run whose figures error (e.g. it was built
// under an exotic group subset) is simply not persisted.
func (s *ArtifactStore) saveDetail(key string, d *DetailRun) {
	e := detStoreEntry{TransSteady: make(map[string]*stats.Series, len(transSteadyEvents))}
	var err error
	if e.Fig5, err = d.Fig5(); err != nil {
		return
	}
	if e.Fig6, err = d.Fig6(); err != nil {
		return
	}
	if e.Fig7, err = d.Fig7(); err != nil {
		return
	}
	if e.Fig8, err = d.Fig8(); err != nil {
		return
	}
	if e.Fig9, err = d.Fig9(); err != nil {
		return
	}
	if e.Fig10, err = d.Fig10(); err != nil {
		return
	}
	if e.Locking, err = d.Locking(); err != nil {
		return
	}
	for _, ev := range transSteadyEvents {
		s, err := d.steadySeries("translation", ev)
		if err != nil {
			return
		}
		e.TransSteady[ev.String()] = s
	}
	s.writeEntry(kindDetail, key, &e)
}

// --------------------------------------------------------------- views

// loadStoreView reads a small view entry (crosschecks, scalars, large
// pages) keyed by the detail identity.
func loadStoreView[T any](s *ArtifactStore, kind, key string) (T, bool) {
	var v T
	ok := s.readEntry(kind, key, &v)
	return v, ok
}

// saveStoreView persists a small view entry.
func saveStoreView[T any](s *ArtifactStore, kind, key string, v T) {
	s.writeEntry(kind, key, v)
}

// --------------------------------------------------------------- leases

// leasePath names the lock file guarding one entry's execution.
func (s *ArtifactStore) leasePath(kind, key string) string {
	return filepath.Join(s.dir, "lease", kind+"-"+key+".lock")
}

// acquireLease tries to claim the execution of (kind, key) across every
// process sharing the store. On success it returns a release func. A lease
// whose file is older than the TTL belonged to a crashed holder and is
// broken.
func (s *ArtifactStore) acquireLease(kind, key string) (release func(), ok bool) {
	path := s.leasePath(kind, key)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "pid %d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, true
		}
		info, serr := os.Stat(path)
		if serr != nil {
			continue // holder released between our open and stat; retry
		}
		if time.Since(info.ModTime()) <= s.leaseTTL {
			return nil, false
		}
		os.Remove(path) // stale: the holder crashed mid-simulation
	}
	return nil, false
}

// waitLease blocks until the lease on (kind, key) clears (released or gone
// stale) or ctx is cancelled. The caller re-checks the store afterwards.
func (s *ArtifactStore) waitLease(ctx context.Context, kind, key string) error {
	s.note(func() { s.leaseWaits++ })
	path := s.leasePath(kind, key)
	t := time.NewTicker(s.leasePoll)
	defer t.Stop()
	for {
		info, err := os.Stat(path)
		if err != nil || time.Since(info.ModTime()) > s.leaseTTL {
			return nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// runDeduped coordinates one cross-replica execution of an entry: serve a
// store hit, else race for the lease; the winner simulates and persists,
// losers wait the lease out and re-check the store. Two replicas (or two
// goroutines in one replica that missed the in-memory cache) racing the
// same key therefore cost one simulation.
func runDeduped[T any](ctx context.Context, s *ArtifactStore, kind, key string,
	load func() (T, bool), run func() (T, error), save func(T)) (T, error) {
	for {
		if v, ok := load(); ok {
			return v, nil
		}
		if release, ok := s.acquireLease(kind, key); ok {
			v, err := run()
			if err == nil {
				save(v)
			}
			release()
			return v, err
		}
		if err := s.waitLease(ctx, kind, key); err != nil {
			var zero T
			return zero, err
		}
	}
}

// loadOrCompute is the store-through pattern of the small view memos:
// serve a persisted view, else compute under the cross-replica lease and
// persist. With no store installed it is just compute.
func loadOrCompute[T any](ctx context.Context, kind string, cfg RunConfig, compute func() (T, error)) (T, error) {
	s := CurrentStore()
	if s == nil {
		return compute()
	}
	key := detailKeyHash(cfg)
	return runDeduped(ctx, s, kind, key,
		func() (T, bool) { return loadStoreView[T](s, kind, key) },
		compute,
		func(v T) { saveStoreView(s, kind, key, v) })
}
