package core

import (
	"context"
	"fmt"
	"strings"

	"jasworkload/internal/db"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
	"jasworkload/internal/stats"
)

// ScalarsResult gathers the whole-system scalar claims from Sections 2 and
// 4.1: JOPS per IR, CPU utilization and its user/kernel split on the RAM
// disk configuration, how quickly the system reaches steady state, and the
// disk-starved comparison run.
type ScalarsResult struct {
	JOPSPerIR float64 // paper: ~1.6

	UtilRAMDisk   float64 // paper: ~100% at IR47, ~90% at IR40
	UserShare     float64 // paper: ~80% of CPU time
	KernelShare   float64 // paper: ~20%
	RAMDiskPasses bool

	// Steady-state onset: "the system profiles tend to stabilize after
	// less than 5 minutes".
	StabilizesWithinRampMS bool

	// Disk-starved run (2 spindles): I/O wait grows and response times
	// fail, matching Section 4.1.
	DiskIOWaitShare float64
	DiskPasses      bool
	DiskUtil        float64
}

// RunScalars executes the RAM-disk run plus the 2-disk comparison, cached
// on cfg's artifact.
func RunScalars(cfg RunConfig) (ScalarsResult, error) {
	return ForConfig(cfg).Scalars()
}

// Scalars returns the whole-system scalar results for this artifact's
// configuration. The RAM-disk numbers are a view of the shared
// request-level run; only the disk-starved comparison executes a fresh
// simulation, concurrently with that run when it is not yet cached.
func (a *Artifact) Scalars() (ScalarsResult, error) {
	return a.ScalarsContext(context.Background())
}

// ScalarsContext is Scalars with cancellable runs; the first-caller-wins
// memo semantics of RequestLevelContext apply.
func (a *Artifact) ScalarsContext(ctx context.Context) (ScalarsResult, error) {
	return a.sc.do(func() (ScalarsResult, error) {
		return loadOrCompute(ctx, kindScalars, a.Cfg, func() (ScalarsResult, error) {
			return a.runScalars(ctx)
		})
	})
}

func (a *Artifact) runScalars(ctx context.Context) (ScalarsResult, error) {
	var res ScalarsResult
	cfg := a.Cfg
	g := NewGroup(Parallelism())
	g.Go(func() error {
		run, err := a.RequestLevelContext(ctx)
		if err != nil {
			return err
		}
		res.JOPSPerIR = run.JOPS() / float64(cfg.IR)
		res.UtilRAMDisk = run.MeanUtilization()
		_, res.RAMDiskPasses = run.Audit()

		segs := run.SegmentTotals()
		var total uint64
		for _, v := range segs {
			total += v
		}
		if total > 0 {
			res.KernelShare = float64(segs[server.SegKernel]) / float64(total)
			res.UserShare = 1 - res.KernelShare
		}

		// Stability: CV of completions across the second half of the ramp
		// vs the steady interval should already be comparable.
		ws := run.Windows()
		steady := steadyStart(cfg)
		if steady > 0 && steady < len(ws) {
			var half []float64
			for _, w := range ws[steady/2 : steady] {
				var n int
				for _, c := range w.Completions {
					n += c
				}
				half = append(half, float64(n))
			}
			var after []float64
			for _, w := range ws[steady:] {
				var n int
				for _, c := range w.Completions {
					n += c
				}
				after = append(after, float64(n))
			}
			mh, ma := stats.Mean(half), stats.Mean(after)
			if ma > 0 {
				res.StabilizesWithinRampMS = mh > 0.85*ma
			}
		}
		return nil
	})
	g.Go(func() error {
		iowait, util, pass, err := runDiskStarved(ctx, cfg)
		if err != nil {
			return err
		}
		res.DiskIOWaitShare, res.DiskUtil, res.DiskPasses = iowait, util, pass
		return nil
	})
	if err := g.Wait(); err != nil {
		return res, err
	}
	return res, nil
}

// runDiskStarved executes the 2-spindle comparison run.
func runDiskStarved(ctx context.Context, cfg RunConfig) (iowaitShare, util float64, pass bool, err error) {
	noteSim("variant")
	w, err := cfg.workload()
	if err != nil {
		return 0, 0, false, err
	}
	scfg := sim.DefaultSUTConfig(cfg.IR)
	scfg.Seed = cfg.Seed
	scfg.HeapBytes = cfg.HeapBytes
	scfg.HeapPageSize = cfg.HeapPageSize
	scfg.App = server.AppFor(w)
	scfg.Profile = w.TuneProfile(scfg.Profile)
	scfg.Storage = db.DefaultDiskModel()
	// The paper's disk-starved runs had a database far larger than RAM
	// could cache; size the buffer pool to a fraction of the pack's
	// IR-scaled working set so page traffic reaches the two spindles.
	poolBytes := uint64(w.PoolPages(cfg.IR)) * 4096 / 24
	if poolBytes < 64<<10 {
		poolBytes = 64 << 10
	}
	scfg.DBBufferBytes = (poolBytes + (4 << 10) - 1) &^ ((4 << 10) - 1)
	if cfg.Scale == ScaleQuick {
		scfg.Profile.NumMethods = 850
		scfg.Profile.WarmSet = 60
	}
	sut, err := sim.BuildSUT(scfg)
	if err != nil {
		return 0, 0, false, err
	}
	eng, err := cfg.newEngine(sut, 0)
	if err != nil {
		return 0, 0, false, err
	}
	if _, err := eng.RunContext(ctx); err != nil {
		return 0, 0, false, err
	}
	_, pass = eng.Tracker().Audit()
	util = eng.MeanUtilization()
	var io []float64
	for _, w := range eng.Windows()[steadyStart(cfg):] {
		io = append(io, w.UtilIOWait)
	}
	return stats.Mean(io), util, pass, nil
}

// String renders the scalar table.
func (s ScalarsResult) String() string {
	var b strings.Builder
	b.WriteString("Whole-system scalars (Sections 2, 4.1)\n")
	fmt.Fprintf(&b, "JOPS per IR            = %.2f (paper: ~1.6)\n", s.JOPSPerIR)
	fmt.Fprintf(&b, "CPU util (RAM disk)    = %.0f%% (paper: ~90%% at IR40, ~100%% at IR47)\n", 100*s.UtilRAMDisk)
	fmt.Fprintf(&b, "user/kernel            = %.0f%%/%.0f%% (paper: 80/20)\n", 100*s.UserShare, 100*s.KernelShare)
	fmt.Fprintf(&b, "RAM-disk audit         = pass:%v\n", s.RAMDiskPasses)
	fmt.Fprintf(&b, "steady within ramp     = %v (paper: <5 min)\n", s.StabilizesWithinRampMS)
	fmt.Fprintf(&b, "2-disk run: iowait %.0f%%, util %.0f%%, pass:%v (paper: response times fail)\n",
		100*s.DiskIOWaitShare, 100*s.DiskUtil, s.DiskPasses)
	return b.String()
}
