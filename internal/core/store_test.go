package core

import (
	"context"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// storeCfg is a reduced quick config with its own seed so the persistent
// store tests never share runs with the other suites' configs.
func storeCfg() RunConfig {
	cfg := DefaultRunConfig(ScaleQuick)
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	cfg.Seed = 424_242
	return cfg
}

// withStore installs a fresh store rooted in a temp dir for the test and
// restores the previous (normally nil) store plus a clean in-memory cache
// afterwards.
func withStore(t *testing.T) *ArtifactStore {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := SetStore(st)
	t.Cleanup(func() {
		SetStore(prev)
		Flush()
	})
	Flush()
	resetSimStats()
	return st
}

// requireSims asserts the executed-simulation counters by kind.
func requireSims(t *testing.T, stage string, rl, det, variant int) {
	t.Helper()
	if n := simCount("request-level"); n != rl {
		t.Errorf("%s: request-level sims = %d, want %d", stage, n, rl)
	}
	if n := simCount("detail"); n != det {
		t.Errorf("%s: detail sims = %d, want %d", stage, n, det)
	}
	if n := simCount("variant"); n != variant {
		t.Errorf("%s: variant sims = %d, want %d", stage, n, variant)
	}
}

// TestPersistentStoreRoundTrip is the restart story end to end: simulate
// once with a store installed, drop every in-memory artifact (a daemon
// restart), and rebuild everything from disk — byte-identical report,
// figure-by-figure identical views, zero simulations of any kind.
func TestPersistentStoreRoundTrip(t *testing.T) {
	st := withStore(t)
	cfg := storeCfg()

	rep1, err := BuildReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	md1 := rep1.Markdown()
	sc1, err := ForConfig(cfg).Scalars()
	if err != nil {
		t.Fatal(err)
	}
	lp1, err := ForConfig(cfg).LargePages()
	if err != nil {
		t.Fatal(err)
	}
	rl1, err := ForConfig(cfg).RequestLevel()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ForConfig(cfg).Detail()
	if err != nil {
		t.Fatal(err)
	}
	if n := simCount("request-level"); n == 0 {
		t.Fatal("first pass did not simulate")
	}

	// "Restart": forget every in-memory artifact and counter. Everything
	// below must come from disk.
	Flush()
	resetSimStats()

	rep2, err := BuildReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if md2 := rep2.Markdown(); md2 != md1 {
		t.Error("hydrated report differs from the simulated one")
	}
	requireSims(t, "hydrated report", 0, 0, 0)

	sc2, err := ForConfig(cfg).Scalars()
	if err != nil {
		t.Fatal(err)
	}
	if sc2 != sc1 {
		t.Errorf("hydrated scalars differ: %+v != %+v", sc2, sc1)
	}
	lp2, err := ForConfig(cfg).LargePages()
	if err != nil {
		t.Fatal(err)
	}
	if lp2 != lp1 {
		t.Errorf("hydrated large-page ablation differs: %+v != %+v", lp2, lp1)
	}
	requireSims(t, "hydrated views", 0, 0, 0)

	// Every figure-bearing view survives serialization exactly.
	rl2, err := ForConfig(cfg).RequestLevel()
	if err != nil {
		t.Fatal(err)
	}
	if rl2.Engine != nil || rl2.SUT != nil {
		t.Error("hydrated request-level run still holds live engine state")
	}
	if !reflect.DeepEqual(rl2.Fig2(), rl1.Fig2()) {
		t.Error("Fig2 round-trip mismatch")
	}
	if !reflect.DeepEqual(rl2.Fig3(), rl1.Fig3()) {
		t.Error("Fig3 round-trip mismatch")
	}
	if !reflect.DeepEqual(rl2.Fig4(), rl1.Fig4()) {
		t.Error("Fig4 round-trip mismatch")
	}
	if rl2.JOPS() != rl1.JOPS() || rl2.MeanUtilization() != rl1.MeanUtilization() {
		t.Error("request-level scalar snapshot mismatch")
	}
	if !reflect.DeepEqual(rl2.Windows(), rl1.Windows()) {
		t.Error("window snapshot mismatch")
	}
	if !reflect.DeepEqual(rl2.SegmentTotals(), rl1.SegmentTotals()) {
		t.Error("segment totals snapshot mismatch")
	}
	rows1, pass1 := rl1.Audit()
	rows2, pass2 := rl2.Audit()
	if pass1 != pass2 || !reflect.DeepEqual(rows1, rows2) {
		t.Error("audit snapshot mismatch")
	}

	d2, err := ForConfig(cfg).Detail()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Monitors != nil {
		t.Error("hydrated detail run still holds monitors")
	}
	figs := []struct {
		name string
		get  func(d *DetailRun) (any, error)
	}{
		{"Fig5", func(d *DetailRun) (any, error) { return d.Fig5() }},
		{"Fig6", func(d *DetailRun) (any, error) { return d.Fig6() }},
		{"Fig7", func(d *DetailRun) (any, error) { return d.Fig7() }},
		{"Fig8", func(d *DetailRun) (any, error) { return d.Fig8() }},
		{"Fig9", func(d *DetailRun) (any, error) { return d.Fig9() }},
		{"Fig10", func(d *DetailRun) (any, error) { return d.Fig10() }},
		{"Locking", func(d *DetailRun) (any, error) { return d.Locking() }},
	}
	for _, f := range figs {
		v1, err1 := f.get(d1)
		v2, err2 := f.get(d2)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v / %v", f.name, err1, err2)
		}
		if !reflect.DeepEqual(v1, v2) {
			t.Errorf("%s round-trip mismatch", f.name)
		}
	}
	requireSims(t, "figure views", 0, 0, 0)

	// The large-page ablation view is the one consumer of raw series on a
	// hydrated detail run. Delete its persisted view and recompute: both
	// page-size legs hydrate, the translation series come from the store
	// entries, and the result matches the simulated one with zero sims.
	if err := os.Remove(st.entryPath(kindLargePages, detailKeyHash(cfg))); err != nil {
		t.Fatal(err)
	}
	Flush()
	resetSimStats()
	lp3, err := ForConfig(cfg).LargePages()
	if err != nil {
		t.Fatal(err)
	}
	if lp3 != lp1 {
		t.Errorf("recomputed ablation over hydrated runs differs: %+v != %+v", lp3, lp1)
	}
	requireSims(t, "recomputed ablation", 0, 0, 0)

	stats := st.Stats()
	if stats.Hits[kindRequestLevel] == 0 || stats.Hits[kindDetail] == 0 {
		t.Errorf("store hits not counted: %+v", stats.Hits)
	}
	if stats.Writes == 0 || stats.Bytes == 0 {
		t.Errorf("store writes/bytes not counted: writes=%d bytes=%d", stats.Writes, stats.Bytes)
	}
}

// TestPersistentStoreCorruptEntryIsMiss: damaged entries are re-simulated
// (and repaired), never served.
func TestPersistentStoreCorruptEntryIsMiss(t *testing.T) {
	st := withStore(t)
	cfg := storeCfg()
	cfg.Seed = 424_243

	if _, err := RunRequestLevel(cfg); err != nil {
		t.Fatal(err)
	}
	requireSims(t, "first run", 1, 0, 0)

	// Truncate the entry mid-payload, as a crash mid-write (without the
	// atomic rename) would have.
	path := st.entryPath(kindRequestLevel, requestKeyHash(cfg.RequestKey()))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	Flush()
	resetSimStats()
	if _, err := RunRequestLevel(cfg); err != nil {
		t.Fatal(err)
	}
	requireSims(t, "corrupt entry", 1, 0, 0) // re-simulated, not served
	if st.Stats().Corrupt == 0 {
		t.Error("corruption not counted")
	}

	// The re-run repaired the entry: a third pass hydrates.
	Flush()
	resetSimStats()
	if _, err := RunRequestLevel(cfg); err != nil {
		t.Fatal(err)
	}
	requireSims(t, "repaired entry", 0, 0, 0)
}

// TestRunDedupedConcurrentWriters: N concurrent executors of one key —
// the in-process analogue of N replicas racing — converge to one
// execution and one stored entry; losers serve the winner's result.
func TestRunDedupedConcurrentWriters(t *testing.T) {
	st := withStore(t)
	st.leasePoll = time.Millisecond

	type payload struct{ N int }
	var runs atomic.Int32
	var wg sync.WaitGroup
	results := make([]payload, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := runDeduped(context.Background(), st, kindScalars, "sharedkey",
				func() (payload, bool) { return loadStoreView[payload](st, kindScalars, "sharedkey") },
				func() (payload, error) {
					runs.Add(1)
					time.Sleep(20 * time.Millisecond) // let the others hit the lease
					return payload{N: 7}, nil
				},
				func(v payload) { saveStoreView(st, kindScalars, "sharedkey", v) })
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Errorf("%d executions for one key, want 1", n)
	}
	for i, v := range results {
		if v.N != 7 {
			t.Errorf("waiter %d got %+v", i, v)
		}
	}
	if st.Stats().LeaseWaits == 0 {
		t.Error("no lease waits recorded")
	}
}

// TestStoreLeaseStaleBreak: a lease left by a crashed holder is broken
// after the TTL instead of blocking the key forever.
func TestStoreLeaseStaleBreak(t *testing.T) {
	st := withStore(t)
	st.leaseTTL = 50 * time.Millisecond

	release, ok := st.acquireLease("detail", "k1")
	if !ok {
		t.Fatal("fresh lease not acquired")
	}
	if _, ok := st.acquireLease("detail", "k1"); ok {
		t.Fatal("held lease acquired twice")
	}
	// Age the lease past the TTL, as if its holder died mid-simulation.
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(st.leasePath("detail", "k1"), old, old); err != nil {
		t.Fatal(err)
	}
	release2, ok := st.acquireLease("detail", "k1")
	if !ok {
		t.Fatal("stale lease not broken")
	}
	release2()
	release() // idempotent double-remove is fine

	// waitLease returns promptly on a cancelled context.
	release3, _ := st.acquireLease("detail", "k2")
	defer release3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st.leaseTTL = time.Minute
	if err := st.waitLease(ctx, "detail", "k2"); err == nil {
		t.Fatal("cancelled waitLease returned nil")
	}
}

// TestStoreDisabledUnchanged: with no store installed the cell path is the
// pre-store one — simulate, no disk artifacts, PersistentStoreStats off.
func TestStoreDisabledUnchanged(t *testing.T) {
	if CurrentStore() != nil {
		t.Fatal("test expects no ambient store")
	}
	if _, ok := PersistentStoreStats(); ok {
		t.Fatal("stats reported with persistence disabled")
	}
}
