package core

import (
	"strings"
	"testing"
)

// testCfg is a reduced quick config so the core test suite stays fast:
// one shared request-level run and one shared detail run are reused by all
// figure tests.
func testCfg() RunConfig {
	return DefaultRunConfig(ScaleQuick)
}

var (
	sharedRL     *RequestLevelRun
	sharedDetail *DetailRun
)

func requestLevel(t *testing.T) *RequestLevelRun {
	t.Helper()
	if sharedRL == nil {
		run, err := RunRequestLevel(testCfg())
		if err != nil {
			t.Fatal(err)
		}
		sharedRL = run
	}
	return sharedRL
}

func detailRun(t *testing.T) *DetailRun {
	t.Helper()
	if sharedDetail == nil {
		d, err := RunDetail(testCfg())
		if err != nil {
			t.Fatal(err)
		}
		sharedDetail = d
	}
	return sharedDetail
}

func TestDefaultRunConfigScales(t *testing.T) {
	q := DefaultRunConfig(ScaleQuick)
	s := DefaultRunConfig(ScaleStandard)
	f := DefaultRunConfig(ScaleFull)
	if q.IR >= s.IR || q.HeapBytes >= s.HeapBytes {
		t.Fatal("quick scale not smaller than standard")
	}
	qd, _ := q.durations()
	sd, _ := s.durations()
	fd, fr := f.durations()
	if !(qd < sd && sd < fd) {
		t.Fatal("durations not ordered by scale")
	}
	if fd != 60*60_000 || fr != 5*60_000 {
		t.Fatal("full scale is not the paper's 60-minute/5-minute shape")
	}
	if q.detail() <= 0 || s.detail() <= 0 {
		t.Fatal("zero detail fractions")
	}
}

func TestRunDetailUnknownGroup(t *testing.T) {
	if _, err := RunDetail(testCfg(), "nonsense"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestFig2SteadyThroughput(t *testing.T) {
	f2 := requestLevel(t).Fig2()
	var total float64
	for rt := range f2.SteadyMean {
		if f2.SteadyMean[rt] <= 0 {
			t.Fatalf("class %d has no steady throughput", rt)
		}
		if f2.SteadyCV[rt] > 0.6 {
			t.Fatalf("class %d CV %.2f not steady", rt, f2.SteadyCV[rt])
		}
		total += f2.SteadyMean[rt]
	}
	// ~1.6 requests per second per IR.
	perIR := total / float64(testCfg().IR)
	if perIR < 1.2 || perIR > 2.0 {
		t.Fatalf("throughput per IR = %.2f", perIR)
	}
	if !f2.AuditPass {
		t.Fatal("quick run failed its audit")
	}
	if !strings.Contains(f2.String(), "Figure 2") {
		t.Fatal("missing rendering")
	}
}

func TestFig3GCBehaviour(t *testing.T) {
	f3 := requestLevel(t).Fig3()
	if f3.Summary.Collections == 0 {
		t.Fatal("no collections")
	}
	if f3.Summary.Compactions != 0 {
		t.Fatal("tuned system compacted")
	}
	if f3.Summary.PercentOfRuntime > 2.5 {
		t.Fatalf("GC share %.2f%% too high for a tuned system", f3.Summary.PercentOfRuntime)
	}
	if f3.Summary.MarkShare < 0.6 {
		t.Fatalf("mark share %.2f; the paper has mark dominating", f3.Summary.MarkShare)
	}
	if !strings.Contains(f3.String(), "Figure 3") {
		t.Fatal("missing rendering")
	}
}

func TestFig4ProfileBreakdown(t *testing.T) {
	f4 := requestLevel(t).Fig4()
	if f4.WASOverWebPlusDB < 1.4 || f4.WASOverWebPlusDB > 2.8 {
		t.Fatalf("WAS/(web+db2) = %.2f", f4.WASOverWebPlusDB)
	}
	if f4.Report.HottestOverallShare > 0.015 {
		t.Fatalf("hottest method %.3f of CPU; profile not flat", f4.Report.HottestOverallShare)
	}
	if f4.Report.MethodsFor50Pct < 10 {
		t.Fatalf("only %d methods for 50%%: too concentrated", f4.Report.MethodsFor50Pct)
	}
	if !strings.Contains(f4.String(), "jas2004") {
		t.Fatal("missing rendering")
	}
}

func TestFig5CPI(t *testing.T) {
	f5, err := detailRun(t).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if f5.MeanCPI < 2 || f5.MeanCPI > 5 {
		t.Fatalf("loaded CPI = %.2f", f5.MeanCPI)
	}
	if f5.IdleCPI < 0.4 || f5.IdleCPI > 1.0 {
		t.Fatalf("idle CPI = %.2f", f5.IdleCPI)
	}
	if f5.IdleCPI >= f5.MeanCPI {
		t.Fatal("idle CPI not below loaded CPI")
	}
	if f5.MeanSpec < 1.8 || f5.MeanSpec > 3.0 {
		t.Fatalf("speculation rate = %.2f", f5.MeanSpec)
	}
	if f5.CPI.Len() == 0 || f5.CPI.Len() != f5.SpecRate.Len() {
		t.Fatal("series lengths wrong")
	}
	if !strings.Contains(f5.String(), "Figure 5") {
		t.Fatal("missing rendering")
	}
}

func TestFig6Branch(t *testing.T) {
	f6, err := detailRun(t).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.MeanCondMiss < 0.02 || f6.MeanCondMiss > 0.15 {
		t.Fatalf("conditional misprediction = %.3f", f6.MeanCondMiss)
	}
	if f6.MeanTargetMiss <= 0 || f6.MeanTargetMiss > 0.25 {
		t.Fatalf("target misprediction = %.3f", f6.MeanTargetMiss)
	}
	// GC claims.
	if f6.BranchRateGC <= f6.BranchRateQuiet {
		t.Fatal("GC windows should have more branches")
	}
	if f6.CondMissGC >= f6.CondMissQuiet {
		t.Fatal("GC windows should mispredict less")
	}
	if !strings.Contains(f6.String(), "Figure 6") {
		t.Fatal("missing rendering")
	}
}

func TestFig7Translation(t *testing.T) {
	f7, err := detailRun(t).Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.InstrBetweenDERAT < 100 {
		t.Fatalf("DERAT misses too frequent: one per %.0f instructions", f7.InstrBetweenDERAT)
	}
	if f7.TLBSatisfiesDERAT < 0.4 || f7.TLBSatisfiesDERAT > 0.95 {
		t.Fatalf("TLB covers %.2f of DERAT misses", f7.TLBSatisfiesDERAT)
	}
	if f7.MeanDERAT <= f7.MeanDTLB || f7.MeanIERAT <= f7.MeanITLB {
		t.Fatal("ERAT misses must dominate TLB misses")
	}
	if f7.DTLBQuietOverGC < 5 {
		t.Fatalf("GC should see far fewer TLB misses; ratio %.1f", f7.DTLBQuietOverGC)
	}
	if sm, err := f7.Smoothed(f7.DERATPerInst, 20); err != nil || len(sm) != 20 {
		t.Fatalf("bezier smoothing failed: %v", err)
	}
	if !strings.Contains(f7.String(), "Figure 7") {
		t.Fatal("missing rendering")
	}
}

func TestFig8L1D(t *testing.T) {
	f8, err := detailRun(t).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if f8.MeanStoreMiss <= f8.MeanLoadMiss {
		t.Fatal("stores must miss more often than loads")
	}
	if f8.OverallMiss < 0.06 || f8.OverallMiss > 0.25 {
		t.Fatalf("overall L1D miss = %.3f", f8.OverallMiss)
	}
	if f8.StoreMissGC >= f8.StoreMissQuiet {
		t.Fatal("store misses should drop during GC")
	}
	if !strings.Contains(f8.String(), "Figure 8") {
		t.Fatal("missing rendering")
	}
}

func TestFig9Sources(t *testing.T) {
	f9, err := detailRun(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range f9.Share {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("source shares sum to %.3f", sum)
	}
	if l2 := l2share(*&f9); l2 < 0.5 {
		t.Fatalf("L2 share %.2f; should dominate", l2)
	}
	if f9.ModifiedShare > 0.08 {
		t.Fatalf("modified cross-chip share %.3f; paper has very little", f9.ModifiedShare)
	}
	if !strings.Contains(f9.String(), "Figure 9") {
		t.Fatal("missing rendering")
	}
}

func TestLockingTable(t *testing.T) {
	lk, err := detailRun(t).Locking()
	if err != nil {
		t.Fatal(err)
	}
	if lk.InstrPerLarx < 300 || lk.InstrPerLarx > 1000 {
		t.Fatalf("instructions per LARX = %.0f", lk.InstrPerLarx)
	}
	if lk.SyncSRQShareUser >= lk.SyncSRQShareKernel {
		t.Fatal("kernel SYNC share must exceed user share")
	}
	if lk.SyncSRQShareUser > 0.02 {
		t.Fatalf("user SYNC share = %.3f; paper <1%%", lk.SyncSRQShareUser)
	}
	if !strings.Contains(lk.String(), "SYNC") {
		t.Fatal("missing rendering")
	}
}

func TestFig10Correlations(t *testing.T) {
	f10, err := detailRun(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Correlations) != len(fig10Events) {
		t.Fatalf("bars = %d, want %d", len(f10.Correlations), len(fig10Events))
	}
	for _, c := range f10.Correlations {
		if c.R < -1 || c.R > 1 {
			t.Fatalf("correlation out of range: %+v", c)
		}
	}
	if r, ok := f10.Corr("DTLB Miss"); !ok || r < 0 {
		t.Fatalf("DTLB correlation = %.2f, want positive", r)
	}
	if _, ok := f10.Corr("nope"); ok {
		t.Fatal("bogus label resolved")
	}
	// The text's specific claims.
	if f10.SpecVsL1 > 0.5 {
		t.Fatalf("speculation vs L1 = %.2f; paper found it weak", f10.SpecVsL1)
	}
	if f10.TargetMissVsICacheMiss < 0.1 {
		t.Fatalf("target-vs-icache = %.2f; paper found it strong", f10.TargetMissVsICacheMiss)
	}
	if f10.DeepIFetch < 0.1 {
		t.Fatalf("deep I-fetch corr = %.2f, want positive", f10.DeepIFetch)
	}
	if !strings.Contains(f10.String(), "Figure 10") {
		t.Fatal("missing rendering")
	}
}

func TestIdleCPI(t *testing.T) {
	cpi := IdleCPI(testCfg())
	if cpi < 0.4 || cpi > 1.0 {
		t.Fatalf("idle CPI = %.2f, want ~0.7", cpi)
	}
}

func TestReportMarkdown(t *testing.T) {
	rep := &Report{}
	rep.add("E1", "Fig 2", "metric", "x", "y", true)
	rep.add("E2", "Fig 3", "metric2", "a", "b", false)
	md := rep.Markdown()
	if !strings.Contains(md, "| E1 |") || !strings.Contains(md, "| NO |") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
	str := rep.String()
	if !strings.Contains(str, "1/2 paper observations hold") {
		t.Fatalf("summary malformed:\n%s", str)
	}
}

func TestRequestLevelAudit(t *testing.T) {
	audits, pass := requestLevel(t).Audit()
	if !pass {
		t.Fatal("quick run failed its audit")
	}
	if len(audits) == 0 {
		t.Fatal("no class audits")
	}
	for _, a := range audits {
		if a.Count == 0 || a.P90MS <= 0 {
			t.Fatalf("empty audit row: %+v", a)
		}
	}
}

func TestReportHelpers(t *testing.T) {
	if !within(1, 0, 2) || within(3, 0, 2) {
		t.Fatal("within wrong")
	}
	f9, err := detailRun(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if l3share(f9) <= 0 || l3share(f9) >= 1 {
		t.Fatalf("l3share = %v", l3share(f9))
	}
	if safeDiv(1, 0) != 0 || safeDiv(6, 3) != 2 {
		t.Fatal("safeDiv wrong")
	}
}
