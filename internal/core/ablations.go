package core

import (
	"fmt"
	"strings"

	"jasworkload/internal/hpm"
	"jasworkload/internal/mem"
	"jasworkload/internal/power4"
	"jasworkload/internal/sim"
)

// The paper closes with optimization opportunities it could not measure on
// fixed silicon: a larger L2, a lower-latency L3 (Section 4.2.3), JIT code
// in large pages (Section 4.2.2), and — as future work (Section 7) — the
// effect of scaling the number of processor cores. This file implements
// those studies as what-if simulations over the same workload.

// WhatIfPoint is one configuration of a what-if sweep.
type WhatIfPoint struct {
	Label string
	CPI   float64
	Extra float64 // study-specific secondary metric
}

// whatIfCPI builds a SUT with the mutator applied and measures steady CPI
// (plus the L2 share of L1 misses as the secondary metric).
func whatIfCPI(cfg RunConfig, mutate func(*sim.SUTConfig)) (float64, float64, error) {
	noteSim("variant")
	scfg := sim.DefaultSUTConfig(cfg.IR)
	scfg.Seed = cfg.Seed
	scfg.HeapBytes = cfg.HeapBytes
	scfg.HeapPageSize = cfg.HeapPageSize
	if cfg.Scale == ScaleQuick {
		scfg.Profile.NumMethods = 850
		scfg.Profile.WarmSet = 60
	}
	if mutate != nil {
		mutate(&scfg)
	}
	sut, err := sim.BuildSUT(scfg)
	if err != nil {
		return 0, 0, err
	}
	eng, err := cfg.newEngine(sut, cfg.detail())
	if err != nil {
		return 0, 0, err
	}
	if _, err := eng.Run(); err != nil {
		return 0, 0, err
	}
	var cpi float64
	n := 0
	for _, w := range eng.Windows()[steadyStart(cfg):] {
		if w.CPI > 0 {
			cpi += w.CPI
			n++
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("core: no CPI windows measured")
	}
	ctr := sut.AggregateCounters()
	l2share := ctr.Ratio(power4.EvDataFromL2, power4.EvL1DLoadMiss)
	return cpi / float64(n), l2share, nil
}

// L2SizeStudy sweeps the per-chip L2 capacity; the paper: "Increasing the
// size of the L2 cache can improve performance". Extra is the L2 share of
// L1 misses. Sweep points are independent simulations and run concurrently.
func L2SizeStudy(cfg RunConfig, sizesKB []int) ([]WhatIfPoint, error) {
	if len(sizesKB) == 0 {
		sizesKB = []int{768, 1536, 3072, 6144}
	}
	out := make([]WhatIfPoint, len(sizesKB))
	g := NewGroup(Parallelism())
	for i, kb := range sizesKB {
		g.Go(func() error {
			cpi, l2, err := whatIfCPI(cfg, func(sc *sim.SUTConfig) {
				sc.Topology.L2.SizeBytes = uint64(kb) << 10
			})
			if err != nil {
				return fmt.Errorf("L2 %d KB: %w", kb, err)
			}
			out[i] = WhatIfPoint{Label: fmt.Sprintf("L2=%dKB", kb), CPI: cpi, Extra: l2}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// L3LatencyStudy sweeps the L3 access latency; the paper: "a lower latency
// to L3 could also deliver sizeable performance benefits". Extra repeats
// the latency for rendering. Sweep points run concurrently.
func L3LatencyStudy(cfg RunConfig, latencies []float64) ([]WhatIfPoint, error) {
	if len(latencies) == 0 {
		latencies = []float64{110, 70, 40, 25}
	}
	out := make([]WhatIfPoint, len(latencies))
	g := NewGroup(Parallelism())
	for i, lat := range latencies {
		g.Go(func() error {
			cpi, _, err := whatIfCPI(cfg, func(sc *sim.SUTConfig) {
				sc.Core.Penalties.L3Latency = lat
			})
			if err != nil {
				return fmt.Errorf("L3 latency %.0f: %w", lat, err)
			}
			out[i] = WhatIfPoint{Label: fmt.Sprintf("L3=%.0fcyc", lat), CPI: cpi, Extra: lat}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// CodeLargePagesStudy compares 4 KB versus 16 MB pages for the JIT code
// cache — the further opportunity Section 4.2.2 calls out ("utilizing
// large pages for JIT compiled code and other components of the execution
// stack will lead to additional performance improvements"). Extra is ITLB
// misses per instruction.
func CodeLargePagesStudy(cfg RunConfig) ([]WhatIfPoint, error) {
	pageSizes := []mem.PageSize{mem.Page4K, mem.Page16M}
	out := make([]WhatIfPoint, len(pageSizes))
	g := NewGroup(Parallelism())
	for i, ps := range pageSizes {
		g.Go(func() error {
			d, err := runCodePageVariant(cfg, ps)
			if err != nil {
				return fmt.Errorf("code pages %s: %w", ps, err)
			}
			itlb, err := d.steadyRatio("translation", power4.EvITLBMiss, power4.EvInstCompleted)
			if err != nil {
				return err
			}
			var cpi float64
			n := 0
			for _, w := range d.Engine.Windows()[steadyStart(cfg):] {
				if w.CPI > 0 {
					cpi += w.CPI
					n++
				}
			}
			if n == 0 {
				return fmt.Errorf("code pages %s: no CPI windows measured", ps)
			}
			out[i] = WhatIfPoint{
				Label: fmt.Sprintf("code pages=%s", ps),
				CPI:   cpi / float64(n),
				Extra: itlb,
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// runCodePageVariant executes one detail run with the JIT code cache on the
// given page size.
func runCodePageVariant(cfg RunConfig, ps mem.PageSize) (*DetailRun, error) {
	noteSim("variant")
	scfg := sim.DefaultSUTConfig(cfg.IR)
	scfg.Seed = cfg.Seed
	scfg.HeapBytes = cfg.HeapBytes
	scfg.HeapPageSize = cfg.HeapPageSize
	scfg.CodePageSize = ps
	if cfg.Scale == ScaleQuick {
		scfg.Profile.NumMethods = 850
		scfg.Profile.WarmSet = 60
	}
	sut, err := sim.BuildSUT(scfg)
	if err != nil {
		return nil, err
	}
	eng, err := cfg.newEngine(sut, cfg.detail())
	if err != nil {
		return nil, err
	}
	m, err := newStdMonitor(eng, "translation")
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return &DetailRun{Cfg: cfg, SUT: sut, Engine: eng, Monitors: m}, nil
}

// CoreScalingStudy is the Section 7 future-work experiment: scale the
// number of live chips (2 cores each) and measure sustainable throughput
// and CPI at a load proportional to the core count. Extra is the JOPS
// achieved.
func CoreScalingStudy(cfg RunConfig, chipCounts []int) ([]WhatIfPoint, error) {
	if len(chipCounts) == 0 {
		chipCounts = []int{1, 2, 4}
	}
	base := cfg.IR
	out := make([]WhatIfPoint, len(chipCounts))
	g := NewGroup(Parallelism())
	for i, chips := range chipCounts {
		g.Go(func() error {
			noteSim("variant")
			scfg := sim.DefaultSUTConfig(base * chips / 2)
			scfg.Seed = cfg.Seed
			scfg.HeapBytes = cfg.HeapBytes
			scfg.HeapPageSize = cfg.HeapPageSize
			scfg.Topology.Chips = chips
			scfg.Topology.ChipsPerMCM = 1
			if cfg.Scale == ScaleQuick {
				scfg.Profile.NumMethods = 850
				scfg.Profile.WarmSet = 60
			}
			sut, err := sim.BuildSUT(scfg)
			if err != nil {
				return err
			}
			runCfg := cfg
			runCfg.IR = scfg.IR
			// The scaling study re-rates the run: a recorded trace or a
			// spec calibrated to the config's IR would misrepresent the
			// scaled offered load, so the study always drives the legacy
			// steady loop at each IR point.
			runCfg.Arrival = ""
			eng, err := runCfg.newEngine(sut, cfg.detail())
			if err != nil {
				return err
			}
			if _, err := eng.Run(); err != nil {
				return err
			}
			var cpi float64
			n := 0
			for _, w := range eng.Windows()[steadyStart(cfg):] {
				if w.CPI > 0 {
					cpi += w.CPI
					n++
				}
			}
			if n == 0 {
				return fmt.Errorf("core scaling: no windows at %d chips", chips)
			}
			out[i] = WhatIfPoint{
				Label: fmt.Sprintf("%d cores (IR %d)", chips*2, scfg.IR),
				CPI:   cpi / float64(n),
				Extra: eng.Tracker().JOPS(),
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// newStdMonitor attaches the named standard groups to an engine.
func newStdMonitor(eng *sim.Engine, groups ...string) (map[string]*hpm.Monitor, error) {
	mons := map[string]*hpm.Monitor{}
	for _, name := range groups {
		g, ok := hpm.GroupByName(hpm.StandardGroups(), name)
		if !ok {
			return nil, fmt.Errorf("core: unknown HPM group %q", name)
		}
		m, err := hpm.NewMonitor(eng.Source(), g, 1000)
		if err != nil {
			return nil, err
		}
		eng.AttachMonitor(m)
		mons[name] = m
	}
	return mons, nil
}

// FormatWhatIf renders a sweep as a small table.
func FormatWhatIf(title, extraName string, pts []WhatIfPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, p := range pts {
		fmt.Fprintf(&b, "  %-18s CPI=%.2f  %s=%.4g\n", p.Label, p.CPI, extraName, p.Extra)
	}
	return b.String()
}
