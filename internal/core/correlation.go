package core

import (
	"fmt"
	"sort"
	"strings"

	"jasworkload/internal/power4"
	"jasworkload/internal/stats"
)

// EventCorr is one bar of Figure 10: an event's Pearson correlation with
// the per-window CPI of its own counter group.
type EventCorr struct {
	Label string
	Group string
	Event power4.Event
	R     float64
}

// Fig10Result is the CPI statistical-correlation figure plus the specific
// cross-correlations the paper quotes in the text.
type Fig10Result struct {
	Correlations []EventCorr
	// SpecVsL1 is corr(speculation rate, L1D load misses) — the paper
	// measures only 0.1, showing wrong-path fetch does not pollute the L1D.
	SpecVsL1 float64
	// BranchesVsTargetMiss: no correlation (paper: -0.07).
	BranchesVsTargetMiss float64
	// CondMissVsBranches: some correlation (paper: 0.43).
	CondMissVsBranches float64
	// TargetMissVsICacheMiss: strong (paper Section 4.2.1: "a strong
	// correlation between target address mispredictions and instruction
	// cache misses").
	TargetMissVsICacheMiss float64
	// DeepIFetch is corr(CPI, instructions fetched from L2+L3+memory):
	// "when more instructions are fetched from deeper levels of memory
	// hierarchy (L2, L3, memory), the processor is more likely to stall,
	// resulting in a higher CPI and positive correlation".
	DeepIFetch float64
}

// fig10Events lists the Figure 10 bars: display label, group, event.
var fig10Events = []struct {
	label string
	group string
	ev    power4.Event
}{
	{"L1D Load Miss", "cpi", power4.EvL1DLoadMiss},
	{"L1D Store Miss", "cpi", power4.EvL1DStoreMiss},
	{"L1D Prefetches", "prefetch", power4.EvL1DPrefetch},
	{"L2 Prefetches", "prefetch", power4.EvL2Prefetch},
	{"D$ Prefetch Stream Alloc.", "prefetch", power4.EvPrefStreamAlloc},
	{"Speculation Rate", "cpi", power4.EvInstDispatched},
	{"Cyc w/ Instr. Comp.", "cpi", power4.EvCycWithCompletion},
	{"Instr. from L1 I$", "ifetch", power4.EvIFetchL1},
	{"Instr. from L2", "ifetch", power4.EvIFetchL2},
	{"Instr. from L3", "ifetch", power4.EvIFetchL3},
	{"Instr. from Memory", "ifetch", power4.EvIFetchMem},
	{"SYNC in SRQ", "sync", power4.EvSyncSRQCycles},
	{"DERAT Miss", "translation", power4.EvDERATMiss},
	{"IERAT Miss", "translation", power4.EvIERATMiss},
	{"DTLB Miss", "translation", power4.EvDTLBMiss},
	{"ITLB Miss", "translation", power4.EvITLBMiss},
	{"Cond. Branch Mispred.", "branch", power4.EvBrCondMispred},
	{"Branch Target Mispred.", "branch", power4.EvBrTargetMispred},
	{"Branches", "branch", power4.EvBrCond},
}

// Fig10 computes the correlation figure from a detail run that collected
// all standard groups. Each event's per-window counts are correlated with
// the CPI derived from the same group's samples — the method the paper
// uses, since cycles and completed instructions are in every group while
// events from different groups cannot be co-sampled.
// The result is computed once and cached on the run.
func (d *DetailRun) Fig10() (Fig10Result, error) {
	return d.fig10.do(d.computeFig10)
}

func (d *DetailRun) computeFig10() (Fig10Result, error) {
	var res Fig10Result
	cpiOf := map[string][]float64{}
	for name, m := range d.Monitors {
		cpi, err := m.CPISeries()
		if err != nil {
			return res, err
		}
		cpiOf[name] = cpi.Slice(steadyStart(d.Cfg), cpi.Len()).Values
	}
	for _, fe := range fig10Events {
		s, err := d.steadySeries(fe.group, fe.ev)
		if err != nil {
			return res, err
		}
		values := s.Values
		if fe.label == "Speculation Rate" {
			inst, err := d.steadySeries(fe.group, power4.EvInstCompleted)
			if err != nil {
				return res, err
			}
			ratio, err := stats.RatioSeries("spec", s, inst)
			if err != nil {
				return res, err
			}
			values = ratio.Values
		}
		r, err := stats.Correlation(values, cpiOf[fe.group])
		if err != nil {
			return res, err
		}
		res.Correlations = append(res.Correlations, EventCorr{Label: fe.label, Group: fe.group, Event: fe.ev, R: r})
	}

	// Cross-correlations quoted in the text (within-group pairs).
	spec, err := d.specSeries()
	if err != nil {
		return res, err
	}
	l1m, err := d.steadySeries("cpi", power4.EvL1DLoadMiss)
	if err != nil {
		return res, err
	}
	res.SpecVsL1, _ = stats.Correlation(spec, l1m.Values)

	br, err := d.steadySeries("branch", power4.EvBrCond)
	if err != nil {
		return res, err
	}
	tm, err := d.steadySeries("branch", power4.EvBrTargetMispred)
	if err != nil {
		return res, err
	}
	cm, err := d.steadySeries("branch", power4.EvBrCondMispred)
	if err != nil {
		return res, err
	}
	res.BranchesVsTargetMiss, _ = stats.Correlation(br.Values, tm.Values)
	res.CondMissVsBranches, _ = stats.Correlation(cm.Values, br.Values)

	im, err := d.steadySeries("ifetch", power4.EvL1IMiss)
	if err != nil {
		return res, err
	}
	// Deep I-fetch: all fills from beyond the L1 I-cache.
	il2, err := d.steadySeries("ifetch", power4.EvIFetchL2)
	if err != nil {
		return res, err
	}
	il3, err := d.steadySeries("ifetch", power4.EvIFetchL3)
	if err != nil {
		return res, err
	}
	imem, err := d.steadySeries("ifetch", power4.EvIFetchMem)
	if err != nil {
		return res, err
	}
	deep := make([]float64, il2.Len())
	for i := range deep {
		// Weight by fill latency: what matters for stalls is where the
		// instructions came from, not just how many missed.
		deep[i] = 12*il2.At(i) + 80*il3.At(i) + 160*imem.At(i)
	}
	res.DeepIFetch, _ = stats.Correlation(deep, cpiOf["ifetch"])
	// Target mispredictions vs I-cache misses: both sampled per window but
	// in different groups; the comparison is across windows of the same
	// run, as in the paper's vertical-profiling approach. Rates (per
	// instruction) are used so the cross-group comparison is not
	// confounded by per-window instruction volume.
	brInst, err := d.steadySeries("branch", power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	ifInst, err := d.steadySeries("ifetch", power4.EvInstCompleted)
	if err != nil {
		return res, err
	}
	tmRate, err := stats.RatioSeries("tm/inst", tm, brInst)
	if err != nil {
		return res, err
	}
	imRate, err := stats.RatioSeries("im/inst", im, ifInst)
	if err != nil {
		return res, err
	}
	res.TargetMissVsICacheMiss, _ = stats.Correlation(tmRate.Values, imRate.Values)
	return res, nil
}

func (d *DetailRun) specSeries() ([]float64, error) {
	disp, err := d.steadySeries("cpi", power4.EvInstDispatched)
	if err != nil {
		return nil, err
	}
	inst, err := d.steadySeries("cpi", power4.EvInstCompleted)
	if err != nil {
		return nil, err
	}
	r, err := stats.RatioSeries("spec", disp, inst)
	if err != nil {
		return nil, err
	}
	return r.Values, nil
}

// Corr returns the correlation bar for the given label, if present.
func (f Fig10Result) Corr(label string) (float64, bool) {
	for _, c := range f.Correlations {
		if c.Label == label {
			return c.R, true
		}
	}
	return 0, false
}

// String renders the figure as a sorted bar list.
func (f Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: CPI Statistical Correlation (r)\n")
	sorted := append([]EventCorr(nil), f.Correlations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].R > sorted[j].R })
	for _, c := range sorted {
		bar := strings.Repeat("#", int((c.R+1)*20))
		fmt.Fprintf(&b, "  %+5.2f %-26s %s\n", c.R, c.Label, bar)
	}
	fmt.Fprintf(&b, "corr(speculation, L1D miss)   = %+.2f (paper: 0.1)\n", f.SpecVsL1)
	fmt.Fprintf(&b, "corr(branches, target miss)   = %+.2f (paper: -0.07)\n", f.BranchesVsTargetMiss)
	fmt.Fprintf(&b, "corr(cond miss, branches)     = %+.2f (paper: 0.43)\n", f.CondMissVsBranches)
	fmt.Fprintf(&b, "corr(target miss, L1I miss)   = %+.2f (paper: strong)\n", f.TargetMissVsICacheMiss)
	return b.String()
}
