package core

import (
	"context"
	"fmt"
	"strings"

	"jasworkload/internal/driver"
	"jasworkload/internal/jvm"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
	"jasworkload/internal/stats"
	"jasworkload/internal/tools"
)

// RequestLevelRun is one request-level (no instruction detail) benchmark
// execution; Figures 2, 3 and 4 are all memoized views of it. A run
// hydrated from the persistent store has nil SUT/Engine and carries a
// snapshot instead: consumers outside this package must read windows,
// scalars, and audit rows through the accessors below, which serve live
// and hydrated runs identically.
type RequestLevelRun struct {
	Cfg    RunConfig
	SUT    *sim.SUT
	Engine *sim.Engine

	// snap replaces the engine-backed scalars when the run was hydrated
	// from the persistent store rather than simulated in-process.
	snap *rlSnapshot

	fig2 memo[Fig2Result]
	fig3 memo[Fig3Result]
	fig4 memo[Fig4Result]
}

// rlSnapshot is the persisted slice of engine state a hydrated
// request-level run serves through the accessors.
type rlSnapshot struct {
	windows   []sim.WindowStats
	jops      float64
	meanUtil  float64
	segTotals [server.NumSegments]uint64
	auditRows []driver.ClassAudit
	auditPass bool
}

// Windows returns the run's per-window statistics.
func (r *RequestLevelRun) Windows() []sim.WindowStats {
	if r.Engine != nil {
		return r.Engine.Windows()
	}
	return r.snap.windows
}

// JOPS returns the run's final throughput metric.
func (r *RequestLevelRun) JOPS() float64 {
	if r.Engine != nil {
		return r.Engine.Tracker().JOPS()
	}
	return r.snap.jops
}

// MeanUtilization returns the run's mean CPU utilization.
func (r *RequestLevelRun) MeanUtilization() float64 {
	if r.Engine != nil {
		return r.Engine.MeanUtilization()
	}
	return r.snap.meanUtil
}

// SegmentTotals returns the run's per-segment cycle totals.
func (r *RequestLevelRun) SegmentTotals() [server.NumSegments]uint64 {
	if r.Engine != nil {
		return r.Engine.SegmentTotals()
	}
	return r.snap.segTotals
}

// HeapEvents returns the run's GC event log. A hydrated run serves it from
// the Figure 3 view, which retains the full event list.
func (r *RequestLevelRun) HeapEvents() []jvm.GCEvent {
	if r.SUT != nil {
		return r.SUT.Heap.Events()
	}
	return r.Fig3().Events
}

// RunRequestLevel executes the workload at request-level fidelity. Results
// are cached in the run store: repeated calls with an equivalent config
// return the same completed run without re-simulating.
func RunRequestLevel(cfg RunConfig) (*RequestLevelRun, error) {
	return ForConfig(cfg).RequestLevel()
}

// runRequestLevel executes the simulation (cache miss path). winFn, when
// non-nil, observes every completed window (streaming consumers); ctx
// aborts the run mid-window.
func runRequestLevel(ctx context.Context, cfg RunConfig, winFn sim.WindowFunc) (*RequestLevelRun, error) {
	sut, err := cfg.buildSUT()
	if err != nil {
		return nil, err
	}
	eng, err := cfg.newEngine(sut, 0)
	if err != nil {
		return nil, err
	}
	eng.SetWindowFunc(winFn)
	if _, err := eng.RunContext(ctx); err != nil {
		return nil, err
	}
	if !eng.Finished() {
		return nil, fmt.Errorf("core: request-level engine did not finish")
	}
	return &RequestLevelRun{Cfg: cfg, SUT: sut, Engine: eng}, nil
}

// ---------------------------------------------------------------- Figure 2

// Fig2Result is the benchmark-throughput figure: one series per request
// class of the deployed workload pack, bucketed over the run.
type Fig2Result struct {
	BucketSeconds int
	ClassNames    []string
	Series        []*stats.Series
	// SteadyMean/CV summarize the post-ramp behaviour the paper calls out:
	// "the transaction rate ... stabilizes relatively quickly, and remains
	// fairly constant throughout execution".
	SteadyMean []float64
	SteadyCV   []float64
	JOPS       float64
	AuditPass  bool
}

// Fig2 regenerates the throughput figure from a request-level run. The
// result is computed once and cached on the run.
func (r *RequestLevelRun) Fig2() Fig2Result {
	f, _ := r.fig2.do(func() (Fig2Result, error) { return r.computeFig2(), nil })
	return f
}

func (r *RequestLevelRun) computeFig2() Fig2Result {
	const bucketSec = 10
	app := r.SUT.Server.App()
	n := app.NumClasses()
	res := Fig2Result{
		BucketSeconds: bucketSec,
		ClassNames:    app.ClassNames(),
		Series:        make([]*stats.Series, n),
		SteadyMean:    make([]float64, n),
		SteadyCV:      make([]float64, n),
	}
	ws := r.Engine.Windows()
	for rt := 0; rt < n; rt++ {
		res.Series[rt] = stats.NewSeries(res.ClassNames[rt]+" /s", bucketSec*1000)
	}
	for start := 0; start < len(ws); start += bucketSec {
		end := start + bucketSec
		if end > len(ws) {
			break
		}
		for rt := 0; rt < n; rt++ {
			var cnt int
			for _, w := range ws[start:end] {
				cnt += w.Completions[rt]
			}
			res.Series[rt].Append(float64(cnt) / bucketSec)
		}
	}
	steady := steadyStart(r.Cfg) / bucketSec
	for rt := 0; rt < n; rt++ {
		if steady < res.Series[rt].Len() {
			s := res.Series[rt].Slice(steady, res.Series[rt].Len())
			res.SteadyMean[rt] = stats.Mean(s.Values)
			res.SteadyCV[rt] = stats.CoefficientOfVariation(s.Values)
		}
	}
	res.JOPS = r.Engine.Tracker().JOPS()
	_, res.AuditPass = r.Engine.Tracker().Audit()
	return res
}

// String renders the figure as ASCII series plus the summary.
func (f Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: Benchmark Throughput\n")
	for rt := range f.Series {
		if f.Series[rt] != nil && f.Series[rt].Len() > 1 {
			b.WriteString(f.Series[rt].ASCIIPlot(60, 6))
		}
		fmt.Fprintf(&b, "  steady %-14s %6.2f req/s (CV %.3f)\n",
			f.ClassNames[rt], f.SteadyMean[rt], f.SteadyCV[rt])
	}
	fmt.Fprintf(&b, "JOPS = %.1f, audit pass = %v\n", f.JOPS, f.AuditPass)
	return b.String()
}

// ---------------------------------------------------------------- Figure 3

// Fig3Result is the GC figure plus its companion table.
type Fig3Result struct {
	Events  []jvm.GCEvent
	Summary jvm.GCSummary
}

// Fig3 regenerates the garbage-collection statistics. The result is
// computed once and cached on the run.
func (r *RequestLevelRun) Fig3() Fig3Result {
	f, _ := r.fig3.do(func() (Fig3Result, error) {
		dur, _ := r.Cfg.durations()
		return Fig3Result{
			Events:  r.SUT.Heap.Events(),
			Summary: jvm.Summarize(r.SUT.Heap.Events(), dur),
		}, nil
	})
	return f
}

// String renders the verbosegc log tail and the table.
func (f Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: Garbage Collection Statistics\n")
	tail := f.Events
	if len(tail) > 8 {
		tail = tail[len(tail)-8:]
	}
	b.WriteString(jvm.FormatVerboseGC(tail))
	b.WriteString(f.Summary.String())
	return b.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4Result is the profile-breakdown figure.
type Fig4Result struct {
	Report tools.TProfReport
	// WASOverWebPlusDB is the capacity-planning headline: WebSphere
	// consumes about twice the web server and DB2 combined.
	WASOverWebPlusDB float64
	// JITedShareOfWAS: about half the WAS process runtime is JITed code.
	JITedShareOfWAS float64
	// Jas2004Share: ~2% of CPU cycles execute benchmark code itself.
	Jas2004Share float64
}

// Fig4 regenerates the profile breakdown. The result is computed once and
// cached on the run.
func (r *RequestLevelRun) Fig4() Fig4Result {
	f, _ := r.fig4.do(func() (Fig4Result, error) { return r.computeFig4(), nil })
	return f
}

func (r *RequestLevelRun) computeFig4() Fig4Result {
	rep := tools.TProf(r.Engine.SegmentTotals(), r.SUT.JIT.Methods(), 10)
	was := rep.SegmentShare[server.SegWASJit] + rep.SegmentShare[server.SegWASNative]
	other := rep.SegmentShare[server.SegWebServer] + rep.SegmentShare[server.SegDB2]
	res := Fig4Result{Report: rep}
	if other > 0 {
		res.WASOverWebPlusDB = was / other
	}
	if was > 0 {
		res.JITedShareOfWAS = rep.SegmentShare[server.SegWASJit] / was
	}
	// The benchmark code's share of total CPU: its share of JITed time
	// scaled by the JITed segment share.
	st := jvm.AnalyzeProfile(r.SUT.JIT.Methods())
	res.Jas2004Share = st.ComponentShare[jvm.CompJas2004] * rep.SegmentShare[server.SegWASJit]
	return res
}

// String renders the figure.
func (f Fig4Result) String() string {
	var b strings.Builder
	b.WriteString(f.Report.String())
	fmt.Fprintf(&b, "WAS / (web+DB2) cycle ratio: %.2f (paper: ~2)\n", f.WASOverWebPlusDB)
	fmt.Fprintf(&b, "JITed share of WAS process:  %.2f (paper: ~0.5)\n", f.JITedShareOfWAS)
	fmt.Fprintf(&b, "jas2004 code share of CPU:   %.3f (paper: ~0.02)\n", f.Jas2004Share)
	return b.String()
}

// Audit returns the run-rule audit for the underlying run.
func (r *RequestLevelRun) Audit() ([]driver.ClassAudit, bool) {
	if r.Engine != nil {
		return r.Engine.Tracker().Audit()
	}
	return r.snap.auditRows, r.snap.auditPass
}
