package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestGroupShortCircuitsAfterFailure pins the batch short-circuit: once a
// task has failed, tasks that have not yet been admitted by the semaphore
// are skipped instead of launched, so a failed phase (or a cancelled run)
// does not burn a full simulation per queued task.
func TestGroupShortCircuitsAfterFailure(t *testing.T) {
	g := NewGroup(2)
	boom := errors.New("boom")
	var ran atomic.Int32
	g.Go(func() error { ran.Add(1); return boom })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	for i := 0; i < 8; i++ {
		g.Go(func() error { ran.Add(1); return nil })
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("second Wait = %v, want the original error kept", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d tasks ran after the failure, want only the failing one", got)
	}
}

// TestGroupRunsAllWithoutFailure guards the other side: absent errors,
// every scheduled task executes.
func TestGroupRunsAllWithoutFailure(t *testing.T) {
	g := NewGroup(3)
	var ran atomic.Int32
	for i := 0; i < 16; i++ {
		g.Go(func() error { ran.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("tasks ran = %d, want 16", got)
	}
}
