package core

import (
	"runtime"
	"sync"

	"jasworkload/internal/power4"
)

// The experiment scheduler: a bounded worker pool that runs independent
// simulations concurrently. Every simulation owns its seeded RNGs and its
// own SUT, so results are bit-identical regardless of GOMAXPROCS or the
// configured parallelism — the scheduler only changes wall-clock time, never
// outcomes. TestBuildReportDeterministic is the guard for that claim.

var (
	parMu       sync.Mutex
	maxParallel = runtime.NumCPU()
)

// Parallelism returns the maximum number of simulations run concurrently.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return maxParallel
}

// SetParallelism bounds the number of concurrently running simulations and
// returns the previous bound. n < 1 resets to runtime.NumCPU().
func SetParallelism(n int) int {
	parMu.Lock()
	defer parMu.Unlock()
	prev := maxParallel
	if n < 1 {
		n = runtime.NumCPU()
	}
	maxParallel = n
	return prev
}

// pipelined gates the decoupled detail pipeline inside each simulation.
// It is a package knob rather than a RunConfig field on purpose: the
// pipeline is bit-identical to the fused loop, so it must not perturb
// canonical artifact keys (jasd job IDs hash the RunConfig). It composes
// with SetParallelism — that knob bounds simulations run concurrently,
// this one decides how each simulation's detail stream executes
// internally.
var pipelined = true

// Pipelined reports whether detail-mode runs use the decoupled pipeline.
func Pipelined() bool {
	parMu.Lock()
	defer parMu.Unlock()
	return pipelined
}

// SetPipelined enables or disables the decoupled detail pipeline for
// subsequent runs and returns the previous setting. Counters and reports
// are bit-identical either way; false restores the fused loop's
// pre-change cost for reference measurements.
func SetPipelined(enabled bool) bool {
	parMu.Lock()
	defer parMu.Unlock()
	prev := pipelined
	pipelined = enabled
	return prev
}

// sharded selects the core-sharded detail schedule: one goroutine per
// simulated core with a deterministic coherence merge. Like pipelined it
// is a package knob, not a RunConfig field — the shard merge is
// bit-identical to the fused loop, so it must not perturb canonical
// artifact keys or jasd job IDs. When both knobs are on, sharding wins
// (it subsumes the stage overlap); its auto mode collapses to the fused
// loop on 1-CPU hosts, so leaving it enabled is never a pessimization.
var sharded = true

// Sharded reports whether detail-mode runs use the core-sharded group.
func Sharded() bool {
	parMu.Lock()
	defer parMu.Unlock()
	return sharded
}

// SetSharded enables or disables the core-sharded detail schedule for
// subsequent runs and returns the previous setting. Counters and reports
// are bit-identical either way; false falls back to the pipelined or
// fused schedule for reference measurements.
func SetSharded(enabled bool) bool {
	parMu.Lock()
	defer parMu.Unlock()
	prev := sharded
	sharded = enabled
	return prev
}

// DetailShards reports the shard count a detail run started now would
// use: 0 when sharding is disabled or the auto mode collapses to the
// fused loop (no host parallelism), otherwise one worker per simulated
// core up to GOMAXPROCS.
func DetailShards() int {
	if !Sharded() {
		return 0
	}
	tc := power4.DefaultTopologyConfig()
	return power4.AutoShards(tc.Chips * tc.CoresPerChip)
}

// ShardMergeStalls re-exports the process-wide per-shard merge-stall
// counters (see power4.ShardMergeStalls).
func ShardMergeStalls() []uint64 { return power4.ShardMergeStalls() }

// Group runs a set of tasks with bounded concurrency and collects the
// first error (errgroup-style, without the external dependency).
type Group struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGroup creates a pool admitting at most limit concurrent tasks
// (limit < 1 means Parallelism()).
func NewGroup(limit int) *Group {
	if limit < 1 {
		limit = Parallelism()
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go schedules fn; it blocks only when the pool is saturated with waiting
// goroutines (each task parks on the semaphore, so Go itself returns
// immediately). Once any task has failed, tasks that have not yet been
// admitted by the semaphore are skipped instead of launched: a failed
// report phase (or a cancelled run) short-circuits the rest of its batch
// rather than burning a full simulation per queued task.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sem <- struct{}{}
		defer func() { <-g.sem }()
		g.mu.Lock()
		failed := g.err != nil
		g.mu.Unlock()
		if failed {
			return
		}
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every scheduled task finished and returns the first
// error encountered.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
