package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"jasworkload/internal/loadgen"
	"jasworkload/internal/mem"
	"jasworkload/internal/workload"
)

// This file is the sweep grid expander: the paper's what-if methodology
// (heap size, page size, detail sampling, workload mix sweeps) as a first-
// class value. A Sweep is a base configuration plus one axis per swept
// parameter; Expand takes the cartesian product, canonicalizes every grid
// point, folds duplicates onto one cell, and enforces a cell cap. The
// split artifact store then prices the grid at distinct(RequestKey)
// request-level simulations, not cells.

// Axis is one swept parameter: a settable config field name and the values
// it takes. Values use the wire representations of the /v1/runs JobSpec
// ("heap_page" takes "4K"/"16M", "heap_mb" takes megabytes); numbers may
// arrive as any integer/float type (JSON decodes them as float64).
type Axis struct {
	Param  string `json:"param"`
	Values []any  `json:"values"`
}

// Sweep is a cartesian parameter grid over a base configuration.
type Sweep struct {
	Base RunConfig `json:"-"`
	Axes []Axis    `json:"axes"`
}

// Cell is one expanded grid point: a canonical configuration plus the
// human-readable axis assignment that produced it. When several grid
// points canonicalize to the same configuration they fold onto one cell,
// and the survivors' labels land in Aliases.
type Cell struct {
	Index   int       `json:"index"`
	Label   string    `json:"label"`
	Cfg     RunConfig `json:"config"`
	Aliases []string  `json:"aliases,omitempty"`
}

// sweepParam is one settable axis parameter.
type sweepParam struct {
	set func(*RunConfig, any) error
}

// sweepParams maps axis names to setters. The names mirror the JobSpec
// wire fields, so a grid file reads like the submit body it extends.
var sweepParams = map[string]sweepParam{
	"ir": {set: func(c *RunConfig, v any) error {
		n, err := intValue(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("want a positive integer, got %v", v)
		}
		c.IR = int(n)
		return nil
	}},
	"seed": {set: func(c *RunConfig, v any) error {
		n, err := intValue(v)
		if err != nil {
			return fmt.Errorf("want an integer, got %v", v)
		}
		c.Seed = n
		return nil
	}},
	"heap_mb": {set: func(c *RunConfig, v any) error {
		n, err := intValue(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("want positive megabytes, got %v", v)
		}
		c.HeapBytes = uint64(n) << 20
		return nil
	}},
	"heap_page": {set: func(c *RunConfig, v any) error {
		s, _ := v.(string)
		switch s {
		case "4K", "4k":
			c.HeapPageSize = mem.Page4K
		case "16M", "16m":
			c.HeapPageSize = mem.Page16M
		default:
			return fmt.Errorf("want \"4K\" or \"16M\", got %v", v)
		}
		return nil
	}},
	"baseline_cache_mb": {set: func(c *RunConfig, v any) error {
		n, err := intValue(v)
		if err != nil || n < 0 {
			return fmt.Errorf("want megabytes >= 0, got %v", v)
		}
		c.BaselineCacheBytes = uint64(n) << 20
		return nil
	}},
	"duration_ms": {set: func(c *RunConfig, v any) error {
		f, err := floatValue(v)
		if err != nil || f <= 0 {
			return fmt.Errorf("want positive milliseconds, got %v", v)
		}
		c.DurationMS = f
		return nil
	}},
	"ramp_ms": {set: func(c *RunConfig, v any) error {
		f, err := floatValue(v)
		if err != nil || f < 0 {
			return fmt.Errorf("want milliseconds >= 0, got %v", v)
		}
		c.RampMS = f
		return nil
	}},
	"detail_frac": {set: func(c *RunConfig, v any) error {
		f, err := floatValue(v)
		if err != nil || f <= 0 || f > 1 {
			return fmt.Errorf("want a fraction in (0,1], got %v", v)
		}
		c.DetailFrac = f
		return nil
	}},
	"workload": {set: func(c *RunConfig, v any) error {
		s, _ := v.(string)
		if s == "" {
			return fmt.Errorf("want a workload pack name, got %v", v)
		}
		if _, err := workload.Get(s); err != nil {
			return err
		}
		c.Workload = s
		return nil
	}},
	"arrival": {set: func(c *RunConfig, v any) error {
		raw, err := arrivalValue(v)
		if err != nil {
			return err
		}
		c.Arrival = raw
		return nil
	}},
}

// arrivalValue coerces an axis value into a validated arrival spec
// string: "" (the legacy steady loop), raw spec JSON, or the spec as a
// decoded JSON object. Class names are checked later, against each
// expanded cell's resolved workload — the pack may itself be an axis.
func arrivalValue(v any) (string, error) {
	switch x := v.(type) {
	case string:
		if x == "" {
			return "", nil
		}
		if _, err := loadgen.Parse([]byte(x)); err != nil {
			return "", err
		}
		return x, nil
	case map[string]any:
		b, err := json.Marshal(x)
		if err != nil {
			return "", err
		}
		if _, err := loadgen.Parse(b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	return "", fmt.Errorf("want an arrival spec object, spec JSON, or \"\", got %v", v)
}

// SweepParams lists the settable axis parameter names, sorted.
func SweepParams() []string {
	names := make([]string, 0, len(sweepParams))
	for name := range sweepParams {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// intValue coerces the numeric forms a JSON decoder or Go literal may
// deliver into an int64, rejecting fractional floats.
func intValue(v any) (int64, error) {
	switch n := v.(type) {
	case int:
		return int64(n), nil
	case int64:
		return n, nil
	case uint64:
		return int64(n), nil
	case float64:
		if n != float64(int64(n)) {
			return 0, fmt.Errorf("not an integer")
		}
		return int64(n), nil
	case json.Number:
		return n.Int64()
	}
	return 0, fmt.Errorf("not a number")
}

// floatValue coerces numeric forms into a float64.
func floatValue(v any) (float64, error) {
	switch n := v.(type) {
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	case float64:
		return n, nil
	case json.Number:
		return n.Float64()
	}
	return 0, fmt.Errorf("not a number")
}

// valueLabel renders one axis value for cell labels. Arrival specs are
// labeled by their loadgen summary (the full JSON would swamp the label).
func valueLabel(param string, v any) string {
	if param == "arrival" {
		if raw, err := arrivalValue(v); err == nil {
			if raw == "" {
				return "steady"
			}
			return loadgen.SummaryString(raw)
		}
	}
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// Expand validates the grid and returns its deduped canonical cells, in
// odometer order (last axis fastest). maxCells caps the pre-dedup product
// (0 = no cap); the cap guards the serving layer against a fat-fingered
// grid fanning thousands of simulations across the pool.
func (s Sweep) Expand(maxCells int) ([]Cell, error) {
	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("sweep: no axes")
	}
	seenParam := map[string]bool{}
	product := 1
	for _, ax := range s.Axes {
		if _, ok := sweepParams[ax.Param]; !ok {
			return nil, fmt.Errorf("sweep: unknown parameter %q (have %s)", ax.Param, strings.Join(SweepParams(), ", "))
		}
		if seenParam[ax.Param] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Param)
		}
		seenParam[ax.Param] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
		product *= len(ax.Values)
		if maxCells > 0 && product > maxCells {
			return nil, fmt.Errorf("sweep: grid has more than %d cells", maxCells)
		}
	}

	cells := make([]Cell, 0, product)
	byCfg := map[RunConfig]int{}
	idx := make([]int, len(s.Axes)) // odometer over axis values
	for {
		cfg := s.Base
		var label strings.Builder
		for i, ax := range s.Axes {
			v := ax.Values[idx[i]]
			if err := sweepParams[ax.Param].set(&cfg, v); err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %v: %w", ax.Param, v, err)
			}
			if i > 0 {
				label.WriteByte(' ')
			}
			fmt.Fprintf(&label, "%s=%s", ax.Param, valueLabel(ax.Param, v))
		}
		key := cfg.Canonical()
		if key.RampMS >= key.DurationMS {
			return nil, fmt.Errorf("sweep: cell %q: ramp_ms %v must be below duration_ms %v", label.String(), key.RampMS, key.DurationMS)
		}
		if key.Arrival != "" {
			// Class names resolve per cell: the workload may itself be an
			// axis, so a mix valid under one pack can be invalid under
			// another cell's pack.
			if err := CheckArrivalClasses(key.Arrival, key.Workload); err != nil {
				return nil, fmt.Errorf("sweep: cell %q: %w", label.String(), err)
			}
		}
		if at, dup := byCfg[key]; dup {
			cells[at].Aliases = append(cells[at].Aliases, label.String())
		} else {
			byCfg[key] = len(cells)
			cells = append(cells, Cell{Index: len(cells), Label: label.String(), Cfg: key})
		}

		// Advance the odometer, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells, nil
		}
	}
}

// DistinctRequestKeys counts how many request-level simulations the cells
// cost under the current sharing mode — the number an N-cell grid actually
// pays, which the sweep smoke test asserts against SimCounts.
func DistinctRequestKeys(cells []Cell) int {
	keys := map[RequestKey]bool{}
	for _, c := range cells {
		keys[c.Cfg.RequestKey()] = true
	}
	return len(keys)
}
