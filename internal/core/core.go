// Package core is the paper's actual contribution rebuilt as a library:
// the characterization pipeline. It configures the simulated SUT, runs the
// workload with HPM sampling, and regenerates every figure and table of the
// paper — throughput (Fig 2), GC behaviour (Fig 3), the flat profile
// (Fig 4), CPI/speculation/L1 (Fig 5), branch prediction (Fig 6),
// translation (Fig 7 + the large-page ablation), the L1D cache (Fig 8),
// data sourcing (Fig 9), locking/SYNC costs (Section 4.2.4) and the CPI
// correlation analysis (Fig 10).
package core

import (
	"context"
	"fmt"

	"jasworkload/internal/hpm"
	"jasworkload/internal/mem"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
	"jasworkload/internal/workload"

	// Register every shipped workload pack; the jas2004 and trade6 packs
	// come in transitively through internal/server.
	_ "jasworkload/internal/workload/packs"
)

// Scale selects how closely a run matches the paper's dimensions versus a
// fast smoke configuration.
type Scale int

// Scales.
const (
	// ScaleQuick: small universe, short run — seconds of wall time. Used by
	// tests; trends hold, absolute magnitudes are noisier.
	ScaleQuick Scale = iota
	// ScaleStandard: the paper's configuration (IR40, 1 GB heap, 8500
	// methods) over a compressed steady-state interval.
	ScaleStandard
	// ScaleFull: the paper's 60-minute run shape (5 min ramp included).
	ScaleFull
)

// RunConfig parameterizes one experiment run.
type RunConfig struct {
	IR           int
	Scale        Scale
	Seed         int64
	HeapBytes    uint64
	HeapPageSize mem.PageSize
	// BaselineCacheBytes pins the long-lived in-heap state (0 = auto-scale
	// with the heap). Fix it when sweeping heap sizes so the live set
	// stays constant, as in the heapsweep example.
	BaselineCacheBytes uint64

	// Workload names the registered workload pack driving the run ("" =
	// the default jas2004 pack). It is part of the canonical config, so
	// artifacts, job IDs, and reports key on it.
	Workload string

	// Arrival is the loadgen spec as JSON ("" = the legacy steady Poisson
	// driver loop, byte-identical to the pre-loadgen engine). Stored as a
	// string so RunConfig stays comparable (it keys the run store);
	// canonical() normalizes it to loadgen's canonical form, so the spec
	// participates in artifact identity, job IDs, and the RequestKey —
	// distinct load shapes never coalesce, while page-size/detail-frac
	// sharing still applies within one shape.
	Arrival string

	// Overrides (0 = per-scale default).
	DurationMS float64
	RampMS     float64
	DetailFrac float64
}

// DefaultRunConfig returns the paper's configuration at the given scale.
func DefaultRunConfig(scale Scale) RunConfig {
	cfg := RunConfig{Scale: scale, Seed: 1, HeapPageSize: mem.Page16M}
	switch scale {
	case ScaleQuick:
		cfg.IR = 30
		cfg.HeapBytes = 256 << 20
	default:
		cfg.IR = 40
		cfg.HeapBytes = 1 << 30
	}
	return cfg
}

// durations returns (duration, ramp) for the run.
func (c RunConfig) durations() (float64, float64) {
	d, r := c.DurationMS, c.RampMS
	if d == 0 {
		switch c.Scale {
		case ScaleQuick:
			d = 120_000
		case ScaleStandard:
			d = 9 * 60_000
		default:
			d = 60 * 60_000
		}
	}
	if r == 0 {
		switch c.Scale {
		case ScaleQuick:
			r = 20_000
		default:
			r = 5 * 60_000
		}
	}
	return d, r
}

// detail returns the instruction-sampling fraction for detail runs.
func (c RunConfig) detail() float64 {
	if c.DetailFrac != 0 {
		return c.DetailFrac
	}
	if c.Scale == ScaleQuick {
		return 0.02
	}
	return 0.015
}

// workload resolves the run's workload pack against the registry.
func (c RunConfig) workload() (workload.Workload, error) {
	return workload.Get(c.Workload)
}

// buildSUT assembles the SUT per the run config.
func (c RunConfig) buildSUT() (*sim.SUT, error) {
	w, err := c.workload()
	if err != nil {
		return nil, err
	}
	scfg := sim.DefaultSUTConfig(c.IR)
	scfg.Seed = c.Seed
	scfg.HeapBytes = c.HeapBytes
	scfg.HeapPageSize = c.HeapPageSize
	scfg.BaselineCacheBytes = c.BaselineCacheBytes
	scfg.App = server.AppFor(w)
	// Pack-specific method-profile skew first, then the quick-scale
	// universe shrink, so the default pack stays byte-identical.
	scfg.Profile = w.TuneProfile(scfg.Profile)
	if c.Scale == ScaleQuick {
		scfg.Profile.NumMethods = 850
		scfg.Profile.WarmSet = 60
	}
	return sim.BuildSUT(scfg)
}

// newEngine builds the engine for the run; detailFrac 0 means request-level
// only.
func (c RunConfig) newEngine(sut *sim.SUT, detailFrac float64) (*sim.Engine, error) {
	ecfg := sim.DefaultEngineConfig()
	ecfg.Seed = c.Seed
	ecfg.DurationMS, ecfg.RampMS = c.durations()
	ecfg.DetailFrac = detailFrac
	ecfg.Pipelined = Pipelined()
	ecfg.Sharded = Sharded()
	ecfg.Arrival = c.Arrival
	return sim.NewEngine(ecfg, sut)
}

// detailRun builds SUT+engine with the named HPM groups attached and runs
// to completion (or until ctx cancels it mid-window). Like the paper's
// methodology, every group carries cycles and completed instructions so
// each event can be correlated against the CPI of its own group's samples.
func (c RunConfig) detailRun(ctx context.Context, winFn sim.WindowFunc, groups ...string) (*sim.SUT, *sim.Engine, map[string]*hpm.Monitor, error) {
	sut, err := c.buildSUT()
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := c.newEngine(sut, c.detail())
	if err != nil {
		return nil, nil, nil, err
	}
	eng.SetWindowFunc(winFn)
	mons := make(map[string]*hpm.Monitor, len(groups))
	for _, name := range groups {
		g, ok := hpm.GroupByName(hpm.StandardGroups(), name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("core: unknown HPM group %q", name)
		}
		m, err := hpm.NewMonitor(eng.Source(), g, 1000)
		if err != nil {
			return nil, nil, nil, err
		}
		eng.AttachMonitor(m)
		mons[name] = m
	}
	if _, err := eng.RunContext(ctx); err != nil {
		return nil, nil, nil, err
	}
	return sut, eng, mons, nil
}

// steadyStart returns the first steady-state window index.
func steadyStart(c RunConfig) int {
	_, ramp := c.durations()
	return int(ramp / 1000)
}
