package core

import (
	"fmt"
	"sync"

	"jasworkload/internal/hpm"
)

// This file is the run-artifact layer. An Artifact is the set of completed
// simulations for one canonical RunConfig: at most one request-level run
// and one instruction-detail run are ever executed per config, no matter
// how many figures, tables, reports, or benchmarks ask for them. All
// figure/table constructors are pure (memoized) views over the artifact,
// so regenerating the paper costs one pass over each fidelity instead of
// re-simulating per consumer.

// memo is a concurrency-safe, error-preserving once-cell.
type memo[T any] struct {
	once sync.Once
	v    T
	err  error
}

// do computes the cell on first use; later calls (including concurrent
// ones, which block until the first completes) return the same result.
func (m *memo[T]) do(fn func() (T, error)) (T, error) {
	m.once.Do(func() { m.v, m.err = fn() })
	return m.v, m.err
}

// Artifact caches the runs for one canonical configuration.
type Artifact struct {
	// Cfg is the canonicalized configuration: per-scale defaults for
	// duration, ramp, and detail fraction are resolved so that two configs
	// describing the same experiment share one artifact.
	Cfg RunConfig

	rl  memo[*RequestLevelRun]
	det memo[*DetailRun]
	cc  memo[CrossChecks]
	sc  memo[ScalarsResult]
	lp  memo[LargePageAblation]
}

// canonical resolves per-scale defaults into explicit fields so the value
// can key the run store.
func (c RunConfig) canonical() RunConfig {
	c.DurationMS, c.RampMS = c.durations()
	c.DetailFrac = c.detail()
	return c
}

// runStore maps canonical configs to their artifacts.
var runStore = struct {
	mu   sync.Mutex
	arts map[RunConfig]*Artifact
}{arts: map[RunConfig]*Artifact{}}

// ForConfig returns the shared artifact for cfg, creating it (without
// running anything yet) on first use.
func ForConfig(cfg RunConfig) *Artifact {
	key := cfg.canonical()
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	if a, ok := runStore.arts[key]; ok {
		return a
	}
	a := &Artifact{Cfg: key}
	runStore.arts[key] = a
	return a
}

// Flush drops every cached artifact. Long sweeps over many configurations
// can call it to bound memory; the next request for any config re-runs the
// simulation.
func Flush() {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	runStore.arts = map[RunConfig]*Artifact{}
}

// simStats counts simulations actually executed, by kind. The artifact
// cache tests use it to prove that views never trigger fresh runs.
var simStats = struct {
	mu     sync.Mutex
	counts map[string]int
}{counts: map[string]int{}}

// noteSim records one executed simulation of the given kind.
func noteSim(kind string) {
	simStats.mu.Lock()
	simStats.counts[kind]++
	simStats.mu.Unlock()
}

// simCount returns how many simulations of the given kind ran since the
// last reset.
func simCount(kind string) int {
	simStats.mu.Lock()
	defer simStats.mu.Unlock()
	return simStats.counts[kind]
}

// resetSimStats zeroes the counters (test hook).
func resetSimStats() {
	simStats.mu.Lock()
	simStats.counts = map[string]int{}
	simStats.mu.Unlock()
}

// RequestLevel returns the artifact's request-level run, executing it on
// first use. Figures 2-4 and the whole-system scalars are views of it.
func (a *Artifact) RequestLevel() (*RequestLevelRun, error) {
	return a.rl.do(func() (*RequestLevelRun, error) {
		noteSim("request-level")
		return runRequestLevel(a.Cfg)
	})
}

// Detail returns the artifact's instruction-detail run, executing it on
// first use. The run always collects every standard HPM group — monitors
// are pure observers, so one detail execution serves any group subset; the
// groups argument only validates that the caller's names exist.
func (a *Artifact) Detail(groups ...string) (*DetailRun, error) {
	for _, name := range groups {
		if _, ok := hpm.GroupByName(hpm.StandardGroups(), name); !ok {
			return nil, fmt.Errorf("core: unknown HPM group %q", name)
		}
	}
	return a.det.do(func() (*DetailRun, error) {
		noteSim("detail")
		return runDetail(a.Cfg, standardGroupNames()...)
	})
}

// standardGroupNames lists every standard HPM group name.
func standardGroupNames() []string {
	gs := hpm.StandardGroups()
	names := make([]string, len(gs))
	for i, g := range gs {
		names[i] = g.Name
	}
	return names
}
