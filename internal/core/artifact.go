package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"jasworkload/internal/hpm"
	"jasworkload/internal/sim"
	"jasworkload/internal/workload"
)

// This file is the run-artifact layer. An Artifact is the set of completed
// simulations for one canonical RunConfig: at most one request-level run
// and one instruction-detail run are ever executed per config, no matter
// how many figures, tables, reports, or benchmarks ask for them. All
// figure/table constructors are pure (memoized) views over the artifact,
// so regenerating the paper costs one pass over each fidelity instead of
// re-simulating per consumer.

// memo is a concurrency-safe, error-preserving once-cell.
type memo[T any] struct {
	once sync.Once
	done atomic.Bool
	v    T
	err  error
}

// do computes the cell on first use; later calls (including concurrent
// ones, which block until the first completes) return the same result.
func (m *memo[T]) do(fn func() (T, error)) (T, error) {
	m.once.Do(func() {
		m.v, m.err = fn()
		m.done.Store(true)
	})
	return m.v, m.err
}

// ready reports whether the cell has been computed, without computing it.
func (m *memo[T]) ready() bool { return m.done.Load() }

// Artifact caches the runs for one canonical configuration.
type Artifact struct {
	// Cfg is the canonicalized configuration: per-scale defaults for
	// duration, ramp, and detail fraction are resolved so that two configs
	// describing the same experiment share one artifact.
	Cfg RunConfig

	rl  memo[*RequestLevelRun]
	det memo[*DetailRun]
	cc  memo[CrossChecks]
	sc  memo[ScalarsResult]
	lp  memo[LargePageAblation]

	winMu sync.Mutex
	winFn func(kind string, ws sim.WindowStats)
}

// canonical resolves per-scale defaults into explicit fields so the value
// can key the run store.
func (c RunConfig) canonical() RunConfig {
	c.DurationMS, c.RampMS = c.durations()
	c.DetailFrac = c.detail()
	if c.Workload == "" {
		c.Workload = workload.DefaultName
	}
	return c
}

// Canonical returns the configuration with per-scale defaults resolved —
// the exact value that keys the run store. Two configs with equal
// Canonical() share one artifact (and therefore one simulation per
// fidelity); the serving layer uses it to derive stable job identifiers.
func (c RunConfig) Canonical() RunConfig { return c.canonical() }

// runStore maps canonical configs to their artifacts, and counts lookup
// hits/misses so a serving layer can export its dedup effectiveness.
var runStore = struct {
	mu     sync.Mutex
	arts   map[RunConfig]*Artifact
	hits   uint64
	misses uint64
}{arts: map[RunConfig]*Artifact{}}

// ForConfig returns the shared artifact for cfg, creating it (without
// running anything yet) on first use.
func ForConfig(cfg RunConfig) *Artifact {
	key := cfg.canonical()
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	if a, ok := runStore.arts[key]; ok {
		runStore.hits++
		return a
	}
	runStore.misses++
	a := &Artifact{Cfg: key}
	runStore.arts[key] = a
	return a
}

// CacheStats reports run-store lookups since process start (or the last
// ResetCacheStats): hits are ForConfig calls that found an existing
// artifact, misses created one. Flush does not reset the counters.
func CacheStats() (hits, misses uint64) {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	return runStore.hits, runStore.misses
}

// ResetCacheStats zeroes the run-store hit/miss counters.
func ResetCacheStats() {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	runStore.hits, runStore.misses = 0, 0
}

// Flush drops every cached artifact. Long sweeps over many configurations
// can call it to bound memory; the next request for any config re-runs the
// simulation.
func Flush() {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	runStore.arts = map[RunConfig]*Artifact{}
}

// Drop evicts a from the run store, releasing the simulations it caches
// for garbage collection once the last consumer lets go. The removal is
// identity-guarded: if the store has since been re-populated with a fresh
// artifact for the same config (after an earlier Drop), that newer
// artifact is left alone. Serving layers use Drop both to reclaim the
// memory of retired runs and to un-poison an artifact whose execution was
// cancelled mid-run — a cancelled run's memo caches the cancellation
// error forever, so the next submission must get a fresh artifact.
// Reports whether a was the registered artifact and got removed.
func Drop(a *Artifact) bool {
	if a == nil {
		return false
	}
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	if runStore.arts[a.Cfg] != a {
		return false
	}
	delete(runStore.arts, a.Cfg)
	return true
}

// simStats counts simulations actually executed, by kind. The artifact
// cache tests use it to prove that views never trigger fresh runs.
var simStats = struct {
	mu     sync.Mutex
	counts map[string]int
}{counts: map[string]int{}}

// noteSim records one executed simulation of the given kind.
func noteSim(kind string) {
	simStats.mu.Lock()
	simStats.counts[kind]++
	simStats.mu.Unlock()
}

// simCount returns how many simulations of the given kind ran since the
// last reset.
func simCount(kind string) int {
	simStats.mu.Lock()
	defer simStats.mu.Unlock()
	return simStats.counts[kind]
}

// resetSimStats zeroes the counters (test hook).
func resetSimStats() {
	simStats.mu.Lock()
	simStats.counts = map[string]int{}
	simStats.mu.Unlock()
}

// SimCounts returns a copy of the executed-simulation counters by kind
// ("request-level", "detail", "variant"). The serving layer's determinism
// guard uses it to prove that N concurrent clients cost one simulation.
func SimCounts() map[string]int {
	simStats.mu.Lock()
	defer simStats.mu.Unlock()
	out := make(map[string]int, len(simStats.counts))
	for k, v := range simStats.counts {
		out[k] = v
	}
	return out
}

// ResetSimCounts zeroes the executed-simulation counters.
func ResetSimCounts() { resetSimStats() }

// SetWindowFunc registers fn to observe every window the artifact's future
// simulations complete; kind names the producing run ("request-level" or
// "detail"). Registration must happen before the corresponding run starts
// to see its windows — runs already executed do not replay. fn is invoked
// from the simulation goroutine (possibly two concurrently, one per
// fidelity) and must be internally synchronized and fast.
func (a *Artifact) SetWindowFunc(fn func(kind string, ws sim.WindowStats)) {
	a.winMu.Lock()
	a.winFn = fn
	a.winMu.Unlock()
}

// windowFunc adapts the registered observer for one run kind, resolving
// the current registration at call time so SetWindowFunc may land between
// artifact creation and the first execution.
func (a *Artifact) windowFunc(kind string) sim.WindowFunc {
	return func(ws sim.WindowStats) {
		a.winMu.Lock()
		fn := a.winFn
		a.winMu.Unlock()
		if fn != nil {
			fn(kind, ws)
		}
	}
}

// Ready reports, without triggering execution, which of the artifact's two
// fidelities have completed. The serving layer maps this to job phase
// status.
func (a *Artifact) Ready() (requestLevel, detail bool) {
	return a.rl.ready(), a.det.ready()
}

// RequestLevel returns the artifact's request-level run, executing it on
// first use. Figures 2-4 and the whole-system scalars are views of it.
func (a *Artifact) RequestLevel() (*RequestLevelRun, error) {
	return a.RequestLevelContext(context.Background())
}

// RequestLevelContext is RequestLevel with a cancellable execution: ctx
// reaches the engine's window loop, so cancellation stops the simulation
// mid-window. The memo executes once — the ctx of the first caller
// governs the run, and a cancelled execution leaves the artifact caching
// the cancellation error (Drop it to run the config afresh). A ctx that
// is never cancelled changes nothing: the run is byte-identical to an
// uncancellable one.
func (a *Artifact) RequestLevelContext(ctx context.Context) (*RequestLevelRun, error) {
	return a.rl.do(func() (*RequestLevelRun, error) {
		noteSim("request-level")
		return runRequestLevel(ctx, a.Cfg, a.windowFunc("request-level"))
	})
}

// Detail returns the artifact's instruction-detail run, executing it on
// first use. The run always collects every standard HPM group — monitors
// are pure observers, so one detail execution serves any group subset; the
// groups argument only validates that the caller's names exist.
func (a *Artifact) Detail(groups ...string) (*DetailRun, error) {
	return a.DetailContext(context.Background(), groups...)
}

// DetailContext is Detail with a cancellable execution; the same
// first-caller-wins and Drop-to-retry semantics as RequestLevelContext
// apply.
func (a *Artifact) DetailContext(ctx context.Context, groups ...string) (*DetailRun, error) {
	for _, name := range groups {
		if _, ok := hpm.GroupByName(hpm.StandardGroups(), name); !ok {
			return nil, fmt.Errorf("core: unknown HPM group %q", name)
		}
	}
	return a.det.do(func() (*DetailRun, error) {
		noteSim("detail")
		return runDetail(ctx, a.Cfg, a.windowFunc("detail"), standardGroupNames()...)
	})
}

// standardGroupNames lists every standard HPM group name.
func standardGroupNames() []string {
	gs := hpm.StandardGroups()
	names := make([]string, len(gs))
	for i, g := range gs {
		names[i] = g.Name
	}
	return names
}
