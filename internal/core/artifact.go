package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"jasworkload/internal/hpm"
	"jasworkload/internal/loadgen"
	"jasworkload/internal/mem"
	"jasworkload/internal/sim"
	"jasworkload/internal/workload"
)

// This file is the run-artifact layer. An Artifact is the set of completed
// simulations for one canonical RunConfig: at most one request-level run
// and one instruction-detail run are ever executed per config, no matter
// how many figures, tables, reports, or benchmarks ask for them. All
// figure/table constructors are pure (memoized) views over the artifact,
// so regenerating the paper costs one pass over each fidelity instead of
// re-simulating per consumer.
//
// The store is split by fidelity. Detail runs (and the variant memos that
// hang off an artifact) key on the full canonical config — the DetailKey.
// Request-level runs key on the RequestKey: the canonical config with the
// detail-only knobs (HeapPageSize, DetailFrac) normalized away, because
// neither reaches the request-level engine. Every config sharing a
// RequestKey therefore shares one request-level simulation, which is what
// makes an N-cell page-size x detail-frac what-if grid cost
// distinct(RequestKey) request-level runs instead of N.

// memo is a concurrency-safe, error-preserving once-cell.
type memo[T any] struct {
	once sync.Once
	done atomic.Bool
	v    T
	err  error
}

// do computes the cell on first use; later calls (including concurrent
// ones, which block until the first completes) return the same result.
func (m *memo[T]) do(fn func() (T, error)) (T, error) {
	m.once.Do(func() {
		m.v, m.err = fn()
		m.done.Store(true)
	})
	return m.v, m.err
}

// ready reports whether the cell has been computed, without computing it.
func (m *memo[T]) ready() bool { return m.done.Load() }

// set pre-fills the cell with a value (no error), consuming its once. The
// persistent store uses it to hydrate figure memos from disk; a later do()
// returns the stored value without running its function.
func (m *memo[T]) set(v T) {
	m.once.Do(func() {
		m.v = v
		m.done.Store(true)
	})
}

// Artifact caches the runs for one canonical configuration.
type Artifact struct {
	// Cfg is the canonicalized configuration: per-scale defaults for
	// duration, ramp, and detail fraction are resolved so that two configs
	// describing the same experiment share one artifact.
	Cfg RunConfig

	// rlc is the shared request-level cell this artifact draws from; all
	// artifacts whose configs agree on the RequestKey point at one cell.
	rlc *rlCell

	det memo[*DetailRun]
	cc  memo[CrossChecks]
	sc  memo[ScalarsResult]
	lp  memo[LargePageAblation]

	winMu sync.Mutex
	winFn func(kind string, ws sim.WindowStats)
}

// canonical resolves per-scale defaults into explicit fields so the value
// can key the run store.
func (c RunConfig) canonical() RunConfig {
	c.DurationMS, c.RampMS = c.durations()
	c.DetailFrac = c.detail()
	if c.Workload == "" {
		c.Workload = workload.DefaultName
	}
	if c.Arrival != "" {
		// Normalize the arrival spec so equivalent spellings share one
		// artifact. A spec that fails to parse is left verbatim: the error
		// surfaces with full context when the engine is built, and the
		// malformed string still keys a distinct (failing) artifact.
		if canon, err := loadgen.CanonicalString(c.Arrival); err == nil {
			c.Arrival = canon
		}
	}
	return c
}

// Canonical returns the configuration with per-scale defaults resolved —
// the exact value that keys the run store. Two configs with equal
// Canonical() share one artifact (and therefore one simulation per
// fidelity); the serving layer uses it to derive stable job identifiers.
func (c RunConfig) Canonical() RunConfig { return c.canonical() }

// RequestKey identifies the request-level simulation a configuration
// needs. It is the canonical config with the detail-only knobs normalized
// away:
//
//   - DetailFrac is zeroed — the request-level engine always runs with
//     detail fraction 0 regardless of the config's sampling rate, so the
//     knob cannot perturb request-level behaviour.
//   - HeapPageSize is zeroed and replaced by HeapCapacity, the heap region
//     size after the memory layout rounds it up to a page multiple. The
//     page size reaches the request-level run only through that effective
//     capacity (translation structures are consulted by the detail model
//     alone), while the raw HeapBytes stays in the key because the SUT
//     derives the auto baseline-cache size from it unrounded.
//
// Two canonical configs with equal RequestKeys produce bit-identical
// request-level runs and therefore share one.
type RequestKey struct {
	cfg RunConfig
	// HeapCapacity is the page-rounded heap region size the run executes
	// with; zero when sharing is disabled (cfg then carries the page size).
	HeapCapacity uint64
}

// RequestKey derives the request-level cache key for the configuration.
func (c RunConfig) RequestKey() RequestKey {
	k := c.canonical()
	if !shareRequestLevel.Load() {
		// Sharing disabled (the equivalence/benchmark foil): every
		// canonical config gets a private request-level run, exactly like
		// the unsplit cache.
		return RequestKey{cfg: k}
	}
	page := k.HeapPageSize.Bytes()
	cap := (k.HeapBytes + page - 1) / page * page
	k.HeapPageSize = mem.Page4K
	k.DetailFrac = 0
	return RequestKey{cfg: k, HeapCapacity: cap}
}

// shareRequestLevel gates the split store. On (the default), request-level
// runs are shared across every config with an equal RequestKey; off, each
// canonical config owns a private request-level run, reproducing the
// unsplit cache byte for byte (the benchmark pair's honest reference).
var shareRequestLevel atomic.Bool

func init() { shareRequestLevel.Store(true) }

// ShareRequestLevel reports whether request-level runs are shared across
// configs that differ only in detail-only knobs.
func ShareRequestLevel() bool { return shareRequestLevel.Load() }

// SetShareRequestLevel toggles request-level sharing and returns the
// previous setting. Figures and reports are byte-identical either way;
// only the number of request-level simulations (and wall clock) changes.
// Flip it only between experiments — artifacts created under the old
// setting keep the cells they were born with.
func SetShareRequestLevel(enabled bool) bool {
	prev := shareRequestLevel.Load()
	shareRequestLevel.Store(enabled)
	return prev
}

// rlCell is one shared request-level execution: a content-addressed slot
// in the run store that every artifact with the same RequestKey points at.
// The simulation inside runs under a cell-owned context that is cancelled
// only when every waiter has gone — one sweep cell's cancellation cannot
// abort a request-level run other live cells still want (the refcounted
// analogue of the service's job-reference semantics).
type rlCell struct {
	key RequestKey
	// repr is the canonical config of the first member that created the
	// cell; the shared simulation executes under it. Any member would do:
	// configs mapping to one RequestKey are request-level-equivalent by
	// construction (the split-key equivalence test pins this), and the
	// run's views consume the config only through its durations, which the
	// key fixes.
	repr RunConfig

	refs int // artifacts in the run store referencing this cell (runStore.mu)

	mu      sync.Mutex
	done    bool
	run     *RequestLevelRun
	err     error // failure of the current (finished) attempt
	running bool
	waiters int
	attempt chan struct{}      // closed when the in-flight attempt finishes
	cancel  context.CancelFunc // aborts the in-flight attempt

	obsMu sync.Mutex
	obs   map[*Artifact]sim.WindowFunc
}

func newRLCell(key RequestKey, repr RunConfig) *rlCell {
	return &rlCell{key: key, repr: repr, obs: map[*Artifact]sim.WindowFunc{}}
}

// addObserver registers an artifact's window observer with the cell; the
// adapter resolves the artifact's current registration at call time, so
// SetWindowFunc may land between artifact creation and the run.
func (c *rlCell) addObserver(a *Artifact, fn sim.WindowFunc) {
	c.obsMu.Lock()
	c.obs[a] = fn
	c.obsMu.Unlock()
}

// dropObserver unregisters a dropped artifact's observer.
func (c *rlCell) dropObserver(a *Artifact) {
	c.obsMu.Lock()
	delete(c.obs, a)
	c.obsMu.Unlock()
}

// broadcast fans one window out to every sharing artifact's observer, so
// each job streaming a cell of a sweep sees the shared run's windows.
func (c *rlCell) broadcast(ws sim.WindowStats) {
	c.obsMu.Lock()
	fns := make([]sim.WindowFunc, 0, len(c.obs))
	for _, fn := range c.obs {
		fns = append(fns, fn)
	}
	c.obsMu.Unlock()
	for _, fn := range fns {
		fn(ws)
	}
}

// ready reports whether the cell holds a completed run.
func (c *rlCell) ready() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// get returns the cell's request-level run, executing it on first use.
// The simulation runs under a cell-owned context: a caller whose ctx is
// cancelled merely stops waiting (and gets its ctx error); the run itself
// aborts mid-window only when the last waiter has gone. Completed runs are
// cached forever; a failed or aborted attempt is not sticky — the next
// caller re-executes, so a poisoned memo never outlives its waiters.
func (c *rlCell) get(ctx context.Context) (*RequestLevelRun, error) {
	for {
		c.mu.Lock()
		if c.done {
			run := c.run
			c.mu.Unlock()
			return run, nil
		}
		if !c.running {
			runCtx, cancel := context.WithCancel(context.Background())
			ch := make(chan struct{})
			c.running, c.err = true, nil
			c.attempt, c.cancel = ch, cancel
			go func() {
				run, err := c.execute(runCtx)
				cancel()
				c.mu.Lock()
				if err == nil {
					c.done, c.run = true, run
				} else {
					c.err = err
				}
				c.running = false
				close(ch)
				c.mu.Unlock()
			}()
		}
		ch := c.attempt
		c.waiters++
		c.mu.Unlock()

		select {
		case <-ch:
			c.mu.Lock()
			c.waiters--
			done, run, err := c.done, c.run, c.err
			c.mu.Unlock()
			if done {
				return run, nil
			}
			// The attempt failed. If it was aborted because earlier waiters
			// (not us) walked away, retry rather than surfacing their
			// cancellation; a genuine simulation error propagates.
			if isContextErr(err) && ctx.Err() == nil {
				continue
			}
			return nil, err
		case <-ctx.Done():
			c.mu.Lock()
			c.waiters--
			if c.waiters == 0 && c.running && c.cancel != nil {
				c.cancel()
			}
			c.mu.Unlock()
			return nil, ctx.Err()
		}
	}
}

// execute produces the cell's run: straight simulation without a
// persistent store, else the store-through path — serve a persisted entry
// (hydrated, zero simulations), or win the cross-replica lease, simulate,
// and persist. noteSim fires only when a simulation actually runs, so the
// serving layer's sims counter is an honest re-simulation detector.
func (c *rlCell) execute(ctx context.Context) (*RequestLevelRun, error) {
	cfg := c.repr
	simulate := func() (*RequestLevelRun, error) {
		noteSim("request-level")
		return runRequestLevel(ctx, cfg, c.broadcast)
	}
	st := CurrentStore()
	if st == nil {
		return simulate()
	}
	key := requestKeyHash(c.key)
	return runDeduped(ctx, st, kindRequestLevel, key,
		func() (*RequestLevelRun, bool) { return st.loadRequestLevel(key, cfg) },
		simulate,
		func(run *RequestLevelRun) { st.saveRequestLevel(key, run) })
}

// isContextErr reports whether err stems from context cancellation or a
// deadline (possibly wrapped).
func isContextErr(err error) bool {
	return err != nil && (err == context.Canceled || err == context.DeadlineExceeded ||
		contextUnwrap(err))
}

func contextUnwrap(err error) bool {
	type unwrapper interface{ Unwrap() error }
	for {
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
		if err == context.Canceled || err == context.DeadlineExceeded {
			return true
		}
		if err == nil {
			return false
		}
	}
}

// runStore maps canonical configs to their artifacts and request keys to
// their shared request-level cells, and counts lookup hits/misses per
// store so a serving layer can export its dedup effectiveness.
var runStore = struct {
	mu       sync.Mutex
	arts     map[RunConfig]*Artifact
	cells    map[RequestKey]*rlCell
	hits     uint64
	misses   uint64
	rlHits   uint64
	rlMisses uint64
}{arts: map[RunConfig]*Artifact{}, cells: map[RequestKey]*rlCell{}}

// ForConfig returns the shared artifact for cfg, creating it (without
// running anything yet) on first use. Creation also resolves the config's
// request-level cell: an existing cell for the same RequestKey is adopted
// (and refcounted), so the artifact's request-level fidelity is shared
// with every other config that differs only in detail-only knobs.
func ForConfig(cfg RunConfig) *Artifact {
	key := cfg.canonical()
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	if a, ok := runStore.arts[key]; ok {
		runStore.hits++
		return a
	}
	runStore.misses++
	a := &Artifact{Cfg: key}
	rk := key.RequestKey()
	cell, ok := runStore.cells[rk]
	if ok {
		runStore.rlHits++
	} else {
		runStore.rlMisses++
		cell = newRLCell(rk, key)
		runStore.cells[rk] = cell
	}
	cell.refs++
	cell.addObserver(a, a.windowFunc("request-level"))
	a.rlc = cell
	runStore.arts[key] = a
	return a
}

// CacheStats reports artifact-store lookups since process start (or the
// last ResetCacheStats): hits are ForConfig calls that found an existing
// artifact, misses created one. Flush does not reset the counters.
func CacheStats() (hits, misses uint64) {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	return runStore.hits, runStore.misses
}

// FidelityCacheStats is one store's lookup counters.
type FidelityCacheStats struct {
	Hits   uint64
	Misses uint64
}

// SplitCacheStats reports the per-fidelity store counters: artifact
// lookups (the full canonical config — detail fidelity and variant memos)
// and request-level cell lookups (the RequestKey store). A request-level
// hit on an artifact miss is the split paying off: a new detail
// configuration adopted an existing request-level run.
func SplitCacheStats() (artifact, requestLevel FidelityCacheStats) {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	return FidelityCacheStats{Hits: runStore.hits, Misses: runStore.misses},
		FidelityCacheStats{Hits: runStore.rlHits, Misses: runStore.rlMisses}
}

// ResetCacheStats zeroes the hit/miss counters of both stores.
func ResetCacheStats() {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	runStore.hits, runStore.misses = 0, 0
	runStore.rlHits, runStore.rlMisses = 0, 0
}

// Flush drops every cached artifact and request-level cell. Long sweeps
// over many configurations can call it to bound memory; the next request
// for any config re-runs the simulation.
func Flush() {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	runStore.arts = map[RunConfig]*Artifact{}
	runStore.cells = map[RequestKey]*rlCell{}
}

// Drop evicts a from the run store, releasing the simulations it caches
// for garbage collection once the last consumer lets go. The removal is
// identity-guarded: if the store has since been re-populated with a fresh
// artifact for the same config (after an earlier Drop), that newer
// artifact is left alone. The artifact's request-level cell is
// refcounted: dropping one artifact only releases its reference, and the
// cell (with its cached run) stays in the store while other live
// artifacts — sweep cells sharing the RequestKey — still point at it;
// the last reference removes the cell too. Serving layers use Drop both
// to reclaim the memory of retired runs and to retire an artifact whose
// execution was cancelled mid-run (detail-fidelity memos cache the
// cancellation error forever; the request-level cell never does — failed
// attempts re-execute for the next caller).
// Reports whether a was the registered artifact and got removed.
func Drop(a *Artifact) bool {
	if a == nil {
		return false
	}
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	if runStore.arts[a.Cfg] != a {
		return false
	}
	delete(runStore.arts, a.Cfg)
	if cell := a.rlc; cell != nil {
		cell.dropObserver(a)
		cell.refs--
		if cell.refs <= 0 && runStore.cells[cell.key] == cell {
			delete(runStore.cells, cell.key)
		}
	}
	return true
}

// StoreSizes reports how many artifacts and request-level cells are
// resident — the split the serving layer's /metrics exports so the
// distinct(RequestKey) saving is observable, not asserted.
func StoreSizes() (artifacts, requestLevelCells int) {
	runStore.mu.Lock()
	defer runStore.mu.Unlock()
	return len(runStore.arts), len(runStore.cells)
}

// simStats counts simulations actually executed, by kind. The artifact
// cache tests use it to prove that views never trigger fresh runs.
var simStats = struct {
	mu     sync.Mutex
	counts map[string]int
}{counts: map[string]int{}}

// noteSim records one executed simulation of the given kind.
func noteSim(kind string) {
	simStats.mu.Lock()
	simStats.counts[kind]++
	simStats.mu.Unlock()
}

// simCount returns how many simulations of the given kind ran since the
// last reset.
func simCount(kind string) int {
	simStats.mu.Lock()
	defer simStats.mu.Unlock()
	return simStats.counts[kind]
}

// resetSimStats zeroes the counters (test hook).
func resetSimStats() {
	simStats.mu.Lock()
	simStats.counts = map[string]int{}
	simStats.mu.Unlock()
}

// SimCounts returns a copy of the executed-simulation counters by kind
// ("request-level", "detail", "variant"). The serving layer's determinism
// guard uses it to prove that N concurrent clients cost one simulation,
// and the sweep machinery to prove an N-cell grid costs
// distinct(RequestKey) request-level runs.
func SimCounts() map[string]int {
	simStats.mu.Lock()
	defer simStats.mu.Unlock()
	out := make(map[string]int, len(simStats.counts))
	for k, v := range simStats.counts {
		out[k] = v
	}
	return out
}

// ResetSimCounts zeroes the executed-simulation counters.
func ResetSimCounts() { resetSimStats() }

// SetWindowFunc registers fn to observe every window the artifact's future
// simulations complete; kind names the producing run ("request-level" or
// "detail"). Registration must happen before the corresponding run starts
// to see its windows — runs already executed do not replay. The
// request-level run may be shared: every sharing artifact's observer sees
// its windows. fn is invoked from the simulation goroutine (possibly two
// concurrently, one per fidelity) and must be internally synchronized and
// fast.
func (a *Artifact) SetWindowFunc(fn func(kind string, ws sim.WindowStats)) {
	a.winMu.Lock()
	a.winFn = fn
	a.winMu.Unlock()
}

// windowFunc adapts the registered observer for one run kind, resolving
// the current registration at call time so SetWindowFunc may land between
// artifact creation and the first execution.
func (a *Artifact) windowFunc(kind string) sim.WindowFunc {
	return func(ws sim.WindowStats) {
		a.winMu.Lock()
		fn := a.winFn
		a.winMu.Unlock()
		if fn != nil {
			fn(kind, ws)
		}
	}
}

// Ready reports, without triggering execution, which of the artifact's two
// fidelities have completed. The serving layer maps this to job phase
// status. The request-level fidelity may have been completed by a sharing
// config's run.
func (a *Artifact) Ready() (requestLevel, detail bool) {
	return a.rlc.ready(), a.det.ready()
}

// RequestLevel returns the artifact's request-level run, executing it on
// first use. Figures 2-4 and the whole-system scalars are views of it.
// The run is shared: every artifact whose config differs only in
// detail-only knobs (HeapPageSize, DetailFrac) returns the same run.
func (a *Artifact) RequestLevel() (*RequestLevelRun, error) {
	return a.RequestLevelContext(context.Background())
}

// RequestLevelContext is RequestLevel with a cancellable wait: ctx bounds
// this caller, while the simulation itself runs under the shared cell's
// own context and aborts mid-window only when every waiting caller has
// cancelled — one sweep cell letting go cannot kill the run its sibling
// cells still want. A ctx that is never cancelled changes nothing: the
// run is byte-identical to an uncancellable one.
func (a *Artifact) RequestLevelContext(ctx context.Context) (*RequestLevelRun, error) {
	return a.rlc.get(ctx)
}

// Detail returns the artifact's instruction-detail run, executing it on
// first use. The run always collects every standard HPM group — monitors
// are pure observers, so one detail execution serves any group subset; the
// groups argument only validates that the caller's names exist.
func (a *Artifact) Detail(groups ...string) (*DetailRun, error) {
	return a.DetailContext(context.Background(), groups...)
}

// DetailContext is Detail with a cancellable execution: the memo executes
// once — the ctx of the first caller governs the run, and a cancelled
// execution leaves the artifact caching the cancellation error (Drop it
// to run the config afresh).
func (a *Artifact) DetailContext(ctx context.Context, groups ...string) (*DetailRun, error) {
	for _, name := range groups {
		if _, ok := hpm.GroupByName(hpm.StandardGroups(), name); !ok {
			return nil, fmt.Errorf("core: unknown HPM group %q", name)
		}
	}
	return a.det.do(func() (*DetailRun, error) {
		simulate := func() (*DetailRun, error) {
			noteSim("detail")
			return runDetail(ctx, a.Cfg, a.windowFunc("detail"), standardGroupNames()...)
		}
		st := CurrentStore()
		if st == nil {
			return simulate()
		}
		key := detailKeyHash(a.Cfg)
		return runDeduped(ctx, st, kindDetail, key,
			func() (*DetailRun, bool) { return st.loadDetail(key, a.Cfg) },
			simulate,
			func(d *DetailRun) { st.saveDetail(key, d) })
	})
}

// standardGroupNames lists every standard HPM group name.
func standardGroupNames() []string {
	gs := hpm.StandardGroups()
	names := make([]string, len(gs))
	for i, g := range gs {
		names[i] = g.Name
	}
	return names
}
