// Package mem models the simulated process address space: named regions
// (Java heap, JIT code cache, native code, DB buffer pool, stacks) backed by
// 4 KB or 16 MB pages, with deterministic effective-to-real translation.
//
// The POWER4 translation structures (ERAT, TLB) in internal/power4 consult
// this layout to learn page boundaries and sizes; the paper's large-page
// experiments (Section 4.2.2) toggle the Java heap's page size here.
package mem

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize enumerates the two AIX page sizes the paper uses.
type PageSize uint8

const (
	// Page4K is the default 4 KB page.
	Page4K PageSize = iota
	// Page16M is the AIX large page used for the Java heap in the paper.
	Page16M
)

// Bytes returns the page size in bytes.
func (p PageSize) Bytes() uint64 {
	if p == Page16M {
		return 16 << 20
	}
	return 4 << 10
}

// Shift returns log2 of the page size.
func (p PageSize) Shift() uint {
	if p == Page16M {
		return 24
	}
	return 12
}

// String names the page size.
func (p PageSize) String() string {
	if p == Page16M {
		return "16MB"
	}
	return "4KB"
}

// Region is a contiguous, page-aligned range of the effective address space.
type Region struct {
	Name     string
	Base     uint64 // effective base address
	Size     uint64 // bytes
	PageSize PageSize
	Kernel   bool // privileged-only region

	realBase uint64 // assigned physical base
}

// End returns one past the last byte of the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether ea falls inside the region.
func (r *Region) Contains(ea uint64) bool { return ea >= r.Base && ea < r.End() }

// AddressSpace is an ordered set of non-overlapping regions with a
// deterministic physical placement (regions are packed into physical memory
// in creation order).
type AddressSpace struct {
	regions  []*Region
	nextReal uint64
}

// ErrOverlap is returned when a new region overlaps an existing one.
var ErrOverlap = errors.New("mem: region overlap")

// NewAddressSpace returns an empty address space. Physical placement starts
// above the first 256 MB to keep RA 0 reserved.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextReal: 256 << 20}
}

// AddRegion creates and inserts a region. Base and Size must be aligned to
// the region's page size.
func (as *AddressSpace) AddRegion(name string, base, size uint64, ps PageSize, kernel bool) (*Region, error) {
	pb := ps.Bytes()
	if base%pb != 0 || size%pb != 0 {
		return nil, fmt.Errorf("mem: region %q not %s-aligned (base=%#x size=%#x)", name, ps, base, size)
	}
	if size == 0 {
		return nil, fmt.Errorf("mem: region %q has zero size", name)
	}
	r := &Region{Name: name, Base: base, Size: size, PageSize: ps, Kernel: kernel}
	for _, ex := range as.regions {
		if r.Base < ex.End() && ex.Base < r.End() {
			return nil, fmt.Errorf("%w: %q and %q", ErrOverlap, name, ex.Name)
		}
	}
	r.realBase = as.nextReal
	as.nextReal += size
	as.regions = append(as.regions, r)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
	return r, nil
}

// Region returns the region containing ea, or nil.
func (as *AddressSpace) Region(ea uint64) *Region {
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End() > ea })
	if i < len(as.regions) && as.regions[i].Contains(ea) {
		return as.regions[i]
	}
	return nil
}

// RegionByName returns the named region, or nil.
func (as *AddressSpace) RegionByName(name string) *Region {
	for _, r := range as.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Regions returns the regions in address order.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// Translation is the result of a successful address translation.
type Translation struct {
	RA       uint64 // real (physical) address
	VPN      uint64 // virtual page number (EA >> page shift), ERAT/TLB tag
	PageSize PageSize
	Kernel   bool
}

// ErrUnmapped is returned for addresses outside every region.
var ErrUnmapped = errors.New("mem: unmapped effective address")

// Translate maps an effective address to its real address and page info.
func (as *AddressSpace) Translate(ea uint64) (Translation, error) {
	r := as.Region(ea)
	if r == nil {
		return Translation{}, fmt.Errorf("%w: %#x", ErrUnmapped, ea)
	}
	return Translation{
		RA:       r.realBase + (ea - r.Base),
		VPN:      ea >> r.PageSize.Shift(),
		PageSize: r.PageSize,
		Kernel:   r.Kernel,
	}, nil
}

// PageCount returns how many pages the region spans.
func (r *Region) PageCount() uint64 { return r.Size / r.PageSize.Bytes() }

// TotalMapped returns the number of mapped bytes across all regions.
func (as *AddressSpace) TotalMapped() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Size
	}
	return n
}
