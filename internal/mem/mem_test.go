package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPageSize(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page16M.Bytes() != 16<<20 {
		t.Fatal("page sizes wrong")
	}
	if Page4K.Shift() != 12 || Page16M.Shift() != 24 {
		t.Fatal("page shifts wrong")
	}
	if Page4K.String() != "4KB" || Page16M.String() != "16MB" {
		t.Fatal("page names wrong")
	}
	if uint64(1)<<Page4K.Shift() != Page4K.Bytes() || uint64(1)<<Page16M.Shift() != Page16M.Bytes() {
		t.Fatal("shift/bytes inconsistent")
	}
}

func TestAddRegionAlignment(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.AddRegion("bad", 100, 4096, Page4K, false); err == nil {
		t.Fatal("unaligned base accepted")
	}
	if _, err := as.AddRegion("bad", 4096, 100, Page4K, false); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := as.AddRegion("zero", 4096, 0, Page4K, false); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := as.AddRegion("ok", 0x10000, 0x4000, Page4K, false); err != nil {
		t.Fatal(err)
	}
}

func TestAddRegionOverlap(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.AddRegion("a", 0x10000, 0x10000, Page4K, false); err != nil {
		t.Fatal(err)
	}
	_, err := as.AddRegion("b", 0x18000, 0x10000, Page4K, false)
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
	// Adjacent is fine.
	if _, err := as.AddRegion("c", 0x20000, 0x1000, Page4K, false); err != nil {
		t.Fatal(err)
	}
}

func TestTranslate(t *testing.T) {
	as := NewAddressSpace()
	r1, err := as.AddRegion("heap", 16<<20, 32<<20, Page16M, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := as.AddRegion("code", 64<<20, 4<<20, Page4K, false)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := as.Translate(r1.Base + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PageSize != Page16M {
		t.Fatalf("page size = %v", tr.PageSize)
	}
	if tr.VPN != (r1.Base+12345)>>24 {
		t.Fatalf("VPN = %#x", tr.VPN)
	}
	tr2, err := as.Translate(r2.Base)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.PageSize != Page4K || tr2.Kernel {
		t.Fatalf("translation = %+v", tr2)
	}
	// Physical placement must be disjoint: heap occupies 32 MB starting at
	// its realBase, code comes after.
	if tr2.RA < tr.RA+32<<20-12345 {
		t.Fatalf("physical ranges overlap: %#x vs %#x", tr.RA, tr2.RA)
	}
	if _, err := as.Translate(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("want ErrUnmapped, got %v", err)
	}
	if _, err := as.Translate(r2.End()); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("end of region must be unmapped, got %v", err)
	}
}

func TestRegionLookup(t *testing.T) {
	as := NewAddressSpace()
	// Insert out of order; lookup must still work via sorted search.
	if _, err := as.AddRegion("hi", 1<<30, 1<<20, Page4K, false); err != nil {
		t.Fatal(err)
	}
	if _, err := as.AddRegion("lo", 1<<20, 1<<20, Page4K, false); err != nil {
		t.Fatal(err)
	}
	if r := as.Region(1<<20 + 5); r == nil || r.Name != "lo" {
		t.Fatalf("Region = %+v", r)
	}
	if r := as.Region(1<<30 + 5); r == nil || r.Name != "hi" {
		t.Fatalf("Region = %+v", r)
	}
	if as.Region(0) != nil {
		t.Fatal("hole lookup should be nil")
	}
	if as.RegionByName("lo") == nil || as.RegionByName("nope") != nil {
		t.Fatal("RegionByName wrong")
	}
	if len(as.Regions()) != 2 || as.Regions()[0].Name != "lo" {
		t.Fatal("Regions not sorted")
	}
}

// Property: translation is a bijection within a region — distinct EAs map to
// distinct RAs and offsets are preserved.
func TestTranslateOffsetPreserving(t *testing.T) {
	as := NewAddressSpace()
	r, err := as.AddRegion("heap", 16<<20, 64<<20, Page16M, false)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := as.Translate(r.Base)
	f := func(off uint32) bool {
		o := uint64(off) % r.Size
		tr, err := as.Translate(r.Base + o)
		if err != nil {
			return false
		}
		return tr.RA == base.RA+o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLayout(t *testing.T) {
	l, err := NewLayout(DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	if l.JavaHeap.Size != 1<<30 {
		t.Fatalf("heap size = %d", l.JavaHeap.Size)
	}
	if l.JavaHeap.PageSize != Page16M {
		t.Fatal("heap must default to large pages")
	}
	if l.JITCode.PageSize != Page4K {
		t.Fatal("JIT code must default to 4K pages (the paper's unexploited optimization)")
	}
	if !l.Kernel.Kernel {
		t.Fatal("kernel region must be privileged")
	}
	// All named regions resolvable and distinct.
	names := []string{"javaheap", "gcmeta", "jitcode", "jvmnative", "wasnative",
		"webserver", "db2", "dbbuffer", "stacks", "javastatic", "kernel"}
	for _, n := range names {
		if l.Space.RegionByName(n) == nil {
			t.Fatalf("missing region %q", n)
		}
	}
	if len(l.Space.Regions()) != len(names) {
		t.Fatalf("region count = %d, want %d", len(l.Space.Regions()), len(names))
	}
	// Heap pages: 1 GB / 16 MB = 64 pages — the reason large pages fit in
	// the TLB's large-page working set.
	if l.JavaHeap.PageCount() != 64 {
		t.Fatalf("heap page count = %d, want 64", l.JavaHeap.PageCount())
	}
}

func TestLayoutSmallPagesHeap(t *testing.T) {
	cfg := DefaultLayoutConfig()
	cfg.HeapPageSize = Page4K
	l, err := NewLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 GB / 4 KB = 262144 pages: the working set the baseline (non-large-
	// page) configuration must cover.
	if l.JavaHeap.PageCount() != 262144 {
		t.Fatalf("heap page count = %d", l.JavaHeap.PageCount())
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := NewLayout(LayoutConfig{}); err == nil {
		t.Fatal("zero heap accepted")
	}
}

func TestLayoutDefaultsFilled(t *testing.T) {
	l, err := NewLayout(LayoutConfig{HeapBytes: 256 << 20, HeapPageSize: Page16M})
	if err != nil {
		t.Fatal(err)
	}
	if l.JITCode.Size == 0 || l.DBBuffer.Size == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestTotalMapped(t *testing.T) {
	l, err := NewLayout(DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, r := range l.Space.Regions() {
		want += r.Size
	}
	if got := l.Space.TotalMapped(); got != want {
		t.Fatalf("TotalMapped = %d, want %d", got, want)
	}
	if want < 3<<30 {
		t.Fatalf("layout suspiciously small: %d", want)
	}
}
