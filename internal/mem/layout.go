package mem

import "fmt"

// LayoutConfig describes the tunable parts of the SUT address space. The
// defaults reproduce the paper's configuration: a 1 GB Java heap in 16 MB
// large pages, everything else (including JIT-compiled code) in 4 KB pages —
// the paper points out that moving code to large pages is an unexploited
// optimization (Section 4.2.2).
type LayoutConfig struct {
	HeapBytes     uint64   // Java heap size (default 1 GB)
	HeapPageSize  PageSize // paper default: Page16M
	CodePageSize  PageSize // page size for JIT code cache (paper: Page4K)
	JITCodeBytes  uint64   // JIT code cache size (default 64 MB: "multi-megabyte code footprint")
	DBBufferBytes uint64   // DB2 buffer pool + RAM disk cache (default 2 GB)
}

// DefaultLayoutConfig returns the paper's configuration.
func DefaultLayoutConfig() LayoutConfig {
	return LayoutConfig{
		HeapBytes:     1 << 30,
		HeapPageSize:  Page16M,
		CodePageSize:  Page4K,
		JITCodeBytes:  64 << 20,
		DBBufferBytes: 2 << 30,
	}
}

// Layout bundles the address space with named handles to the regions the
// simulators address directly.
type Layout struct {
	Space *AddressSpace

	JavaHeap  *Region // object heap (large pages in the tuned system)
	GCMeta    *Region // GC side structures (mark bits, work queues) — also large pages
	JITCode   *Region // JIT code cache: I-side working set of JITed Java
	JVMNative *Region // JVM + JIT compiler native code
	WASNative *Region // WebSphere/EJS/MQ/DB2-client native code and data
	WebServer *Region // web server code + data
	DB2       *Region // database server code
	DBBuffer  *Region // DB buffer pool (RAM disk resident data)
	Stacks    *Region // Java + native thread stacks
	JavaStat  *Region // class metadata, interned strings, statics
	Kernel    *Region // privileged kernel text/data
}

const align16M = 16 << 20

func roundUp(v, a uint64) uint64 { return (v + a - 1) / a * a }

// NewLayout builds the standard SUT address space.
func NewLayout(cfg LayoutConfig) (*Layout, error) {
	if cfg.HeapBytes == 0 {
		return nil, fmt.Errorf("mem: zero heap size")
	}
	if cfg.JITCodeBytes == 0 {
		cfg.JITCodeBytes = 64 << 20
	}
	if cfg.DBBufferBytes == 0 {
		cfg.DBBufferBytes = 2 << 30
	}
	as := NewAddressSpace()
	l := &Layout{Space: as}

	// Lay regions out bottom-up with 16 MB alignment everywhere so page-size
	// choices can vary per experiment without re-planning the map.
	next := uint64(1) << 32 // start at 4 GB; low memory left to the OS loader
	add := func(name string, size uint64, ps PageSize, kernel bool) (*Region, error) {
		size = roundUp(size, ps.Bytes())
		base := roundUp(next, align16M)
		r, err := as.AddRegion(name, base, size, ps, kernel)
		if err != nil {
			return nil, err
		}
		next = base + size
		return r, nil
	}

	var err error
	if l.JavaHeap, err = add("javaheap", cfg.HeapBytes, cfg.HeapPageSize, false); err != nil {
		return nil, err
	}
	if l.GCMeta, err = add("gcmeta", 64<<20, cfg.HeapPageSize, false); err != nil {
		return nil, err
	}
	if l.JITCode, err = add("jitcode", cfg.JITCodeBytes, cfg.CodePageSize, false); err != nil {
		return nil, err
	}
	if l.JVMNative, err = add("jvmnative", 32<<20, Page4K, false); err != nil {
		return nil, err
	}
	if l.WASNative, err = add("wasnative", 64<<20, Page4K, false); err != nil {
		return nil, err
	}
	if l.WebServer, err = add("webserver", 32<<20, Page4K, false); err != nil {
		return nil, err
	}
	if l.DB2, err = add("db2", 48<<20, Page4K, false); err != nil {
		return nil, err
	}
	if l.DBBuffer, err = add("dbbuffer", cfg.DBBufferBytes, Page4K, false); err != nil {
		return nil, err
	}
	if l.Stacks, err = add("stacks", 256<<20, Page4K, false); err != nil {
		return nil, err
	}
	if l.JavaStat, err = add("javastatic", 128<<20, Page4K, false); err != nil {
		return nil, err
	}
	if l.Kernel, err = add("kernel", 128<<20, Page4K, true); err != nil {
		return nil, err
	}
	return l, nil
}
