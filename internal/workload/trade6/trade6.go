// Package trade6 is the Trade6-like trading workload the paper
// cross-checks its GC observations on (Section 6): read-heavier (quotes
// dominate), a little less allocation per request, and a harder lean on
// the Java library (serialization of market data). All four classes are
// web-facing.
package trade6

import (
	"fmt"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
	"jasworkload/internal/workload"
)

// Sequence slots in workload.DBCtx.Seq.
const (
	seqTradeOrder = iota
	seqHolding
)

// Pack returns the workload description.
func Pack() *workload.Pack {
	return &workload.Pack{
		PackName:        "trade6",
		PackDescription: "Trade6-like trading workload (the paper's Section 6 GC cross-check)",
		PackClasses: []workload.Class{
			{
				Name: "Buy", Web: true, RatePerIR: 0.25,
				BaseInstr: 110000, JitterFrac: 0.25, AllocBytes: 430 << 10, AllocObjects: 110,
				WebShare: 0.10, DBShare: 0.24, KernelShare: 0.17, JITedShareOfWAS: 0.50,
				MethodCalls: 85, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompWebSphere: 1.3},
				DriftBoost: 1.6, DataBoost: 1.5,
			},
			{
				Name: "Sell", Web: true, RatePerIR: 0.20,
				BaseInstr: 105000, JitterFrac: 0.25, AllocBytes: 410 << 10, AllocObjects: 105,
				WebShare: 0.10, DBShare: 0.24, KernelShare: 0.17, JITedShareOfWAS: 0.50,
				MethodCalls: 80, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompOther: 1.3},
				DriftBoost: 1.0, DataBoost: 1.0,
			},
			{
				Name: "Quote", Web: true, RatePerIR: 0.85,
				BaseInstr: 55000, JitterFrac: 0.3, AllocBytes: 300 << 10, AllocObjects: 80,
				WebShare: 0.13, DBShare: 0.18, KernelShare: 0.16, JITedShareOfWAS: 0.54,
				MethodCalls: 45, PersistCrumbs: 0,
				MethodBias: map[jvm.Component]float64{jvm.CompJavaLib: 1.5},
				DriftBoost: 0.4, DataBoost: 0.5,
			},
			{
				Name: "Portfolio", Web: true, RatePerIR: 0.30,
				BaseInstr: 90000, JitterFrac: 0.25, AllocBytes: 390 << 10, AllocObjects: 100,
				WebShare: 0.11, DBShare: 0.22, KernelShare: 0.16, JITedShareOfWAS: 0.52,
				MethodCalls: 70, PersistCrumbs: 1,
				MethodBias: map[jvm.Component]float64{jvm.CompEJS: 1.8},
				DriftBoost: 3.0, DataBoost: 2.6,
			},
		},
		AllocBehaviour: workload.DefaultAllocProfile(),
		Load: func(d *db.Database, ir int, seed int64) error {
			return db.LoadTrade(d, ir, seed)
		},
		Run:   runDB,
		Pages: PoolPages,
	}
}

func init() { workload.Register(Pack()) }

// PoolPages estimates the trading working set in 4 KB pages.
func PoolPages(ir int) int {
	sz := db.TradeSizesFor(ir)
	return sz.Accounts/32 + sz.Quotes/64 + sz.Holdings/48 + 2
}

// Class indices, in PackClasses order.
const (
	ClassBuy = iota
	ClassSell
	ClassQuote
	ClassPortfolio
)

func runDB(ctx *workload.DBCtx, class int) error {
	switch class {
	case ClassBuy:
		return dbBuy(ctx)
	case ClassSell:
		return dbSell(ctx)
	case ClassQuote:
		return dbQuote(ctx)
	case ClassPortfolio:
		return dbPortfolio(ctx)
	default:
		return fmt.Errorf("trade6: unknown request class %d", class)
	}
}

func dbBuy(ctx *workload.DBCtx) error {
	sz := db.TradeSizesFor(ctx.IR)
	tx := ctx.DB.Begin()
	acct := db.Value(ctx.Rng.Intn(sz.Accounts))
	if _, err := tx.Get(db.TAccounts, acct); err != nil {
		return abortWith(tx, err)
	}
	sym := db.Value(ctx.Rng.Intn(sz.Quotes))
	if _, err := tx.Get(db.TQuotes, sym); err != nil {
		return abortWith(tx, err)
	}
	ctx.Seq[seqTradeOrder]++
	if err := tx.Insert(db.TTradeOrders, db.Row{ctx.Seq[seqTradeOrder], acct, sym, 0}); err != nil {
		return abortWith(tx, err)
	}
	ctx.Seq[seqHolding]++
	hk := db.Value(sz.Holdings) + ctx.Seq[seqHolding]
	if err := tx.Insert(db.THoldings, db.Row{hk, acct, sym, db.Value(1 + ctx.Rng.Intn(100))}); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(db.TAccounts, acct, 1, db.Value(ctx.Rng.Intn(90000))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func dbSell(ctx *workload.DBCtx) error {
	sz := db.TradeSizesFor(ctx.IR)
	tx := ctx.DB.Begin()
	acct := db.Value(ctx.Rng.Intn(sz.Accounts))
	if _, err := tx.Get(db.TAccounts, acct); err != nil {
		return abortWith(tx, err)
	}
	lo := db.Value(ctx.Rng.Intn(sz.Holdings))
	rows, err := ctx.DB.Scan(db.THoldings, lo, lo+40, 5)
	if err != nil {
		return abortWith(tx, err)
	}
	if len(rows) > 0 {
		if err := tx.Delete(db.THoldings, rows[0][0]); err != nil {
			return abortWith(tx, err)
		}
	}
	ctx.Seq[seqTradeOrder]++
	if err := tx.Insert(db.TTradeOrders, db.Row{ctx.Seq[seqTradeOrder], acct, db.Value(ctx.Rng.Intn(sz.Quotes)), 1}); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(db.TAccounts, acct, 1, db.Value(ctx.Rng.Intn(90000))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func dbQuote(ctx *workload.DBCtx) error {
	sz := db.TradeSizesFor(ctx.IR)
	for i := 0; i < 3; i++ {
		if _, err := ctx.DB.Get(db.TQuotes, db.Value(ctx.Rng.Intn(sz.Quotes))); err != nil {
			return err
		}
	}
	lo := db.Value(ctx.Rng.Intn(sz.Quotes))
	_, err := ctx.DB.Scan(db.TQuotes, lo, lo+8, 5)
	return err
}

func dbPortfolio(ctx *workload.DBCtx) error {
	sz := db.TradeSizesFor(ctx.IR)
	acct := db.Value(ctx.Rng.Intn(sz.Accounts))
	if _, err := ctx.DB.Get(db.TAccounts, acct); err != nil {
		return err
	}
	lo := db.Value(ctx.Rng.Intn(sz.Holdings))
	if _, err := ctx.DB.Scan(db.THoldings, lo, lo+60, 10); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if _, err := ctx.DB.Get(db.TQuotes, db.Value(ctx.Rng.Intn(sz.Quotes))); err != nil {
			return err
		}
	}
	return nil
}

func abortWith(tx *db.Txn, err error) error {
	if aerr := tx.Abort(); aerr != nil {
		return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
	}
	return err
}
