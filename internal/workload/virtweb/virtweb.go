// Package virtweb is a virtualized web-application workload pack: a
// consolidation tenant serving many small, short HTTP requests. Compared
// with jas2004 it has lighter per-request instruction counts, a mix that
// leans toward the read classes that dominate the diurnal peak (the rates
// below model the busy hour of the cycle; the mix is web-only, there is
// no RMI traffic), a much larger kernel share (virtualization exits,
// vswitch processing, and context switches all land in SegKernel), and
// elevated drift/data boosts that model the poor page locality of a
// consolidated host whose TLB and caches are shared with other tenants.
package virtweb

import (
	"fmt"
	"math/rand"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
	"jasworkload/internal/workload"
)

// Schema: a small content/session store typical of a web tenant. Column 0
// is the primary key.
const (
	TPages    = "pages"    // key, author, kind
	TAssets   = "assets"   // key, page, bytes
	TAccounts = "accounts" // key, plan, created
	TComments = "comments" // key, page, account
	TCarts    = "carts"    // key, account, items, total
)

// Sequence slots in workload.DBCtx.Seq.
const (
	seqComment = iota
	seqCart
)

type sizes struct {
	Pages, Assets, Accounts, Comments int
}

func sizesFor(ir int) sizes {
	return sizes{Pages: ir * 60, Assets: ir * 180, Accounts: ir * 90, Comments: ir * 120}
}

// Pack returns the workload description.
func Pack() *workload.Pack {
	return &workload.Pack{
		PackName:        "virtweb",
		PackDescription: "virtualized web-app tenant: many small HTTP classes, high kernel/TLB pressure, busy-hour diurnal mix",
		PackClasses: []workload.Class{
			{
				// Static-ish page render: the bulk of the diurnal peak.
				Name: "PageView", Web: true, RatePerIR: 0.95,
				BaseInstr: 28000, JitterFrac: 0.35, AllocBytes: 120 << 10, AllocObjects: 55,
				WebShare: 0.30, DBShare: 0.08, KernelShare: 0.27, JITedShareOfWAS: 0.46,
				MethodCalls: 35, PersistCrumbs: 0,
				MethodBias: map[jvm.Component]float64{jvm.CompWebSphere: 1.6},
				DriftBoost: 1.8, DataBoost: 1.6,
			},
			{
				// Asset fetch: tiny CPU, kernel-dominated (network + page cache).
				Name: "AssetFetch", Web: true, RatePerIR: 0.80,
				BaseInstr: 20000, JitterFrac: 0.30, AllocBytes: 80 << 10, AllocObjects: 35,
				WebShare: 0.32, DBShare: 0.05, KernelShare: 0.30, JITedShareOfWAS: 0.44,
				MethodCalls: 25, PersistCrumbs: 0,
				MethodBias: map[jvm.Component]float64{jvm.CompJavaLib: 1.4},
				DriftBoost: 2.0, DataBoost: 1.8,
			},
			{
				// Search over the content store.
				Name: "Search", Web: true, RatePerIR: 0.35,
				BaseInstr: 60000, JitterFrac: 0.30, AllocBytes: 260 << 10, AllocObjects: 80,
				WebShare: 0.20, DBShare: 0.22, KernelShare: 0.26, JITedShareOfWAS: 0.48,
				MethodCalls: 55, PersistCrumbs: 1,
				MethodBias: map[jvm.Component]float64{jvm.CompJavaLib: 1.5, jvm.CompOther: 1.2},
				DriftBoost: 1.6, DataBoost: 2.0,
			},
			{
				// Login/session establishment.
				Name: "Login", Web: true, RatePerIR: 0.25,
				BaseInstr: 45000, JitterFrac: 0.25, AllocBytes: 200 << 10, AllocObjects: 70,
				WebShare: 0.24, DBShare: 0.14, KernelShare: 0.28, JITedShareOfWAS: 0.46,
				MethodCalls: 45, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompEJS: 1.4},
				DriftBoost: 1.7, DataBoost: 1.4,
			},
			{
				// Post a comment (the main write path at the peak).
				Name: "PostComment", Web: true, RatePerIR: 0.20,
				BaseInstr: 52000, JitterFrac: 0.28, AllocBytes: 240 << 10, AllocObjects: 75,
				WebShare: 0.22, DBShare: 0.20, KernelShare: 0.26, JITedShareOfWAS: 0.47,
				MethodCalls: 50, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompWebSphere: 1.3, jvm.CompEJS: 1.2},
				DriftBoost: 1.5, DataBoost: 1.7,
			},
			{
				// Cart checkout: the heaviest class, still far below jas2004's.
				Name: "Checkout", Web: true, RatePerIR: 0.15,
				BaseInstr: 58000, JitterFrac: 0.25, AllocBytes: 280 << 10, AllocObjects: 85,
				WebShare: 0.20, DBShare: 0.24, KernelShare: 0.26, JITedShareOfWAS: 0.48,
				MethodCalls: 60, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompEJS: 1.5},
				DriftBoost: 1.5, DataBoost: 1.8,
			},
		},
		// Small, short-lived objects: request/response buffers and session
		// fragments; large allocations are rare.
		AllocBehaviour: workload.AllocProfile{
			SmallCum: 0.82, MediumCum: 0.98,
			SmallBase: 48, SmallSpan: 336,
			MediumBase: 768, MediumSpan: 4352,
			LargeBase: 8192, LargeSpan: 24576,
		},
		Load:  loadDB,
		Run:   runDB,
		Pages: PoolPages,
		// A consolidated tenant's code working set is wider relative to its
		// cycles (more framework glue, less hot application code), which is
		// the i-side analogue of its TLB pressure.
		Profile: func(p jvm.ProfileConfig) jvm.ProfileConfig {
			p.WarmShare = 0.52
			p.ComponentMix = [jvm.NumComponents]float64{
				jvm.CompWebSphere: 0.48,
				jvm.CompEJS:       0.16,
				jvm.CompJavaLib:   0.18,
				jvm.CompJas2004:   0.02,
				jvm.CompOther:     0.16,
			}
			return p
		},
	}
}

func init() { workload.Register(Pack()) }

// PoolPages estimates the tenant's buffer-pool working set in 4 KB pages.
func PoolPages(ir int) int {
	sz := sizesFor(ir)
	return sz.Pages/48 + sz.Assets/64 + sz.Accounts/48 + sz.Comments/48 + 2
}

// Class indices, in PackClasses order.
const (
	ClassPageView = iota
	ClassAssetFetch
	ClassSearch
	ClassLogin
	ClassPostComment
	ClassCheckout
)

func loadDB(d *db.Database, ir int, seed int64) error {
	if ir <= 0 {
		return fmt.Errorf("virtweb: bad injection rate %d", ir)
	}
	rng := rand.New(rand.NewSource(seed))
	sz := sizesFor(ir)
	type tdef struct {
		name string
		cols int
		rpp  int
	}
	for _, td := range []tdef{
		{TPages, 3, 64},
		{TAssets, 3, 64},
		{TAccounts, 3, 64},
		{TComments, 3, 48},
		{TCarts, 4, 32},
	} {
		if _, err := d.CreateTable(td.name, td.cols, td.rpp); err != nil {
			return err
		}
	}
	tx := d.Begin()
	for i := 0; i < sz.Pages; i++ {
		if err := tx.Insert(TPages, db.Row{db.Value(i), db.Value(rng.Intn(sz.Accounts)), db.Value(rng.Intn(4))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Assets; i++ {
		if err := tx.Insert(TAssets, db.Row{db.Value(i), db.Value(rng.Intn(sz.Pages)), db.Value(512 + rng.Intn(64<<10))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Accounts; i++ {
		if err := tx.Insert(TAccounts, db.Row{db.Value(i), db.Value(rng.Intn(3)), db.Value(rng.Intn(2000))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Comments; i++ {
		if err := tx.Insert(TComments, db.Row{db.Value(i), db.Value(rng.Intn(sz.Pages)), db.Value(rng.Intn(sz.Accounts))}); err != nil {
			return err
		}
	}
	return tx.Commit()
}

func runDB(ctx *workload.DBCtx, class int) error {
	switch class {
	case ClassPageView:
		return dbPageView(ctx)
	case ClassAssetFetch:
		return dbAssetFetch(ctx)
	case ClassSearch:
		return dbSearch(ctx)
	case ClassLogin:
		return dbLogin(ctx)
	case ClassPostComment:
		return dbPostComment(ctx)
	case ClassCheckout:
		return dbCheckout(ctx)
	default:
		return fmt.Errorf("virtweb: unknown request class %d", class)
	}
}

// dbPageView: one page read plus a short comment scan.
func dbPageView(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	page := db.Value(ctx.Rng.Intn(sz.Pages))
	if _, err := ctx.DB.Get(TPages, page); err != nil {
		return err
	}
	lo := db.Value(ctx.Rng.Intn(sz.Comments))
	_, err := ctx.DB.Scan(TComments, lo, lo+10, 5)
	return err
}

// dbAssetFetch: two point reads.
func dbAssetFetch(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	if _, err := ctx.DB.Get(TAssets, db.Value(ctx.Rng.Intn(sz.Assets))); err != nil {
		return err
	}
	_, err := ctx.DB.Get(TPages, db.Value(ctx.Rng.Intn(sz.Pages)))
	return err
}

// dbSearch: a moderate scan over the content store.
func dbSearch(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	lo := db.Value(ctx.Rng.Intn(sz.Pages))
	rows, err := ctx.DB.Scan(TPages, lo, lo+30, 12)
	if err != nil {
		return err
	}
	if len(rows) > 0 {
		_, err = ctx.DB.Get(TAssets, db.Value(ctx.Rng.Intn(sz.Assets)))
	}
	return err
}

// dbLogin: read the account and refresh the cart row.
func dbLogin(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	acct := db.Value(ctx.Rng.Intn(sz.Accounts))
	tx := ctx.DB.Begin()
	if _, err := tx.Get(TAccounts, acct); err != nil {
		return abortWith(tx, err)
	}
	ctx.Seq[seqCart]++
	if err := tx.Insert(TCarts, db.Row{db.Value(1<<29) + ctx.Seq[seqCart], acct, 0, 0}); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

// dbPostComment: append a comment and touch its page.
func dbPostComment(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	tx := ctx.DB.Begin()
	ctx.Seq[seqComment]++
	row := db.Row{
		db.Value(sz.Comments) + ctx.Seq[seqComment],
		db.Value(ctx.Rng.Intn(sz.Pages)),
		db.Value(ctx.Rng.Intn(sz.Accounts)),
	}
	if err := tx.Insert(TComments, row); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(TPages, db.Value(ctx.Rng.Intn(sz.Pages)), 2, db.Value(ctx.Rng.Intn(4))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

// dbCheckout: read a cart (if the session created one), mark it ordered.
func dbCheckout(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	tx := ctx.DB.Begin()
	if ctx.Seq[seqCart] > 0 {
		key := db.Value(1<<29) + 1 + db.Value(ctx.Rng.Intn(int(ctx.Seq[seqCart])))
		if _, err := tx.Get(TCarts, key); err != nil {
			return abortWith(tx, err)
		}
		if err := tx.Update(TCarts, key, 3, db.Value(100+ctx.Rng.Intn(90000))); err != nil {
			return abortWith(tx, err)
		}
	} else if _, err := tx.Get(TAccounts, db.Value(ctx.Rng.Intn(sz.Accounts))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func abortWith(tx *db.Txn, err error) error {
	if aerr := tx.Abort(); aerr != nil {
		return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
	}
	return err
}
