// Package workload defines the pluggable workload abstraction: everything
// the characterization pipeline needs to know about one benchmark subject.
// The pipeline itself (HPM windows, tprof, verbosegc, CPI correlation) is
// workload-agnostic methodology; a Workload supplies the subject — its
// request classes (names, web/RMI grouping, run-rule response-time limits),
// the arrival mix and how it scales with the injection rate, the database
// shape and initial population, the method-weight (JIT/tprof) profile, and
// the allocation behaviour the JVM model reproduces.
//
// Packs register themselves (usually from an init function) under a unique
// name; internal/core resolves RunConfig.Workload against this registry.
// The paper's jas2004 subject is just the default registered pack.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
)

// Default response-time limits (the benchmark run rules bound the 90th
// percentile): 2 s for web-driven interactions, 5 s for RMI-style ones.
const (
	WebDeadlineMS = 2000.0
	RMIDeadlineMS = 5000.0
)

// MaxClasses bounds how many request classes a pack may declare; the
// per-class accounting throughout the pipeline is sized for small class
// sets, and request indices travel as small integers.
const MaxClasses = 64

// Class describes one request class of a workload: its arrival behaviour,
// its run-rule limit, and the execution script the application server
// plays per request.
type Class struct {
	Name string
	// Web marks browser-driven interactions; the rest are RMI-style.
	Web bool
	// RatePerIR is the class's arrival rate in requests/second per unit of
	// injection rate.
	RatePerIR float64
	// DeadlineMS is the run-rule limit on the 90th-percentile response
	// time (0 selects the default for the Web/RMI grouping).
	DeadlineMS float64

	// Execution script.
	BaseInstr  int     // mean instructions per request
	JitterFrac float64 // uniform +/- fraction applied to BaseInstr

	// Allocation behaviour.
	AllocBytes   int // bytes allocated per request (approximate target)
	AllocObjects int // objects allocated per request

	// CPU attribution shares; the WAS share is the remainder.
	WebShare        float64
	DBShare         float64
	KernelShare     float64
	JITedShareOfWAS float64

	MethodCalls   int // distinct hot-method invocations per request
	PersistCrumbs int // session objects that outlive the request

	// MethodBias skews the per-class method sampler toward a component
	// (nil or missing entries mean weight 1.0).
	MethodBias map[jvm.Component]float64

	// Page-locality knobs for the detail-mode trace generator: how fast
	// the instruction walk drifts to new pages and how spread the data
	// working set is (0,0 selects the generator defaults 0.4/0.5).
	DriftBoost float64
	DataBoost  float64
}

// Deadline resolves the class's run-rule limit.
func (c Class) Deadline() float64 {
	if c.DeadlineMS > 0 {
		return c.DeadlineMS
	}
	if c.Web {
		return WebDeadlineMS
	}
	return RMIDeadlineMS
}

// Bias returns the method-sampler weight for a component.
func (c Class) Bias(comp jvm.Component) float64 {
	if b, ok := c.MethodBias[comp]; ok {
		return b
	}
	return 1.0
}

// Boosts resolves the trace-locality knobs.
func (c Class) Boosts() (drift, data float64) {
	if c.DriftBoost == 0 && c.DataBoost == 0 {
		return 0.4, 0.5
	}
	return c.DriftBoost, c.DataBoost
}

// AllocProfile shapes the per-request allocation size distribution: three
// log-ish buckets (small / medium / large) with cumulative probabilities.
// An object's size is Base + Intn(Span) of its bucket.
type AllocProfile struct {
	SmallCum   float64 // P(small); P(medium) = MediumCum - SmallCum
	MediumCum  float64
	SmallBase  int
	SmallSpan  int
	MediumBase int
	MediumSpan int
	LargeBase  int
	LargeSpan  int
}

// DefaultAllocProfile returns the jas2004-calibrated distribution: mostly
// small header-ish objects, some buffer-sized, occasionally a large array.
func DefaultAllocProfile() AllocProfile {
	return AllocProfile{
		SmallCum: 0.70, MediumCum: 0.95,
		SmallBase: 64, SmallSpan: 448,
		MediumBase: 1024, MediumSpan: 7168,
		LargeBase: 16384, LargeSpan: 49152,
	}
}

// DBCtx is the execution context a pack's per-request database script runs
// in. Rng is the application server's request RNG (shared so the draw
// order of a run is a single deterministic stream), and Seq holds the
// pack's monotonic key sequences (order numbers and the like) so inserted
// keys never collide with the initial population.
type DBCtx struct {
	DB  *db.Database
	Rng *rand.Rand
	IR  int
	Seq [4]db.Value
}

// Workload is one benchmark subject. Implementations must be usable
// concurrently from independent simulations (the methods are read-only
// descriptions; all mutable state lives in the simulation).
type Workload interface {
	// Name is the registry key and appears in artifact keys, job IDs,
	// report labels, and figure titles.
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Classes returns the request classes in arrival-accounting order.
	Classes() []Class
	// Alloc returns the allocation size distribution.
	Alloc() AllocProfile
	// LoadDB creates and populates the pack's schema at the given IR.
	LoadDB(d *db.Database, ir int, seed int64) error
	// RunDB plays one request's database script for a class index.
	RunDB(ctx *DBCtx, class int) error
	// PoolPages estimates the pack's working set in 4 KB database pages at
	// the given IR; the disk-starved comparison sizes its deliberately
	// undersized buffer pool from it.
	PoolPages(ir int) int
	// TuneProfile maps the default method-weight profile to the pack's
	// (identity for subjects with the paper's flat profile).
	TuneProfile(p jvm.ProfileConfig) jvm.ProfileConfig
}

// Pack is the concrete Workload most packs use: a plain description
// struct plus the two database hooks.
type Pack struct {
	PackName        string
	PackDescription string
	PackClasses     []Class
	AllocBehaviour  AllocProfile
	Load            func(d *db.Database, ir int, seed int64) error
	Run             func(ctx *DBCtx, class int) error
	Pages           func(ir int) int
	// Profile, if non-nil, adjusts the method-weight profile.
	Profile func(p jvm.ProfileConfig) jvm.ProfileConfig
}

// Name implements Workload.
func (p *Pack) Name() string { return p.PackName }

// Description implements Workload.
func (p *Pack) Description() string { return p.PackDescription }

// Classes implements Workload.
func (p *Pack) Classes() []Class { return p.PackClasses }

// Alloc implements Workload.
func (p *Pack) Alloc() AllocProfile { return p.AllocBehaviour }

// LoadDB implements Workload.
func (p *Pack) LoadDB(d *db.Database, ir int, seed int64) error { return p.Load(d, ir, seed) }

// RunDB implements Workload.
func (p *Pack) RunDB(ctx *DBCtx, class int) error { return p.Run(ctx, class) }

// PoolPages implements Workload.
func (p *Pack) PoolPages(ir int) int { return p.Pages(ir) }

// TuneProfile implements Workload.
func (p *Pack) TuneProfile(cfg jvm.ProfileConfig) jvm.ProfileConfig {
	if p.Profile == nil {
		return cfg
	}
	return p.Profile(cfg)
}

// Validate checks a workload description for structural sanity.
func Validate(w Workload) error {
	if w == nil {
		return fmt.Errorf("workload: nil workload")
	}
	if w.Name() == "" {
		return fmt.Errorf("workload: empty name")
	}
	classes := w.Classes()
	if len(classes) == 0 {
		return fmt.Errorf("workload %s: no request classes", w.Name())
	}
	if len(classes) > MaxClasses {
		return fmt.Errorf("workload %s: %d request classes (max %d)", w.Name(), len(classes), MaxClasses)
	}
	var total float64
	for i, c := range classes {
		if c.Name == "" {
			return fmt.Errorf("workload %s: class %d has no name", w.Name(), i)
		}
		if c.RatePerIR < 0 {
			return fmt.Errorf("workload %s: class %s has negative rate", w.Name(), c.Name)
		}
		if c.BaseInstr <= 0 || c.MethodCalls <= 0 {
			return fmt.Errorf("workload %s: class %s has no execution script", w.Name(), c.Name)
		}
		total += c.RatePerIR
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: arrival mix sums to zero", w.Name())
	}
	return nil
}

// DefaultName is the pack RunConfig.Workload == "" resolves to.
const DefaultName = "jas2004"

var registry = struct {
	sync.Mutex
	packs map[string]Workload
}{packs: map[string]Workload{}}

// Register adds a workload under its name; it panics on duplicates or on
// an invalid description, since packs register from init functions.
func Register(w Workload) {
	if err := Validate(w); err != nil {
		panic(err)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.packs[w.Name()]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", w.Name()))
	}
	registry.packs[w.Name()] = w
}

// Get resolves a registered workload; "" means the default pack.
func Get(name string) (Workload, error) {
	if name == "" {
		name = DefaultName
	}
	registry.Lock()
	defer registry.Unlock()
	w, ok := registry.packs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (registered: %v)", name, namesLocked())
	}
	return w, nil
}

// Names lists the registered workloads, sorted.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry.packs))
	for name := range registry.packs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
