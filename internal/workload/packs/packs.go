// Package packs registers every workload pack shipped with the repo.
// Importing it (usually blank) is the one-stop way to make the full
// registry available; individual packs can also be imported directly.
package packs

import (
	_ "jasworkload/internal/workload/dataanalytics"
	_ "jasworkload/internal/workload/jas2004"
	_ "jasworkload/internal/workload/trade6"
	_ "jasworkload/internal/workload/virtweb"
)
