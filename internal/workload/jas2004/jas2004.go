// Package jas2004 is the paper's primary subject, extracted verbatim into
// a workload pack: the SPECjAppServer2004-like Dealer/Manufacturing
// application. The Dealer domain's web transactions (Purchase, Manage,
// Browse) split 25/25/50 at 1.0 tx/s per IR and the Manufacturing domain
// adds 0.6 CreateVehicle work orders/s per IR, for the benchmark's ~1.6
// JOPS per IR. The default characterization run is this pack; its quick
// report is pinned byte-for-byte by testdata/golden_report_quick.md.
package jas2004

import (
	"fmt"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
	"jasworkload/internal/workload"
)

// Sequence slots in workload.DBCtx.Seq.
const (
	seqOrder = iota
	seqWorkOrder
)

// Pack returns the workload description. Everything here — class scripts,
// arrival mix, method biases, trace-locality knobs — is the calibration
// the golden report pins; do not retune without regenerating the goldens.
func Pack() *workload.Pack {
	return &workload.Pack{
		PackName:        "jas2004",
		PackDescription: "SPECjAppServer2004-like Dealer/Manufacturing J2EE workload (the paper's subject)",
		PackClasses: []workload.Class{
			{
				Name: "Purchase", Web: true, RatePerIR: 0.25,
				BaseInstr: 125000, JitterFrac: 0.25, AllocBytes: 520 << 10, AllocObjects: 130,
				WebShare: 0.09, DBShare: 0.22, KernelShare: 0.17, JITedShareOfWAS: 0.50,
				MethodCalls: 95, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompWebSphere: 1.3},
				DriftBoost: 1.6, DataBoost: 1.5,
			},
			{
				Name: "Manage", Web: true, RatePerIR: 0.25,
				BaseInstr: 95000, JitterFrac: 0.25, AllocBytes: 380 << 10, AllocObjects: 100,
				WebShare: 0.10, DBShare: 0.20, KernelShare: 0.17, JITedShareOfWAS: 0.50,
				MethodCalls: 75, PersistCrumbs: 1,
				MethodBias: map[jvm.Component]float64{jvm.CompOther: 1.3},
				DriftBoost: 1.0, DataBoost: 1.0,
			},
			{
				Name: "Browse", Web: true, RatePerIR: 0.50,
				BaseInstr: 72000, JitterFrac: 0.3, AllocBytes: 430 << 10, AllocObjects: 105,
				WebShare: 0.12, DBShare: 0.18, KernelShare: 0.16, JITedShareOfWAS: 0.52,
				MethodCalls: 60, PersistCrumbs: 1,
				MethodBias: map[jvm.Component]float64{jvm.CompJavaLib: 1.5},
				DriftBoost: 0.4, DataBoost: 0.5,
			},
			{
				Name: "CreateVehicle", Web: false, RatePerIR: 0.60,
				BaseInstr: 145000, JitterFrac: 0.25, AllocBytes: 560 << 10, AllocObjects: 140,
				WebShare: 0.0, DBShare: 0.24, KernelShare: 0.18, JITedShareOfWAS: 0.48,
				MethodCalls: 110, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompEJS: 1.8},
				DriftBoost: 3.0, DataBoost: 2.6,
			},
		},
		AllocBehaviour: workload.DefaultAllocProfile(),
		Load: func(d *db.Database, ir int, seed int64) error {
			cfg := db.DefaultScaleConfig(ir)
			cfg.Seed = seed
			return db.Load(d, cfg)
		},
		Run:   runDB,
		Pages: PoolPages,
	}
}

func init() { workload.Register(Pack()) }

// PoolPages estimates the benchmark's hot working set in 4 KB pages at the
// given IR (keys plus row payloads across the jas2004 tables).
func PoolPages(ir int) int {
	sz := db.SizesFor(db.DefaultScaleConfig(ir))
	return sz.Customers/32 + sz.Vehicles/64*2 + sz.Orders/32 +
		sz.OrderLines/48 + sz.Parts/64 + sz.WorkOrders/32 + 2
}

// Class indices, in PackClasses order.
const (
	ClassPurchase = iota
	ClassManage
	ClassBrowse
	ClassCreateVehicle
)

func runDB(ctx *workload.DBCtx, class int) error {
	switch class {
	case ClassPurchase:
		return dbPurchase(ctx)
	case ClassManage:
		return dbManage(ctx)
	case ClassBrowse:
		return dbBrowse(ctx)
	case ClassCreateVehicle:
		return dbCreateVehicle(ctx)
	default:
		return fmt.Errorf("jas2004: unknown request class %d", class)
	}
}

func sizes(ctx *workload.DBCtx) db.Sizes { return db.SizesFor(db.DefaultScaleConfig(ctx.IR)) }

func dbPurchase(ctx *workload.DBCtx) error {
	sz := sizes(ctx)
	tx := ctx.DB.Begin()
	if _, err := tx.Get(db.TCustomers, db.Value(ctx.Rng.Intn(sz.Customers))); err != nil {
		return abortWith(tx, err)
	}
	model := db.Value(ctx.Rng.Intn(sz.Vehicles))
	if _, err := tx.Get(db.TVehicles, model); err != nil {
		return abortWith(tx, err)
	}
	if _, err := tx.Get(db.TVehicles, db.Value(ctx.Rng.Intn(sz.Vehicles))); err != nil {
		return abortWith(tx, err)
	}
	ctx.Seq[seqOrder]++
	key := db.Value(sz.Orders) + ctx.Seq[seqOrder]
	if err := tx.Insert(db.TOrders, db.Row{key, db.Value(ctx.Rng.Intn(sz.Customers)), 0, 12000}); err != nil {
		return abortWith(tx, err)
	}
	for l := 0; l < 3; l++ {
		lineKey := key*8 + db.Value(l) + db.Value(sz.OrderLines)
		if err := tx.Insert(db.TOrderLines, db.Row{lineKey, key, model, 1}); err != nil {
			return abortWith(tx, err)
		}
	}
	if err := tx.Update(db.TInventory, model, 1, db.Value(ctx.Rng.Intn(400))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func dbManage(ctx *workload.DBCtx) error {
	sz := sizes(ctx)
	tx := ctx.DB.Begin()
	if _, err := tx.Get(db.TCustomers, db.Value(ctx.Rng.Intn(sz.Customers))); err != nil {
		return abortWith(tx, err)
	}
	lo := db.Value(ctx.Rng.Intn(sz.Orders))
	rows, err := ctx.DB.Scan(db.TOrders, lo, lo+40, 10)
	if err != nil {
		return abortWith(tx, err)
	}
	if len(rows) > 0 {
		if err := tx.Update(db.TOrders, rows[0][0], 2, 1); err != nil {
			return abortWith(tx, err)
		}
	}
	return tx.Commit()
}

func dbBrowse(ctx *workload.DBCtx) error {
	sz := sizes(ctx)
	lo := db.Value(ctx.Rng.Intn(sz.Vehicles))
	if _, err := ctx.DB.Scan(db.TVehicles, lo, lo+20, 13); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := ctx.DB.Get(db.TInventory, db.Value(ctx.Rng.Intn(sz.Vehicles))); err != nil {
			return err
		}
	}
	return nil
}

func dbCreateVehicle(ctx *workload.DBCtx) error {
	sz := sizes(ctx)
	tx := ctx.DB.Begin()
	wo := db.Value(ctx.Rng.Intn(sz.WorkOrders))
	if _, err := tx.Get(db.TWorkOrders, wo); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(db.TWorkOrders, wo, 3, 1); err != nil {
		return abortWith(tx, err)
	}
	for i := 0; i < 5; i++ {
		if _, err := tx.Get(db.TParts, db.Value(ctx.Rng.Intn(sz.Parts))); err != nil {
			return abortWith(tx, err)
		}
	}
	model := db.Value(ctx.Rng.Intn(sz.Vehicles))
	if err := tx.Update(db.TInventory, model, 1, db.Value(ctx.Rng.Intn(400))); err != nil {
		return abortWith(tx, err)
	}
	ctx.Seq[seqWorkOrder]++
	if err := tx.Insert(db.TWorkOrders, db.Row{db.Value(sz.WorkOrders) + ctx.Seq[seqWorkOrder], model, 2, 0}); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func abortWith(tx *db.Txn, err error) error {
	if aerr := tx.Abort(); aerr != nil {
		return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
	}
	return err
}
