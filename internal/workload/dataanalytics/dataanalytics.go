// Package dataanalytics is a batch-heavy data-center analysis workload
// pack, modeled on the characteristics reported for data-analysis
// workloads (MapReduce-style batch jobs over large datasets): few, heavy,
// RMI-style request classes; large sequential table scans; a high
// allocation rate dominated by buffer-sized and large objects; and a
// method profile far more skewed than jas2004's flat profile (a small set
// of record-parsing and aggregation kernels dominates).
package dataanalytics

import (
	"fmt"
	"math/rand"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
	"jasworkload/internal/workload"
)

// Schema: fact and dimension tables for scan-heavy analysis jobs, plus a
// results table the jobs append to. Column 0 is the primary key.
const (
	TEvents   = "events"   // key, user, item, kind
	TUsers    = "users"    // key, cohort, region
	TItems    = "items"    // key, category, price
	TResults  = "results"  // key, job, metric, value
	TJobState = "jobstate" // key, phase, progress
)

// Sequence slots in workload.DBCtx.Seq.
const (
	seqResult = iota
	seqJob
)

// sizes returns the IR-scaled cardinalities: the fact table dwarfs the
// dimensions, as in any analysis store.
type sizes struct {
	Events, Users, Items int
}

func sizesFor(ir int) sizes {
	return sizes{Events: ir * 600, Users: ir * 40, Items: ir * 20}
}

// Pack returns the workload description.
func Pack() *workload.Pack {
	return &workload.Pack{
		PackName:        "dataanalytics",
		PackDescription: "batch-heavy data-center analysis workload: large scans, high allocation rate, skewed method profile",
		PackClasses: []workload.Class{
			{
				// A full aggregation pass over a slice of the fact table.
				Name: "Aggregate", Web: false, RatePerIR: 0.30,
				BaseInstr: 260000, JitterFrac: 0.20, AllocBytes: 1400 << 10, AllocObjects: 190,
				WebShare: 0.02, DBShare: 0.34, KernelShare: 0.14, JITedShareOfWAS: 0.62,
				MethodCalls: 140, PersistCrumbs: 1,
				MethodBias: map[jvm.Component]float64{jvm.CompJas2004: 2.5, jvm.CompJavaLib: 1.4},
				DriftBoost: 0.8, DataBoost: 3.2,
			},
			{
				// Join events against the dimension tables.
				Name: "Join", Web: false, RatePerIR: 0.22,
				BaseInstr: 210000, JitterFrac: 0.25, AllocBytes: 1100 << 10, AllocObjects: 170,
				WebShare: 0.02, DBShare: 0.30, KernelShare: 0.15, JITedShareOfWAS: 0.60,
				MethodCalls: 120, PersistCrumbs: 1,
				MethodBias: map[jvm.Component]float64{jvm.CompJas2004: 2.0, jvm.CompOther: 1.3},
				DriftBoost: 1.2, DataBoost: 2.8,
			},
			{
				// Bulk-load a batch of new events.
				Name: "Ingest", Web: false, RatePerIR: 0.18,
				BaseInstr: 150000, JitterFrac: 0.30, AllocBytes: 900 << 10, AllocObjects: 150,
				WebShare: 0.03, DBShare: 0.28, KernelShare: 0.18, JITedShareOfWAS: 0.55,
				MethodCalls: 90, PersistCrumbs: 2,
				MethodBias: map[jvm.Component]float64{jvm.CompJavaLib: 1.8},
				DriftBoost: 0.6, DataBoost: 2.2,
			},
			{
				// A lightweight dashboard poll of job progress and results —
				// the one interactive, web-facing class.
				Name: "Status", Web: true, RatePerIR: 0.40,
				BaseInstr: 45000, JitterFrac: 0.30, AllocBytes: 220 << 10, AllocObjects: 60,
				WebShare: 0.14, DBShare: 0.16, KernelShare: 0.16, JITedShareOfWAS: 0.52,
				MethodCalls: 40, PersistCrumbs: 0,
				MethodBias: map[jvm.Component]float64{jvm.CompWebSphere: 1.4},
				DriftBoost: 0.4, DataBoost: 0.5,
			},
		},
		// High allocation rate with fat buffers: record batches and
		// intermediate aggregation arrays, not session beans.
		AllocBehaviour: workload.AllocProfile{
			SmallCum: 0.45, MediumCum: 0.85,
			SmallBase: 96, SmallSpan: 416,
			MediumBase: 4096, MediumSpan: 12288,
			LargeBase: 32768, LargeSpan: 98304,
		},
		Load:  loadDB,
		Run:   runDB,
		Pages: PoolPages,
		// The paper-style flat profile does not hold here: a few compute
		// kernels (parsing, hashing, aggregation) dominate, and far more
		// of the cycles are the application's own code.
		Profile: func(p jvm.ProfileConfig) jvm.ProfileConfig {
			p.WarmShare = 0.72
			p.TopCap = 0.06
			p.ComponentMix = [jvm.NumComponents]float64{
				jvm.CompWebSphere: 0.14,
				jvm.CompEJS:       0.06,
				jvm.CompJavaLib:   0.28,
				jvm.CompJas2004:   0.38, // the analysis kernels themselves
				jvm.CompOther:     0.14,
			}
			return p
		},
	}
}

func init() { workload.Register(Pack()) }

// PoolPages estimates the working set in 4 KB pages; the fact table
// dominates it.
func PoolPages(ir int) int {
	sz := sizesFor(ir)
	return sz.Events/24 + sz.Users/48 + sz.Items/48 + 2
}

// Class indices, in PackClasses order.
const (
	ClassAggregate = iota
	ClassJoin
	ClassIngest
	ClassStatus
)

func loadDB(d *db.Database, ir int, seed int64) error {
	if ir <= 0 {
		return fmt.Errorf("dataanalytics: bad injection rate %d", ir)
	}
	rng := rand.New(rand.NewSource(seed))
	sz := sizesFor(ir)
	type tdef struct {
		name string
		cols int
		rpp  int
	}
	for _, td := range []tdef{
		{TEvents, 4, 24},
		{TUsers, 3, 64},
		{TItems, 3, 64},
		{TResults, 4, 32},
		{TJobState, 3, 64},
	} {
		if _, err := d.CreateTable(td.name, td.cols, td.rpp); err != nil {
			return err
		}
	}
	tx := d.Begin()
	for i := 0; i < sz.Users; i++ {
		if err := tx.Insert(TUsers, db.Row{db.Value(i), db.Value(rng.Intn(16)), db.Value(rng.Intn(8))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Items; i++ {
		if err := tx.Insert(TItems, db.Row{db.Value(i), db.Value(rng.Intn(40)), db.Value(100 + rng.Intn(90000))}); err != nil {
			return err
		}
	}
	for i := 0; i < sz.Events; i++ {
		row := db.Row{db.Value(i), db.Value(rng.Intn(sz.Users)), db.Value(rng.Intn(sz.Items)), db.Value(rng.Intn(6))}
		if err := tx.Insert(TEvents, row); err != nil {
			return err
		}
	}
	for i := 0; i < 64; i++ {
		if err := tx.Insert(TJobState, db.Row{db.Value(i), 0, 0}); err != nil {
			return err
		}
	}
	return tx.Commit()
}

func runDB(ctx *workload.DBCtx, class int) error {
	switch class {
	case ClassAggregate:
		return dbAggregate(ctx)
	case ClassJoin:
		return dbJoin(ctx)
	case ClassIngest:
		return dbIngest(ctx)
	case ClassStatus:
		return dbStatus(ctx)
	default:
		return fmt.Errorf("dataanalytics: unknown request class %d", class)
	}
}

// dbAggregate: one long sequential scan of the fact table plus a result
// append — the large-sequential-scan signature of analysis jobs.
func dbAggregate(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	lo := db.Value(ctx.Rng.Intn(sz.Events))
	if _, err := ctx.DB.Scan(TEvents, lo, lo+600, 120); err != nil {
		return err
	}
	tx := ctx.DB.Begin()
	ctx.Seq[seqResult]++
	key := db.Value(1 << 30)
	if err := tx.Insert(TResults, db.Row{key + ctx.Seq[seqResult], db.Value(ctx.Rng.Intn(64)), 0, db.Value(ctx.Rng.Intn(1 << 20))}); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(TJobState, db.Value(ctx.Rng.Intn(64)), 2, db.Value(ctx.Rng.Intn(100))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

// dbJoin: a medium fact scan with dimension lookups per probed row.
func dbJoin(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	lo := db.Value(ctx.Rng.Intn(sz.Events))
	rows, err := ctx.DB.Scan(TEvents, lo, lo+300, 60)
	if err != nil {
		return err
	}
	probes := len(rows)
	if probes > 12 {
		probes = 12
	}
	for i := 0; i < probes; i++ {
		if _, err := ctx.DB.Get(TUsers, rows[i][1]%db.Value(sz.Users)); err != nil {
			return err
		}
		if _, err := ctx.DB.Get(TItems, rows[i][2]%db.Value(sz.Items)); err != nil {
			return err
		}
	}
	return nil
}

// dbIngest: append a batch of fact rows in one transaction.
func dbIngest(ctx *workload.DBCtx) error {
	sz := sizesFor(ctx.IR)
	tx := ctx.DB.Begin()
	base := db.Value(1 << 28)
	for i := 0; i < 16; i++ {
		ctx.Seq[seqJob]++
		row := db.Row{
			base + ctx.Seq[seqJob],
			db.Value(ctx.Rng.Intn(sz.Users)),
			db.Value(ctx.Rng.Intn(sz.Items)),
			db.Value(ctx.Rng.Intn(6)),
		}
		if err := tx.Insert(TEvents, row); err != nil {
			return abortWith(tx, err)
		}
	}
	if err := tx.Update(TJobState, db.Value(ctx.Rng.Intn(64)), 1, 1); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

// dbStatus: point reads of job state and a short recent-results scan.
func dbStatus(ctx *workload.DBCtx) error {
	if _, err := ctx.DB.Get(TJobState, db.Value(ctx.Rng.Intn(64))); err != nil {
		return err
	}
	lo := db.Value(1 << 30)
	_, err := ctx.DB.Scan(TResults, lo, lo+db.Value(1+ctx.Seq[seqResult]), 8)
	return err
}

func abortWith(tx *db.Txn, err error) error {
	if aerr := tx.Abort(); aerr != nil {
		return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
	}
	return err
}
