package server

import (
	"fmt"

	"jasworkload/internal/db"
)

// Trade6-like transaction scripts. The class indices reuse RequestType:
// 0=Buy, 1=Sell, 2=Quote, 3=Portfolio (see Trade6App).

// runTradeDBScript performs a trading request's database transaction.
func (s *Server) runTradeDBScript(rt RequestType) error {
	switch rt {
	case 0:
		return s.dbBuy()
	case 1:
		return s.dbSell()
	case 2:
		return s.dbQuote()
	case 3:
		return s.dbPortfolio()
	default:
		return fmt.Errorf("server: unknown trade request type %d", rt)
	}
}

func (s *Server) tradeSizes() db.TradeSizes { return db.TradeSizesFor(s.cfg.IR) }

func (s *Server) dbBuy() error {
	sz := s.tradeSizes()
	tx := s.dbase.Begin()
	acct := db.Value(s.rng.Intn(sz.Accounts))
	if _, err := tx.Get(db.TAccounts, acct); err != nil {
		return abortWith(tx, err)
	}
	sym := db.Value(s.rng.Intn(sz.Quotes))
	if _, err := tx.Get(db.TQuotes, sym); err != nil {
		return abortWith(tx, err)
	}
	s.tradeOrderSeq++
	if err := tx.Insert(db.TTradeOrders, db.Row{s.tradeOrderSeq, acct, sym, 0}); err != nil {
		return abortWith(tx, err)
	}
	s.holdingSeq++
	hk := db.Value(sz.Holdings) + s.holdingSeq
	if err := tx.Insert(db.THoldings, db.Row{hk, acct, sym, db.Value(1 + s.rng.Intn(100))}); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(db.TAccounts, acct, 1, db.Value(s.rng.Intn(90000))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func (s *Server) dbSell() error {
	sz := s.tradeSizes()
	tx := s.dbase.Begin()
	acct := db.Value(s.rng.Intn(sz.Accounts))
	if _, err := tx.Get(db.TAccounts, acct); err != nil {
		return abortWith(tx, err)
	}
	lo := db.Value(s.rng.Intn(sz.Holdings))
	rows, err := s.dbase.Scan(db.THoldings, lo, lo+40, 5)
	if err != nil {
		return abortWith(tx, err)
	}
	if len(rows) > 0 {
		if err := tx.Delete(db.THoldings, rows[0][0]); err != nil {
			return abortWith(tx, err)
		}
	}
	s.tradeOrderSeq++
	if err := tx.Insert(db.TTradeOrders, db.Row{s.tradeOrderSeq, acct, db.Value(s.rng.Intn(sz.Quotes)), 1}); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(db.TAccounts, acct, 1, db.Value(s.rng.Intn(90000))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func (s *Server) dbQuote() error {
	sz := s.tradeSizes()
	for i := 0; i < 3; i++ {
		if _, err := s.dbase.Get(db.TQuotes, db.Value(s.rng.Intn(sz.Quotes))); err != nil {
			return err
		}
	}
	lo := db.Value(s.rng.Intn(sz.Quotes))
	_, err := s.dbase.Scan(db.TQuotes, lo, lo+8, 5)
	return err
}

func (s *Server) dbPortfolio() error {
	sz := s.tradeSizes()
	acct := db.Value(s.rng.Intn(sz.Accounts))
	if _, err := s.dbase.Get(db.TAccounts, acct); err != nil {
		return err
	}
	lo := db.Value(s.rng.Intn(sz.Holdings))
	if _, err := s.dbase.Scan(db.THoldings, lo, lo+60, 10); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if _, err := s.dbase.Get(db.TQuotes, db.Value(s.rng.Intn(sz.Quotes))); err != nil {
			return err
		}
	}
	return nil
}
