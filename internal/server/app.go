package server

import (
	"fmt"

	"jasworkload/internal/db"
)

// App is a deployable J2EE application: per-class display names, the
// transaction scripts, and the database schema/access layer. The paper's
// primary workload is jas2004; Section 6 cross-checks the GC findings on
// Trade6, "another J2EE workload", which is also provided.
type App struct {
	Name string
	// Names are the per-class display names (the four curves of Figure 2
	// for jas2004).
	Names [NumRequestTypes]string
	// Web marks classes that arrive through the web container (2 s
	// response-time rule) rather than RMI (5 s).
	Web [NumRequestTypes]bool
	// Mix is the steady-state arrival mix.
	Mix Mix
	// Scripts are the per-class transaction shapes.
	Scripts [NumRequestTypes]script
	// LoadDB populates the schema at the given injection-rate scale.
	LoadDB func(d *db.Database, ir int, seed int64) error
	// RunDB performs one request's database transaction.
	RunDB func(s *Server, rt RequestType) error
}

// Validate checks the app is complete.
func (a *App) Validate() error {
	if a == nil {
		return fmt.Errorf("server: nil app")
	}
	if a.Name == "" || a.LoadDB == nil || a.RunDB == nil {
		return fmt.Errorf("server: app %q incomplete", a.Name)
	}
	for rt := 0; rt < NumRequestTypes; rt++ {
		if a.Names[rt] == "" {
			return fmt.Errorf("server: app %q class %d unnamed", a.Name, rt)
		}
		if a.Scripts[rt].baseInstr <= 0 || a.Scripts[rt].methodCalls <= 0 {
			return fmt.Errorf("server: app %q class %d has an empty script", a.Name, rt)
		}
	}
	if a.Mix.TotalPerIR() <= 0 {
		return fmt.Errorf("server: app %q has an empty mix", a.Name)
	}
	return nil
}

// Jas2004App returns the paper's primary workload.
func Jas2004App() *App {
	return &App{
		Name: "jas2004",
		Names: [NumRequestTypes]string{
			"Purchase", "Manage", "Browse", "CreateVehicle",
		},
		Web:     [NumRequestTypes]bool{true, true, true, false},
		Mix:     DefaultMix(),
		Scripts: scripts,
		LoadDB: func(d *db.Database, ir int, seed int64) error {
			cfg := db.DefaultScaleConfig(ir)
			cfg.Seed = seed
			return db.Load(d, cfg)
		},
		RunDB: func(s *Server, rt RequestType) error { return s.runJasDBScript(rt) },
	}
}

// trade6Scripts: the trading workload is read-heavier (quotes dominate),
// allocates a little less per request, and leans harder on the Java
// library (serialization of market data).
var trade6Scripts = [NumRequestTypes]script{
	// Buy
	{
		baseInstr: 110000, jitterFrac: 0.25, allocBytes: 430 << 10, allocObjects: 110,
		webShare: 0.10, dbShare: 0.24, kernelShare: 0.17, jitedShareOfWAS: 0.50,
		methodCalls: 85, persistCrumbs: 2,
	},
	// Sell
	{
		baseInstr: 105000, jitterFrac: 0.25, allocBytes: 410 << 10, allocObjects: 105,
		webShare: 0.10, dbShare: 0.24, kernelShare: 0.17, jitedShareOfWAS: 0.50,
		methodCalls: 80, persistCrumbs: 2,
	},
	// Quote
	{
		baseInstr: 55000, jitterFrac: 0.3, allocBytes: 300 << 10, allocObjects: 80,
		webShare: 0.13, dbShare: 0.18, kernelShare: 0.16, jitedShareOfWAS: 0.54,
		methodCalls: 45, persistCrumbs: 0,
	},
	// Portfolio
	{
		baseInstr: 90000, jitterFrac: 0.25, allocBytes: 390 << 10, allocObjects: 100,
		webShare: 0.11, dbShare: 0.22, kernelShare: 0.16, jitedShareOfWAS: 0.52,
		methodCalls: 70, persistCrumbs: 1,
	},
}

// Trade6App returns the Trade6-like trading workload the paper cross-checks
// its GC observations on (Section 6). All four classes are web-facing.
func Trade6App() *App {
	return &App{
		Name: "trade6",
		Names: [NumRequestTypes]string{
			"Buy", "Sell", "Quote", "Portfolio",
		},
		Web: [NumRequestTypes]bool{true, true, true, true},
		Mix: Mix{RatePerIR: [NumRequestTypes]float64{
			0.25, // Buy
			0.20, // Sell
			0.85, // Quote
			0.30, // Portfolio
		}},
		Scripts: trade6Scripts,
		LoadDB:  func(d *db.Database, ir int, seed int64) error { return db.LoadTrade(d, ir, seed) },
		RunDB:   func(s *Server, rt RequestType) error { return s.runTradeDBScript(rt) },
	}
}
