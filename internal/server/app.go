package server

import (
	"fmt"

	"jasworkload/internal/db"
	"jasworkload/internal/workload"
	"jasworkload/internal/workload/jas2004"
	"jasworkload/internal/workload/trade6"
)

// App is a deployable J2EE application: the request classes and database
// hooks of one workload pack, in the form the server executes. Build one
// with AppFor; the paper's primary workload is jas2004, and Section 6
// cross-checks the GC findings on Trade6, "another J2EE workload".
type App struct {
	Name string
	// Classes are the request classes in arrival-accounting order; the
	// server's RequestType values index this slice.
	Classes []workload.Class
	// Alloc shapes the transient allocation size distribution.
	Alloc workload.AllocProfile
	// LoadDB populates the schema at the given injection-rate scale.
	LoadDB func(d *db.Database, ir int, seed int64) error
	// RunDB performs one request's database transaction.
	RunDB func(ctx *workload.DBCtx, class int) error
	// PoolPages estimates the working set in 4 KB database pages at an IR.
	PoolPages func(ir int) int
}

// AppFor builds the server-side form of a workload pack.
func AppFor(w workload.Workload) *App {
	return &App{
		Name:      w.Name(),
		Classes:   w.Classes(),
		Alloc:     w.Alloc(),
		LoadDB:    w.LoadDB,
		RunDB:     w.RunDB,
		PoolPages: w.PoolPages,
	}
}

// Validate checks the app is complete.
func (a *App) Validate() error {
	if a == nil {
		return fmt.Errorf("server: nil app")
	}
	if a.Name == "" || a.LoadDB == nil || a.RunDB == nil {
		return fmt.Errorf("server: app %q incomplete", a.Name)
	}
	if len(a.Classes) == 0 || len(a.Classes) > workload.MaxClasses {
		return fmt.Errorf("server: app %q has %d classes (want 1..%d)",
			a.Name, len(a.Classes), workload.MaxClasses)
	}
	for i, c := range a.Classes {
		if c.Name == "" {
			return fmt.Errorf("server: app %q class %d unnamed", a.Name, i)
		}
		if c.BaseInstr <= 0 || c.MethodCalls <= 0 {
			return fmt.Errorf("server: app %q class %d has an empty script", a.Name, i)
		}
	}
	if a.TotalPerIR() <= 0 {
		return fmt.Errorf("server: app %q has an empty mix", a.Name)
	}
	return nil
}

// NumClasses returns the number of request classes.
func (a *App) NumClasses() int { return len(a.Classes) }

// ClassNames returns the per-class display names.
func (a *App) ClassNames() []string {
	out := make([]string, len(a.Classes))
	for i, c := range a.Classes {
		out[i] = c.Name
	}
	return out
}

// Rates returns the per-class arrival rates in requests/second per IR.
func (a *App) Rates() []float64 {
	out := make([]float64, len(a.Classes))
	for i, c := range a.Classes {
		out[i] = c.RatePerIR
	}
	return out
}

// Deadlines returns the per-class run-rule response-time limits in ms.
func (a *App) Deadlines() []float64 {
	out := make([]float64, len(a.Classes))
	for i, c := range a.Classes {
		out[i] = c.Deadline()
	}
	return out
}

// TotalPerIR returns total requests/second per unit of IR (the JOPS/IR
// ratio when all requests succeed).
func (a *App) TotalPerIR() float64 {
	var t float64
	for _, c := range a.Classes {
		t += c.RatePerIR
	}
	return t
}

// Jas2004App returns the paper's primary workload.
func Jas2004App() *App { return AppFor(jas2004.Pack()) }

// Trade6App returns the Trade6-like trading workload the paper
// cross-checks its GC observations on (Section 6).
func Trade6App() *App { return AppFor(trade6.Pack()) }
