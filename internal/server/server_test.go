package server

import (
	"math"
	"testing"

	"jasworkload/internal/db"
	"jasworkload/internal/isa"
	"jasworkload/internal/jvm"
	"jasworkload/internal/mem"
)

// rig builds a small but complete SUT at the given IR.
func rig(t *testing.T, ir int) *Server {
	t.Helper()
	lcfg := mem.DefaultLayoutConfig()
	lcfg.HeapBytes = 256 << 20
	layout, err := mem.NewLayout(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := jvm.DefaultProfileConfig()
	pcfg.NumMethods = 850
	pcfg.WarmSet = 60
	methods, err := jvm.GenerateMethods(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	jit, err := jvm.NewJIT(jvm.DefaultJITConfig(), methods, layout.JITCode)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := jvm.NewHeap(jvm.DefaultGCConfig(), layout.JavaHeap)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := db.NewBufferPool(layout.DBBuffer, 4096, db.RAMDisk{})
	if err != nil {
		t.Fatal(err)
	}
	dbase, err := db.NewDatabase(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(dbase, db.DefaultScaleConfig(ir)); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ir)
	cfg.BaselineCacheBytes = 64 << 20
	s, err := New(cfg, layout, jit, heap, dbase)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(10), nil, nil, nil, nil); err == nil {
		t.Fatal("nil substrates accepted")
	}
}

func TestRequestTypeMeta(t *testing.T) {
	app := Jas2004App()
	for rt := RequestType(0); rt < numRequestTypes; rt++ {
		if rt.String() == "" {
			t.Fatal("unnamed request type")
		}
		if rt.String() != app.Classes[rt].Name {
			t.Fatalf("legacy name %q != pack class name %q", rt, app.Classes[rt].Name)
		}
		sc := app.Classes[rt]
		if sc.BaseInstr <= 0 || sc.AllocBytes <= 0 || sc.MethodCalls <= 0 {
			t.Fatalf("%v script empty", rt)
		}
		if rt.IsWeb() != sc.Web {
			t.Fatalf("%v: legacy IsWeb disagrees with pack class", rt)
		}
	}
	if !ReqPurchase.IsWeb() || !ReqBrowse.IsWeb() || ReqCreateVehicle.IsWeb() {
		t.Fatal("web/RMI classification wrong")
	}
	if RequestType(99).String() != "request(99)" {
		t.Fatal("out-of-range name wrong")
	}
}

func TestDefaultAppJOPSRatio(t *testing.T) {
	// The benchmark executes ~1.6 JOPS per IR.
	if got := Jas2004App().TotalPerIR(); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("JOPS/IR = %v, want 1.6", got)
	}
}

func TestExecuteAllTypes(t *testing.T) {
	s := rig(t, 5)
	for rt := RequestType(0); rt < numRequestTypes; rt++ {
		res, err := s.Execute(1000, rt, nil, 0)
		if err != nil {
			t.Fatalf("%v: %v", rt, err)
		}
		if res.Instructions == 0 || res.AllocBytes == 0 || res.DBOps == 0 {
			t.Fatalf("%v: empty result %+v", rt, res)
		}
		var segSum uint64
		for _, v := range res.Segments {
			segSum += v
		}
		if segSum > res.Instructions || float64(segSum) < 0.95*float64(res.Instructions) {
			t.Fatalf("%v: segments %d vs total %d", rt, segSum, res.Instructions)
		}
		if res.LockAcquires <= 0 {
			t.Fatalf("%v: no lock acquisitions", rt)
		}
	}
	ex := s.Executed()
	for rt, n := range ex {
		if n != 1 {
			t.Fatalf("executed[%d] = %d", rt, n)
		}
	}
}

func TestExecuteSegmentShares(t *testing.T) {
	s := rig(t, 5)
	s.JIT().WarmUp(0.95) // the paper measures a fully warmed system
	var total, web, db2, kern, wasj, wasn uint64
	for i := 0; i < 200; i++ {
		for rt := RequestType(0); rt < numRequestTypes; rt++ {
			if s.Heap().NeedsGC() {
				s.Heap().Collect(float64(i * 1000))
			}
			res, err := s.Execute(float64(i*1000), rt, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Instructions
			web += res.Segments[SegWebServer]
			db2 += res.Segments[SegDB2]
			kern += res.Segments[SegKernel]
			wasj += res.Segments[SegWASJit]
			wasn += res.Segments[SegWASNative]
		}
	}
	was := wasj + wasn
	// The paper: WAS consumes about twice the web server + DB2 combined.
	ratio := float64(was) / float64(web+db2)
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("WAS/(web+DB2) = %.2f, want ~2", ratio)
	}
	// Roughly half the WAS process time is JITed code once warm.
	jshare := float64(wasj) / float64(was)
	if jshare < 0.35 || jshare > 0.60 {
		t.Fatalf("JITed share of WAS = %.2f, want ~0.5", jshare)
	}
	// Kernel time is a sizable minority (paper: 20% incl. I/O paths).
	kshare := float64(kern) / float64(total)
	if kshare < 0.10 || kshare > 0.25 {
		t.Fatalf("kernel share = %.2f", kshare)
	}
}

func TestExecuteWarmsJIT(t *testing.T) {
	s := rig(t, 5)
	if s.JIT().CompiledShare() != 0 {
		t.Fatal("JIT warm before any request")
	}
	for i := 0; i < 400; i++ {
		if _, err := s.Execute(float64(i*100), ReqBrowse, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.JIT().CompiledShare() < 0.3 {
		t.Fatalf("compiled share = %.2f after 400 requests", s.JIT().CompiledShare())
	}
}

func TestExecuteTraceAddressesMapped(t *testing.T) {
	s := rig(t, 5)
	var unmapped, total int
	sink := isa.SinkFunc(func(ins *isa.Instr) {
		total++
		if _, err := s.Layout().Space.Translate(ins.PC); err != nil {
			unmapped++
		}
		if ins.Class.IsMemory() {
			if _, err := s.Layout().Space.Translate(ins.EA); err != nil {
				unmapped++
			}
		}
	})
	for rt := RequestType(0); rt < numRequestTypes; rt++ {
		if _, err := s.Execute(0, rt, sink, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if total == 0 {
		t.Fatal("no instructions emitted")
	}
	if unmapped != 0 {
		t.Fatalf("%d/%d unmapped trace addresses", unmapped, total)
	}
}

func TestExecuteTraceVolumeScales(t *testing.T) {
	s := rig(t, 5)
	count := func(frac float64) int {
		var n int
		sink := isa.SinkFunc(func(*isa.Instr) { n++ })
		if _, err := s.Execute(0, ReqPurchase, sink, frac); err != nil {
			t.Fatal(err)
		}
		return n
	}
	n10 := count(0.1)
	n50 := count(0.5)
	if n10 == 0 || n50 == 0 {
		t.Fatal("no trace emitted")
	}
	r := float64(n50) / float64(n10)
	if r < 3.5 || r > 7 {
		t.Fatalf("trace volume ratio = %.2f, want ~5", r)
	}
}

func TestExecuteTraceMix(t *testing.T) {
	s := rig(t, 5)
	var cs isa.CountingSink
	for i := 0; i < 30; i++ {
		for rt := RequestType(0); rt < numRequestTypes; rt++ {
			if _, err := s.Execute(float64(i), rt, &cs, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	loadRate := float64(cs.Loads()) / float64(cs.Total)
	storeRate := float64(cs.Stores()) / float64(cs.Total)
	// Paper: 1 load per 3.2 instructions, 1 store per 4.5.
	if loadRate < 0.26 || loadRate > 0.37 {
		t.Fatalf("load rate = %.3f, want ~0.31", loadRate)
	}
	if storeRate < 0.18 || storeRate > 0.27 {
		t.Fatalf("store rate = %.3f, want ~0.22", storeRate)
	}
	// LARX every ~600 instructions, STCX paired 1:1.
	larx := cs.ByKind[isa.ClassLarx]
	stcx := cs.ByKind[isa.ClassStcx]
	if larx == 0 || stcx != larx {
		t.Fatalf("larx/stcx = %d/%d, want equal and nonzero", larx, stcx)
	}
	per := float64(cs.Total) / float64(larx)
	if per < 400 || per > 900 {
		t.Fatalf("instructions per LARX = %.0f, want ~600", per)
	}
	// Kernel instructions present (the OS segment).
	if cs.Kernel == 0 {
		t.Fatal("no kernel instructions in trace")
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := rig(t, 5)
	for i := 0; i < 300; i++ {
		if s.Heap().NeedsGC() {
			s.Heap().Collect(float64(i) * 10)
		}
		if _, err := s.Execute(float64(i)*10, ReqManage, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.ActiveSessions() == 0 {
		t.Fatal("no sessions created")
	}
	before := s.ActiveSessions()
	// Jump far past the TTL; expiry is lazy, so run more requests.
	far := s.cfg.SessionTTLMS * 10
	for i := 0; i < 300; i++ {
		if s.Heap().NeedsGC() {
			s.Heap().Collect(far + float64(i))
		}
		if _, err := s.Execute(far+float64(i), ReqManage, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.ActiveSessions() >= before+300 {
		t.Fatal("sessions never expire")
	}
}

func TestHeapChurnAndCollect(t *testing.T) {
	s := rig(t, 5)
	heap := s.Heap()
	gcs := 0
	for i := 0; i < 800; i++ {
		_, err := s.Execute(float64(i)*15, ReqPurchase, nil, 0)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if heap.NeedsGC() {
			heap.Collect(float64(i) * 15)
			gcs++
		}
	}
	if gcs == 0 {
		t.Fatal("allocation churn never triggered GC in a 256MB heap")
	}
	// Live set is dominated by the baseline cache (64 MB here).
	if heap.LiveBytes() < 60<<20 || heap.LiveBytes() > 120<<20 {
		t.Fatalf("live = %d MB", heap.LiveBytes()>>20)
	}
}

func TestEmitGCCharacteristics(t *testing.T) {
	s := rig(t, 5)
	var gc, mut isa.CountingSink
	s.EmitGC(&gc, 50000)
	for rt := RequestType(0); rt < numRequestTypes; rt++ {
		if _, err := s.Execute(0, rt, &mut, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	if gc.Total == 0 || mut.Total == 0 {
		t.Fatal("no instructions")
	}
	// GC has more branches and far fewer SYNCs than mutator code.
	gcBr := float64(gc.Branches()) / float64(gc.Total)
	mutBr := float64(mut.Branches()) / float64(mut.Total)
	if gcBr <= mutBr {
		t.Fatalf("GC branch rate %.3f <= mutator %.3f", gcBr, mutBr)
	}
	gcSync := float64(gc.ByKind[isa.ClassSync]) / float64(gc.Total)
	mutSync := float64(mut.ByKind[isa.ClassSync]) / float64(mut.Total)
	if gcSync >= mutSync/4 {
		t.Fatalf("GC sync rate %.5f not far below mutator %.5f", gcSync, mutSync)
	}
	// GC stores are rarer.
	gcSt := float64(gc.Stores()) / float64(gc.Total)
	mutSt := float64(mut.Stores()) / float64(mut.Total)
	if gcSt >= mutSt {
		t.Fatal("GC stores not rarer than mutator stores")
	}
}

func TestEmitIdleTinyFootprint(t *testing.T) {
	s := rig(t, 5)
	pcs := map[uint64]bool{}
	sink := isa.SinkFunc(func(ins *isa.Instr) { pcs[ins.PC] = true })
	s.EmitIdle(sink, 10000)
	if len(pcs) == 0 || len(pcs) > 128 {
		t.Fatalf("idle loop touches %d PCs, want a tiny loop", len(pcs))
	}
}

func TestSegmentNames(t *testing.T) {
	for seg := Segment(0); seg < numSegments; seg++ {
		if seg.String() == "" {
			t.Fatal("unnamed segment")
		}
	}
	if Segment(77).String() != "segment(77)" {
		t.Fatal("out-of-range segment name")
	}
}

func TestAppsValidate(t *testing.T) {
	for _, app := range []*App{Jas2004App(), Trade6App()} {
		if err := app.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
	var nilApp *App
	if err := nilApp.Validate(); err == nil {
		t.Fatal("nil app validated")
	}
	broken := Jas2004App()
	broken.Classes[0].Name = ""
	if err := broken.Validate(); err == nil {
		t.Fatal("unnamed class validated")
	}
	broken2 := Jas2004App()
	broken2.LoadDB = nil
	if err := broken2.Validate(); err == nil {
		t.Fatal("app without loader validated")
	}
}

// tradeRig builds a SUT running the Trade6 application.
func tradeRig(t *testing.T, ir int) *Server {
	t.Helper()
	lcfg := mem.DefaultLayoutConfig()
	lcfg.HeapBytes = 256 << 20
	layout, err := mem.NewLayout(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := jvm.DefaultProfileConfig()
	pcfg.NumMethods = 850
	pcfg.WarmSet = 60
	methods, err := jvm.GenerateMethods(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	jit, err := jvm.NewJIT(jvm.DefaultJITConfig(), methods, layout.JITCode)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := jvm.NewHeap(jvm.DefaultGCConfig(), layout.JavaHeap)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := db.NewBufferPool(layout.DBBuffer, 4096, db.RAMDisk{})
	if err != nil {
		t.Fatal(err)
	}
	dbase, err := db.NewDatabase(pool)
	if err != nil {
		t.Fatal(err)
	}
	app := Trade6App()
	if err := app.LoadDB(dbase, ir, 1); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ir)
	cfg.App = app
	cfg.BaselineCacheBytes = 64 << 20
	s, err := New(cfg, layout, jit, heap, dbase)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrade6Execute(t *testing.T) {
	s := tradeRig(t, 5)
	for rt := RequestType(0); rt < numRequestTypes; rt++ {
		res, err := s.Execute(1000, rt, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", s.App().Classes[rt].Name, err)
		}
		if res.Instructions == 0 || res.DBOps == 0 {
			t.Fatalf("%s: empty result", s.App().Classes[rt].Name)
		}
	}
	// Quotes are the cheapest class (read-only market data).
	quote, _ := s.Execute(2000, 2, nil, 0)
	buy, _ := s.Execute(2000, 0, nil, 0)
	if quote.Instructions >= buy.Instructions*2 {
		t.Fatal("quote not cheaper than buy")
	}
}

func TestCPUFactorScalesInstructions(t *testing.T) {
	base := rig(t, 5)
	resBase, err := base.Execute(0, ReqBrowse, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same rig but with a Sovereign-like CPU factor.
	heavy := rig(t, 5)
	heavy.cpuFactor = 1.5
	resHeavy, err := heavy.Execute(0, ReqBrowse, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(resHeavy.Instructions) / float64(resBase.Instructions)
	if ratio < 1.2 || ratio > 1.9 {
		t.Fatalf("cpu factor ratio = %.2f, want ~1.5", ratio)
	}
}
