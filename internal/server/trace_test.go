package server

import (
	"testing"

	"jasworkload/internal/isa"
)

// coreIDSink tags the stream with a core id (like power4.Core) and records
// everything.
type coreIDSink struct {
	id  int
	ins []isa.Instr
}

func (c *coreIDSink) CoreID() int { return c.id }

func (c *coreIDSink) Consume(ins *isa.Instr) { c.ins = append(c.ins, *ins) }

func TestTracePerCoreDataSlabsDisjoint(t *testing.T) {
	s := rig(t, 5)
	collect := func(id int) map[uint64]bool {
		sink := &coreIDSink{id: id}
		for i := 0; i < 8; i++ {
			if _, err := s.Execute(float64(i), ReqPurchase, sink, 0.3); err != nil {
				t.Fatal(err)
			}
		}
		pages := map[uint64]bool{}
		kern := s.Layout().Kernel
		for _, ins := range sink.ins {
			if ins.Class.IsStore() && kern.Contains(ins.EA) {
				pages[ins.EA>>12] = true
			}
		}
		return pages
	}
	p0 := collect(0)
	p2 := collect(2)
	if len(p0) == 0 || len(p2) == 0 {
		t.Fatal("no kernel stores observed")
	}
	for pg := range p0 {
		if p2[pg] {
			t.Fatalf("kernel store page %#x shared across chips", pg)
		}
	}
}

func TestTraceReadModifyWriteStores(t *testing.T) {
	s := rig(t, 5)
	var loads map[uint64]bool
	var rmwHits, stores int
	sink := isa.SinkFunc(func(ins *isa.Instr) {
		switch {
		case ins.Class.IsLoad():
			loads[ins.EA>>6] = true
		case ins.Class == isa.ClassStore:
			stores++
			if loads[ins.EA>>6] {
				rmwHits++
			}
		}
	})
	loads = map[uint64]bool{}
	for i := 0; i < 10; i++ {
		if _, err := s.Execute(float64(i), ReqManage, sink, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	if stores == 0 {
		t.Fatal("no stores")
	}
	// Most stores land on previously loaded lines (the paper's 1-in-5
	// store miss rate depends on this).
	if frac := float64(rmwHits) / float64(stores); frac < 0.5 {
		t.Fatalf("only %.2f of stores hit loaded lines", frac)
	}
}

func TestTraceLarxStcxPairing(t *testing.T) {
	s := rig(t, 5)
	var last isa.Class
	var lastEA uint64
	violations := 0
	sink := isa.SinkFunc(func(ins *isa.Instr) {
		if last == isa.ClassLarx {
			if ins.Class != isa.ClassStcx || ins.EA != lastEA {
				violations++
			}
		}
		last = ins.Class
		lastEA = ins.EA
	})
	for i := 0; i < 20; i++ {
		if _, err := s.Execute(float64(i), ReqPurchase, sink, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	if violations != 0 {
		t.Fatalf("%d LARX not immediately followed by a same-address STCX", violations)
	}
}

func TestTraceReturnsMarked(t *testing.T) {
	s := rig(t, 5)
	var indirect, returns int
	sink := isa.SinkFunc(func(ins *isa.Instr) {
		if ins.Class == isa.ClassBranchIndirect {
			indirect++
			if ins.Return {
				returns++
			}
		}
	})
	for i := 0; i < 20; i++ {
		if _, err := s.Execute(float64(i), ReqBrowse, sink, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	if indirect == 0 {
		t.Fatal("no indirect branches")
	}
	frac := float64(returns) / float64(indirect)
	if frac < 0.45 || frac > 0.75 {
		t.Fatalf("return fraction = %.2f, want ~0.6", frac)
	}
}

func TestTracePhaseModulatesColdness(t *testing.T) {
	s := rig(t, 5)
	coldShare := func(nowMS float64) float64 {
		var cache, total int
		heap := s.Layout().JavaHeap
		sink := isa.SinkFunc(func(ins *isa.Instr) {
			if ins.Class != isa.ClassLoad {
				return
			}
			total++
			// Cache objects live in the heap above the baseline root; the
			// long-lived cache span is the first big chunk of the heap.
			if heap.Contains(ins.EA) && ins.EA < heap.Base+s.cfg.BaselineCacheBytes {
				cache++
			}
		})
		for i := 0; i < 30; i++ {
			if _, err := s.Execute(nowMS, ReqPurchase, sink, 0.3); err != nil {
				t.Fatal(err)
			}
		}
		return float64(cache) / float64(total)
	}
	// phaseAt peaks near t≈12s and troughs near t≈30s of each 37s cycle.
	hot := coldShare(29_500)
	cold := coldShare(11_500)
	if cold <= hot {
		t.Fatalf("cold-phase cache share %.3f not above warm-phase %.3f", cold, hot)
	}
}

func TestPhaseAtBounded(t *testing.T) {
	for ms := 0.0; ms < 200_000; ms += 97 {
		p := phaseAt(ms)
		if p < 0.5 || p > 1.5 {
			t.Fatalf("phase %v out of range at %vms", p, ms)
		}
	}
}

func TestBlockWalkerStaysInFootprint(t *testing.T) {
	s := rig(t, 5)
	var outside int
	reg := s.Layout().DB2
	sink := isa.SinkFunc(func(ins *isa.Instr) {
		if !ins.Class.IsMemory() && !reg.Contains(ins.PC) {
			// Non-memory instructions in the DB2 segment carry DB2 PCs;
			// other segments use other regions, so only count PCs that fall
			// in NO region at all.
			if s.Layout().Space.Region(ins.PC) == nil {
				outside++
			}
		}
	})
	for i := 0; i < 10; i++ {
		if _, err := s.Execute(float64(i), ReqCreateVehicle, sink, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	if outside != 0 {
		t.Fatalf("%d PCs outside every region", outside)
	}
}
