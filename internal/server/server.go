package server

import (
	"errors"
	"fmt"
	"math/rand"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
	"jasworkload/internal/mem"
	"jasworkload/internal/stats"
	"jasworkload/internal/workload"
)

// Segment classifies CPU time by software component, the buckets of the
// paper's Figure 4 profile breakdown.
type Segment uint8

// Profile segments.
const (
	SegWASJit    Segment = iota // JIT-compiled Java in the WAS process
	SegWASNative                // WAS process outside JITed code: JVM, JIT, MQ/DB2 client libs
	SegWebServer                // the web server process
	SegDB2                      // the database server process
	SegKernel                   // operating system
	numSegments
)

// NumSegments is the number of profile segments.
const NumSegments = int(numSegments)

var segmentNames = [...]string{
	SegWASJit:    "WAS JITed",
	SegWASNative: "WAS non JITed",
	SegWebServer: "Web Server",
	SegDB2:       "DB2",
	SegKernel:    "Kernel",
}

// String names the segment as in Figure 4.
func (s Segment) String() string {
	if int(s) < len(segmentNames) {
		return segmentNames[s]
	}
	return fmt.Sprintf("segment(%d)", uint8(s))
}

// Config sizes the application server.
type Config struct {
	IR                 int    // injection rate: controls DB size and load
	Threads            int    // web/EJB container thread pool
	Connections        int    // DB connection pool
	BaselineCacheBytes uint64 // long-lived in-heap caches (EJB pools, prepared statements, metadata)
	SessionTTLMS       float64
	Seed               int64
	// App selects the deployed application (nil = jas2004).
	App *App
	// CPUFactor scales per-request CPU cost; JVM variants differ here (the
	// paper's footnote: Sovereign shows higher CPU utilization than J9 at
	// the same injection rate). 0 means 1.0.
	CPUFactor float64
}

// DefaultConfig returns a tuned configuration for the given IR.
func DefaultConfig(ir int) Config {
	return Config{
		IR:                 ir,
		Threads:            50,
		Connections:        30,
		BaselineCacheBytes: 188 << 20,
		SessionTTLMS:       20 * 60 * 1000,
		Seed:               1,
	}
}

// Result is the request-level outcome of one executed transaction.
type Result struct {
	Type         RequestType
	Instructions uint64
	Segments     [NumSegments]uint64
	AllocBytes   uint64
	DBOps        int
	LockAcquires int
}

// session is one simulated user's conversational state.
type session struct {
	obj       jvm.ObjID
	expiresAt float64
}

// Server is the SUT software stack above the hardware: WebSphere-like
// containers bound to the JVM heap, the JIT's method universe, and the
// database.
type Server struct {
	cfg    Config
	layout *mem.Layout
	jit    *jvm.JIT
	heap   *jvm.Heap
	dbase  *db.Database
	rng    *rand.Rand

	samplers  []*stats.Alias
	methodIdx [][]jvm.MethodID

	cacheRoot  jvm.ObjID
	cacheObjs  []jvm.ObjID
	sessRoot   jvm.ObjID
	sessions   map[int]*session
	sessionIDs []int // session uids in registration order (deterministic expiry scans)
	sessScan   int

	lockWords []uint64
	dbAddrs   []uint64 // addresses reported by the DB tracer, consumed by the trace emitter

	threadsBusy, connsBusy int
	threadWaits, connWaits uint64

	app       *App
	cpuFactor float64

	// dbctx is the execution context the pack's database scripts run in;
	// it shares the server's request RNG and owns the pack's key sequences.
	dbctx workload.DBCtx

	executed []uint64
	emitter  *traceEmitter
}

// New builds the server over its substrates. The database must already be
// loaded (db.Load); the JIT should be constructed over the method universe.
func New(cfg Config, layout *mem.Layout, jit *jvm.JIT, heap *jvm.Heap, database *db.Database) (*Server, error) {
	if layout == nil || jit == nil || heap == nil || database == nil {
		return nil, errors.New("server: nil substrate")
	}
	if cfg.IR <= 0 || cfg.Threads <= 0 || cfg.Connections <= 0 {
		return nil, fmt.Errorf("server: bad config %+v", cfg)
	}
	app := cfg.App
	if app == nil {
		app = Jas2004App()
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	cpu := cfg.CPUFactor
	if cpu == 0 {
		cpu = 1.0
	}
	s := &Server{
		cfg:       cfg,
		app:       app,
		cpuFactor: cpu,
		layout:    layout,
		jit:       jit,
		heap:      heap,
		dbase:     database,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sessions:  map[int]*session{},
		executed:  make([]uint64, len(app.Classes)),
	}
	s.dbctx = workload.DBCtx{DB: database, Rng: s.rng, IR: cfg.IR}
	database.SetTracer(func(addr uint64, write bool) {
		// Keep a short queue of recent DB buffer addresses for the trace:
		// the rows the current transactions actually touch.
		if len(s.dbAddrs) >= 256 {
			s.dbAddrs = s.dbAddrs[1:]
		}
		s.dbAddrs = append(s.dbAddrs, addr)
	})
	if err := s.buildSamplers(); err != nil {
		return nil, err
	}
	if err := s.buildHeapBaseline(); err != nil {
		return nil, err
	}
	s.emitter = newTraceEmitter(s)
	return s, nil
}

// buildSamplers creates per-request-type method samplers: each type biases
// toward a different slice of the universe (Browse leans on web/Java
// library conversion code, CreateVehicle on the EJB container), while all
// share the same warm core — that is what keeps the aggregate profile flat.
func (s *Server) buildSamplers() error {
	methods := s.jit.Methods()
	s.samplers = make([]*stats.Alias, len(s.app.Classes))
	s.methodIdx = make([][]jvm.MethodID, len(s.app.Classes))
	for rt, class := range s.app.Classes {
		weights := make([]float64, len(methods))
		ids := make([]jvm.MethodID, len(methods))
		for i, m := range methods {
			weights[i] = m.Weight * class.Bias(m.Component)
			ids[i] = m.ID
		}
		a, err := stats.NewAlias(weights)
		if err != nil {
			return err
		}
		s.samplers[rt] = a
		s.methodIdx[rt] = ids
	}
	return nil
}

// buildHeapBaseline allocates the long-lived in-heap state: container
// caches, prepared statements, class metadata mirrors. This is the bulk of
// the ~195 MB reachable set the paper measures.
func (s *Server) buildHeapBaseline() error {
	root, err := s.heap.Alloc(1024)
	if err != nil {
		return fmt.Errorf("server: baseline root: %w", err)
	}
	s.cacheRoot = root
	s.heap.AddRoot(root)
	const objSize = 4096
	n := int(s.cfg.BaselineCacheBytes / objSize)
	s.cacheObjs = make([]jvm.ObjID, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.heap.Alloc(objSize)
		if err != nil {
			return fmt.Errorf("server: baseline cache exceeds heap at %d objects: %w", i, err)
		}
		s.heap.AddRef(root, id)
		s.cacheObjs = append(s.cacheObjs, id)
	}
	sessRoot, err := s.heap.Alloc(512)
	if err != nil {
		return err
	}
	s.sessRoot = sessRoot
	s.heap.AddRoot(sessRoot)

	// Hot lock words: container monitors, pool latches, logger locks.
	for i := 0; i < 32; i++ {
		id, err := s.heap.Alloc(64)
		if err != nil {
			return err
		}
		s.heap.AddRef(root, id)
		s.lockWords = append(s.lockWords, s.heap.Addr(id))
	}
	return nil
}

// Heap exposes the JVM heap (the engine drives collections).
func (s *Server) Heap() *jvm.Heap { return s.heap }

// JIT exposes the JIT (for warmup and profiling).
func (s *Server) JIT() *jvm.JIT { return s.jit }

// DB exposes the database.
func (s *Server) DB() *db.Database { return s.dbase }

// Layout exposes the address-space layout.
func (s *Server) Layout() *mem.Layout { return s.layout }

// Executed returns per-class executed request counts.
func (s *Server) Executed() []uint64 { return s.executed }

// PoolWaits returns (thread pool waits, connection pool waits) — the
// contention the paper estimates through pthread_mutex_lock time.
func (s *Server) PoolWaits() (uint64, uint64) { return s.threadWaits, s.connWaits }

// ActiveSessions returns the live session count.
func (s *Server) ActiveSessions() int { return len(s.sessions) }

// App returns the deployed application.
func (s *Server) App() *App { return s.app }
