package server

import (
	"math"
	"math/rand"

	"jasworkload/internal/isa"
	"jasworkload/internal/jvm"
)

// traceEmitter synthesizes the instruction-level view of a request: program
// counters that walk JIT-compiled method bodies and native code regions,
// data addresses drawn from the live heap objects, DB buffer frames, stacks
// and statics, branch outcomes with per-site bias, and the LARX/STCX/SYNC
// synchronization idiom.
type traceEmitter struct {
	s   *Server
	rng *rand.Rand

	mixUser   *isa.MixSampler
	mixKernel *isa.MixSampler

	// Per-native-segment block walkers.
	walkers [NumSegments]blockWalker

	// Current JITed-method walk state.
	methods   []jvm.MethodID
	methodPos int // index into methods
	bodyLeft  int // instructions left in the current body
	curPC     uint64
	strayPC   uint64 // cold helper-method walk (phase-driven)
	strayLeft int

	// Data-side state.
	cluster     []jvm.ObjID
	clusterIdx  int
	clusterOff  uint64
	storeIdx    int
	storeOff    uint64
	stackBase   uint64
	staticHot   uint64
	dbIdx       int
	lastLoad    uint64  // most recent PRIVATE load address (read-modify-write stores)
	gcChase     int     // GC mark-phase pointer-chase cursor
	gcField     int     // field scan position within the chased object
	affinity    uint64  // core id: selects per-CPU kernel/web/db slabs
	driftBoost  float64 // per-request-type code-footprint factor
	dataBoost   float64 // per-request-type data-coldness factor
	phase       float64 // slow background-activity modulation (0.65..1.35)
	burstLeft   int     // remaining loads of a cold sequential scan
	burstAddr   uint64
	pendingStcx bool
	stcxEA      uint64

	// Temporal-reuse ring: recent data addresses get re-touched, the way
	// compiled code re-reads the fields it just loaded. This is what gives
	// the stream its ~92% L1D load hit rate (Figure 8).
	recentEA  [32]uint64
	recentPos int
	recentN   int
	privEA    [16]uint64
	privPos   int
	privN     int

	ins isa.Instr
	// batch is the emitter-owned reusable buffer between the generators
	// and the consuming sink: instructions are delivered in fixed-size
	// batches (ConsumeBatch when the sink supports it) instead of one
	// virtual call each, with every emit entry point flushing before it
	// returns so counters are always consistent at window boundaries.
	batch *isa.Batcher
}

// blockWalker produces a basic-block-shaped PC stream within a code
// footprint: runs of sequential instructions separated by jumps. Jumps are
// mostly page-local (loops, straight-line call chains within a hot
// function), sometimes to another page in a small hot working set (the
// active call graph), and occasionally to cold code anywhere in the
// footprint — the structure that gives real code its I-cache and IERAT
// locality while still having a multi-megabyte total footprint.
type blockWalker struct {
	base      uint64 // region base
	footprint uint64 // bytes of code ever executed
	hot       uint64 // bytes the hot working set may span
	pc        uint64
	blockLeft int
	pages     [12]uint64 // hot page working set (page-aligned offsets)
	pageInit  bool
	pageIdx   int
}

func (w *blockWalker) next(rng *rand.Rand, driftBoost float64) uint64 {
	if !w.pageInit {
		for i := range w.pages {
			w.pages[i] = (rng.Uint64() % (w.hot >> 12)) << 12
		}
		w.pc = w.base + w.pages[0]
		w.pageInit = true
	}
	if driftBoost <= 0 {
		driftBoost = 1
	}
	if w.blockLeft <= 0 {
		w.blockLeft = 10 + rng.Intn(22)
		r := rng.Float64()
		drift := 0.012 * driftBoost
		cold := 0.002
		switch {
		case r < 0.988-drift-cold:
			if r < 0.74 {
				// Page-local jump: loop backedge or intra-function branch.
				page := (w.pc - w.base) &^ 4095
				w.pc = w.base + page + (rng.Uint64()%1000)*4
			} else {
				// Jump within the hot page working set (active call graph).
				w.pc = w.base + w.pages[rng.Intn(len(w.pages))] + (rng.Uint64()%1000)*4
			}
		case r < 0.988-cold+drift:
			// Working-set drift: replace one hot page.
			w.pageIdx = (w.pageIdx + 1) % len(w.pages)
			w.pages[w.pageIdx] = (rng.Uint64() % (w.hot >> 12)) << 12
			w.pc = w.base + w.pages[w.pageIdx]
		default:
			// Cold code: exception paths, class loading, rare branches.
			w.pc = w.base + (rng.Uint64()%(w.footprint>>12))<<12 + (rng.Uint64()%1000)*4
		}
	}
	pc := w.pc
	w.pc += 4
	w.blockLeft--
	return pc
}

func newTraceEmitter(s *Server) *traceEmitter {
	mu, err := isa.NewMixSampler(isa.Jas2004UserMix(), s.cfg.Seed+101)
	if err != nil {
		panic("server: user mix invalid: " + err.Error())
	}
	mk, err := isa.NewMixSampler(isa.KernelMix(), s.cfg.Seed+102)
	if err != nil {
		panic("server: kernel mix invalid: " + err.Error())
	}
	l := s.layout
	e := &traceEmitter{
		s:         s,
		rng:       rand.New(rand.NewSource(s.cfg.Seed + 103)),
		mixUser:   mu,
		mixKernel: mk,
		stackBase: l.Stacks.Base,
		staticHot: l.JavaStat.Base,
		batch:     isa.NewBatcher(isa.DefaultBatchCap),
	}
	e.walkers[SegWASNative] = blockWalker{base: l.WASNative.Base, footprint: 24 << 20, hot: 1 << 20}
	e.walkers[SegWebServer] = blockWalker{base: l.WebServer.Base, footprint: 6 << 20, hot: 256 << 10}
	e.walkers[SegDB2] = blockWalker{base: l.DB2.Base, footprint: 16 << 20, hot: 512 << 10}
	e.walkers[SegKernel] = blockWalker{base: l.Kernel.Base, footprint: 10 << 20, hot: 512 << 10}
	return e
}

// phaseAt models the slow background modulation every real SUT has —
// database checkpointing, log flushing, OS daemons — that makes adjacent
// sampling windows differ. It is what gives the Figure 10 correlations
// their signal: windows in a cold phase see more misses of every kind AND
// higher CPI.
func phaseAt(nowMS float64) float64 {
	t := nowMS / 1000
	return 1 + 0.30*math.Sin(2*math.Pi*t/37) + 0.12*math.Sin(2*math.Pi*t/11.3)
}

// emitRequest streams detailFrac of the request's instructions by segment.
func (e *traceEmitter) emitRequest(sink isa.Sink, rt RequestType, res Result, methods []jvm.MethodID, cluster []jvm.ObjID, detailFrac float64, nowMS float64) {
	e.phase = phaseAt(nowMS)
	// Per-CPU data (kernel per-processor areas, connection-affine buffers)
	// follows the core the request runs on.
	e.affinity = 0
	if ider, ok := sink.(interface{ CoreID() int }); ok {
		e.affinity = uint64(ider.CoreID())
	}
	e.methods = methods
	e.methodPos = 0
	e.bodyLeft = 0
	// Sampled fidelity: emit against a proportionally scaled slice of the
	// request's objects so per-line reuse in the sampled stream matches
	// per-line reuse in the full stream.
	n := int(float64(len(cluster)) * detailFrac * 8)
	if n < 4 {
		n = 4
	}
	if n > len(cluster) {
		n = len(cluster)
	}
	e.cluster = cluster[:n]
	e.clusterIdx = 0
	e.clusterOff = 0
	e.storeIdx = 0
	e.storeOff = 0
	// A new request works on new data: its temporal-reuse ring starts
	// empty (this also keeps per-core request data core-local, matching
	// the paper's near-absence of cross-chip modified sharing).
	e.recentN = 0
	e.recentPos = 0
	e.privN = 0
	e.privPos = 0
	e.lastLoad = 0
	// Worker threads are core-affine in steady state: the request reuses
	// the warm stack of the core's current pool thread.
	e.stackBase = e.s.layout.Stacks.Base + e.affinity*(1<<20)

	// Request classes exercise different slices of the code base: heavy
	// back-end classes drag in more cold EJB/persistence code, light
	// browsing-style classes stay on the hot web path. The pack encodes
	// this per-class footprint difference in its page-locality knobs; it
	// is what makes windows with different request mixes differ in I-side
	// behaviour (and drives the paper's CPI/instruction-fetch correlation).
	e.driftBoost, e.dataBoost = e.s.app.Classes[rt].Boosts()
	// Affinity above is detected on the raw sink; the stream itself goes
	// through the batch buffer.
	e.batch.Bind(sink)
	for seg := Segment(0); seg < numSegments; seg++ {
		n := int(float64(res.Segments[seg]) * detailFrac)
		if n > 0 {
			e.emitSegment(e.batch, seg, n)
		}
	}
	e.batch.Flush()
}

// emitSegment streams n instructions attributed to one software component.
func (e *traceEmitter) emitSegment(sink isa.Sink, seg Segment, n int) {
	_ = e.driftBoost // applied inside the block walkers via nextPC
	kernel := seg == SegKernel
	mix := e.mixUser
	if kernel {
		mix = e.mixKernel
	}
	for i := 0; i < n; i++ {
		if e.pendingStcx {
			e.pendingStcx = false
			e.ins = isa.Instr{Class: isa.ClassStcx, PC: e.nextPC(seg), EA: e.stcxEA, Size: 8, Kernel: kernel}
			sink.Consume(&e.ins)
			continue
		}
		cl := mix.Next()
		pc := e.nextPC(seg)
		e.ins = isa.Instr{Class: cl, PC: pc, Kernel: kernel}
		switch cl {
		case isa.ClassLoad:
			e.ins.EA = e.loadEA(seg)
			e.ins.Size = 8
		case isa.ClassStore:
			e.ins.EA = e.storeEA(seg)
			e.ins.Size = 8
		case isa.ClassBranchCond:
			bias := condBias(pc)
			e.ins.Taken = e.rng.Float64() < bias
			// Data-dependent noise rises in cold phases (different rows,
			// different paths), so mispredictions co-move with misses.
			if e.phase > 0.65 && e.rng.Float64() < 0.050*(e.phase-0.65) {
				e.ins.Taken = !e.ins.Taken
			}
			if e.ins.Taken {
				e.ins.Target = pc - 64
			}
		case isa.ClassBranchIndirect:
			if e.rng.Float64() < 0.60 {
				// Most dynamic indirect branches are returns, predicted by
				// the hardware link stack rather than the target table.
				e.ins.Return = true
				e.ins.Target = pc + 8
				break
			}
			// Call sites live at stable block positions: quantize so the
			// target predictor sees recurring sites (dynamic indirect
			// executions concentrate in a modest set of hot call sites).
			e.ins.PC = pc&^2047 | 0x40
			e.ins.Target = e.indirectTarget(seg, e.ins.PC)
		case isa.ClassLarx:
			ea := e.lockEA()
			e.ins.EA = ea
			e.ins.Size = 8
			e.pendingStcx = true
			e.stcxEA = ea
		}
		sink.Consume(&e.ins)
	}
}

// nextPC produces the instruction address for the segment.
func (e *traceEmitter) nextPC(seg Segment) uint64 {
	if seg != SegWASJit {
		w := &e.walkers[seg]
		return w.next(e.rng, e.driftBoost*e.phase*e.phase)
	}
	// In cold phases, execution strays into cold helper methods (slow
	// paths, exception formatting, lazily loaded classes) — extra I-side
	// pressure that moves with everything else the cold phase drags in.
	if e.strayLeft > 0 {
		e.strayLeft--
		pc := e.strayPC
		e.strayPC += 4
		return pc
	}
	if e.phase > 0.9 && e.rng.Float64() < 0.004*(e.phase-0.9) {
		all := e.s.jit.Methods()
		m := all[e.rng.Intn(len(all))]
		if m.Compiled {
			e.strayLeft = 8 + e.rng.Intn(24)
			e.strayPC = m.CodeAddr
		}
	}
	if e.bodyLeft <= 0 {
		e.advanceMethod()
	}
	m := e.s.jit.Method(e.methods[e.methodPos%len(e.methods)])
	span := uint64(m.CodeSize)
	if span < 8 {
		span = 8
	}
	off := (uint64(m.BodyLen-e.bodyLeft) * 4) % span
	e.bodyLeft--
	base := m.CodeAddr
	if base == 0 {
		// Interpreted: the interpreter loop lives in JVM native code.
		base = e.s.layout.JVMNative.Base
		off %= 64 << 10
	}
	e.curPC = base + off
	return e.curPC
}

// advanceMethod moves to the next sampled method.
func (e *traceEmitter) advanceMethod() {
	e.methodPos++
	m := e.s.jit.Method(e.methods[e.methodPos%len(e.methods)])
	e.bodyLeft = m.BodyLen
}

// condBias derives a stable per-site taken probability: most compiled
// branch sites are strongly biased (guards, null checks), a few are
// data-dependent — this is what produces the paper's ~6% conditional
// misprediction rate on a gshare predictor.
func condBias(pc uint64) float64 {
	h := pc * 0x9e3779b97f4a7c15
	switch b := h >> 60; {
	case b < 12: // 75% of sites: guards, null checks — almost always one way
		return 0.985
	case b < 14: // 12.5%: loop exits and common-path tests
		return 0.91
	case b < 15: // 6.25%: data-dependent but skewed
		return 0.72
	default: // 6.25%: genuinely data-dependent
		return 0.55
	}
}

// indirectTarget picks the target of an indirect branch at the given site:
// most virtual call sites are monomorphic (stable receiver type), a
// minority are polymorphic — these produce the ~5% target misprediction
// rate, amplified by BTB capacity pressure from the large code footprint.
func (e *traceEmitter) indirectTarget(seg Segment, pc uint64) uint64 {
	h := pc * 0x9e3779b97f4a7c15
	// In cold phases, call sites see a wider mix of receiver types (cold
	// entity classes get loaded and dispatched), so target mispredictions
	// co-move with the instruction-cache pressure — the paper's observed
	// correlation between the two.
	coldPoly := e.phase > 0.9 && e.rng.Float64() < 0.022*(e.phase-0.9)
	if h&0xf0000 != 0 && !coldPoly { // ~94% monomorphic: stable per-site target
		return e.s.layout.JITCode.Base + (h>>13)%(48<<20)&^3
	}
	// Polymorphic: one of two receiver-type targets, skewed.
	var k uint64
	if e.rng.Float64() > 0.8 {
		k = 1
	}
	return e.s.layout.JITCode.Base + ((h>>13)+k*8192)%(48<<20)&^3
}

// remember records a data address in the temporal-reuse ring.
func (e *traceEmitter) remember(ea uint64) uint64 {
	e.recentEA[e.recentPos] = ea
	e.recentPos = (e.recentPos + 1) % len(e.recentEA)
	if e.recentN < len(e.recentEA) {
		e.recentN++
	}
	return ea
}

// rememberPriv records a request-private address: stores may safely
// read-modify-write these lines without creating cross-chip sharing.
func (e *traceEmitter) rememberPriv(ea uint64) uint64 {
	e.lastLoad = ea
	e.privEA[e.privPos] = ea
	e.privPos = (e.privPos + 1) % len(e.privEA)
	if e.privN < len(e.privEA) {
		e.privN++
	}
	return e.remember(ea)
}

// privReuse picks a recently loaded private line.
func (e *traceEmitter) privReuse() uint64 {
	a := e.privEA[e.rng.Intn(e.privN)]
	return a&^63 + uint64(e.rng.Intn(64))
}

// reuse re-touches a recent data address with small offset jitter
// (same-line field accesses).
func (e *traceEmitter) reuse() uint64 {
	a := e.recentEA[e.rng.Intn(e.recentN)]
	return a&^63 + uint64(e.rng.Intn(64))
}

// scratch returns the segment's per-core hot scratch area (request parse
// buffers, packed row work areas, per-CPU kernel counters): a tiny window
// that is both loaded and stored intensely.
func (e *traceEmitter) scratch(seg Segment) uint64 {
	l := e.s.layout
	off := e.affinity<<19 + uint64(e.rng.Intn(2<<10))
	switch seg {
	case SegDB2:
		return l.DBBuffer.Base + 1<<30 + off
	case SegWebServer:
		return l.WebServer.Base + 16<<20 + off
	case SegKernel:
		return l.Kernel.Base + 64<<20 + off
	default:
		return e.stackBase + uint64(e.rng.Intn(2<<10))
	}
}

// dbReplay returns an address the database recently touched.
func (e *traceEmitter) dbReplay() uint64 {
	n := len(e.s.dbAddrs)
	if n == 0 {
		return e.s.layout.DBBuffer.Base + uint64(e.rng.Intn(1<<22))
	}
	// Prefer the newest rows — the ones this very transaction touched —
	// over older rows from transactions that ran on other cores.
	span := 24
	if e.rng.Float64() < 0.2 {
		span = n
	}
	if span > n {
		span = n
	}
	a := e.s.dbAddrs[n-1-e.rng.Intn(span)]
	return a + uint64(e.rng.Intn(512))
}

// loadEA draws a data address for a load in the given segment.
func (e *traceEmitter) loadEA(seg Segment) uint64 {
	// An in-progress bulk entity scan runs to completion line by line.
	if e.burstLeft > 0 {
		e.burstLeft--
		e.burstAddr += 128
		return e.remember(e.burstAddr)
	}
	// Temporal reuse dominates every segment's loads.
	if e.recentN > 8 && e.rng.Float64() < 0.80 {
		return e.reuse()
	}
	switch seg {
	case SegDB2:
		// The database walks its buffer pool: packed-row work areas,
		// replayed row touches, and per-connection state.
		switch r := e.rng.Float64(); {
		case r < 0.45:
			return e.rememberPriv(e.scratch(seg))
		case r < 0.70:
			return e.remember(e.dbReplay())
		default:
			return e.rememberPriv(e.s.layout.DBBuffer.Base + 1<<30 + e.affinity<<19 + uint64(e.rng.Intn(1<<16)))
		}
	case SegWebServer:
		// Web server process data: parse buffers plus per-worker state.
		if e.rng.Float64() < 0.5 {
			return e.rememberPriv(e.scratch(seg))
		}
		return e.rememberPriv(e.s.layout.WebServer.Base + 16<<20 + e.affinity<<19 + uint64(e.rng.Intn(1<<15)))
	case SegKernel:
		// Kernel data: per-CPU control structures plus a wider cold tail.
		switch r := e.rng.Float64(); {
		case r < 0.5:
			return e.rememberPriv(e.scratch(seg))
		case r < 0.97:
			return e.rememberPriv(e.s.layout.Kernel.Base + 64<<20 + e.affinity<<19 + 8<<10 + uint64(e.rng.Intn(1<<13)))
		default:
			return e.remember(e.s.layout.Kernel.Base + 68<<20 + uint64(e.rng.Intn(1<<19)))
		}
	}
	// Bulk entity scans: cold phases traverse collections of entity beans
	// sequentially. These are the paper's "bursts of L1 misses" — they
	// allocate prefetch streams and expose latency, which is why stream
	// allocations correlate with CPI while isolated misses do not.
	if e.phase > 0.8 && e.rng.Float64() < 0.030*(e.phase-0.8) && len(e.s.cacheObjs) > 64 {
		idx := e.rng.Intn(len(e.s.cacheObjs) - 32)
		e.burstAddr = e.s.heap.Addr(e.s.cacheObjs[idx])
		e.burstLeft = 24 + e.rng.Intn(48)
		return e.remember(e.burstAddr)
	}
	// Java code: objects. The cache and statics shares scale with the
	// request class's data coldness (manufacturing work orders traverse
	// far more entity state than a browse does), which is what gives the
	// windows their mix-driven memory-behaviour variance.
	db := e.dataBoost * e.phase
	if db <= 0 {
		db = 1
	}
	cacheShare := 0.06 * db
	staticShare := 0.12 * db
	switch r := e.rng.Float64(); {
	case r < 0.30: // this request's own objects (hot, sequential-ish)
		return e.rememberPriv(e.clusterAddr())
	case r < 0.30+cacheShare: // long-lived caches: the large data working set
		return e.remember(e.cacheAddr())
	case r < 0.88-staticShare: // stack frames
		return e.rememberPriv(e.stackBase + uint64(e.rng.Intn(8<<10)))
	case r < 0.88: // recently loaded DB rows copied into beans
		return e.remember(e.dbReplay())
	default: // statics, class metadata, interned strings
		return e.remember(e.staticAddr())
	}
}

// storeEA draws a data address for a store: heavily skewed toward freshly
// allocated objects (bump-style allocation touches new cache lines), which
// is why store misses are more frequent than load misses (Figure 8) while
// remaining harmless under the write-through no-allocate L1.
func (e *traceEmitter) storeEA(seg Segment) uint64 {
	// Read-modify-write: most stores update a field on a request-private
	// line a load just brought in (the paper's store misses are only 1 in
	// 5 because the write-through L1 usually already holds the line from a
	// read; they stay off other chips' lines, which is why there is almost
	// no cross-chip modified traffic).
	if e.lastLoad != 0 && e.rng.Float64() < 0.52 {
		return e.lastLoad&^63 + uint64(e.rng.Intn(64))
	}
	switch seg {
	case SegDB2:
		switch r := e.rng.Float64(); {
		case r < 0.03: // rows this transaction wrote
			return e.dbReplay()
		case r < 0.99: // packed-row work areas (load-hot)
			return e.scratch(seg)
		default: // genuinely shared control blocks: the little true sharing there is
			return e.s.layout.DBBuffer.Base + 1<<29 + uint64(e.rng.Intn(1<<14))
		}
	case SegWebServer:
		return e.scratch(seg)
	case SegKernel:
		return e.scratch(seg)
	}
	switch r := e.rng.Float64(); {
	case r < 0.13: // initializing stores sweeping fresh objects
		return e.freshStoreAddr()
	case r < 0.64: // field updates on recently touched private data
		if e.privN > 4 {
			return e.privReuse()
		}
		return e.clusterAddr()
	default: // stack spills: the top frames
		return e.stackBase + uint64(e.rng.Intn(2<<10))
	}
}

// clusterAddr returns an address inside one of the request's own objects,
// advancing mostly sequentially (field-by-field scans that the sequential
// prefetcher can follow).
func (e *traceEmitter) clusterAddr() uint64 {
	if len(e.cluster) == 0 {
		return e.staticAddr()
	}
	id := e.cluster[e.clusterIdx%len(e.cluster)]
	sz := uint64(e.s.heap.ObjSize(id))
	if e.clusterOff+32 > sz || e.rng.Float64() < 0.1 {
		e.clusterIdx++
		e.clusterOff = 0
		id = e.cluster[e.clusterIdx%len(e.cluster)]
	}
	a := e.s.heap.Addr(id) + e.clusterOff
	e.clusterOff += 32
	return a
}

// freshStoreAddr sweeps sequentially through the cluster's objects.
func (e *traceEmitter) freshStoreAddr() uint64 {
	if len(e.cluster) == 0 {
		return e.staticAddr()
	}
	id := e.cluster[e.storeIdx%len(e.cluster)]
	sz := uint64(e.s.heap.ObjSize(id))
	if e.storeOff+16 > sz {
		e.storeIdx++
		e.storeOff = 0
		id = e.cluster[e.storeIdx%len(e.cluster)]
	}
	a := e.s.heap.Addr(id) + e.storeOff
	e.storeOff += 16
	return a
}

// cacheAddr picks a long-lived cache object with temporal skew: a hot core
// is touched constantly, the long tail rarely — giving the L2 a working
// set it cannot fully hold (Figure 9's 75% L2 hit rate).
func (e *traceEmitter) cacheAddr() uint64 {
	n := len(e.s.cacheObjs)
	if n == 0 {
		return e.staticAddr()
	}
	var idx int
	if e.rng.Float64() < 0.97 {
		// Hot subset: ~2% of the cache (a couple of MB at full scale —
		// just beyond what the L2 retains alongside everything else).
		idx = e.rng.Intn(1 + n/48)
	} else {
		idx = e.rng.Intn(n)
	}
	id := e.s.cacheObjs[idx]
	return e.s.heap.Addr(id) + uint64(e.rng.Intn(4096))
}

// staticAddr touches class statics/metadata: a modest hot window inside
// the 4 KB-paged static region (one source of DERAT pressure).
func (e *traceEmitter) staticAddr() uint64 {
	switch r := e.rng.Float64(); {
	case r < 0.70: // the hottest metadata
		return e.staticHot + uint64(e.rng.Intn(1<<15))
	case r < 0.99: // warm tier: TLB-resident, too big for the ERAT
		return e.staticHot + uint64(e.rng.Intn(192<<10))
	}
	return e.s.layout.JavaStat.Base + uint64(e.rng.Intn(int(e.s.layout.JavaStat.Size)))
}

// lockEA picks a lock word. Most monitors are striped per container
// worker (thread-affine), so the same core re-acquires them; a small
// fraction are truly global (class locks, logger) — the only lock lines
// that ever ping-pong between chips.
func (e *traceEmitter) lockEA() uint64 {
	n := len(e.s.lockWords)
	if n == 0 {
		return e.staticAddr()
	}
	var idx int
	if e.rng.Float64() < 0.9 {
		idx = int(e.affinity)*7 + e.rng.Intn(7)
	} else {
		idx = 28 + e.rng.Intn(4) // global locks
	}
	return e.s.lockWords[idx%n]
}

// EmitIdle streams n instructions of an idle system: the OS wait loop and
// timer ticks — a tiny working set with predictable branches, giving the
// paper's ~0.7 idle CPI.
func (s *Server) EmitIdle(sink isa.Sink, n int) {
	e := s.emitter
	e.batch.Bind(sink)
	sink = e.batch
	pcBase := s.layout.Kernel.Base + 96<<20
	for i := 0; i < n; i++ {
		pc := pcBase + uint64(i%64)*4
		cl := isa.ClassALU
		switch i % 16 {
		case 3:
			cl = isa.ClassLoad
		case 9:
			cl = isa.ClassBranchCond
		}
		e.ins = isa.Instr{Class: cl, PC: pc, Kernel: true}
		if cl == isa.ClassLoad {
			e.ins.EA = pcBase + 1<<16 + uint64(i%256)
			e.ins.Size = 8
		}
		if cl == isa.ClassBranchCond {
			e.ins.Taken = true
			e.ins.Target = pcBase
		}
		sink.Consume(&e.ins)
	}
	e.batch.Flush()
}

// EmitGC streams n instructions of garbage-collection work: tight loops
// (small code footprint in the JVM), pointer-chasing loads over the live
// heap during mark, sequential sweeps, almost no SYNC/LARX and fewer
// stores — reproducing the paper's GC-window observations (more branches,
// fewer mispredictions, orders-of-magnitude fewer TLB misses, lower store
// miss rate).
func (s *Server) EmitGC(sink isa.Sink, n int) {
	e := s.emitter
	gcMix, err := isa.NewMixSampler(isa.GCMix(), s.cfg.Seed+104)
	if err != nil {
		panic("server: gc mix invalid: " + err.Error())
	}
	// Parallel GC threads partition the heap: each core scans its own
	// stripe (no cross-chip sharing of mark state).
	var coreID uint64
	if ider, ok := sink.(interface{ CoreID() int }); ok {
		coreID = uint64(ider.CoreID())
	}
	e.batch.Bind(sink)
	sink = e.batch
	gcCode := s.layout.JVMNative.Base + 8<<20 // the collector's compact loop
	heapBase := s.layout.JavaHeap.Base
	heapSpan := s.heap.UsedBytes()
	if heapSpan < 1<<20 {
		heapSpan = 1 << 20
	}
	stripe := heapSpan / 4
	heapBase += coreID * stripe
	heapSpan = stripe
	lastScan := heapBase
	markCursor := uint64(0)
	for i := 0; i < n; i++ {
		pc := gcCode + uint64(i%512)*4
		cl := gcMix.Next()
		e.ins = isa.Instr{Class: cl, PC: pc}
		switch cl {
		case isa.ClassLoad:
			switch {
			case i%3 != 2:
				// Object scan: a sequential sweep the hardware prefetcher
				// follows (mark order respects allocation order — the
				// locality the paper suggests exploiting).
				markCursor = (markCursor + 96) % heapSpan
				e.ins.EA = heapBase + markCursor
			case len(s.cacheObjs) > 0:
				// Pointer chasing, but to neighbors allocated together, and
				// scanning each visited object's header+fields within one
				// line (typical Java objects are small — far smaller than
				// our 4 KB stand-ins, so a scan touches one line).
				if e.gcField >= 4 {
					jump := e.rng.Intn(257) - 128
					e.gcChase = (e.gcChase + len(s.cacheObjs) + jump) % len(s.cacheObjs)
					e.gcField = 0
				}
				id := s.cacheObjs[e.gcChase]
				e.ins.EA = s.heap.Addr(id) + uint64(e.gcField)*24
				e.gcField++
			default:
				e.ins.EA = heapBase + uint64(e.rng.Intn(int(heapSpan)))
			}
			lastScan = e.ins.EA
			e.ins.Size = 8
		case isa.ClassStore:
			// Mark bits live in the headers of just-scanned objects — the
			// line is already resident from the scan load, which is why
			// store misses DROP during GC (Figure 8).
			e.ins.EA = lastScan &^ 63
			e.ins.Size = 8
		case isa.ClassBranchCond:
			// Scan-loop branches: highly predictable.
			e.ins.Taken = e.rng.Float64() < 0.97
			e.ins.Target = pc - 32
		case isa.ClassBranchIndirect:
			// Scan dispatch on object type: stable per site.
			e.ins.PC = pc&^511 | 0x40
			e.ins.Target = gcCode + (e.ins.PC>>9&15)*256
		case isa.ClassLarx:
			e.ins.EA = s.layout.GCMeta.Base + uint64(e.rng.Intn(1024))
			e.pendingStcx = false
		}
		sink.Consume(&e.ins)
	}
	e.batch.Flush()
}
