package server

import (
	"fmt"

	"jasworkload/internal/isa"
	"jasworkload/internal/jvm"
	"jasworkload/internal/workload"
)

// Execute runs one request to completion at simulated time nowMS.
//
// Request-level effects (database work, heap allocation, JIT warming,
// session churn) always happen. When sink is non-nil, the request also
// emits detailFrac of its instruction stream into the sink — the sampled
// instruction-level fidelity the HPM experiments use.
//
// On jvm.ErrHeapFull the engine must collect and retry; the request's
// database work is rolled back.
func (s *Server) Execute(nowMS float64, rt RequestType, sink isa.Sink, detailFrac float64) (Result, error) {
	if int(rt) >= len(s.app.Classes) {
		return Result{}, fmt.Errorf("server: app %q has no request class %d", s.app.Name, rt)
	}
	sc := s.app.Classes[rt]
	res := Result{Type: rt}

	// Container pools: saturation is recorded as contention (the paper's
	// pthread_mutex_lock ~2% estimate); admission control is the engine's
	// concurrency model.
	if s.threadsBusy >= s.cfg.Threads {
		s.threadWaits++
	}
	s.threadsBusy++
	defer func() { s.threadsBusy-- }()
	if s.connsBusy >= s.cfg.Connections {
		s.connWaits++
	}
	s.connsBusy++
	defer func() { s.connsBusy-- }()

	// Session churn.
	if err := s.touchSession(nowMS, sc, &res); err != nil {
		return res, err
	}
	s.expireSessions(nowMS)

	// Database work.
	before := s.dbase.TouchCount()
	err := s.app.RunDB(&s.dbctx, int(rt))
	res.DBOps = s.dbase.TouchCount() - before
	if err != nil {
		return res, err
	}

	// Transient allocation cluster.
	cluster, err := s.allocCluster(sc, &res)
	if err != nil {
		return res, err
	}
	defer s.heap.RemoveRoot(cluster[0])

	// Method invocations through the JIT.
	methods := s.drawMethods(rt, sc.MethodCalls)
	var jitedBody, totalBody uint64
	for _, id := range methods {
		s.jit.Invoke(id)
		m := s.jit.Method(id)
		totalBody += uint64(m.BodyLen)
		if m.Compiled {
			jitedBody += uint64(m.BodyLen)
		}
	}
	warmFrac := 1.0
	if totalBody > 0 {
		warmFrac = float64(jitedBody) / float64(totalBody)
	}

	// Instruction accounting.
	total := float64(sc.BaseInstr) * s.cpuFactor * (1 + sc.JitterFrac*(2*s.rng.Float64()-1))
	wasShare := 1 - sc.WebShare - sc.DBShare - sc.KernelShare
	res.Instructions = uint64(total)
	res.Segments[SegWebServer] = uint64(total * sc.WebShare)
	res.Segments[SegDB2] = uint64(total * sc.DBShare)
	res.Segments[SegKernel] = uint64(total * sc.KernelShare)
	res.Segments[SegWASJit] = uint64(total * wasShare * sc.JITedShareOfWAS * warmFrac)
	res.Segments[SegWASNative] = uint64(total*wasShare) - res.Segments[SegWASJit]
	res.LockAcquires = int(total / 600) // LARX every ~600 instructions

	if sink != nil && detailFrac > 0 {
		s.emitter.emitRequest(sink, rt, res, methods, cluster, detailFrac, nowMS)
	}
	s.executed[rt]++
	return res, nil
}

// touchSession finds or creates the user's session.
func (s *Server) touchSession(nowMS float64, sc workload.Class, res *Result) error {
	users := s.cfg.IR * 30
	uid := s.rng.Intn(users)
	sess, ok := s.sessions[uid]
	if !ok {
		obj, err := s.heap.Alloc(8192)
		if err != nil {
			return fmt.Errorf("server: session alloc: %w", err)
		}
		s.heap.AddRoot(obj)
		res.AllocBytes += 8192
		// Small conversational records attached to the session; they die
		// with it much later, leaving small holes between long-lived
		// neighbors — dark matter.
		for i := 0; i < sc.PersistCrumbs; i++ {
			crumb, err := s.heap.Alloc(uint32(96 + s.rng.Intn(160)))
			if err != nil {
				return err
			}
			s.heap.AddRef(obj, crumb)
			res.AllocBytes += 256
		}
		sess = &session{obj: obj}
		s.sessions[uid] = sess
		s.sessionIDs = append(s.sessionIDs, uid)
	}
	sess.expiresAt = nowMS + s.cfg.SessionTTLMS
	return nil
}

// expireSessions lazily expires a few sessions per request, scanning the
// registration order deterministically.
func (s *Server) expireSessions(nowMS float64) {
	for i := 0; i < 4 && len(s.sessionIDs) > 0; i++ {
		s.sessScan %= len(s.sessionIDs)
		uid := s.sessionIDs[s.sessScan]
		sess, ok := s.sessions[uid]
		if !ok {
			// Stale registration entry: compact it away.
			s.sessionIDs = append(s.sessionIDs[:s.sessScan], s.sessionIDs[s.sessScan+1:]...)
			continue
		}
		if sess.expiresAt < nowMS {
			s.heap.RemoveRoot(sess.obj)
			delete(s.sessions, uid)
			s.sessionIDs = append(s.sessionIDs[:s.sessScan], s.sessionIDs[s.sessScan+1:]...)
			continue
		}
		s.sessScan++
	}
}

// allocCluster performs the request's transient allocations; the first
// object is the rooted cluster head referencing the rest. Sizes follow
// the app's allocation profile.
func (s *Server) allocCluster(sc workload.Class, res *Result) ([]jvm.ObjID, error) {
	head, err := s.heap.Alloc(256)
	if err != nil {
		return nil, err
	}
	s.heap.AddRoot(head)
	cluster := make([]jvm.ObjID, 1, sc.AllocObjects+1)
	cluster[0] = head
	res.AllocBytes += 256
	ap := s.app.Alloc
	for i := 0; i < sc.AllocObjects; i++ {
		var size uint32
		switch r := s.rng.Float64(); {
		case r < ap.SmallCum:
			size = uint32(ap.SmallBase + s.rng.Intn(ap.SmallSpan))
		case r < ap.MediumCum:
			size = uint32(ap.MediumBase + s.rng.Intn(ap.MediumSpan))
		default:
			size = uint32(ap.LargeBase + s.rng.Intn(ap.LargeSpan))
		}
		id, err := s.heap.Alloc(size)
		if err != nil {
			s.heap.RemoveRoot(head)
			return nil, err
		}
		s.heap.AddRef(head, id)
		cluster = append(cluster, id)
		res.AllocBytes += uint64(size)
	}
	return cluster, nil
}

// drawMethods samples the request's method invocations from the class's
// profile sampler.
func (s *Server) drawMethods(rt RequestType, n int) []jvm.MethodID {
	out := make([]jvm.MethodID, n)
	ids := s.methodIdx[rt]
	a := s.samplers[rt]
	for i := range out {
		out[i] = ids[a.Draw(s.rng)]
	}
	return out
}
