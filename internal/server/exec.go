package server

import (
	"fmt"

	"jasworkload/internal/db"
	"jasworkload/internal/isa"
	"jasworkload/internal/jvm"
)

// Execute runs one request to completion at simulated time nowMS.
//
// Request-level effects (database work, heap allocation, JIT warming,
// session churn) always happen. When sink is non-nil, the request also
// emits detailFrac of its instruction stream into the sink — the sampled
// instruction-level fidelity the HPM experiments use.
//
// On jvm.ErrHeapFull the engine must collect and retry; the request's
// database work is rolled back.
func (s *Server) Execute(nowMS float64, rt RequestType, sink isa.Sink, detailFrac float64) (Result, error) {
	sc := s.app.Scripts[rt]
	res := Result{Type: rt}

	// Container pools: saturation is recorded as contention (the paper's
	// pthread_mutex_lock ~2% estimate); admission control is the engine's
	// concurrency model.
	if s.threadsBusy >= s.cfg.Threads {
		s.threadWaits++
	}
	s.threadsBusy++
	defer func() { s.threadsBusy-- }()
	if s.connsBusy >= s.cfg.Connections {
		s.connWaits++
	}
	s.connsBusy++
	defer func() { s.connsBusy-- }()

	// Session churn.
	if err := s.touchSession(nowMS, sc, &res); err != nil {
		return res, err
	}
	s.expireSessions(nowMS)

	// Database work.
	before := s.dbase.TouchCount()
	err := s.app.RunDB(s, rt)
	res.DBOps = s.dbase.TouchCount() - before
	if err != nil {
		return res, err
	}

	// Transient allocation cluster.
	cluster, err := s.allocCluster(sc, &res)
	if err != nil {
		return res, err
	}
	defer s.heap.RemoveRoot(cluster[0])

	// Method invocations through the JIT.
	methods := s.drawMethods(rt, sc.methodCalls)
	var jitedBody, totalBody uint64
	for _, id := range methods {
		s.jit.Invoke(id)
		m := s.jit.Method(id)
		totalBody += uint64(m.BodyLen)
		if m.Compiled {
			jitedBody += uint64(m.BodyLen)
		}
	}
	warmFrac := 1.0
	if totalBody > 0 {
		warmFrac = float64(jitedBody) / float64(totalBody)
	}

	// Instruction accounting.
	total := float64(sc.baseInstr) * s.cpuFactor * (1 + sc.jitterFrac*(2*s.rng.Float64()-1))
	wasShare := 1 - sc.webShare - sc.dbShare - sc.kernelShare
	res.Instructions = uint64(total)
	res.Segments[SegWebServer] = uint64(total * sc.webShare)
	res.Segments[SegDB2] = uint64(total * sc.dbShare)
	res.Segments[SegKernel] = uint64(total * sc.kernelShare)
	res.Segments[SegWASJit] = uint64(total * wasShare * sc.jitedShareOfWAS * warmFrac)
	res.Segments[SegWASNative] = uint64(total*wasShare) - res.Segments[SegWASJit]
	res.LockAcquires = int(total / 600) // LARX every ~600 instructions

	if sink != nil && detailFrac > 0 {
		s.emitter.emitRequest(sink, rt, res, methods, cluster, detailFrac, nowMS)
	}
	s.executed[rt]++
	return res, nil
}

// touchSession finds or creates the user's session.
func (s *Server) touchSession(nowMS float64, sc script, res *Result) error {
	users := s.cfg.IR * 30
	uid := s.rng.Intn(users)
	sess, ok := s.sessions[uid]
	if !ok {
		obj, err := s.heap.Alloc(8192)
		if err != nil {
			return fmt.Errorf("server: session alloc: %w", err)
		}
		s.heap.AddRoot(obj)
		res.AllocBytes += 8192
		// Small conversational records attached to the session; they die
		// with it much later, leaving small holes between long-lived
		// neighbors — dark matter.
		for i := 0; i < sc.persistCrumbs; i++ {
			crumb, err := s.heap.Alloc(uint32(96 + s.rng.Intn(160)))
			if err != nil {
				return err
			}
			s.heap.AddRef(obj, crumb)
			res.AllocBytes += 256
		}
		sess = &session{obj: obj}
		s.sessions[uid] = sess
		s.sessionIDs = append(s.sessionIDs, uid)
	}
	sess.expiresAt = nowMS + s.cfg.SessionTTLMS
	return nil
}

// expireSessions lazily expires a few sessions per request, scanning the
// registration order deterministically.
func (s *Server) expireSessions(nowMS float64) {
	for i := 0; i < 4 && len(s.sessionIDs) > 0; i++ {
		s.sessScan %= len(s.sessionIDs)
		uid := s.sessionIDs[s.sessScan]
		sess, ok := s.sessions[uid]
		if !ok {
			// Stale registration entry: compact it away.
			s.sessionIDs = append(s.sessionIDs[:s.sessScan], s.sessionIDs[s.sessScan+1:]...)
			continue
		}
		if sess.expiresAt < nowMS {
			s.heap.RemoveRoot(sess.obj)
			delete(s.sessions, uid)
			s.sessionIDs = append(s.sessionIDs[:s.sessScan], s.sessionIDs[s.sessScan+1:]...)
			continue
		}
		s.sessScan++
	}
}

// allocCluster performs the request's transient allocations; the first
// object is the rooted cluster head referencing the rest.
func (s *Server) allocCluster(sc script, res *Result) ([]jvm.ObjID, error) {
	head, err := s.heap.Alloc(256)
	if err != nil {
		return nil, err
	}
	s.heap.AddRoot(head)
	cluster := make([]jvm.ObjID, 1, sc.allocObjects+1)
	cluster[0] = head
	res.AllocBytes += 256
	for i := 0; i < sc.allocObjects; i++ {
		var size uint32
		switch r := s.rng.Float64(); {
		case r < 0.70:
			size = uint32(64 + s.rng.Intn(448))
		case r < 0.95:
			size = uint32(1024 + s.rng.Intn(7168))
		default:
			size = uint32(16384 + s.rng.Intn(49152))
		}
		id, err := s.heap.Alloc(size)
		if err != nil {
			s.heap.RemoveRoot(head)
			return nil, err
		}
		s.heap.AddRef(head, id)
		cluster = append(cluster, id)
		res.AllocBytes += uint64(size)
	}
	return cluster, nil
}

// drawMethods samples the request's method invocations from the type's
// profile sampler.
func (s *Server) drawMethods(rt RequestType, n int) []jvm.MethodID {
	out := make([]jvm.MethodID, n)
	ids := s.methodIdx[rt]
	a := s.samplers[rt]
	for i := range out {
		out[i] = ids[a.Draw(s.rng)]
	}
	return out
}

// runJasDBScript performs a jas2004 request's database transaction.
func (s *Server) runJasDBScript(rt RequestType) error {
	switch rt {
	case ReqPurchase:
		return s.dbPurchase()
	case ReqManage:
		return s.dbManage()
	case ReqBrowse:
		return s.dbBrowse()
	case ReqCreateVehicle:
		return s.dbCreateVehicle()
	default:
		return fmt.Errorf("server: unknown request type %d", rt)
	}
}

func (s *Server) sizes() db.Sizes { return db.SizesFor(db.DefaultScaleConfig(s.cfg.IR)) }

func (s *Server) dbPurchase() error {
	sz := s.sizes()
	tx := s.dbase.Begin()
	if _, err := tx.Get(db.TCustomers, db.Value(s.rng.Intn(sz.Customers))); err != nil {
		return abortWith(tx, err)
	}
	model := db.Value(s.rng.Intn(sz.Vehicles))
	if _, err := tx.Get(db.TVehicles, model); err != nil {
		return abortWith(tx, err)
	}
	if _, err := tx.Get(db.TVehicles, db.Value(s.rng.Intn(sz.Vehicles))); err != nil {
		return abortWith(tx, err)
	}
	s.orderSeq++
	key := db.Value(sz.Orders) + s.orderSeq
	if err := tx.Insert(db.TOrders, db.Row{key, db.Value(s.rng.Intn(sz.Customers)), 0, 12000}); err != nil {
		return abortWith(tx, err)
	}
	for l := 0; l < 3; l++ {
		lineKey := key*8 + db.Value(l) + db.Value(sz.OrderLines)
		if err := tx.Insert(db.TOrderLines, db.Row{lineKey, key, model, 1}); err != nil {
			return abortWith(tx, err)
		}
	}
	if err := tx.Update(db.TInventory, model, 1, db.Value(s.rng.Intn(400))); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func (s *Server) dbManage() error {
	sz := s.sizes()
	tx := s.dbase.Begin()
	if _, err := tx.Get(db.TCustomers, db.Value(s.rng.Intn(sz.Customers))); err != nil {
		return abortWith(tx, err)
	}
	lo := db.Value(s.rng.Intn(sz.Orders))
	rows, err := s.dbase.Scan(db.TOrders, lo, lo+40, 10)
	if err != nil {
		return abortWith(tx, err)
	}
	if len(rows) > 0 {
		if err := tx.Update(db.TOrders, rows[0][0], 2, 1); err != nil {
			return abortWith(tx, err)
		}
	}
	return tx.Commit()
}

func (s *Server) dbBrowse() error {
	sz := s.sizes()
	lo := db.Value(s.rng.Intn(sz.Vehicles))
	if _, err := s.dbase.Scan(db.TVehicles, lo, lo+20, 13); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := s.dbase.Get(db.TInventory, db.Value(s.rng.Intn(sz.Vehicles))); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) dbCreateVehicle() error {
	sz := s.sizes()
	tx := s.dbase.Begin()
	wo := db.Value(s.rng.Intn(sz.WorkOrders))
	if _, err := tx.Get(db.TWorkOrders, wo); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.Update(db.TWorkOrders, wo, 3, 1); err != nil {
		return abortWith(tx, err)
	}
	for i := 0; i < 5; i++ {
		if _, err := tx.Get(db.TParts, db.Value(s.rng.Intn(sz.Parts))); err != nil {
			return abortWith(tx, err)
		}
	}
	model := db.Value(s.rng.Intn(sz.Vehicles))
	if err := tx.Update(db.TInventory, model, 1, db.Value(s.rng.Intn(400))); err != nil {
		return abortWith(tx, err)
	}
	s.workOrderSeq++
	if err := tx.Insert(db.TWorkOrders, db.Row{db.Value(sz.WorkOrders) + s.workOrderSeq, model, 2, 0}); err != nil {
		return abortWith(tx, err)
	}
	return tx.Commit()
}

func abortWith(tx *db.Txn, err error) error {
	if aerr := tx.Abort(); aerr != nil {
		return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
	}
	return err
}
