// Package server models the J2EE application-server tier: the web
// container, EJB container, thread and connection pools, a session store,
// and the deployed application — a workload pack — whose transaction
// scripts drive the database, the Java heap, and — when instruction-level
// detail is requested — the POWER4 core models through generated
// instruction traces.
package server

import "fmt"

// RequestType indexes a request class of the deployed application. Class
// semantics (name, arrival rate, deadline, transaction script) live in the
// workload pack; the server only uses the index.
type RequestType uint8

// The four classes of the default jas2004 pack, kept as named constants
// for the paper-specific tests and figures: the Dealer domain's web
// transactions (Purchase, Manage, Browse) and the Manufacturing domain's
// RMI work orders (CreateVehicle).
const (
	ReqPurchase RequestType = iota
	ReqManage
	ReqBrowse
	ReqCreateVehicle
	numRequestTypes
)

// NumRequestTypes is the number of request classes in the default jas2004
// pack.
const NumRequestTypes = int(numRequestTypes)

var requestNames = [...]string{
	ReqPurchase:      "Purchase",
	ReqManage:        "Manage",
	ReqBrowse:        "Browse",
	ReqCreateVehicle: "CreateVehicle",
}

// String names the request type under the default jas2004 taxonomy; apps
// with their own classes name them through App.Names.
func (r RequestType) String() string {
	if int(r) < len(requestNames) {
		return requestNames[r]
	}
	return fmt.Sprintf("request(%d)", uint8(r))
}

// IsWeb reports whether the jas2004 request arrives through the web
// container (Dealer domain) rather than RMI (Manufacturing domain). The
// benchmark's response-time rule differs: 90% of web requests must finish
// within 2 s, RMI within 5 s.
func (r RequestType) IsWeb() bool { return r != ReqCreateVehicle }
