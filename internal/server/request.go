// Package server models the J2EE application-server tier: the web
// container, EJB container, thread and connection pools, a session store,
// and the jas2004-like application whose transaction scripts drive the
// database, the Java heap, and — when instruction-level detail is requested
// — the POWER4 core models through generated instruction traces.
package server

import "fmt"

// RequestType enumerates the four transaction classes whose throughput the
// paper's Figure 2 plots: the Dealer domain's web transactions (Purchase,
// Manage, Browse) and the Manufacturing domain's RMI work orders
// (CreateVehicle).
type RequestType uint8

// The four jas2004 request classes.
const (
	ReqPurchase RequestType = iota
	ReqManage
	ReqBrowse
	ReqCreateVehicle
	numRequestTypes
)

// NumRequestTypes is the number of request classes.
const NumRequestTypes = int(numRequestTypes)

var requestNames = [...]string{
	ReqPurchase:      "Purchase",
	ReqManage:        "Manage",
	ReqBrowse:        "Browse",
	ReqCreateVehicle: "CreateVehicle",
}

// String names the request type.
func (r RequestType) String() string {
	if int(r) < len(requestNames) {
		return requestNames[r]
	}
	return fmt.Sprintf("request(%d)", uint8(r))
}

// IsWeb reports whether the request arrives through the web container
// (Dealer domain) rather than RMI (Manufacturing domain). The benchmark's
// response-time rule differs: 90% of web requests must finish within 2 s,
// RMI within 5 s.
func (r RequestType) IsWeb() bool { return r != ReqCreateVehicle }

// script is the per-type transaction shape: how much CPU, allocation and
// database work one request performs. Instruction counts are in simulated
// (scaled) units; the engine converts to paper-scale.
type script struct {
	// baseInstr is the nominal instruction count for the request.
	baseInstr int
	// jitterFrac is the relative spread of the instruction count.
	jitterFrac float64
	// allocBytes is the transient allocation volume per request.
	allocBytes int
	// allocObjects is the number of objects those bytes are spread over.
	allocObjects int
	// webShare / dbShare / kernelShare are fractions of baseInstr spent in
	// the web-server, DB2 and kernel segments (the rest is the WAS
	// process: JITed methods plus native/JVM code).
	webShare, dbShare, kernelShare float64
	// jitedShareOfWAS: fraction of the WAS segment in JIT-compiled code
	// (the paper: "half of the WAS runtime was ... not JIT compiled").
	jitedShareOfWAS float64
	// methodCalls is the number of Java method invocations sampled from
	// the flat profile per request.
	methodCalls int
	// persistCrumbs: small long-lived objects allocated per request
	// (order records, audit entries) whose interleaving with transients
	// creates the dark matter of Section 4.1.1.
	persistCrumbs int
}

// scripts is the per-type transaction catalog.
var scripts = [NumRequestTypes]script{
	ReqPurchase: {
		baseInstr: 125000, jitterFrac: 0.25, allocBytes: 520 << 10, allocObjects: 130,
		webShare: 0.09, dbShare: 0.22, kernelShare: 0.17, jitedShareOfWAS: 0.50,
		methodCalls: 95, persistCrumbs: 2,
	},
	ReqManage: {
		baseInstr: 95000, jitterFrac: 0.25, allocBytes: 380 << 10, allocObjects: 100,
		webShare: 0.10, dbShare: 0.20, kernelShare: 0.17, jitedShareOfWAS: 0.50,
		methodCalls: 75, persistCrumbs: 1,
	},
	ReqBrowse: {
		baseInstr: 72000, jitterFrac: 0.3, allocBytes: 430 << 10, allocObjects: 105,
		webShare: 0.12, dbShare: 0.18, kernelShare: 0.16, jitedShareOfWAS: 0.52,
		methodCalls: 60, persistCrumbs: 1,
	},
	ReqCreateVehicle: {
		baseInstr: 145000, jitterFrac: 0.25, allocBytes: 560 << 10, allocObjects: 140,
		webShare: 0.0, dbShare: 0.24, kernelShare: 0.18, jitedShareOfWAS: 0.48,
		methodCalls: 110, persistCrumbs: 2,
	},
}

// Script exposes a copy of the request's transaction shape (for tests and
// capacity planning).
func (r RequestType) Script() (baseInstr, allocBytes, methodCalls int) {
	s := scripts[r]
	return s.baseInstr, s.allocBytes, s.methodCalls
}

// Mix is the standard steady-state arrival mix: the Dealer domain splits
// 25/25/50 across Purchase/Manage/Browse at 1.0 tx/s per IR, and the
// Manufacturing domain adds 0.6 work orders/s per IR, for the benchmark's
// ~1.6 JOPS per IR.
type Mix struct {
	RatePerIR [NumRequestTypes]float64 // requests/second per unit of IR
}

// DefaultMix returns the jas2004 mix.
func DefaultMix() Mix {
	return Mix{RatePerIR: [NumRequestTypes]float64{
		ReqPurchase:      0.25,
		ReqManage:        0.25,
		ReqBrowse:        0.50,
		ReqCreateVehicle: 0.60,
	}}
}

// TotalPerIR returns total requests/second per unit of IR (the JOPS/IR
// ratio when all requests succeed).
func (m Mix) TotalPerIR() float64 {
	var t float64
	for _, r := range m.RatePerIR {
		t += r
	}
	return t
}
