package hpm

import (
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/power4"
)

func newStreamRig(t *testing.T, windowInstr uint64) (*StreamMux, *fakeSource) {
	t.Helper()
	src := &fakeSource{}
	mux, err := NewMultiplexer(src, StandardGroups(), 100)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewStreamMux(mux, windowInstr)
	if err != nil {
		t.Fatal(err)
	}
	return sm, src
}

func TestNewStreamMuxValidation(t *testing.T) {
	if _, err := NewStreamMux(nil, 100); err == nil {
		t.Fatal("nil multiplexer accepted")
	}
	mux, err := NewMultiplexer(&fakeSource{}, StandardGroups(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamMux(mux, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// TestStreamMuxRotation: one rotation per windowInstr instructions,
// regardless of how the stream is chopped into Consume/ConsumeBatch
// deliveries.
func TestStreamMuxRotation(t *testing.T) {
	sm, _ := newStreamRig(t, 1000)
	ins := isa.Instr{Class: isa.ClassALU}
	for i := 0; i < 2500; i++ {
		sm.Consume(&ins)
	}
	if got := sm.Mux().Windows(); got != 2 {
		t.Fatalf("per-instruction: %d windows after 2500 instr / 1000 window, want 2", got)
	}

	sm2, _ := newStreamRig(t, 1000)
	batch := make(isa.Batch, 250)
	for i := 0; i < 10; i++ {
		sm2.ConsumeBatch(batch)
	}
	if got := sm2.Mux().Windows(); got != 2 {
		t.Fatalf("batched: %d windows after 2500 instr / 1000 window, want 2", got)
	}
	if sm.Err() != nil || sm2.Err() != nil {
		t.Fatal(sm.Err(), sm2.Err())
	}
}

// TestStreamMuxSamplesDeltas: rotations snapshot the counter source, so
// each window's sample carries only that window's deltas.
func TestStreamMuxSamplesDeltas(t *testing.T) {
	sm, src := newStreamRig(t, 100)
	batch := make(isa.Batch, 100)

	src.bump(power4.EvCycles, 300)
	src.bump(power4.EvInstCompleted, 100)
	sm.ConsumeBatch(batch) // closes window 0 under group "cpi"

	samples := sm.Mux().Samples("cpi")
	if len(samples) != 1 {
		t.Fatalf("%d cpi samples, want 1", len(samples))
	}
	if got := samples[0].Values[power4.EvCycles]; got != 300 {
		t.Fatalf("window 0 cycles delta = %d, want 300", got)
	}

	// A batch larger than several windows fires every rotation due.
	src.bump(power4.EvCycles, 900)
	src.bump(power4.EvInstCompleted, 300)
	sm.ConsumeBatch(make(isa.Batch, 300))
	if got := sm.Mux().Windows(); got != 4 {
		t.Fatalf("%d windows, want 4", got)
	}
}
