package hpm

import (
	"math/rand"
	"reflect"
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
	"jasworkload/internal/power4"
)

func newStreamRig(t *testing.T, windowInstr uint64) (*StreamMux, *fakeSource) {
	t.Helper()
	src := &fakeSource{}
	mux, err := NewMultiplexer(src, StandardGroups(), 100)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewStreamMux(mux, windowInstr)
	if err != nil {
		t.Fatal(err)
	}
	return sm, src
}

func TestNewStreamMuxValidation(t *testing.T) {
	if _, err := NewStreamMux(nil, 100); err == nil {
		t.Fatal("nil multiplexer accepted")
	}
	mux, err := NewMultiplexer(&fakeSource{}, StandardGroups(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamMux(mux, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// TestStreamMuxRotation: one rotation per windowInstr instructions,
// regardless of how the stream is chopped into Consume/ConsumeBatch
// deliveries.
func TestStreamMuxRotation(t *testing.T) {
	sm, _ := newStreamRig(t, 1000)
	ins := isa.Instr{Class: isa.ClassALU}
	for i := 0; i < 2500; i++ {
		sm.Consume(&ins)
	}
	if got := sm.Mux().Windows(); got != 2 {
		t.Fatalf("per-instruction: %d windows after 2500 instr / 1000 window, want 2", got)
	}

	sm2, _ := newStreamRig(t, 1000)
	batch := make(isa.Batch, 250)
	for i := 0; i < 10; i++ {
		sm2.ConsumeBatch(batch)
	}
	if got := sm2.Mux().Windows(); got != 2 {
		t.Fatalf("batched: %d windows after 2500 instr / 1000 window, want 2", got)
	}
	if sm.Err() != nil || sm2.Err() != nil {
		t.Fatal(sm.Err(), sm2.Err())
	}
}

// coreSource adapts a live simulated core to CounterSource.
type coreSource struct{ c *power4.Core }

func (s coreSource) Counters() power4.Counters { return s.c.Counters() }

// TestStreamMuxPipelinedParity: a StreamMux multiplexing HPM groups over
// the decoupled detail pipeline must produce byte-identical samples to
// one multiplexing over the fused loop, at every stage-buffer size. The
// composition contract is the engine's: deliver the batch to the model,
// drain the pipeline (counters publish only at barriers), then advance
// the mux so due rotations sample the drained counters.
func TestStreamMuxPipelinedParity(t *testing.T) {
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A compact stream with enough class variety to move every group's
	// counters: line-local ALU runs, page-local loads, stores, branches.
	rng := rand.New(rand.NewSource(42))
	trace := make([]isa.Instr, 0, 40_000)
	pc, ea := layout.JITCode.Base, layout.JavaHeap.Base
	for len(trace) < 40_000 {
		switch r := rng.Intn(10); {
		case r < 5:
			trace = append(trace, isa.Instr{Class: isa.ClassALU, PC: pc})
		case r < 7:
			ea = layout.JavaHeap.Base + uint64(rng.Intn(1<<14))*8
			trace = append(trace, isa.Instr{Class: isa.ClassLoad, PC: pc, EA: ea, Size: 8})
		case r < 8:
			trace = append(trace, isa.Instr{Class: isa.ClassStore, PC: pc, EA: ea, Size: 8})
		default:
			taken := rng.Intn(2) == 0
			trace = append(trace, isa.Instr{Class: isa.ClassBranchCond, PC: pc, Taken: taken, Target: pc + 16})
		}
		pc += 4
	}
	const window = 2048

	type variant struct {
		name string
		cfg  *power4.PipelineConfig // nil = fused
	}
	variants := []variant{
		{"fused", nil},
		{"pipelined cap=7 depth=2", &power4.PipelineConfig{BatchCap: 7, Depth: 2}},
		{"pipelined cap=256 depth=4", &power4.PipelineConfig{BatchCap: 256, Depth: 4}},
		{"pipelined inline", &power4.PipelineConfig{Inline: true}},
	}
	type result struct {
		windows int
		samples map[string][]Sample
	}
	results := make([]result, len(variants))
	for vi, v := range variants {
		h, err := power4.NewHierarchy(power4.DefaultTopologyConfig())
		if err != nil {
			t.Fatal(err)
		}
		c, err := power4.NewCore(power4.DefaultCoreConfig(0), h, layout.Space)
		if err != nil {
			t.Fatal(err)
		}
		var sink isa.BatchSink = c
		drain := func() {}
		if v.cfg != nil {
			pipe, err := power4.NewPipeline([]*power4.Core{c}, h, *v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer pipe.Close()
			sink = pipe.Sink(0)
			drain = pipe.Drain
		}
		mux, err := NewMultiplexer(coreSource{c}, StandardGroups(), 100)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := NewStreamMux(mux, window)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(trace); off += window {
			end := off + window
			if end > len(trace) {
				end = len(trace)
			}
			sink.ConsumeBatch(trace[off:end])
			drain()
			sm.ConsumeBatch(trace[off:end])
		}
		if sm.Err() != nil {
			t.Fatal(sm.Err())
		}
		results[vi] = result{windows: mux.Windows(), samples: make(map[string][]Sample)}
		for _, g := range StandardGroups() {
			results[vi].samples[g.Name] = mux.Samples(g.Name)
		}
	}
	want := results[0]
	if want.windows == 0 {
		t.Fatal("no rotations fired; the parity check is hollow")
	}
	for vi := 1; vi < len(results); vi++ {
		if results[vi].windows != want.windows {
			t.Errorf("%s: %d windows, fused %d", variants[vi].name, results[vi].windows, want.windows)
		}
		if !reflect.DeepEqual(results[vi].samples, want.samples) {
			t.Errorf("%s: samples diverged from fused", variants[vi].name)
		}
	}
}

// TestStreamMuxSamplesDeltas: rotations snapshot the counter source, so
// each window's sample carries only that window's deltas.
func TestStreamMuxSamplesDeltas(t *testing.T) {
	sm, src := newStreamRig(t, 100)
	batch := make(isa.Batch, 100)

	src.bump(power4.EvCycles, 300)
	src.bump(power4.EvInstCompleted, 100)
	sm.ConsumeBatch(batch) // closes window 0 under group "cpi"

	samples := sm.Mux().Samples("cpi")
	if len(samples) != 1 {
		t.Fatalf("%d cpi samples, want 1", len(samples))
	}
	if got := samples[0].Values[power4.EvCycles]; got != 300 {
		t.Fatalf("window 0 cycles delta = %d, want 300", got)
	}

	// A batch larger than several windows fires every rotation due.
	src.bump(power4.EvCycles, 900)
	src.bump(power4.EvInstCompleted, 300)
	sm.ConsumeBatch(make(isa.Batch, 300))
	if got := sm.Mux().Windows(); got != 4 {
		t.Fatalf("%d windows, want 4", got)
	}
}
