package hpm

import (
	"errors"

	"jasworkload/internal/isa"
)

// StreamMux is the instruction-stream face of the multiplexer: it sits
// on the trace path as an isa.Sink/BatchSink and rotates the underlying
// Multiplexer's group every windowInstr consumed instructions, the way
// hpmcount reprograms the physical counters on a timer while the
// workload runs underneath. It performs no per-instruction work beyond
// advancing a position counter, so it is essentially free on the batched
// path: a whole batch advances the counter with one addition.
//
// Window boundaries are quantized to batch boundaries when fed through
// ConsumeBatch — a window can run up to one batch long before the
// rotation fires. That mirrors the real facility, where the counter
// reprogramming interrupt also lands at an instruction boundary only
// after the timer fires, and keeps the batch path free of per-
// instruction window checks.
//
// When the model underneath the stream is the decoupled detail pipeline
// (power4.Pipeline), rotations that sample live counters must land at
// drain barriers: the pipeline publishes counters to the cores only at
// Pipeline.Drain. The engine already ticks its monitors once per window
// right after the barrier, and a raw StreamMux composed with a pipelined
// sink must follow the same order — model batch, Drain, then advance the
// mux. TestStreamMuxPipelinedParity pins that composition: samples are
// byte-identical to the fused loop's at every stage-buffer size.
type StreamMux struct {
	mux         *Multiplexer
	windowInstr uint64
	pos         uint64
	err         error // first Tick error, latched
}

// NewStreamMux wraps mux so that a group rotation fires every
// windowInstr instructions of the consumed stream.
func NewStreamMux(mux *Multiplexer, windowInstr uint64) (*StreamMux, error) {
	if mux == nil {
		return nil, errors.New("hpm: nil multiplexer")
	}
	if windowInstr == 0 {
		return nil, errors.New("hpm: zero-instruction window")
	}
	return &StreamMux{mux: mux, windowInstr: windowInstr}, nil
}

// Consume implements isa.Sink.
func (s *StreamMux) Consume(ins *isa.Instr) { s.advance(1) }

// ConsumeBatch implements isa.BatchSink.
func (s *StreamMux) ConsumeBatch(b isa.Batch) { s.advance(uint64(len(b))) }

func (s *StreamMux) advance(n uint64) {
	s.pos += n
	for s.pos >= s.windowInstr {
		s.pos -= s.windowInstr
		if _, err := s.mux.Tick(); err != nil && s.err == nil {
			s.err = err
		}
	}
}

// Mux returns the wrapped multiplexer (for sample extraction).
func (s *StreamMux) Mux() *Multiplexer { return s.mux }

// Err returns the first rotation error encountered, if any.
func (s *StreamMux) Err() error { return s.err }
