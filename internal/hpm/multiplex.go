package hpm

import (
	"errors"
	"fmt"

	"jasworkload/internal/power4"
	"jasworkload/internal/stats"
)

// Multiplexer rotates a set of counter groups across windows, the way
// hpmcount time-multiplexes groups when more events are wanted than the
// hardware can count at once. Each group is active for one window in turn;
// extracted series are per-group (sparser than the run, scaled to rates by
// the consumer). The paper instead dedicated long spans to each group —
// both approaches are exposed so their trade-off can be studied: rotation
// sees every phase but with fewer samples per group.
type Multiplexer struct {
	mon    *Monitor
	groups []Group
	turn   int
	// samples per group, in rotation order.
	byGroup map[string][]Sample
	windows int
}

// NewMultiplexer builds a rotating monitor over the groups.
func NewMultiplexer(src CounterSource, groups []Group, windowMS int) (*Multiplexer, error) {
	if len(groups) == 0 {
		return nil, errors.New("hpm: no groups to multiplex")
	}
	for _, g := range groups {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	mon, err := NewMonitor(src, groups[0], windowMS)
	if err != nil {
		return nil, err
	}
	return &Multiplexer{
		mon:     mon,
		groups:  groups,
		byGroup: map[string][]Sample{},
	}, nil
}

// Tick closes the current window under the active group and rotates to the
// next group, mirroring counter reprogramming between windows.
func (m *Multiplexer) Tick() (Sample, error) {
	s := m.mon.Tick()
	m.byGroup[s.Group] = append(m.byGroup[s.Group], s)
	m.windows++
	m.turn = (m.turn + 1) % len(m.groups)
	if err := m.mon.SetGroup(m.groups[m.turn]); err != nil {
		return s, err
	}
	return s, nil
}

// Windows returns how many windows have been closed.
func (m *Multiplexer) Windows() int { return m.windows }

// Samples returns the samples recorded while the named group was active.
func (m *Multiplexer) Samples(group string) []Sample { return m.byGroup[group] }

// RateSeries extracts event-per-instruction values for the windows during
// which the event's group was active.
func (m *Multiplexer) RateSeries(group string, ev power4.Event) (*stats.Series, error) {
	g, ok := GroupByName(m.groups, group)
	if !ok {
		return nil, fmt.Errorf("hpm: group %q not multiplexed", group)
	}
	if !g.Has(ev) {
		return nil, fmt.Errorf("hpm: event %v not in group %q", ev, group)
	}
	out := stats.NewSeries(ev.String()+"/inst", m.mon.WindowMS()*len(m.groups))
	for _, s := range m.byGroup[group] {
		inst := float64(s.Values[power4.EvInstCompleted])
		if inst > 0 {
			out.Append(float64(s.Values[ev]) / inst)
		} else {
			out.Append(0)
		}
	}
	return out, nil
}
