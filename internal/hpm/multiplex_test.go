package hpm

import (
	"testing"

	"jasworkload/internal/power4"
)

func TestMultiplexerValidation(t *testing.T) {
	src := &fakeSource{}
	if _, err := NewMultiplexer(src, nil, 100); err == nil {
		t.Fatal("empty group list accepted")
	}
	if _, err := NewMultiplexer(src, []Group{{}}, 100); err == nil {
		t.Fatal("invalid group accepted")
	}
}

func TestMultiplexerRotation(t *testing.T) {
	src := &fakeSource{}
	gs := StandardGroups()[:3]
	m, err := NewMultiplexer(src, gs, 100)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 9; w++ {
		src.bump(power4.EvCycles, 100)
		src.bump(power4.EvInstCompleted, 50)
		src.bump(power4.EvBrCond, 10)
		if _, err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Windows() != 9 {
		t.Fatalf("windows = %d", m.Windows())
	}
	// Each group active for 3 of the 9 windows.
	for _, g := range gs {
		if n := len(m.Samples(g.Name)); n != 3 {
			t.Fatalf("group %q sampled %d windows, want 3", g.Name, n)
		}
	}
	// Branch counts only observed while the branch group was active.
	for _, s := range m.Samples("branch") {
		if s.Values[power4.EvBrCond] != 10 {
			t.Fatalf("branch window saw %d branches, want 10", s.Values[power4.EvBrCond])
		}
	}
	if _, ok := m.Samples("cpi")[0].Values[power4.EvBrCond]; ok {
		t.Fatal("cpi group exposed a branch event")
	}
}

func TestMultiplexerRateSeries(t *testing.T) {
	src := &fakeSource{}
	gs := StandardGroups()[:2] // cpi, branch
	m, _ := NewMultiplexer(src, gs, 100)
	for w := 0; w < 4; w++ {
		src.bump(power4.EvInstCompleted, 1000)
		src.bump(power4.EvLoads, 320)
		if _, err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := m.RateSeries("cpi", power4.EvLoads)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("series length = %d, want 2 (half the windows)", rs.Len())
	}
	if rs.At(0) != 0.32 {
		t.Fatalf("load rate = %v", rs.At(0))
	}
	if _, err := m.RateSeries("branch", power4.EvLoads); err == nil {
		t.Fatal("event outside group accepted")
	}
	if _, err := m.RateSeries("nope", power4.EvLoads); err == nil {
		t.Fatal("unknown group accepted")
	}
}
