// Package hpm models the POWER4 hardware performance monitor facility the
// paper collects its data with: eight counters form a group, exactly one
// group is active at a time, and a sampling monitor reads the active
// group's counters every window (0.1 s in the paper's experiments).
//
// Because only one group can be collected at once, events from different
// groups cannot be correlated against each other — the paper calls this
// limitation out explicitly, and the Monitor enforces it: a sample exposes
// only the active group's events.
package hpm

import (
	"errors"
	"fmt"

	"jasworkload/internal/power4"
	"jasworkload/internal/stats"
)

// GroupSize is the number of simultaneous hardware counters on POWER4.
const GroupSize = 8

// Group is a named set of at most GroupSize events that can be collected
// together.
type Group struct {
	Name   string
	Events []power4.Event
}

// Validate checks the group obeys the hardware constraint.
func (g Group) Validate() error {
	if g.Name == "" {
		return errors.New("hpm: unnamed group")
	}
	if len(g.Events) == 0 || len(g.Events) > GroupSize {
		return fmt.Errorf("hpm: group %q has %d events, want 1..%d", g.Name, len(g.Events), GroupSize)
	}
	seen := map[power4.Event]bool{}
	for _, e := range g.Events {
		if seen[e] {
			return fmt.Errorf("hpm: group %q repeats event %v", g.Name, e)
		}
		seen[e] = true
	}
	return nil
}

// Has reports whether the group counts event e.
func (g Group) Has(e power4.Event) bool {
	for _, ev := range g.Events {
		if ev == e {
			return true
		}
	}
	return false
}

// StandardGroups returns the counter groups used to regenerate the paper's
// figures. Like the real HPM group tables, cycles and completed
// instructions appear in every group so per-window CPI is always available.
func StandardGroups() []Group {
	base := []power4.Event{power4.EvCycles, power4.EvInstCompleted}
	mk := func(name string, events ...power4.Event) Group {
		return Group{Name: name, Events: append(append([]power4.Event{}, base...), events...)}
	}
	return []Group{
		mk("cpi", power4.EvInstDispatched, power4.EvCycWithCompletion,
			power4.EvLoads, power4.EvStores, power4.EvL1DLoadMiss, power4.EvL1DStoreMiss),
		mk("branch", power4.EvBrCond, power4.EvBrCondMispred,
			power4.EvBrIndirect, power4.EvBrTargetMispred),
		mk("translation", power4.EvDERATMiss, power4.EvIERATMiss,
			power4.EvDTLBMiss, power4.EvITLBMiss),
		mk("dsource", power4.EvDataFromL2, power4.EvDataFromL275Shr,
			power4.EvDataFromL275Mod, power4.EvDataFromL3, power4.EvDataFromL35,
			power4.EvDataFromMem),
		mk("prefetch", power4.EvL1DPrefetch, power4.EvL2Prefetch,
			power4.EvPrefStreamAlloc, power4.EvL1DLoadMiss),
		mk("ifetch", power4.EvL1IMiss, power4.EvIFetchL1, power4.EvIFetchL2,
			power4.EvIFetchL3, power4.EvIFetchMem),
		mk("sync", power4.EvSyncCount, power4.EvSyncSRQCycles,
			power4.EvLarx, power4.EvStcx, power4.EvStcxFail),
		mk("kernel", power4.EvKernelInst, power4.EvKernelCycles,
			power4.EvKernelSyncSRQCycles),
	}
}

// GroupByName finds a group in gs.
func GroupByName(gs []Group, name string) (Group, bool) {
	for _, g := range gs {
		if g.Name == name {
			return g, true
		}
	}
	return Group{}, false
}

// CounterSource supplies cumulative counters; the simulated cores (or an
// aggregation over them) implement this.
type CounterSource interface {
	Counters() power4.Counters
}

// Sample is one window's event deltas for the active group.
type Sample struct {
	Window int
	Group  string
	Values map[power4.Event]uint64
}

// Monitor samples a CounterSource window by window, honoring the
// one-active-group-at-a-time hardware constraint.
type Monitor struct {
	src      CounterSource
	group    Group
	windowMS int
	prev     power4.Counters
	samples  []Sample
}

// NewMonitor creates a monitor with the given active group and window
// length in milliseconds.
func NewMonitor(src CounterSource, group Group, windowMS int) (*Monitor, error) {
	if src == nil {
		return nil, errors.New("hpm: nil counter source")
	}
	if err := group.Validate(); err != nil {
		return nil, err
	}
	if windowMS <= 0 {
		return nil, fmt.Errorf("hpm: bad window %d ms", windowMS)
	}
	return &Monitor{src: src, group: group, windowMS: windowMS, prev: src.Counters()}, nil
}

// Group returns the active group.
func (m *Monitor) Group() Group { return m.group }

// WindowMS returns the sampling window length.
func (m *Monitor) WindowMS() int { return m.windowMS }

// SetGroup switches the active group. Like reprogramming the physical
// counters, this discards the in-flight window baseline.
func (m *Monitor) SetGroup(g Group) error {
	if err := g.Validate(); err != nil {
		return err
	}
	m.group = g
	m.prev = m.src.Counters()
	return nil
}

// Tick closes the current window: it reads the source, records the active
// group's deltas, and starts the next window.
func (m *Monitor) Tick() Sample {
	cur := m.src.Counters()
	delta := cur.Sub(&m.prev)
	m.prev = cur
	s := Sample{Window: len(m.samples), Group: m.group.Name, Values: make(map[power4.Event]uint64, len(m.group.Events))}
	for _, e := range m.group.Events {
		s.Values[e] = delta.Get(e)
	}
	m.samples = append(m.samples, s)
	return s
}

// Samples returns all recorded samples.
func (m *Monitor) Samples() []Sample { return m.samples }

// Reset discards recorded samples and re-baselines.
func (m *Monitor) Reset() {
	m.samples = nil
	m.prev = m.src.Counters()
}

// Series extracts one event's per-window series. It returns an error if
// the event is not in the active group — the hardware cannot observe it.
func (m *Monitor) Series(e power4.Event) (*stats.Series, error) {
	if !m.group.Has(e) {
		return nil, fmt.Errorf("hpm: event %v not in active group %q", e, m.group.Name)
	}
	s := stats.NewSeries(e.String(), m.windowMS)
	for _, smp := range m.samples {
		s.Append(float64(smp.Values[e]))
	}
	return s, nil
}

// RateSeries extracts e per completed instruction, window by window.
func (m *Monitor) RateSeries(e power4.Event) (*stats.Series, error) {
	num, err := m.Series(e)
	if err != nil {
		return nil, err
	}
	den, err := m.Series(power4.EvInstCompleted)
	if err != nil {
		return nil, err
	}
	return stats.RatioSeries(e.String()+"/inst", num, den)
}

// CPISeries extracts per-window CPI (available in every standard group).
func (m *Monitor) CPISeries() (*stats.Series, error) {
	cyc, err := m.Series(power4.EvCycles)
	if err != nil {
		return nil, err
	}
	inst, err := m.Series(power4.EvInstCompleted)
	if err != nil {
		return nil, err
	}
	return stats.RatioSeries("CPI", cyc, inst)
}
