package hpm

import (
	"testing"

	"jasworkload/internal/power4"
)

// fakeSource is a scriptable CounterSource.
type fakeSource struct {
	ctr power4.Counters
}

func (f *fakeSource) Counters() power4.Counters { return f.ctr }

func (f *fakeSource) bump(e power4.Event, n uint64) { f.ctr.Add(e, n) }

func cpiGroup() Group {
	g, _ := GroupByName(StandardGroups(), "cpi")
	return g
}

func TestGroupValidate(t *testing.T) {
	if err := (Group{}).Validate(); err == nil {
		t.Fatal("empty group accepted")
	}
	too := Group{Name: "big", Events: make([]power4.Event, GroupSize+1)}
	for i := range too.Events {
		too.Events[i] = power4.Event(i)
	}
	if err := too.Validate(); err == nil {
		t.Fatal("oversized group accepted")
	}
	dup := Group{Name: "dup", Events: []power4.Event{power4.EvCycles, power4.EvCycles}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate events accepted")
	}
}

func TestStandardGroupsValid(t *testing.T) {
	gs := StandardGroups()
	if len(gs) < 6 {
		t.Fatalf("only %d standard groups", len(gs))
	}
	for _, g := range gs {
		if err := g.Validate(); err != nil {
			t.Errorf("group %q invalid: %v", g.Name, err)
		}
		// Every group carries cycles + instructions for CPI.
		if !g.Has(power4.EvCycles) || !g.Has(power4.EvInstCompleted) {
			t.Errorf("group %q lacks CPI base events", g.Name)
		}
	}
	if _, ok := GroupByName(gs, "branch"); !ok {
		t.Fatal("branch group missing")
	}
	if _, ok := GroupByName(gs, "nope"); ok {
		t.Fatal("bogus group found")
	}
}

func TestMonitorValidation(t *testing.T) {
	src := &fakeSource{}
	if _, err := NewMonitor(nil, cpiGroup(), 100); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewMonitor(src, Group{}, 100); err == nil {
		t.Fatal("bad group accepted")
	}
	if _, err := NewMonitor(src, cpiGroup(), 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestMonitorDeltas(t *testing.T) {
	src := &fakeSource{}
	src.bump(power4.EvCycles, 1000) // pre-existing counts must not leak in
	m, err := NewMonitor(src, cpiGroup(), 100)
	if err != nil {
		t.Fatal(err)
	}
	src.bump(power4.EvCycles, 300)
	src.bump(power4.EvInstCompleted, 100)
	s := m.Tick()
	if s.Values[power4.EvCycles] != 300 || s.Values[power4.EvInstCompleted] != 100 {
		t.Fatalf("sample = %+v", s.Values)
	}
	// Second window sees only new increments.
	src.bump(power4.EvCycles, 50)
	s = m.Tick()
	if s.Values[power4.EvCycles] != 50 {
		t.Fatalf("second window cycles = %d", s.Values[power4.EvCycles])
	}
	if len(m.Samples()) != 2 {
		t.Fatalf("samples = %d", len(m.Samples()))
	}
	if m.Samples()[1].Window != 1 {
		t.Fatal("window numbering wrong")
	}
}

func TestMonitorGroupExclusivity(t *testing.T) {
	src := &fakeSource{}
	m, _ := NewMonitor(src, cpiGroup(), 100)
	src.bump(power4.EvBrCondMispred, 42) // branch-group event
	s := m.Tick()
	if _, ok := s.Values[power4.EvBrCondMispred]; ok {
		t.Fatal("sample exposed an event outside the active group")
	}
	if _, err := m.Series(power4.EvBrCondMispred); err == nil {
		t.Fatal("Series returned an out-of-group event")
	}
}

func TestMonitorSetGroupRebaselines(t *testing.T) {
	src := &fakeSource{}
	m, _ := NewMonitor(src, cpiGroup(), 100)
	src.bump(power4.EvBrCond, 500)
	branch, _ := GroupByName(StandardGroups(), "branch")
	if err := m.SetGroup(branch); err != nil {
		t.Fatal(err)
	}
	src.bump(power4.EvBrCond, 7)
	s := m.Tick()
	// The 500 pre-switch branches must not appear.
	if s.Values[power4.EvBrCond] != 7 {
		t.Fatalf("post-switch branches = %d, want 7", s.Values[power4.EvBrCond])
	}
	if err := m.SetGroup(Group{}); err == nil {
		t.Fatal("bad group accepted on switch")
	}
}

func TestMonitorSeriesAndCPI(t *testing.T) {
	src := &fakeSource{}
	m, _ := NewMonitor(src, cpiGroup(), 100)
	for i := 1; i <= 4; i++ {
		src.bump(power4.EvCycles, uint64(300*i))
		src.bump(power4.EvInstCompleted, 100)
		m.Tick()
	}
	cyc, err := m.Series(power4.EvCycles)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Len() != 4 || cyc.At(0) != 300 || cyc.At(3) != 1200 {
		t.Fatalf("cycle series = %v", cyc.Values)
	}
	cpi, err := m.CPISeries()
	if err != nil {
		t.Fatal(err)
	}
	if cpi.At(0) != 3 || cpi.At(3) != 12 {
		t.Fatalf("cpi series = %v", cpi.Values)
	}
	if cpi.WindowMS != 100 {
		t.Fatal("window length lost")
	}
}

func TestMonitorRateSeries(t *testing.T) {
	src := &fakeSource{}
	m, _ := NewMonitor(src, cpiGroup(), 100)
	src.bump(power4.EvInstCompleted, 1000)
	src.bump(power4.EvLoads, 320)
	m.Tick()
	rs, err := m.RateSeries(power4.EvLoads)
	if err != nil {
		t.Fatal(err)
	}
	if rs.At(0) != 0.32 {
		t.Fatalf("load rate = %v", rs.At(0))
	}
	if _, err := m.RateSeries(power4.EvBrCond); err == nil {
		t.Fatal("rate series for out-of-group event")
	}
}

func TestMonitorReset(t *testing.T) {
	src := &fakeSource{}
	m, _ := NewMonitor(src, cpiGroup(), 100)
	src.bump(power4.EvCycles, 10)
	m.Tick()
	src.bump(power4.EvCycles, 99)
	m.Reset()
	if len(m.Samples()) != 0 {
		t.Fatal("samples survived reset")
	}
	src.bump(power4.EvCycles, 5)
	s := m.Tick()
	if s.Values[power4.EvCycles] != 5 {
		t.Fatalf("post-reset delta = %d, want 5", s.Values[power4.EvCycles])
	}
}

func TestGroupHas(t *testing.T) {
	g := cpiGroup()
	if !g.Has(power4.EvLoads) {
		t.Fatal("cpi group should count loads")
	}
	if g.Has(power4.EvBrTargetMispred) {
		t.Fatal("cpi group should not count branch targets")
	}
}
