package power4

import (
	"math/rand"
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
)

// synthTrace builds a stream that exercises every instruction class with
// the locality shapes the fast paths key on (sequential fetch runs,
// page-local data runs) plus the shapes that must defeat them (line
// crossings, page crossings, kernel excursions, large-page regions,
// LARX/STCX pairs, SYNCs, and deliberately unmapped addresses).
func synthTrace(layout *mem.Layout, n int, seed int64) []isa.Instr {
	rng := rand.New(rand.NewSource(seed))
	trace := make([]isa.Instr, 0, n)
	pc := layout.JITCode.Base
	ea := layout.JavaHeap.Base
	kernel := false
	for len(trace) < n {
		switch r := rng.Intn(100); {
		case r < 50: // ALU, mostly falling through within a line
			trace = append(trace, isa.Instr{Class: isa.ClassALU, PC: pc, Kernel: kernel})
			pc += 4
		case r < 68: // load, mostly page-local with occasional far jumps
			if rng.Intn(8) == 0 {
				ea = layout.DBBuffer.Base + uint64(rng.Intn(1<<20))*64
			} else {
				ea = layout.JavaHeap.Base + uint64(rng.Intn(1<<16))*8
			}
			trace = append(trace, isa.Instr{Class: isa.ClassLoad, PC: pc, EA: ea, Size: 8, Kernel: kernel})
			pc += 4
		case r < 78: // store
			trace = append(trace, isa.Instr{Class: isa.ClassStore, PC: pc, EA: ea + uint64(rng.Intn(256)), Size: 8, Kernel: kernel})
			pc += 4
		case r < 88: // conditional branch, sometimes redirecting the PC
			taken := rng.Intn(3) != 0
			tgt := pc + 8
			if taken && rng.Intn(4) == 0 {
				tgt = layout.JITCode.Base + uint64(rng.Intn(1<<18))*4
			}
			trace = append(trace, isa.Instr{Class: isa.ClassBranchCond, PC: pc, Taken: taken, Target: tgt, Kernel: kernel})
			if taken {
				pc = tgt
			} else {
				pc += 4
			}
		case r < 92: // indirect branch / return
			ret := rng.Intn(2) == 0
			tgt := layout.JVMNative.Base + uint64(rng.Intn(1<<14))*4
			trace = append(trace, isa.Instr{Class: isa.ClassBranchIndirect, PC: pc, Target: tgt, Return: ret, Kernel: kernel})
			pc = tgt
		case r < 94: // LARX/STCX pair on a lock word
			lock := layout.JavaStat.Base + uint64(rng.Intn(64))*128
			trace = append(trace,
				isa.Instr{Class: isa.ClassLarx, PC: pc, EA: lock, Size: 4, Kernel: kernel},
				isa.Instr{Class: isa.ClassStcx, PC: pc + 4, EA: lock, Size: 4, Kernel: kernel})
			pc += 8
		case r < 96: // SYNC
			trace = append(trace, isa.Instr{Class: isa.ClassSync, PC: pc, Kernel: kernel})
			pc += 4
		case r < 98: // kernel-mode excursion toggle
			kernel = !kernel
			if kernel {
				pc = layout.Kernel.Base + uint64(rng.Intn(1<<12))*4
			} else {
				pc = layout.JITCode.Base + uint64(rng.Intn(1<<18))*4
			}
		default: // trace-generator bug: unmapped access (both sides)
			trace = append(trace,
				isa.Instr{Class: isa.ClassLoad, PC: pc, EA: 0x10, Size: 8, Kernel: kernel},
				isa.Instr{Class: isa.ClassALU, PC: 0x10, Kernel: kernel})
		}
	}
	return trace[:n]
}

func freshCore(t *testing.T) (*Core, *Hierarchy) {
	t.Helper()
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(DefaultTopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(DefaultCoreConfig(0), h, layout.Space)
	if err != nil {
		t.Fatal(err)
	}
	return core, h
}

// TestBatchFastPathEquivalence is the core guarantee of the batched
// pipeline: the same trace produces bit-identical counters whether it is
// streamed per instruction with fast paths disabled (the pre-batching
// reference model), per instruction with fast paths enabled, or in
// batches through ConsumeBatch.
func TestBatchFastPathEquivalence(t *testing.T) {
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := synthTrace(layout, 200_000, 1)

	ref, refHier := freshCore(t)
	ref.SetFastPaths(false)
	refHier.SetFastPaths(false)
	for i := range trace {
		ref.Consume(&trace[i])
	}

	fast, _ := freshCore(t)
	for i := range trace {
		fast.Consume(&trace[i])
	}

	batched, _ := freshCore(t)
	isa.Replay(trace, batched, isa.DefaultBatchCap)

	want := ref.Counters()
	for _, tc := range []struct {
		name string
		core *Core
	}{
		{"per-instruction fast paths", fast},
		{"batched fast paths", batched},
	} {
		got := tc.core.Counters()
		for _, ev := range AllEvents() {
			if got.Get(ev) != want.Get(ev) {
				t.Errorf("%s: %v = %d, reference %d", tc.name, ev, got.Get(ev), want.Get(ev))
			}
		}
		if tc.core.UnmappedAccesses() != ref.UnmappedAccesses() {
			t.Errorf("%s: unmapped = %d, reference %d", tc.name, tc.core.UnmappedAccesses(), ref.UnmappedAccesses())
		}
	}

	// The trace must actually exercise every class and the rare events,
	// or the comparison above proves nothing.
	for _, ev := range []Event{EvLoads, EvStores, EvBrCond, EvBrIndirect, EvLarx, EvStcx,
		EvSyncCount, EvKernelInst, EvL1DLoadMiss, EvL1IMiss, EvDERATMiss, EvIERATMiss} {
		if want.Get(ev) == 0 {
			t.Errorf("synthetic trace never hit %v", ev)
		}
	}
	if ref.UnmappedAccesses() == 0 {
		t.Error("synthetic trace never hit the unmapped path")
	}
}

// TestBatchSplitInvariance: chopping the same stream into different
// batch sizes must not change anything (batch boundaries are a transport
// detail, not a model event).
func TestBatchSplitInvariance(t *testing.T) {
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := synthTrace(layout, 50_000, 7)

	base, _ := freshCore(t)
	isa.Replay(trace, base, 1)
	want := base.Counters()

	for _, batchCap := range []int{3, 64, 256, 4096} {
		c, _ := freshCore(t)
		isa.Replay(trace, c, batchCap)
		if got := c.Counters(); got != want {
			t.Fatalf("batch cap %d changed counters", batchCap)
		}
	}
}

// TestSetFastPaths: the knob reports its previous state and actually
// gates the fast paths off (verified indirectly: disabling mid-stream
// must not desynchronize counters versus an always-disabled core).
func TestSetFastPaths(t *testing.T) {
	c, ch := freshCore(t)
	if prev := c.SetFastPaths(false); !prev {
		t.Fatal("fast paths should default to enabled")
	}
	if prev := c.SetFastPaths(true); prev {
		t.Fatal("SetFastPaths(false) did not stick")
	}
	if prev := ch.SetFastPaths(false); !prev {
		t.Fatal("hierarchy fast path should default to enabled")
	}
	if prev := ch.SetFastPaths(true); prev {
		t.Fatal("Hierarchy.SetFastPaths(false) did not stick")
	}

	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := synthTrace(layout, 20_000, 3)

	ref, refHier := freshCore(t)
	ref.SetFastPaths(false)
	refHier.SetFastPaths(false)
	for i := range trace {
		ref.Consume(&trace[i])
	}

	mixed, mixedHier := freshCore(t)
	for i := range trace {
		if i == len(trace)/2 {
			mixed.SetFastPaths(false)
			mixedHier.SetFastPaths(false)
		}
		mixed.Consume(&trace[i])
	}
	if mixed.Counters() != ref.Counters() {
		t.Fatal("toggling fast paths mid-stream changed counters")
	}
}
