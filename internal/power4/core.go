package power4

import (
	"fmt"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
)

// Penalties parameterizes the CPI model: cycles charged per
// microarchitectural event, plus dispatch-side (speculation) costs. The
// defaults are POWER4-flavoured latencies calibrated so the loaded-system
// CPI lands near the paper's ~3 while an ideal stream runs near 0.7
// (the paper's idle CPI).
type Penalties struct {
	BaseCPI float64 // issue-limited CPI with no stalls

	CondMispred   float64 // conditional direction misprediction flush
	TargetMispred float64 // indirect target misprediction flush

	DERATMiss float64 // ERAT reload from TLB (>= 14 cycles on POWER4)
	TLBWalk   float64 // hardware table walk after a TLB miss
	SLBWalk   float64 // segment-table walk after an SLB miss

	L2Latency     float64 // L1D miss satisfied by own L2
	RemoteL2      float64 // cache-to-cache transfer (L2.5/L2.75)
	L3Latency     float64 // MCM-local L3
	RemoteL3      float64 // L3.5
	MemLatency    float64 // DRAM
	LoadExposure  float64 // fraction of load latency exposed when not in a burst
	BurstExposure float64 // additional exposed fraction per extra miss in a burst
	PrefCovered   float64 // exposed fraction when a prefetch stream covers the miss
	StoreMissCost float64 // store-through cost per L1 store miss (mostly queued)

	IMissL2  float64 // front-end stall: I-fetch from L2
	IMissL3  float64
	IMissMem float64

	SyncDrainUser   float64 // SRQ-resident cycles per user SYNC
	SyncDrainKernel float64 // per kernel SYNC (deeper store queues in privileged paths)
	StcxCost        float64 // store-conditional completion cost

	// Dispatch-side model (instructions dispatched per completed).
	// POWER4 cracks many instructions into multiple internal operations
	// and re-dispatches groups; memory operations crack hardest. Because
	// the instruction mix is nearly constant window to window, the
	// speculation rate barely co-varies with CPI — the paper's finding.
	DispatchALU    float64 // internal ops dispatched per ALU instruction
	DispatchMem    float64 // per load/store (cracked + reissued)
	DispatchBranch float64 // per branch
	// WrongPathDispatch: wrong-path work counted per mispredict. Kept
	// small: the dispatch counter largely excludes flushed groups, which is
	// also why the paper sees speculation rate barely co-move with CPI.
	WrongPathDispatch float64
	RetryDispatchDiv  float64 // DERAT retry: one redispatch per this many cycles (7 on POWER4)
	// SpecAheadDispatch: when loads hit and the pipeline flows, the front
	// end runs further ahead of commit, dispatching more speculative work
	// per retired instruction. This opposes the mispredict/stall component,
	// which is why the paper measures almost no net correlation between
	// speculation rate and CPI.
	SpecAheadDispatch float64
}

// DefaultPenalties returns the calibrated POWER4 cost model.
func DefaultPenalties() Penalties {
	return Penalties{
		BaseCPI:           0.58,
		CondMispred:       13,
		TargetMispred:     15,
		DERATMiss:         16,
		TLBWalk:           110,
		SLBWalk:           90,
		L2Latency:         12,
		RemoteL2:          100,
		L3Latency:         70,
		RemoteL3:          150,
		MemLatency:        330,
		LoadExposure:      0.19,
		BurstExposure:     0.16,
		PrefCovered:       0.08,
		StoreMissCost:     1.4,
		IMissL2:           6,
		IMissL3:           36,
		IMissMem:          120,
		SyncDrainUser:     9,
		SyncDrainKernel:   26,
		StcxCost:          6,
		DispatchALU:       1.35,
		DispatchMem:       2.58,
		DispatchBranch:    1.85,
		WrongPathDispatch: 1.5,
		RetryDispatchDiv:  14,
		SpecAheadDispatch: 0.9,
	}
}

// CoreConfig configures one simulated core.
type CoreConfig struct {
	ID        int
	L1I       CacheConfig
	L1D       CacheConfig
	MMU       MMUConfig
	Branch    BranchPredictorConfig
	Penalties Penalties
}

// DefaultCoreConfig returns a POWER4 core: 32 KB 2-way FIFO write-through
// L1D, 64 KB direct-mapped L1I, both with 128-byte lines.
func DefaultCoreConfig(id int) CoreConfig {
	return CoreConfig{
		ID: id,
		L1I: CacheConfig{
			Name: "L1I", SizeBytes: 64 << 10, Ways: 1, LineBytes: 128, Repl: ReplFIFO,
		},
		L1D: CacheConfig{
			Name: "L1D", SizeBytes: 32 << 10, Ways: 2, LineBytes: 128, Repl: ReplFIFO,
		},
		MMU:       DefaultMMUConfig(),
		Branch:    DefaultBranchConfig(),
		Penalties: DefaultPenalties(),
	}
}

// Core is one POWER4 core: private L1s, ERATs, predictors and prefetcher,
// attached to the shared Hierarchy. It implements isa.Sink.
type Core struct {
	cfg    CoreConfig
	l1i    *Cache
	l1d    *Cache
	mmu    *MMU
	cond   *CondPredictor
	target *TargetPredictor
	pref   *Prefetcher
	hier   *Hierarchy
	space  *mem.AddressSpace

	ctr Counters

	cycFrac     float64 // fractional cycles not yet flushed into EvCycles
	compFrac    float64 // fractional completion-cycles
	dispFrac    float64 // fractional dispatches
	kcycFrac    float64
	burst       int    // current consecutive L1D-load-miss burst length
	lastILine   uint64 // last fetched I-line (sequential prefetch model)
	returnSeq   uint64 // return counter for the link-stack model
	sinceMiss   int    // instructions since the last load miss
	reservation uint64 // LARX reservation line (one per core, as in PowerPC)
	hasResv     bool
	unmapped    uint64 // accesses outside every region (trace-generator bugs)

	// Fast-path state. After any mapped fetch the fetched line is resident
	// in the (core-private) L1I and its page in the IERAT, so a following
	// fetch to the same 128-byte line is a guaranteed L1I+IERAT hit and can
	// skip both lookups. Likewise any mapped data access leaves its page in
	// the DERAT, so a following access to the same 4 KB frame is a
	// guaranteed DERAT hit and its translation is the cached one shifted by
	// the in-frame offset (regions are page-aligned, so a frame never spans
	// regions, and 128-byte lines never span pages). Skipping the redundant
	// lookups also skips their LRU refresh, which is safe: the skipped
	// touch is always immediately preceded by a real touch of the same
	// entry with nothing in between in that structure, so the relative
	// recency order among distinct entries — the only thing replacement
	// ever consults — is unchanged.
	noFast  bool // disables all fast paths (reference/pre-change behaviour)
	fastI   bool
	lastIPC uint64
	fastD   bool
	lastDEA uint64
	lastDTr mem.Translation
	// Load fast path: fastL is set when the last load hit the L1D AND the
	// prefetcher matched no stream (so its only effect was a tick, which
	// feeds nothing but relative stream recency). A following load to the
	// same 128-byte line while the DERAT fast path also holds repeats that
	// exact outcome — guaranteed L1D hit (the L1D is core-private and
	// nothing inserted since), guaranteed no stream match (streams only
	// change when they match or a miss allocates, neither of which
	// happened) — so the whole D-side reduces to the dispatch/burst
	// bookkeeping. Any L1D insert or prefetcher effect clears fastL.
	fastL   bool
	lastLEA uint64

	// transMemo caches AddressSpace.Translate results per 4 KB frame.
	// Translate is a pure function and regions are fixed after layout
	// construction, so a cached frame translation never goes stale; the
	// memo only skips the region binary search, never any model state.
	// Frames never span regions (regions are page-aligned, pages >= 4 KB),
	// so the frame-base translation shifts linearly within the frame.
	transMemo [transMemoSize]transMemoEntry
}

// transMemoSize is the number of direct-mapped translation memo entries
// (must be a power of two). 512 frames cover 2 MB of effective address
// space at ~20 KiB of memo state.
const transMemoSize = 512

type transMemoEntry struct {
	frame uint64 // EA>>12 plus one, so the zero value matches nothing
	tr    mem.Translation
}

// translate resolves ea through the memo (fast paths enabled) or straight
// through the address space (reference behaviour). ok is false for
// unmapped addresses.
func (c *Core) translate(ea uint64) (mem.Translation, bool) {
	if c.noFast {
		tr, err := c.space.Translate(ea)
		return tr, err == nil
	}
	frame := ea >> 12
	e := &c.transMemo[frame&(transMemoSize-1)]
	if e.frame == frame+1 {
		tr := e.tr
		tr.RA += ea & 4095
		return tr, true
	}
	tr, err := c.space.Translate(ea)
	if err != nil {
		return tr, false
	}
	base := tr
	base.RA -= ea & 4095
	e.frame, e.tr = frame+1, base
	return tr, true
}

// batchAcc accumulates the unconditional per-instruction counters of one
// batch into local scalars so the hot loop touches the Counters array
// once per batch instead of several times per instruction. Integer
// counter increments commute, so flushing them batched is exactly
// equivalent to incrementing in place.
type batchAcc struct {
	inst, kinst   uint64
	loads, stores uint64
	brCond, brInd uint64
	ifetchL1      uint64
}

func (a *batchAcc) flush(ctr *Counters) {
	ctr.Add(EvInstCompleted, a.inst)
	ctr.Add(EvKernelInst, a.kinst)
	ctr.Add(EvLoads, a.loads)
	ctr.Add(EvStores, a.stores)
	ctr.Add(EvBrCond, a.brCond)
	ctr.Add(EvBrIndirect, a.brInd)
	ctr.Add(EvIFetchL1, a.ifetchL1)
	*a = batchAcc{}
}

// NewCore wires a core to the shared hierarchy and address space.
func NewCore(cfg CoreConfig, hier *Hierarchy, space *mem.AddressSpace) (*Core, error) {
	if hier == nil || space == nil {
		return nil, fmt.Errorf("power4: core needs hierarchy and address space")
	}
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, err
	}
	mmu, err := NewMMU(cfg.MMU)
	if err != nil {
		return nil, err
	}
	cond, err := NewCondPredictor(cfg.Branch)
	if err != nil {
		return nil, err
	}
	tgt, err := NewTargetPredictor(cfg.Branch)
	if err != nil {
		return nil, err
	}
	return &Core{
		cfg: cfg, l1i: l1i, l1d: l1d, mmu: mmu,
		cond: cond, target: tgt, pref: &Prefetcher{},
		hier: hier, space: space,
	}, nil
}

// Counters returns a snapshot of the core's counters.
func (c *Core) Counters() Counters { return c.ctr.Snapshot() }

// CoreID returns the core's id within the system.
func (c *Core) CoreID() int { return c.cfg.ID }

// UnmappedAccesses reports trace addresses that fell outside every region.
func (c *Core) UnmappedAccesses() uint64 { return c.unmapped }

// addCycles charges cy cycles, attributing them to completion/stall and
// kernel accounting. The fractional adds live in the two inlinable
// front-ends below (chargeBase for the per-instruction completing charge,
// chargeStall for everything else); the whole-cycle spills into the
// counter array happen in flushCycles. Every accumulator is kept < 1
// after each charge, so checking all three in flushCycles regardless of
// which one crossed reproduces the original per-call flush sequence
// exactly.
func (c *Core) addCycles(cy float64, completing bool, kernel bool) {
	if completing {
		c.chargeBase(cy, kernel)
	} else {
		c.chargeStall(cy, kernel)
	}
}

// chargeBase charges completing cycles (the per-instruction base-CPI
// charge).
func (c *Core) chargeBase(cy float64, kernel bool) {
	c.cycFrac += cy
	c.compFrac += cy
	if kernel {
		c.kcycFrac += cy
	}
	if c.cycFrac >= 1 || c.compFrac >= 1 || c.kcycFrac >= 1 {
		c.flushCycles()
	}
}

// chargeStall charges non-completing (stall) cycles.
func (c *Core) chargeStall(cy float64, kernel bool) {
	c.cycFrac += cy
	if kernel {
		c.kcycFrac += cy
	}
	if c.cycFrac >= 1 || c.kcycFrac >= 1 {
		c.flushCycles()
	}
}

func (c *Core) flushCycles() {
	if c.cycFrac >= 1 {
		n := uint64(c.cycFrac)
		c.ctr.Add(EvCycles, n)
		c.cycFrac -= float64(n)
	}
	if c.compFrac >= 1 {
		n := uint64(c.compFrac)
		c.ctr.Add(EvCycWithCompletion, n)
		c.compFrac -= float64(n)
	}
	if c.kcycFrac >= 1 {
		n := uint64(c.kcycFrac)
		c.ctr.Add(EvKernelCycles, n)
		c.kcycFrac -= float64(n)
	}
}

func (c *Core) addDispatch(n float64) {
	c.dispFrac += n
	if c.dispFrac >= 1 {
		k := uint64(c.dispFrac)
		c.ctr.Add(EvInstDispatched, k)
		c.dispFrac -= float64(k)
	}
}

// SetFastPaths enables or disables the state-neutral fast paths. With
// enabled=false the core runs every instruction through the full model —
// the pre-batching reference behaviour used by equivalence tests and the
// reference benchmark. Counter results are identical either way; only
// the work done per instruction differs. It returns the previous setting.
func (c *Core) SetFastPaths(enabled bool) bool {
	prev := !c.noFast
	c.noFast = !enabled
	c.fastI = false
	c.fastD = false
	c.fastL = false
	c.l1i.SetReference(!enabled)
	c.l1d.SetReference(!enabled)
	c.mmu.SetReference(!enabled)
	return prev
}

// Consume processes one instruction through the full model.
func (c *Core) Consume(ins *isa.Instr) {
	var acc batchAcc
	c.consumeOne(ins, &acc)
	acc.flush(&c.ctr)
}

// ConsumeBatch implements isa.BatchSink: it processes the batch in a
// tight loop, accumulating the unconditional counters into local scalars
// flushed once per batch. The pure-ALU fast path is inlined here: an ALU
// instruction whose fetch stays in the current I-line touches no model
// state at all — it is counters plus BaseCPI accounting, nothing else.
func (c *Core) ConsumeBatch(b isa.Batch) {
	p := &c.cfg.Penalties
	var acc batchAcc
	for i := range b {
		ins := &b[i]
		if c.fastI && !c.noFast && ins.PC>>7 == c.lastIPC>>7 {
			switch ins.Class {
			case isa.ClassALU:
				acc.inst++
				if ins.Kernel {
					acc.kinst++
				}
				c.addDispatch(p.DispatchALU)
				// chargeBase(p.BaseCPI, ins.Kernel) with flushCycles spelled
				// out, so the float accumulation stays inline in the hot loop.
				c.cycFrac += p.BaseCPI
				c.compFrac += p.BaseCPI
				if ins.Kernel {
					c.kcycFrac += p.BaseCPI
				}
				if c.cycFrac >= 1 {
					n := uint64(c.cycFrac)
					c.ctr.Add(EvCycles, n)
					c.cycFrac -= float64(n)
				}
				if c.compFrac >= 1 {
					n := uint64(c.compFrac)
					c.ctr.Add(EvCycWithCompletion, n)
					c.compFrac -= float64(n)
				}
				if c.kcycFrac >= 1 {
					n := uint64(c.kcycFrac)
					c.ctr.Add(EvKernelCycles, n)
					c.kcycFrac -= float64(n)
				}
				acc.ifetchL1++
				c.lastIPC = ins.PC
				continue
			case isa.ClassBranchCond:
				// Same-line conditional branch: the predictor still runs
				// (its state advances per branch), but the dispatch, base
				// charge and fetch reduce to the ALU fast-path shape, in
				// consumeOne's operation order.
				acc.inst++
				if ins.Kernel {
					acc.kinst++
				}
				c.addDispatch(p.DispatchBranch)
				c.cycFrac += p.BaseCPI
				c.compFrac += p.BaseCPI
				if ins.Kernel {
					c.kcycFrac += p.BaseCPI
				}
				if c.cycFrac >= 1 {
					n := uint64(c.cycFrac)
					c.ctr.Add(EvCycles, n)
					c.cycFrac -= float64(n)
				}
				if c.compFrac >= 1 {
					n := uint64(c.compFrac)
					c.ctr.Add(EvCycWithCompletion, n)
					c.compFrac -= float64(n)
				}
				if c.kcycFrac >= 1 {
					n := uint64(c.kcycFrac)
					c.ctr.Add(EvKernelCycles, n)
					c.kcycFrac -= float64(n)
				}
				acc.ifetchL1++
				c.lastIPC = ins.PC
				acc.brCond++
				if !c.cond.Predict(ins.PC, ins.Taken) {
					c.ctr.Inc(EvBrCondMispred)
					c.chargeStall(p.CondMispred, ins.Kernel)
					c.addDispatch(p.WrongPathDispatch)
				}
				continue
			}
		}
		c.consumeOne(ins, &acc)
	}
	acc.flush(&c.ctr)
}

// consumeOne is the shared per-instruction model behind Consume and
// ConsumeBatch. Unconditional counters go through acc; rare/conditional
// events hit the counter array directly.
func (c *Core) consumeOne(ins *isa.Instr, acc *batchAcc) {
	p := &c.cfg.Penalties
	acc.inst++
	if ins.Kernel {
		acc.kinst++
	}
	switch {
	case ins.Class.IsMemory():
		c.addDispatch(p.DispatchMem)
	case ins.Class.IsBranch():
		c.addDispatch(p.DispatchBranch)
	default:
		c.addDispatch(p.DispatchALU)
	}
	c.chargeBase(p.BaseCPI, ins.Kernel)

	c.fetch(ins, acc)

	switch ins.Class {
	case isa.ClassLoad:
		acc.loads++
		c.load(ins)
	case isa.ClassStore:
		acc.stores++
		c.store(ins)
	case isa.ClassBranchCond:
		acc.brCond++
		if !c.cond.Predict(ins.PC, ins.Taken) {
			c.ctr.Inc(EvBrCondMispred)
			c.chargeStall(p.CondMispred, ins.Kernel)
			c.addDispatch(p.WrongPathDispatch)
		}
	case isa.ClassBranchIndirect:
		acc.brInd++
		mispred := false
		if ins.Return {
			// Returns are predicted by the link stack; it only fails on
			// deep call chains that overflow it (~3%).
			c.returnSeq++
			mispred = c.returnSeq%32 == 0
		} else {
			mispred = !c.target.Predict(ins.PC, ins.Target)
		}
		if mispred {
			c.ctr.Inc(EvBrTargetMispred)
			c.chargeStall(p.TargetMispred, ins.Kernel)
			c.addDispatch(p.WrongPathDispatch)
		}
	case isa.ClassLarx:
		acc.loads++
		c.ctr.Inc(EvLarx)
		c.load(ins)
		c.reservation = ins.EA >> 7
		c.hasResv = true
	case isa.ClassSync:
		c.ctr.Inc(EvSyncCount)
		drain := p.SyncDrainUser
		if ins.Kernel {
			drain = p.SyncDrainKernel
			c.ctr.Add(EvKernelSyncSRQCycles, uint64(drain))
		}
		c.ctr.Add(EvSyncSRQCycles, uint64(drain))
		c.chargeStall(drain, ins.Kernel)
	case isa.ClassStcx:
		// The STCX paired with a preceding LARX by the lock model.
		c.stcx(ins, acc)
	}
}

// stcx executes a store-conditional to ins.EA.
func (c *Core) stcx(ins *isa.Instr, acc *batchAcc) {
	p := &c.cfg.Penalties
	acc.stores++
	c.ctr.Inc(EvStcx)
	ok := c.hasResv && c.reservation == ins.EA>>7
	if ok {
		// Cross-chip interference is tracked at real-address granularity.
		if tr, mapped := c.translate(ins.EA); mapped {
			ok = !c.hier.ReservationLost(c.cfg.ID, tr.RA>>7)
		}
	}
	if !ok {
		c.ctr.Inc(EvStcxFail)
	}
	c.hasResv = false
	c.store(ins)
	c.chargeStall(p.StcxCost, ins.Kernel)
}

// fetch runs the I-side: IERAT/ITLB, then L1I and deeper levels. A fetch
// staying in the last fetched 128-byte line is a guaranteed IERAT and
// L1I hit (both structures are core-private and only fetch touches
// them), so it reduces to the EvIFetchL1 count.
func (c *Core) fetch(ins *isa.Instr, acc *batchAcc) {
	if c.fastI && !c.noFast && ins.PC>>7 == c.lastIPC>>7 {
		acc.ifetchL1++
		c.lastIPC = ins.PC
		return
	}
	p := &c.cfg.Penalties
	tr, ok := c.translate(ins.PC)
	if !ok {
		c.unmapped++
		c.fastI = false
		return
	}
	c.fastI = true
	c.lastIPC = ins.PC
	res := c.mmu.Inst(tr)
	if res.ERATMiss {
		c.ctr.Inc(EvIERATMiss)
		c.chargeStall(p.DERATMiss, ins.Kernel)
	}
	if res.TLBMiss {
		c.ctr.Inc(EvITLBMiss)
		c.chargeStall(p.TLBWalk, ins.Kernel)
	}
	if res.SLBMiss {
		c.ctr.Inc(EvSLBMiss)
		c.chargeStall(p.SLBWalk, ins.Kernel)
	}
	line := tr.RA >> 7
	if c.l1i.Lookup(tr.RA) {
		acc.ifetchL1++
		c.lastILine = line
		return
	}
	c.ctr.Inc(EvL1IMiss)
	// The front end prefetches sequential lines; a fall-through miss is
	// mostly hidden, a taken-branch miss to a new line is exposed.
	hide := 1.0
	if line == c.lastILine+1 {
		hide = 0.2
	}
	c.lastILine = line
	src := c.hier.FetchInst(c.cfg.ID, tr.RA)
	c.l1i.Insert(tr.RA)
	switch src {
	case SrcL2:
		c.ctr.Inc(EvIFetchL2)
		c.chargeStall(p.IMissL2*hide, ins.Kernel)
	case SrcL3:
		c.ctr.Inc(EvIFetchL3)
		c.chargeStall(p.IMissL3*hide, ins.Kernel)
	default:
		c.ctr.Inc(EvIFetchMem)
		c.chargeStall(p.IMissMem*hide, ins.Kernel)
	}
}

// dataTranslate is the D-side translation front end shared by load and
// store: effective-to-real translation, DERAT/TLB/SLB accounting, and
// the same-page fast path. An access to the same 4 KB frame as the last
// mapped data access is a guaranteed DERAT hit (the DERAT is
// core-private and only data accesses touch it), and because regions are
// page-aligned the translation is the cached one offset within the
// frame — so the pure-but-branchy region search and the DERAT probe are
// both skipped. ok is false for unmapped addresses (already counted).
func (c *Core) dataTranslate(ins *isa.Instr) (tr mem.Translation, ok bool) {
	if c.fastD && !c.noFast && ins.EA>>12 == c.lastDEA>>12 {
		tr = c.lastDTr
		tr.RA += ins.EA - c.lastDEA
		c.lastDEA = ins.EA
		c.lastDTr = tr
		return tr, true
	}
	p := &c.cfg.Penalties
	tr, ok = c.translate(ins.EA)
	if !ok {
		c.unmapped++
		c.fastD = false
		return tr, false
	}
	c.fastD = true
	c.lastDEA = ins.EA
	c.lastDTr = tr
	res := c.mmu.Data(tr)
	if res.ERATMiss {
		c.ctr.Inc(EvDERATMiss)
		c.chargeStall(p.DERATMiss, ins.Kernel)
		// Retried dispatches every RetryDispatchDiv cycles until translated.
		c.addDispatch(p.DERATMiss / p.RetryDispatchDiv)
	}
	if res.TLBMiss {
		c.ctr.Inc(EvDTLBMiss)
		c.chargeStall(p.TLBWalk, ins.Kernel)
	}
	if res.SLBMiss {
		c.ctr.Inc(EvSLBMiss)
		c.chargeStall(p.SLBWalk, ins.Kernel)
	}
	return tr, true
}

// load runs the D-side read path.
func (c *Core) load(ins *isa.Instr) {
	p := &c.cfg.Penalties
	if c.fastL && !c.noFast && ins.EA>>7 == c.lastLEA>>7 && c.fastD && ins.EA>>12 == c.lastDEA>>12 {
		// Repeat of the last load's line while the cached translation still
		// covers its page: guaranteed L1D hit with a no-op prefetcher probe
		// (see the fastL field comment), so only the flow bookkeeping runs.
		c.addDispatch(p.SpecAheadDispatch)
		c.sinceMiss++
		if c.sinceMiss > 12 {
			c.burst = 0
		}
		return
	}
	tr, ok := c.dataTranslate(ins)
	if !ok {
		return
	}
	line := tr.RA >> 7
	if c.l1d.Lookup(tr.RA) {
		c.addDispatch(p.SpecAheadDispatch)
		res := c.pref.OnAccess(line, false)
		if res.Covered {
			// A stream matched this hit and issued prefetches; the fills
			// below insert into the L1D, so the fast path must not arm.
			c.drainPrefetch(tr.RA)
			c.fastL = false
		} else {
			// No stream matched, so nothing accrued and the drain would be
			// a no-op (pending work is always drained right after the
			// OnAccess that produced it).
			c.fastL = true
			c.lastLEA = ins.EA
		}
		c.sinceMiss++
		if c.sinceMiss > 12 {
			c.burst = 0
		}
		return
	}
	c.fastL = false
	c.ctr.Inc(EvL1DLoadMiss)
	if c.sinceMiss <= 12 {
		c.burst++
	} else {
		c.burst = 1
	}
	c.sinceMiss = 0
	pres := c.pref.OnAccess(line, true)
	if pres.Allocated {
		c.ctr.Inc(EvPrefStreamAlloc)
	}
	c.drainPrefetch(tr.RA)
	src := c.hier.Load(c.cfg.ID, tr.RA)
	c.l1d.Insert(tr.RA)
	var lat float64
	switch src {
	case SrcL2:
		c.ctr.Inc(EvDataFromL2)
		lat = p.L2Latency
	case SrcL25Shr:
		c.ctr.Inc(EvDataFromL25Shr)
		lat = p.RemoteL2
	case SrcL25Mod:
		c.ctr.Inc(EvDataFromL25Shr) // same bucket; our topology never produces it
		lat = p.RemoteL2
	case SrcL275Shr:
		c.ctr.Inc(EvDataFromL275Shr)
		lat = p.RemoteL2
	case SrcL275Mod:
		c.ctr.Inc(EvDataFromL275Mod)
		lat = p.RemoteL2
	case SrcL3:
		c.ctr.Inc(EvDataFromL3)
		lat = p.L3Latency
	case SrcL35:
		c.ctr.Inc(EvDataFromL35)
		lat = p.RemoteL3
	default:
		c.ctr.Inc(EvDataFromMem)
		lat = p.MemLatency
	}
	// Exposure: a lone L1 miss is mostly hidden by out-of-order execution
	// (POWER4 keeps ~100 instructions in flight); bursts expose more of the
	// latency; a covering prefetch stream hides nearly all of it.
	exposure := p.LoadExposure + p.BurstExposure*float64(c.burst-1)
	if exposure > 1 {
		exposure = 1
	}
	if pres.Covered {
		exposure = p.PrefCovered
	}
	c.chargeStall(lat*exposure, ins.Kernel)
}

// store runs the D-side write path: write-through, no-allocate L1.
func (c *Core) store(ins *isa.Instr) {
	p := &c.cfg.Penalties
	tr, ok := c.dataTranslate(ins)
	if !ok {
		return
	}
	if !c.l1d.Probe(tr.RA) {
		// L1 store miss: the line is NOT allocated in L1 (stores write to
		// the L2 through the store queue), so useful L1 data is preserved.
		c.ctr.Inc(EvL1DStoreMiss)
		c.chargeStall(p.StoreMissCost, ins.Kernel)
	}
	c.hier.Store(c.cfg.ID, tr.RA)
}

// drainPrefetch converts pending prefetcher work into counters and cache
// fills ahead of the current access.
func (c *Core) drainPrefetch(ra uint64) {
	l1, l2, _ := c.pref.Take()
	if l1 == 0 && l2 == 0 {
		return
	}
	c.ctr.Add(EvL1DPrefetch, l1)
	c.ctr.Add(EvL2Prefetch, l2)
	// Install the next sequential lines.
	for i := uint64(1); i <= l1; i++ {
		c.l1d.Insert(ra + i*128)
	}
	for i := uint64(1); i <= l2; i++ {
		c.hier.PrefetchFill(c.cfg.ID, ra+i*128, i > 2)
	}
}
