package power4

import (
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
)

// freshSystem builds n cores over one shared hierarchy.
func freshSystem(t *testing.T, n int) ([]*Core, *Hierarchy, *mem.Layout) {
	t.Helper()
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(DefaultTopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]*Core, n)
	for i := range cores {
		cores[i], err = NewCore(DefaultCoreConfig(i), h, layout.Space)
		if err != nil {
			t.Fatal(err)
		}
	}
	return cores, h, layout
}

// interleave chops each core's trace into chunks and returns the global
// feed order: core 0 chunk 0, core 1 chunk 0, ..., core 0 chunk 1, ...
// This is the shape the engine produces — per-core runs interleaved at
// request granularity over the shared hierarchy.
func interleave(traces [][]isa.Instr, chunk int) (order []int, chunks [][]isa.Instr) {
	pos := make([]int, len(traces))
	for {
		progressed := false
		for c := range traces {
			if pos[c] >= len(traces[c]) {
				continue
			}
			end := pos[c] + chunk
			if end > len(traces[c]) {
				end = len(traces[c])
			}
			order = append(order, c)
			chunks = append(chunks, traces[c][pos[c]:end])
			pos[c] = end
			progressed = true
		}
		if !progressed {
			return order, chunks
		}
	}
}

// TestPipelineEquivalence is the tentpole guarantee: a multi-core stream
// over a shared hierarchy produces bit-identical HPM counters whether it
// runs through the fused loop or the decoupled three-stage pipeline — at
// every tested stage-buffer size and ring depth, including mid-stream
// drain barriers.
func TestPipelineEquivalence(t *testing.T) {
	const nCores = 4
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]isa.Instr, nCores)
	for c := range traces {
		traces[c] = synthTrace(layout, 60_000, int64(c+1))
	}
	order, chunks := interleave(traces, 777)

	// Fused reference: same global feed order.
	refCores, _, _ := freshSystem(t, nCores)
	for i, c := range order {
		refCores[c].ConsumeBatch(chunks[i])
	}
	want := make([]Counters, nCores)
	for i, c := range refCores {
		want[i] = c.Counters()
	}

	for _, cfg := range []PipelineConfig{
		{BatchCap: 1, Depth: 1},
		{BatchCap: 7, Depth: 2},
		{BatchCap: 256, Depth: 4},
		{BatchCap: 4096, Depth: 4},
		{BatchCap: 1, Inline: true},
		{BatchCap: 256, Inline: true},
		{BatchCap: 4096, Inline: true},
	} {
		cores, hier, _ := freshSystem(t, nCores)
		pipe, err := NewPipeline(cores, hier, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range order {
			pipe.Sink(c).ConsumeBatch(chunks[i])
			// Periodic drain barriers (the engine drains once per window):
			// they must be invisible to the final counts.
			if i%97 == 0 {
				pipe.Drain()
			}
		}
		pipe.Close()
		for ci, c := range cores {
			got := c.Counters()
			for _, ev := range AllEvents() {
				if got.Get(ev) != want[ci].Get(ev) {
					t.Errorf("cap=%d depth=%d core %d: %v = %d, fused %d",
						cfg.BatchCap, cfg.Depth, ci, ev, got.Get(ev), want[ci].Get(ev))
				}
			}
			if c.UnmappedAccesses() != refCores[ci].UnmappedAccesses() {
				t.Errorf("cap=%d core %d: unmapped = %d, fused %d",
					cfg.BatchCap, ci, c.UnmappedAccesses(), refCores[ci].UnmappedAccesses())
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestPipelineDrainBarrier: counters published at a drain barrier must
// equal the fused loop's counters at the same stream position — the
// engine reads per-window CPI at exactly these points, and the CPI
// feedback loop makes any divergence compound into different scheduling.
func TestPipelineDrainBarrier(t *testing.T) {
	cores, hier, layout := freshSystem(t, 2)
	refCores, _, _ := freshSystem(t, 2)
	traces := [][]isa.Instr{
		synthTrace(layout, 30_000, 11),
		synthTrace(layout, 30_000, 12),
	}
	order, chunks := interleave(traces, 500)

	pipe, err := NewPipeline(cores, hier, PipelineConfig{BatchCap: 64, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	for i, c := range order {
		pipe.Sink(c).ConsumeBatch(chunks[i])
		refCores[c].ConsumeBatch(chunks[i])
		pipe.Drain()
		var got, want Counters
		for k := range cores {
			g, w := cores[k].Counters(), refCores[k].Counters()
			got.AddAll(&g)
			want.AddAll(&w)
		}
		if got != want {
			t.Fatalf("chunk %d: drained aggregate diverged from fused", i)
		}
	}
}

// TestPipelineConsume: the per-instruction Sink path must feed the same
// pipeline state as ConsumeBatch.
func TestPipelineConsume(t *testing.T) {
	cores, hier, layout := freshSystem(t, 1)
	refCores, _, _ := freshSystem(t, 1)
	trace := synthTrace(layout, 20_000, 5)

	pipe, err := NewPipeline(cores, hier, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sink := pipe.Sink(0)
	if sink.(interface{ CoreID() int }).CoreID() != 0 {
		t.Fatal("pipeline sink must expose CoreID for emitter affinity")
	}
	for i := range trace {
		sink.Consume(&trace[i])
		refCores[0].Consume(&trace[i])
	}
	pipe.Close()
	if cores[0].Counters() != refCores[0].Counters() {
		t.Fatal("per-instruction pipeline feed diverged from fused")
	}
}

// TestPipelineCloseIdempotent: Close twice must not hang or panic, and a
// drained pipeline's batches must all have returned to the pool (no
// steady-state allocation).
func TestPipelineCloseIdempotent(t *testing.T) {
	cores, hier, layout := freshSystem(t, 1)
	trace := synthTrace(layout, 5_000, 9)
	pipe, err := NewPipeline(cores, hier, PipelineConfig{BatchCap: 32, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	isa.Replay(trace, pipe.Sink(0), 64)
	pipe.Close()
	pipe.Close()
}
