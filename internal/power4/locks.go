package power4

// Reservation tracking for LARX/STCX. PowerPC gives each processor one
// reservation; it is lost when any other processor stores to the reserved
// granule. The Hierarchy tracks recent remote stores per line so a core's
// STCX can detect interference — the source of STCX failures under lock
// contention.

// reservationWindow caps how many recently stored-to lines are remembered.
const reservationWindow = 4096

// noteRemoteStore records that chip stored to line (called from Store).
// The ledger is a FIFO ring so that eviction is deterministic.
func (h *Hierarchy) noteRemoteStore(chip int, line uint64) {
	if h.recentStores == nil {
		h.recentStores = make(map[uint64]uint8, reservationWindow)
		h.storeRing = make([]uint64, 0, reservationWindow)
	}
	m, ok := h.recentStores[line]
	if !ok {
		if len(h.storeRing) >= reservationWindow {
			oldest := h.storeRing[h.storeRingPos]
			delete(h.recentStores, oldest)
			h.storeFastN = 0 // the evicted record may back a fast-path entry
			h.storeRing[h.storeRingPos] = line
			h.storeRingPos = (h.storeRingPos + 1) % reservationWindow
		} else {
			h.storeRing = append(h.storeRing, line)
		}
	}
	if h.noFast {
		// Reference mode: the pre-change unconditional read-modify-write.
		h.recentStores[line] |= 1 << uint(chip)
		return
	}
	if m&(1<<uint(chip)) == 0 {
		h.recentStores[line] = m | 1<<uint(chip)
	}
}

// ReservationLost reports whether any other chip stored to line since it
// was recorded, consuming the record for this core's chip.
func (h *Hierarchy) ReservationLost(core int, line uint64) bool {
	h.storeFastN = 0 // may consume a recentStores record the fast path relies on
	chip := h.ChipOf(core)
	m, ok := h.recentStores[line]
	if !ok {
		return false
	}
	others := m &^ (1 << uint(chip))
	delete(h.recentStores, line)
	return others != 0
}
