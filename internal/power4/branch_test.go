package power4

import (
	"math/rand"
	"testing"
)

func TestCondPredictorLearnsBias(t *testing.T) {
	p, err := NewCondPredictor(DefaultBranchConfig())
	if err != nil {
		t.Fatal(err)
	}
	// An always-taken branch must be predicted almost perfectly.
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x4000, true) {
			wrong++
		}
	}
	if wrong > 3 {
		t.Fatalf("always-taken branch mispredicted %d/1000", wrong)
	}
}

func TestCondPredictorLearnsPattern(t *testing.T) {
	p, _ := NewCondPredictor(DefaultBranchConfig())
	// Alternating T/N is capturable with global history.
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !p.Predict(0x4000, taken) && i > 200 {
			wrong++
		}
	}
	if wrong > 20 {
		t.Fatalf("alternating pattern mispredicted %d after warmup", wrong)
	}
}

func TestCondPredictorRandomBranchNearChance(t *testing.T) {
	p, _ := NewCondPredictor(DefaultBranchConfig())
	rng := rand.New(rand.NewSource(5))
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !p.Predict(0x8000, rng.Intn(2) == 0) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branch misprediction = %.3f, want ~0.5", rate)
	}
}

func TestCondPredictorCapacityAliasing(t *testing.T) {
	// Far more branch sites than table entries, each with a fixed but
	// different bias: aliasing must push mispredictions above the
	// few-sites case. This is the paper's "large instruction working set"
	// effect on prediction.
	run := func(sites int) float64 {
		p, _ := NewCondPredictor(DefaultBranchConfig())
		rng := rand.New(rand.NewSource(9))
		bias := make([]bool, sites)
		for i := range bias {
			bias[i] = rng.Intn(2) == 0
		}
		wrong, n := 0, 200000
		for i := 0; i < n; i++ {
			s := rng.Intn(sites)
			taken := bias[s]
			if rng.Float64() < 0.03 { // slight noise
				taken = !taken
			}
			if !p.Predict(uint64(0x10000+s*4), taken) {
				wrong++
			}
		}
		return float64(wrong) / float64(n)
	}
	small := run(64)
	large := run(1 << 20)
	if large <= small {
		t.Fatalf("aliasing did not raise misprediction: small=%.4f large=%.4f", small, large)
	}
}

func TestTargetPredictorMonomorphic(t *testing.T) {
	p, err := NewTargetPredictor(DefaultBranchConfig())
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x4000, 0x9000) {
			wrong++
		}
	}
	if wrong != 1 { // only the cold miss
		t.Fatalf("monomorphic site mispredicted %d/1000", wrong)
	}
}

func TestTargetPredictorPolymorphic(t *testing.T) {
	p, _ := NewTargetPredictor(DefaultBranchConfig())
	rng := rand.New(rand.NewSource(3))
	targets := []uint64{0x9000, 0xa000, 0xb000}
	wrong, n := 0, 10000
	for i := 0; i < n; i++ {
		if !p.Predict(0x4000, targets[rng.Intn(3)]) {
			wrong++
		}
	}
	rate := float64(wrong) / float64(n)
	// A last-target predictor on a uniform 3-way polymorphic site is wrong
	// ~2/3 of the time.
	if rate < 0.55 || rate > 0.75 {
		t.Fatalf("polymorphic misprediction = %.3f, want ~0.67", rate)
	}
}

func TestTargetPredictorAliasing(t *testing.T) {
	p, _ := NewTargetPredictor(BranchPredictorConfig{BHTEntries: 16384, HistoryBits: 11, BTBEntries: 16})
	// Two monomorphic sites that alias into the same entry (stride =
	// entries*4) keep displacing each other.
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x1000, 0x9000) {
			wrong++
		}
		if !p.Predict(0x1000+16*4, 0xa000) {
			wrong++
		}
	}
	if wrong < 1900 {
		t.Fatalf("aliased sites mispredicted only %d/2000", wrong)
	}
}

func TestPredictorConfigValidation(t *testing.T) {
	if _, err := NewCondPredictor(BranchPredictorConfig{BHTEntries: 1000}); err == nil {
		t.Fatal("non power-of-two BHT accepted")
	}
	if _, err := NewTargetPredictor(BranchPredictorConfig{BTBEntries: 0}); err == nil {
		t.Fatal("zero BTB accepted")
	}
}
