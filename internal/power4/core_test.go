package power4

import (
	"math/rand"
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
)

func testRig(t *testing.T) (*Core, *mem.Layout) {
	t.Helper()
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(DefaultTopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(DefaultCoreConfig(0), h, layout.Space)
	if err != nil {
		t.Fatal(err)
	}
	return core, layout
}

func TestNewCoreValidation(t *testing.T) {
	if _, err := NewCore(DefaultCoreConfig(0), nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
	layout, _ := mem.NewLayout(mem.DefaultLayoutConfig())
	h, _ := NewHierarchy(DefaultTopologyConfig())
	bad := DefaultCoreConfig(0)
	bad.L1D.Ways = 0
	if _, err := NewCore(bad, h, layout.Space); err == nil {
		t.Fatal("bad L1D accepted")
	}
}

// A tight loop over a tiny working set must approach the base CPI — this is
// the paper's "idle system has CPI of ~0.7".
func TestCoreIdealCPI(t *testing.T) {
	core, layout := testRig(t)
	pc := layout.JITCode.Base
	ea := layout.JavaHeap.Base
	ins := isa.Instr{}
	for i := 0; i < 200000; i++ {
		ins = isa.Instr{Class: isa.ClassALU, PC: pc + uint64(i%256)*4}
		if i%3 == 0 {
			ins = isa.Instr{Class: isa.ClassLoad, PC: ins.PC, EA: ea + uint64(i%1024)}
		}
		core.Consume(&ins)
	}
	c := core.Counters()
	if cpi := c.CPI(); cpi < 0.5 || cpi > 0.9 {
		t.Fatalf("ideal-stream CPI = %.3f, want ~0.6-0.8", cpi)
	}
	if core.UnmappedAccesses() != 0 {
		t.Fatalf("unmapped accesses: %d", core.UnmappedAccesses())
	}
}

// A stream with a huge data working set and unpredictable branches must
// push CPI well above the ideal level.
func TestCoreStressedCPIHigher(t *testing.T) {
	core, layout := testRig(t)
	rng := rand.New(rand.NewSource(11))
	heapSpan := layout.JavaHeap.Size
	codeSpan := uint64(16 << 20)
	for i := 0; i < 300000; i++ {
		pc := layout.JITCode.Base + (rng.Uint64()%codeSpan)&^3
		var ins isa.Instr
		switch rng.Intn(10) {
		case 0, 1, 2:
			ins = isa.Instr{Class: isa.ClassLoad, PC: pc, EA: layout.JavaHeap.Base + rng.Uint64()%heapSpan}
		case 3, 4:
			ins = isa.Instr{Class: isa.ClassStore, PC: pc, EA: layout.JavaHeap.Base + rng.Uint64()%heapSpan}
		case 5:
			ins = isa.Instr{Class: isa.ClassBranchCond, PC: pc, Taken: rng.Intn(2) == 0}
		default:
			ins = isa.Instr{Class: isa.ClassALU, PC: pc}
		}
		core.Consume(&ins)
	}
	c := core.Counters()
	if cpi := c.CPI(); cpi < 2 {
		t.Fatalf("stressed CPI = %.3f, want > 2", cpi)
	}
	if c.Get(EvL1DLoadMiss) == 0 || c.Get(EvBrCondMispred) == 0 {
		t.Fatal("stress stream produced no misses")
	}
	if sr := c.SpeculationRate(); sr < 1.5 {
		t.Fatalf("speculation rate = %.2f, want > 1.5 under mispredicts", sr)
	}
}

func TestCoreCounterConsistency(t *testing.T) {
	core, layout := testRig(t)
	rng := rand.New(rand.NewSource(13))
	const n = 100000
	var sent isa.CountingSink
	for i := 0; i < n; i++ {
		pc := layout.JITCode.Base + uint64(rng.Intn(1<<20))&^3
		var ins isa.Instr
		switch rng.Intn(12) {
		case 0, 1, 2:
			ins = isa.Instr{Class: isa.ClassLoad, PC: pc, EA: layout.JavaHeap.Base + rng.Uint64()%(1<<22)}
		case 3, 4:
			ins = isa.Instr{Class: isa.ClassStore, PC: pc, EA: layout.JavaHeap.Base + rng.Uint64()%(1<<22)}
		case 5:
			ins = isa.Instr{Class: isa.ClassBranchCond, PC: pc, Taken: true}
		case 6:
			ins = isa.Instr{Class: isa.ClassBranchIndirect, PC: pc, Target: pc + 64}
		default:
			ins = isa.Instr{Class: isa.ClassALU, PC: pc}
		}
		sent.Consume(&ins)
		core.Consume(&ins)
	}
	c := core.Counters()
	if c.Get(EvInstCompleted) != n {
		t.Fatalf("completed = %d, want %d", c.Get(EvInstCompleted), n)
	}
	if c.Get(EvLoads) != sent.Loads() {
		t.Fatalf("loads = %d, want %d", c.Get(EvLoads), sent.Loads())
	}
	if c.Get(EvStores) != sent.Stores() {
		t.Fatalf("stores = %d, want %d", c.Get(EvStores), sent.Stores())
	}
	if c.Get(EvBrCond) != sent.ByKind[isa.ClassBranchCond] {
		t.Fatal("branch count mismatch")
	}
	// Invariants.
	if c.Get(EvInstDispatched) < c.Get(EvInstCompleted) {
		t.Fatal("dispatched < completed")
	}
	if c.Get(EvCycWithCompletion) > c.Get(EvCycles)+1 {
		t.Fatal("completion cycles exceed cycles")
	}
	if c.Get(EvL1DLoadMiss) > c.Get(EvLoads) {
		t.Fatal("more load misses than loads")
	}
	if c.Get(EvBrCondMispred) > c.Get(EvBrCond) {
		t.Fatal("more mispredicts than branches")
	}
	// Every L1D load miss is sourced somewhere.
	sourced := c.Get(EvDataFromL2) + c.Get(EvDataFromL25Shr) + c.Get(EvDataFromL275Shr) +
		c.Get(EvDataFromL275Mod) + c.Get(EvDataFromL3) + c.Get(EvDataFromL35) + c.Get(EvDataFromMem)
	if sourced != c.Get(EvL1DLoadMiss) {
		t.Fatalf("sourced %d != load misses %d", sourced, c.Get(EvL1DLoadMiss))
	}
}

func TestCoreLarxStcx(t *testing.T) {
	core, layout := testRig(t)
	lock := layout.JavaHeap.Base + 4096
	pc := layout.JITCode.Base
	for i := 0; i < 100; i++ {
		core.Consume(&isa.Instr{Class: isa.ClassLarx, PC: pc, EA: lock})
		core.Consume(&isa.Instr{Class: isa.ClassStcx, PC: pc + 8, EA: lock})
	}
	c := core.Counters()
	if c.Get(EvLarx) != 100 || c.Get(EvStcx) != 100 {
		t.Fatalf("larx/stcx = %d/%d", c.Get(EvLarx), c.Get(EvStcx))
	}
	if c.Get(EvStcxFail) != 0 {
		t.Fatalf("uncontended STCX failed %d times", c.Get(EvStcxFail))
	}
}

func TestCoreStcxFailsUnderContention(t *testing.T) {
	layout, _ := mem.NewLayout(mem.DefaultLayoutConfig())
	h, _ := NewHierarchy(DefaultTopologyConfig())
	c0, _ := NewCore(DefaultCoreConfig(0), h, layout.Space)
	c2, _ := NewCore(DefaultCoreConfig(2), h, layout.Space) // other chip
	lock := layout.JavaHeap.Base + 8192
	pc := layout.JITCode.Base
	fails := 0
	for i := 0; i < 100; i++ {
		c0.Consume(&isa.Instr{Class: isa.ClassLarx, PC: pc, EA: lock})
		// The other chip steals the line between LARX and STCX.
		c2.Consume(&isa.Instr{Class: isa.ClassStore, PC: pc, EA: lock})
		snap := c0.Counters()
		before := snap.Get(EvStcxFail)
		c0.Consume(&isa.Instr{Class: isa.ClassStcx, PC: pc + 8, EA: lock})
		snap = c0.Counters()
		if snap.Get(EvStcxFail) > before {
			fails++
		}
	}
	if fails < 90 {
		t.Fatalf("contended STCX failed only %d/100", fails)
	}
}

func TestCoreStcxWithoutReservationFails(t *testing.T) {
	core, layout := testRig(t)
	core.Consume(&isa.Instr{Class: isa.ClassStcx, PC: layout.JITCode.Base, EA: layout.JavaHeap.Base})
	snap := core.Counters()
	if snap.Get(EvStcxFail) != 1 {
		t.Fatal("STCX without reservation succeeded")
	}
}

func TestCoreSyncAccounting(t *testing.T) {
	core, layout := testRig(t)
	pc := layout.JITCode.Base
	core.Consume(&isa.Instr{Class: isa.ClassSync, PC: pc})
	core.Consume(&isa.Instr{Class: isa.ClassSync, PC: pc, Kernel: true})
	c := core.Counters()
	if c.Get(EvSyncCount) != 2 {
		t.Fatalf("syncs = %d", c.Get(EvSyncCount))
	}
	if c.Get(EvKernelSyncSRQCycles) == 0 {
		t.Fatal("kernel SYNC cycles not tracked")
	}
	if c.Get(EvSyncSRQCycles) <= c.Get(EvKernelSyncSRQCycles) {
		t.Fatal("total SRQ cycles must include both user and kernel")
	}
	// Kernel SYNCs drain much longer than user SYNCs.
	user := c.Get(EvSyncSRQCycles) - c.Get(EvKernelSyncSRQCycles)
	if c.Get(EvKernelSyncSRQCycles) <= user {
		t.Fatal("kernel SYNC should cost more than user SYNC")
	}
}

func TestCoreKernelAttribution(t *testing.T) {
	core, layout := testRig(t)
	for i := 0; i < 1000; i++ {
		core.Consume(&isa.Instr{Class: isa.ClassALU, PC: layout.Kernel.Base + uint64(i%512)*4, Kernel: true})
	}
	c := core.Counters()
	if c.Get(EvKernelInst) != 1000 {
		t.Fatalf("kernel instructions = %d", c.Get(EvKernelInst))
	}
	if c.Get(EvKernelCycles) == 0 {
		t.Fatal("no kernel cycles")
	}
}

func TestCoreUnmappedCounted(t *testing.T) {
	core, _ := testRig(t)
	core.Consume(&isa.Instr{Class: isa.ClassLoad, PC: 0, EA: 0})
	if core.UnmappedAccesses() == 0 {
		t.Fatal("unmapped access not counted")
	}
}

// Write-through, no-allocate: store misses must not evict load data.
func TestCoreStoresDoNotPolluteL1(t *testing.T) {
	core, layout := testRig(t)
	pc := layout.JITCode.Base
	// Load a small hot set.
	for i := 0; i < 4000; i++ {
		core.Consume(&isa.Instr{Class: isa.ClassLoad, PC: pc, EA: layout.JavaHeap.Base + uint64(i%64)*128})
	}
	before := core.Counters().Get(EvL1DLoadMiss)
	// Stream stores over a huge span.
	for i := 0; i < 4000; i++ {
		core.Consume(&isa.Instr{Class: isa.ClassStore, PC: pc, EA: layout.JavaHeap.Base + uint64(i)*4096})
	}
	// Hot loads must still hit.
	for i := 0; i < 4000; i++ {
		core.Consume(&isa.Instr{Class: isa.ClassLoad, PC: pc, EA: layout.JavaHeap.Base + uint64(i%64)*128})
	}
	after := core.Counters().Get(EvL1DLoadMiss)
	if after != before {
		t.Fatalf("store stream evicted %d hot lines from L1D", after-before)
	}
}

func TestCoreSequentialLoadsTriggerPrefetch(t *testing.T) {
	core, layout := testRig(t)
	pc := layout.JITCode.Base
	for i := uint64(0); i < 2000; i++ {
		core.Consume(&isa.Instr{Class: isa.ClassLoad, PC: pc, EA: layout.JavaHeap.Base + i*128})
	}
	c := core.Counters()
	if c.Get(EvPrefStreamAlloc) == 0 {
		t.Fatal("no prefetch streams allocated on a sequential scan")
	}
	if c.Get(EvL1DPrefetch) == 0 || c.Get(EvL2Prefetch) == 0 {
		t.Fatal("no prefetches issued")
	}
	// With streams running, most of the scan must hit (prefetch hides it).
	missRate := float64(c.Get(EvL1DLoadMiss)) / float64(c.Get(EvLoads))
	if missRate > 0.6 {
		t.Fatalf("sequential scan miss rate = %.2f with prefetcher", missRate)
	}
}
