package power4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small2Way() CacheConfig {
	return CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, Repl: ReplLRU}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{},
		{Name: "x", SizeBytes: 1024, Ways: 0, LineBytes: 64},
		{Name: "x", SizeBytes: 1024, Ways: 2, LineBytes: 60},       // non power-of-two line
		{Name: "x", SizeBytes: 1024, Ways: 3, LineBytes: 64},       // lines % ways != 0
		{Name: "x", SizeBytes: 64 * 3 * 2, Ways: 2, LineBytes: 64}, // 3 sets
	}
	for i, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
	if _, err := NewCache(small2Way()); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := mustCache(t, small2Way())
	if c.Lookup(0x1000) {
		t.Fatal("cold cache hit")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("miss after insert")
	}
	// Same line, different offset.
	if !c.Lookup(0x103f) {
		t.Fatal("same-line offset missed")
	}
	// Next line.
	if c.Lookup(0x1040) {
		t.Fatal("adjacent line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := mustCache(t, small2Way()) // 8 sets, 2 ways, 64B lines
	// Three lines mapping to the same set: set stride = 8*64 = 512.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // a most recently used
	c.Insert(d) // must evict b
	if !c.Probe(a) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Probe(b) {
		t.Fatal("LRU kept the least recently used line")
	}
	if !c.Probe(d) {
		t.Fatal("inserted line missing")
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	cfg := small2Way()
	cfg.Repl = ReplFIFO
	c := mustCache(t, cfg)
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Insert(a)
	c.Insert(b)
	// Touch a repeatedly: FIFO ignores recency.
	for i := 0; i < 10; i++ {
		c.Lookup(a)
	}
	c.Insert(d) // evicts a (first in)
	if c.Probe(a) {
		t.Fatal("FIFO kept the first-in line despite touches")
	}
	if !c.Probe(b) || !c.Probe(d) {
		t.Fatal("FIFO evicted the wrong line")
	}
}

func TestCacheInsertReturnsEviction(t *testing.T) {
	c := mustCache(t, small2Way())
	c.Insert(0)
	c.Insert(512)
	ev, was := c.Insert(1024)
	if !was {
		t.Fatal("expected an eviction")
	}
	if ev != 0 && ev != 512 {
		t.Fatalf("evicted %#x, want 0 or 512", ev)
	}
	// Re-inserting a resident line must not evict.
	if _, was := c.Insert(1024); was {
		t.Fatal("reinsert evicted")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := mustCache(t, small2Way())
	c.Insert(0x40)
	if !c.Invalidate(0x40) {
		t.Fatal("invalidate missed resident line")
	}
	if c.Probe(0x40) {
		t.Fatal("line still resident after invalidate")
	}
	if c.Invalidate(0x40) {
		t.Fatal("invalidate hit an absent line")
	}
}

func TestCacheProbeDoesNotTouchState(t *testing.T) {
	c := mustCache(t, small2Way())
	c.Insert(0)
	c.Insert(512)
	// Probing a must not make it MRU.
	for i := 0; i < 5; i++ {
		c.Probe(0)
	}
	// LRU order is insert order: inserting evicts line 0 if probes didn't refresh.
	// Touch b through Lookup so a is oldest regardless.
	c.Lookup(512)
	c.Insert(1024)
	if c.Probe(0) {
		t.Fatal("probe refreshed recency")
	}
}

func TestCacheMissRateAccounting(t *testing.T) {
	c := mustCache(t, small2Way())
	c.Lookup(0) // miss
	c.Insert(0)
	c.Lookup(0) // hit
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", got)
	}
	if (&Cache{cfg: small2Way()}).MissRate() != 0 {
		t.Fatal("empty cache MissRate should be 0")
	}
}

func TestCacheWorkingSetBehaviour(t *testing.T) {
	// A working set that fits must reach ~100% hits; one that is 4x the
	// capacity must keep missing. This is the mechanism behind the paper's
	// L2-pressure observation.
	c := mustCache(t, CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 2, LineBytes: 128, Repl: ReplFIFO})
	rng := rand.New(rand.NewSource(1))
	hits := func(span uint64, n int) float64 {
		h := 0
		for i := 0; i < n; i++ {
			addr := (rng.Uint64() % span) &^ 127
			if c.Lookup(addr) {
				h++
			} else {
				c.Insert(addr)
			}
		}
		return float64(h) / float64(n)
	}
	_ = hits(16<<10, 20000) // warm
	if r := hits(16<<10, 20000); r < 0.99 {
		t.Fatalf("fitting working set hit rate = %.3f, want ~1", r)
	}
	if r := hits(128<<10, 20000); r > 0.5 {
		t.Fatalf("4x working set hit rate = %.3f, want well below 1", r)
	}
}

// Property: after Insert(addr), Probe(addr) is always true, and the number
// of resident lines never exceeds capacity.
func TestCacheInsertProbeProperty(t *testing.T) {
	c := mustCache(t, small2Way())
	capacity := int(small2Way().SizeBytes / small2Way().LineBytes)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr)
			if !c.Probe(addr) {
				return false
			}
			if c.ResidentLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if ReplFIFO.String() != "FIFO" || ReplLRU.String() != "LRU" {
		t.Fatal("policy names wrong")
	}
}

func TestLineAddr(t *testing.T) {
	c := mustCache(t, small2Way())
	if c.LineAddr(0x12345) != 0x12340 {
		t.Fatalf("LineAddr = %#x", c.LineAddr(0x12345))
	}
}
