package power4

import (
	"fmt"
	"runtime"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
)

// This file decouples the per-instruction detail model into three
// concurrently executing pipeline stages connected by bounded SPSC batch
// rings:
//
//	producer (trace replay)                 stage-2 goroutine            stage-3 goroutine
//	┌──────────────────────────┐  ring1   ┌──────────────────────┐  ring2  ┌──────────────────────┐
//	│ copy batch + decode +    │ ───────▶ │ translation + caches │ ──────▶ │ cycle accounting +   │
//	│ branch model (stage 1)   │          │ + coherence directory│         │ HPM counter merge    │
//	└──────────────────────────┘          └──────────────────────┘         └──────────────────────┘
//
// The invariant that makes the result bit-identical to the fused loop at
// any ring depth or batch size: every piece of mutable model state is
// owned by exactly one stage, and every stage consumes batches in trace
// order (the rings are FIFO and each stage is internally sequential).
// Stage 1 owns the branch predictors and the return-stack counter; stage
// 2 owns the L1s, MMU, prefetcher, translation memo, fast-path registers,
// reservations and the shared Hierarchy; stage 3 owns the counters and
// the four fractional cycle/dispatch accumulators. A state machine fed
// the same inputs in the same order produces the same outputs, so each
// stage individually matches its fused counterpart; stages communicate
// only through per-instruction annotations (flags, burst length, drained
// prefetch counts) that carry exactly what the fused loop would have
// passed between those lines of code in a register. Integer counter
// updates commute, and the order-sensitive float accumulations all live
// in stage 3, which replays the fused loop's exact charge sequence from
// the annotations.
//
// There is ONE pipeline per SUT, not per core: the Hierarchy (L2s, L3s,
// directory, reservation ledger) is shared across cores and the engine
// emits core streams globally sequentially, so stage 2 must see all
// cores' accesses in that one global order. Batches are single-core runs
// of the stream, tagged with the core index.

// annot carries per-instruction facts from the stage that computed them
// to the stages that account for them.
type annot struct {
	flags  uint32
	burst  uint32 // load-miss burst length after this miss (valid on D-miss)
	prefL1 uint8  // prefetches drained toward L1 by this access
	prefL2 uint8  // prefetches drained toward L2
}

// annot flag bits. The I-side and D-side sets are disjoint so one flags
// word serves both; the source fields hold DataSource values.
const (
	aMispred uint32 = 1 << iota // branch mispredicted (stage 1)

	aFastI     // I-fetch took the same-line fast path
	aUnmappedI // PC outside every region: fetch did nothing else
	aIERATMiss
	aITLBMiss
	aISLBMiss
	aL1IHit   // mapped fetch hit the L1I
	aIHideSeq // I-miss to the sequential next line (front-end prefetch hides most)

	aFastL     // load took the repeat-line fast path
	aUnmappedD // EA outside every region: access did nothing else
	aDERATMiss
	aDTLBMiss
	aDSLBMiss
	aL1DHit    // load hit the L1D
	aCovered   // a prefetch stream covered this access
	aPrefAlloc // the miss allocated a new prefetch stream
	aStoreHit  // store probe hit the L1D
	aStcxOK    // store-conditional succeeded

	// Source fields: 2 bits of collapsed I-fetch source, 4 bits of
	// DataSource for loads.
	iSrcShift = 20
	dSrcShift = 24
)

const (
	iSrcL2  uint32 = iota // FetchInst collapsed source: L2-class
	iSrcL3                // L3-class
	iSrcMem               // memory
)

// stageBatch is the unit of work flowing through the rings: a pooled,
// core-tagged annotated batch. A batch with a non-nil drain channel is a
// barrier marker — it carries no instructions; stage 3 publishes the
// accounting state back to the cores and closes the channel.
type stageBatch struct {
	isa.Annotated[annot]
	drain chan struct{}
}

// acctState is stage 3's private accounting state for one core: the
// counters plus the fractional cycle/dispatch accumulators, mirroring the
// corresponding Core fields. Keeping a pipeline-local copy (rather than
// writing the Core's fields from the stage-3 goroutine) avoids false
// sharing with the stage-2 fields that live in the same cache lines; the
// state is copied back into the Core at every drain barrier.
type acctState struct {
	ctr      Counters
	cycFrac  float64
	compFrac float64
	dispFrac float64
	kcycFrac float64
	acc      batchAcc
}

func (a *acctState) loadFrom(c *Core) {
	a.ctr = c.ctr
	a.cycFrac, a.compFrac = c.cycFrac, c.compFrac
	a.dispFrac, a.kcycFrac = c.dispFrac, c.kcycFrac
	a.acc = batchAcc{}
}

func (a *acctState) storeTo(c *Core) {
	c.ctr = a.ctr
	c.cycFrac, c.compFrac = a.cycFrac, a.compFrac
	c.dispFrac, c.kcycFrac = a.dispFrac, a.kcycFrac
}

// The charge helpers are verbatim copies of Core.chargeBase/chargeStall/
// flushCycles/addDispatch over the local state: the float operation
// sequence must match the fused loop exactly for bit-equality.

func (a *acctState) chargeBase(cy float64, kernel bool) {
	a.cycFrac += cy
	a.compFrac += cy
	if kernel {
		a.kcycFrac += cy
	}
	if a.cycFrac >= 1 || a.compFrac >= 1 || a.kcycFrac >= 1 {
		a.flushCycles()
	}
}

func (a *acctState) chargeStall(cy float64, kernel bool) {
	a.cycFrac += cy
	if kernel {
		a.kcycFrac += cy
	}
	if a.cycFrac >= 1 || a.kcycFrac >= 1 {
		a.flushCycles()
	}
}

func (a *acctState) flushCycles() {
	if a.cycFrac >= 1 {
		n := uint64(a.cycFrac)
		a.ctr.Add(EvCycles, n)
		a.cycFrac -= float64(n)
	}
	if a.compFrac >= 1 {
		n := uint64(a.compFrac)
		a.ctr.Add(EvCycWithCompletion, n)
		a.compFrac -= float64(n)
	}
	if a.kcycFrac >= 1 {
		n := uint64(a.kcycFrac)
		a.ctr.Add(EvKernelCycles, n)
		a.kcycFrac -= float64(n)
	}
}

func (a *acctState) addDispatch(n float64) {
	a.dispFrac += n
	if a.dispFrac >= 1 {
		k := uint64(a.dispFrac)
		a.ctr.Add(EvInstDispatched, k)
		a.dispFrac -= float64(k)
	}
}

// addPrefetch mirrors drainPrefetch's counter half (early-out when the
// drain was empty, then both adds).
func (a *acctState) addPrefetch(an *annot) {
	if an.prefL1 == 0 && an.prefL2 == 0 {
		return
	}
	a.ctr.Add(EvL1DPrefetch, uint64(an.prefL1))
	a.ctr.Add(EvL2Prefetch, uint64(an.prefL2))
}

// PipelineConfig sizes the decoupled pipeline.
type PipelineConfig struct {
	// BatchCap is the number of instructions per stage batch (the
	// split-invariance knob; default isa.DefaultBatchCap).
	BatchCap int
	// Depth is the ring capacity in batches between adjacent stages.
	// Depth > 0 forces concurrent stage goroutines at that depth. Depth 0
	// selects automatically: concurrent at DefaultPipelineDepth when the
	// host can actually overlap stages (GOMAXPROCS > 1), inline otherwise.
	Depth int
	// Inline forces the stages to run synchronously on the caller's
	// goroutine: each batch flows branch → memory → accounting in one
	// call, with no rings and no copy of the caller's batch. The stage
	// functions, their order, and the state partition are identical to
	// the concurrent mode, so the counters are bit-equal by construction;
	// what changes is only where the stages execute. Forcing Inline is
	// how the tests (and DESIGN.md's measurements) isolate the cost of
	// stage decoupling itself from the cost of the ring handoffs.
	Inline bool
}

// DefaultPipelineDepth is the default stage-ring depth in batches.
const DefaultPipelineDepth = 4

// Pipeline runs the detail model for a set of cores over a shared
// Hierarchy in three decoupled stages. Feed instructions through the
// per-core sinks from Sink; call Drain to publish counters at a
// consistent point; Close stops the stage goroutines. The pipeline is
// the sole consumer while attached: feeding a member core directly
// between Drain and Close would race with stage 2 and desynchronize the
// stage-3 accounting copy.
type Pipeline struct {
	cores []*Core
	hier  *Hierarchy
	cfg   PipelineConfig

	ring1 *isa.Ring[*stageBatch]
	ring2 *isa.Ring[*stageBatch]
	free  *isa.Pool[*stageBatch]
	acct  []acctState
	sinks []pipeSink
	cur   *stageBatch
	done  chan struct{}

	inline bool
	direct bool    // stages collapsed onto the fused loop (1-CPU hosts)
	ann    []annot // inline-mode annotation scratch, len BatchCap
	closed bool
}

// NewPipeline starts the stage goroutines for cores over hier. The
// current counter state of every core is carried into the pipeline, so
// attaching mid-run continues from the cores' totals.
func NewPipeline(cores []*Core, hier *Hierarchy, cfg PipelineConfig) (*Pipeline, error) {
	if len(cores) == 0 || hier == nil {
		return nil, fmt.Errorf("power4: pipeline needs cores and a hierarchy")
	}
	if cfg.BatchCap <= 0 {
		cfg.BatchCap = isa.DefaultBatchCap
	}
	direct := false
	if !cfg.Inline && cfg.Depth <= 0 && runtime.GOMAXPROCS(0) == 1 {
		// No spare CPU to overlap stages on. Decoupled execution — even
		// inline, with no rings — still pays for communicating between
		// stages through annotation memory instead of registers, so the
		// fastest correct stage schedule on one CPU is the fused loop
		// itself: collapse to direct dispatch. Counters are trivially
		// bit-equal (it is the same code), and pipelining never becomes
		// a pessimization on a host that cannot exploit it.
		direct = true
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultPipelineDepth
	}
	p := &Pipeline{
		cores:  cores,
		hier:   hier,
		cfg:    cfg,
		acct:   make([]acctState, len(cores)),
		sinks:  make([]pipeSink, len(cores)),
		inline: cfg.Inline,
		direct: direct,
	}
	for i := range cores {
		p.sinks[i] = pipeSink{p: p, core: i}
	}
	if p.direct {
		// All model state stays on the cores; there is nothing to start
		// and nothing to publish at barriers.
		return p, nil
	}
	for i := range cores {
		p.acct[i].loadFrom(cores[i])
	}
	if p.inline {
		p.ann = make([]annot, cfg.BatchCap)
		// One spare batch buffers the per-instruction Consume path.
		p.free = isa.NewPool(1, func() *stageBatch {
			return &stageBatch{Annotated: isa.Annotated[annot]{
				Ins: make([]isa.Instr, 0, cfg.BatchCap),
				Ann: make([]annot, 0, cfg.BatchCap),
			}}
		})
		return p, nil
	}
	p.ring1 = isa.NewRing[*stageBatch](cfg.Depth)
	p.ring2 = isa.NewRing[*stageBatch](cfg.Depth)
	p.done = make(chan struct{})
	// Pool size covers every in-flight slot — the producer's current
	// batch, both rings, and one batch in hand per stage goroutine — so a
	// correctly plumbed pipeline recycles forever without allocating and
	// Get never blocks.
	p.free = isa.NewPool(2*cfg.Depth+3, func() *stageBatch {
		return &stageBatch{Annotated: isa.Annotated[annot]{
			Ins: make([]isa.Instr, 0, cfg.BatchCap),
			Ann: make([]annot, 0, cfg.BatchCap),
		}}
	})
	go p.stage2()
	go p.stage3()
	return p, nil
}

// Sink returns the stream entry point for one core. The sink implements
// isa.Sink, isa.BatchSink and CoreID (for emitter core affinity), and is
// stable across calls.
func (p *Pipeline) Sink(core int) isa.BatchSink { return &p.sinks[core] }

// Mode reports the stage schedule the pipeline selected: "rings"
// (concurrent stage goroutines), "inline" (decoupled stages run
// synchronously), or "direct" (collapsed onto the fused loop because the
// host has no CPU to overlap stages on).
func (p *Pipeline) Mode() string {
	switch {
	case p.direct:
		return "direct"
	case p.inline:
		return "inline"
	default:
		return "rings"
	}
}

// pipeSink is the per-core front end: it tags instructions with the core
// index and feeds the shared stage-1 state.
type pipeSink struct {
	p    *Pipeline
	core int
}

// CoreID reports the core this sink feeds (emitter affinity).
func (s *pipeSink) CoreID() int { return s.core }

// Consume implements isa.Sink.
func (s *pipeSink) Consume(ins *isa.Instr) { s.p.feedOne(s.core, ins) }

// ConsumeBatch implements isa.BatchSink.
func (s *pipeSink) ConsumeBatch(b isa.Batch) { s.p.feed(s.core, b) }

// fill returns the current stage-1 batch for core, sealing first when the
// stream switched cores (batches are single-core runs).
func (p *Pipeline) fill(core int) *stageBatch {
	if p.cur != nil && p.cur.Core != core {
		p.seal()
	}
	if p.cur == nil {
		sb := p.free.Get()
		sb.Core = core
		p.cur = sb
	}
	return p.cur
}

// feed delivers a caller batch to the stages. In concurrent mode it is
// copied into pooled stage batches (the caller reuses its backing array,
// so the copy is mandatory); in inline mode the stages run directly over
// the caller's memory — synchronous execution needs no stable copy.
func (p *Pipeline) feed(core int, b isa.Batch) {
	if p.direct {
		p.cores[core].ConsumeBatch(b)
		return
	}
	if p.inline {
		p.seal() // flush any buffered per-instruction feed first
		for len(b) > 0 {
			n := p.cfg.BatchCap
			if n > len(b) {
				n = len(b)
			}
			p.runChunk(core, b[:n], p.ann[:n])
			b = b[n:]
		}
		return
	}
	for len(b) > 0 {
		sb := p.fill(core)
		room := p.cfg.BatchCap - len(sb.Ins)
		if room > len(b) {
			room = len(b)
		}
		sb.Ins = append(sb.Ins, b[:room]...)
		b = b[room:]
		if len(sb.Ins) >= p.cfg.BatchCap {
			p.seal()
		}
	}
}

func (p *Pipeline) feedOne(core int, ins *isa.Instr) {
	if p.direct {
		p.cores[core].Consume(ins)
		return
	}
	sb := p.fill(core)
	sb.Ins = append(sb.Ins, *ins)
	if len(sb.Ins) >= p.cfg.BatchCap {
		p.seal()
	}
}

// runChunk is the inline mode's whole pipeline: the same three stage
// functions the goroutines run, in the same order, over one single-core
// chunk.
func (p *Pipeline) runChunk(core int, ins []isa.Instr, ann []annot) {
	c := p.cores[core]
	c.stageBranch(ins, ann)
	c.stageMemory(ins, ann)
	c.stageAccount(ins, ann, &p.acct[core])
}

// seal runs stage 1 (branch model) over the current batch and hands it to
// stage 2 — or, inline, runs all stages and recycles the batch.
func (p *Pipeline) seal() {
	sb := p.cur
	p.cur = nil
	if sb == nil {
		return
	}
	if len(sb.Ins) == 0 {
		p.free.Put(sb)
		return
	}
	if p.inline {
		sb.SyncAnn()
		p.runChunk(sb.Core, sb.Ins, sb.Ann)
		sb.Reset()
		p.free.Put(sb)
		return
	}
	sb.SyncAnn()
	p.cores[sb.Core].stageBranch(sb.Ins, sb.Ann)
	p.ring1.Send(sb)
}

// Drain is the window barrier: it seals the partial batch, pushes a
// marker through both rings, and returns once stage 3 has published
// every core's counters and fractional accumulators back onto the Core
// structs. The happens-before chain through the marker also makes all
// stage-2 state (unmapped counts, cache contents) visible to the caller.
func (p *Pipeline) Drain() {
	if p.direct {
		return // counters already live on the cores
	}
	p.seal()
	if p.inline {
		for i := range p.cores {
			p.acct[i].storeTo(p.cores[i])
		}
		return
	}
	m := &stageBatch{drain: make(chan struct{})}
	p.ring1.Send(m)
	<-m.drain
}

// Close drains the pipeline and stops the stage goroutines. The sinks
// must not be fed after Close.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.Drain()
	if p.direct || p.inline {
		return
	}
	p.ring1.Close()
	<-p.done
}

// stage2 consumes stage-1 batches in order, running the translation /
// cache / coherence half of the model and annotating each instruction
// with what stage 3 needs to charge for it.
func (p *Pipeline) stage2() {
	for {
		sb, ok := p.ring1.Recv()
		if !ok {
			p.ring2.Close()
			return
		}
		if sb.drain == nil {
			p.cores[sb.Core].stageMemory(sb.Ins, sb.Ann)
		}
		p.ring2.Send(sb)
	}
}

// stage3 consumes stage-2 batches in order, replaying the fused loop's
// cycle-accounting sequence from the annotations into the per-core
// accounting state. Markers publish that state back onto the cores.
func (p *Pipeline) stage3() {
	defer close(p.done)
	for {
		sb, ok := p.ring2.Recv()
		if !ok {
			return
		}
		if sb.drain != nil {
			for i := range p.cores {
				p.acct[i].storeTo(p.cores[i])
			}
			close(sb.drain)
			continue
		}
		p.cores[sb.Core].stageAccount(sb.Ins, sb.Ann, &p.acct[sb.Core])
		sb.Reset()
		p.free.Put(sb)
	}
}

// ---------------------------------------------------------------- stage 1

// stageBranch runs the branch model over a batch: the predictors and the
// return-stack counter are the only mutable state the producer side
// touches, in trace order, exactly as the fused loop would.
func (c *Core) stageBranch(ins []isa.Instr, ann []annot) {
	for i := range ins {
		in := &ins[i]
		var f uint32
		switch in.Class {
		case isa.ClassBranchCond:
			if !c.cond.Predict(in.PC, in.Taken) {
				f = aMispred
			}
		case isa.ClassBranchIndirect:
			if in.Return {
				c.returnSeq++
				if c.returnSeq%32 == 0 {
					f = aMispred
				}
			} else if !c.target.Predict(in.PC, in.Target) {
				f = aMispred
			}
		}
		ann[i] = annot{flags: f}
	}
}

// ---------------------------------------------------------------- stage 2

// stageMemory runs the translation / cache / coherence half of the model
// over a batch. Every structure it touches — L1s, MMU, prefetcher,
// translation memo, fast-path registers, reservations, and the shared
// Hierarchy — is touched in the same order as the fused loop, so the
// state evolution (and therefore every hit/miss outcome recorded in the
// annotations) is identical.
func (c *Core) stageMemory(ins []isa.Instr, ann []annot) {
	for i := range ins {
		in := &ins[i]
		an := &ann[i]
		if c.fastI && !c.noFast && in.PC>>7 == c.lastIPC>>7 {
			an.flags |= aFastI
			c.lastIPC = in.PC
		} else {
			c.memFetch(in, an)
		}
		switch in.Class {
		case isa.ClassLoad:
			c.memLoad(in, an)
		case isa.ClassStore:
			c.memStore(in, an)
		case isa.ClassLarx:
			c.memLoad(in, an)
			c.reservation = in.EA >> 7
			c.hasResv = true
		case isa.ClassStcx:
			ok := c.hasResv && c.reservation == in.EA>>7
			if ok {
				if tr, mapped := c.translate(in.EA); mapped {
					ok = !c.hier.ReservationLost(c.cfg.ID, tr.RA>>7)
				}
			}
			if ok {
				an.flags |= aStcxOK
			}
			c.hasResv = false
			c.memStore(in, an)
		}
	}
}

// memFetch is fetch's structural half: translation, MMU, L1I and deeper
// levels, recording outcomes instead of charging for them.
func (c *Core) memFetch(in *isa.Instr, an *annot) {
	tr, ok := c.translate(in.PC)
	if !ok {
		c.unmapped++
		c.fastI = false
		an.flags |= aUnmappedI
		return
	}
	c.fastI = true
	c.lastIPC = in.PC
	res := c.mmu.Inst(tr)
	if res.ERATMiss {
		an.flags |= aIERATMiss
	}
	if res.TLBMiss {
		an.flags |= aITLBMiss
	}
	if res.SLBMiss {
		an.flags |= aISLBMiss
	}
	line := tr.RA >> 7
	if c.l1i.Lookup(tr.RA) {
		an.flags |= aL1IHit
		c.lastILine = line
		return
	}
	if line == c.lastILine+1 {
		an.flags |= aIHideSeq
	}
	c.lastILine = line
	src := c.hier.FetchInst(c.cfg.ID, tr.RA)
	c.l1i.Insert(tr.RA)
	switch src {
	case SrcL2:
		an.flags |= iSrcL2 << iSrcShift
	case SrcL3:
		an.flags |= iSrcL3 << iSrcShift
	default:
		an.flags |= iSrcMem << iSrcShift
	}
}

// memTranslateData is dataTranslate's structural half.
func (c *Core) memTranslateData(in *isa.Instr, an *annot) (tr mem.Translation, ok bool) {
	if c.fastD && !c.noFast && in.EA>>12 == c.lastDEA>>12 {
		tr = c.lastDTr
		tr.RA += in.EA - c.lastDEA
		c.lastDEA = in.EA
		c.lastDTr = tr
		return tr, true
	}
	tr, ok = c.translate(in.EA)
	if !ok {
		c.unmapped++
		c.fastD = false
		an.flags |= aUnmappedD
		return tr, false
	}
	c.fastD = true
	c.lastDEA = in.EA
	c.lastDTr = tr
	res := c.mmu.Data(tr)
	if res.ERATMiss {
		an.flags |= aDERATMiss
	}
	if res.TLBMiss {
		an.flags |= aDTLBMiss
	}
	if res.SLBMiss {
		an.flags |= aDSLBMiss
	}
	return tr, true
}

// memLoad is load's structural half.
func (c *Core) memLoad(in *isa.Instr, an *annot) {
	if c.fastL && !c.noFast && in.EA>>7 == c.lastLEA>>7 && c.fastD && in.EA>>12 == c.lastDEA>>12 {
		an.flags |= aFastL
		c.sinceMiss++
		if c.sinceMiss > 12 {
			c.burst = 0
		}
		return
	}
	tr, ok := c.memTranslateData(in, an)
	if !ok {
		return
	}
	line := tr.RA >> 7
	if c.l1d.Lookup(tr.RA) {
		an.flags |= aL1DHit
		res := c.pref.OnAccess(line, false)
		if res.Covered {
			an.flags |= aCovered
			c.memDrainPrefetch(tr.RA, an)
			c.fastL = false
		} else {
			c.fastL = true
			c.lastLEA = in.EA
		}
		c.sinceMiss++
		if c.sinceMiss > 12 {
			c.burst = 0
		}
		return
	}
	c.fastL = false
	if c.sinceMiss <= 12 {
		c.burst++
	} else {
		c.burst = 1
	}
	c.sinceMiss = 0
	an.burst = uint32(c.burst)
	pres := c.pref.OnAccess(line, true)
	if pres.Allocated {
		an.flags |= aPrefAlloc
	}
	c.memDrainPrefetch(tr.RA, an)
	src := c.hier.Load(c.cfg.ID, tr.RA)
	c.l1d.Insert(tr.RA)
	if pres.Covered {
		an.flags |= aCovered
	}
	an.flags |= uint32(src) << dSrcShift
}

// memStore is store's structural half.
func (c *Core) memStore(in *isa.Instr, an *annot) {
	tr, ok := c.memTranslateData(in, an)
	if !ok {
		return
	}
	if c.l1d.Probe(tr.RA) {
		an.flags |= aStoreHit
	}
	c.hier.Store(c.cfg.ID, tr.RA)
}

// memDrainPrefetch is drainPrefetch's structural half: the cache fills
// happen here, the counter adds are recorded for stage 3.
func (c *Core) memDrainPrefetch(ra uint64, an *annot) {
	l1, l2, _ := c.pref.Take()
	an.prefL1, an.prefL2 = uint8(l1), uint8(l2)
	if l1 == 0 && l2 == 0 {
		return
	}
	for i := uint64(1); i <= l1; i++ {
		c.l1d.Insert(ra + i*128)
	}
	for i := uint64(1); i <= l2; i++ {
		c.hier.PrefetchFill(c.cfg.ID, ra+i*128, i > 2)
	}
}

// ---------------------------------------------------------------- stage 3

// stageAccount replays the fused loop's accounting over a batch: the
// same counter increments and — critically — the same float-operation
// sequence on the cycle/dispatch accumulators, reconstructed from the
// annotations.
func (c *Core) stageAccount(ins []isa.Instr, ann []annot, a *acctState) {
	p := &c.cfg.Penalties
	for i := range ins {
		in := &ins[i]
		an := &ann[i]
		f := an.flags

		a.acc.inst++
		if in.Kernel {
			a.acc.kinst++
		}
		switch {
		case in.Class.IsMemory():
			a.addDispatch(p.DispatchMem)
		case in.Class.IsBranch():
			a.addDispatch(p.DispatchBranch)
		default:
			a.addDispatch(p.DispatchALU)
		}
		a.chargeBase(p.BaseCPI, in.Kernel)

		// I-side, in fetch's order.
		if f&aFastI != 0 {
			a.acc.ifetchL1++
		} else if f&aUnmappedI == 0 {
			if f&aIERATMiss != 0 {
				a.ctr.Inc(EvIERATMiss)
				a.chargeStall(p.DERATMiss, in.Kernel)
			}
			if f&aITLBMiss != 0 {
				a.ctr.Inc(EvITLBMiss)
				a.chargeStall(p.TLBWalk, in.Kernel)
			}
			if f&aISLBMiss != 0 {
				a.ctr.Inc(EvSLBMiss)
				a.chargeStall(p.SLBWalk, in.Kernel)
			}
			if f&aL1IHit != 0 {
				a.acc.ifetchL1++
			} else {
				a.ctr.Inc(EvL1IMiss)
				hide := 1.0
				if f&aIHideSeq != 0 {
					hide = 0.2
				}
				switch (f >> iSrcShift) & 3 {
				case iSrcL2:
					a.ctr.Inc(EvIFetchL2)
					a.chargeStall(p.IMissL2*hide, in.Kernel)
				case iSrcL3:
					a.ctr.Inc(EvIFetchL3)
					a.chargeStall(p.IMissL3*hide, in.Kernel)
				default:
					a.ctr.Inc(EvIFetchMem)
					a.chargeStall(p.IMissMem*hide, in.Kernel)
				}
			}
		}

		switch in.Class {
		case isa.ClassLoad:
			a.acc.loads++
			c.accountLoad(in, an, a)
		case isa.ClassStore:
			a.acc.stores++
			c.accountStore(in, an, a)
		case isa.ClassBranchCond:
			a.acc.brCond++
			if f&aMispred != 0 {
				a.ctr.Inc(EvBrCondMispred)
				a.chargeStall(p.CondMispred, in.Kernel)
				a.addDispatch(p.WrongPathDispatch)
			}
		case isa.ClassBranchIndirect:
			a.acc.brInd++
			if f&aMispred != 0 {
				a.ctr.Inc(EvBrTargetMispred)
				a.chargeStall(p.TargetMispred, in.Kernel)
				a.addDispatch(p.WrongPathDispatch)
			}
		case isa.ClassLarx:
			a.acc.loads++
			a.ctr.Inc(EvLarx)
			c.accountLoad(in, an, a)
		case isa.ClassSync:
			a.ctr.Inc(EvSyncCount)
			drain := p.SyncDrainUser
			if in.Kernel {
				drain = p.SyncDrainKernel
				a.ctr.Add(EvKernelSyncSRQCycles, uint64(drain))
			}
			a.ctr.Add(EvSyncSRQCycles, uint64(drain))
			a.chargeStall(drain, in.Kernel)
		case isa.ClassStcx:
			a.acc.stores++
			a.ctr.Inc(EvStcx)
			if f&aStcxOK == 0 {
				a.ctr.Inc(EvStcxFail)
			}
			c.accountStore(in, an, a)
			a.chargeStall(p.StcxCost, in.Kernel)
		}
	}
	a.acc.flush(&a.ctr)
}

// accountDTrans replays dataTranslate's charges. Flags are only set when
// the slow path ran, so the fast-path and unmapped cases fall through
// charge-free exactly as in the fused loop.
func accountDTrans(f uint32, kernel bool, p *Penalties, a *acctState) {
	if f&aDERATMiss != 0 {
		a.ctr.Inc(EvDERATMiss)
		a.chargeStall(p.DERATMiss, kernel)
		a.addDispatch(p.DERATMiss / p.RetryDispatchDiv)
	}
	if f&aDTLBMiss != 0 {
		a.ctr.Inc(EvDTLBMiss)
		a.chargeStall(p.TLBWalk, kernel)
	}
	if f&aDSLBMiss != 0 {
		a.ctr.Inc(EvSLBMiss)
		a.chargeStall(p.SLBWalk, kernel)
	}
}

// accountLoad replays load's charges from the annotations.
func (c *Core) accountLoad(in *isa.Instr, an *annot, a *acctState) {
	p := &c.cfg.Penalties
	f := an.flags
	if f&aFastL != 0 {
		a.addDispatch(p.SpecAheadDispatch)
		return
	}
	accountDTrans(f, in.Kernel, p, a)
	if f&aUnmappedD != 0 {
		return
	}
	if f&aL1DHit != 0 {
		a.addDispatch(p.SpecAheadDispatch)
		if f&aCovered != 0 {
			a.addPrefetch(an)
		}
		return
	}
	a.ctr.Inc(EvL1DLoadMiss)
	if f&aPrefAlloc != 0 {
		a.ctr.Inc(EvPrefStreamAlloc)
	}
	a.addPrefetch(an)
	var lat float64
	switch DataSource((f >> dSrcShift) & 15) {
	case SrcL2:
		a.ctr.Inc(EvDataFromL2)
		lat = p.L2Latency
	case SrcL25Shr:
		a.ctr.Inc(EvDataFromL25Shr)
		lat = p.RemoteL2
	case SrcL25Mod:
		a.ctr.Inc(EvDataFromL25Shr) // same bucket; our topology never produces it
		lat = p.RemoteL2
	case SrcL275Shr:
		a.ctr.Inc(EvDataFromL275Shr)
		lat = p.RemoteL2
	case SrcL275Mod:
		a.ctr.Inc(EvDataFromL275Mod)
		lat = p.RemoteL2
	case SrcL3:
		a.ctr.Inc(EvDataFromL3)
		lat = p.L3Latency
	case SrcL35:
		a.ctr.Inc(EvDataFromL35)
		lat = p.RemoteL3
	default:
		a.ctr.Inc(EvDataFromMem)
		lat = p.MemLatency
	}
	exposure := p.LoadExposure + p.BurstExposure*float64(int(an.burst)-1)
	if exposure > 1 {
		exposure = 1
	}
	if f&aCovered != 0 {
		exposure = p.PrefCovered
	}
	a.chargeStall(lat*exposure, in.Kernel)
}

// accountStore replays store's charges from the annotations.
func (c *Core) accountStore(in *isa.Instr, an *annot, a *acctState) {
	p := &c.cfg.Penalties
	f := an.flags
	accountDTrans(f, in.Kernel, p, a)
	if f&aUnmappedD != 0 {
		return
	}
	if f&aStoreHit == 0 {
		a.ctr.Inc(EvL1DStoreMiss)
		a.chargeStall(p.StoreMissCost, in.Kernel)
	}
}
