package power4

import (
	"testing"

	"jasworkload/internal/mem"
)

func tr4k(vpn uint64) mem.Translation {
	return mem.Translation{VPN: vpn, PageSize: mem.Page4K}
}

func tr16m(vpn uint64) mem.Translation {
	return mem.Translation{VPN: vpn, PageSize: mem.Page16M}
}

func TestTransCacheGeometry(t *testing.T) {
	if _, err := NewTransCache("x", 0, 4); err == nil {
		t.Fatal("zero sets accepted")
	}
	if _, err := NewTransCache("x", 3, 4); err == nil {
		t.Fatal("non power-of-two sets accepted")
	}
	if _, err := NewTransCache("x", 4, 0); err == nil {
		t.Fatal("zero ways accepted")
	}
	tc, err := NewTransCache("x", 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Entries() != 128 {
		t.Fatalf("Entries = %d", tc.Entries())
	}
}

func TestTransCacheHitMiss(t *testing.T) {
	tc, _ := NewTransCache("x", 4, 2)
	if tc.Lookup(tr4k(10)) {
		t.Fatal("cold hit")
	}
	tc.Insert(tr4k(10))
	if !tc.Lookup(tr4k(10)) {
		t.Fatal("miss after insert")
	}
	// Page size distinguishes entries with the same VPN.
	if tc.Lookup(tr16m(10)) {
		t.Fatal("page-size aliasing: 16M hit on 4K entry")
	}
}

func TestTransCacheLRU(t *testing.T) {
	tc, _ := NewTransCache("x", 1, 2) // single set, 2 ways
	tc.Insert(tr4k(1))
	tc.Insert(tr4k(2))
	tc.Lookup(tr4k(1)) // refresh 1
	tc.Insert(tr4k(3)) // evicts 2
	if !tc.Lookup(tr4k(1)) {
		t.Fatal("LRU evicted the refreshed entry")
	}
	if tc.Lookup(tr4k(2)) {
		t.Fatal("LRU kept the stale entry")
	}
}

func TestTransCacheFlush(t *testing.T) {
	tc, _ := NewTransCache("x", 4, 2)
	tc.Insert(tr4k(7))
	tc.Flush()
	if tc.Lookup(tr4k(7)) {
		t.Fatal("entry survived flush")
	}
}

func TestTransCacheInsertIdempotent(t *testing.T) {
	tc, _ := NewTransCache("x", 1, 2)
	tc.Insert(tr4k(1))
	tc.Insert(tr4k(1)) // must not consume the second way
	tc.Insert(tr4k(2))
	if !tc.Lookup(tr4k(1)) || !tc.Lookup(tr4k(2)) {
		t.Fatal("duplicate insert consumed a way")
	}
}

func TestMMUHierarchy(t *testing.T) {
	m, err := NewMMU(DefaultMMUConfig())
	if err != nil {
		t.Fatal(err)
	}
	// First data access: ERAT miss + TLB miss.
	r := m.Data(tr4k(100))
	if !r.ERATMiss || !r.TLBMiss {
		t.Fatalf("cold access = %+v, want both misses", r)
	}
	// Second access: both hit.
	r = m.Data(tr4k(100))
	if r.ERATMiss || r.TLBMiss {
		t.Fatalf("warm access = %+v, want hits", r)
	}
	// The unified TLB is shared across I and D sides: an I-side access to
	// the same page should miss the IERAT but hit the TLB.
	r = m.Inst(tr4k(100))
	if !r.ERATMiss {
		t.Fatal("IERAT should miss on first I-side access")
	}
	if r.TLBMiss {
		t.Fatal("unified TLB should already hold the page")
	}
}

// The ERAT cannot hold a working set bigger than its capacity, but the TLB
// can: then a DERAT miss is satisfied by the TLB — the paper's "upon a
// DERAT miss, the TLB is able to satisfy requests in 75% of cases".
func TestERATMissTLBHitRegime(t *testing.T) {
	m, err := NewMMU(DefaultMMUConfig()) // 128-entry ERAT, 1024-entry TLB
	if err != nil {
		t.Fatal(err)
	}
	const pages = 512 // > ERAT, < TLB
	// Warm everything.
	for round := 0; round < 2; round++ {
		for p := uint64(0); p < pages; p++ {
			m.Data(tr4k(p))
		}
	}
	var eratMiss, tlbMiss int
	for p := uint64(0); p < pages; p++ {
		r := m.Data(tr4k(p))
		if r.ERATMiss {
			eratMiss++
		}
		if r.TLBMiss {
			tlbMiss++
		}
	}
	if eratMiss == 0 {
		t.Fatal("ERAT held a working set 4x its size")
	}
	if tlbMiss != 0 {
		t.Fatalf("TLB missed %d times on a fitting working set", tlbMiss)
	}
}

// Large pages collapse the heap's translation working set: 1 GB is 64 large
// pages (fits any ERAT) versus 262144 small pages (fits nothing). This is
// the mechanism behind the paper's +25% DTLB hit rate with large pages.
func TestLargePagesShrinkTranslationWorkingSet(t *testing.T) {
	missRate := func(ps mem.PageSize, heap uint64, accesses int) float64 {
		m, err := NewMMU(DefaultMMUConfig())
		if err != nil {
			t.Fatal(err)
		}
		shift := ps.Shift()
		stride := uint64(4096)
		var miss int
		addr := uint64(0)
		for i := 0; i < accesses; i++ {
			addr = (addr + stride*7919) % heap // pseudo-random walk
			r := m.Data(mem.Translation{VPN: addr >> shift, PageSize: ps})
			if r.ERATMiss {
				miss++
			}
		}
		return float64(miss) / float64(accesses)
	}
	const heap = 1 << 30
	large := missRate(mem.Page16M, heap, 50000)
	small := missRate(mem.Page4K, heap, 50000)
	if large > 0.01 {
		t.Fatalf("large-page DERAT miss rate = %.4f, want ~0", large)
	}
	if small < 0.5 {
		t.Fatalf("small-page DERAT miss rate = %.4f, want high", small)
	}
}
