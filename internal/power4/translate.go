package power4

import (
	"fmt"

	"jasworkload/internal/mem"
)

// TransCache is a small set-associative translation cache used for both the
// ERATs (effective-to-real address translation tables) and the unified TLB.
// Entries are keyed by virtual page number plus a page-size bit, so 4 KB and
// 16 MB pages coexist the way the POWER4 ERAT/TLB hold both.
type TransCache struct {
	name string
	sets uint64
	ways int
	keys []uint64
	ok   []bool
	use  []uint64
	mru  []uint32 // per set: way of the most recent hit (probe-order hint)
	tick uint64
	ref  bool // reference mode: pre-change probe order
}

// SetReference disables the MRU probe-order hint so lookups cost what
// they did before the hint existed. Results are identical either way.
func (t *TransCache) SetReference(ref bool) { t.ref = ref }

// NewTransCache builds a translation cache with entries = sets*ways; sets
// must be a power of two.
func NewTransCache(name string, sets uint64, ways int) (*TransCache, error) {
	if sets == 0 || sets&(sets-1) != 0 || ways <= 0 {
		return nil, fmt.Errorf("power4: %s: bad geometry sets=%d ways=%d", name, sets, ways)
	}
	n := int(sets) * ways
	return &TransCache{
		name: name,
		sets: sets,
		ways: ways,
		keys: make([]uint64, n),
		ok:   make([]bool, n),
		use:  make([]uint64, n),
		mru:  make([]uint32, sets),
	}, nil
}

// Entries returns the capacity of the cache.
func (t *TransCache) Entries() int { return int(t.sets) * t.ways }

func key(tr mem.Translation) uint64 {
	k := tr.VPN << 1
	if tr.PageSize == mem.Page16M {
		k |= 1
	}
	return k
}

// Lookup probes for the page of tr; a hit refreshes LRU state.
func (t *TransCache) Lookup(tr mem.Translation) bool {
	t.tick++
	k := key(tr)
	set := k & (t.sets - 1)
	base := int(set) * t.ways
	// Most-recent-hit way first: probe order only, outcome and recency
	// state are identical with the hint off (reference mode).
	if !t.ref {
		if i := base + int(t.mru[set]); t.ok[i] && t.keys[i] == k {
			t.use[i] = t.tick
			return true
		}
	}
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.ok[i] && t.keys[i] == k {
			t.use[i] = t.tick
			t.mru[set] = uint32(w)
			return true
		}
	}
	return false
}

// Insert fills the translation for tr, evicting LRU if needed.
func (t *TransCache) Insert(tr mem.Translation) {
	k := key(tr)
	set := k & (t.sets - 1)
	base := int(set) * t.ways
	victim, oldest := -1, ^uint64(0)
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.ok[i] && t.keys[i] == k {
			t.use[i] = t.tick
			return
		}
		if !t.ok[i] {
			victim = i
			break
		}
		if t.use[i] < oldest {
			oldest = t.use[i]
			victim = i
		}
	}
	t.ok[victim] = true
	t.keys[victim] = k
	t.use[victim] = t.tick
	t.mru[set] = uint32(victim - base)
}

// Flush invalidates everything (used across context switches in tests).
func (t *TransCache) Flush() {
	for i := range t.ok {
		t.ok[i] = false
	}
}

// MMUConfig sizes the translation structures. Defaults follow POWER4:
// 128-entry I- and D-ERAT, 1024-entry 4-way unified TLB, 64-entry SLB.
type MMUConfig struct {
	ERATSets uint64
	ERATWays int
	TLBSets  uint64
	TLBWays  int
	SLBSets  uint64
	SLBWays  int
}

// DefaultMMUConfig returns the POWER4 geometry.
func DefaultMMUConfig() MMUConfig {
	return MMUConfig{ERATSets: 32, ERATWays: 4, TLBSets: 256, TLBWays: 4, SLBSets: 16, SLBWays: 4}
}

// MMU bundles one core's translation path: separate instruction and data
// ERATs backed by a shared unified TLB, plus the segment lookaside buffer
// consulted alongside the TLB on ERAT misses (the paper: "ERAT misses
// trigger TLB reads, which, along with a segment-lookaside buffer lookup,
// take at least 14 cycles").
type MMU struct {
	ierat *TransCache
	derat *TransCache
	tlb   *TransCache
	slb   *TransCache
}

// NewMMU builds the translation path.
func NewMMU(cfg MMUConfig) (*MMU, error) {
	ie, err := NewTransCache("IERAT", cfg.ERATSets, cfg.ERATWays)
	if err != nil {
		return nil, err
	}
	de, err := NewTransCache("DERAT", cfg.ERATSets, cfg.ERATWays)
	if err != nil {
		return nil, err
	}
	tlb, err := NewTransCache("TLB", cfg.TLBSets, cfg.TLBWays)
	if err != nil {
		return nil, err
	}
	if cfg.SLBSets == 0 {
		cfg.SLBSets, cfg.SLBWays = 16, 4
	}
	slb, err := NewTransCache("SLB", cfg.SLBSets, cfg.SLBWays)
	if err != nil {
		return nil, err
	}
	return &MMU{ierat: ie, derat: de, tlb: tlb, slb: slb}, nil
}

// AccessResult describes one translation walk.
type AccessResult struct {
	ERATMiss bool // missed the first-level ERAT
	TLBMiss  bool // also missed the unified TLB (page-table walk)
	SLBMiss  bool // the 256 MB segment was not in the SLB (segment-table walk)
}

// segShift is the PowerPC 256 MB segment granularity.
const segShift = 28

// translate walks one side (ERAT then SLB+TLB), filling on the way back.
func (m *MMU) translate(erat *TransCache, tr mem.Translation) AccessResult {
	if erat.Lookup(tr) {
		return AccessResult{}
	}
	res := AccessResult{ERATMiss: true}
	// The SLB is consulted in parallel with the TLB; segments are keyed at
	// 256 MB granularity (page-size bit irrelevant at segment scale).
	seg := mem.Translation{VPN: (tr.VPN << tr.PageSize.Shift()) >> segShift, PageSize: mem.Page4K}
	if !m.slb.Lookup(seg) {
		res.SLBMiss = true
		m.slb.Insert(seg)
	}
	if !m.tlb.Lookup(tr) {
		res.TLBMiss = true
		m.tlb.Insert(tr)
	}
	erat.Insert(tr)
	return res
}

// SetReference switches every translation structure to its pre-change
// probe order for reference measurements.
func (m *MMU) SetReference(ref bool) {
	m.ierat.SetReference(ref)
	m.derat.SetReference(ref)
	m.tlb.SetReference(ref)
	m.slb.SetReference(ref)
}

// Data translates a data access.
func (m *MMU) Data(tr mem.Translation) AccessResult { return m.translate(m.derat, tr) }

// Inst translates an instruction fetch.
func (m *MMU) Inst(tr mem.Translation) AccessResult { return m.translate(m.ierat, tr) }

// TLBEntries exposes the unified TLB capacity.
func (m *MMU) TLBEntries() int { return m.tlb.Entries() }
