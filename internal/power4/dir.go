package power4

// dirTable is the coherence directory's storage: an open-addressed hash
// table from 128-byte line address to lineState, replacing the generic
// map that dominated the store/install hot path. Design points:
//
//   - Linear probing with tombstone deletion: a delete never moves other
//     entries, so *lineState pointers handed out by get/getOrCreate stay
//     valid across deletes. Only getOrCreate can rehash, and it does so
//     before returning a pointer, so callers may hold one pointer across
//     any number of reads, sharer updates and deletes — but not across a
//     subsequent getOrCreate.
//   - Entries are stored inline (no per-line allocation), which is most
//     of the win over the map: the directory churns an entry per L2
//     install/evict pair.
//   - Iteration only happens during rehash and is slot-ordered, so the
//     structure is deterministic — unlike map iteration, nothing here
//     depends on randomized order.
type dirTable struct {
	slots []dirSlot
	mask  uint64
	live  int // slots holding a current entry
	used  int // live plus tombstones (probe-chain occupancy)
}

// dirSlot keys are line+1 so the zero value is "empty"; dirTomb marks a
// deleted slot that probes must walk through.
type dirSlot struct {
	key uint64
	lineState
}

const dirTomb = ^uint64(0)

func newDirTable() *dirTable {
	const initial = 1 << 13
	return &dirTable{slots: make([]dirSlot, initial), mask: initial - 1}
}

func dirHash(line uint64) uint64 {
	h := line * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

// get returns the entry for line, or nil if absent.
func (d *dirTable) get(line uint64) *lineState {
	k := line + 1
	for i := dirHash(line) & d.mask; ; i = (i + 1) & d.mask {
		s := &d.slots[i]
		if s.key == k {
			return &s.lineState
		}
		if s.key == 0 {
			return nil
		}
	}
}

// getOrCreate returns the entry for line, inserting a fresh one
// (owner -1, no sharers) if absent. It may rehash; pointers from earlier
// calls are invalid afterwards.
func (d *dirTable) getOrCreate(line uint64) *lineState {
	if (d.used+1)*4 >= len(d.slots)*3 {
		d.rehash()
	}
	k := line + 1
	tomb := -1
	for i := dirHash(line) & d.mask; ; i = (i + 1) & d.mask {
		s := &d.slots[i]
		if s.key == k {
			return &s.lineState
		}
		if s.key == dirTomb {
			if tomb < 0 {
				tomb = int(i)
			}
			continue
		}
		if s.key == 0 {
			if tomb >= 0 {
				s = &d.slots[tomb]
			} else {
				d.used++
			}
			d.live++
			s.key = k
			s.lineState = lineState{owner: -1}
			return &s.lineState
		}
	}
}

// del removes line's entry if present, leaving a tombstone.
func (d *dirTable) del(line uint64) {
	k := line + 1
	for i := dirHash(line) & d.mask; ; i = (i + 1) & d.mask {
		s := &d.slots[i]
		if s.key == k {
			s.key = dirTomb
			s.lineState = lineState{}
			d.live--
			return
		}
		if s.key == 0 {
			return
		}
	}
}

// rehash rebuilds the table, dropping tombstones, doubling the slot count
// when the live entries alone would keep it more than half full.
func (d *dirTable) rehash() {
	size := len(d.slots)
	if (d.live+1)*2 >= size {
		size *= 2
	}
	old := d.slots
	d.slots = make([]dirSlot, size)
	d.mask = uint64(size - 1)
	d.used = d.live
	for i := range old {
		s := &old[i]
		if s.key == 0 || s.key == dirTomb {
			continue
		}
		for j := dirHash(s.key-1) & d.mask; ; j = (j + 1) & d.mask {
			t := &d.slots[j]
			if t.key == 0 {
				*t = *s
				break
			}
		}
	}
}
