package power4

import "testing"

func TestPrefetcherAllocatesOnSequentialMisses(t *testing.T) {
	var p Prefetcher
	r := p.OnAccess(100, true)
	if r.Allocated {
		t.Fatal("allocated on first miss")
	}
	r = p.OnAccess(101, true)
	if !r.Allocated {
		t.Fatal("no allocation on second sequential miss")
	}
	if p.ActiveStreams() != 1 {
		t.Fatalf("streams = %d", p.ActiveStreams())
	}
}

func TestPrefetcherDoesNotAllocateOnRandomMisses(t *testing.T) {
	var p Prefetcher
	for _, l := range []uint64{10, 500, 90, 7000, 42, 12345} {
		if r := p.OnAccess(l, true); r.Allocated {
			t.Fatalf("allocated on non-sequential miss at %d", l)
		}
	}
}

func TestPrefetcherStreamCoverage(t *testing.T) {
	var p Prefetcher
	p.OnAccess(100, true)
	p.OnAccess(101, true) // allocate, next=102
	covered := 0
	for l := uint64(102); l < 120; l++ {
		r := p.OnAccess(l, true)
		if r.Covered {
			covered++
		}
	}
	if covered != 18 {
		t.Fatalf("stream covered %d/18 sequential accesses", covered)
	}
}

func TestPrefetcherRampDepth(t *testing.T) {
	var p Prefetcher
	p.OnAccess(100, true)
	p.OnAccess(101, true)
	var lastL2 int
	for l := uint64(102); l < 115; l++ {
		r := p.OnAccess(l, true)
		lastL2 = r.L2Prefetches
	}
	// Fully ramped: depth 5 => 2 L2 prefetches per advance.
	if lastL2 != maxRampDepth/2 {
		t.Fatalf("ramped L2 prefetches = %d, want %d", lastL2, maxRampDepth/2)
	}
}

func TestPrefetcherLRUStreamReplacement(t *testing.T) {
	var p Prefetcher
	// Allocate 9 streams; the 9th must evict the oldest, keeping 8.
	for s := 0; s < 9; s++ {
		base := uint64(1000 * (s + 1))
		p.OnAccess(base, true)
		p.OnAccess(base+1, true)
	}
	if p.ActiveStreams() != 8 {
		t.Fatalf("streams = %d, want 8", p.ActiveStreams())
	}
	// The first stream (next=1002) must be gone: accessing it is uncovered.
	if r := p.OnAccess(1002, true); r.Covered {
		t.Fatal("evicted stream still covering")
	}
}

func TestPrefetcherTake(t *testing.T) {
	var p Prefetcher
	p.OnAccess(5, true)
	p.OnAccess(6, true)
	p.OnAccess(7, true)
	l1, l2, allocs := p.Take()
	if l1 == 0 || l2 == 0 || allocs != 1 {
		t.Fatalf("take = %d/%d/%d", l1, l2, allocs)
	}
	l1, l2, allocs = p.Take()
	if l1 != 0 || l2 != 0 || allocs != 0 {
		t.Fatal("take did not clear")
	}
}

func TestPrefetcherHitsDoNotAllocate(t *testing.T) {
	var p Prefetcher
	for l := uint64(0); l < 20; l++ {
		if r := p.OnAccess(l, false); r.Allocated {
			t.Fatal("allocated on hits")
		}
	}
	if p.ActiveStreams() != 0 {
		t.Fatal("streams allocated from hits")
	}
}
