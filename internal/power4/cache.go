package power4

import "fmt"

// ReplacementPolicy selects the victim way on a fill.
type ReplacementPolicy uint8

const (
	// ReplFIFO evicts in fill order; the POWER4 L1 D-cache uses FIFO.
	ReplFIFO ReplacementPolicy = iota
	// ReplLRU evicts the least recently used line.
	ReplLRU
)

// String names the policy.
func (r ReplacementPolicy) String() string {
	if r == ReplFIFO {
		return "FIFO"
	}
	return "LRU"
}

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes uint64
	Ways      int
	LineBytes uint64 // POWER4 uses 128-byte L1/L2 lines, 512-byte L3 lines
	Repl      ReplacementPolicy
}

// Validate checks the geometry.
func (c CacheConfig) Validate() error {
	if c.SizeBytes == 0 || c.Ways <= 0 || c.LineBytes == 0 {
		return fmt.Errorf("power4: cache %q has zero geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("power4: cache %q line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%uint64(c.Ways) != 0 {
		return fmt.Errorf("power4: cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / uint64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("power4: cache %q set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative cache with configurable replacement. It tracks
// tags only (trace-driven simulation needs no data).
type Cache struct {
	cfg       CacheConfig
	sets      uint64
	lineShift uint
	tags      []uint64 // sets*ways entries
	valid     []bool
	fifoPtr   []uint32 // per set: next victim way under FIFO
	lastUse   []uint64 // per entry: tick of last touch under LRU
	mru       []uint32 // per set: way of the most recent hit (probe-order hint)
	tick      uint64

	accesses uint64
	misses   uint64

	ref bool // reference mode: run the pre-change multi-pass Insert
}

// SetReference switches the cache between the optimised one-pass Insert
// and the pre-change multi-pass implementation. Results are identical;
// reference mode exists so SetFastPaths(false) measurements reproduce the
// pre-change per-access cost, not just its behaviour.
func (c *Cache) SetReference(ref bool) { c.ref = ref }

// NewCache builds a cache from cfg.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / uint64(cfg.Ways)
	var shift uint
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	n := int(lines)
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		fifoPtr:   make([]uint32, sets),
		lastUse:   make([]uint64, n),
		mru:       make([]uint32, sets),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) setIndex(line uint64) uint64 { return (line >> c.lineShift) & (c.sets - 1) }

// Lookup probes for addr, updating recency on a hit but never allocating.
// It returns true on hit.
func (c *Cache) Lookup(addr uint64) bool {
	c.tick++
	c.accesses++
	line := addr >> c.lineShift
	set := line & (c.sets - 1)
	base := int(set) * c.cfg.Ways
	// Probe the set's most recent hit way first. This changes only the
	// probe order, never the outcome or the recency state, so results
	// are identical with the hint disabled (reference mode).
	if !c.ref {
		if i := base + int(c.mru[set]); c.valid[i] && c.tags[i] == line {
			c.lastUse[i] = c.tick
			return true
		}
	}
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lastUse[i] = c.tick
			c.mru[set] = uint32(w)
			return true
		}
	}
	c.misses++
	return false
}

// Probe reports whether addr is resident without touching any state.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := line & (c.sets - 1)
	base := int(set) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr, evicting per policy. It returns
// the evicted line address and whether an eviction happened.
func (c *Cache) Insert(addr uint64) (evicted uint64, wasValid bool) {
	if c.ref {
		return c.insertRef(addr)
	}
	line := addr >> c.lineShift
	set := line & (c.sets - 1)
	base := int(set) * c.cfg.Ways
	// One pass finds an existing copy, the first free way, and the LRU
	// victim candidate together (the separate-scan version visited the
	// set up to three times).
	free := -1
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if !c.valid[i] {
			if free < 0 {
				free = i
			}
			continue
		}
		if c.tags[i] == line {
			c.lastUse[i] = c.tick
			c.mru[set] = uint32(w)
			return 0, false
		}
		if c.lastUse[i] < oldest {
			oldest = c.lastUse[i]
			victim = i
		}
	}
	if free >= 0 {
		c.valid[free] = true
		c.tags[free] = line
		c.lastUse[free] = c.tick
		c.mru[set] = uint32(free - base)
		if c.cfg.Repl == ReplFIFO {
			c.fifoPtr[set] = uint32((free - base + 1) % c.cfg.Ways)
		}
		return 0, false
	}
	if c.cfg.Repl == ReplFIFO {
		v := int(c.fifoPtr[set])
		c.fifoPtr[set] = uint32((v + 1) % c.cfg.Ways)
		victim = base + v
	}
	ev := c.tags[victim] << c.lineShift
	c.tags[victim] = line
	c.lastUse[victim] = c.tick
	c.mru[set] = uint32(victim - base)
	return ev, true
}

// insertRef is the pre-change Insert: separate existence, free-way and
// victim scans. Kept verbatim as the reference-mode implementation.
func (c *Cache) insertRef(addr uint64) (evicted uint64, wasValid bool) {
	line := addr >> c.lineShift
	set := line & (c.sets - 1)
	base := int(set) * c.cfg.Ways
	// Already present? Refresh and done.
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lastUse[i] = c.tick
			return 0, false
		}
	}
	// Free way?
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if !c.valid[i] {
			c.valid[i] = true
			c.tags[i] = line
			c.lastUse[i] = c.tick
			if c.cfg.Repl == ReplFIFO {
				c.fifoPtr[set] = uint32((w + 1) % c.cfg.Ways)
			}
			return 0, false
		}
	}
	// Victim selection.
	var victim int
	switch c.cfg.Repl {
	case ReplFIFO:
		victim = int(c.fifoPtr[set])
		c.fifoPtr[set] = uint32((victim + 1) % c.cfg.Ways)
	default: // LRU
		victim = 0
		oldest := c.lastUse[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if c.lastUse[base+w] < oldest {
				oldest = c.lastUse[base+w]
				victim = w
			}
		}
	}
	i := base + victim
	ev := c.tags[i] << c.lineShift
	c.tags[i] = line
	c.lastUse[i] = c.tick
	return ev, true
}

// Invalidate removes the line containing addr if present; reports whether
// it was resident.
func (c *Cache) Invalidate(addr uint64) bool {
	line := addr >> c.lineShift
	set := line & (c.sets - 1)
	base := int(set) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.valid[i] = false
			return true
		}
	}
	return false
}

// MissRate returns lifetime misses/accesses through Lookup.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// ResidentLines returns how many lines are currently valid.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
