package power4

import (
	"strings"
	"testing"
)

func TestEventNamesComplete(t *testing.T) {
	for _, e := range AllEvents() {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "PM_UNKNOWN") {
			t.Errorf("event %d has no name", int(e))
		}
	}
	if Event(9999).String() != "PM_UNKNOWN_9999" {
		t.Fatal("unknown event name wrong")
	}
}

func TestEventByName(t *testing.T) {
	e, ok := EventByName("PM_CYC")
	if !ok || e != EvCycles {
		t.Fatalf("EventByName(PM_CYC) = %v, %v", e, ok)
	}
	if _, ok := EventByName("PM_NOPE"); ok {
		t.Fatal("unknown name resolved")
	}
	// Round-trip every event.
	for _, e := range AllEvents() {
		got, ok := EventByName(e.String())
		if !ok || got != e {
			t.Fatalf("round trip failed for %v", e)
		}
	}
}

func TestEventNamesUnique(t *testing.T) {
	seen := map[string]Event{}
	for _, e := range AllEvents() {
		n := e.String()
		if prev, dup := seen[n]; dup {
			t.Fatalf("duplicate event name %q for %v and %v", n, prev, e)
		}
		seen[n] = e
	}
}

func TestCountersArithmetic(t *testing.T) {
	var c Counters
	c.Add(EvCycles, 300)
	c.Inc(EvInstCompleted)
	c.Add(EvInstCompleted, 99)
	if c.Get(EvCycles) != 300 || c.Get(EvInstCompleted) != 100 {
		t.Fatal("add/inc wrong")
	}
	if c.CPI() != 3 {
		t.Fatalf("CPI = %v", c.CPI())
	}
	c.Add(EvInstDispatched, 240)
	if c.SpeculationRate() != 2.4 {
		t.Fatalf("spec rate = %v", c.SpeculationRate())
	}
	snap := c.Snapshot()
	c.Add(EvCycles, 100)
	if snap.Get(EvCycles) != 300 {
		t.Fatal("snapshot aliased live counters")
	}
	delta := c.Sub(&snap)
	if delta.Get(EvCycles) != 100 || delta.Get(EvInstCompleted) != 0 {
		t.Fatal("Sub wrong")
	}
	var sum Counters
	sum.AddAll(&snap)
	sum.AddAll(&delta)
	if sum.Get(EvCycles) != c.Get(EvCycles) {
		t.Fatal("AddAll wrong")
	}
}

func TestCountersRates(t *testing.T) {
	var c Counters
	if c.CPI() != 0 || c.SpeculationRate() != 0 || c.Rate(EvLoads) != 0 {
		t.Fatal("zero counters must yield zero rates")
	}
	c.Add(EvInstCompleted, 1000)
	c.Add(EvLoads, 320)
	if got := c.Rate(EvLoads); got != 0.32 {
		t.Fatalf("Rate = %v", got)
	}
	if got := c.Ratio(EvLoads, EvInstCompleted); got != 0.32 {
		t.Fatalf("Ratio = %v", got)
	}
	if c.Ratio(EvLoads, EvStores) != 0 {
		t.Fatal("zero denominator must yield 0")
	}
}
