// Package power4 models the microarchitectural structures of the POWER4
// processor that the paper's hardware-performance-monitor study observes:
// the L1/L2/L3 cache hierarchy with its MCM topology and data-source
// labeling, the ERAT/TLB address-translation structures with 4 KB and 16 MB
// pages, conditional and indirect branch prediction, the sequential stream
// prefetcher, SYNC/SRQ ordering cost, LARX/STCX reservations, and a
// penalty-based CPI model with dispatch/complete (speculation) accounting.
//
// The model is trace-driven: workload generators produce isa.Instr streams
// with real effective addresses from the simulated address space, and the
// core consumes them while incrementing the same events a POWER4 HPM group
// would count.
package power4

import "fmt"

// Event identifies one hardware counter. Names follow the POWER4 HPM
// conventions loosely (PM_*), with the subset needed for Figures 5-10.
type Event int

// Hardware events.
const (
	EvCycles Event = iota
	EvInstCompleted
	EvInstDispatched
	EvCycWithCompletion // cycles in which >= 1 instruction completed

	EvLoads
	EvStores
	EvL1DLoadMiss
	EvL1DStoreMiss
	EvL1DPrefetch     // lines prefetched into L1D
	EvL2Prefetch      // lines prefetched into L2
	EvPrefStreamAlloc // prefetch streams allocated

	EvBrCond
	EvBrCondMispred
	EvBrIndirect
	EvBrTargetMispred

	EvDERATMiss
	EvIERATMiss
	EvDTLBMiss
	EvITLBMiss
	EvSLBMiss

	EvL1IMiss
	EvIFetchL1 // instructions fetched from the L1 I-cache
	EvIFetchL2
	EvIFetchL3
	EvIFetchMem

	EvDataFromL2
	EvDataFromL25Shr
	EvDataFromL275Shr
	EvDataFromL275Mod
	EvDataFromL3
	EvDataFromL35
	EvDataFromMem

	EvSyncCount
	EvSyncSRQCycles // cycles with a SYNC request sitting in the store reorder queue
	EvLarx
	EvStcx
	EvStcxFail

	EvKernelInst
	EvKernelCycles
	EvKernelSyncSRQCycles

	numEvents
)

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	EvCycles:              "PM_CYC",
	EvInstCompleted:       "PM_INST_CMPL",
	EvInstDispatched:      "PM_INST_DISP",
	EvCycWithCompletion:   "PM_1PLUS_PPC_CMPL",
	EvLoads:               "PM_LD_REF_L1",
	EvStores:              "PM_ST_REF_L1",
	EvL1DLoadMiss:         "PM_LD_MISS_L1",
	EvL1DStoreMiss:        "PM_ST_MISS_L1",
	EvL1DPrefetch:         "PM_L1_PREF",
	EvL2Prefetch:          "PM_L2_PREF",
	EvPrefStreamAlloc:     "PM_STREAM_ALLOC",
	EvBrCond:              "PM_BR_CMPL",
	EvBrCondMispred:       "PM_BR_MPRED_CR",
	EvBrIndirect:          "PM_BR_IND",
	EvBrTargetMispred:     "PM_BR_MPRED_TA",
	EvDERATMiss:           "PM_DERAT_MISS",
	EvIERATMiss:           "PM_IERAT_MISS",
	EvDTLBMiss:            "PM_DTLB_MISS",
	EvITLBMiss:            "PM_ITLB_MISS",
	EvSLBMiss:             "PM_SLB_MISS",
	EvL1IMiss:             "PM_L1I_MISS",
	EvIFetchL1:            "PM_INST_FROM_L1",
	EvIFetchL2:            "PM_INST_FROM_L2",
	EvIFetchL3:            "PM_INST_FROM_L3",
	EvIFetchMem:           "PM_INST_FROM_MEM",
	EvDataFromL2:          "PM_DATA_FROM_L2",
	EvDataFromL25Shr:      "PM_DATA_FROM_L25_SHR",
	EvDataFromL275Shr:     "PM_DATA_FROM_L275_SHR",
	EvDataFromL275Mod:     "PM_DATA_FROM_L275_MOD",
	EvDataFromL3:          "PM_DATA_FROM_L3",
	EvDataFromL35:         "PM_DATA_FROM_L35",
	EvDataFromMem:         "PM_DATA_FROM_MEM",
	EvSyncCount:           "PM_SYNC",
	EvSyncSRQCycles:       "PM_SYNC_IN_SRQ_CYC",
	EvLarx:                "PM_LARX",
	EvStcx:                "PM_STCX",
	EvStcxFail:            "PM_STCX_FAIL",
	EvKernelInst:          "PM_INST_CMPL_KERNEL",
	EvKernelCycles:        "PM_CYC_KERNEL",
	EvKernelSyncSRQCycles: "PM_SYNC_IN_SRQ_CYC_KERNEL",
}

// String returns the HPM-style mnemonic for the event.
func (e Event) String() string {
	if e >= 0 && int(e) < len(eventNames) && eventNames[e] != "" {
		return eventNames[e]
	}
	return fmt.Sprintf("PM_UNKNOWN_%d", int(e))
}

// EventByName resolves a mnemonic back to its Event; ok is false if the
// name is unknown.
func EventByName(name string) (Event, bool) {
	for i, n := range eventNames {
		if n == name {
			return Event(i), true
		}
	}
	return 0, false
}

// AllEvents returns every defined event in declaration order.
func AllEvents() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// Counters is a full set of event counts. The zero value is ready to use.
type Counters struct {
	v [numEvents]uint64
}

// Add increments event e by n.
func (c *Counters) Add(e Event, n uint64) { c.v[e] += n }

// Inc increments event e by one.
func (c *Counters) Inc(e Event) { c.v[e]++ }

// Get returns the count for e.
func (c Counters) Get(e Event) uint64 { return c.v[e] }

// Snapshot returns a copy of the counters.
func (c Counters) Snapshot() Counters { return c }

// Sub returns c - prev element-wise; used to compute per-window deltas the
// way hpmstat samples do.
func (c Counters) Sub(prev *Counters) Counters {
	var out Counters
	for i := range c.v {
		out.v[i] = c.v[i] - prev.v[i]
	}
	return out
}

// AddAll accumulates other into c.
func (c *Counters) AddAll(other *Counters) {
	for i := range c.v {
		c.v[i] += other.v[i]
	}
}

// CPI returns cycles per completed instruction (0 when no completions).
func (c Counters) CPI() float64 {
	inst := c.v[EvInstCompleted]
	if inst == 0 {
		return 0
	}
	return float64(c.v[EvCycles]) / float64(inst)
}

// SpeculationRate returns dispatched / completed instructions.
func (c Counters) SpeculationRate() float64 {
	inst := c.v[EvInstCompleted]
	if inst == 0 {
		return 0
	}
	return float64(c.v[EvInstDispatched]) / float64(inst)
}

// Rate returns event e per completed instruction.
func (c Counters) Rate(e Event) float64 {
	inst := c.v[EvInstCompleted]
	if inst == 0 {
		return 0
	}
	return float64(c.v[e]) / float64(inst)
}

// Ratio returns num/den counts, 0 when den is 0.
func (c Counters) Ratio(num, den Event) float64 {
	d := c.v[den]
	if d == 0 {
		return 0
	}
	return float64(c.v[num]) / float64(d)
}
