package power4

import (
	"math/rand"
	"testing"
)

func newHier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultTopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTopologyMapping(t *testing.T) {
	h := newHier(t)
	if h.Cores() != 4 {
		t.Fatalf("cores = %d", h.Cores())
	}
	// Cores 0,1 on chip 0 (MCM 0); cores 2,3 on chip 1 (MCM 1).
	if h.ChipOf(0) != 0 || h.ChipOf(1) != 0 || h.ChipOf(2) != 1 || h.ChipOf(3) != 1 {
		t.Fatal("core->chip mapping wrong")
	}
	if h.MCMOf(0) != 0 || h.MCMOf(1) != 1 {
		t.Fatal("chip->MCM mapping wrong")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewHierarchy(TopologyConfig{}); err == nil {
		t.Fatal("zero topology accepted")
	}
}

func TestLoadFromMemoryThenL2(t *testing.T) {
	h := newHier(t)
	const a = 0x100000
	if src := h.Load(0, a); src != SrcMem {
		t.Fatalf("cold load source = %v, want Memory", src)
	}
	if src := h.Load(0, a); src != SrcL2 {
		t.Fatalf("warm load source = %v, want L2", src)
	}
	// Sibling core on the same chip shares the L2.
	if src := h.Load(1, a); src != SrcL2 {
		t.Fatalf("sibling load source = %v, want L2", src)
	}
}

func TestCrossMCMSharedTransfer(t *testing.T) {
	h := newHier(t)
	const a = 0x200000
	h.Load(0, a) // chip 0 now holds the line clean
	if src := h.Load(2, a); src != SrcL275Shr {
		t.Fatalf("cross-MCM load source = %v, want L2.75 Shared", src)
	}
}

func TestCrossMCMModifiedTransfer(t *testing.T) {
	h := newHier(t)
	const a = 0x300000
	h.Store(0, a) // chip 0 holds the line modified
	if src := h.Load(2, a); src != SrcL275Mod {
		t.Fatalf("cross-MCM load source = %v, want L2.75 Modified", src)
	}
	// The transfer downgraded the line: a further remote read is Shared.
	h.Load(2, a) // now in chip 1's L2 too
	if src := h.Load(0, a); src != SrcL2 {
		t.Fatalf("owner reload source = %v, want L2", src)
	}
}

func TestNoL25TrafficInPaperTopology(t *testing.T) {
	// With one live chip per MCM there is no same-MCM remote L2, exactly
	// as the paper's footnote says.
	h := newHier(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		core := rng.Intn(4)
		addr := uint64(rng.Intn(1 << 24))
		if rng.Intn(3) == 0 {
			h.Store(core, addr)
		} else {
			src := h.Load(core, addr)
			if src == SrcL25Shr || src == SrcL25Mod {
				t.Fatalf("impossible L2.5 traffic at %#x", addr)
			}
		}
	}
}

func TestStoreInvalidatesRemoteCopies(t *testing.T) {
	h := newHier(t)
	const a = 0x400000
	h.Load(0, a)
	h.Load(2, a) // both chips share the line
	h.Store(0, a)
	if h.L2(1).Probe(a) {
		t.Fatal("remote copy survived an invalidating store")
	}
}

func TestL3VictimPath(t *testing.T) {
	h := newHier(t)
	// Fill far beyond L2 capacity (1.5 MB) but within L3 (32 MB): evicted
	// lines must be findable in the MCM-local L3.
	for a := uint64(0); a < 8<<20; a += 128 {
		h.Load(0, a)
	}
	var fromL3, fromMem int
	for a := uint64(0); a < 8<<20; a += 4096 {
		switch h.Load(0, a) {
		case SrcL3:
			fromL3++
		case SrcMem:
			fromMem++
		}
	}
	if fromL3 == 0 {
		t.Fatal("no L3 hits after L2 overflow")
	}
	if fromL3 < fromMem {
		t.Fatalf("L3 victim path weak: L3=%d mem=%d", fromL3, fromMem)
	}
}

func TestL35Source(t *testing.T) {
	h := newHier(t)
	const a = 0x500000
	h.Load(2, a) // MCM 1's L3 + chip 1's L2 hold it
	// Push it out of chip 1's L2 only.
	for x := uint64(1 << 26); x < 1<<26+4<<20; x += 128 {
		h.Load(2, x)
	}
	if h.L2(1).Probe(a) {
		t.Skip("line unexpectedly survived L2 pressure")
	}
	if src := h.Load(0, a); src != SrcL35 {
		t.Fatalf("source = %v, want L3.5", src)
	}
}

func TestDirectoryBounded(t *testing.T) {
	h := newHier(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		h.Load(rng.Intn(4), uint64(rng.Intn(1<<28))&^127)
	}
	// Directory only tracks L2-resident lines: total L2 lines = 2 chips *
	// 1.5MB / 128B = 24576.
	if h.DirectorySize() > 24576 {
		t.Fatalf("directory grew unbounded: %d", h.DirectorySize())
	}
}

func TestReservationLost(t *testing.T) {
	h := newHier(t)
	const line = uint64(0x600000 >> 7)
	// Core 0 (chip 0) reserves; core 2 (chip 1) stores to the line.
	h.Store(2, 0x600000)
	if !h.ReservationLost(0, line) {
		t.Fatal("reservation survived a remote store")
	}
	// Consumed: asking again reports no loss.
	if h.ReservationLost(0, line) {
		t.Fatal("reservation loss not consumed")
	}
	// A store by the same chip does not kill its own reservation.
	h.Store(1, 0x700000) // core 1 is chip 0
	if h.ReservationLost(0, 0x700000>>7) {
		t.Fatal("same-chip store killed the reservation")
	}
}

func TestFetchInstBuckets(t *testing.T) {
	h := newHier(t)
	const a = 0x800000
	if src := h.FetchInst(0, a); src != SrcMem {
		t.Fatalf("cold fetch = %v", src)
	}
	h.Load(2, a+4096) // prime remote chip
	h.Load(2, a)
	// Remote-L2 sourced fetch collapses to the L2 bucket.
	// First evict from own L2? It was installed by FetchInst. Use a fresh line:
	const b = 0x900000
	h.Load(2, b)
	if src := h.FetchInst(0, b); src != SrcL2 {
		t.Fatalf("remote fetch bucket = %v, want L2", src)
	}
}
