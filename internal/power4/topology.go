package power4

import "fmt"

// DataSource labels where a load that missed the L1 D-cache was satisfied
// from, following the POWER4 naming the paper uses in Figure 9:
//
//   - L2:      the requesting core's own on-chip L2
//   - L2.5:    an off-chip L2 on the same MCM
//   - L2.75:   an L2 on a different MCM (Shared or Modified MESI state)
//   - L3:      the MCM-local L3
//   - L3.5:    an L3 attached to a different MCM
//   - Memory:  DRAM
type DataSource int

// Data sources in increasing latency order.
const (
	SrcL1 DataSource = iota
	SrcL2
	SrcL25Shr
	SrcL25Mod
	SrcL275Shr
	SrcL275Mod
	SrcL3
	SrcL35
	SrcMem
	numSources
)

// NumSources is the number of data source labels.
const NumSources = int(numSources)

var sourceNames = [...]string{
	SrcL1:      "L1",
	SrcL2:      "L2",
	SrcL25Shr:  "L2.5 Shared",
	SrcL25Mod:  "L2.5 Modified",
	SrcL275Shr: "L2.75 Shared",
	SrcL275Mod: "L2.75 Modified",
	SrcL3:      "L3",
	SrcL35:     "L3.5",
	SrcMem:     "Memory",
}

// String names the source as in Figure 9.
func (s DataSource) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("src(%d)", int(s))
}

// TopologyConfig describes the multi-chip layout. The paper's SUT: 4 cores
// as 2 MCMs, each MCM holding one live 2-core chip with a shared L2, and
// one L3 per MCM (hence no L2.5 traffic is ever observed).
type TopologyConfig struct {
	Chips        int // live chips
	CoresPerChip int
	ChipsPerMCM  int // live chips per MCM
	L2           CacheConfig
	L3           CacheConfig
}

// DefaultTopologyConfig returns the paper's 4-core / 2-MCM system with
// POWER4 cache geometry (1.5 MB 8-way L2 per chip, 32 MB 8-way L3 per MCM).
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		Chips:        2,
		CoresPerChip: 2,
		ChipsPerMCM:  1,
		L2: CacheConfig{
			Name: "L2", SizeBytes: 1536 << 10, Ways: 12, LineBytes: 128, Repl: ReplLRU,
		},
		L3: CacheConfig{
			Name: "L3", SizeBytes: 32 << 20, Ways: 8, LineBytes: 512, Repl: ReplLRU,
		},
	}
}

// storeFastEntry is one line the store fast path may skip work for,
// together with its L2 set index (used for set-granular invalidation).
type storeFastEntry struct {
	line uint64
	set  uint64
}

// lineState is the directory entry for a line resident in >= 1 L2.
type lineState struct {
	sharers uint8 // bitmask over chips
	owner   int8  // modified owner chip, -1 if clean
}

// Hierarchy is the shared (cross-core) part of the memory system: per-chip
// L2s, per-MCM L3s, and a MESI-flavoured directory that produces the
// Figure 9 data-source labels.
type Hierarchy struct {
	cfg TopologyConfig
	l2  []*Cache // per chip
	l3  []*Cache // per MCM
	// The coherence directory has two representations: the open-addressed
	// dirTable used on the fast path, and the pre-change map used in
	// reference mode so that SetFastPaths(false) reproduces pre-change
	// per-access cost, not just behaviour. SetFastPaths migrates between
	// them; exactly one holds the live entries at any time.
	dir    *dirTable
	dirMap map[uint64]*lineState
	mcms   int

	recentStores map[uint64]uint8 // lines recently stored to, per chip (reservation tracking)
	storeRing    []uint64         // FIFO of tracked lines (deterministic eviction)
	storeRingPos int

	// Store fast-path state. Immediately after Store(chip, line) completes,
	// the line is resident in that chip's L2 in Modified state with no other
	// sharers, the directory entry reads {owner: chip, sharers: {chip}}, and
	// recentStores[line] already carries the chip's bit (so the FIFO ring is
	// untouched by a re-record). A repeat store from the same chip to such a
	// line therefore changes nothing, provided nothing disturbed that state
	// in between:
	//
	//   - Load/FetchInst, PrefetchFill and ReservationLost can touch any
	//     line's L2 set, directory entry or reservation record, so they
	//     clear the whole ring (storeFastN = 0).
	//   - A slow-path store to another line only perturbs its own L2 set
	//     (Lookup refresh, install, eviction), its own directory and
	//     reservation entries — so it only drops ring entries that share
	//     the victim L2 set (an eviction also changes the set's contents).
	//   - A reservation-ledger eviction inside noteRemoteStore can delete
	//     any tracked line's record, so it clears the ring too.
	//
	// The skipped L2 LRU refresh is safe because, with its set untouched
	// since the entry's own store, that entry is still the set's most
	// recently used line, so re-touching it cannot change the relative
	// recency order replacement consults.
	storeFast     [4]storeFastEntry
	storeFastN    int
	storeFastChip int
	noFast        bool // disables the store fast path (reference behaviour)

	// OnSource, when non-nil, observes every serviced L1 load miss with its
	// source label (debug/ablation hook).
	OnSource func(ra uint64, src DataSource)
	// OnStore, when non-nil, observes every store reaching the coherence
	// point with the storing chip (debug/ablation hook).
	OnStore func(ra uint64, chip int)
}

// NewHierarchy builds the shared cache levels.
func NewHierarchy(cfg TopologyConfig) (*Hierarchy, error) {
	if cfg.Chips <= 0 || cfg.CoresPerChip <= 0 || cfg.ChipsPerMCM <= 0 {
		return nil, fmt.Errorf("power4: bad topology %+v", cfg)
	}
	mcms := (cfg.Chips + cfg.ChipsPerMCM - 1) / cfg.ChipsPerMCM
	h := &Hierarchy{cfg: cfg, dir: newDirTable(), dirMap: make(map[uint64]*lineState), mcms: mcms}
	for i := 0; i < cfg.Chips; i++ {
		c, err := NewCache(cfg.L2)
		if err != nil {
			return nil, err
		}
		h.l2 = append(h.l2, c)
	}
	for i := 0; i < mcms; i++ {
		c, err := NewCache(cfg.L3)
		if err != nil {
			return nil, err
		}
		h.l3 = append(h.l3, c)
	}
	return h, nil
}

// Cores returns the total number of cores.
func (h *Hierarchy) Cores() int { return h.cfg.Chips * h.cfg.CoresPerChip }

// ChipOf maps a core id to its chip.
func (h *Hierarchy) ChipOf(core int) int { return core / h.cfg.CoresPerChip }

// MCMOf maps a chip id to its MCM.
func (h *Hierarchy) MCMOf(chip int) int { return chip / h.cfg.ChipsPerMCM }

func (h *Hierarchy) lineOf(ra uint64) uint64 { return ra >> 7 } // 128-byte coherence granule

// Load services a load that missed the requesting core's L1, returning the
// data source label. ra is the real address.
func (h *Hierarchy) Load(core int, ra uint64) DataSource {
	h.storeFastN = 0
	src := h.load(core, ra)
	if h.OnSource != nil {
		h.OnSource(ra, src)
	}
	return src
}

func (h *Hierarchy) load(core int, ra uint64) DataSource {
	chip := h.ChipOf(core)
	mcm := h.MCMOf(chip)
	line := h.lineOf(ra)

	if h.l2[chip].Lookup(ra) {
		h.noteSharer(line, chip)
		return SrcL2
	}

	// Remote L2s (cache-to-cache transfer).
	for c := 0; c < h.cfg.Chips; c++ {
		if c == chip || !h.l2[c].Probe(ra) {
			continue
		}
		st := h.dirGet(line)
		modified := st != nil && st.owner == int8(c)
		sameMCM := h.MCMOf(c) == mcm
		// The transfer downgrades a modified line to shared and installs a
		// copy in the requester's L2.
		if st != nil {
			st.owner = -1
		}
		h.installL2(chip, ra, line)
		switch {
		case sameMCM && modified:
			return SrcL25Mod
		case sameMCM:
			return SrcL25Shr
		case modified:
			return SrcL275Mod
		default:
			return SrcL275Shr
		}
	}

	// MCM-local L3.
	if h.l3[mcm].Lookup(ra) {
		h.installL2(chip, ra, line)
		return SrcL3
	}
	// Remote L3s.
	for m := 0; m < h.mcms; m++ {
		if m == mcm {
			continue
		}
		if h.l3[m].Probe(ra) {
			h.installL2(chip, ra, line)
			return SrcL35
		}
	}
	// Memory: fill L3 and L2 on the way in.
	h.insertL3(mcm, ra)
	h.installL2(chip, ra, line)
	return SrcMem
}

// Store services a store from core to real address ra: the line is brought
// to the owning chip's L2 in Modified state and all other copies are
// invalidated (the L1 is write-through/no-allocate, so every store reaches
// the L2 — the coherence point of the system).
// It reports whether the store missed the chip's L2.
func (h *Hierarchy) Store(core int, ra uint64) (l2Miss bool) {
	chip := h.ChipOf(core)
	line := h.lineOf(ra)
	if !h.noFast && h.OnStore == nil && chip == h.storeFastChip {
		for i := 0; i < h.storeFastN; i++ {
			if h.storeFast[i].line == line {
				// Provable no-op: see the storeFast field comment. The slow
				// path below would hit the chip's own L2 and find nothing to
				// invalidate or record, so the result is always "no L2 miss".
				return false
			}
		}
	}
	if h.OnStore != nil {
		h.OnStore(ra, chip)
	}
	hit := h.l2[chip].Lookup(ra)
	var st *lineState
	if h.noFast {
		// Reference mode: the pre-change install-then-lookup sequence.
		if !hit {
			h.installL2(chip, ra, line)
		}
		st = h.dirGetOrCreate(line)
	} else if !hit {
		st = h.installL2(chip, ra, line)
	} else {
		st = h.dirGetOrCreate(line)
	}
	// Invalidate every other chip's copy.
	for c := 0; c < h.cfg.Chips; c++ {
		if c == chip {
			continue
		}
		if st.sharers&(1<<uint(c)) != 0 {
			h.l2[c].Invalidate(ra)
			st.sharers &^= 1 << uint(c)
		}
	}
	st.sharers |= 1 << uint(chip)
	st.owner = int8(chip)
	h.noteRemoteStore(chip, line)
	h.recordStoreFast(chip, line)
	return !hit
}

// recordStoreFast updates the fast-path ring after a slow-path store of
// line by chip: entries whose L2 set this store may have perturbed are
// dropped, then the line is appended (evicting the oldest on overflow).
func (h *Hierarchy) recordStoreFast(chip int, line uint64) {
	if h.noFast || h.OnStore != nil {
		h.storeFastN = 0
		return
	}
	if chip != h.storeFastChip {
		h.storeFastN = 0
		h.storeFastChip = chip
	}
	set := line & (h.l2[chip].sets - 1)
	n := 0
	for i := 0; i < h.storeFastN; i++ {
		if h.storeFast[i].set != set {
			h.storeFast[n] = h.storeFast[i]
			n++
		}
	}
	if n == len(h.storeFast) {
		copy(h.storeFast[:], h.storeFast[1:])
		n--
	}
	h.storeFast[n] = storeFastEntry{line: line, set: set}
	h.storeFastN = n + 1
}

// SetFastPaths enables or disables the hierarchy's state-neutral store
// fast path. Results are identical either way; disabling it restores the
// pre-batching per-store work for reference measurements. It returns the
// previous setting.
func (h *Hierarchy) SetFastPaths(enabled bool) bool {
	prev := !h.noFast
	if prev != enabled {
		// Migrate the directory between its two representations so the
		// switch is state-preserving even mid-run.
		if enabled {
			for line, st := range h.dirMap {
				*h.dir.getOrCreate(line) = *st
			}
			h.dirMap = make(map[uint64]*lineState)
		} else {
			for i := range h.dir.slots {
				s := &h.dir.slots[i]
				if s.key == 0 || s.key == dirTomb {
					continue
				}
				st := s.lineState
				h.dirMap[s.key-1] = &st
			}
			h.dir = newDirTable()
		}
	}
	h.noFast = !enabled
	h.storeFastN = 0
	for _, c := range h.l2 {
		c.SetReference(!enabled)
	}
	for _, c := range h.l3 {
		c.SetReference(!enabled)
	}
	return prev
}

// FetchInst services an instruction fetch that missed the core's L1 I-cache
// and returns the level it was satisfied from, collapsed to the L2/L3/MEM
// buckets the instruction-source HPM events distinguish.
func (h *Hierarchy) FetchInst(core int, ra uint64) DataSource {
	src := h.Load(core, ra)
	switch src {
	case SrcL25Shr, SrcL25Mod, SrcL275Shr, SrcL275Mod:
		return SrcL2 // remote-L2 fills count as L2-class for the I-side events
	case SrcL35:
		return SrcL3
	default:
		return src
	}
}

// PrefetchFill installs a prefetched line into the chip's L2 (and L3 for
// deep prefetches) without demand-access accounting.
func (h *Hierarchy) PrefetchFill(core int, ra uint64, deep bool) {
	h.storeFastN = 0
	chip := h.ChipOf(core)
	h.installL2(chip, ra, h.lineOf(ra))
	if deep {
		h.insertL3(h.MCMOf(chip), ra)
	}
}

func (h *Hierarchy) noteSharer(line uint64, chip int) {
	if st := h.dirGet(line); st != nil {
		st.sharers |= 1 << uint(chip)
	}
}

// dirGet returns the directory entry for line, or nil if absent.
func (h *Hierarchy) dirGet(line uint64) *lineState {
	if h.noFast {
		return h.dirMap[line]
	}
	return h.dir.get(line)
}

// dirGetOrCreate returns the directory entry for line, inserting a fresh
// one (owner -1, no sharers) if absent.
func (h *Hierarchy) dirGetOrCreate(line uint64) *lineState {
	if h.noFast {
		st := h.dirMap[line]
		if st == nil {
			st = &lineState{owner: -1}
			h.dirMap[line] = st
		}
		return st
	}
	return h.dir.getOrCreate(line)
}

// dirDel removes line's directory entry if present.
func (h *Hierarchy) dirDel(line uint64) {
	if h.noFast {
		delete(h.dirMap, line)
		return
	}
	h.dir.del(line)
}

func (h *Hierarchy) installL2(chip int, ra, line uint64) *lineState {
	evicted, had := h.l2[chip].Insert(ra)
	st := h.dirGetOrCreate(line)
	st.sharers |= 1 << uint(chip)
	if had {
		// The victim is never line itself (Insert returns early when the
		// line is already resident), so st stays valid across the evict.
		h.onL2Evict(chip, evicted)
	}
	return st
}

// onL2Evict maintains the directory and spills the victim into the L3
// (victim-cache style, as on POWER4 where the L3 holds L2 castouts).
func (h *Hierarchy) onL2Evict(chip int, evictedAddr uint64) {
	line := h.lineOf(evictedAddr)
	if st := h.dirGet(line); st != nil {
		st.sharers &^= 1 << uint(chip)
		if st.owner == int8(chip) {
			st.owner = -1
		}
		if st.sharers == 0 {
			h.dirDel(line)
		}
	}
	h.insertL3(h.MCMOf(chip), evictedAddr)
}

func (h *Hierarchy) insertL3(mcm int, ra uint64) {
	h.l3[mcm].Insert(ra)
}

// DirectorySize returns the number of tracked lines (bounded by total L2
// capacity; used by invariant tests).
func (h *Hierarchy) DirectorySize() int {
	if h.noFast {
		return len(h.dirMap)
	}
	return h.dir.live
}

// L2 exposes a chip's L2 cache for tests.
func (h *Hierarchy) L2(chip int) *Cache { return h.l2[chip] }

// L3 exposes an MCM's L3 cache for tests.
func (h *Hierarchy) L3(mcm int) *Cache { return h.l3[mcm] }
