package power4

import "fmt"

// DataSource labels where a load that missed the L1 D-cache was satisfied
// from, following the POWER4 naming the paper uses in Figure 9:
//
//   - L2:      the requesting core's own on-chip L2
//   - L2.5:    an off-chip L2 on the same MCM
//   - L2.75:   an L2 on a different MCM (Shared or Modified MESI state)
//   - L3:      the MCM-local L3
//   - L3.5:    an L3 attached to a different MCM
//   - Memory:  DRAM
type DataSource int

// Data sources in increasing latency order.
const (
	SrcL1 DataSource = iota
	SrcL2
	SrcL25Shr
	SrcL25Mod
	SrcL275Shr
	SrcL275Mod
	SrcL3
	SrcL35
	SrcMem
	numSources
)

// NumSources is the number of data source labels.
const NumSources = int(numSources)

var sourceNames = [...]string{
	SrcL1:      "L1",
	SrcL2:      "L2",
	SrcL25Shr:  "L2.5 Shared",
	SrcL25Mod:  "L2.5 Modified",
	SrcL275Shr: "L2.75 Shared",
	SrcL275Mod: "L2.75 Modified",
	SrcL3:      "L3",
	SrcL35:     "L3.5",
	SrcMem:     "Memory",
}

// String names the source as in Figure 9.
func (s DataSource) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("src(%d)", int(s))
}

// TopologyConfig describes the multi-chip layout. The paper's SUT: 4 cores
// as 2 MCMs, each MCM holding one live 2-core chip with a shared L2, and
// one L3 per MCM (hence no L2.5 traffic is ever observed).
type TopologyConfig struct {
	Chips        int // live chips
	CoresPerChip int
	ChipsPerMCM  int // live chips per MCM
	L2           CacheConfig
	L3           CacheConfig
}

// DefaultTopologyConfig returns the paper's 4-core / 2-MCM system with
// POWER4 cache geometry (1.5 MB 8-way L2 per chip, 32 MB 8-way L3 per MCM).
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		Chips:        2,
		CoresPerChip: 2,
		ChipsPerMCM:  1,
		L2: CacheConfig{
			Name: "L2", SizeBytes: 1536 << 10, Ways: 12, LineBytes: 128, Repl: ReplLRU,
		},
		L3: CacheConfig{
			Name: "L3", SizeBytes: 32 << 20, Ways: 8, LineBytes: 512, Repl: ReplLRU,
		},
	}
}

// lineState is the directory entry for a line resident in >= 1 L2.
type lineState struct {
	sharers uint8 // bitmask over chips
	owner   int8  // modified owner chip, -1 if clean
}

// Hierarchy is the shared (cross-core) part of the memory system: per-chip
// L2s, per-MCM L3s, and a MESI-flavoured directory that produces the
// Figure 9 data-source labels.
type Hierarchy struct {
	cfg  TopologyConfig
	l2   []*Cache // per chip
	l3   []*Cache // per MCM
	dir  map[uint64]*lineState
	mcms int

	recentStores map[uint64]uint8 // lines recently stored to, per chip (reservation tracking)
	storeRing    []uint64         // FIFO of tracked lines (deterministic eviction)
	storeRingPos int

	// OnSource, when non-nil, observes every serviced L1 load miss with its
	// source label (debug/ablation hook).
	OnSource func(ra uint64, src DataSource)
	// OnStore, when non-nil, observes every store reaching the coherence
	// point with the storing chip (debug/ablation hook).
	OnStore func(ra uint64, chip int)
}

// NewHierarchy builds the shared cache levels.
func NewHierarchy(cfg TopologyConfig) (*Hierarchy, error) {
	if cfg.Chips <= 0 || cfg.CoresPerChip <= 0 || cfg.ChipsPerMCM <= 0 {
		return nil, fmt.Errorf("power4: bad topology %+v", cfg)
	}
	mcms := (cfg.Chips + cfg.ChipsPerMCM - 1) / cfg.ChipsPerMCM
	h := &Hierarchy{cfg: cfg, dir: make(map[uint64]*lineState), mcms: mcms}
	for i := 0; i < cfg.Chips; i++ {
		c, err := NewCache(cfg.L2)
		if err != nil {
			return nil, err
		}
		h.l2 = append(h.l2, c)
	}
	for i := 0; i < mcms; i++ {
		c, err := NewCache(cfg.L3)
		if err != nil {
			return nil, err
		}
		h.l3 = append(h.l3, c)
	}
	return h, nil
}

// Cores returns the total number of cores.
func (h *Hierarchy) Cores() int { return h.cfg.Chips * h.cfg.CoresPerChip }

// ChipOf maps a core id to its chip.
func (h *Hierarchy) ChipOf(core int) int { return core / h.cfg.CoresPerChip }

// MCMOf maps a chip id to its MCM.
func (h *Hierarchy) MCMOf(chip int) int { return chip / h.cfg.ChipsPerMCM }

func (h *Hierarchy) lineOf(ra uint64) uint64 { return ra >> 7 } // 128-byte coherence granule

// Load services a load that missed the requesting core's L1, returning the
// data source label. ra is the real address.
func (h *Hierarchy) Load(core int, ra uint64) DataSource {
	src := h.load(core, ra)
	if h.OnSource != nil {
		h.OnSource(ra, src)
	}
	return src
}

func (h *Hierarchy) load(core int, ra uint64) DataSource {
	chip := h.ChipOf(core)
	mcm := h.MCMOf(chip)
	line := h.lineOf(ra)

	if h.l2[chip].Lookup(ra) {
		h.noteSharer(line, chip)
		return SrcL2
	}

	// Remote L2s (cache-to-cache transfer).
	for c := 0; c < h.cfg.Chips; c++ {
		if c == chip || !h.l2[c].Probe(ra) {
			continue
		}
		st := h.dir[line]
		modified := st != nil && st.owner == int8(c)
		sameMCM := h.MCMOf(c) == mcm
		// The transfer downgrades a modified line to shared and installs a
		// copy in the requester's L2.
		if st != nil {
			st.owner = -1
		}
		h.installL2(chip, ra, line)
		switch {
		case sameMCM && modified:
			return SrcL25Mod
		case sameMCM:
			return SrcL25Shr
		case modified:
			return SrcL275Mod
		default:
			return SrcL275Shr
		}
	}

	// MCM-local L3.
	if h.l3[mcm].Lookup(ra) {
		h.installL2(chip, ra, line)
		return SrcL3
	}
	// Remote L3s.
	for m := 0; m < h.mcms; m++ {
		if m == mcm {
			continue
		}
		if h.l3[m].Probe(ra) {
			h.installL2(chip, ra, line)
			return SrcL35
		}
	}
	// Memory: fill L3 and L2 on the way in.
	h.insertL3(mcm, ra)
	h.installL2(chip, ra, line)
	return SrcMem
}

// Store services a store from core to real address ra: the line is brought
// to the owning chip's L2 in Modified state and all other copies are
// invalidated (the L1 is write-through/no-allocate, so every store reaches
// the L2 — the coherence point of the system).
// It reports whether the store missed the chip's L2.
func (h *Hierarchy) Store(core int, ra uint64) (l2Miss bool) {
	chip := h.ChipOf(core)
	if h.OnStore != nil {
		h.OnStore(ra, chip)
	}
	line := h.lineOf(ra)
	hit := h.l2[chip].Lookup(ra)
	if !hit {
		h.installL2(chip, ra, line)
	}
	st := h.dir[line]
	if st == nil {
		st = &lineState{owner: -1}
		h.dir[line] = st
	}
	// Invalidate every other chip's copy.
	for c := 0; c < h.cfg.Chips; c++ {
		if c == chip {
			continue
		}
		if st.sharers&(1<<uint(c)) != 0 {
			h.l2[c].Invalidate(ra)
			st.sharers &^= 1 << uint(c)
		}
	}
	st.sharers |= 1 << uint(chip)
	st.owner = int8(chip)
	h.noteRemoteStore(chip, line)
	return !hit
}

// FetchInst services an instruction fetch that missed the core's L1 I-cache
// and returns the level it was satisfied from, collapsed to the L2/L3/MEM
// buckets the instruction-source HPM events distinguish.
func (h *Hierarchy) FetchInst(core int, ra uint64) DataSource {
	src := h.Load(core, ra)
	switch src {
	case SrcL25Shr, SrcL25Mod, SrcL275Shr, SrcL275Mod:
		return SrcL2 // remote-L2 fills count as L2-class for the I-side events
	case SrcL35:
		return SrcL3
	default:
		return src
	}
}

// PrefetchFill installs a prefetched line into the chip's L2 (and L3 for
// deep prefetches) without demand-access accounting.
func (h *Hierarchy) PrefetchFill(core int, ra uint64, deep bool) {
	chip := h.ChipOf(core)
	h.installL2(chip, ra, h.lineOf(ra))
	if deep {
		h.insertL3(h.MCMOf(chip), ra)
	}
}

func (h *Hierarchy) noteSharer(line uint64, chip int) {
	if st := h.dir[line]; st != nil {
		st.sharers |= 1 << uint(chip)
	}
}

func (h *Hierarchy) installL2(chip int, ra, line uint64) {
	evicted, had := h.l2[chip].Insert(ra)
	st := h.dir[line]
	if st == nil {
		st = &lineState{owner: -1}
		h.dir[line] = st
	}
	st.sharers |= 1 << uint(chip)
	if had {
		h.onL2Evict(chip, evicted)
	}
}

// onL2Evict maintains the directory and spills the victim into the L3
// (victim-cache style, as on POWER4 where the L3 holds L2 castouts).
func (h *Hierarchy) onL2Evict(chip int, evictedAddr uint64) {
	line := h.lineOf(evictedAddr)
	if st, ok := h.dir[line]; ok {
		st.sharers &^= 1 << uint(chip)
		if st.owner == int8(chip) {
			st.owner = -1
		}
		if st.sharers == 0 {
			delete(h.dir, line)
		}
	}
	h.insertL3(h.MCMOf(chip), evictedAddr)
}

func (h *Hierarchy) insertL3(mcm int, ra uint64) {
	h.l3[mcm].Insert(ra)
}

// DirectorySize returns the number of tracked lines (bounded by total L2
// capacity; used by invariant tests).
func (h *Hierarchy) DirectorySize() int { return len(h.dir) }

// L2 exposes a chip's L2 cache for tests.
func (h *Hierarchy) L2(chip int) *Cache { return h.l2[chip] }

// L3 exposes an MCM's L3 cache for tests.
func (h *Hierarchy) L3(mcm int) *Cache { return h.l3[mcm] }
