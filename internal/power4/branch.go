package power4

import "fmt"

// BranchPredictorConfig sizes the prediction structures. POWER4 combines a
// local and a global (gshare-like) predictor with a selector; we model the
// gshare component, which dominates behaviour for large code footprints,
// plus the target address predictor ("count cache") for indirect branches.
type BranchPredictorConfig struct {
	BHTEntries  int  // 2-bit counter table entries (power of two)
	HistoryBits uint // global history length
	BTBEntries  int  // indirect target table entries (power of two)
}

// DefaultBranchConfig follows POWER4's 16K-entry tables.
func DefaultBranchConfig() BranchPredictorConfig {
	return BranchPredictorConfig{BHTEntries: 16384, HistoryBits: 11, BTBEntries: 8192}
}

// CondPredictor is a gshare conditional branch direction predictor.
type CondPredictor struct {
	counters []uint8 // 2-bit saturating
	mask     uint64
	history  uint64
	histMask uint64
}

// NewCondPredictor builds the direction predictor.
func NewCondPredictor(cfg BranchPredictorConfig) (*CondPredictor, error) {
	if cfg.BHTEntries <= 0 || cfg.BHTEntries&(cfg.BHTEntries-1) != 0 {
		return nil, fmt.Errorf("power4: BHT entries %d not a power of two", cfg.BHTEntries)
	}
	p := &CondPredictor{
		counters: make([]uint8, cfg.BHTEntries),
		mask:     uint64(cfg.BHTEntries - 1),
		histMask: (1 << cfg.HistoryBits) - 1,
	}
	// Weakly taken initial state.
	for i := range p.counters {
		p.counters[i] = 2
	}
	return p, nil
}

// Predict consumes one conditional branch outcome and reports whether the
// prediction was correct; tables and history are updated.
func (p *CondPredictor) Predict(pc uint64, taken bool) bool {
	idx := ((pc >> 2) ^ (pc >> 13) ^ p.history) & p.mask
	pred := p.counters[idx] >= 2
	if taken {
		if p.counters[idx] < 3 {
			p.counters[idx]++
		}
	} else if p.counters[idx] > 0 {
		p.counters[idx]--
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMask
	return pred == taken
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TargetPredictor predicts indirect branch targets (virtual method calls,
// returns, switch tables) with a direct-mapped tagged target table — the
// POWER4 "count cache" analog the paper's target-address-misprediction
// event observes.
type TargetPredictor struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

// NewTargetPredictor builds the target table.
func NewTargetPredictor(cfg BranchPredictorConfig) (*TargetPredictor, error) {
	if cfg.BTBEntries <= 0 || cfg.BTBEntries&(cfg.BTBEntries-1) != 0 {
		return nil, fmt.Errorf("power4: BTB entries %d not a power of two", cfg.BTBEntries)
	}
	return &TargetPredictor{
		tags:    make([]uint64, cfg.BTBEntries),
		targets: make([]uint64, cfg.BTBEntries),
		mask:    uint64(cfg.BTBEntries - 1),
	}, nil
}

// Predict consumes one indirect branch (site pc, actual target) and reports
// whether the predicted target matched; the table learns the new target.
// A cold or aliased entry counts as a misprediction, which is exactly how a
// large instruction working set inflates target mispredictions (Section
// 4.2.1: "a large instruction working set may contain more branches than
// the prediction hardware can maintain").
func (p *TargetPredictor) Predict(pc, target uint64) bool {
	idx := ((pc >> 2) ^ (pc >> 11) ^ (pc >> 19)) & p.mask
	hit := p.tags[idx] == pc && p.targets[idx] == target
	p.tags[idx] = pc
	p.targets[idx] = target
	return hit
}
