package power4

// Prefetcher models the POWER4 hardware sequential prefetcher: eight
// streams, allocated when consecutive cache-line misses show an ascending
// sequential pattern, each ramping up to prefetch several lines ahead into
// L1 and deeper lines into L2.
//
// The paper leans on this structure for the correlation analysis: "more
// prefetching requests are generated and new prefetching streams are
// allocated as a result of a sequence of L1 misses (a burst of misses)",
// which is why stream allocations correlate with CPI even though isolated
// L1 misses do not.
type Prefetcher struct {
	streams   [8]pstream
	tick      uint64
	lastMiss  [4]uint64 // recent miss lines, for stream detection
	lastValid [4]bool
	lmPtr     int

	// Counters accumulated since the last Take call.
	l1Prefetches uint64
	l2Prefetches uint64
	allocs       uint64
}

type pstream struct {
	valid bool
	next  uint64 // next expected line number
	depth int    // ramp: how many lines ahead are being prefetched
	used  uint64 // LRU tick
}

// PrefetchResult reports what the prefetcher did for one access.
type PrefetchResult struct {
	Covered      bool // the line was already being prefetched (miss largely hidden)
	L1Prefetches int  // new prefetches issued toward L1
	L2Prefetches int  // new prefetches issued toward L2
	Allocated    bool // a new stream was allocated
}

const maxRampDepth = 5

// OnAccess informs the prefetcher of a demand access to the given cache
// line number; miss says whether it missed L1D. Returns what the prefetcher
// did in response.
func (p *Prefetcher) OnAccess(line uint64, miss bool) PrefetchResult {
	p.tick++
	var res PrefetchResult

	// Does the access continue an existing stream?
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		if line == s.next || line == s.next-1 {
			// Advance the stream and issue the next prefetches.
			if line == s.next {
				s.next++
			}
			s.used = p.tick
			if s.depth < maxRampDepth {
				s.depth++
			}
			// One line toward L1, deeper lines toward L2 as the ramp grows.
			res.Covered = true
			res.L1Prefetches = 1
			res.L2Prefetches = s.depth / 2
			p.l1Prefetches += uint64(res.L1Prefetches)
			p.l2Prefetches += uint64(res.L2Prefetches)
			return res
		}
	}

	if !miss {
		return res
	}

	// A miss: does it extend a recent miss sequentially (line-1 seen)?
	sequential := false
	for i, v := range p.lastValid {
		if v && p.lastMiss[i]+1 == line {
			sequential = true
			break
		}
	}
	p.lastMiss[p.lmPtr] = line
	p.lastValid[p.lmPtr] = true
	p.lmPtr = (p.lmPtr + 1) % len(p.lastMiss)

	if !sequential {
		return res
	}

	// Allocate a stream (LRU replacement among the 8).
	victim := 0
	oldest := ^uint64(0)
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			oldest = 0
			break
		}
		if p.streams[i].used < oldest {
			oldest = p.streams[i].used
			victim = i
		}
	}
	p.streams[victim] = pstream{valid: true, next: line + 1, depth: 1, used: p.tick}
	p.allocs++
	res.Allocated = true
	res.L1Prefetches = 1
	res.L2Prefetches = 1
	p.l1Prefetches++
	p.l2Prefetches++
	return res
}

// ActiveStreams returns how many streams are currently valid.
func (p *Prefetcher) ActiveStreams() int {
	n := 0
	for i := range p.streams {
		if p.streams[i].valid {
			n++
		}
	}
	return n
}

// Take returns and clears the accumulated prefetch counters.
func (p *Prefetcher) Take() (l1, l2, allocs uint64) {
	l1, l2, allocs = p.l1Prefetches, p.l2Prefetches, p.allocs
	p.l1Prefetches, p.l2Prefetches, p.allocs = 0, 0, 0
	return
}
