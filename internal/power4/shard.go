package power4

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"jasworkload/internal/isa"
)

// This file shards the detail window across simulated cores: each core's
// slice of the interleaved instruction stream runs on its own worker
// goroutine, and the coherence traffic — directory lookups, invalidations,
// LARX/STCX reservation arbitration — is emitted as events into per-shard
// queues and resolved by one deterministic merge goroutine:
//
//	                  ┌─ worker 0 (cores 0,S,2S…: branch + core-local memory) ─┐
//	producer ─ demux ─┼─ worker 1 (cores 1,S+1,…)                              ┼─ merge ─ demux ─ accountants
//	     │            └─ worker S-1 …                                          ┘    ▲
//	     └────────────────────── order ring (global feed sequence) ─────────────────┘
//
// Why the result is bit-identical to the fused loop at any shard count,
// queue depth, or GOMAXPROCS:
//
//  1. Core-private state (L1s, MMU/ERATs, predictors, prefetcher,
//     translation memo, fast-path registers, the LARX reservation
//     register) evolves independently of every Hierarchy call's RESULT:
//     Load/FetchInst return a DataSource consumed only by cycle/counter
//     accounting, Store's result is unused, and ReservationLost only
//     decides the aStcxOK annotation. So each core's model half can run
//     ahead on its own goroutine, recording which Hierarchy calls it
//     would have made — with their operands, which depend only on
//     core-private state — without knowing their answers.
//  2. Shared state (L2s, L3s, the coherence directory, the reservation
//     ledger) is mutated only by the merge goroutine, which applies the
//     recorded events through the unchanged Hierarchy methods in the
//     exact global order the fused loop would have: the producer stamps
//     every batch with its position in the feed sequence (the order
//     ring), and the merge consumes batches in that sequence. The feed
//     sequence is the engine's serialization of (cycle, coreID, seq) —
//     requests are emitted one core at a time in simulated-time order —
//     so the merge's total order is the fused loop's total order.
//  3. Results are back-annotated into the batch (load/fetch sources,
//     STCX success), and the accounting stage replays the fused loop's
//     exact charge sequence per core from those annotations, reusing the
//     pipeline's acctState/stageAccount machinery verbatim.
//
// Queues only reorder WHEN work executes, never WHAT it computes, so the
// counters are bit-equal by construction; TestShardedEquivalence sweeps
// shard counts and queue depths against the fused reference to enforce
// it.

// cohEvent is one recorded Hierarchy call: the kind, the real-address
// operand, and the index of the instruction annotation that receives the
// call's result (evStore and the prefetch fills have no result; their idx
// is unused).
type cohEvent struct {
	ra   uint64
	idx  int32
	kind uint8
}

// Coherence event kinds, in the vocabulary of the Hierarchy methods the
// merge applies.
const (
	evFetch    uint8 = iota // FetchInst(ra) -> collapsed I-source annotation
	evLoad                  // Load(ra) -> DataSource annotation
	evStore                 // Store(ra), result unused
	evPrefNear              // PrefetchFill(ra, deep=false)
	evPrefDeep              // PrefetchFill(ra, deep=true)
	evResv                  // ReservationLost(line) -> aStcxOK annotation
)

// shardBatch is the unit of work flowing through the shard group: a
// pooled, core-tagged annotated batch plus the coherence events its
// core-local stage recorded. A batch with a non-nil drain channel is a
// barrier marker.
type shardBatch struct {
	isa.Annotated[annot]
	ev    []cohEvent
	drain chan struct{}
}

// ShardConfig sizes the core-sharded detail group.
type ShardConfig struct {
	// Shards is the number of worker goroutines (simulated cores are
	// assigned round-robin). 0 selects automatically: one worker per
	// simulated core up to GOMAXPROCS, collapsing to the fused loop on
	// single-CPU hosts where sharding could only add overhead. Values
	// above the core count are clamped — a shard with no cores would
	// never receive work.
	Shards int
	// BatchCap is the number of instructions per batch (default
	// isa.DefaultBatchCap).
	BatchCap int
	// Depth is the queue capacity in batches on every producer→worker,
	// worker→merge, and merge→accountant link (default
	// DefaultShardDepth). Results are bit-identical at any depth; only
	// the slack between stages changes.
	Depth int
}

// DefaultShardDepth is the default per-link queue depth in batches. It is
// deeper than the stage pipeline's ring depth because the merge consumes
// worker queues in global feed order: slack on the not-next queues is
// what lets the other workers keep running while the merge waits for the
// ordered head, so shallow queues convert ordinary skew straight into
// merge stalls.
const DefaultShardDepth = 8

// shardStatSlots bounds the per-shard-index merge-stall counters exported
// process-wide (shard indices are folded into the slots).
const shardStatSlots = 32

var globalMergeStalls [shardStatSlots]atomic.Uint64

// ShardMergeStalls reports, per shard index, how many times any shard
// group's merge goroutine had to wait on that shard's worker queue for
// the next batch in global order (cumulative, process-wide). A hot slot
// names the worker that runs behind the merge front — the signal for
// retuning queue depths or shard counts.
func ShardMergeStalls() []uint64 {
	out := make([]uint64, shardStatSlots)
	for i := range out {
		out[i] = globalMergeStalls[i].Load()
	}
	return out
}

// AutoShards reports the shard count the auto mode would pick for a
// system with the given core count: one worker per simulated core, capped
// at GOMAXPROCS, and 0 — collapse to the fused loop — when the host has
// no parallelism to shard onto.
func AutoShards(cores int) int {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 || cores < 1 {
		return 0
	}
	if cores < p {
		return cores
	}
	return p
}

// ShardGroup runs the detail model for a set of cores over a shared
// Hierarchy, sharded across per-core worker goroutines with a
// deterministic coherence merge. Feed instructions through the per-core
// sinks from Sink; call Drain to publish counters at a consistent point;
// Close stops the goroutines. Like the stage pipeline, the group is the
// sole consumer of its cores while attached.
type ShardGroup struct {
	cores []*Core
	hier  *Hierarchy
	cfg   ShardConfig

	shards int
	in     []*isa.Ring[*shardBatch] // producer -> worker w
	mid    []*isa.Ring[*shardBatch] // worker w -> merge
	acctIn []*isa.Ring[*shardBatch] // merge -> accountant w
	order  *isa.Ring[int]           // global feed sequence: which worker's batch is next
	free   *isa.Pool[*shardBatch]
	acct   []acctState
	sinks  []shardSink
	cur    *shardBatch
	stalls []uint64 // written by the merge goroutine only; read after Drain/Close
	wg     sync.WaitGroup

	direct bool // collapsed onto the fused loop (no host parallelism)
	closed bool
}

// NewShardGroup starts the shard workers, merge, and accountants for
// cores over hier. The cores' current counter state is carried in, so
// attaching mid-run continues from their totals.
func NewShardGroup(cores []*Core, hier *Hierarchy, cfg ShardConfig) (*ShardGroup, error) {
	if len(cores) == 0 || hier == nil {
		return nil, fmt.Errorf("power4: shard group needs cores and a hierarchy")
	}
	if cfg.BatchCap <= 0 {
		cfg.BatchCap = isa.DefaultBatchCap
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultShardDepth
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = AutoShards(len(cores))
	}
	if shards > len(cores) {
		shards = len(cores)
	}
	g := &ShardGroup{
		cores:  cores,
		hier:   hier,
		cfg:    cfg,
		shards: shards,
		acct:   make([]acctState, len(cores)),
		sinks:  make([]shardSink, len(cores)),
		direct: shards <= 0,
	}
	for i := range cores {
		g.sinks[i] = shardSink{g: g, core: i}
	}
	if g.direct {
		// All model state stays on the cores; the sinks dispatch straight
		// into the fused loop.
		return g, nil
	}
	for i := range cores {
		g.acct[i].loadFrom(cores[i])
	}
	g.in = make([]*isa.Ring[*shardBatch], shards)
	g.mid = make([]*isa.Ring[*shardBatch], shards)
	g.acctIn = make([]*isa.Ring[*shardBatch], shards)
	g.stalls = make([]uint64, shards)
	for w := 0; w < shards; w++ {
		g.in[w] = isa.NewRing[*shardBatch](cfg.Depth)
		g.mid[w] = isa.NewRing[*shardBatch](cfg.Depth)
		g.acctIn[w] = isa.NewRing[*shardBatch](cfg.Depth)
	}
	// The order ring must never fill while a worker queue can still
	// accept: the producer enqueues the order token and the batch as one
	// logical step, so give the order ring room for every batch slot that
	// can exist plus the per-Drain markers.
	slots := 1 + shards*(3*cfg.Depth+2) + 1
	g.order = isa.NewRing[int](slots + shards)
	g.free = isa.NewPool(slots, func() *shardBatch {
		return &shardBatch{
			Annotated: isa.Annotated[annot]{
				Ins: make([]isa.Instr, 0, cfg.BatchCap),
				Ann: make([]annot, 0, cfg.BatchCap),
			},
			ev: make([]cohEvent, 0, cfg.BatchCap/4+8),
		}
	})
	g.wg.Add(2*shards + 1)
	for w := 0; w < shards; w++ {
		go g.worker(w)
		go g.accountant(w)
	}
	go g.merge()
	return g, nil
}

// Sink returns the stream entry point for one core; it implements
// isa.Sink, isa.BatchSink and CoreID, and is stable across calls.
func (g *ShardGroup) Sink(core int) isa.BatchSink { return &g.sinks[core] }

// Mode reports the schedule the group selected: "sharded" (per-core
// workers with the coherence merge) or "direct" (collapsed onto the fused
// loop because the host has no CPU to shard onto).
func (g *ShardGroup) Mode() string {
	if g.direct {
		return "direct"
	}
	return "sharded"
}

// Shards reports the number of worker goroutines (0 in direct mode).
func (g *ShardGroup) Shards() int { return g.shards }

// MergeStalls returns this group's per-shard merge-stall counts: how many
// times the merge had to wait on shard w for the next batch in global
// order. Valid after a Drain or Close barrier.
func (g *ShardGroup) MergeStalls() []uint64 {
	out := make([]uint64, len(g.stalls))
	copy(out, g.stalls)
	return out
}

// shardSink is the per-core front end.
type shardSink struct {
	g    *ShardGroup
	core int
}

// CoreID reports the core this sink feeds (emitter affinity).
func (s *shardSink) CoreID() int { return s.core }

// Consume implements isa.Sink.
func (s *shardSink) Consume(ins *isa.Instr) { s.g.feedOne(s.core, ins) }

// ConsumeBatch implements isa.BatchSink.
func (s *shardSink) ConsumeBatch(b isa.Batch) { s.g.feed(s.core, b) }

// fill returns the current producer batch for core, sealing first when
// the stream switched cores (batches are single-core runs).
func (g *ShardGroup) fill(core int) *shardBatch {
	if g.cur != nil && g.cur.Core != core {
		g.seal()
	}
	if g.cur == nil {
		sb := g.free.Get()
		sb.Core = core
		g.cur = sb
	}
	return g.cur
}

// feed delivers a caller batch, copying it into pooled batches (the
// caller reuses its backing array, so the copy is mandatory).
func (g *ShardGroup) feed(core int, b isa.Batch) {
	if g.direct {
		g.cores[core].ConsumeBatch(b)
		return
	}
	for len(b) > 0 {
		sb := g.fill(core)
		room := g.cfg.BatchCap - len(sb.Ins)
		if room > len(b) {
			room = len(b)
		}
		sb.Ins = append(sb.Ins, b[:room]...)
		b = b[room:]
		if len(sb.Ins) >= g.cfg.BatchCap {
			g.seal()
		}
	}
}

func (g *ShardGroup) feedOne(core int, ins *isa.Instr) {
	if g.direct {
		g.cores[core].Consume(ins)
		return
	}
	sb := g.fill(core)
	sb.Ins = append(sb.Ins, *ins)
	if len(sb.Ins) >= g.cfg.BatchCap {
		g.seal()
	}
}

// seal stamps the current batch into the global feed sequence and hands
// it to its core's worker. The order token and the batch are enqueued
// together: the order ring tells the merge WHICH worker's queue holds the
// next batch in global order, and the per-worker FIFO guarantees it is
// THIS batch.
func (g *ShardGroup) seal() {
	sb := g.cur
	g.cur = nil
	if sb == nil {
		return
	}
	if len(sb.Ins) == 0 {
		g.free.Put(sb)
		return
	}
	sb.SyncAnn()
	w := sb.Core % g.shards
	g.order.Send(w)
	g.in[w].Send(sb)
}

// Drain is the window barrier: it seals the partial batch, pushes one
// marker through every worker→merge→accountant path, and returns once
// every accountant has published its cores' counters and fractional
// accumulators back onto the Core structs. The happens-before chain
// through the markers also makes all worker-side state (unmapped counts,
// cache contents) and all merge-side state (directory, stall counts)
// visible to the caller.
func (g *ShardGroup) Drain() {
	if g.direct {
		return // counters already live on the cores
	}
	g.seal()
	done := make(chan struct{}, g.shards)
	for w := 0; w < g.shards; w++ {
		m := &shardBatch{drain: done}
		m.Core = w // routes the marker to accountant w
		g.order.Send(w)
		g.in[w].Send(m)
	}
	for i := 0; i < g.shards; i++ {
		<-done
	}
}

// Close drains the group and stops every goroutine. The sinks must not
// be fed after Close.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	g.Drain()
	if g.direct {
		return
	}
	for _, r := range g.in {
		r.Close()
	}
	g.order.Close()
	g.wg.Wait()
}

// worker runs the core-local half of the model — branch predictors plus
// the translation/cache stage with Hierarchy calls deferred as events —
// for every core assigned to shard w, in that shard's feed order.
func (g *ShardGroup) worker(w int) {
	defer g.wg.Done()
	for {
		sb, ok := g.in[w].Recv()
		if !ok {
			g.mid[w].Close()
			return
		}
		if sb.drain == nil {
			c := g.cores[sb.Core]
			c.stageBranch(sb.Ins, sb.Ann)
			c.stageMemoryShard(sb.Ins, sb.Ann, &sb.ev)
		}
		g.mid[w].Send(sb)
	}
}

// merge consumes batches in the global feed sequence, applying each
// batch's coherence events through the unchanged Hierarchy methods and
// back-annotating their results. It is the only goroutine that touches
// shared coherence state, so the directory evolves exactly as under the
// fused loop.
func (g *ShardGroup) merge() {
	defer g.wg.Done()
	for {
		w, ok := g.order.Recv()
		if !ok {
			for _, r := range g.acctIn {
				r.Close()
			}
			return
		}
		sb, ok := g.mid[w].TryRecv()
		if !ok {
			// The ordered head isn't ready: shard w runs behind the merge
			// front. Count the stall, then wait for it.
			g.stalls[w]++
			globalMergeStalls[w%shardStatSlots].Add(1)
			if sb, ok = g.mid[w].Recv(); !ok {
				for _, r := range g.acctIn {
					r.Close()
				}
				return
			}
		}
		if sb.drain == nil {
			g.apply(sb)
		}
		g.acctIn[sb.Core%g.shards].Send(sb)
	}
}

// apply replays one batch's coherence events against the Hierarchy in
// recorded order, writing results into the annotations the accounting
// stage reads.
func (g *ShardGroup) apply(sb *shardBatch) {
	core := sb.Core
	for _, e := range sb.ev {
		switch e.kind {
		case evFetch:
			var f uint32
			switch g.hier.FetchInst(core, e.ra) {
			case SrcL2:
				f = iSrcL2 << iSrcShift
			case SrcL3:
				f = iSrcL3 << iSrcShift
			default:
				f = iSrcMem << iSrcShift
			}
			sb.Ann[e.idx].flags |= f
		case evLoad:
			sb.Ann[e.idx].flags |= uint32(g.hier.Load(core, e.ra)) << dSrcShift
		case evStore:
			g.hier.Store(core, e.ra)
		case evPrefNear:
			g.hier.PrefetchFill(core, e.ra, false)
		case evPrefDeep:
			g.hier.PrefetchFill(core, e.ra, true)
		case evResv:
			if !g.hier.ReservationLost(core, e.ra) {
				sb.Ann[e.idx].flags |= aStcxOK
			}
		}
	}
}

// accountant replays the fused loop's cycle accounting for every core
// assigned to shard w, from the merged annotations, in feed order.
// Markers publish the accounting state back onto the cores.
func (g *ShardGroup) accountant(w int) {
	defer g.wg.Done()
	for {
		sb, ok := g.acctIn[w].Recv()
		if !ok {
			return
		}
		if sb.drain != nil {
			for c := w; c < len(g.cores); c += g.shards {
				g.acct[c].storeTo(g.cores[c])
			}
			sb.drain <- struct{}{}
			continue
		}
		g.cores[sb.Core].stageAccount(sb.Ins, sb.Ann, &g.acct[sb.Core])
		sb.Reset()
		sb.ev = sb.ev[:0]
		g.free.Put(sb)
	}
}

// stageMemoryShard is stageMemory with the Hierarchy calls deferred:
// every core-private structure is touched in the fused loop's order, and
// every shared-state call is recorded — with operands computed from
// core-private state only — for the merge to apply in global order.
func (c *Core) stageMemoryShard(ins []isa.Instr, ann []annot, ev *[]cohEvent) {
	for i := range ins {
		in := &ins[i]
		an := &ann[i]
		if c.fastI && !c.noFast && in.PC>>7 == c.lastIPC>>7 {
			an.flags |= aFastI
			c.lastIPC = in.PC
		} else {
			c.shardFetch(i, in, an, ev)
		}
		switch in.Class {
		case isa.ClassLoad:
			c.shardLoad(i, in, an, ev)
		case isa.ClassStore:
			c.shardStore(in, an, ev)
		case isa.ClassLarx:
			c.shardLoad(i, in, an, ev)
			c.reservation = in.EA >> 7
			c.hasResv = true
		case isa.ClassStcx:
			if c.hasResv && c.reservation == in.EA>>7 {
				if tr, mapped := c.translate(in.EA); mapped {
					// Whether another chip's store broke the reservation is
					// the merge's call — it owns the ledger.
					*ev = append(*ev, cohEvent{ra: tr.RA >> 7, idx: int32(i), kind: evResv})
				} else {
					an.flags |= aStcxOK
				}
			}
			c.hasResv = false
			c.shardStore(in, an, ev)
		}
	}
}

// shardFetch is memFetch with FetchInst deferred.
func (c *Core) shardFetch(i int, in *isa.Instr, an *annot, ev *[]cohEvent) {
	tr, ok := c.translate(in.PC)
	if !ok {
		c.unmapped++
		c.fastI = false
		an.flags |= aUnmappedI
		return
	}
	c.fastI = true
	c.lastIPC = in.PC
	res := c.mmu.Inst(tr)
	if res.ERATMiss {
		an.flags |= aIERATMiss
	}
	if res.TLBMiss {
		an.flags |= aITLBMiss
	}
	if res.SLBMiss {
		an.flags |= aISLBMiss
	}
	line := tr.RA >> 7
	if c.l1i.Lookup(tr.RA) {
		an.flags |= aL1IHit
		c.lastILine = line
		return
	}
	if line == c.lastILine+1 {
		an.flags |= aIHideSeq
	}
	c.lastILine = line
	*ev = append(*ev, cohEvent{ra: tr.RA, idx: int32(i), kind: evFetch})
	c.l1i.Insert(tr.RA)
}

// shardLoad is memLoad with PrefetchFill and Load deferred.
func (c *Core) shardLoad(i int, in *isa.Instr, an *annot, ev *[]cohEvent) {
	if c.fastL && !c.noFast && in.EA>>7 == c.lastLEA>>7 && c.fastD && in.EA>>12 == c.lastDEA>>12 {
		an.flags |= aFastL
		c.sinceMiss++
		if c.sinceMiss > 12 {
			c.burst = 0
		}
		return
	}
	tr, ok := c.memTranslateData(in, an)
	if !ok {
		return
	}
	line := tr.RA >> 7
	if c.l1d.Lookup(tr.RA) {
		an.flags |= aL1DHit
		res := c.pref.OnAccess(line, false)
		if res.Covered {
			an.flags |= aCovered
			c.shardDrainPrefetch(tr.RA, an, ev)
			c.fastL = false
		} else {
			c.fastL = true
			c.lastLEA = in.EA
		}
		c.sinceMiss++
		if c.sinceMiss > 12 {
			c.burst = 0
		}
		return
	}
	c.fastL = false
	if c.sinceMiss <= 12 {
		c.burst++
	} else {
		c.burst = 1
	}
	c.sinceMiss = 0
	an.burst = uint32(c.burst)
	pres := c.pref.OnAccess(line, true)
	if pres.Allocated {
		an.flags |= aPrefAlloc
	}
	c.shardDrainPrefetch(tr.RA, an, ev)
	*ev = append(*ev, cohEvent{ra: tr.RA, idx: int32(i), kind: evLoad})
	c.l1d.Insert(tr.RA)
	if pres.Covered {
		an.flags |= aCovered
	}
}

// shardStore is memStore with Store deferred.
func (c *Core) shardStore(in *isa.Instr, an *annot, ev *[]cohEvent) {
	tr, ok := c.memTranslateData(in, an)
	if !ok {
		return
	}
	if c.l1d.Probe(tr.RA) {
		an.flags |= aStoreHit
	}
	*ev = append(*ev, cohEvent{ra: tr.RA, kind: evStore})
}

// shardDrainPrefetch is memDrainPrefetch with the L2-side fills deferred;
// the L1 fills are core-private and happen here, preserving their order
// relative to the L1 lookups around them.
func (c *Core) shardDrainPrefetch(ra uint64, an *annot, ev *[]cohEvent) {
	l1, l2, _ := c.pref.Take()
	an.prefL1, an.prefL2 = uint8(l1), uint8(l2)
	if l1 == 0 && l2 == 0 {
		return
	}
	for i := uint64(1); i <= l1; i++ {
		c.l1d.Insert(ra + i*128)
	}
	for i := uint64(1); i <= l2; i++ {
		kind := evPrefNear
		if i > 2 {
			kind = evPrefDeep
		}
		*ev = append(*ev, cohEvent{ra: ra + i*128, kind: kind})
	}
}
