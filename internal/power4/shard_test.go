package power4

import (
	"runtime"
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/mem"
)

// TestShardedEquivalence is the tentpole guarantee for the core-sharded
// schedule: a multi-core stream over a shared hierarchy produces
// bit-identical HPM counters whether it runs through the fused loop or
// per-core shard goroutines with the deterministic coherence merge — at
// every tested shard count and queue depth, including mid-stream drain
// barriers. Shard counts above the core count exercise the clamp; shard
// count 1 exercises the degenerate all-cores-on-one-worker schedule
// where the merge never reorders anything.
func TestShardedEquivalence(t *testing.T) {
	const nCores = 4
	layout, err := mem.NewLayout(mem.DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]isa.Instr, nCores)
	for c := range traces {
		traces[c] = synthTrace(layout, 60_000, int64(c+1))
	}
	order, chunks := interleave(traces, 777)

	// Fused reference: same global feed order.
	refCores, _, _ := freshSystem(t, nCores)
	for i, c := range order {
		refCores[c].ConsumeBatch(chunks[i])
	}
	want := make([]Counters, nCores)
	for i, c := range refCores {
		want[i] = c.Counters()
	}

	for _, shards := range []int{1, 2, 3, 8} {
		for _, depth := range []int{1, 7, 4096} {
			cores, hier, _ := freshSystem(t, nCores)
			g, err := NewShardGroup(cores, hier, ShardConfig{Shards: shards, Depth: depth})
			if err != nil {
				t.Fatal(err)
			}
			if g.Mode() != "sharded" {
				t.Fatalf("shards=%d depth=%d: mode %q, want sharded", shards, depth, g.Mode())
			}
			for i, c := range order {
				g.Sink(c).ConsumeBatch(chunks[i])
				// Periodic drain barriers (the engine drains once per
				// window): they must be invisible to the final counts.
				if i%97 == 0 {
					g.Drain()
				}
			}
			g.Close()
			for ci, c := range cores {
				got := c.Counters()
				for _, ev := range AllEvents() {
					if got.Get(ev) != want[ci].Get(ev) {
						t.Errorf("shards=%d depth=%d core %d: %v = %d, fused %d",
							shards, depth, ci, ev, got.Get(ev), want[ci].Get(ev))
					}
				}
				if c.UnmappedAccesses() != refCores[ci].UnmappedAccesses() {
					t.Errorf("shards=%d depth=%d core %d: unmapped = %d, fused %d",
						shards, depth, ci, c.UnmappedAccesses(), refCores[ci].UnmappedAccesses())
				}
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestShardedDrainBarrier: counters published at a Drain barrier must
// equal the fused loop's counters at the same stream position — the
// engine reads per-window CPI at exactly these points, and the CPI
// feedback loop makes any divergence compound into different scheduling.
func TestShardedDrainBarrier(t *testing.T) {
	cores, hier, layout := freshSystem(t, 2)
	refCores, _, _ := freshSystem(t, 2)
	traces := [][]isa.Instr{
		synthTrace(layout, 30_000, 11),
		synthTrace(layout, 30_000, 12),
	}
	order, chunks := interleave(traces, 500)

	g, err := NewShardGroup(cores, hier, ShardConfig{Shards: 2, BatchCap: 64, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i, c := range order {
		g.Sink(c).ConsumeBatch(chunks[i])
		refCores[c].ConsumeBatch(chunks[i])
		if i%23 != 0 {
			continue
		}
		g.Drain()
		for ci := range cores {
			got, ref := cores[ci].Counters(), refCores[ci].Counters()
			for _, ev := range AllEvents() {
				if got.Get(ev) != ref.Get(ev) {
					t.Fatalf("barrier after chunk %d, core %d: %v = %d, fused %d",
						i, ci, ev, got.Get(ev), ref.Get(ev))
				}
			}
		}
	}
}

// TestShardedConsume covers the per-instruction Sink path and the sink's
// core affinity.
func TestShardedConsume(t *testing.T) {
	cores, hier, layout := freshSystem(t, 2)
	refCores, _, _ := freshSystem(t, 2)
	trace := synthTrace(layout, 5_000, 99)

	g, err := NewShardGroup(cores, hier, ShardConfig{Shards: 2, BatchCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if id := g.Sink(c).(interface{ CoreID() int }).CoreID(); id != c {
			t.Fatalf("Sink(%d).CoreID() = %d", c, id)
		}
	}
	for i := range trace {
		c := i % 2
		g.Sink(c).Consume(&trace[i])
		refCores[c].Consume(&trace[i])
	}
	g.Close()
	for ci := range cores {
		got, ref := cores[ci].Counters(), refCores[ci].Counters()
		for _, ev := range AllEvents() {
			if got.Get(ev) != ref.Get(ev) {
				t.Fatalf("core %d: %v = %d, fused %d", ci, ev, got.Get(ev), ref.Get(ev))
			}
		}
	}
}

// TestShardedAutoCollapse: with GOMAXPROCS=1 the auto mode must select
// the direct (fused) schedule — sharding is never a pessimization on a
// host with nothing to overlap — and the direct group must still consume
// correctly through its sinks.
func TestShardedAutoCollapse(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	if n := AutoShards(4); n != 0 {
		t.Fatalf("AutoShards(4) at GOMAXPROCS=1 = %d, want 0", n)
	}
	cores, hier, layout := freshSystem(t, 2)
	g, err := NewShardGroup(cores, hier, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Mode() != "direct" || g.Shards() != 0 {
		t.Fatalf("mode %q shards %d, want direct/0", g.Mode(), g.Shards())
	}
	trace := synthTrace(layout, 1_000, 7)
	g.Sink(0).ConsumeBatch(trace)
	g.Drain()
	if cores[0].Counters().Get(EvInstCompleted) != uint64(len(trace)) {
		t.Fatal("direct-mode sink did not reach the core")
	}
}

// TestShardedAutoShards pins the auto-mode sizing rule on multi-CPU
// hosts: one worker per simulated core, capped at GOMAXPROCS.
func TestShardedAutoShards(t *testing.T) {
	prev := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(prev)
	if n := AutoShards(4); n != 3 {
		t.Fatalf("AutoShards(4) at GOMAXPROCS=3 = %d, want 3", n)
	}
	if n := AutoShards(2); n != 2 {
		t.Fatalf("AutoShards(2) at GOMAXPROCS=3 = %d, want 2", n)
	}
}

// TestShardedCloseIdempotent: Close twice must not panic or deadlock,
// and counters must remain published.
func TestShardedCloseIdempotent(t *testing.T) {
	cores, hier, layout := freshSystem(t, 2)
	g, err := NewShardGroup(cores, hier, ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace := synthTrace(layout, 2_000, 5)
	g.Sink(1).ConsumeBatch(trace)
	g.Close()
	g.Close()
	if cores[1].Counters().Get(EvInstCompleted) != uint64(len(trace)) {
		t.Fatal("counters not published after Close")
	}
}

// TestShardedMergeStalls: the per-group stall counters are sized to the
// shard count and the process-wide export mirrors their growth. A depth-1
// queue with work on both shards makes at least one merge stall
// overwhelmingly likely, but zero is legal — the assertion is on
// consistency, not on a scheduling race.
func TestShardedMergeStalls(t *testing.T) {
	cores, hier, layout := freshSystem(t, 2)
	before := ShardMergeStalls()
	g, err := NewShardGroup(cores, hier, ShardConfig{Shards: 2, BatchCap: 16, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	traces := [][]isa.Instr{
		synthTrace(layout, 20_000, 21),
		synthTrace(layout, 20_000, 22),
	}
	order, chunks := interleave(traces, 100)
	for i, c := range order {
		g.Sink(c).ConsumeBatch(chunks[i])
	}
	g.Close()
	stalls := g.MergeStalls()
	if len(stalls) != 2 {
		t.Fatalf("MergeStalls len = %d, want 2", len(stalls))
	}
	after := ShardMergeStalls()
	if len(after) != shardStatSlots {
		t.Fatalf("ShardMergeStalls len = %d, want %d", len(after), shardStatSlots)
	}
	for w := 0; w < 2; w++ {
		if after[w]-before[w] < stalls[w] {
			t.Fatalf("global stall slot %d grew by %d, group recorded %d",
				w, after[w]-before[w], stalls[w])
		}
	}
}
