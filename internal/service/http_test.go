package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/sim"
)

// e2eSpec is a reduced quick-scale run (10 simulated seconds of steady
// state) so the end-to-end tests pay for real simulations only once.
const e2eSpec = `{"scale":"quick","seed":7,"duration_ms":12000,"ramp_ms":2000}`

// TestE2EDeterminismGuard is the acceptance gate for the serving layer:
// eight concurrent clients submit the same config and block for the
// report. All eight must read byte-identical JSON bodies, and the whole
// episode must execute exactly one request-level and one detail
// simulation (plus the report's two cross-check variants).
func TestE2EDeterminismGuard(t *testing.T) {
	core.Flush()
	core.ResetSimCounts()
	s := New(Options{Workers: 4, QueueDepth: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const clients = 8
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/runs?wait=1", "application/json",
				strings.NewReader(e2eSpec))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("client %d: status %s", i, resp.Status)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs from client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var rep struct {
		ID    string `json:"id"`
		Rows  []any  `json:"rows"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(bodies[0], &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Total == 0 || len(rep.Rows) != rep.Total {
		t.Fatalf("report empty or inconsistent: %+v", rep)
	}

	sims := core.SimCounts()
	if sims["request-level"] != 1 || sims["detail"] != 1 {
		t.Fatalf("sim counts = %v, want exactly 1 request-level and 1 detail", sims)
	}

	// The /metrics surface must reflect the episode: dedup absorbed 7 of
	// the 8 submissions, one job completed, nothing rejected.
	metrics := fetch(t, srv.URL+"/metrics")
	for _, want := range []string{
		"jasd_dedup_hits_total 7",
		"jasd_jobs_total{state=\"done\"} 1",
		"jasd_jobs_total{state=\"rejected\"} 0",
		"jasd_queue_depth 0",
		"jasd_jobs_inflight 0",
		"jasd_sims_total{kind=\"request-level\"} 1",
		"jasd_sims_total{kind=\"detail\"} 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// Service-level dedup absorbs the duplicate submissions before they
	// reach the run store, so artifact-cache hits come from the pipeline's
	// own consumers (BuildReport re-resolving the shared artifact): the
	// counter must be nonzero but need not scale with client count.
	var hits uint64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "jasd_artifact_cache_hits_total") {
			fmt.Sscanf(line, "jasd_artifact_cache_hits_total %d", &hits)
		}
	}
	if hits == 0 {
		t.Fatal("artifact cache hits = 0, want nonzero")
	}

	// The markdown rendering is served verbatim too, and identically.
	id := rep.ID
	md1 := fetch(t, srv.URL+"/v1/runs/"+id+"/report?format=md")
	md2 := fetch(t, srv.URL+"/v1/runs/"+id+"/report?format=md")
	if md1 != md2 || !strings.HasPrefix(md1, "| ID | Artifact |") {
		t.Fatalf("markdown report unstable or malformed:\n%s", md1)
	}

	// Figures are served as JSON views of the same cached runs.
	var f2 struct {
		JOPS float64 `json:"JOPS"`
	}
	if err := json.Unmarshal([]byte(fetch(t, srv.URL+"/v1/runs/"+id+"/figures/fig2")), &f2); err != nil {
		t.Fatal(err)
	}
	if f2.JOPS <= 0 {
		t.Fatalf("fig2 JOPS = %v", f2.JOPS)
	}
	vmstat := fetch(t, srv.URL+"/v1/runs/"+id+"/figures/vmstat?format=md")
	if !strings.Contains(vmstat, "us  sy  id") {
		t.Fatalf("vmstat rendering malformed:\n%s", vmstat)
	}

	// The stream replays every window of the finished run: 12 windows per
	// fidelity (12 s at 1 s windows) plus the terminal status line.
	lines := streamLines(t, srv.URL+"/v1/runs/"+id+"/stream")
	perKind := map[string]int{}
	for _, ln := range lines[:len(lines)-1] {
		var ev struct {
			Kind   string `json:"kind"`
			Window struct {
				Index int `json:"Index"`
			} `json:"window"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", ln, err)
		}
		if ev.Window.Index != perKind[ev.Kind] {
			t.Fatalf("%s windows out of order: got %d, want %d", ev.Kind, ev.Window.Index, perKind[ev.Kind])
		}
		perKind[ev.Kind]++
	}
	if perKind["request-level"] != 12 || perKind["detail"] != 12 {
		t.Fatalf("streamed windows per kind = %v, want 12 each", perKind)
	}
	var fin struct {
		Done  bool  `json:"done"`
		State State `json:"state"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &fin); err != nil || !fin.Done || fin.State != StateDone {
		t.Fatalf("terminal stream line wrong: %q (err %v)", lines[len(lines)-1], err)
	}

	// The workload pack is part of the job identity. An explicit
	// default-pack spec coalesces onto the job above without running
	// anything new; the other shipped packs each get their own job and
	// their own pair of simulations, and their reports render end-to-end.
	submit := func(spec string) (string, bool) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/runs?wait=1", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit %s: status %s\n%s", spec, resp.Status, b)
		}
		var rep struct {
			ID    string `json:"id"`
			Total int    `json:"total"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep.ID, rep.Total > 0
	}
	withWorkload := func(name string) string {
		return fmt.Sprintf(`{"scale":"quick","seed":7,"duration_ms":12000,"ramp_ms":2000,"workload":%q}`, name)
	}
	if got, _ := submit(withWorkload("jas2004")); got != id {
		t.Fatalf("explicit jas2004 spec got job %s, want dedup onto %s", got, id)
	}
	if sims := core.SimCounts(); sims["request-level"] != 1 || sims["detail"] != 1 {
		t.Fatalf("explicit default-pack spec re-simulated: %v", sims)
	}
	ids := map[string]string{"jas2004": id}
	for _, pack := range []string{"dataanalytics", "virtweb"} {
		packID, nonEmpty := submit(withWorkload(pack))
		if !nonEmpty {
			t.Fatalf("%s report empty", pack)
		}
		for other, otherID := range ids {
			if packID == otherID {
				t.Fatalf("%s and %s share job ID %s", pack, other, packID)
			}
		}
		ids[pack] = packID
	}
	if sims := core.SimCounts(); sims["request-level"] != 3 || sims["detail"] != 3 {
		t.Fatalf("sim counts after 3 packs = %v, want 3 request-level and 3 detail", sims)
	}

	// The arrival spec is part of the job identity too: a burst-shaped
	// submission of the otherwise-identical base config gets its own job
	// and its own pair of simulations (distinct load shapes never
	// coalesce), while resubmitting the same shape — even spelled with
	// its defaults explicit — dedups onto the same job at zero extra
	// simulations. That is the per-distinct-spec sim budget: one
	// request-level + one detail per (config, load shape).
	burstSpec := `{"scale":"quick","seed":7,"duration_ms":12000,"ramp_ms":2000,` +
		`"arrival":{"version":1,"cohorts":[{"name":"surge","process":{"kind":"burst","on_ms":2000,"off_ms":1000,"factor":1.4}}]}}`
	burstID, nonEmpty := submit(burstSpec)
	if !nonEmpty {
		t.Fatal("burst-arrival report empty")
	}
	if burstID == id {
		t.Fatalf("burst arrival coalesced onto the steady job %s", id)
	}
	if sims := core.SimCounts(); sims["request-level"] != 4 || sims["detail"] != 4 {
		t.Fatalf("sim counts after burst arrival = %v, want 4 request-level and 4 detail", sims)
	}
	explicit := `{"scale":"quick","seed":7,"duration_ms":12000,"ramp_ms":2000,` +
		`"arrival":{"version":1,"cohorts":[{"name":"surge","seed_lane":1,"process":{"kind":"burst","on_ms":2000,"off_ms":1000,"factor":1.4}}]}}`
	if got, _ := submit(explicit); got != burstID {
		t.Fatalf("canonically-equal arrival spec got job %s, want dedup onto %s", got, burstID)
	}
	if sims := core.SimCounts(); sims["request-level"] != 4 || sims["detail"] != 4 {
		t.Fatalf("equal-shape respelling re-simulated: %v", sims)
	}
	var burstStatus struct {
		Arrival string `json:"arrival"`
	}
	if err := json.Unmarshal([]byte(fetch(t, srv.URL+"/v1/runs/"+burstID)), &burstStatus); err != nil {
		t.Fatal(err)
	}
	if burstStatus.Arrival != "1 cohort (burst)" {
		t.Fatalf("status arrival summary = %q, want %q", burstStatus.Arrival, "1 cohort (burst)")
	}
}

// TestSubmitStrictDecoding pins the strict JobSpec wire contract: unknown
// fields are a 400 with the offending name in the message, not a silently
// defaulted (and deduplicated) wrong experiment.
func TestSubmitStrictDecoding(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, body := range []string{
		`{"scale":"quick","sede":7}`,         // typo'd field
		`{"scale":"quick","workloads":"x"}`,  // near-miss plural
		`{"scale":"quick","detailfrac":0.5}`, // missing underscore
	} {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %s: status %s, want 400", body, resp.Status)
		}
		if !strings.Contains(string(b), "unknown field") {
			t.Fatalf("submit %s: error does not name the unknown field:\n%s", body, b)
		}
	}

	// An unregistered workload is rejected before anything is enqueued,
	// and the message lists what is available.
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"scale":"quick","workload":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown workload: status %s, want 400", resp.Status)
	}
	if !strings.Contains(string(b), "unknown workload") || !strings.Contains(string(b), "jas2004") {
		t.Fatalf("unknown-workload error unhelpful:\n%s", b)
	}
}

// TestSubmitArrivalValidation pins the 400 contract for arrival specs:
// malformed spec JSON, process parameters out of range, class names that
// don't exist in the selected pack, and traces too short for the run all
// fail at submit time — never as an enqueued job that dies later.
func TestSubmitArrivalValidation(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cases := []struct{ name, body, wantErr string }{
		{"malformed spec", `{"scale":"quick","arrival":{"version":1}}`, "cohorts or trace"},
		{"unknown spec field", `{"scale":"quick","arrival":{"version":1,"cohorts":[{"name":"a","typo":1}]}}`, "unknown field"},
		{"bad burst factor", `{"scale":"quick","arrival":{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":500,"off_ms":500,"factor":9}}]}}`, "mean-preserving"},
		{"unknown mix class", `{"scale":"quick","arrival":{"version":1,"cohorts":[{"name":"a","mix":{"Checkout":2}}]}}`, "unknown class"},
		{"trace class out of range", `{"scale":"quick","duration_ms":2000,"ramp_ms":1000,"arrival":{"version":1,"trace":{"window_ms":1000,"windows":[[[63,1]],[[0,2]]]}}}`, "out of range"},
		{"short trace", `{"scale":"quick","duration_ms":5000,"ramp_ms":1000,"arrival":{"version":1,"trace":{"window_ms":1000,"windows":[[],[]]}}}`, "needs 5"},
		{"wrong trace window size", `{"scale":"quick","duration_ms":2000,"ramp_ms":1000,"arrival":{"version":1,"trace":{"window_ms":500,"windows":[[],[],[],[]]}}}`, "1000 ms windows"},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %s, want 400\n%s", tc.name, resp.Status, b)
		}
		if !strings.Contains(string(b), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, b, tc.wantErr)
		}
	}
}

// TestWorkloadsEndpoint pins GET /v1/workloads against the registry.
func TestWorkloadsEndpoint(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var infos []WorkloadInfo
	if err := json.Unmarshal([]byte(fetch(t, srv.URL+"/v1/workloads")), &infos); err != nil {
		t.Fatal(err)
	}
	byName := map[string]WorkloadInfo{}
	for _, wi := range infos {
		byName[wi.Name] = wi
	}
	for _, want := range []string{"jas2004", "trade6", "dataanalytics", "virtweb"} {
		wi, ok := byName[want]
		if !ok {
			t.Fatalf("workload %q missing from listing: %+v", want, infos)
		}
		if wi.Description == "" || wi.Classes == 0 {
			t.Fatalf("workload %q listed without description/classes: %+v", want, wi)
		}
		if wi.Default != (want == "jas2004") {
			t.Fatalf("workload %q default flag wrong: %+v", want, wi)
		}
	}
}

// TestHTTPSubmitStatusLifecycle covers the non-blocking submit path.
func TestHTTPSubmitStatusLifecycle(t *testing.T) {
	s, started, release := blockingService(t, 1, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"scale":"quick","seed":901}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s, want 202", resp.Status)
	}
	loc := resp.Header.Get("Location")
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc != "/v1/runs/"+st.ID {
		t.Fatalf("Location %q does not match id %q", loc, st.ID)
	}
	waitStart(t, started)

	// Report before completion: 202 with status body.
	resp, err = http.Get(srv.URL + loc + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("early report status = %s, want 202", resp.Status)
	}
	close(release)

	// Blocking report now returns the body the runner rendered.
	if got := fetch(t, srv.URL+loc+"/report?wait=1"); got != "{}\n" {
		t.Fatalf("report body = %q", got)
	}
	if got := fetch(t, srv.URL+loc); !strings.Contains(got, `"state": "done"`) {
		t.Fatalf("status body = %s", got)
	}

	// Unknown job and unknown figure 404.
	for _, path := range []string{"/v1/runs/nope", "/v1/runs/" + st.ID + "/figures/fig99"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %s, want 404", path, resp.Status)
		}
	}
}

// TestE2ECancellationRace is the cancellation acceptance gate, on real
// simulations: eight clients share one deduplicated long run; seven
// cancel and the run keeps going, the eighth cancels and the run aborts
// mid-window — after which not a single further window executes.
func TestE2ECancellationRace(t *testing.T) {
	core.Flush()
	core.ResetSimCounts()
	s := New(Options{Workers: 4, QueueDepth: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// 600 simulated seconds: far more than the test will ever wait, so a
	// cancellation that fails to abort shows up as the timeout below, not
	// as a run that quietly finished first.
	const spec = `{"scale":"quick","seed":8,"duration_ms":600000,"ramp_ms":2000}`
	var id string
	for i := 0; i < 8; i++ {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID      string `json:"id"`
			Deduped bool   `json:"deduped"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 0 {
			id = st.ID
		} else if !st.Deduped || st.ID != id {
			t.Fatalf("submission %d not deduped onto %s: %+v", i, id, st)
		}
	}

	status := func() JobStatus {
		t.Helper()
		var st JobStatus
		if err := json.Unmarshal([]byte(fetch(t, srv.URL+"/v1/runs/"+id)), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	waitFor := func(what string, ok func(JobStatus) bool) JobStatus {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			st := status()
			if ok(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; status %+v", what, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	del := func() *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	waitFor("first window", func(st JobStatus) bool { return st.WindowsSoFar >= 1 })
	for i := 0; i < 7; i++ {
		if resp := del(); resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %d status = %s", i, resp.Status)
		}
	}
	if st := status(); st.State != StateRunning && st.State != StateQueued {
		t.Fatalf("job aborted with a subscriber still attached: %+v", st)
	}
	if resp := del(); resp.StatusCode != http.StatusOK {
		t.Fatalf("last cancel status = %s", resp.Status)
	}
	st := waitFor("cancellation", func(st JobStatus) bool { return st.State == StateCanceled })
	if st.WindowsSoFar >= 600 {
		t.Fatalf("run completed instead of aborting: %+v", st)
	}

	// Abort means abort: once terminal, the window count never moves again.
	frozen := st.WindowsSoFar
	time.Sleep(300 * time.Millisecond)
	if got := status().WindowsSoFar; got != frozen {
		t.Fatalf("windows kept executing after cancellation: %d -> %d", frozen, got)
	}

	// No partial report — the terminal state is the only output.
	resp, err := http.Get(srv.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report of canceled run = %s, want 409", resp.Status)
	}

	metrics := fetch(t, srv.URL+"/metrics")
	for _, want := range []string{
		"jasd_jobs_cancelled_total 1",
		"jasd_jobs_total{state=\"canceled\"} 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestHTTPStreamResume covers the reconnect path: ?from=N skips the
// already-seen prefix instead of replaying from event zero.
func TestHTTPStreamResume(t *testing.T) {
	s, started, release := blockingService(t, 1, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"scale":"quick","seed":921}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	j := waitStart(t, started)
	for i := 0; i < 3; i++ {
		j.hub.emit(WindowEvent{Kind: "request-level", Window: sim.WindowStats{Index: i}})
	}
	close(release)
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	lines := streamLines(t, srv.URL+"/v1/runs/"+j.ID+"/stream?from=2")
	if len(lines) != 2 {
		t.Fatalf("resumed stream = %d lines, want event 2 + terminal:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var ev struct {
		Window struct {
			Index int `json:"Index"`
		} `json:"window"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil || ev.Window.Index != 2 {
		t.Fatalf("resumed stream started at %d, want 2 (err %v)", ev.Window.Index, err)
	}

	resp, err = http.Get(srv.URL + "/v1/runs/" + j.ID + "/stream?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative from = %s, want 400", resp.Status)
	}
}

// TestHTTPEvictionGone covers retention over HTTP: once the done-ring TTL
// passes, the job's endpoints answer 410 Gone rather than 404.
func TestHTTPEvictionGone(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2, DoneTTL: time.Millisecond})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		return []byte("{}\n"), nil, nil
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp0, err := http.Post(srv.URL+"/v1/runs?wait=1", "application/json",
		strings.NewReader(`{"scale":"quick","seed":931}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if string(body) != "{}\n" {
		t.Fatalf("report body = %q", body)
	}
	var j *Job
	if jobs := s.Jobs(); len(jobs) == 1 {
		j = jobs[0]
	} else {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	time.Sleep(5 * time.Millisecond)
	for _, path := range []string{"", "/report", "/stream", "/figures/fig2"} {
		resp, err := http.Get(srv.URL + "/v1/runs/" + j.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("GET %s = %s, want 410", path, resp.Status)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("DELETE evicted = %s, want 410", resp.Status)
	}
}

// TestHTTPQueueFull429 verifies overflow surfaces as 429 + Retry-After.
func TestHTTPQueueFull429(t *testing.T) {
	s, started, release := blockingService(t, 1, 1)
	defer close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(seed int) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"scale":"quick","seed":%d}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	post(911)
	waitStart(t, started)
	post(912)
	resp := post(913)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(fetch(t, srv.URL+"/metrics"), "jasd_jobs_total{state=\"rejected\"} 1") {
		t.Fatal("rejection not counted")
	}
}

// TestHTTPPprofAndHealth pins the observability wiring.
func TestHTTPPprofAndHealth(t *testing.T) {
	s, _, release := blockingService(t, 1, 1)
	close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if got := fetch(t, srv.URL+"/healthz"); got != "ok\n" {
		t.Fatalf("healthz = %q", got)
	}
	if got := fetch(t, srv.URL+"/debug/pprof/cmdline"); len(got) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}

// fetch GETs url and returns the body, failing the test on non-200.
func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, b)
	}
	return string(b)
}

// streamLines reads an NDJSON stream to EOF.
func streamLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	return lines
}
