package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"jasworkload/internal/tools"
	"jasworkload/internal/workload"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs                    submit a JobSpec (?wait=1 blocks for the report)
//	GET    /v1/runs                    list jobs
//	GET    /v1/runs/{id}               job status
//	DELETE /v1/runs/{id}               release one submission reference; the
//	                                   last release aborts an unfinished run
//	GET  /v1/runs/{id}/report          finished report (?format=json|md, ?wait=1)
//	GET  /v1/runs/{id}/stream          live per-window NDJSON stream (?from=N resumes)
//	GET  /v1/runs/{id}/figures/{fig}   fig2..fig10, tprof, vmstat, locking,
//	                                   scalars, crosschecks, largepages
//	POST   /v1/sweeps                  submit a SweepSpec (base + axes grid)
//	GET    /v1/sweeps                  list sweeps
//	GET    /v1/sweeps/{id}             sweep status
//	DELETE /v1/sweeps/{id}             cancel a sweep, releasing its cells
//	GET  /v1/sweeps/{id}/stream        one NDJSON row per finished cell (?from=N resumes)
//	GET  /v1/sweeps/{id}/table         cross-cell comparison (markdown)
//	GET  /v1/workloads                 registered workload packs
//	GET  /metrics                      Prometheus text exposition
//	GET  /healthz                      liveness
//	     /debug/pprof/...              runtime profiling
//
// IDs of evicted jobs and sweeps answer 410 Gone until their tombstones
// age out.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/runs/{id}/figures/{fig}", s.handleFigure)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleSweepStream)
	mux.HandleFunc("GET /v1/sweeps/{id}/table", s.handleSweepTable)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.incHTTPRequests()
		mux.ServeHTTP(w, r)
	})
}

// writeJSON renders v with a trailing newline.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders an error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// boolParam interprets ?name=1|true.
func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	// Strict decoding: a misspelled field would otherwise silently take its
	// default and submit (and possibly dedup onto) the wrong experiment.
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JobSpec: %w", err))
		return
	}
	cfg, err := spec.RunConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, deduped, err := s.SubmitTimeout(cfg, time.Duration(spec.TimeoutS*float64(time.Second)))
	switch {
	case err == nil:
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+job.ID)
	if boolParam(r, "wait") {
		// A blocking submit's reference lives only as long as the request:
		// it is consumed when the response is written, or — if the client
		// disconnects mid-wait — released then, so abandoned waits cannot
		// pin a job forever (the last to go aborts the run).
		defer func() { s.release(job, time.Now()) }()
		s.serveReport(w, r, job, true)
		return
	}
	code := http.StatusAccepted
	if terminal(job.State()) {
		code = http.StatusOK
	}
	st := job.Status(time.Now())
	writeJSON(w, code, struct {
		JobStatus
		Deduped bool `json:"deduped"`
	}{st, deduped})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status(now)
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves {id}, or writes 410 for evicted jobs and 404 otherwise.
func (s *Service) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		if s.Evicted(id) {
			writeError(w, http.StatusGone, fmt.Errorf("job %q evicted; resubmit to re-run", id))
		} else {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		}
	}
	return j, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status(time.Now()))
	}
}

// handleCancel implements DELETE /v1/runs/{id}: release one submission
// reference, aborting the run if it was the last.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrGone):
		writeError(w, http.StatusGone, fmt.Errorf("job %q evicted", id))
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.serveReport(w, r, j, boolParam(r, "wait"))
}

// serveReport writes a job's finished report, optionally blocking for it.
// Bodies are rendered once at job completion and served verbatim, so all
// clients of one job read identical bytes.
func (s *Service) serveReport(w http.ResponseWriter, r *http.Request, j *Job, wait bool) {
	if wait {
		if err := j.Wait(r.Context()); err != nil && err == r.Context().Err() {
			return // client went away
		}
	}
	switch j.State() {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, j.Status(time.Now()))
		return
	case StateFailed:
		writeError(w, http.StatusInternalServerError, j.Err())
		return
	case StateCanceled:
		// Cancellation never yields a partial report: the run was aborted
		// mid-window, so the only honest answer is the terminal state.
		writeError(w, http.StatusConflict, j.Err())
		return
	}
	jsonBody, mdBody, _ := j.Report()
	if r.URL.Query().Get("format") == "md" {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		w.Write(mdBody)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(jsonBody)
}

// handleStream serves the live NDJSON window stream: replay of everything
// emitted so far, then new windows as the simulations produce them, then
// one terminal status line. ?from=N skips the first N events, so a client
// that lost its connection resumes where it left off instead of replaying
// the whole history.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := from; ; i++ {
		ev, ok := j.hub.next(r.Context(), i)
		if !ok {
			break
		}
		if enc.Encode(ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if r.Context().Err() != nil {
		return
	}
	st := j.Status(time.Now())
	enc.Encode(struct {
		Done  bool   `json:"done"`
		State State  `json:"state"`
		Error string `json:"error,omitempty"`
	}{true, st.State, st.Error})
}

func (s *Service) handleFigure(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if st := j.State(); st != StateDone {
		switch st {
		case StateFailed:
			writeError(w, http.StatusInternalServerError, j.Err())
		case StateCanceled:
			writeError(w, http.StatusConflict, j.Err())
		default:
			writeJSON(w, http.StatusAccepted, j.Status(time.Now()))
		}
		return
	}
	v, err := s.figure(j, r.PathValue("fig"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if f := r.URL.Query().Get("format"); f == "md" || f == "text" {
		str, ok := v.(fmt.Stringer)
		if !ok {
			writeError(w, http.StatusNotAcceptable, fmt.Errorf("figure has no text rendering"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, str.String())
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// stringView adapts a plain string rendering to the figure interface.
type stringView string

func (s stringView) String() string { return string(s) }

// figure materializes one named view over the job's finished artifact.
// Everything except scalars and largepages is a pure view of the two
// cached runs; those two lazily execute their extra variant simulations on
// first request and are then cached like the rest.
func (s *Service) figure(j *Job, name string) (any, error) {
	art := j.Art
	switch name {
	case "fig2", "fig3", "fig4", "tprof", "vmstat":
		rl, err := art.RequestLevel()
		if err != nil {
			return nil, err
		}
		switch name {
		case "fig2":
			return rl.Fig2(), nil
		case "fig3":
			return rl.Fig3(), nil
		case "fig4":
			return rl.Fig4(), nil
		case "tprof":
			return rl.Fig4().Report, nil
		default:
			return stringView(tools.VMStat(rl.Windows())), nil
		}
	case "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "locking":
		d, err := art.Detail()
		if err != nil {
			return nil, err
		}
		switch name {
		case "fig5":
			return d.Fig5()
		case "fig6":
			return d.Fig6()
		case "fig7":
			return d.Fig7()
		case "fig8":
			return d.Fig8()
		case "fig9":
			return d.Fig9()
		case "fig10":
			return d.Fig10()
		default:
			return d.Locking()
		}
	case "scalars":
		return art.Scalars()
	case "crosschecks":
		return art.CrossChecks()
	case "largepages":
		return art.LargePages()
	}
	return nil, fmt.Errorf("unknown figure %q", name)
}

func (s *Service) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	// Strict decoding, like /v1/runs: a misspelled axis or base field must
	// not silently sweep the wrong experiment.
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad SweepSpec: %w", err))
		return
	}
	base, err := spec.Base.RunConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := s.SubmitSweep(base, spec.Axes, time.Duration(spec.Base.TimeoutS*float64(time.Second)))
	switch {
	case err == nil:
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		// Everything else is a grid problem: unknown parameter, bad value,
		// over the cell cap.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID)
	writeJSON(w, http.StatusAccepted, sw.Status(time.Now()))
}

func (s *Service) handleSweepList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	sweeps := s.Sweeps()
	out := make([]SweepStatus, len(sweeps))
	for i, sw := range sweeps {
		out[i] = sw.Status(now)
	}
	writeJSON(w, http.StatusOK, out)
}

// sweep resolves {id}, or writes 410 for evicted sweeps and 404 otherwise.
func (s *Service) sweep(w http.ResponseWriter, r *http.Request) (*SweepJob, bool) {
	id := r.PathValue("id")
	sw, ok := s.Sweep(id)
	if !ok {
		if s.Evicted(id) {
			writeError(w, http.StatusGone, fmt.Errorf("sweep %q evicted; resubmit to re-run", id))
		} else {
			writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", id))
		}
	}
	return sw, ok
}

func (s *Service) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if sw, ok := s.sweep(w, r); ok {
		writeJSON(w, http.StatusOK, sw.Status(time.Now()))
	}
}

func (s *Service) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.CancelSweep(id)
	switch {
	case errors.Is(err, ErrGone):
		writeError(w, http.StatusGone, fmt.Errorf("sweep %q evicted", id))
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", id))
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// handleSweepStream serves one NDJSON row per finished cell — replay of
// rows already landed, then new rows in completion order, then one
// terminal status line. ?from=N resumes like the run stream.
func (s *Service) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweep(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := from; ; i++ {
		row, ok := sw.hub.next(r.Context(), i)
		if !ok {
			break
		}
		if enc.Encode(row) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if r.Context().Err() != nil {
		return
	}
	st := sw.Status(time.Now())
	enc.Encode(struct {
		Done  bool   `json:"done"`
		State State  `json:"state"`
		Error string `json:"error,omitempty"`
	}{true, st.State, st.Error})
}

func (s *Service) handleSweepTable(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweep(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	fmt.Fprint(w, sw.Table())
}

// WorkloadInfo is one entry of the GET /v1/workloads listing.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Classes     int    `json:"classes"`
	Default     bool   `json:"default"`
}

// ListWorkloads describes every registered workload pack, sorted by name.
// jasd's /v1/workloads endpoint and jasrun -list-workloads both render it,
// so the daemon and the CLI can never disagree about what is available.
func ListWorkloads() []WorkloadInfo {
	names := workload.Names()
	out := make([]WorkloadInfo, 0, len(names))
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			continue // unregistered between Names and Get: impossible today
		}
		out = append(out, WorkloadInfo{
			Name:        name,
			Description: w.Description(),
			Classes:     len(w.Classes()),
			Default:     name == workload.DefaultName,
		})
	}
	return out
}

func (s *Service) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListWorkloads())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	depth, capacity := s.QueueDepth()
	resident, residentSweeps, hubBytes := s.ResidentStats()
	s.metrics.WriteTo(w, depth, capacity, resident, residentSweeps, hubBytes)
}
