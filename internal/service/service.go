// Package service wraps the characterization pipeline in a concurrent
// serving layer: a bounded job queue with backpressure, run deduplication
// through the shared run-artifact store, live NDJSON streaming of
// per-window statistics, finished figures/tables over HTTP, and a
// Prometheus-text /metrics surface. cmd/jasd is the daemon, cmd/jasctl the
// client.
//
// The invariant the layer preserves end to end is the pipeline's own:
// submissions are coalesced by canonical RunConfig, so N concurrent
// clients asking for the same experiment cost exactly one simulation per
// fidelity and read byte-identical response bodies (the report is rendered
// once and served verbatim).
//
// Lifecycle and retention: every submission holds one reference on its
// job; DELETE /v1/runs/{id} releases one, and releasing the last reference
// of an unfinished job cancels its context, which aborts the simulations
// mid-window. Terminal jobs enter a TTL+capacity-bounded done-ring; until
// eviction their reports and stream history stay available, after which
// the job is forgotten (410 Gone) and its artifact and event history are
// freed. Cancellation never yields a partial report — the only outputs
// are a complete, deterministic report or an explicit canceled state.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/sim"
)

// Options configures the service.
type Options struct {
	// Workers is the number of jobs executing concurrently (default 2).
	// Each job internally fans its independent simulations out on the
	// core scheduler, so total simulation concurrency is bounded by
	// Workers x core.Parallelism().
	Workers int
	// QueueDepth is how many jobs may wait beyond those running before
	// submissions are rejected with ErrQueueFull (default 8).
	QueueDepth int
	// RetryAfter is the backoff hint attached to queue-full rejections
	// (default 5s).
	RetryAfter time.Duration
	// JobTimeout bounds each run's execution time (measured from run
	// start, not submission). Zero means no deadline. A JobSpec's
	// timeout_s overrides it per job.
	JobTimeout time.Duration
	// DoneTTL is how long terminal jobs stay resident — report bytes,
	// figures, and stream history remain served — before eviction
	// (default 15m).
	DoneTTL time.Duration
	// DoneCap bounds how many terminal jobs stay resident regardless of
	// age; the oldest are evicted first (default 256).
	DoneCap int
	// MaxSweepCells caps the pre-dedup grid size a POST /v1/sweeps may
	// expand to (default 64). Larger grids are rejected with 400.
	MaxSweepCells int
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 8
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 5 * time.Second
	}
	if o.DoneTTL <= 0 {
		o.DoneTTL = 15 * time.Minute
	}
	if o.DoneCap < 1 {
		o.DoneCap = 256
	}
	if o.MaxSweepCells < 1 {
		o.MaxSweepCells = 64
	}
	return o
}

// Sentinel errors surfaced as HTTP status codes by the handler layer.
var (
	// ErrQueueFull rejects a submission when the wait queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects submissions during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("service: shutting down")
	// ErrUnknownJob reports an ID that was never seen (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrGone reports an ID whose job was evicted from the done-ring
	// (HTTP 410): the report existed but has been retired.
	ErrGone = errors.New("service: job evicted")
	// errDropped fails queued jobs that shutdown could not start.
	errDropped = errors.New("service: dropped by shutdown before starting")
)

// doneEntry is one slot of the done-ring: a terminal job and when it
// became terminal. Entries hold the job pointer, not the ID, because a
// canceled config may be resubmitted under the same deterministic ID
// while its predecessor still awaits eviction.
type doneEntry struct {
	j  *Job
	at time.Time
}

// Service owns the job store, the wait queue, and the worker pool.
type Service struct {
	opts    Options
	metrics *Metrics

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	byKey    map[core.RunConfig]*Job // canonical config -> job (dedup)
	byID     map[string]*Job
	order    []*Job      // jobs in submission order (for listing)
	doneRing []doneEntry // terminal jobs awaiting TTL/capacity eviction
	tombs    map[string]bool
	tombList []string // tombstone insertion order, for capping
	draining bool

	sweeps     map[string]*SweepJob
	sweepOrder []*SweepJob
	sweepRing  []sweepDoneEntry // terminal sweeps awaiting eviction
	sweepSeq   uint64           // sweep ID sequence

	// runReport executes one job's pipeline and returns the rendered
	// bodies. Tests stub it to exercise queueing without simulating.
	runReport func(ctx context.Context, j *Job) (jsonBody, mdBody []byte, err error)
}

// maxTombstones caps how many evicted IDs are remembered for 410
// responses; beyond this the oldest degrade to 404, which only misleads
// clients that sat on an ID for thousands of evictions.
const maxTombstones = 4096

// New builds a service and starts its worker pool.
func New(opts Options) *Service {
	s := &Service{
		opts:    opts.withDefaults(),
		metrics: NewMetrics(),
		byKey:   map[core.RunConfig]*Job{},
		byID:    map[string]*Job{},
		tombs:   map[string]bool{},
		sweeps:  map[string]*SweepJob{},
	}
	s.queue = make(chan *Job, s.opts.QueueDepth)
	s.runReport = s.buildReport
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the observability surface (for the HTTP layer and
// tests).
func (s *Service) Metrics() *Metrics { return s.metrics }

// RetryAfter returns the configured backoff hint.
func (s *Service) RetryAfter() time.Duration { return s.opts.RetryAfter }

// QueueDepth returns (current, capacity) of the wait queue.
func (s *Service) QueueDepth() (int, int) { return len(s.queue), s.opts.QueueDepth }

// Submit coalesces cfg onto an existing job or enqueues a new one with
// the service-default deadline.
func (s *Service) Submit(cfg core.RunConfig) (job *Job, deduped bool, err error) {
	return s.SubmitTimeout(cfg, 0)
}

// SubmitTimeout is Submit with a per-job deadline override (0 keeps
// Options.JobTimeout). deduped reports whether an existing job absorbed
// the submission — in that case the existing job's deadline stands.
// ErrQueueFull and ErrDraining are the two rejection causes.
func (s *Service) SubmitTimeout(cfg core.RunConfig, timeout time.Duration) (job *Job, deduped bool, err error) {
	key := cfg.Canonical()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(now)
	if j, ok := s.byKey[key]; ok {
		j.mu.Lock()
		j.clients++
		j.mu.Unlock()
		s.metrics.incDedupHits()
		return j, true, nil
	}
	if s.draining {
		return nil, false, ErrDraining
	}
	if timeout <= 0 {
		timeout = s.opts.JobTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:     jobID(key),
		Cfg:    key,
		Art:    core.ForConfig(key),
		hub:    newStreamHub[WindowEvent](),
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
	j.state = StateQueued
	j.clients = 1
	j.timeout = timeout
	j.submitted = now
	// Route the artifact's window stream to this job's hub and the GC
	// histogram before the run can start, so subscribers and /metrics see
	// every window.
	j.Art.SetWindowFunc(func(kind string, ws sim.WindowStats) {
		s.metrics.observeWindow(ws.GCs, ws.GCPauseMS)
		j.hub.emit(WindowEvent{Kind: kind, Window: ws})
	})
	select {
	case s.queue <- j:
	default:
		cancel()
		s.metrics.incJobsRejected()
		return nil, false, ErrQueueFull
	}
	s.byKey[key] = j
	s.byID[j.ID] = j
	s.order = append(s.order, j)
	return j, false, nil
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(time.Now())
	j, ok := s.byID[id]
	return j, ok
}

// Evicted reports whether id names a job that existed but was evicted.
func (s *Service) Evicted(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tombs[id]
}

// Jobs snapshots all resident jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(time.Now())
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// ResidentStats samples the retention gauges: how many jobs and sweeps
// are resident (any state) and how many bytes their stream histories
// hold. Scrapes double as eviction ticks, so retention converges even on
// an idle service that still gets monitored.
func (s *Service) ResidentStats() (residentJobs, residentSweeps, hubBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(time.Now())
	for _, j := range s.order {
		hubBytes += j.hub.bytes()
	}
	for _, sw := range s.sweepOrder {
		hubBytes += sw.hub.bytes()
	}
	return len(s.order), len(s.sweepOrder), hubBytes
}

// Cancel releases one submission reference of job id. When the last
// reference goes, an unfinished job is aborted: its context is cancelled
// (stopping queued jobs immediately and running simulations mid-window)
// and it retires in StateCanceled with no report. Finished jobs just
// shed the reference. The post-release status is returned.
func (s *Service) Cancel(id string) (JobStatus, error) {
	now := time.Now()
	s.mu.Lock()
	s.sweepLocked(now)
	j, ok := s.byID[id]
	if !ok {
		gone := s.tombs[id]
		s.mu.Unlock()
		if gone {
			return JobStatus{}, ErrGone
		}
		return JobStatus{}, ErrUnknownJob
	}
	s.mu.Unlock()
	s.release(j, now)
	return j.Status(now), nil
}

// release drops one reference on j; the last release of an unfinished
// job aborts it. Called by Cancel and by the HTTP layer when a blocking
// submit client disconnects (its reference is consumed either way).
func (s *Service) release(j *Job, now time.Time) {
	j.mu.Lock()
	if j.clients > 0 {
		j.clients--
	}
	last := j.clients == 0
	st := j.state
	j.mu.Unlock()
	if !last || terminal(st) {
		return
	}
	// Zero references on a live job: abort — but only after re-checking
	// under s.mu, because a dedup submit increments clients under s.mu
	// (SubmitTimeout's byKey hit) and may have revived the job between
	// the decrement above and now. Unregistering byKey under the same
	// lock makes the decision atomic: once the abort is committed, no
	// later submit can coalesce onto the dying job.
	s.mu.Lock()
	j.mu.Lock()
	if j.clients > 0 || terminal(j.state) {
		j.mu.Unlock()
		s.mu.Unlock()
		return
	}
	st = j.state
	if s.byKey[j.Cfg] == j {
		delete(s.byKey, j.Cfg)
	}
	j.mu.Unlock()
	s.mu.Unlock()
	// Cancelling the job context stops a running pipeline mid-window; a
	// still-queued job retires right here (the worker's guarded
	// markRunning skips it).
	j.cancel()
	if st == StateQueued && j.finish(now, nil, nil, context.Canceled) {
		s.metrics.incJobsCancelled()
		s.noteTerminal(j, now)
	}
}

// noteTerminal records a freshly-terminal job in the done-ring and, for
// canceled/failed jobs, un-registers the config so a resubmission starts
// a fresh run (their artifact is dropped from the run store — a memo
// poisoned by ctx cancellation must not serve the stale error, and a
// failed run's partial simulations should not pin memory).
func (s *Service) noteTerminal(j *Job, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.State() {
	case StateCanceled, StateFailed:
		if s.byKey[j.Cfg] == j {
			delete(s.byKey, j.Cfg)
		}
		core.Drop(j.Art)
	}
	s.doneRing = append(s.doneRing, doneEntry{j: j, at: now})
	s.sweepLocked(now)
}

// sweepLocked evicts done-ring entries (jobs and sweeps) that are over
// capacity or past the TTL. Eviction is lazy — driven by submissions,
// lookups, and metrics scrapes — so there is no background timer
// goroutine to leak.
func (s *Service) sweepLocked(now time.Time) {
	s.sweepRingLocked(now)
	for len(s.doneRing) > 0 {
		e := s.doneRing[0]
		if len(s.doneRing) <= s.opts.DoneCap && now.Sub(e.at) < s.opts.DoneTTL {
			break
		}
		s.doneRing = s.doneRing[1:]
		s.evictLocked(e.j)
	}
}

// evictLocked forgets one terminal job: store maps, listing order, stream
// history, and the run-store artifact all release their references, and
// the ID leaves a tombstone so clients get 410 rather than 404. Identity
// checks guard every map because a resubmitted config reuses the same
// deterministic ID while the old job waits here.
func (s *Service) evictLocked(j *Job) {
	if s.byID[j.ID] == j {
		delete(s.byID, j.ID)
	}
	if s.byKey[j.Cfg] == j {
		delete(s.byKey, j.Cfg)
	}
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	j.hub.release()
	core.Drop(j.Art)
	if !s.tombs[j.ID] {
		s.tombs[j.ID] = true
		s.tombList = append(s.tombList, j.ID)
		if len(s.tombList) > maxTombstones {
			delete(s.tombs, s.tombList[0])
			s.tombList = s.tombList[1:]
		}
	}
	s.metrics.incJobsEvicted()
}

// worker drains the queue. During shutdown, jobs that were still waiting
// are failed rather than started, so the drain deadline only covers runs
// already in flight.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			if j.finish(time.Now(), nil, nil, errDropped) {
				s.metrics.incJobsDropped()
				s.noteTerminal(j, time.Now())
			}
			continue
		}
		if !j.markRunning(time.Now()) {
			continue // canceled while waiting; already retired
		}
		s.metrics.addInFlight(1)
		ctx, cancel := j.runContext()
		jsonBody, mdBody, err := s.runReport(ctx, j)
		cancel()
		now := time.Now()
		if j.finish(now, jsonBody, mdBody, err) {
			switch {
			case err == nil:
				s.metrics.incJobsDone()
			case isCancellation(err):
				s.metrics.incJobsCancelled()
			default:
				s.metrics.incJobsFailed()
			}
			s.noteTerminal(j, now)
		}
		s.metrics.addInFlight(-1)
	}
}

// reportBody is the JSON rendering of a finished run.
type reportBody struct {
	ID    string     `json:"id"`
	Scale string     `json:"scale"`
	IR    int        `json:"ir"`
	Seed  int64      `json:"seed"`
	Rows  []core.Row `json:"rows"`
	Pass  int        `json:"pass"`
	Total int        `json:"total"`
}

// buildReport is the production job runner: the full characterization
// pipeline over the shared artifact, rendered once. ctx aborts it
// mid-window; a cancelled build returns ctx's error and no bodies.
func (s *Service) buildReport(ctx context.Context, j *Job) ([]byte, []byte, error) {
	rep, err := core.BuildReportContext(ctx, j.Cfg)
	if err != nil {
		return nil, nil, err
	}
	body := reportBody{ID: j.ID, Scale: scaleName(j.Cfg.Scale), IR: j.Cfg.IR, Seed: j.Cfg.Seed, Rows: rep.Rows, Total: len(rep.Rows)}
	for _, r := range rep.Rows {
		if r.Holds {
			body.Pass++
		}
	}
	jsonBody, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	jsonBody = append(jsonBody, '\n')

	// Publish the run's headline scalars to /metrics. Both views are
	// cached on the artifact BuildReport just filled, so this is free.
	if rl, err := j.Art.RequestLevel(); err == nil {
		s.metrics.setRunScalars(rl.Fig2().JOPS, 0)
		if d, err := j.Art.Detail(); err == nil {
			if f5, err := d.Fig5(); err == nil {
				s.metrics.setRunScalars(rl.Fig2().JOPS, f5.MeanCPI)
			}
		}
	}
	return jsonBody, []byte(rep.Markdown()), nil
}

// Shutdown drains gracefully: new submissions are rejected, queued jobs
// that have not started are failed, and in-flight runs get until ctx's
// deadline to finish. If the deadline expires first, every unfinished
// job's context is cancelled — running simulations abort at their next
// window boundary — and ctx.Err() is returned without waiting for them.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: Shutdown called twice")
	}
	s.draining = true
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		resident := make([]*Job, len(s.order))
		copy(resident, s.order)
		sweeps := make([]*SweepJob, len(s.sweepOrder))
		copy(sweeps, s.sweepOrder)
		s.mu.Unlock()
		for _, sw := range sweeps {
			if !terminal(sw.State()) {
				sw.cancel()
			}
		}
		for _, j := range resident {
			if !terminal(j.State()) {
				j.cancel()
			}
		}
		return ctx.Err()
	}
}
