// Package service wraps the characterization pipeline in a concurrent
// serving layer: a bounded job queue with backpressure, run deduplication
// through the shared run-artifact store, live NDJSON streaming of
// per-window statistics, finished figures/tables over HTTP, and a
// Prometheus-text /metrics surface. cmd/jasd is the daemon, cmd/jasctl the
// client.
//
// The invariant the layer preserves end to end is the pipeline's own:
// submissions are coalesced by canonical RunConfig, so N concurrent
// clients asking for the same experiment cost exactly one simulation per
// fidelity and read byte-identical response bodies (the report is rendered
// once and served verbatim).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/sim"
)

// Options configures the service.
type Options struct {
	// Workers is the number of jobs executing concurrently (default 2).
	// Each job internally fans its independent simulations out on the
	// core scheduler, so total simulation concurrency is bounded by
	// Workers x core.Parallelism().
	Workers int
	// QueueDepth is how many jobs may wait beyond those running before
	// submissions are rejected with ErrQueueFull (default 8).
	QueueDepth int
	// RetryAfter is the backoff hint attached to queue-full rejections
	// (default 5s).
	RetryAfter time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 8
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 5 * time.Second
	}
	return o
}

// Sentinel errors surfaced as HTTP status codes by the handler layer.
var (
	// ErrQueueFull rejects a submission when the wait queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects submissions during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("service: shutting down")
	// errDropped fails queued jobs that shutdown could not start.
	errDropped = errors.New("service: dropped by shutdown before starting")
)

// Service owns the job store, the wait queue, and the worker pool.
type Service struct {
	opts    Options
	metrics *Metrics

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	byKey    map[core.RunConfig]*Job // canonical config -> job (dedup)
	byID     map[string]*Job
	order    []string // job IDs in submission order (for listing)
	draining bool

	// runReport executes one job's pipeline and returns the rendered
	// bodies. Tests stub it to exercise queueing without simulating.
	runReport func(*Job) (jsonBody, mdBody []byte, err error)
}

// New builds a service and starts its worker pool.
func New(opts Options) *Service {
	s := &Service{
		opts:    opts.withDefaults(),
		metrics: NewMetrics(),
		byKey:   map[core.RunConfig]*Job{},
		byID:    map[string]*Job{},
	}
	s.queue = make(chan *Job, s.opts.QueueDepth)
	s.runReport = s.buildReport
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the observability surface (for the HTTP layer and
// tests).
func (s *Service) Metrics() *Metrics { return s.metrics }

// RetryAfter returns the configured backoff hint.
func (s *Service) RetryAfter() time.Duration { return s.opts.RetryAfter }

// QueueDepth returns (current, capacity) of the wait queue.
func (s *Service) QueueDepth() (int, int) { return len(s.queue), s.opts.QueueDepth }

// Submit coalesces cfg onto an existing job or enqueues a new one.
// deduped reports whether an existing job absorbed the submission.
// ErrQueueFull and ErrDraining are the two rejection causes.
func (s *Service) Submit(cfg core.RunConfig) (job *Job, deduped bool, err error) {
	key := cfg.Canonical()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.byKey[key]; ok {
		j.mu.Lock()
		j.clients++
		j.mu.Unlock()
		s.metrics.incDedupHits()
		return j, true, nil
	}
	if s.draining {
		return nil, false, ErrDraining
	}
	j := &Job{
		ID:   jobID(key),
		Cfg:  key,
		Art:  core.ForConfig(key),
		hub:  newStreamHub(),
		done: make(chan struct{}),
	}
	j.state = StateQueued
	j.clients = 1
	j.submitted = time.Now()
	// Route the artifact's window stream to this job's hub and the GC
	// histogram before the run can start, so subscribers and /metrics see
	// every window.
	j.Art.SetWindowFunc(func(kind string, ws sim.WindowStats) {
		s.metrics.observeWindow(ws.GCs, ws.GCPauseMS)
		j.hub.emit(kind, ws)
	})
	select {
	case s.queue <- j:
	default:
		s.metrics.incJobsRejected()
		return nil, false, ErrQueueFull
	}
	s.byKey[key] = j
	s.byID[j.ID] = j
	s.order = append(s.order, j.ID)
	return j, false, nil
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// Jobs snapshots all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

// worker drains the queue. During shutdown, jobs that were still waiting
// are failed rather than started, so the drain deadline only covers runs
// already in flight.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			s.metrics.incJobsDropped()
			j.finish(time.Now(), nil, nil, errDropped)
			continue
		}
		s.metrics.addInFlight(1)
		j.markRunning(time.Now())
		jsonBody, mdBody, err := s.runReport(j)
		if err != nil {
			s.metrics.incJobsFailed()
		} else {
			s.metrics.incJobsDone()
		}
		j.finish(time.Now(), jsonBody, mdBody, err)
		s.metrics.addInFlight(-1)
	}
}

// reportBody is the JSON rendering of a finished run.
type reportBody struct {
	ID    string     `json:"id"`
	Scale string     `json:"scale"`
	IR    int        `json:"ir"`
	Seed  int64      `json:"seed"`
	Rows  []core.Row `json:"rows"`
	Pass  int        `json:"pass"`
	Total int        `json:"total"`
}

// buildReport is the production job runner: the full characterization
// pipeline over the shared artifact, rendered once.
func (s *Service) buildReport(j *Job) ([]byte, []byte, error) {
	rep, err := core.BuildReport(j.Cfg)
	if err != nil {
		return nil, nil, err
	}
	body := reportBody{ID: j.ID, Scale: scaleName(j.Cfg.Scale), IR: j.Cfg.IR, Seed: j.Cfg.Seed, Rows: rep.Rows, Total: len(rep.Rows)}
	for _, r := range rep.Rows {
		if r.Holds {
			body.Pass++
		}
	}
	jsonBody, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	jsonBody = append(jsonBody, '\n')

	// Publish the run's headline scalars to /metrics. Both views are
	// cached on the artifact BuildReport just filled, so this is free.
	if rl, err := j.Art.RequestLevel(); err == nil {
		s.metrics.setRunScalars(rl.Fig2().JOPS, 0)
		if d, err := j.Art.Detail(); err == nil {
			if f5, err := d.Fig5(); err == nil {
				s.metrics.setRunScalars(rl.Fig2().JOPS, f5.MeanCPI)
			}
		}
	}
	return jsonBody, []byte(rep.Markdown()), nil
}

// Shutdown drains gracefully: new submissions are rejected, queued jobs
// that have not started are failed, and in-flight runs get until ctx's
// deadline to finish. Returns ctx.Err() if the deadline expired with runs
// still in flight (the process may then exit under them).
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: Shutdown called twice")
	}
	s.draining = true
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
