package service

import (
	"context"
	"sync"
	"time"

	"jasworkload/internal/core"
)

// State is a job's lifecycle position.
type State string

// Job states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one deduplicated characterization run: every submission of an
// equivalent config maps to the same Job, which executes at most once.
type Job struct {
	ID  string
	Cfg core.RunConfig
	Art *core.Artifact

	hub  *streamHub
	done chan struct{} // closed on completion (done or failed)

	mu         sync.Mutex
	state      State
	err        error
	clients    int // submissions coalesced onto this job
	submitted  time.Time
	started    time.Time
	finished   time.Time
	reportJSON []byte // rendered once; served verbatim to every client
	reportMD   []byte
}

// JobStatus is the wire form of a job's state (GET /v1/runs/{id}).
type JobStatus struct {
	ID            string  `json:"id"`
	State         State   `json:"state"`
	Error         string  `json:"error,omitempty"`
	Clients       int     `json:"clients"`
	Scale         string  `json:"scale"`
	IR            int     `json:"ir"`
	Seed          int64   `json:"seed"`
	RequestLevel  bool    `json:"request_level_ready"`
	Detail        bool    `json:"detail_ready"`
	WindowsSoFar  int     `json:"windows_streamed"`
	QueuedSec     float64 `json:"queued_sec,omitempty"`
	RunningSec    float64 `json:"running_sec,omitempty"`
	ReportBytes   int     `json:"report_bytes,omitempty"`
	ReportMDBytes int     `json:"report_md_bytes,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status(now time.Time) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	rl, det := j.Art.Ready()
	st := JobStatus{
		ID:           j.ID,
		State:        j.state,
		Clients:      j.clients,
		Scale:        scaleName(j.Cfg.Scale),
		IR:           j.Cfg.IR,
		Seed:         j.Cfg.Seed,
		RequestLevel: rl,
		Detail:       det,
		WindowsSoFar: j.hub.len(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch j.state {
	case StateQueued:
		st.QueuedSec = now.Sub(j.submitted).Seconds()
	case StateRunning:
		st.RunningSec = now.Sub(j.started).Seconds()
	case StateDone, StateFailed:
		if !j.finished.IsZero() && !j.started.IsZero() {
			st.RunningSec = j.finished.Sub(j.started).Seconds()
		}
	}
	st.ReportBytes = len(j.reportJSON)
	st.ReportMDBytes = len(j.reportMD)
	return st
}

// scaleName renders the Scale enum for status bodies.
func scaleName(s core.Scale) string {
	switch s {
	case core.ScaleQuick:
		return "quick"
	case core.ScaleStandard:
		return "standard"
	default:
		return "full"
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Wait blocks until the job reaches a terminal state or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Report returns the rendered report bodies; ok is false until the job is
// done. Both renderings are produced exactly once, so every client reads
// byte-identical content.
func (j *Job) Report() (jsonBody, mdBody []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, nil, false
	}
	return j.reportJSON, j.reportMD, true
}

// markRunning transitions queued→running.
func (j *Job) markRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
}

// finish transitions to a terminal state, publishes the rendered bodies,
// closes the stream, and releases waiters.
func (j *Job) finish(now time.Time, jsonBody, mdBody []byte, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.err = err
	} else {
		j.state = StateDone
		j.reportJSON = jsonBody
		j.reportMD = mdBody
	}
	j.finished = now
	j.mu.Unlock()
	j.hub.close()
	close(j.done)
}

// len reports the number of events emitted so far.
func (h *streamHub) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}
