package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/loadgen"
)

// State is a job's lifecycle position.
type State string

// Job states. The lifecycle is queued → running → {done, failed,
// canceled}; queued jobs that graceful shutdown could not start fail with
// errDropped (the "dropped" disposition). Terminal jobs are eventually
// evicted from the store by the done-ring (TTL or capacity), after which
// their IDs answer 410 Gone.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one deduplicated characterization run: every submission of an
// equivalent config maps to the same Job, which executes at most once.
// Each submission holds one reference; DELETE /v1/runs/{id} (and a
// wait=1 client disconnecting) releases one. When the last reference is
// released before the run finishes, the job's context is cancelled and
// the simulations abort mid-window.
type Job struct {
	ID  string
	Cfg core.RunConfig
	Art *core.Artifact

	hub  *streamHub[WindowEvent]
	done chan struct{} // closed on completion (done, failed, or canceled)

	ctx     context.Context    // cancelled when the last client lets go
	cancel  context.CancelFunc // idempotent (context package guarantees)
	timeout time.Duration      // run deadline once started (0 = none)

	mu         sync.Mutex
	state      State
	err        error
	clients    int // live references: submissions not yet released
	submitted  time.Time
	started    time.Time
	finished   time.Time
	reportJSON []byte // rendered once; served verbatim to every client
	reportMD   []byte
}

// JobStatus is the wire form of a job's state (GET /v1/runs/{id}).
type JobStatus struct {
	ID            string  `json:"id"`
	State         State   `json:"state"`
	Error         string  `json:"error,omitempty"`
	Clients       int     `json:"clients"`
	Scale         string  `json:"scale"`
	IR            int     `json:"ir"`
	Seed          int64   `json:"seed"`
	Arrival       string  `json:"arrival,omitempty"` // loadgen summary, e.g. "2 cohorts (burst, steady)"
	TimeoutSec    float64 `json:"timeout_s,omitempty"`
	RequestLevel  bool    `json:"request_level_ready"`
	Detail        bool    `json:"detail_ready"`
	WindowsSoFar  int     `json:"windows_streamed"`
	QueuedSec     float64 `json:"queued_sec,omitempty"`
	RunningSec    float64 `json:"running_sec,omitempty"`
	ReportBytes   int     `json:"report_bytes,omitempty"`
	ReportMDBytes int     `json:"report_md_bytes,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status(now time.Time) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	rl, det := j.Art.Ready()
	st := JobStatus{
		ID:           j.ID,
		State:        j.state,
		Clients:      j.clients,
		Scale:        scaleName(j.Cfg.Scale),
		IR:           j.Cfg.IR,
		Seed:         j.Cfg.Seed,
		Arrival:      loadgen.SummaryString(j.Cfg.Arrival),
		TimeoutSec:   j.timeout.Seconds(),
		RequestLevel: rl,
		Detail:       det,
		WindowsSoFar: j.hub.len(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch j.state {
	case StateQueued:
		st.QueuedSec = now.Sub(j.submitted).Seconds()
	case StateRunning:
		st.RunningSec = now.Sub(j.started).Seconds()
	case StateDone, StateFailed, StateCanceled:
		if !j.finished.IsZero() && !j.started.IsZero() {
			st.RunningSec = j.finished.Sub(j.started).Seconds()
		}
	}
	st.ReportBytes = len(j.reportJSON)
	st.ReportMDBytes = len(j.reportMD)
	return st
}

// scaleName renders the Scale enum for status bodies.
func scaleName(s core.Scale) string {
	switch s {
	case core.ScaleQuick:
		return "quick"
	case core.ScaleStandard:
		return "standard"
	default:
		return "full"
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminal reports whether s is a terminal state.
func terminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Err returns the failure cause, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Wait blocks until the job reaches a terminal state or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Report returns the rendered report bodies; ok is false until the job is
// done. Both renderings are produced exactly once, so every client reads
// byte-identical content.
func (j *Job) Report() (jsonBody, mdBody []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, nil, false
	}
	return j.reportJSON, j.reportMD, true
}

// markRunning transitions queued→running. It returns false (and changes
// nothing) when the job already left the queued state — a cancel racing
// the worker's dequeue may have retired it first, and reviving a
// terminal job here would let the worker close j.done a second time.
func (j *Job) markRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// runContext derives the context the job's pipeline executes under: the
// refcounted cancellation context, bounded by the job deadline when one
// is configured. The deadline clock starts when the run starts, not at
// submission — queue time does not eat the budget.
func (j *Job) runContext() (context.Context, context.CancelFunc) {
	j.mu.Lock()
	d := j.timeout
	j.mu.Unlock()
	if d > 0 {
		return context.WithTimeout(j.ctx, d)
	}
	return context.WithCancel(j.ctx)
}

// isCancellation reports whether err means the run was aborted by
// cancellation or a deadline rather than failing on its own.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// finish transitions to a terminal state, publishes the rendered bodies,
// closes the stream, and releases waiters. Idempotent: the first caller
// wins and later calls report false — cancellation and the worker loop
// may race to retire the same job.
func (j *Job) finish(now time.Time, jsonBody, mdBody []byte, err error) bool {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return false
	}
	switch {
	case err == nil:
		j.state = StateDone
		j.reportJSON = jsonBody
		j.reportMD = mdBody
	case isCancellation(err):
		// Cancellation is an explicit terminal state, never a partial
		// report: the rendered bodies stay nil.
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.finished = now
	j.mu.Unlock()
	j.cancel() // release the context's timer/goroutine resources
	j.hub.close()
	close(j.done)
	return true
}
