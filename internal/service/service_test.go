package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/sim"
)

// testCfg returns a distinct tiny config per seed; distinct seeds mean
// distinct canonical configs, so each is its own job.
func testCfg(seed int64) core.RunConfig {
	cfg := core.DefaultRunConfig(core.ScaleQuick)
	cfg.Seed = seed
	cfg.DurationMS = 10_000
	cfg.RampMS = 2_000
	return cfg
}

// blockingService builds a service whose runner blocks until released or
// cancelled, signalling each start. No simulations execute.
func blockingService(t *testing.T, workers, queue int) (s *Service, started chan *Job, release chan struct{}) {
	t.Helper()
	s = New(Options{Workers: workers, QueueDepth: queue, RetryAfter: time.Second})
	started = make(chan *Job, 16)
	release = make(chan struct{})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		started <- j
		select {
		case <-release:
			return []byte("{}\n"), []byte("| md |\n"), nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return s, started, release
}

func waitStart(t *testing.T, started chan *Job) *Job {
	t.Helper()
	select {
	case j := <-started:
		return j
	case <-time.After(5 * time.Second):
		t.Fatal("no job started within 5s")
		return nil
	}
}

func TestSubmitDedup(t *testing.T) {
	s, started, release := blockingService(t, 1, 4)
	j1, dedup1, err := s.Submit(testCfg(101))
	if err != nil || dedup1 {
		t.Fatalf("first submit: dedup=%v err=%v", dedup1, err)
	}
	waitStart(t, started)
	j2, dedup2, err := s.Submit(testCfg(101))
	if err != nil || !dedup2 {
		t.Fatalf("second submit: dedup=%v err=%v", dedup2, err)
	}
	if j1 != j2 {
		t.Fatalf("same config produced different jobs %s vs %s", j1.ID, j2.ID)
	}
	if got := j1.Status(time.Now()).Clients; got != 2 {
		t.Fatalf("clients = %d, want 2", got)
	}
	close(release)
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Dedup after completion still returns the finished job.
	j3, dedup3, err := s.Submit(testCfg(101))
	if err != nil || !dedup3 || j3 != j1 {
		t.Fatalf("post-completion submit: job=%p dedup=%v err=%v", j3, dedup3, err)
	}
	if _, _, ok := j3.Report(); !ok {
		t.Fatal("finished job has no report")
	}
}

func TestQueueBackpressure(t *testing.T) {
	s, started, release := blockingService(t, 1, 1)
	defer close(release)

	if _, _, err := s.Submit(testCfg(201)); err != nil {
		t.Fatal(err)
	}
	waitStart(t, started) // worker busy; queue now empty
	if _, _, err := s.Submit(testCfg(202)); err != nil {
		t.Fatalf("queueing submit: %v", err) // fills the single queue slot
	}
	if _, _, err := s.Submit(testCfg(203)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err=%v, want ErrQueueFull", err)
	}
	// Rejected configs are not registered: a dedup probe creates no job.
	if depth, capacity := s.QueueDepth(); depth != 1 || capacity != 1 {
		t.Fatalf("queue depth=%d cap=%d", depth, capacity)
	}
	// A duplicate of a queued config still coalesces instead of rejecting.
	if _, dedup, err := s.Submit(testCfg(202)); err != nil || !dedup {
		t.Fatalf("dedup onto queued job: dedup=%v err=%v", dedup, err)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	s, started, release := blockingService(t, 1, 4)
	running, _, err := s.Submit(testCfg(301))
	if err != nil {
		t.Fatal(err)
	}
	waitStart(t, started)
	queued, _, err := s.Submit(testCfg(302))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown set draining
	if _, _, err := s.Submit(testCfg(303)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err=%v, want ErrDraining", err)
	}
	close(release) // in-flight run completes
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if st := running.State(); st != StateDone {
		t.Fatalf("in-flight job state = %s, want done", st)
	}
	if st := queued.State(); st != StateFailed {
		t.Fatalf("queued job state = %s, want failed (dropped)", st)
	}
	if err := queued.Err(); !errors.Is(err, errDropped) {
		t.Fatalf("queued job err = %v", err)
	}
}

func TestShutdownDeadlineExpires(t *testing.T) {
	s, started, release := blockingService(t, 1, 1)
	defer close(release) // leak-free: worker exits after the deadline test
	if _, _, err := s.Submit(testCfg(401)); err != nil {
		t.Fatal(err)
	}
	waitStart(t, started)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

func TestFailedRunMarksJobFailed(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	boom := errors.New("boom")
	s.runReport = func(context.Context, *Job) ([]byte, []byte, error) { return nil, nil, boom }
	j, _, err := s.Submit(testCfg(501))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if _, _, ok := j.Report(); ok {
		t.Fatal("failed job published a report")
	}
}

func TestJobSpecValidation(t *testing.T) {
	cases := []JobSpec{
		{Scale: "galactic"},
		{HeapPage: "2M"},
		{DurationMS: 1000, RampMS: 2000},
		{DetailFrac: 1.5},
	}
	for _, spec := range cases {
		if _, err := spec.RunConfig(); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
	// Same experiment spelled differently shares one job ID.
	a, err := JobSpec{Scale: "quick", Seed: 1}.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{IR: 30, Seed: 1, HeapMB: 256}.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if jobID(a) != jobID(b) {
		t.Fatalf("equivalent specs got different job IDs %s vs %s", jobID(a), jobID(b))
	}
}

func TestMetricsExposition(t *testing.T) {
	s, started, release := blockingService(t, 1, 1)
	if _, _, err := s.Submit(testCfg(601)); err != nil {
		t.Fatal(err)
	}
	j := waitStart(t, started)
	s.Submit(testCfg(601)) // dedup hit
	var b strings.Builder
	resident, residentSweeps, hubBytes := s.ResidentStats()
	s.metrics.WriteTo(&b, 0, 1, resident, residentSweeps, hubBytes)
	out := b.String()
	for _, want := range []string{
		"jasd_jobs_inflight 1",
		"jasd_queue_capacity 1",
		"jasd_resident_jobs 1",
		"jasd_dedup_hits_total 1",
		"# TYPE jasd_gc_pause_ms histogram",
		"jasd_gc_pause_ms_bucket{le=\"+Inf\"}",
		"jasd_sims_total{kind=\"request-level\"}",
		"jasd_artifact_cache_hits_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	close(release)
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	s.metrics.WriteTo(&b, 0, 1, 0, 0, 0)
	if !strings.Contains(b.String(), "jasd_jobs_total{state=\"done\"} 1") {
		t.Fatalf("done counter missing:\n%s", b.String())
	}
}

// TestCancelRefcounted proves cancellation is reference-counted across a
// deduplicated job: releasing all but the last subscriber leaves the run
// untouched; the final release cancels the run's context mid-execution
// and retires the job as canceled with no report.
func TestCancelRefcounted(t *testing.T) {
	s, started, release := blockingService(t, 1, 4)
	defer close(release)
	j, _, err := s.Submit(testCfg(701))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // three references total
		if _, dedup, err := s.Submit(testCfg(701)); err != nil || !dedup {
			t.Fatalf("dedup submit %d: dedup=%v err=%v", i, dedup, err)
		}
	}
	waitStart(t, started)
	for i := 0; i < 2; i++ {
		st, err := s.Cancel(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRunning {
			t.Fatalf("state after cancel %d = %s, want running (refs remain)", i, st.State)
		}
	}
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if _, _, ok := j.Report(); ok {
		t.Fatal("canceled job published a report")
	}
	// The canceled config is unregistered: resubmitting starts fresh.
	j2, dedup, err := s.Submit(testCfg(701))
	if err != nil || dedup {
		t.Fatalf("resubmit after cancel: dedup=%v err=%v", dedup, err)
	}
	if j2 == j {
		t.Fatal("resubmit reused the canceled job")
	}
	waitStart(t, started)
	var b strings.Builder
	s.metrics.WriteTo(&b, 0, 1, 0, 0, 0)
	if !strings.Contains(b.String(), "jasd_jobs_cancelled_total 1") {
		t.Fatalf("cancellation not counted:\n%s", b.String())
	}
}

// TestCancelQueued verifies a job cancelled before a worker picks it up
// retires immediately and never starts executing.
func TestCancelQueued(t *testing.T) {
	s, started, release := blockingService(t, 1, 4)
	defer close(release)
	if _, _, err := s.Submit(testCfg(711)); err != nil {
		t.Fatal(err)
	}
	running := waitStart(t, started)
	queued, _, err := s.Submit(testCfg(712))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued job state after cancel = %s, want canceled", st)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	// The worker must skip the cancelled queued job rather than run it.
	select {
	case j := <-started:
		t.Fatalf("cancelled queued job %s started", j.ID)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestCancelDequeueRace hammers the window between a worker popping a
// queued job and a cancel retiring it: markRunning must refuse to revive
// a job the cancel already finished, or the worker's finish would close
// j.done a second time and panic.
func TestCancelDequeueRace(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 64})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return []byte("{}\n"), []byte("| md |\n"), nil
	}
	for i := 0; i < 500; i++ {
		var j *Job
		for {
			var err error
			j, _, err = s.Submit(testCfg(int64(10_000 + i)))
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond) // let workers drain retired jobs
		}
		go s.Cancel(j.ID)
		if err := j.Wait(context.Background()); err != nil && !isCancellation(err) {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestReleaseRevivalRace pins the refcount revival race: a dedup submit
// landing between the last release's decrement and its abort must either
// coalesce onto a job that then survives, or get a fresh job — never hold
// a live reference to a run aborted underneath it.
func TestReleaseRevivalRace(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 64})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return []byte("{}\n"), []byte("| md |\n"), nil
	}
	cfg := testCfg(20_001)
	for i := 0; i < 300; i++ {
		j1, _, err := s.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		revived := make(chan *Job, 1)
		go func() {
			j2, _, err := s.Submit(cfg)
			if err != nil {
				t.Error(err)
				revived <- nil
				return
			}
			revived <- j2
		}()
		s.release(j1, time.Now())
		j2 := <-revived
		if j2 == nil {
			t.Fatalf("iteration %d: revival submit failed", i)
		}
		if err := j2.Wait(context.Background()); err != nil {
			t.Fatalf("iteration %d: job with a live reference was aborted: %v", i, err)
		}
		s.release(j2, time.Now())
	}
}

// TestEvictionAndResubmit is the retention acceptance test: a terminal
// job past the done-ring TTL is evicted on the next store access — its ID
// answers Gone, its stream history is freed — and resubmitting the same
// config re-executes the pipeline exactly once more.
func TestEvictionAndResubmit(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4, DoneTTL: time.Millisecond})
	var mu sync.Mutex
	runs := 0
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		j.hub.emit(WindowEvent{Kind: "request-level", Window: sim.WindowStats{}})
		return []byte("{}\n"), []byte("| md |\n"), nil
	}
	j, _, err := s.Submit(testCfg(721))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, hubBytes := s.ResidentStats(); hubBytes == 0 {
		t.Fatal("finished job's stream history should still be resident")
	}
	time.Sleep(5 * time.Millisecond) // pass the TTL; eviction is lazy

	// Any store access sweeps: the job vanishes and leaves a tombstone.
	if _, ok := s.Job(j.ID); ok {
		t.Fatal("expired job still resident")
	}
	if !s.Evicted(j.ID) {
		t.Fatal("evicted job left no tombstone")
	}
	if resident, _, hubBytes := s.ResidentStats(); resident != 0 || hubBytes != 0 {
		t.Fatalf("after eviction resident=%d hubBytes=%d, want 0/0", resident, hubBytes)
	}
	if j.hub.len() != 1 {
		t.Fatalf("event total lost on release: %d", j.hub.len())
	}

	// Resubmission of the evicted config re-simulates exactly once.
	j2, dedup, err := s.Submit(testCfg(721))
	if err != nil || dedup {
		t.Fatalf("resubmit after eviction: dedup=%v err=%v", dedup, err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := runs
	mu.Unlock()
	if got != 2 {
		t.Fatalf("pipeline executed %d times, want 2 (once per eviction generation)", got)
	}
	var b strings.Builder
	s.metrics.WriteTo(&b, 0, 1, 0, 0, 0)
	if !strings.Contains(b.String(), "jasd_jobs_evicted_total 1") {
		t.Fatalf("eviction not counted:\n%s", b.String())
	}
}

// TestNoGoroutineLeakAfterShutdown pins the subscriber-parking bug:
// stream readers blocked in the hub's cond.Wait and workers must all be
// gone once every job is terminal and Shutdown has drained.
func TestNoGoroutineLeakAfterShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	s, started, release := blockingService(t, 1, 8)
	running, _, err := s.Submit(testCfg(731))
	if err != nil {
		t.Fatal(err)
	}
	waitStart(t, started)
	queued, _, err := s.Submit(testCfg(732))
	if err != nil {
		t.Fatal(err)
	}
	// Park subscribers on both hubs, past any event that will ever come.
	var wg sync.WaitGroup
	for _, j := range []*Job{running, queued} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				j.hub.next(context.Background(), 1<<30)
			}(j)
		}
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait() // dropped job's closed hub must wake its parked subscribers
	if err := queued.Err(); !errors.Is(err, errDropped) {
		t.Fatalf("queued job err = %v, want errDropped", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
