package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"jasworkload/internal/core"
	"jasworkload/internal/loadgen"
	"jasworkload/internal/mem"
	"jasworkload/internal/workload"
)

// JobSpec is the wire form of a run configuration: what clients POST to
// /v1/runs. Zero-valued fields take the per-scale defaults, exactly like
// the library's DefaultRunConfig/RunConfig override semantics.
type JobSpec struct {
	Scale string `json:"scale,omitempty"` // "quick" (default), "standard", "full"
	IR    int    `json:"ir,omitempty"`
	Seed  int64  `json:"seed,omitempty"`

	HeapMB     uint64  `json:"heap_mb,omitempty"`
	HeapPage   string  `json:"heap_page,omitempty"` // "4K" or "16M"
	DurationMS float64 `json:"duration_ms,omitempty"`
	RampMS     float64 `json:"ramp_ms,omitempty"`
	DetailFrac float64 `json:"detail_frac,omitempty"`

	// Workload selects a registered workload pack ("" = the default
	// jas2004). It is part of the canonical config, so jobs for different
	// packs never coalesce.
	Workload string `json:"workload,omitempty"`

	// Arrival is an inline loadgen spec (cohorts with steady/burst/ramp/
	// sweep processes, or a recorded trace). Absent means the legacy
	// steady Poisson loop. It participates in the canonical config, so
	// distinct load shapes never coalesce onto one job.
	Arrival json.RawMessage `json:"arrival,omitempty"`

	// TimeoutS bounds the run's execution time in wall-clock seconds,
	// counted from run start (0 = the daemon's -job-timeout default). It
	// is delivery metadata, not part of the experiment: two specs
	// differing only in timeout_s still coalesce onto one job, whose
	// deadline is the first submitter's.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// RunConfig resolves the spec against the scale defaults.
func (s JobSpec) RunConfig() (core.RunConfig, error) {
	var sc core.Scale
	switch s.Scale {
	case "", "quick":
		sc = core.ScaleQuick
	case "standard":
		sc = core.ScaleStandard
	case "full":
		sc = core.ScaleFull
	default:
		return core.RunConfig{}, fmt.Errorf("unknown scale %q", s.Scale)
	}
	cfg := core.DefaultRunConfig(sc)
	if s.IR > 0 {
		cfg.IR = s.IR
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.HeapMB > 0 {
		cfg.HeapBytes = s.HeapMB << 20
	}
	switch s.HeapPage {
	case "":
	case "4K", "4k":
		cfg.HeapPageSize = mem.Page4K
	case "16M", "16m":
		cfg.HeapPageSize = mem.Page16M
	default:
		return core.RunConfig{}, fmt.Errorf("unknown heap page size %q (want 4K or 16M)", s.HeapPage)
	}
	if s.DurationMS < 0 || s.RampMS < 0 || s.DetailFrac < 0 || s.DetailFrac > 1 {
		return core.RunConfig{}, fmt.Errorf("negative duration/ramp or detail_frac outside [0,1]")
	}
	if s.TimeoutS < 0 {
		return core.RunConfig{}, fmt.Errorf("negative timeout_s %v", s.TimeoutS)
	}
	if s.DurationMS > 0 {
		cfg.DurationMS = s.DurationMS
	}
	if s.RampMS > 0 {
		cfg.RampMS = s.RampMS
	}
	if s.DetailFrac > 0 {
		cfg.DetailFrac = s.DetailFrac
	}
	if _, err := workload.Get(s.Workload); err != nil {
		return core.RunConfig{}, err
	}
	cfg.Workload = s.Workload
	if len(s.Arrival) > 0 {
		spec, err := loadgen.Parse(s.Arrival)
		if err != nil {
			return core.RunConfig{}, err
		}
		cfg.Arrival = spec.Canonical()
		if err := core.CheckArrivalClasses(cfg.Arrival, s.Workload); err != nil {
			return core.RunConfig{}, err
		}
		if spec.Trace != nil {
			// Reject a too-short or mis-sized trace at submit time (400)
			// instead of as a failed job: the engine windows are fixed at
			// 1 s and the canonical config fixes the run length.
			if spec.Trace.WindowMS != 1000 {
				return core.RunConfig{}, fmt.Errorf("trace window_ms %v: the engine runs 1000 ms windows", spec.Trace.WindowMS)
			}
			if need := int(cfg.Canonical().DurationMS / 1000); len(spec.Trace.Windows) < need {
				return core.RunConfig{}, fmt.Errorf("trace has %d windows, run needs %d", len(spec.Trace.Windows), need)
			}
		}
	}
	if cfg.RampMS >= cfg.DurationMS && cfg.DurationMS > 0 {
		return core.RunConfig{}, fmt.Errorf("ramp_ms %v must be below duration_ms %v", cfg.RampMS, cfg.DurationMS)
	}
	return cfg, nil
}

// jobID derives the stable job identifier from the canonical config: two
// specs describing the same experiment get the same ID, which is what lets
// clients share queue slots, streams, and finished bodies.
func jobID(cfg core.RunConfig) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", cfg.Canonical())))
	return hex.EncodeToString(sum[:6])
}

// JobID exposes the job-identifier derivation for out-of-process peers —
// the replica router hashes submissions with it so a config routes to the
// same backend that owns its job ID.
func JobID(cfg core.RunConfig) string { return jobID(cfg) }
