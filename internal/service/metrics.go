package service

import (
	"fmt"
	"io"
	"sync"

	"jasworkload/internal/core"
)

// gcPauseBucketsMS are the upper bounds (milliseconds) of the GC-pause
// histogram. The paper's measured pauses sit in the 300-400 ms band at
// 1 GB heap; quick-scale runs land lower, so the buckets cover both.
var gcPauseBucketsMS = []float64{25, 50, 100, 200, 400, 800, 1600}

// Metrics is the service's observability state, exported in Prometheus
// text exposition format by WriteTo. Everything is guarded by one mutex —
// updates happen at job-lifecycle granularity (plus one histogram
// observation per simulated window with a GC), far from any hot path.
type Metrics struct {
	mu sync.Mutex

	jobsDone      uint64
	jobsFailed    uint64
	jobsRejected  uint64
	jobsDropped   uint64 // queued jobs failed by shutdown
	jobsCancelled uint64 // aborted by DELETE/disconnect or a deadline
	jobsEvicted   uint64 // retired from the done-ring (TTL or capacity)
	dedupHits     uint64
	httpRequests  uint64
	windowsSeen   uint64

	sweepsDone     uint64
	sweepsFailed   uint64
	sweepsCanceled uint64
	sweepCells     uint64 // grid cells expanded across all sweeps

	inFlight int64

	haveRun bool
	jops    float64
	cpi     float64

	gcBucketCount []uint64
	gcSumMS       float64
	gcCount       uint64
}

// NewMetrics returns an empty metrics surface.
func NewMetrics() *Metrics {
	return &Metrics{gcBucketCount: make([]uint64, len(gcPauseBucketsMS))}
}

func (m *Metrics) incJobsDone()      { m.mu.Lock(); m.jobsDone++; m.mu.Unlock() }
func (m *Metrics) incJobsFailed()    { m.mu.Lock(); m.jobsFailed++; m.mu.Unlock() }
func (m *Metrics) incJobsRejected()  { m.mu.Lock(); m.jobsRejected++; m.mu.Unlock() }
func (m *Metrics) incJobsDropped()   { m.mu.Lock(); m.jobsDropped++; m.mu.Unlock() }
func (m *Metrics) incJobsCancelled() { m.mu.Lock(); m.jobsCancelled++; m.mu.Unlock() }
func (m *Metrics) incJobsEvicted()   { m.mu.Lock(); m.jobsEvicted++; m.mu.Unlock() }
func (m *Metrics) incDedupHits()     { m.mu.Lock(); m.dedupHits++; m.mu.Unlock() }
func (m *Metrics) incHTTPRequests()  { m.mu.Lock(); m.httpRequests++; m.mu.Unlock() }

func (m *Metrics) addInFlight(d int64) { m.mu.Lock(); m.inFlight += d; m.mu.Unlock() }

// addSweepCells charges one submitted sweep's expanded cell count.
func (m *Metrics) addSweepCells(n uint64) { m.mu.Lock(); m.sweepCells += n; m.mu.Unlock() }

// incSweeps counts one terminal sweep by disposition.
func (m *Metrics) incSweeps(state State) {
	m.mu.Lock()
	switch state {
	case StateDone:
		m.sweepsDone++
	case StateCanceled:
		m.sweepsCanceled++
	default:
		m.sweepsFailed++
	}
	m.mu.Unlock()
}

// setRunScalars records the latest finished run's headline scalars.
func (m *Metrics) setRunScalars(jops, cpi float64) {
	m.mu.Lock()
	m.haveRun, m.jops, m.cpi = true, jops, cpi
	m.mu.Unlock()
}

// observeWindow folds one simulated window into the streaming counters and
// the GC pause histogram.
func (m *Metrics) observeWindow(gcs int, gcPauseMS float64) {
	m.mu.Lock()
	m.windowsSeen++
	if gcs > 0 {
		m.gcCount++
		m.gcSumMS += gcPauseMS
		for i, ub := range gcPauseBucketsMS {
			if gcPauseMS <= ub {
				m.gcBucketCount[i]++
			}
		}
	}
	m.mu.Unlock()
}

// WriteTo renders the Prometheus text exposition. queueDepth, queueCap,
// residentJobs, residentSweeps, and hubBytes are sampled by the caller
// (they live in the Service, not here). Output order is fixed, so scrapes
// are diffable.
func (m *Metrics) WriteTo(w io.Writer, queueDepth, queueCap, residentJobs, residentSweeps, hubBytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	gauge("jasd_queue_depth", "Jobs waiting for a worker.", float64(queueDepth))
	gauge("jasd_queue_capacity", "Maximum number of waiting jobs before submissions are rejected.", float64(queueCap))
	gauge("jasd_jobs_inflight", "Jobs currently executing on the worker pool.", float64(m.inFlight))
	gauge("jasd_resident_jobs", "Jobs held in memory (running, queued, or awaiting done-ring eviction).", float64(residentJobs))
	gauge("jasd_resident_sweeps", "Sweeps held in memory (running or awaiting eviction).", float64(residentSweeps))
	gauge("jasd_hub_bytes", "Bytes of buffered stream events (windows and sweep rows) across all resident hubs.", float64(hubBytes))

	fmt.Fprintf(w, "# HELP jasd_jobs_total Jobs by terminal disposition.\n# TYPE jasd_jobs_total counter\n")
	fmt.Fprintf(w, "jasd_jobs_total{state=\"done\"} %d\n", m.jobsDone)
	fmt.Fprintf(w, "jasd_jobs_total{state=\"failed\"} %d\n", m.jobsFailed)
	fmt.Fprintf(w, "jasd_jobs_total{state=\"rejected\"} %d\n", m.jobsRejected)
	fmt.Fprintf(w, "jasd_jobs_total{state=\"dropped\"} %d\n", m.jobsDropped)
	fmt.Fprintf(w, "jasd_jobs_total{state=\"canceled\"} %d\n", m.jobsCancelled)

	counter("jasd_jobs_cancelled_total", "Jobs aborted by cancellation or a run deadline.", m.jobsCancelled)
	counter("jasd_jobs_evicted_total", "Terminal jobs retired from the done-ring by TTL or capacity.", m.jobsEvicted)
	counter("jasd_dedup_hits_total", "Submissions coalesced onto an existing job for the same canonical config.", m.dedupHits)

	fmt.Fprintf(w, "# HELP jasd_sweeps_total Sweeps by terminal disposition.\n# TYPE jasd_sweeps_total counter\n")
	fmt.Fprintf(w, "jasd_sweeps_total{state=\"done\"} %d\n", m.sweepsDone)
	fmt.Fprintf(w, "jasd_sweeps_total{state=\"failed\"} %d\n", m.sweepsFailed)
	fmt.Fprintf(w, "jasd_sweeps_total{state=\"canceled\"} %d\n", m.sweepsCanceled)
	counter("jasd_sweep_cells_total", "Grid cells expanded across all submitted sweeps (after dedup).", m.sweepCells)

	artStats, rlStats := core.SplitCacheStats()
	counter("jasd_artifact_cache_hits_total", "Run-store lookups that found a cached artifact.", artStats.Hits)
	counter("jasd_artifact_cache_misses_total", "Run-store lookups that created a new artifact.", artStats.Misses)
	counter("jasd_request_cache_hits_total", "Request-level cell lookups that adopted an existing shared run.", rlStats.Hits)
	counter("jasd_request_cache_misses_total", "Request-level cell lookups that created a new shared run slot.", rlStats.Misses)

	arts, cells := core.StoreSizes()
	gauge("jasd_store_artifacts", "Artifacts resident in the run store (full canonical configs).", float64(arts))
	gauge("jasd_store_request_cells", "Shared request-level cells resident in the run store.", float64(cells))

	fmt.Fprintf(w, "# HELP jasd_sims_total Simulations actually executed, by kind.\n# TYPE jasd_sims_total counter\n")
	sims := core.SimCounts()
	for _, kind := range []string{"request-level", "detail", "variant"} {
		fmt.Fprintf(w, "jasd_sims_total{kind=%q} %d\n", kind, sims[kind])
	}

	// The persistent-store series exist only when a store is installed
	// (-store-dir), so a storeless scrape stays byte-compatible with older
	// daemons.
	if ps, ok := core.PersistentStoreStats(); ok {
		fmt.Fprintf(w, "# HELP jasd_store_hits_total Persistent-store loads served from disk, by entry kind.\n# TYPE jasd_store_hits_total counter\n")
		for _, kind := range ps.Kinds() {
			fmt.Fprintf(w, "jasd_store_hits_total{kind=%q} %d\n", kind, ps.Hits[kind])
		}
		fmt.Fprintf(w, "# HELP jasd_store_misses_total Persistent-store loads that found no usable entry, by entry kind.\n# TYPE jasd_store_misses_total counter\n")
		for _, kind := range ps.Kinds() {
			fmt.Fprintf(w, "jasd_store_misses_total{kind=%q} %d\n", kind, ps.Misses[kind])
		}
		counter("jasd_store_writes_total", "Entries written to the persistent store.", ps.Writes)
		counter("jasd_store_write_failures_total", "Persistent-store writes that failed (entry not persisted; run unaffected).", ps.WriteFails)
		counter("jasd_store_corrupt_total", "Torn or damaged store entries detected and treated as misses.", ps.Corrupt)
		counter("jasd_store_lease_waits_total", "Loads that waited out another replica's lease instead of simulating.", ps.LeaseWaits)
		gauge("jasd_store_bytes", "Bytes resident in the persistent store directory.", float64(ps.Bytes))
	}

	gauge("jasd_detail_shards", "Shard workers a detail run started now would use (0 = sharding off or auto-collapsed to the fused loop).", float64(core.DetailShards()))
	// One series per shard index that ever stalled the merge, plus every
	// index a current run would use — so the series set is stable across
	// scrapes of an active daemon but quiet indices never pollute it.
	fmt.Fprintf(w, "# HELP jasd_shard_merge_stalls_total Times the deterministic coherence merge had to wait on a shard for the next batch in global order.\n# TYPE jasd_shard_merge_stalls_total counter\n")
	active := core.DetailShards()
	for i, n := range core.ShardMergeStalls() {
		if i < active || n > 0 {
			fmt.Fprintf(w, "jasd_shard_merge_stalls_total{shard=\"%d\"} %d\n", i, n)
		}
	}

	counter("jasd_http_requests_total", "HTTP requests served.", m.httpRequests)
	counter("jasd_windows_streamed_total", "Simulated windows observed by the streaming layer.", m.windowsSeen)

	if m.haveRun {
		gauge("jasd_jops", "JOPS of the most recently completed run.", m.jops)
		gauge("jasd_cpi", "Mean steady-state CPI of the most recently completed run.", m.cpi)
	}

	fmt.Fprintf(w, "# HELP jasd_gc_pause_ms Stop-the-world GC pause per simulated window with a collection.\n# TYPE jasd_gc_pause_ms histogram\n")
	for i, ub := range gcPauseBucketsMS {
		fmt.Fprintf(w, "jasd_gc_pause_ms_bucket{le=\"%g\"} %d\n", ub, m.gcBucketCount[i])
	}
	fmt.Fprintf(w, "jasd_gc_pause_ms_bucket{le=\"+Inf\"} %d\n", m.gcCount)
	fmt.Fprintf(w, "jasd_gc_pause_ms_sum %g\n", m.gcSumMS)
	fmt.Fprintf(w, "jasd_gc_pause_ms_count %d\n", m.gcCount)
}
