package service

import (
	"context"
	"sync"
	"unsafe"

	"jasworkload/internal/sim"
)

// WindowEvent is one NDJSON line of a run's live stream: the per-window
// vmstat-style snapshot, tagged with the fidelity that produced it. The
// request-level and detail simulations of one artifact may execute
// concurrently, so lines of different kinds interleave; within a kind the
// order is the engine's window order (deterministic).
type WindowEvent struct {
	Kind   string          `json:"kind"` // "request-level" or "detail"
	Window sim.WindowStats `json:"window"`
}

// streamHub fans one producer's events out to any number of stream
// subscribers, losslessly: events accumulate in order, and a subscriber
// that attaches late replays the history before tailing live ones. Jobs
// buffer WindowEvents, sweeps buffer SweepRows — the replay/resume
// machinery is identical. The history is retained until the owner is
// evicted (release), at which point the event slice is freed and any
// remaining subscribers observe end-of-stream at their next read.
type streamHub[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	events   []T
	total    int // events ever emitted; survives release for status bodies
	closed   bool
	released bool
}

func newStreamHub[T any]() *streamHub[T] {
	h := &streamHub[T]{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// emit appends one event and wakes subscribers. Called from the simulation
// goroutines via the artifact's window observer (jobs) or the sweep
// orchestrator (rows).
func (h *streamHub[T]) emit(ev T) {
	h.mu.Lock()
	if !h.released {
		h.events = append(h.events, ev)
		h.total++
	}
	h.mu.Unlock()
	h.cond.Broadcast()
}

// close marks the stream complete (owner finished) and wakes subscribers.
// Closing is idempotent; the history stays replayable until release.
func (h *streamHub[T]) close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// release frees the event history (owner evicted). Subscribers never read
// freed memory — next returns events by value under the same mutex — so a
// subscriber mid-replay simply sees its stream end early; the terminal
// status line the HTTP layer appends then reports the owner's fate. The
// emitted-event total remains available for status bodies.
func (h *streamHub[T]) release() {
	h.mu.Lock()
	h.events = nil
	h.released = true
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// bytes approximates the resident size of the buffered history (slice
// headers + struct payloads; strings shared with the owner are not charged
// per event), used by the jasd_hub_bytes gauge.
func (h *streamHub[T]) bytes() int {
	var zero T
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events) * int(unsafe.Sizeof(zero))
}

// len reports the number of events emitted so far.
func (h *streamHub[T]) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// next blocks until event i exists and returns it, or returns ok=false
// when the stream closed (or was released) before (or at) i, or when ctx
// is cancelled.
func (h *streamHub[T]) next(ctx context.Context, i int) (T, bool) {
	// cond.Wait cannot watch a context; a helper goroutine turns
	// cancellation into a broadcast so the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, h.cond.Broadcast)
	defer stop()

	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if i < len(h.events) {
			return h.events[i], true
		}
		if h.closed || ctx.Err() != nil {
			var zero T
			return zero, false
		}
		h.cond.Wait()
	}
}
