package service

import (
	"context"
	"sync"

	"jasworkload/internal/sim"
)

// WindowEvent is one NDJSON line of a run's live stream: the per-window
// vmstat-style snapshot, tagged with the fidelity that produced it. The
// request-level and detail simulations of one artifact may execute
// concurrently, so lines of different kinds interleave; within a kind the
// order is the engine's window order (deterministic).
type WindowEvent struct {
	Kind   string          `json:"kind"` // "request-level" or "detail"
	Window sim.WindowStats `json:"window"`
}

// streamHub fans one job's window events out to any number of stream
// subscribers, losslessly: events accumulate in order, and a subscriber
// that attaches late replays the history before tailing live ones.
type streamHub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []WindowEvent
	closed bool
}

func newStreamHub() *streamHub {
	h := &streamHub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// emit appends one event and wakes subscribers. Called from the simulation
// goroutines via the artifact's window observer.
func (h *streamHub) emit(kind string, ws sim.WindowStats) {
	h.mu.Lock()
	h.events = append(h.events, WindowEvent{Kind: kind, Window: ws})
	h.mu.Unlock()
	h.cond.Broadcast()
}

// close marks the stream complete (job finished) and wakes subscribers.
func (h *streamHub) close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// next blocks until event i exists and returns it, or returns ok=false
// when the stream closed before (or at) i, or when ctx is cancelled.
func (h *streamHub) next(ctx context.Context, i int) (WindowEvent, bool) {
	// cond.Wait cannot watch a context; a helper goroutine turns
	// cancellation into a broadcast so the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, h.cond.Broadcast)
	defer stop()

	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if i < len(h.events) {
			return h.events[i], true
		}
		if h.closed || ctx.Err() != nil {
			return WindowEvent{}, false
		}
		h.cond.Wait()
	}
}
