package service

import (
	"context"
	"sync"
	"unsafe"

	"jasworkload/internal/sim"
)

// WindowEvent is one NDJSON line of a run's live stream: the per-window
// vmstat-style snapshot, tagged with the fidelity that produced it. The
// request-level and detail simulations of one artifact may execute
// concurrently, so lines of different kinds interleave; within a kind the
// order is the engine's window order (deterministic).
type WindowEvent struct {
	Kind   string          `json:"kind"` // "request-level" or "detail"
	Window sim.WindowStats `json:"window"`
}

// windowEventBytes approximates the resident cost of one buffered event,
// used by the jasd_hub_bytes gauge (slice header + struct payload; the
// Kind strings are shared constants, so they are not charged per event).
const windowEventBytes = int(unsafe.Sizeof(WindowEvent{}))

// streamHub fans one job's window events out to any number of stream
// subscribers, losslessly: events accumulate in order, and a subscriber
// that attaches late replays the history before tailing live ones. The
// history is retained until the owning job is evicted (release), at which
// point the event slice is freed and any remaining subscribers observe
// end-of-stream at their next read.
type streamHub struct {
	mu       sync.Mutex
	cond     *sync.Cond
	events   []WindowEvent
	total    int // events ever emitted; survives release for status bodies
	closed   bool
	released bool
}

func newStreamHub() *streamHub {
	h := &streamHub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// emit appends one event and wakes subscribers. Called from the simulation
// goroutines via the artifact's window observer.
func (h *streamHub) emit(kind string, ws sim.WindowStats) {
	h.mu.Lock()
	if !h.released {
		h.events = append(h.events, WindowEvent{Kind: kind, Window: ws})
		h.total++
	}
	h.mu.Unlock()
	h.cond.Broadcast()
}

// close marks the stream complete (job finished) and wakes subscribers.
// Closing is idempotent; the history stays replayable until release.
func (h *streamHub) close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// release frees the event history (job evicted). Subscribers never read
// freed memory — next returns events by value under the same mutex — so a
// subscriber mid-replay simply sees its stream end early; the terminal
// status line the HTTP layer appends then reports the job's fate. The
// emitted-event total remains available for status bodies.
func (h *streamHub) release() {
	h.mu.Lock()
	h.events = nil
	h.released = true
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// bytes reports the resident size of the buffered history.
func (h *streamHub) bytes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events) * windowEventBytes
}

// next blocks until event i exists and returns it, or returns ok=false
// when the stream closed (or was released) before (or at) i, or when ctx
// is cancelled.
func (h *streamHub) next(ctx context.Context, i int) (WindowEvent, bool) {
	// cond.Wait cannot watch a context; a helper goroutine turns
	// cancellation into a broadcast so the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, h.cond.Broadcast)
	defer stop()

	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if i < len(h.events) {
			return h.events[i], true
		}
		if h.closed || ctx.Err() != nil {
			return WindowEvent{}, false
		}
		h.cond.Wait()
	}
}
