package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"jasworkload/internal/core"
)

// This file is the sweep orchestration layer: POST /v1/sweeps takes a base
// JobSpec plus parameter axes, expands the grid through core.Sweep, fans
// the deduped cells across the ordinary bounded worker pool as regular
// jobs, and streams one NDJSON row per cell as it lands. Cells are jobs:
// they dedup against concurrent submissions (including other sweeps'),
// their reports stay individually addressable under /v1/runs/{id}, and —
// through the split artifact store — cells differing only in detail-only
// knobs share one request-level simulation, so an N-cell grid costs
// distinct(RequestKey) request-level runs.

// SweepSpec is the wire form of POST /v1/sweeps: the base experiment every
// cell starts from, and one axis per swept parameter. The base's
// timeout_s applies to each cell individually.
type SweepSpec struct {
	Base JobSpec     `json:"base"`
	Axes []core.Axis `json:"axes"`
}

// SweepRow is one NDJSON line of a sweep's stream: a cell's outcome,
// emitted the moment the cell's job reaches a terminal state. Rows arrive
// in completion order, not grid order — Cell indexes into the expanded
// grid.
type SweepRow struct {
	Cell       int      `json:"cell"`
	Label      string   `json:"label"`
	Aliases    []string `json:"aliases,omitempty"`
	JobID      string   `json:"job_id"`
	State      State    `json:"state"`
	Error      string   `json:"error,omitempty"`
	JOPS       float64  `json:"jops,omitempty"`
	CPI        float64  `json:"cpi,omitempty"`
	Pass       int      `json:"pass,omitempty"`
	Total      int      `json:"total,omitempty"`
	RunningSec float64  `json:"running_sec,omitempty"`
}

// SweepJob is one submitted sweep: the expanded cells, the orchestrator's
// lifecycle, and the row stream. Unlike jobs, sweeps are not refcounted —
// DELETE /v1/sweeps/{id} cancels outright, which releases the sweep's
// reference on every in-flight cell job (cells shared with other clients
// keep running for them).
type SweepJob struct {
	ID    string
	Cells []core.Cell

	hub  *streamHub[SweepRow]
	done chan struct{}

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	err       error
	rows      []SweepRow
	submitted time.Time
	finished  time.Time
}

// SweepStatus is the wire form of a sweep's state (GET /v1/sweeps/{id}).
type SweepStatus struct {
	ID                  string  `json:"id"`
	State               State   `json:"state"`
	Error               string  `json:"error,omitempty"`
	Cells               int     `json:"cells"`
	DistinctRequestKeys int     `json:"distinct_request_keys"`
	RowsEmitted         int     `json:"rows_emitted"`
	RunningSec          float64 `json:"running_sec,omitempty"`
}

// sweepDoneEntry is one slot of the sweep eviction ring.
type sweepDoneEntry struct {
	sw *SweepJob
	at time.Time
}

// Status snapshots the sweep.
func (sw *SweepJob) Status(now time.Time) SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:                  sw.ID,
		State:               sw.state,
		Cells:               len(sw.Cells),
		DistinctRequestKeys: core.DistinctRequestKeys(sw.Cells),
		RowsEmitted:         len(sw.rows),
	}
	if sw.err != nil {
		st.Error = sw.err.Error()
	}
	switch {
	case terminal(sw.state):
		st.RunningSec = sw.finished.Sub(sw.submitted).Seconds()
	default:
		st.RunningSec = now.Sub(sw.submitted).Seconds()
	}
	return st
}

// State returns the sweep's lifecycle state.
func (sw *SweepJob) State() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// Err returns the failure cause, if any.
func (sw *SweepJob) Err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// Wait blocks until the sweep reaches a terminal state or ctx is
// cancelled.
func (sw *SweepJob) Wait(ctx context.Context) error {
	select {
	case <-sw.done:
		return sw.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Rows snapshots the rows emitted so far, in completion order.
func (sw *SweepJob) Rows() []SweepRow {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]SweepRow, len(sw.rows))
	copy(out, sw.rows)
	return out
}

// emitRow records and streams one cell outcome.
func (sw *SweepJob) emitRow(row SweepRow) {
	sw.mu.Lock()
	sw.rows = append(sw.rows, row)
	sw.mu.Unlock()
	sw.hub.emit(row)
}

// finish retires the sweep. Idempotent; the first caller wins.
func (sw *SweepJob) finish(now time.Time, state State, err error) bool {
	sw.mu.Lock()
	if terminal(sw.state) {
		sw.mu.Unlock()
		return false
	}
	sw.state = state
	sw.err = err
	sw.finished = now
	sw.mu.Unlock()
	sw.cancel()
	sw.hub.close()
	close(sw.done)
	return true
}

// sweepID derives a sweep identifier: a per-process sequence number plus a
// digest of the expanded cells. The "sw" prefix keeps the namespace
// disjoint from job IDs.
func sweepID(seq uint64, cells []core.Cell) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%d|%#v", seq, cells)))
	return "sw" + hex.EncodeToString(sum[:5])
}

// SubmitSweep expands the grid (grid errors surface as 400s at the HTTP
// layer), registers the sweep, and starts its orchestrator. timeout is the
// per-cell run deadline (0 = the service default).
func (s *Service) SubmitSweep(base core.RunConfig, axes []core.Axis, timeout time.Duration) (*SweepJob, error) {
	cells, err := core.Sweep{Base: base, Axes: axes}.Expand(s.opts.MaxSweepCells)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	s.sweepSeq++
	sw := &SweepJob{
		ID:     sweepID(s.sweepSeq, cells),
		Cells:  cells,
		hub:    newStreamHub[SweepRow](),
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
	sw.state = StateRunning
	sw.submitted = now
	s.sweeps[sw.ID] = sw
	s.sweepOrder = append(s.sweepOrder, sw)
	s.metrics.addSweepCells(uint64(len(cells)))
	s.mu.Unlock()
	go s.runSweep(sw, timeout)
	return sw, nil
}

// runSweep is the orchestrator: it submits every cell as a regular job
// (sharing the bounded worker pool and queue with direct /v1/runs
// submissions — a full queue is waited out, not errored), then emits one
// row per cell as its job retires. Cancelling the sweep releases the
// sweep's reference on every in-flight cell, so cells nobody else wants
// abort mid-window while cells shared with other clients keep running.
func (s *Service) runSweep(sw *SweepJob, timeout time.Duration) {
	var wg sync.WaitGroup
	var submitErr error
	for _, cell := range sw.Cells {
		if sw.ctx.Err() != nil {
			break
		}
		j, _, err := s.SubmitTimeout(cell.Cfg, timeout)
		for err == ErrQueueFull && sw.ctx.Err() == nil {
			// The pool is saturated; the queue drains as workers finish, so
			// poll briefly rather than bouncing the whole sweep.
			time.Sleep(50 * time.Millisecond)
			j, _, err = s.SubmitTimeout(cell.Cfg, timeout)
		}
		if err != nil {
			if sw.ctx.Err() == nil {
				submitErr = err
				sw.emitRow(SweepRow{Cell: cell.Index, Label: cell.Label, Aliases: cell.Aliases, State: StateFailed, Error: err.Error()})
			}
			continue
		}
		wg.Add(1)
		go func(cell core.Cell, j *Job) {
			defer wg.Done()
			// The sweep holds exactly one reference on the cell job; it is
			// released when the row is emitted or the sweep is cancelled.
			defer s.release(j, time.Now())
			select {
			case <-j.done:
				sw.emitRow(s.sweepRow(cell, j))
			case <-sw.ctx.Done():
				sw.emitRow(SweepRow{Cell: cell.Index, Label: cell.Label, Aliases: cell.Aliases, JobID: j.ID, State: StateCanceled, Error: "sweep canceled"})
			}
		}(cell, j)
	}
	wg.Wait()
	now := time.Now()
	var retired bool
	switch {
	case sw.ctx.Err() != nil:
		retired = sw.finish(now, StateCanceled, context.Canceled)
	case submitErr != nil:
		retired = sw.finish(now, StateFailed, submitErr)
	default:
		retired = sw.finish(now, StateDone, nil)
	}
	if retired {
		s.metrics.incSweeps(sw.State())
		s.noteSweepTerminal(sw, now)
	}
}

// sweepRow renders one terminal cell job as a stream row. Figure reads go
// through Ready() first: a test-stubbed or failed job must not trigger a
// fresh simulation here.
func (s *Service) sweepRow(cell core.Cell, j *Job) SweepRow {
	st := j.Status(time.Now())
	row := SweepRow{
		Cell:       cell.Index,
		Label:      cell.Label,
		Aliases:    cell.Aliases,
		JobID:      j.ID,
		State:      st.State,
		Error:      st.Error,
		RunningSec: st.RunningSec,
	}
	if st.State != StateDone {
		return row
	}
	if jsonBody, _, ok := j.Report(); ok {
		var body reportBody
		if json.Unmarshal(jsonBody, &body) == nil {
			row.Pass, row.Total = body.Pass, body.Total
		}
	}
	rlReady, detReady := j.Art.Ready()
	if rlReady {
		if rl, err := j.Art.RequestLevel(); err == nil {
			row.JOPS = rl.Fig2().JOPS
		}
	}
	if detReady {
		if d, err := j.Art.Detail(); err == nil {
			if f5, err := d.Fig5(); err == nil {
				row.CPI = f5.MeanCPI
			}
		}
	}
	return row
}

// Sweep looks a sweep up by ID.
func (s *Service) Sweep(id string) (*SweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(time.Now())
	sw, ok := s.sweeps[id]
	return sw, ok
}

// Sweeps snapshots all resident sweeps in submission order.
func (s *Service) Sweeps() []*SweepJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(time.Now())
	out := make([]*SweepJob, len(s.sweepOrder))
	copy(out, s.sweepOrder)
	return out
}

// CancelSweep aborts a sweep: undelivered cells are skipped, and the
// sweep's reference on every in-flight cell job is released (the last
// reference aborts the cell's run mid-window). Returns the post-cancel
// status.
func (s *Service) CancelSweep(id string) (SweepStatus, error) {
	now := time.Now()
	s.mu.Lock()
	s.sweepLocked(now)
	sw, ok := s.sweeps[id]
	if !ok {
		gone := s.tombs[id]
		s.mu.Unlock()
		if gone {
			return SweepStatus{}, ErrGone
		}
		return SweepStatus{}, ErrUnknownJob
	}
	s.mu.Unlock()
	sw.cancel()
	return sw.Status(now), nil
}

// noteSweepTerminal records a freshly-terminal sweep for TTL/capacity
// eviction.
func (s *Service) noteSweepTerminal(sw *SweepJob, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepRing = append(s.sweepRing, sweepDoneEntry{sw: sw, at: now})
	s.sweepLocked(now)
}

// sweepRingLocked evicts terminal sweeps past the TTL or over capacity;
// called from sweepLocked so sweep retention rides the same lazy ticks as
// job retention.
func (s *Service) sweepRingLocked(now time.Time) {
	for len(s.sweepRing) > 0 {
		e := s.sweepRing[0]
		if len(s.sweepRing) <= s.opts.DoneCap && now.Sub(e.at) < s.opts.DoneTTL {
			break
		}
		s.sweepRing = s.sweepRing[1:]
		s.evictSweepLocked(e.sw)
	}
}

// evictSweepLocked forgets one terminal sweep: store maps, listing order,
// and row history all go, and the ID leaves a tombstone for 410s.
func (s *Service) evictSweepLocked(sw *SweepJob) {
	if s.sweeps[sw.ID] == sw {
		delete(s.sweeps, sw.ID)
	}
	for i, o := range s.sweepOrder {
		if o == sw {
			s.sweepOrder = append(s.sweepOrder[:i], s.sweepOrder[i+1:]...)
			break
		}
	}
	sw.hub.release()
	if !s.tombs[sw.ID] {
		s.tombs[sw.ID] = true
		s.tombList = append(s.tombList, sw.ID)
		if len(s.tombList) > maxTombstones {
			delete(s.tombs, s.tombList[0])
			s.tombList = s.tombList[1:]
		}
	}
}

// Table renders the cross-cell comparison as a markdown table, rows in
// grid order. Cells without a row yet (sweep still running) are marked
// pending, so the table is meaningful at any point of the lifecycle.
func (sw *SweepJob) Table() string {
	rows := sw.Rows()
	byCell := map[int]SweepRow{}
	for _, r := range rows {
		byCell[r.Cell] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "| cell | parameters | state | JOPS | CPI | pass | job |\n")
	fmt.Fprintf(&b, "|-----:|------------|-------|-----:|----:|-----:|-----|\n")
	idx := make([]int, 0, len(sw.Cells))
	for _, c := range sw.Cells {
		idx = append(idx, c.Index)
	}
	sort.Ints(idx)
	for _, i := range idx {
		c := sw.Cells[i]
		r, ok := byCell[i]
		if !ok {
			fmt.Fprintf(&b, "| %d | %s | pending | | | | |\n", c.Index, c.Label)
			continue
		}
		jops, cpi, pass := "", "", ""
		if r.State == StateDone {
			jops = fmt.Sprintf("%.1f", r.JOPS)
			if r.CPI > 0 {
				cpi = fmt.Sprintf("%.3f", r.CPI)
			}
			pass = fmt.Sprintf("%d/%d", r.Pass, r.Total)
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %s | %s |\n", r.Cell, r.Label, r.State, jops, cpi, pass, r.JobID)
	}
	return b.String()
}
