package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// benchWarm holds the one warmed server shared by every sub-benchmark: a
// real (reduced quick-scale) run executed once, after which every request
// is a dedup hit served from the cached artifact — the pure server path.
var benchWarm struct {
	once sync.Once
	srv  *httptest.Server
	err  error
}

func warmServer(b *testing.B) *httptest.Server {
	b.Helper()
	benchWarm.once.Do(func() {
		s := New(Options{Workers: 2, QueueDepth: 8, RetryAfter: time.Second})
		benchWarm.srv = httptest.NewServer(s.Handler())
		resp, err := http.Post(benchWarm.srv.URL+"/v1/runs?wait=1", "application/json",
			strings.NewReader(e2eSpec))
		if err != nil {
			benchWarm.err = err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			benchWarm.err = fmt.Errorf("warm run: %s", resp.Status)
		}
	})
	if benchWarm.err != nil {
		b.Fatal(benchWarm.err)
	}
	return benchWarm.srv
}

// BenchmarkServeRuns measures server-path throughput: complete
// submit-and-read-report round trips per second against a warm cache, at
// client parallelism 1, 4 and 8. Every request after the warm-up is a
// dedup hit, so this isolates the serving layer (HTTP, queue admission,
// dedup, rendered-body serving) from simulation cost. `make bench-json`
// records it in BENCH_PR3.json as runs/s.
func BenchmarkServeRuns(b *testing.B) {
	for _, par := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			srv := warmServer(b)
			client := &http.Client{}
			var failed int64
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			var mu sync.Mutex
			next := 0
			for w := 0; w < par; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						mu.Lock()
						if next >= b.N {
							mu.Unlock()
							return
						}
						next++
						mu.Unlock()
						resp, err := client.Post(srv.URL+"/v1/runs?wait=1", "application/json",
							strings.NewReader(e2eSpec))
						if err != nil {
							mu.Lock()
							failed++
							mu.Unlock()
							continue
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			if failed > 0 {
				b.Fatalf("%d requests failed", failed)
			}
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "runs/s")
			}
		})
	}
}
