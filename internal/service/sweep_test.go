package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jasworkload/internal/core"
)

// sweepAxes is a 2x2 page-size x detail-frac grid: four cells, one
// distinct RequestKey (the quick heap is a 16M multiple).
func sweepAxes() []core.Axis {
	return []core.Axis{
		{Param: "heap_page", Values: []any{"4K", "16M"}},
		{Param: "detail_frac", Values: []any{0.01, 0.02}},
	}
}

// TestSweepRunsAndStreams: a stub-runner sweep fans its cells across the
// worker pool, emits one row per cell, retires done, and serves the row
// stream with replay plus a terminal line.
func TestSweepRunsAndStreams(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 8})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		return []byte(`{"pass":3,"total":5}` + "\n"), []byte("| md |\n"), nil
	}
	sw, err := s.SubmitSweep(testCfg(801), sweepAxes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := sw.Status(time.Now()); st.State != StateDone || st.Cells != 4 || st.RowsEmitted != 4 {
		t.Fatalf("sweep status = %+v, want done with 4 cells and 4 rows", st)
	}
	rows := sw.Rows()
	seen := map[int]bool{}
	for _, r := range rows {
		if r.State != StateDone {
			t.Fatalf("cell %d state = %s: %s", r.Cell, r.State, r.Error)
		}
		if r.Pass != 3 || r.Total != 5 {
			t.Fatalf("cell %d pass/total = %d/%d, want 3/5 (report body not parsed)", r.Cell, r.Pass, r.Total)
		}
		seen[r.Cell] = true
	}
	if len(seen) != 4 {
		t.Fatalf("distinct cells in rows = %d, want 4", len(seen))
	}

	// The stream replays all rows and ends with a terminal line.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + sw.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 5 {
		t.Fatalf("stream lines = %d, want 4 rows + terminal", len(lines))
	}
	var fin struct {
		Done  bool  `json:"done"`
		State State `json:"state"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &fin); err != nil || !fin.Done || fin.State != StateDone {
		t.Fatalf("terminal line = %q (err %v)", lines[4], err)
	}

	// The comparison table has one row per cell.
	resp2, err := http.Get(srv.URL + "/v1/sweeps/" + sw.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var table strings.Builder
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		table.WriteString(sc2.Text() + "\n")
	}
	for _, want := range []string{"heap_page=4K detail_frac=0.01", "heap_page=16M detail_frac=0.02", "3/5"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, table.String())
		}
	}
}

// TestSweepDuplicateCellsDedup: grid points that canonicalize identically
// fold onto one cell and therefore one job.
func TestSweepDuplicateCellsDedup(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		return []byte("{}\n"), []byte("| md |\n"), nil
	}
	sw, err := s.SubmitSweep(testCfg(802), []core.Axis{
		{Param: "heap_page", Values: []any{"4K", "4k", "16M"}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (4K/4k folded)", len(sw.Cells))
	}
	if jobs := s.Jobs(); len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (duplicate grid points share one job)", len(jobs))
	}
}

// TestSweepValidation: grid errors reject at submission (HTTP 400), and
// unknown SweepSpec fields fail strict decoding.
func TestSweepValidation(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4, MaxSweepCells: 8})
	s.runReport = func(ctx context.Context, j *Job) ([]byte, []byte, error) {
		return []byte("{}\n"), []byte("| md |\n"), nil
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			out.WriteString(sc.Text())
		}
		return resp.StatusCode, out.String()
	}

	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown axis param", `{"base":{"scale":"quick"},"axes":[{"param":"heap_gb","values":[1]}]}`, "unknown parameter"},
		{"unknown spec field", `{"base":{"scale":"quick"},"axis":[{"param":"seed","values":[1]}]}`, "unknown field"},
		{"unknown base field", `{"base":{"scale":"quick","heap_gb":1},"axes":[{"param":"seed","values":[1]}]}`, "unknown field"},
		{"bad base scale", `{"base":{"scale":"huge"},"axes":[{"param":"seed","values":[1]}]}`, "unknown scale"},
		{"no axes", `{"base":{"scale":"quick"},"axes":[]}`, "no axes"},
		{"over cell cap", `{"base":{"scale":"quick"},"axes":[{"param":"seed","values":[1,2,3]},{"param":"ir","values":[10,20,30]}]}`, "more than 8 cells"},
	}
	for _, tc := range cases {
		code, body := post(tc.body)
		if code != http.StatusBadRequest || !strings.Contains(body, tc.want) {
			t.Errorf("%s: code=%d body=%s, want 400 with %q", tc.name, code, body, tc.want)
		}
	}
}

// TestSweepCancelReleasesCells: cancelling an in-flight sweep releases the
// sweep's reference on every cell job — cells nobody else holds abort,
// and the sweep retires canceled with one row per submitted cell.
func TestSweepCancelReleasesCells(t *testing.T) {
	s, started, release := blockingService(t, 1, 8)
	defer close(release)
	sw, err := s.SubmitSweep(testCfg(803), sweepAxes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	first := waitStart(t, started) // one cell running, the rest queued

	if _, err := s.CancelSweep(sw.ID); err != nil {
		t.Fatal(err)
	}
	if err := sw.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep wait after cancel: %v", err)
	}
	if st := sw.State(); st != StateCanceled {
		t.Fatalf("sweep state = %s, want canceled", st)
	}
	// The running cell was aborted (the sweep held its only reference) and
	// every queued cell retired without starting.
	if err := first.Wait(context.Background()); !isCancellation(err) {
		t.Fatalf("running cell after sweep cancel: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for _, j := range s.Jobs() {
		for !terminal(j.State()) {
			select {
			case <-deadline:
				t.Fatalf("cell job %s never retired after sweep cancel (state %s)", j.ID, j.State())
			case <-time.After(10 * time.Millisecond):
			}
		}
		if st := j.State(); st != StateCanceled {
			t.Fatalf("cell job %s state = %s, want canceled", j.ID, st)
		}
		if got := j.Status(time.Now()).Clients; got != 0 {
			t.Fatalf("cell job %s still holds %d clients after sweep cancel", j.ID, got)
		}
	}
	// A second cancel of the already-terminal sweep is a no-op lookup.
	if _, err := s.CancelSweep(sw.ID); err != nil {
		t.Fatalf("second cancel: %v", err)
	}
}

// TestSweepExternalClientKeepsCell: a cell shared with a direct /v1/runs
// client survives the sweep's cancellation — the client's reference keeps
// it running.
func TestSweepExternalClientKeepsCell(t *testing.T) {
	s, started, release := blockingService(t, 2, 8)
	sw, err := s.SubmitSweep(testCfg(804), []core.Axis{
		{Param: "detail_frac", Values: []any{0.01, 0.02}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := waitStart(t, started)
	// An external client submits the same config the running cell has.
	ext, dedup, err := s.Submit(first.Cfg)
	if err != nil || !dedup || ext != first {
		t.Fatalf("external dedup submit: job=%p dedup=%v err=%v", ext, dedup, err)
	}
	if _, err := s.CancelSweep(sw.ID); err != nil {
		t.Fatal(err)
	}
	if err := sw.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep wait: %v", err)
	}
	// The shared cell keeps running for the external client.
	if st := ext.State(); terminal(st) {
		t.Fatalf("externally-held cell retired by sweep cancel: %s", st)
	}
	close(release)
	if err := ext.Wait(context.Background()); err != nil {
		t.Fatalf("externally-held cell failed: %v", err)
	}
}

// TestSweepEndToEndSharesRequestLevel is the tentpole's service-level
// proof with real simulations: a 4-cell page-size x detail-frac grid
// executes exactly one request-level simulation (the cells' RequestKeys
// coincide) and four detail simulations.
func TestSweepEndToEndSharesRequestLevel(t *testing.T) {
	core.Flush()
	core.ResetSimCounts()
	defer core.Flush()
	s := New(Options{Workers: 2, QueueDepth: 8})
	cfg := testCfg(805)
	cfg.DurationMS = 8_000
	cfg.RampMS = 2_000
	sw, err := s.SubmitSweep(cfg, sweepAxes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, r := range sw.Rows() {
		if r.State != StateDone {
			t.Fatalf("cell %d (%s) state = %s: %s", r.Cell, r.Label, r.State, r.Error)
		}
		if r.JOPS <= 0 {
			t.Fatalf("cell %d JOPS = %v, want > 0", r.Cell, r.JOPS)
		}
	}
	sims := core.SimCounts()
	if sims["request-level"] != 1 {
		t.Errorf("request-level simulations = %d, want 1 (4 cells, 1 RequestKey)", sims["request-level"])
	}
	if sims["detail"] != 4 {
		t.Errorf("detail simulations = %d, want 4 (one per cell)", sims["detail"])
	}
	// All four cells' rows report identical JOPS: one shared run.
	rows := sw.Rows()
	for _, r := range rows[1:] {
		if r.JOPS != rows[0].JOPS {
			t.Errorf("cell %d JOPS %v != cell %d JOPS %v (shared run must agree)", r.Cell, r.JOPS, rows[0].Cell, rows[0].JOPS)
		}
	}
}
