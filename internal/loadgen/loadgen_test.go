package loadgen

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testCfg mirrors the jas2004 pack mix without importing it: loadgen is
// pack-agnostic and sees only rates and class names.
func testCfg(ir int, seed int64) SourceConfig {
	return SourceConfig{
		IR:         ir,
		Rates:      []float64{0.25, 0.25, 0.50, 0.60},
		ClassNames: []string{"NewOrder", "Browse", "Manage", "WorkOrder"},
		Seed:       seed,
	}
}

func mustParse(t *testing.T, raw string) *Spec {
	t.Helper()
	s, err := Parse([]byte(raw))
	if err != nil {
		t.Fatalf("Parse(%s): %v", raw, err)
	}
	return s
}

func mustSource(t *testing.T, raw string, cfg SourceConfig) *Source {
	t.Helper()
	src, err := mustParse(t, raw).NewSource(cfg)
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	return src
}

const steadySpec = `{"version":1,"cohorts":[{"name":"all"}]}`

func TestParseRejects(t *testing.T) {
	bad := []struct{ name, raw string }{
		{"empty", `{}`},
		{"version", `{"version":2,"cohorts":[{"name":"a"}]}`},
		{"unknown field", `{"version":1,"cohorts":[{"name":"a","typo":1}]}`},
		{"unknown process field", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"steady","typo":1}}]}`},
		{"both cohorts and trace", `{"version":1,"cohorts":[{"name":"a"}],"trace":{"window_ms":1000,"windows":[[]]}}`},
		{"nameless cohort", `{"version":1,"cohorts":[{"share":1}]}`},
		{"duplicate cohort", `{"version":1,"cohorts":[{"name":"a"},{"name":"a"}]}`},
		{"partial shares", `{"version":1,"cohorts":[{"name":"a","share":0.5},{"name":"b"}]}`},
		{"negative share", `{"version":1,"cohorts":[{"name":"a","share":-1}]}`},
		{"zero mix weight", `{"version":1,"cohorts":[{"name":"a","mix":{"Browse":0}}]}`},
		{"unknown kind", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"chaos"}}]}`},
		{"burst missing params", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst"}}]}`},
		{"burst factor under 1", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":500,"off_ms":500,"factor":0.5}}]}`},
		{"burst factor over limit", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":500,"off_ms":500,"factor":3}}]}`},
		{"cross-kind params", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"ramp","steps":4,"step_ms":1000,"target_factor":2,"factor":3}}]}`},
		{"steady with params", `{"version":1,"cohorts":[{"name":"a","process":{"on_ms":100}}]}`},
		{"ramp zero steps", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"ramp","step_ms":1000,"target_factor":2}}]}`},
		{"sweep amplitude over 1", `{"version":1,"cohorts":[{"name":"a","process":{"kind":"sweep","period_ms":60000,"amplitude":1.5}}]}`},
		{"trace no windows", `{"version":1,"trace":{"window_ms":1000,"windows":[]}}`},
		{"trace offset outside window", `{"version":1,"trace":{"window_ms":1000,"windows":[[[0,1000]]]}}`},
		{"trace fractional class", `{"version":1,"trace":{"window_ms":1000,"windows":[[[0.5,10]]]}}`},
		{"trace unsorted window", `{"version":1,"trace":{"window_ms":1000,"windows":[[[0,20],[0,10]]]}}`},
		{"trailing data", steadySpec + `{}`},
	}
	for _, tc := range bad {
		if _, err := Parse([]byte(tc.raw)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.raw)
		}
	}
}

func TestCanonicalMaterializesDefaults(t *testing.T) {
	implicit := mustParse(t, `{"version":1,"cohorts":[{"name":"a"},{"name":"b"}]}`)
	explicit := mustParse(t, `{"version":1,"cohorts":[
		{"name":"a","seed_lane":1,"process":{"kind":"steady"}},
		{"name":"b","seed_lane":2}]}`)
	if implicit.Canonical() != explicit.Canonical() {
		t.Fatalf("default materialization differs:\n%s\n%s", implicit.Canonical(), explicit.Canonical())
	}
	// Canonicalization is idempotent: canonical of canonical is itself.
	c := implicit.Canonical()
	again, err := CanonicalString(c)
	if err != nil || again != c {
		t.Fatalf("canonical not a fixed point: %v / %s vs %s", err, again, c)
	}
	// Distinct shapes stay distinct.
	burst := mustParse(t, `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":500,"off_ms":500,"factor":1.5}},{"name":"b"}]}`)
	if burst.Canonical() == implicit.Canonical() {
		t.Fatal("burst and steady specs coalesced")
	}
}

func TestCheckClasses(t *testing.T) {
	names := []string{"NewOrder", "Browse"}
	s := mustParse(t, `{"version":1,"cohorts":[{"name":"a","mix":{"Browse":2}}]}`)
	if err := s.CheckClasses(names); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	s = mustParse(t, `{"version":1,"cohorts":[{"name":"a","mix":{"Nope":2}}]}`)
	if err := s.CheckClasses(names); err == nil {
		t.Fatal("unknown mix class accepted")
	}
	s = mustParse(t, `{"version":1,"trace":{"window_ms":1000,"windows":[[[5,10]]]}}`)
	if err := s.CheckClasses(names); err == nil {
		t.Fatal("out-of-range trace class accepted")
	}
}

func TestSummary(t *testing.T) {
	s := mustParse(t, `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":500,"off_ms":500,"factor":1.5}},{"name":"b"}]}`)
	if got := s.Summary(); got != "2 cohorts (burst, steady)" {
		t.Fatalf("Summary = %q", got)
	}
	s = mustParse(t, `{"version":1,"trace":{"window_ms":1000,"windows":[[],[]]}}`)
	if got := s.Summary(); got != "trace (2 windows)" {
		t.Fatalf("trace Summary = %q", got)
	}
	if got := SummaryString(""); got != "" {
		t.Fatalf("empty SummaryString = %q", got)
	}
	if got := SummaryString("not json"); got != "invalid" {
		t.Fatalf("invalid SummaryString = %q", got)
	}
}

// windowCounts runs the source for n windows and returns per-window
// arrival totals.
func windowCounts(src *Source, n int) []float64 {
	out := make([]float64, n)
	for w := 0; w < n; w++ {
		out[w] = float64(len(src.Window(1000)))
	}
	return out
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

// The steady process must reproduce the legacy offered load: IR x sum(mix)
// requests/second, Poisson (index of dispersion ~ 1).
func TestSteadyMean(t *testing.T) {
	src := mustSource(t, steadySpec, testCfg(40, 1))
	counts := windowCounts(src, 600)
	mean, variance := meanVar(counts)
	want := 40 * 1.6
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("steady mean %.2f req/window, want ~%.1f", mean, want)
	}
	if iod := variance / mean; iod < 0.8 || iod > 1.25 {
		t.Fatalf("steady index of dispersion %.2f, want ~1", iod)
	}
}

// Burst mode must preserve the long-run mean while inflating the window
// count variance: index of dispersion well above 1.
func TestBurstDispersion(t *testing.T) {
	const burst = `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":3000,"off_ms":3000,"factor":1.9}}]}`
	src := mustSource(t, burst, testCfg(40, 1))
	counts := windowCounts(src, 1200)
	mean, variance := meanVar(counts)
	want := 40 * 1.6
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("burst long-run mean %.2f req/window, want ~%.1f (mean-preserving)", mean, want)
	}
	if iod := variance / mean; iod < 2 {
		t.Fatalf("burst index of dispersion %.2f, want > 2", iod)
	}
}

// Ramp mode: the mean rate of each step plateau must be monotone from
// start to target.
func TestRampMonotone(t *testing.T) {
	const ramp = `{"version":1,"cohorts":[{"name":"a","process":{"kind":"ramp","start_factor":0.25,"target_factor":2,"steps":4,"step_ms":60000}}]}`
	src := mustSource(t, ramp, testCfg(40, 1))
	const stepWindows = 60
	var stepMeans []float64
	for step := 0; step < 4; step++ {
		mean, _ := meanVar(windowCounts(src, stepWindows))
		stepMeans = append(stepMeans, mean)
	}
	for i := 1; i < len(stepMeans); i++ {
		if stepMeans[i] <= stepMeans[i-1] {
			t.Fatalf("ramp step means not monotone: %v", stepMeans)
		}
	}
	base := 40 * 1.6
	if first := stepMeans[0]; math.Abs(first-0.25*base) > 0.25*base*0.15 {
		t.Fatalf("ramp first step mean %.2f, want ~%.1f", first, 0.25*base)
	}
	if last := stepMeans[3]; math.Abs(last-2*base) > 2*base*0.1 {
		t.Fatalf("ramp last step mean %.2f, want ~%.1f", last, 2*base)
	}
	// Past the ramp the rate holds at target.
	mean, _ := meanVar(windowCounts(src, stepWindows))
	if math.Abs(mean-2*base) > 2*base*0.1 {
		t.Fatalf("post-ramp mean %.2f, want ~%.1f", mean, 2*base)
	}
}

// Sweep mode: sinusoid peaks near 1+amplitude and troughs near
// 1-amplitude, mean preserved over whole periods.
func TestSweepShape(t *testing.T) {
	const sweep = `{"version":1,"cohorts":[{"name":"a","process":{"kind":"sweep","period_ms":120000,"amplitude":0.5}}]}`
	src := mustSource(t, sweep, testCfg(100, 1))
	counts := windowCounts(src, 480) // 4 whole periods of 120 windows
	mean, _ := meanVar(counts)
	base := 100 * 1.6
	if math.Abs(mean-base) > base*0.05 {
		t.Fatalf("sweep mean %.2f req/window, want ~%.0f", mean, base)
	}
	// Windows 25..35 straddle the first peak (t/period ~ 0.25), windows
	// 85..95 the first trough (~0.75).
	peak, _ := meanVar(counts[25:35])
	trough, _ := meanVar(counts[85:95])
	if peak < base*1.3 || trough > base*0.7 {
		t.Fatalf("sweep peak %.1f / trough %.1f around base %.0f, want ~1.5x / ~0.5x", peak, trough, base)
	}
}

// Cohort shares split the offered load; a mix override re-weights classes
// inside its cohort only.
func TestCohortShareAndMix(t *testing.T) {
	const spec = `{"version":1,"cohorts":[
		{"name":"browsers","share":0.75,"mix":{"NewOrder":0,"Browse":0,"Manage":2,"WorkOrder":0.00001}},
		{"name":"batch","share":0.25}]}`
	// Mix zero is invalid; use per-class checks on a simpler pair instead.
	const valid = `{"version":1,"cohorts":[
		{"name":"browsers","share":0.75,"mix":{"Manage":2}},
		{"name":"batch","share":0.25}]}`
	if _, err := Parse([]byte(spec)); err == nil {
		t.Fatal("zero mix weight accepted")
	}
	src := mustSource(t, valid, testCfg(40, 1))
	perClass := make([]float64, 4)
	const windows = 1200
	for w := 0; w < windows; w++ {
		for _, a := range src.Window(1000) {
			perClass[a.Class]++
		}
	}
	// Manage (class 2, base 0.50/IR): browsers contribute 0.75*2x, batch
	// 0.25*1x => 1.75x base. Browse (class 1, base 0.25/IR) stays 1x.
	wantManage := 40 * 0.50 * 1.75 * windows
	wantBrowse := 40 * 0.25 * 1.0 * windows
	if got := perClass[2]; math.Abs(got-wantManage) > wantManage*0.05 {
		t.Fatalf("Manage arrivals %v, want ~%v", got, wantManage)
	}
	if got := perClass[1]; math.Abs(got-wantBrowse) > wantBrowse*0.05 {
		t.Fatalf("Browse arrivals %v, want ~%v", got, wantBrowse)
	}
}

// Source output must satisfy the driver.Source contract: sorted offsets
// inside the window, classes in range.
func TestSourceSortedAndInRange(t *testing.T) {
	const spec = `{"version":1,"cohorts":[
		{"name":"a","process":{"kind":"burst","on_ms":700,"off_ms":1300,"factor":2}},
		{"name":"b","process":{"kind":"sweep","period_ms":30000,"amplitude":1}}]}`
	src := mustSource(t, spec, testCfg(100, 3))
	for w := 0; w < 60; w++ {
		arr := src.Window(1000)
		for i, a := range arr {
			if a.Class < 0 || a.Class >= 4 {
				t.Fatalf("class %d out of range", a.Class)
			}
			if a.OffsetMS < 0 || a.OffsetMS >= 1000 {
				t.Fatalf("offset %v outside window", a.OffsetMS)
			}
			if i > 0 && arr[i].OffsetMS < arr[i-1].OffsetMS {
				t.Fatal("arrivals not sorted")
			}
		}
	}
}

// Same spec + same seed => byte-identical trace; different seed lanes or
// run seeds diverge.
func TestTraceDeterminism(t *testing.T) {
	spec := mustParse(t, `{"version":1,"cohorts":[{"name":"a","process":{"kind":"burst","on_ms":2000,"off_ms":1000,"factor":1.4}}]}`)
	render := func(seed int64) string {
		tr, err := Record(spec, testCfg(40, seed), 1000, 12)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render(7) != render(7) {
		t.Fatal("same spec+seed produced different traces")
	}
	if render(7) == render(8) {
		t.Fatal("different seeds produced identical traces")
	}
}

// The full round trip: record -> serialize -> parse -> replay as a trace
// spec -> re-record -> byte-identical file.
func TestTraceRoundTrip(t *testing.T) {
	spec := mustParse(t, `{"version":1,"cohorts":[
		{"name":"a","share":0.6,"process":{"kind":"ramp","start_factor":0.5,"target_factor":1.5,"steps":3,"step_ms":4000}},
		{"name":"b","share":0.4}]}`)
	cfg := testCfg(40, 5)
	tr, err := Record(spec, cfg, 1000, 12)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := WriteTrace(&first, tr); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	// Replaying the parsed trace must reproduce the recorded arrivals...
	src, err := parsed.Spec().NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CheckRun(1000, 12); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 12; w++ {
		arr := src.Window(1000)
		if len(arr) != len(tr.Windows[w]) {
			t.Fatalf("window %d: replay %d arrivals, recorded %d", w, len(arr), len(tr.Windows[w]))
		}
		for i, a := range arr {
			if a.Class != int(tr.Windows[w][i][0]) || a.OffsetMS != tr.Windows[w][i][1] {
				t.Fatalf("window %d arrival %d: replay %+v vs recorded %v", w, i, a, tr.Windows[w][i])
			}
		}
	}
	// ...and re-recording the replayed trace must re-emit the same bytes.
	again, err := Record(parsed.Spec(), cfg, 1000, 12)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteTrace(&second, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("record -> replay -> re-record is not byte-identical")
	}
}

func TestTraceReadRejects(t *testing.T) {
	bad := []struct{ name, raw string }{
		{"bad version", `{"trace":"v2","window_ms":1000,"windows":0}`},
		{"unknown header field", `{"trace":"v1","window_ms":1000,"windows":0,"spec":{}}`},
		{"missing window line", `{"trace":"v1","window_ms":1000,"windows":1}`},
		{"mislabeled window", "{\"trace\":\"v1\",\"window_ms\":1000,\"windows\":1}\n{\"w\":3,\"a\":[]}"},
		{"trailing line", "{\"trace\":\"v1\",\"window_ms\":1000,\"windows\":1}\n{\"w\":0,\"a\":[]}\n{\"w\":1,\"a\":[]}"},
		{"invalid point", "{\"trace\":\"v1\",\"window_ms\":1000,\"windows\":1}\n{\"w\":0,\"a\":[[0,2000]]}"},
	}
	for _, tc := range bad {
		if _, err := ReadTrace(strings.NewReader(tc.raw)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// A trace that is shorter than the run it is asked to serve fails
// CheckRun; window size mismatches fail too.
func TestTraceCheckRun(t *testing.T) {
	spec := mustParse(t, `{"version":1,"trace":{"window_ms":1000,"windows":[[],[]]}}`)
	src, err := spec.NewSource(testCfg(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CheckRun(1000, 2); err != nil {
		t.Fatalf("exact-length trace rejected: %v", err)
	}
	if err := src.CheckRun(1000, 3); err == nil {
		t.Fatal("short trace accepted")
	}
	if err := src.CheckRun(500, 2); err == nil {
		t.Fatal("window size mismatch accepted")
	}
}
