// Package loadgen is the spec-driven workload generator: it turns a
// declarative, versioned arrival Spec into the per-window
// driver.Arrival streams the simulation engine injects. A Spec declares
// client cohorts — each with a rate share, an optional class-mix
// override, a seed lane, and an arrival process (steady Poisson, on/off
// burst, stepped ramp, diurnal sweep) — or an inline recorded trace
// that replays a captured load byte-deterministically.
//
// The determinism contract: a Source is a pure function of
// (Spec, SourceConfig) — it owns its RNG lanes and never observes SUT
// state, so generating arrivals standalone (trace recording) and
// generating them inside a live run produce identical streams, and the
// same spec + seed always yields a byte-identical trace.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// SpecVersion is the only arrival-spec schema version this build accepts.
const SpecVersion = 1

// MaxCohorts bounds a spec; far above any sensible scenario, it exists so
// a hostile JobSpec cannot make the daemon build an unbounded source.
const MaxCohorts = 64

// Spec is the declarative arrival specification. Exactly one of Cohorts
// or Trace must be set. The zero/empty spec is not valid here: an empty
// Arrival string at the config layer means "legacy driver loop" and never
// reaches Parse.
type Spec struct {
	Version int        `json:"version"`
	Cohorts []Cohort   `json:"cohorts,omitempty"`
	Trace   *TraceSpec `json:"trace,omitempty"`
}

// Cohort is one client population: a share of the total offered load,
// an optional per-class mix multiplier, an arrival process, and a seed
// lane decorrelating its RNG stream from the other cohorts'.
type Cohort struct {
	Name string `json:"name"`
	// Share is this cohort's fraction of the offered load. Either every
	// cohort sets a positive share (normalized to sum 1) or none does
	// (equal split).
	Share float64 `json:"share,omitempty"`
	// SeedLane decorrelates the cohort's RNG lane; 0 means the default
	// lane (cohort index + 1), so an explicit lane equal to the default
	// canonicalizes identically to leaving it unset.
	SeedLane int64 `json:"seed_lane,omitempty"`
	// Mix multiplies the pack's per-class rate inside this cohort, keyed
	// by class name; absent classes keep multiplier 1.
	Mix     map[string]float64 `json:"mix,omitempty"`
	Process Process            `json:"process"`
}

// Process selects the cohort's arrival process and its parameters. The
// struct is flat so strict decoding catches typos; Validate rejects
// parameters that do not belong to the selected kind, keeping canonical
// forms unambiguous.
type Process struct {
	// Kind is one of "steady" (default), "burst", "ramp", "sweep".
	Kind string `json:"kind,omitempty"`

	// burst: mean-preserving on/off modulation with fixed sojourns — a
	// two-state MMPP with deterministic phase. Rate is Factor x base
	// during the on phase; the off-phase rate is derived so the long-run
	// average stays at the base rate.
	OnMS   float64 `json:"on_ms,omitempty"`
	OffMS  float64 `json:"off_ms,omitempty"`
	Factor float64 `json:"factor,omitempty"`

	// ramp: rate multiplier steps from StartFactor to TargetFactor over
	// Steps plateaus of StepMS each, then holds at TargetFactor.
	StartFactor  float64 `json:"start_factor,omitempty"`
	TargetFactor float64 `json:"target_factor,omitempty"`
	Steps        int     `json:"steps,omitempty"`
	StepMS       float64 `json:"step_ms,omitempty"`

	// sweep: diurnal sinusoid, multiplier 1 + Amplitude*sin(2pi*(t/Period
	// + Phase)), evaluated at each window midpoint.
	PeriodMS  float64 `json:"period_ms,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Phase     float64 `json:"phase,omitempty"`
}

// TraceSpec inlines a recorded trace: per-window arrival points replayed
// verbatim. Windows are WindowMS long; point offsets are window-relative.
type TraceSpec struct {
	WindowMS float64        `json:"window_ms"`
	Windows  [][]TracePoint `json:"windows"`
}

// TracePoint is one arrival as [class, offsetMS-within-window]. The
// two-element array form keeps traces compact and float64 round-trips
// byte-exactly through encoding/json.
type TracePoint [2]float64

// Parse strictly decodes and validates a spec. Unknown fields anywhere in
// the document are errors, as are parameters that don't belong to the
// selected process kind.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("arrival spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("arrival spec: trailing data after JSON document")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("arrival spec: version %d unsupported (want %d)", s.Version, SpecVersion)
	}
	if (len(s.Cohorts) == 0) == (s.Trace == nil) {
		return fmt.Errorf("arrival spec: exactly one of cohorts or trace must be set")
	}
	if s.Trace != nil {
		return s.Trace.validate()
	}
	if len(s.Cohorts) > MaxCohorts {
		return fmt.Errorf("arrival spec: %d cohorts exceeds limit %d", len(s.Cohorts), MaxCohorts)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	shared := 0
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			return fmt.Errorf("arrival spec: cohort %d: missing name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("arrival spec: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Share < 0 || math.IsNaN(c.Share) || math.IsInf(c.Share, 0) {
			return fmt.Errorf("arrival spec: cohort %q: bad share %v", c.Name, c.Share)
		}
		if c.Share > 0 {
			shared++
		}
		if c.SeedLane < 0 {
			return fmt.Errorf("arrival spec: cohort %q: negative seed_lane", c.Name)
		}
		for class, w := range c.Mix {
			if !(w > 0) || math.IsInf(w, 0) {
				return fmt.Errorf("arrival spec: cohort %q: mix[%q] = %v, want > 0", c.Name, class, w)
			}
		}
		if err := c.Process.validate(); err != nil {
			return fmt.Errorf("arrival spec: cohort %q: %w", c.Name, err)
		}
	}
	if shared != 0 && shared != len(s.Cohorts) {
		return fmt.Errorf("arrival spec: set share on every cohort or on none")
	}
	return nil
}

func (p *Process) validate() error {
	// Reject parameters that belong to a different kind: rebuild the
	// process from only the selected kind's fields and require equality,
	// so e.g. a burst factor on a ramp cohort is an error, not silence.
	n := Process{Kind: p.Kind}
	switch p.Kind {
	case "", "steady":
	case "burst":
		n.OnMS, n.OffMS, n.Factor = p.OnMS, p.OffMS, p.Factor
		if !(p.OnMS > 0) || !(p.OffMS > 0) {
			return fmt.Errorf("burst: on_ms and off_ms must be > 0")
		}
		if !(p.Factor >= 1) {
			return fmt.Errorf("burst: factor %v, want >= 1", p.Factor)
		}
		if maxF := (p.OnMS + p.OffMS) / p.OnMS; p.Factor > maxF {
			return fmt.Errorf("burst: factor %v exceeds mean-preserving limit %.4g for on/off %v/%v",
				p.Factor, maxF, p.OnMS, p.OffMS)
		}
	case "ramp":
		n.StartFactor, n.TargetFactor, n.Steps, n.StepMS =
			p.StartFactor, p.TargetFactor, p.Steps, p.StepMS
		if p.Steps < 1 {
			return fmt.Errorf("ramp: steps %d, want >= 1", p.Steps)
		}
		if !(p.StepMS > 0) {
			return fmt.Errorf("ramp: step_ms must be > 0")
		}
		if p.StartFactor < 0 || !(p.TargetFactor > 0) {
			return fmt.Errorf("ramp: start_factor %v / target_factor %v, want start >= 0 and target > 0",
				p.StartFactor, p.TargetFactor)
		}
	case "sweep":
		n.PeriodMS, n.Amplitude, n.Phase = p.PeriodMS, p.Amplitude, p.Phase
		if !(p.PeriodMS > 0) {
			return fmt.Errorf("sweep: period_ms must be > 0")
		}
		if p.Amplitude < 0 || p.Amplitude > 1 {
			return fmt.Errorf("sweep: amplitude %v, want in [0, 1]", p.Amplitude)
		}
		if p.Phase < 0 || p.Phase >= 1 {
			return fmt.Errorf("sweep: phase %v, want in [0, 1)", p.Phase)
		}
	default:
		return fmt.Errorf("unknown process kind %q", p.Kind)
	}
	if n != *p {
		return fmt.Errorf("process kind %q given parameters of another kind", n.kindOrSteady())
	}
	return nil
}

func (p Process) kindOrSteady() string {
	if p.Kind == "" {
		return "steady"
	}
	return p.Kind
}

func (t *TraceSpec) validate() error {
	if !(t.WindowMS > 0) {
		return fmt.Errorf("arrival spec: trace: window_ms must be > 0")
	}
	if len(t.Windows) == 0 {
		return fmt.Errorf("arrival spec: trace: no windows")
	}
	for w, pts := range t.Windows {
		last := math.Inf(-1)
		for i, p := range pts {
			class, off := p[0], p[1]
			if class != math.Trunc(class) || class < 0 {
				return fmt.Errorf("arrival spec: trace window %d point %d: class %v not a non-negative integer", w, i, class)
			}
			if !(off >= 0) || off >= t.WindowMS {
				return fmt.Errorf("arrival spec: trace window %d point %d: offset %v outside [0, %v)", w, i, off, t.WindowMS)
			}
			if off < last {
				return fmt.Errorf("arrival spec: trace window %d: points not sorted by offset", w)
			}
			last = off
		}
	}
	return nil
}

// maxClass returns the largest class index in the trace, or -1 if empty.
func (t *TraceSpec) maxClass() int {
	max := -1
	for _, pts := range t.Windows {
		for _, p := range pts {
			if c := int(p[0]); c > max {
				max = c
			}
		}
	}
	return max
}

// CheckClasses validates the spec against a workload pack's class list:
// every mix key must name a pack class and every trace class index must
// be in range. It is the service-layer gate turning a mismatched
// spec/pack pair into a 400 instead of a silent mis-mapping.
func (s *Spec) CheckClasses(classNames []string) error {
	if s.Trace != nil {
		if max := s.Trace.maxClass(); max >= len(classNames) {
			return fmt.Errorf("arrival spec: trace class %d out of range for workload with %d classes", max, len(classNames))
		}
		return nil
	}
	known := make(map[string]bool, len(classNames))
	for _, n := range classNames {
		known[n] = true
	}
	for i := range s.Cohorts {
		for class := range s.Cohorts[i].Mix {
			if !known[class] {
				return fmt.Errorf("arrival spec: cohort %q: unknown class %q (workload classes: %s)",
					s.Cohorts[i].Name, class, strings.Join(classNames, ", "))
			}
		}
	}
	return nil
}

// Canonical returns the canonical JSON encoding of the spec: defaults
// materialized (steady kind, seed lanes), struct field order fixed, map
// keys sorted by encoding/json. Two specs with the same canonical string
// are the same load shape, which is what lets the job-ID hash and the
// artifact store dedup on it.
func (s *Spec) Canonical() string {
	c := *s
	if len(c.Cohorts) > 0 {
		c.Cohorts = make([]Cohort, len(s.Cohorts))
		copy(c.Cohorts, s.Cohorts)
		for i := range c.Cohorts {
			if c.Cohorts[i].Process.Kind == "" {
				c.Cohorts[i].Process.Kind = "steady"
			}
			if c.Cohorts[i].SeedLane == 0 {
				c.Cohorts[i].SeedLane = int64(i + 1)
			}
		}
	}
	b, err := json.Marshal(&c)
	if err != nil {
		// A validated spec always marshals; this is unreachable.
		panic(fmt.Sprintf("loadgen: canonical marshal: %v", err))
	}
	return string(b)
}

// CanonicalString parses raw spec JSON and returns its canonical form.
func CanonicalString(raw string) (string, error) {
	s, err := Parse([]byte(raw))
	if err != nil {
		return "", err
	}
	return s.Canonical(), nil
}

// Summary renders a one-line human description for job status listings,
// e.g. "2 cohorts (burst, steady)" or "trace (12 windows)".
func (s *Spec) Summary() string {
	if s.Trace != nil {
		return fmt.Sprintf("trace (%d windows)", len(s.Trace.Windows))
	}
	kinds := make([]string, 0, 4)
	seen := make(map[string]bool, 4)
	for i := range s.Cohorts {
		k := s.Cohorts[i].Process.kindOrSteady()
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	noun := "cohorts"
	if len(s.Cohorts) == 1 {
		noun = "cohort"
	}
	return fmt.Sprintf("%d %s (%s)", len(s.Cohorts), noun, strings.Join(kinds, ", "))
}

// SummaryString is Summary over raw spec JSON; it returns "" when the
// raw spec is empty and a best-effort label when it fails to parse.
func SummaryString(raw string) string {
	if raw == "" {
		return ""
	}
	s, err := Parse([]byte(raw))
	if err != nil {
		return "invalid"
	}
	return s.Summary()
}
