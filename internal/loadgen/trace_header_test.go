package loadgen

import (
	"strings"
	"testing"
)

// A malformed header must be rejected on its own, before any window lines
// are decoded — previously a non-positive window_ms slipped past the
// header checks, had every window line decoded, and only failed in the
// whole-trace validate() (or, worse, as a misleading per-window decode
// error when the body was short).
func TestTraceHeaderValidation(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		wantErr string // substring the error must carry
	}{
		{"zero window_ms", `{"trace":"v1","window_ms":0,"windows":2}`, "window_ms"},
		{"negative window_ms", `{"trace":"v1","window_ms":-1000,"windows":2}`, "window_ms"},
		{"fractional negative window_ms", `{"trace":"v1","window_ms":-0.5,"windows":0}`, "window_ms"},
		{"missing window_ms", `{"trace":"v1","windows":2}`, "window_ms"},
		{"string window_ms", `{"trace":"v1","window_ms":"1000","windows":2}`, "header"},
		{"out-of-range window_ms", `{"trace":"v1","window_ms":1e999,"windows":2}`, "header"},
		{"wrong version", `{"trace":"v0","window_ms":1000,"windows":2}`, "version"},
		{"negative windows", `{"trace":"v1","window_ms":1000,"windows":-1}`, "window count"},
		{"not json", `trace v1 1000 2`, "header"},
		{"empty input", ``, "header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.raw))
			if err == nil {
				t.Fatal("malformed header accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// The window_ms check fires immediately after the header decode: a header
// with window_ms 0 followed by garbage that would fail window decoding is
// reported as the header problem, not as a window-line error — proof the
// lines were never decoded.
func TestTraceHeaderRejectedBeforeWindows(t *testing.T) {
	raw := "{\"trace\":\"v1\",\"window_ms\":0,\"windows\":3}\nnot a window line\n"
	_, err := ReadTrace(strings.NewReader(raw))
	if err == nil {
		t.Fatal("accepted")
	}
	if strings.Contains(err.Error(), "window 0") {
		t.Fatalf("failure attributed to a window line, not the header: %v", err)
	}
	if !strings.Contains(err.Error(), "window_ms") {
		t.Fatalf("error %q does not name window_ms", err)
	}
}
