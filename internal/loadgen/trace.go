package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Trace v1 wire format: NDJSON. The first line is the header
//
//	{"trace":"v1","window_ms":1000,"windows":N}
//
// followed by exactly N window lines in order:
//
//	{"w":0,"a":[[class,offsetMS],...]}
//
// The header carries no provenance (no generating spec, no timestamps):
// a trace records only the load itself, which is what makes the
// record -> replay -> re-record round trip byte-identical — re-recording
// a replayed trace re-emits these exact bytes. Offsets are float64 and
// survive the JSON round trip exactly (encoding/json emits the shortest
// representation that parses back to the same value).

// TraceVersion is the trace wire-format version tag.
const TraceVersion = "v1"

type traceHeader struct {
	Trace    string  `json:"trace"`
	WindowMS float64 `json:"window_ms"`
	Windows  int     `json:"windows"`
}

type traceLine struct {
	W int          `json:"w"`
	A []TracePoint `json:"a"`
}

// WriteTrace serializes a trace in the v1 NDJSON format.
func WriteTrace(w io.Writer, t *TraceSpec) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Trace: TraceVersion, WindowMS: t.WindowMS, Windows: len(t.Windows)}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, pts := range t.Windows {
		if pts == nil {
			pts = []TracePoint{} // "a":[] rather than "a":null, so re-records are byte-stable
		}
		if err := enc.Encode(traceLine{W: i, A: pts}); err != nil {
			return fmt.Errorf("trace: write window %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses and validates a v1 NDJSON trace.
func ReadTrace(r io.Reader) (*TraceSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if h.Trace != TraceVersion {
		return nil, fmt.Errorf("trace: version %q unsupported (want %q)", h.Trace, TraceVersion)
	}
	if h.Windows < 0 {
		return nil, fmt.Errorf("trace: negative window count %d", h.Windows)
	}
	// Reject a bad window length here, before decoding any window lines:
	// deferring to the whole-trace validate() would read (and possibly
	// buffer) every line of an arbitrarily long trace first, and report the
	// failure as a confusing per-window decode error when the body is
	// malformed too. The comparison is written to also reject NaN.
	if !(h.WindowMS > 0) {
		return nil, fmt.Errorf("trace: header window_ms %v must be > 0", h.WindowMS)
	}
	t := &TraceSpec{WindowMS: h.WindowMS, Windows: make([][]TracePoint, 0, h.Windows)}
	for i := 0; i < h.Windows; i++ {
		var line traceLine
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("trace: window %d: %w", i, err)
		}
		if line.W != i {
			return nil, fmt.Errorf("trace: window line %d labeled w=%d", i, line.W)
		}
		pts := line.A
		if pts == nil {
			pts = []TracePoint{}
		}
		t.Windows = append(t.Windows, pts)
	}
	if dec.More() {
		return nil, fmt.Errorf("trace: trailing data after %d windows", h.Windows)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTrace is ReadTrace over a byte slice.
func ParseTrace(data []byte) (*TraceSpec, error) {
	return ReadTrace(bytes.NewReader(data))
}

// Spec wraps the trace as a replayable arrival spec, the form jasd and
// the canonical config carry it in.
func (t *TraceSpec) Spec() *Spec {
	return &Spec{Version: SpecVersion, Trace: t}
}

// Record generates a trace from the spec without running a simulation:
// sources are pure functions of (Spec, SourceConfig), so the standalone
// stream is identical to the one a live run would inject. Recording a
// trace spec replays it — that closure is what makes re-recording a
// recorded trace byte-identical.
func Record(s *Spec, cfg SourceConfig, windowMS float64, nWindows int) (*TraceSpec, error) {
	if nWindows <= 0 {
		return nil, fmt.Errorf("trace: record needs a positive window count, got %d", nWindows)
	}
	src, err := s.NewSource(cfg)
	if err != nil {
		return nil, err
	}
	if err := src.CheckRun(windowMS, nWindows); err != nil {
		return nil, err
	}
	t := &TraceSpec{WindowMS: windowMS, Windows: make([][]TracePoint, nWindows)}
	for w := 0; w < nWindows; w++ {
		arr := src.Window(windowMS)
		pts := make([]TracePoint, len(arr))
		for i, a := range arr {
			pts[i] = TracePoint{float64(a.Class), a.OffsetMS}
		}
		t.Windows[w] = pts
	}
	return t, nil
}
