package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"jasworkload/internal/driver"
)

// SourceConfig carries the run-side parameters a Spec is instantiated
// against: the injection rate and per-class base rates of the resolved
// workload pack, its class names (for mix resolution), and the run seed.
type SourceConfig struct {
	IR         int
	Rates      []float64
	ClassNames []string
	Seed       int64
}

// Source implements driver.Source: it produces the arrivals of
// consecutive windows from the spec, advancing an internal clock. It is
// deterministic for a fixed (Spec, SourceConfig): each cohort draws from
// its own seed lane, so adding or reordering cohorts never perturbs
// another cohort's stream.
type Source struct {
	windowIdx int
	nowMS     float64
	trace     *TraceSpec
	cohorts   []cohortState
}

type cohortState struct {
	proc  Process
	rng   *rand.Rand
	rates []float64 // effective per-second rate per class (share and mix applied)
}

// NewSource builds the generator for one run. The spec must already be
// validated (Parse) and class-checked (CheckClasses) against the pack the
// config's Rates/ClassNames come from.
func (s *Spec) NewSource(cfg SourceConfig) (*Source, error) {
	if cfg.IR <= 0 {
		return nil, fmt.Errorf("loadgen: bad injection rate %d", cfg.IR)
	}
	if len(cfg.Rates) != len(cfg.ClassNames) {
		return nil, fmt.Errorf("loadgen: %d rates vs %d class names", len(cfg.Rates), len(cfg.ClassNames))
	}
	if err := s.CheckClasses(cfg.ClassNames); err != nil {
		return nil, err
	}
	if s.Trace != nil {
		return &Source{trace: s.Trace}, nil
	}
	shares := make([]float64, len(s.Cohorts))
	var total float64
	for i := range s.Cohorts {
		shares[i] = s.Cohorts[i].Share
		total += shares[i]
	}
	if total == 0 { // no shares set: equal split
		for i := range shares {
			shares[i] = 1
		}
		total = float64(len(shares))
	}
	src := &Source{cohorts: make([]cohortState, len(s.Cohorts))}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		lane := c.SeedLane
		if lane == 0 {
			lane = int64(i + 1)
		}
		rates := make([]float64, len(cfg.Rates))
		for class, perIR := range cfg.Rates {
			w := 1.0
			if c.Mix != nil {
				if m, ok := c.Mix[cfg.ClassNames[class]]; ok {
					w = m
				}
			}
			rates[class] = float64(cfg.IR) * perIR * w * shares[i] / total
		}
		proc := c.Process
		if proc.Kind == "" {
			proc.Kind = "steady"
		}
		src.cohorts[i] = cohortState{
			proc:  proc,
			rng:   rand.New(rand.NewSource(laneSeed(cfg.Seed, lane))),
			rates: rates,
		}
	}
	return src, nil
}

// laneSeed mixes the run seed with a cohort lane through a splitmix64
// finalizer, giving each cohort an independent, reproducible RNG stream.
func laneSeed(seed, lane int64) int64 {
	z := uint64(seed) + uint64(lane)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// CheckRun validates the spec-independent run geometry: a trace must
// cover every window at the engine's window size; generative specs have
// nothing to check.
func (s *Source) CheckRun(windowMS float64, nWindows int) error {
	if s.trace == nil {
		return nil
	}
	if s.trace.WindowMS != windowMS {
		return fmt.Errorf("loadgen: trace window_ms %v does not match run window %v", s.trace.WindowMS, windowMS)
	}
	if len(s.trace.Windows) < nWindows {
		return fmt.Errorf("loadgen: trace has %d windows, run needs %d", len(s.trace.Windows), nWindows)
	}
	return nil
}

// Window implements driver.Source: the arrivals of the next window,
// sorted by offset.
func (s *Source) Window(windowMS float64) []driver.Arrival {
	defer func() {
		s.windowIdx++
		s.nowMS += windowMS
	}()
	if s.trace != nil {
		if s.windowIdx >= len(s.trace.Windows) {
			return nil
		}
		pts := s.trace.Windows[s.windowIdx]
		out := make([]driver.Arrival, len(pts))
		for i, p := range pts {
			out[i] = driver.Arrival{Class: int(p[0]), OffsetMS: p[1]}
		}
		return out
	}
	var out []driver.Arrival
	for i := range s.cohorts {
		c := &s.cohorts[i]
		for _, seg := range c.proc.segments(s.nowMS, s.nowMS+windowMS) {
			durS := (seg.b - seg.a) / 1000
			for class, rate := range c.rates {
				n := driver.Poisson(c.rng, rate*seg.f*durS)
				for k := 0; k < n; k++ {
					off := seg.a - s.nowMS + c.rng.Float64()*(seg.b-seg.a)
					out = append(out, driver.Arrival{Class: class, OffsetMS: off})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].OffsetMS < out[j].OffsetMS })
	return out
}

// seg is a sub-interval [a, b) of a window over which the process rate
// multiplier f is constant.
type seg struct{ a, b, f float64 }

// segments splits [from, to) at the process's rate-change boundaries and
// returns the constant-multiplier pieces. Arrival counts are then Poisson
// per piece, which is exactly a piecewise-inhomogeneous Poisson process.
func (p *Process) segments(from, to float64) []seg {
	switch p.Kind {
	case "burst":
		period := p.OnMS + p.OffMS
		// Mean-preserving off-phase multiplier: factor*on + fOff*off = period.
		fOff := (period - p.Factor*p.OnMS) / p.OffMS
		var out []seg
		t := from
		for t < to {
			phase := math.Mod(t, period)
			var f, next float64
			if phase < p.OnMS {
				f, next = p.Factor, t+(p.OnMS-phase)
			} else {
				f, next = fOff, t+(period-phase)
			}
			if next > to {
				next = to
			}
			out = append(out, seg{a: t, b: next, f: f})
			t = next
		}
		return out
	case "ramp":
		rampEnd := float64(p.Steps) * p.StepMS
		var out []seg
		t := from
		for t < to {
			if t >= rampEnd {
				out = append(out, seg{a: t, b: to, f: p.TargetFactor})
				break
			}
			step := math.Floor(t / p.StepMS)
			f := p.TargetFactor
			if p.Steps > 1 {
				f = p.StartFactor + (p.TargetFactor-p.StartFactor)*step/float64(p.Steps-1)
			}
			next := (step + 1) * p.StepMS
			if next > to {
				next = to
			}
			out = append(out, seg{a: t, b: next, f: f})
			t = next
		}
		return out
	case "sweep":
		mid := (from + to) / 2
		f := 1 + p.Amplitude*math.Sin(2*math.Pi*(mid/p.PeriodMS+p.Phase))
		return []seg{{a: from, b: to, f: f}}
	default: // steady
		return []seg{{a: from, b: to, f: 1}}
	}
}
