package sim

import (
	"reflect"
	"runtime"
	"testing"

	"jasworkload/internal/power4"
)

// TestEngineShardedEquivalence: a full detail-mode engine run must
// produce byte-identical windows and counters whether the stream runs
// through the core-sharded group or the fused loop. Forcing GOMAXPROCS=2
// for the sharded leg keeps the auto mode from collapsing to the fused
// loop on 1-CPU CI hosts — the comparison must exercise the concurrent
// merge everywhere.
func TestEngineShardedEquivalence(t *testing.T) {
	run := func(sharded bool) ([]WindowStats, []power4.Counters) {
		if sharded {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
		}
		sut := smallSUT(t, 8)
		ecfg := DefaultEngineConfig()
		ecfg.DurationMS = 12_000
		ecfg.RampMS = 2_000
		ecfg.DetailFrac = 0.02
		ecfg.Pipelined = false
		ecfg.Sharded = sharded
		e, err := NewEngine(ecfg, sut)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		perCore := make([]power4.Counters, len(sut.Cores))
		for i, c := range sut.Cores {
			perCore[i] = c.Counters()
		}
		return e.Windows(), perCore
	}

	fusedWin, fusedCtr := run(false)
	shardWin, shardCtr := run(true)

	if !reflect.DeepEqual(fusedWin, shardWin) {
		for i := range fusedWin {
			if i < len(shardWin) && !reflect.DeepEqual(fusedWin[i], shardWin[i]) {
				t.Fatalf("window %d diverged:\nfused   %+v\nsharded %+v", i, fusedWin[i], shardWin[i])
			}
		}
		t.Fatalf("window counts diverged: fused %d, sharded %d", len(fusedWin), len(shardWin))
	}
	for i := range fusedCtr {
		if fusedCtr[i] != shardCtr[i] {
			for _, ev := range power4.AllEvents() {
				if fusedCtr[i].Get(ev) != shardCtr[i].Get(ev) {
					t.Errorf("core %d %v: fused %d, sharded %d",
						i, ev, fusedCtr[i].Get(ev), shardCtr[i].Get(ev))
				}
			}
		}
	}
	var total power4.Counters
	for i := range fusedCtr {
		total.AddAll(&fusedCtr[i])
	}
	if total.Get(power4.EvInstCompleted) == 0 {
		t.Fatal("detail run completed no instructions; the equivalence is hollow")
	}
}

// TestEngineShardedDeterminism: the sharded engine's windows and HPM
// counters must be byte-identical at every GOMAXPROCS — the host's
// parallelism may change the shard count and every queue-timing
// interleaving, but never a result.
func TestEngineShardedDeterminism(t *testing.T) {
	run := func(procs int) ([]WindowStats, []power4.Counters) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		sut := smallSUT(t, 8)
		ecfg := DefaultEngineConfig()
		ecfg.DurationMS = 10_000
		ecfg.RampMS = 2_000
		ecfg.DetailFrac = 0.02
		ecfg.Sharded = true
		e, err := NewEngine(ecfg, sut)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		perCore := make([]power4.Counters, len(sut.Cores))
		for i, c := range sut.Cores {
			perCore[i] = c.Counters()
		}
		return e.Windows(), perCore
	}

	refWin, refCtr := run(1) // GOMAXPROCS=1: auto mode collapses to fused
	for _, procs := range []int{2, 3, 8} {
		win, ctr := run(procs)
		if !reflect.DeepEqual(refWin, win) {
			t.Fatalf("GOMAXPROCS=%d: windows diverged from GOMAXPROCS=1", procs)
		}
		if !reflect.DeepEqual(refCtr, ctr) {
			t.Fatalf("GOMAXPROCS=%d: counters diverged from GOMAXPROCS=1", procs)
		}
	}
}
