package sim

import (
	"context"
	"errors"
	"fmt"

	"jasworkload/internal/driver"
	"jasworkload/internal/hpm"
	"jasworkload/internal/isa"
	"jasworkload/internal/jvm"
	"jasworkload/internal/loadgen"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
)

// EngineConfig controls the whole-system run.
type EngineConfig struct {
	DurationMS float64 // total simulated run length
	RampMS     float64 // ramp-up excluded from the audit (paper: 5 min)
	WindowMS   float64 // sampling window (default 1000 ms)

	ClockHz    float64 // processor frequency (POWER4: 1.45 GHz)
	InstrScale float64 // paper-scale instructions per simulated instruction
	NominalCPI float64 // CPI assumed until/unless measured

	// DetailFrac is the fraction of each request's instructions streamed
	// through the processor model (0 = request-level only). This is the
	// sampled-fidelity knob described in DESIGN.md.
	DetailFrac float64

	// Pipelined runs the detail stream through the decoupled three-stage
	// power4.Pipeline instead of the fused per-core loop. Counters are
	// bit-identical either way (the pipeline's ordering invariant); only
	// wall-clock time differs. Ignored when DetailFrac is 0.
	Pipelined bool

	// Sharded runs the detail stream through the core-sharded
	// power4.ShardGroup — one worker goroutine per simulated core with a
	// deterministic coherence merge. Counters are bit-identical to the
	// fused loop (the merge's ordering invariant); only wall-clock time
	// differs. Takes precedence over Pipelined; auto-collapses to the
	// fused loop on single-CPU hosts. Ignored when DetailFrac is 0.
	Sharded bool

	WarmJIT bool // pre-compile the hot profile before t=0 (the paper's long warmup)
	Seed    int64

	// Arrival, when non-empty, is a canonical loadgen spec (JSON): the
	// driver consumes a spec-built loadgen.Source instead of its legacy
	// steady Poisson loop. Empty means the verbatim legacy path.
	Arrival string
}

// DefaultEngineConfig returns the standard run parameters.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		DurationMS: 10 * 60 * 1000,
		RampMS:     5 * 60 * 1000,
		WindowMS:   1000,
		ClockHz:    1.45e9,
		InstrScale: 256,
		NominalCPI: 3.0,
		DetailFrac: 0,
		Pipelined:  true,
		Sharded:    true,
		WarmJIT:    true,
		Seed:       1,
	}
}

// WindowStats is the per-window system snapshot (the vmstat view).
type WindowStats struct {
	Index       int
	StartMS     float64
	Completions []int   // per request class of the deployed app
	UtilBusy    float64 // CPU busy fraction (user+sys)
	UtilUser    float64
	UtilSys     float64
	UtilIOWait  float64
	UtilIdle    float64
	GCs         int
	GCPauseMS   float64
	CPI         float64 // measured CPI this window (detail mode only)
}

// WindowFunc observes one completed window. The engine invokes it
// synchronously at the end of every Step, after the window has been
// appended to Windows() and before the HPM monitors tick. Observers see
// exactly the values that Windows() records — streaming consumers do not
// fork the engine loop, they ride it.
type WindowFunc func(WindowStats)

// Engine runs the SUT against the driver.
type Engine struct {
	cfg EngineConfig
	sut *SUT
	drv *driver.Driver

	nowMS      float64
	coreFreeAt []float64
	tracker    *driver.Tracker
	monitors   []*hpm.Monitor
	windowFn   WindowFunc
	windows    []WindowStats
	segTotals  [server.NumSegments]uint64
	instrTotal uint64
	gcInstrSim uint64
	cpiEst     float64

	finished    bool               // set once Run completes; guards against re-running
	pipe        *power4.Pipeline   // decoupled detail pipeline (nil = fused loop)
	shard       *power4.ShardGroup // core-sharded detail group (nil = pipe or fused)
	ctx         context.Context    // cancellation for the window loop (nil = never)
	lastCtr     counterSnapshot
	queue       []queuedReq // arrivals not yet served (capacity carry-over)
	diskFreeAt  float64     // disk array availability (I/O queueing)
	pendingBusy float64     // service ms not yet attributed to a window
	pendingSys  float64
	pendingIO   float64
	pendingGCms float64
	pendingGCs  int
}

type counterSnapshot struct {
	cycles, inst uint64
}

// queuedReq is an arrival waiting for a core.
type queuedReq struct {
	at float64
	rt server.RequestType
}

// NewEngine builds an engine over a SUT.
func NewEngine(cfg EngineConfig, sut *SUT) (*Engine, error) {
	if sut == nil {
		return nil, errors.New("sim: nil SUT")
	}
	if cfg.WindowMS <= 0 || cfg.DurationMS <= 0 || cfg.ClockHz <= 0 ||
		cfg.InstrScale <= 0 || cfg.NominalCPI <= 0 {
		return nil, fmt.Errorf("sim: bad engine config %+v", cfg)
	}
	if cfg.RampMS >= cfg.DurationMS {
		return nil, fmt.Errorf("sim: ramp %v >= duration %v", cfg.RampMS, cfg.DurationMS)
	}
	app := sut.Server.App()
	dcfg := driver.Config{IR: sut.Config.IR, Rates: app.Rates(), Seed: cfg.Seed}
	if cfg.Arrival != "" {
		spec, err := loadgen.Parse([]byte(cfg.Arrival))
		if err != nil {
			return nil, err
		}
		src, err := spec.NewSource(loadgen.SourceConfig{
			IR:         sut.Config.IR,
			Rates:      app.Rates(),
			ClassNames: app.ClassNames(),
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		if err := src.CheckRun(cfg.WindowMS, int(cfg.DurationMS/cfg.WindowMS)); err != nil {
			return nil, err
		}
		dcfg.Source = src
	}
	drv, err := driver.New(dcfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		sut:        sut,
		drv:        drv,
		coreFreeAt: make([]float64, len(sut.Cores)),
		tracker:    driver.NewTracker(cfg.RampMS, app.Deadlines()),
		cpiEst:     cfg.NominalCPI,
	}
	if cfg.WarmJIT {
		// The paper measures a long-warmed system: "most 'important'
		// methods had a chance to be profiled ... and JIT-compiled at high
		// optimization levels". Model that as an AOT/shared-class-cache
		// start plus profile-driven warmup.
		sut.JIT.Precompile(0.98)
		sut.JIT.WarmUp(0.97)
	}
	return e, nil
}

// Source returns the HPM counter source for this SUT.
func (e *Engine) Source() hpm.CounterSource { return counterSource{e.sut} }

// AttachMonitor registers an HPM monitor ticked once per window.
func (e *Engine) AttachMonitor(m *hpm.Monitor) { e.monitors = append(e.monitors, m) }

// SetWindowFunc registers fn as the per-window observer (nil detaches).
// Observation is pure: attaching a WindowFunc never changes the simulated
// outcome — Windows() is bit-identical with or without one
// (TestWindowFuncObservesWithoutPerturbing enforces this).
func (e *Engine) SetWindowFunc(fn WindowFunc) { e.windowFn = fn }

// Tracker returns the response-time tracker.
func (e *Engine) Tracker() *driver.Tracker { return e.tracker }

// Windows returns the per-window statistics collected so far.
func (e *Engine) Windows() []WindowStats { return e.windows }

// SegmentTotals returns cumulative instruction counts by software
// component (request-level accounting, independent of DetailFrac).
func (e *Engine) SegmentTotals() [server.NumSegments]uint64 { return e.segTotals }

// InstrTotal returns cumulative request instructions (simulated units).
func (e *Engine) InstrTotal() uint64 { return e.instrTotal }

// GCInstrSim returns cumulative GC instructions (simulated units).
func (e *Engine) GCInstrSim() uint64 { return e.gcInstrSim }

// simRatePerMS is the per-core simulated-instruction retirement rate.
func (e *Engine) simRatePerMS() float64 {
	return e.cfg.ClockHz / (e.cpiEst * e.cfg.InstrScale * 1000)
}

// ErrFinished is returned when Run is called on an engine that already
// completed its configured duration. Completed engines are shared read-only
// views (the run-artifact layer hands one engine to many figure
// constructors), so re-running would corrupt every consumer.
var ErrFinished = errors.New("sim: engine already ran to completion")

// Finished reports whether the engine has completed its configured
// duration. Artifact consumers use this as the it-is-safe-to-read guard.
func (e *Engine) Finished() bool { return e.finished }

// Run executes the configured duration and returns the windows. A second
// call returns ErrFinished.
func (e *Engine) Run() ([]WindowStats, error) {
	return e.RunContext(context.Background())
}

// RunContext executes the configured duration, aborting between requests
// when ctx is cancelled: the engine checks ctx inside every window's serve
// loop, so a long window stops mid-flight instead of running to its end.
// An aborted engine never reports Finished and its windows are partial —
// callers must discard it. For a ctx that is never cancelled, RunContext
// is behaviourally identical to Run (observation only; the simulated
// outcome is byte-for-byte the same).
func (e *Engine) RunContext(ctx context.Context) ([]WindowStats, error) {
	if e.finished {
		return e.windows, ErrFinished
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	// Detail mode runs the instruction stream through the core-sharded
	// group (preferred) or the decoupled pipeline for the whole duration;
	// either is drained at every window barrier (Step) and torn down on
	// every exit path, so an aborted run leaks no goroutines. The shard
	// group's auto mode collapses to the fused loop on 1-CPU hosts, in
	// which case it costs nothing and the Pipelined knob is moot too (a
	// host that can't overlap shards can't overlap stages either).
	switch {
	case e.cfg.Sharded && e.cfg.DetailFrac > 0 && e.shard == nil:
		sg, err := power4.NewShardGroup(e.sut.Cores, e.sut.Hier, power4.ShardConfig{})
		if err != nil {
			return e.windows, err
		}
		e.shard = sg
		defer func() {
			e.shard.Close()
			e.shard = nil
		}()
	case e.cfg.Pipelined && e.cfg.DetailFrac > 0 && e.pipe == nil:
		pipe, err := power4.NewPipeline(e.sut.Cores, e.sut.Hier, power4.PipelineConfig{})
		if err != nil {
			return e.windows, err
		}
		e.pipe = pipe
		defer func() {
			e.pipe.Close()
			e.pipe = nil
		}()
	}
	nWindows := int(e.cfg.DurationMS / e.cfg.WindowMS)
	if cap(e.windows)-len(e.windows) < nWindows {
		grown := make([]WindowStats, len(e.windows), len(e.windows)+nWindows)
		copy(grown, e.windows)
		e.windows = grown
	}
	for w := 0; w < nWindows; w++ {
		if err := ctx.Err(); err != nil {
			return e.windows, fmt.Errorf("sim: run aborted after %d windows: %w", len(e.windows), err)
		}
		if err := e.Step(); err != nil {
			return e.windows, err
		}
	}
	e.finished = true
	return e.windows, nil
}

// Step advances the simulation by one window.
func (e *Engine) Step() error {
	winStart := e.nowMS
	winEnd := winStart + e.cfg.WindowMS
	ws := WindowStats{
		Index:       len(e.windows),
		StartMS:     winStart,
		Completions: make([]int, e.sut.Server.App().NumClasses()),
	}

	for _, a := range e.drv.Window(e.cfg.WindowMS) {
		e.queue = append(e.queue, queuedReq{at: winStart + a.OffsetMS, rt: server.RequestType(a.Class)})
	}
	// Serve as much of the queue as fits this window: requests whose start
	// would fall past the window end stay queued, so slow (high-CPI)
	// windows genuinely execute fewer instructions — the capacity coupling
	// behind the paper's negative completion-cycle correlation.
	served := 0
	for _, q := range e.queue {
		// Cancellation point: a cancelled run stops between requests, so a
		// window heavy with queued work (the expensive case in detail mode)
		// aborts mid-window rather than running to its boundary. ctx.Err()
		// is side-effect free, so uncancelled runs are unperturbed.
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return fmt.Errorf("sim: window %d aborted: %w", len(e.windows), err)
			}
		}
		if e.coreFreeAt[e.earliestFreeCore()] >= winEnd {
			break
		}
		if e.sut.Heap.NeedsGC() {
			e.runGC(q.at)
		}
		if err := e.serve(q.at, q.rt, &ws, winEnd); err != nil {
			return err
		}
		served++
	}
	// Copy unserved arrivals to the front of the backing array instead of
	// reslicing forward: e.queue = e.queue[served:] would strand the served
	// prefix and keep every grown backing array live for the whole run.
	if served > 0 {
		n := copy(e.queue, e.queue[served:])
		e.queue = e.queue[:n]
	}
	// After a backlog burst drains, shed the oversized backing array.
	if cap(e.queue) > 1024 && len(e.queue) < cap(e.queue)/4 {
		compacted := make([]queuedReq, len(e.queue), cap(e.queue)/2)
		copy(compacted, e.queue)
		e.queue = compacted
	}

	// Attribute pending busy/sys/io time to this window.
	capMS := float64(len(e.sut.Cores)) * e.cfg.WindowMS
	busy := e.pendingBusy + e.pendingGCms*float64(len(e.sut.Cores))
	if busy > capMS {
		e.pendingBusy = busy - capMS
		busy = capMS
	} else {
		e.pendingBusy = 0
	}
	ws.UtilBusy = busy / capMS
	sys := e.pendingSys
	e.pendingSys = 0
	ws.UtilSys = clamp01(sys / capMS)
	ws.UtilUser = clamp01(ws.UtilBusy - ws.UtilSys)
	io := e.pendingIO
	e.pendingIO = 0
	ws.UtilIOWait = clamp01(io / capMS)
	ws.UtilIdle = clamp01(1 - ws.UtilBusy - ws.UtilIOWait)
	ws.GCs = e.pendingGCs
	ws.GCPauseMS = e.pendingGCms
	e.pendingGCs = 0
	e.pendingGCms = 0

	// Measured CPI feedback (detail mode).
	if e.cfg.DetailFrac > 0 {
		// Window barrier: the shard group or pipeline publishes every
		// in-flight instruction's counters before the read below, so the
		// CPI the capacity feedback sees is exactly what the fused loop
		// would have accumulated by this point in the stream.
		if e.shard != nil {
			e.shard.Drain()
		} else if e.pipe != nil {
			e.pipe.Drain()
		}
		ctr := e.sut.AggregateCounters()
		dc := ctr.Get(power4.EvCycles) - e.lastCtr.cycles
		di := ctr.Get(power4.EvInstCompleted) - e.lastCtr.inst
		e.lastCtr = counterSnapshot{ctr.Get(power4.EvCycles), ctr.Get(power4.EvInstCompleted)}
		if di > 0 {
			ws.CPI = float64(dc) / float64(di)
			// Smooth the estimate used for capacity.
			e.cpiEst = 0.7*e.cpiEst + 0.3*ws.CPI
		}
	}

	e.windows = append(e.windows, ws)
	e.nowMS = winEnd
	if e.windowFn != nil {
		e.windowFn(ws)
	}
	for _, m := range e.monitors {
		m.Tick()
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// earliestFreeCore returns the index of the core that frees up first
// (lowest index on ties). Both the window-capacity check in Step and the
// M/G/c placement in serve share this single scan.
func (e *Engine) earliestFreeCore() int {
	idx := 0
	for i := 1; i < len(e.coreFreeAt); i++ {
		if e.coreFreeAt[i] < e.coreFreeAt[idx] {
			idx = i
		}
	}
	return idx
}

// serve runs one request through the queueing model and the server.
func (e *Engine) serve(at float64, rt server.RequestType, ws *WindowStats, winEnd float64) error {
	// Earliest-free core (M/G/c).
	core := e.earliestFreeCore()
	start := at
	if e.coreFreeAt[core] > start {
		start = e.coreFreeAt[core]
	}
	res, err := e.execute(at, rt, core)
	if err != nil {
		e.tracker.RecordFailure()
		return err
	}
	rate := e.simRatePerMS()
	serviceMS := float64(res.Instructions) / rate
	ioMS := e.sut.Pool.TakeIOWaitMS() + e.sut.DB.TakeLogWaitMS()
	ioWaitMS := 0.0
	if ioMS > 0 {
		// Synchronous page I/O queues on the disk array: with too few
		// spindles the wait grows far beyond the raw access time — the
		// paper's "I/O wait times would grow dramatically" failure mode.
		ioStart := start + serviceMS
		if e.diskFreeAt > ioStart {
			ioWaitMS = e.diskFreeAt - ioStart
		}
		e.diskFreeAt = ioStart + ioWaitMS + ioMS
		ioWaitMS += ioMS
	}
	finish := start + serviceMS + ioWaitMS
	e.coreFreeAt[core] = finish
	respMS := finish - at
	e.tracker.Record(int(rt), finish, respMS)
	if finish < winEnd {
		ws.Completions[rt]++
	}
	e.pendingBusy += serviceMS
	e.pendingSys += serviceMS * float64(res.Segments[server.SegKernel]) / float64(res.Instructions+1)
	e.pendingIO += ioWaitMS
	e.instrTotal += res.Instructions
	for i, v := range res.Segments {
		e.segTotals[i] += v
	}
	return nil
}

// execute runs the request, collecting on heap exhaustion and retrying.
func (e *Engine) execute(at float64, rt server.RequestType, core int) (server.Result, error) {
	var sink isa.Sink
	if e.cfg.DetailFrac > 0 {
		sink = e.detailSink(core)
	}
	for attempt := 0; ; attempt++ {
		res, err := e.sut.Server.Execute(at, rt, sink, e.cfg.DetailFrac)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, jvm.ErrHeapFull) && attempt < 2 {
			e.runGC(at)
			if attempt == 1 {
				// Persistent fragmentation: compact (Section 4.1.1 says the
				// tuned system never reaches this; undersized heaps do).
				e.compact(at)
			}
			continue
		}
		return res, err
	}
}

// runGC performs a stop-the-world collection at time at.
func (e *Engine) runGC(at float64) {
	ev := e.sut.Heap.Collect(at)
	pause := ev.PauseMS()
	e.applyPause(at, pause)
	e.emitGCTrace(pause)
}

// compact performs a stop-the-world compaction.
func (e *Engine) compact(at float64) {
	ev := e.sut.Heap.Compact(at)
	e.applyPause(at, ev.CompactMS)
}

func (e *Engine) applyPause(at, pause float64) {
	for i := range e.coreFreeAt {
		if e.coreFreeAt[i] < at {
			e.coreFreeAt[i] = at
		}
		e.coreFreeAt[i] += pause
	}
	e.pendingGCms += pause
	e.pendingGCs++
}

// emitGCTrace streams the collector's instruction-level behaviour.
func (e *Engine) emitGCTrace(pauseMS float64) {
	// GC runs tighter code: charge it a lower CPI for instruction volume.
	gcRate := e.simRatePerMS() * e.cpiEst / 1.6
	totalSim := pauseMS * gcRate * float64(len(e.sut.Cores))
	e.gcInstrSim += uint64(totalSim)
	if e.cfg.DetailFrac <= 0 {
		return
	}
	n := int(totalSim * e.cfg.DetailFrac)
	per := n / len(e.sut.Cores)
	if per == 0 {
		return
	}
	for i := range e.sut.Cores {
		e.sut.Server.EmitGC(e.detailSink(i), per)
	}
}

// detailSink returns the instruction sink for one core: the shard
// group's or pipeline's per-core front end while one is attached, the
// core itself otherwise.
func (e *Engine) detailSink(core int) isa.Sink {
	if e.shard != nil {
		return e.shard.Sink(core)
	}
	if e.pipe != nil {
		return e.pipe.Sink(core)
	}
	return e.sut.Cores[core]
}

// MeanUtilization returns mean busy fraction over steady-state windows.
// Accumulated in place (same left-to-right summation as stats.Mean, so
// the value is bit-identical) rather than materializing a throwaway
// slice on every call.
func (e *Engine) MeanUtilization() float64 {
	var sum float64
	var n int
	for _, w := range e.windows {
		if w.StartMS >= e.cfg.RampMS {
			sum += w.UtilBusy
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
