package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"jasworkload/internal/db"
	"jasworkload/internal/hpm"
	"jasworkload/internal/mem"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
	"jasworkload/internal/stats"
)

// smallSUT builds a reduced-scale SUT that keeps tests fast: IR 8, 256 MB
// heap, 850-method universe.
func smallSUT(t *testing.T, ir int) *SUT {
	t.Helper()
	cfg := DefaultSUTConfig(ir)
	cfg.HeapBytes = 256 << 20
	cfg.Profile.NumMethods = 850
	cfg.Profile.WarmSet = 60
	sut, err := BuildSUT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sut
}

func shortEngine(t *testing.T, sut *SUT, durMS, rampMS float64, detail float64) *Engine {
	t.Helper()
	ecfg := DefaultEngineConfig()
	ecfg.DurationMS = durMS
	ecfg.RampMS = rampMS
	ecfg.DetailFrac = detail
	e, err := NewEngine(ecfg, sut)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildSUTValidation(t *testing.T) {
	if _, err := BuildSUT(SUTConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestBuildSUTDefaults(t *testing.T) {
	sut := smallSUT(t, 4)
	if len(sut.Cores) != 4 {
		t.Fatalf("cores = %d", len(sut.Cores))
	}
	if sut.Layout.JavaHeap.PageSize != mem.Page16M {
		t.Fatal("default heap pages not large")
	}
	if sut.Pool.Storage().Name() != "ramdisk" {
		t.Fatal("default storage not ram disk")
	}
	// Baseline cache auto-scaled below the heap.
	if sut.Heap.UsedBytes() >= sut.Heap.Size() {
		t.Fatal("baseline filled the heap")
	}
}

func TestNewEngineValidation(t *testing.T) {
	sut := smallSUT(t, 4)
	if _, err := NewEngine(EngineConfig{}, sut); err == nil {
		t.Fatal("zero engine config accepted")
	}
	bad := DefaultEngineConfig()
	bad.RampMS = bad.DurationMS
	if _, err := NewEngine(bad, sut); err == nil {
		t.Fatal("ramp >= duration accepted")
	}
	if _, err := NewEngine(DefaultEngineConfig(), nil); err == nil {
		t.Fatal("nil SUT accepted")
	}
}

func TestEngineRunStable(t *testing.T) {
	sut := smallSUT(t, 8)
	e := shortEngine(t, sut, 60_000, 20_000, 0)
	ws, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 60 {
		t.Fatalf("windows = %d", len(ws))
	}
	// Completions flow every window after ramp.
	var tput []float64
	for _, w := range ws[20:] {
		var n int
		for _, c := range w.Completions {
			n += c
		}
		tput = append(tput, float64(n))
	}
	if stats.Mean(tput) < 8 {
		t.Fatalf("throughput = %.1f req/s, want ~12.8 at IR8", stats.Mean(tput))
	}
	// Steady state: coefficient of variation is modest.
	if cv := stats.CoefficientOfVariation(tput); cv > 0.5 {
		t.Fatalf("throughput CV = %.2f, not steady", cv)
	}
	// Audit passes at this modest load.
	audits, pass := e.Tracker().Audit()
	if !pass {
		t.Fatalf("audit failed: %+v", audits)
	}
	// JOPS ~ 1.6 * IR.
	jops := e.Tracker().JOPS()
	if jops < 10 || jops > 16 {
		t.Fatalf("JOPS = %.1f, want ~12.8", jops)
	}
}

func TestEngineGCOccursAndIsSmallShare(t *testing.T) {
	sut := smallSUT(t, 8)
	e := shortEngine(t, sut, 120_000, 10_000, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	evs := sut.Heap.Events()
	if len(evs) == 0 {
		t.Fatal("no collections in 2 minutes")
	}
	var pause float64
	for _, ev := range evs {
		pause += ev.PauseMS()
	}
	share := pause / 120000
	if share <= 0 || share > 0.08 {
		t.Fatalf("GC share of runtime = %.3f", share)
	}
	// No compactions on a tuned system.
	for _, ev := range evs {
		if ev.Compacted {
			t.Fatal("tuned system compacted")
		}
	}
}

func TestEngineUtilizationScalesWithIR(t *testing.T) {
	low := smallSUT(t, 4)
	el := shortEngine(t, low, 40_000, 10_000, 0)
	if _, err := el.Run(); err != nil {
		t.Fatal(err)
	}
	high := smallSUT(t, 16)
	eh := shortEngine(t, high, 40_000, 10_000, 0)
	if _, err := eh.Run(); err != nil {
		t.Fatal(err)
	}
	ul, uh := el.MeanUtilization(), eh.MeanUtilization()
	if uh <= ul {
		t.Fatalf("utilization did not scale: IR4=%.2f IR16=%.2f", ul, uh)
	}
	if ul <= 0 || uh > 1 {
		t.Fatalf("utilization out of range: %v %v", ul, uh)
	}
}

func TestEngineDetailModeCounters(t *testing.T) {
	sut := smallSUT(t, 8)
	e := shortEngine(t, sut, 30_000, 5_000, 0.02)
	mon, err := hpm.NewMonitor(e.Source(), mustGroup(t, "cpi"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	e.AttachMonitor(mon)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ctr := sut.AggregateCounters()
	if ctr.Get(power4.EvInstCompleted) == 0 {
		t.Fatal("no instructions reached the cores")
	}
	cpiSteady := 0.0
	n := 0
	for _, w := range e.Windows()[20:] {
		if w.CPI > 0 {
			cpiSteady += w.CPI
			n++
		}
	}
	cpiSteady /= float64(n)
	if cpiSteady < 1.2 || cpiSteady > 5.5 {
		t.Fatalf("steady loaded CPI = %.2f, want ~3", cpiSteady)
	}
	if ctr.CPI() < 1 {
		t.Fatalf("aggregate CPI = %.2f implausible", ctr.CPI())
	}
	// Monitor ticked every window.
	if len(mon.Samples()) != 30 {
		t.Fatalf("monitor samples = %d", len(mon.Samples()))
	}
	cpiSeries, err := mon.CPISeries()
	if err != nil {
		t.Fatal(err)
	}
	if cpiSeries.Len() != 30 {
		t.Fatal("cpi series wrong length")
	}
	// Steady windows have nonzero CPI.
	if cpiSeries.At(20) == 0 {
		t.Fatal("zero CPI in steady window")
	}
	// Unmapped addresses would mean trace bugs.
	for i, c := range sut.Cores {
		if c.UnmappedAccesses() > 0 {
			t.Fatalf("core %d: %d unmapped accesses", i, c.UnmappedAccesses())
		}
	}
}

func mustGroup(t *testing.T, name string) hpm.Group {
	t.Helper()
	g, ok := hpm.GroupByName(hpm.StandardGroups(), name)
	if !ok {
		t.Fatalf("no group %q", name)
	}
	return g
}

func TestEngineDiskBackedIOWait(t *testing.T) {
	cfg := DefaultSUTConfig(8)
	cfg.HeapBytes = 256 << 20
	cfg.Profile.NumMethods = 850
	cfg.Profile.WarmSet = 60
	cfg.Storage = db.DefaultDiskModel()
	// A buffer pool far smaller than the data forces page I/O.
	sut, err := BuildSUT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := shortEngine(t, sut, 30_000, 5_000, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var io float64
	for _, w := range e.Windows() {
		io += w.UtilIOWait
	}
	if io == 0 {
		t.Fatal("disk-backed run shows no I/O wait")
	}
}

func TestEngineSegmentTotals(t *testing.T) {
	sut := smallSUT(t, 8)
	e := shortEngine(t, sut, 20_000, 5_000, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	segs := e.SegmentTotals()
	var sum uint64
	for _, v := range segs {
		sum += v
	}
	if sum == 0 || e.InstrTotal() == 0 {
		t.Fatal("no instruction accounting")
	}
	if float64(sum) < 0.9*float64(e.InstrTotal()) {
		t.Fatal("segments do not cover instructions")
	}
	was := segs[server.SegWASJit] + segs[server.SegWASNative]
	other := segs[server.SegWebServer] + segs[server.SegDB2]
	ratio := float64(was) / float64(other)
	if ratio < 1.5 || ratio > 2.7 {
		t.Fatalf("WAS/(web+db2) = %.2f", ratio)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() ([]WindowStats, power4.Counters) {
		sut := smallSUT(t, 6)
		e := shortEngine(t, sut, 15_000, 5_000, 0.02)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Windows(), sut.AggregateCounters()
	}
	w1, c1 := run()
	w2, c2 := run()
	if len(w1) != len(w2) {
		t.Fatal("window counts differ")
	}
	for i := range w1 {
		if w1[i].GCs != w2[i].GCs || len(w1[i].Completions) != len(w2[i].Completions) {
			t.Fatalf("window %d differs", i)
		}
		for c := range w1[i].Completions {
			if w1[i].Completions[c] != w2[i].Completions[c] {
				t.Fatalf("window %d class %d completions differ", i, c)
			}
		}
	}
	for _, ev := range power4.AllEvents() {
		if c1.Get(ev) != c2.Get(ev) {
			t.Fatalf("counter %v differs: %d vs %d", ev, c1.Get(ev), c2.Get(ev))
		}
	}
}

func TestEngineOverloadFailsAudit(t *testing.T) {
	// An IR far beyond capacity must blow response times and fail.
	cfg := DefaultSUTConfig(64)
	cfg.HeapBytes = 512 << 20
	cfg.Profile.NumMethods = 850
	cfg.Profile.WarmSet = 60
	sut, err := BuildSUT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := shortEngine(t, sut, 40_000, 5_000, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, pass := e.Tracker().Audit(); pass {
		t.Fatalf("overloaded run passed the audit (util=%.2f)", e.MeanUtilization())
	}
	if e.MeanUtilization() < 0.95 {
		t.Fatalf("overload utilization = %.2f, want saturation", e.MeanUtilization())
	}
}

// The queue must carry overload into later windows instead of executing
// work the cores cannot absorb (capacity coupling).
func TestEngineQueueCarryOver(t *testing.T) {
	cfg := DefaultSUTConfig(64) // far beyond 4-core capacity
	cfg.HeapBytes = 512 << 20
	cfg.Profile.NumMethods = 850
	cfg.Profile.WarmSet = 60
	sut, err := BuildSUT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := shortEngine(t, sut, 30_000, 5_000, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.queue) == 0 {
		t.Fatal("overloaded run ended with an empty queue")
	}
	// Per-window completions are capped near capacity, not at the arrival
	// rate.
	var tput []float64
	for _, w := range e.Windows()[10:] {
		var n int
		for _, c := range w.Completions {
			n += c
		}
		tput = append(tput, float64(n))
	}
	arrivalRate := 64 * 1.6
	if stats.Mean(tput) > arrivalRate*0.85 {
		t.Fatalf("completions %.1f/s track arrivals (%.1f/s) despite overload",
			stats.Mean(tput), arrivalRate)
	}
}

// Synchronous page I/O queues on the simulated disk array; with enough
// pressure the response-time audit fails — the paper's Section 4.1
// observation with two physical disks.
func TestEngineDiskQueueing(t *testing.T) {
	cfg := DefaultSUTConfig(40)
	cfg.HeapBytes = 256 << 20
	cfg.Profile.NumMethods = 850
	cfg.Profile.WarmSet = 60
	cfg.Storage = db.DefaultDiskModel()
	cfg.DBBufferBytes = 64 << 10 // 16 frames: most touches go to the 2 spindles
	sut, err := BuildSUT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := shortEngine(t, sut, 40_000, 10_000, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var io []float64
	for _, w := range e.Windows()[10:] {
		io = append(io, w.UtilIOWait)
	}
	if stats.Mean(io) < 0.05 {
		t.Fatalf("iowait = %.3f, want substantial under a thrashing pool", stats.Mean(io))
	}
	if _, pass := e.Tracker().Audit(); pass {
		t.Fatal("disk-thrashing run passed its response-time audit")
	}
}

// When the heap is exhausted by live data, the engine's retry ladder runs
// a collection and then a compaction before giving up; both must be
// attempted and the failure must surface rather than hang.
func TestEngineCompactionFallback(t *testing.T) {
	sut := smallSUT(t, 6)
	e := shortEngine(t, sut, 30_000, 10_000, 0)
	// Exhaust the heap with rooted (uncollectable) objects, down to
	// sub-allocatable slivers.
	for _, sz := range []uint32{1 << 20, 4096, 64} {
		for {
			id, err := sut.Heap.Alloc(sz)
			if err != nil {
				break
			}
			sut.Heap.AddRoot(id)
		}
	}
	err := e.Step()
	if err == nil {
		t.Fatal("step succeeded on an exhausted heap")
	}
	var sawCollect, sawCompact bool
	for _, ev := range sut.Heap.Events() {
		if ev.Compacted {
			sawCompact = true
		} else {
			sawCollect = true
		}
	}
	if !sawCollect || !sawCompact {
		t.Fatalf("retry ladder incomplete: collect=%v compact=%v", sawCollect, sawCompact)
	}
}

func TestEngineAccessors(t *testing.T) {
	cfg := DefaultSUTConfig(8)
	cfg.HeapBytes = 128 << 20 // small heap: collections happen within the run
	cfg.Profile.NumMethods = 850
	cfg.Profile.WarmSet = 60
	sut, err := BuildSUT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := shortEngine(t, sut, 30_000, 5_000, 0.02)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.GCInstrSim() == 0 {
		t.Fatal("GC instruction accounting empty despite collections")
	}
	if JVMJ9.String() == "" || JVMSovereign.String() == "" {
		t.Fatal("unnamed JVM variants")
	}
	if JVMJ9.String() == JVMSovereign.String() {
		t.Fatal("variants share a name")
	}
}

// TestEngineRunContextCancellation verifies the cancellation plumbing:
// cancelling the run context stops the window loop (and the serve loop
// inside a window) without recording partial windows, and a context that
// is already cancelled executes nothing at all.
func TestEngineRunContextCancellation(t *testing.T) {
	sut := smallSUT(t, 8)
	e := shortEngine(t, sut, 60_000, 20_000, 0)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetWindowFunc(func(ws WindowStats) {
		if ws.Index == 2 {
			cancel()
		}
	})
	if _, err := e.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if n := len(e.Windows()); n != 3 {
		t.Fatalf("windows after cancel = %d, want exactly the 3 completed ones", n)
	}
	if e.Finished() {
		t.Fatal("aborted engine claims to have finished")
	}

	done, stop := context.WithCancel(context.Background())
	stop()
	e2 := shortEngine(t, smallSUT(t, 8), 60_000, 20_000, 0)
	if _, err := e2.RunContext(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext = %v", err)
	}
	if len(e2.Windows()) != 0 {
		t.Fatalf("pre-cancelled run executed %d windows", len(e2.Windows()))
	}
}

// TestEngineRunContextMatchesRun guards determinism: an uncancelled
// context must not perturb the simulation in any observable way.
func TestEngineRunContextMatchesRun(t *testing.T) {
	a := shortEngine(t, smallSUT(t, 8), 30_000, 10_000, 0)
	wa, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := shortEngine(t, smallSUT(t, 8), 30_000, 10_000, 0)
	wb, err := b.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wa, wb) {
		t.Fatal("RunContext with a live context diverged from Run")
	}
}
