// Package sim assembles the full system under test — address space, JVM
// (heap + JIT), database, application server, POWER4 cores — and runs the
// windowed whole-system simulation that every experiment drives: Poisson
// arrivals at a fixed injection rate, multi-core queueing, stop-the-world
// garbage collections, sampled instruction-level detail through the
// processor model, and HPM monitors ticking once per window.
package sim

import (
	"fmt"

	"jasworkload/internal/db"
	"jasworkload/internal/jvm"
	"jasworkload/internal/mem"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
)

// SUTConfig selects the hardware and software configuration of the system
// under test. The default is the paper's tuned setup: a 1 GB flat heap in
// 16 MB large pages, 4 KB pages for code, a RAM-disk database, 4 POWER4
// cores on 2 MCMs.
type SUTConfig struct {
	IR int

	HeapBytes    uint64
	HeapPageSize mem.PageSize
	CodePageSize mem.PageSize

	Storage       db.Storage
	DBBufferBytes uint64 // buffer pool size (0 = layout default)
	// App selects the deployed application (nil = the paper's jas2004).
	App *server.App
	// JVM selects the virtual machine variant (Section 3.1: J9 is the
	// paper's focus; Sovereign was cross-checked and shows the same trends
	// at a somewhat higher CPU cost).
	JVM      JVMVariant
	Profile  jvm.ProfileConfig
	JIT      jvm.JITConfig
	GC       jvm.GCConfig
	Topology power4.TopologyConfig
	Core     power4.CoreConfig // template; ID is assigned per core

	BaselineCacheBytes uint64 // 0 = auto (min(188MB, heap/5*... ))
	Seed               int64
}

// JVMVariant selects the simulated JVM.
type JVMVariant int

// JVM variants.
const (
	// JVMJ9 is the paper's primary JVM (J9 1.4.2).
	JVMJ9 JVMVariant = iota
	// JVMSovereign is the cross-check JVM (Sovereign 1.4.1): same flat-heap
	// mark-sweep-compact design, slightly slower collector phases, slower
	// compilation ramp, and ~12% more CPU per request (the footnote's
	// "higher CPU utilization at the same IR").
	JVMSovereign
)

// String names the variant.
func (v JVMVariant) String() string {
	if v == JVMSovereign {
		return "Sovereign 1.4.1"
	}
	return "J9 1.4.2"
}

// DefaultSUTConfig returns the paper's configuration at the given IR.
func DefaultSUTConfig(ir int) SUTConfig {
	return SUTConfig{
		IR:           ir,
		HeapBytes:    1 << 30,
		HeapPageSize: mem.Page16M,
		CodePageSize: mem.Page4K,
		Storage:      db.RAMDisk{},
		Profile:      jvm.DefaultProfileConfig(),
		JIT:          jvm.DefaultJITConfig(),
		GC:           jvm.DefaultGCConfig(),
		Topology:     power4.DefaultTopologyConfig(),
		Core:         power4.DefaultCoreConfig(0),
		Seed:         1,
	}
}

// SUT is the assembled system under test.
type SUT struct {
	Config SUTConfig
	Layout *mem.Layout
	Heap   *jvm.Heap
	JIT    *jvm.JIT
	DB     *db.Database
	Pool   *db.BufferPool
	Server *server.Server
	Hier   *power4.Hierarchy
	Cores  []*power4.Core
}

// BuildSUT assembles all substrates.
func BuildSUT(cfg SUTConfig) (*SUT, error) {
	if cfg.IR <= 0 {
		return nil, fmt.Errorf("sim: bad IR %d", cfg.IR)
	}
	if cfg.Storage == nil {
		cfg.Storage = db.RAMDisk{}
	}
	// JVM variant adjustments (Section 3.1 / footnote 2).
	gcCfg := cfg.GC
	jitCfg := cfg.JIT
	cpuFactor := 1.0
	if cfg.JVM == JVMSovereign {
		gcCfg.MarkNsPerObj *= 1.15
		gcCfg.MarkNsPerByte *= 1.12
		gcCfg.SweepNsPerByte *= 1.10
		jitCfg.CompileThreshold *= 3
		cpuFactor = 1.12
	}
	lcfg := mem.DefaultLayoutConfig()
	lcfg.HeapBytes = cfg.HeapBytes
	lcfg.HeapPageSize = cfg.HeapPageSize
	lcfg.CodePageSize = cfg.CodePageSize
	if cfg.DBBufferBytes != 0 {
		lcfg.DBBufferBytes = cfg.DBBufferBytes
	}
	layout, err := mem.NewLayout(lcfg)
	if err != nil {
		return nil, err
	}
	methods, err := jvm.GenerateMethods(cfg.Profile)
	if err != nil {
		return nil, err
	}
	jit, err := jvm.NewJIT(jitCfg, methods, layout.JITCode)
	if err != nil {
		return nil, err
	}
	heap, err := jvm.NewHeap(gcCfg, layout.JavaHeap)
	if err != nil {
		return nil, err
	}
	pool, err := db.NewBufferPool(layout.DBBuffer, 4096, cfg.Storage)
	if err != nil {
		return nil, err
	}
	database, err := db.NewDatabase(pool)
	if err != nil {
		return nil, err
	}
	app := cfg.App
	if app == nil {
		app = server.Jas2004App()
	}
	// Load before enabling the WAL: the initial population is the
	// checkpointed base image, not logged traffic.
	if err := app.LoadDB(database, cfg.IR, cfg.Seed); err != nil {
		return nil, err
	}
	if err := database.EnableWAL(8); err != nil {
		return nil, err
	}
	scfg := server.DefaultConfig(cfg.IR)
	scfg.App = app
	scfg.CPUFactor = cpuFactor
	scfg.Seed = cfg.Seed
	if cfg.BaselineCacheBytes != 0 {
		scfg.BaselineCacheBytes = cfg.BaselineCacheBytes
	} else if auto := cfg.HeapBytes / 5; auto < scfg.BaselineCacheBytes {
		scfg.BaselineCacheBytes = auto
	}
	srv, err := server.New(scfg, layout, jit, heap, database)
	if err != nil {
		return nil, err
	}
	hier, err := power4.NewHierarchy(cfg.Topology)
	if err != nil {
		return nil, err
	}
	sut := &SUT{
		Config: cfg, Layout: layout, Heap: heap, JIT: jit,
		DB: database, Pool: pool, Server: srv, Hier: hier,
	}
	for i := 0; i < hier.Cores(); i++ {
		cc := cfg.Core
		cc.ID = i
		core, err := power4.NewCore(cc, hier, layout.Space)
		if err != nil {
			return nil, err
		}
		sut.Cores = append(sut.Cores, core)
	}
	return sut, nil
}

// AggregateCounters sums the per-core counters; it implements
// hpm.CounterSource for system-wide sampling the way the paper's hpmstat
// collected user-level data across all processors.
func (s *SUT) AggregateCounters() power4.Counters {
	var sum power4.Counters
	for _, c := range s.Cores {
		ctr := c.Counters()
		sum.AddAll(&ctr)
	}
	return sum
}

// counterSource adapts SUT to hpm.CounterSource.
type counterSource struct{ s *SUT }

// Counters implements hpm.CounterSource.
func (cs counterSource) Counters() power4.Counters { return cs.s.AggregateCounters() }
