package sim

import (
	"reflect"
	"testing"

	"jasworkload/internal/power4"
)

// TestEnginePipelinedEquivalence is the whole-run determinism guard: a
// full detail-mode engine run must produce byte-identical windows and
// counters whether the stream runs through the decoupled pipeline or the
// fused loop. This exercises the window drain barrier — the per-window
// CPI read feeds the capacity model, so a counter that lagged the
// barrier by even one batch would change scheduling and cascade into
// different windows.
func TestEnginePipelinedEquivalence(t *testing.T) {
	run := func(pipelined bool) ([]WindowStats, []power4.Counters) {
		sut := smallSUT(t, 8)
		ecfg := DefaultEngineConfig()
		ecfg.DurationMS = 12_000
		ecfg.RampMS = 2_000
		ecfg.DetailFrac = 0.02
		ecfg.Pipelined = pipelined
		ecfg.Sharded = false // this guard compares the pipeline against the fused loop
		e, err := NewEngine(ecfg, sut)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		perCore := make([]power4.Counters, len(sut.Cores))
		for i, c := range sut.Cores {
			perCore[i] = c.Counters()
		}
		return e.Windows(), perCore
	}

	fusedWin, fusedCtr := run(false)
	pipeWin, pipeCtr := run(true)

	if !reflect.DeepEqual(fusedWin, pipeWin) {
		for i := range fusedWin {
			if i < len(pipeWin) && !reflect.DeepEqual(fusedWin[i], pipeWin[i]) {
				t.Fatalf("window %d diverged:\nfused %+v\npiped %+v", i, fusedWin[i], pipeWin[i])
			}
		}
		t.Fatalf("window counts diverged: fused %d, pipelined %d", len(fusedWin), len(pipeWin))
	}
	for i := range fusedCtr {
		if fusedCtr[i] != pipeCtr[i] {
			for _, ev := range power4.AllEvents() {
				if fusedCtr[i].Get(ev) != pipeCtr[i].Get(ev) {
					t.Errorf("core %d %v: fused %d, pipelined %d",
						i, ev, fusedCtr[i].Get(ev), pipeCtr[i].Get(ev))
				}
			}
		}
	}
	// The run must actually have exercised detail mode.
	var total power4.Counters
	for i := range fusedCtr {
		total.AddAll(&fusedCtr[i])
	}
	if total.Get(power4.EvInstCompleted) == 0 {
		t.Fatal("detail run completed no instructions; the equivalence is hollow")
	}
}

// TestEnginePipelineTeardown: an engine abandoned after RunContext (both
// completed and aborted runs) must leave no pipeline attached — Step
// called on a finished engine or a fresh engine must keep working against
// the fused path.
func TestEnginePipelineTeardown(t *testing.T) {
	sut := smallSUT(t, 8)
	e := shortEngine(t, sut, 3_000, 1_000, 0.02)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.pipe != nil {
		t.Fatal("pipeline survived RunContext")
	}
	if e.shard != nil {
		t.Fatal("shard group survived RunContext")
	}
}
