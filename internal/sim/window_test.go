package sim

import (
	"reflect"
	"testing"
)

// TestWindowFuncObservesWithoutPerturbing runs the same configuration
// twice — once bare, once with a WindowFunc attached — and requires the
// recorded windows to be identical. The observer must also see exactly the
// sequence Windows() keeps, in order.
func TestWindowFuncObservesWithoutPerturbing(t *testing.T) {
	run := func(fn WindowFunc) []WindowStats {
		e := shortEngine(t, smallSUT(t, 8), 30_000, 5_000, 0.02)
		e.SetWindowFunc(fn)
		ws, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return ws
	}

	bare := run(nil)
	var seen []WindowStats
	observed := run(func(ws WindowStats) { seen = append(seen, ws) })

	if !reflect.DeepEqual(bare, observed) {
		t.Fatalf("attaching a WindowFunc changed Windows(): %d vs %d windows", len(bare), len(observed))
	}
	if !reflect.DeepEqual(seen, observed) {
		t.Fatalf("observer saw %d windows, engine recorded %d", len(seen), len(observed))
	}
	for i, w := range seen {
		if w.Index != i {
			t.Fatalf("window %d delivered out of order (Index=%d)", i, w.Index)
		}
	}
}

// TestWindowFuncDetach verifies a nil SetWindowFunc stops deliveries.
func TestWindowFuncDetach(t *testing.T) {
	e := shortEngine(t, smallSUT(t, 8), 5_000, 1_000, 0)
	calls := 0
	e.SetWindowFunc(func(WindowStats) { calls++ })
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	e.SetWindowFunc(nil)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}
