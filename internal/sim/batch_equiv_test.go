package sim

import (
	"testing"

	"jasworkload/internal/isa"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
)

// recordDetailTrace drives the real emitter through a mix of request
// classes plus GC and idle work, capturing the exact instruction stream
// the detail path would feed a core.
func recordDetailTrace(t *testing.T) []isa.Instr {
	t.Helper()
	sut, err := BuildSUT(DefaultSUTConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	rec := &isa.Recorder{}
	types := []server.RequestType{
		server.ReqBrowse, server.ReqPurchase, server.ReqManage,
		server.ReqCreateVehicle, server.ReqBrowse, server.ReqPurchase,
	}
	now := 0.0
	for round := 0; round < 8; round++ {
		for _, rt := range types {
			if _, err := sut.Server.Execute(now, rt, rec, 0.05); err != nil {
				t.Fatal(err)
			}
			now += 33
		}
		sut.Server.EmitGC(rec, 4000)
		sut.Server.EmitIdle(rec, 2000)
	}
	if len(rec.Trace) < 100_000 {
		t.Fatalf("recorded only %d instructions; trace too small to be meaningful", len(rec.Trace))
	}
	return rec.Trace
}

// TestDetailStreamEquivalence is the end-to-end batching guarantee at
// the sim layer: the same emitter-produced trace streamed through (a)
// the pre-change reference path (per-instruction Consume, fast paths
// off) and (b) the production batched path (ConsumeBatch, fast paths on)
// must leave identical HPM counters in the core.
func TestDetailStreamEquivalence(t *testing.T) {
	trace := recordDetailTrace(t)

	run := func(batched, fast bool) power4.Counters {
		sut, err := BuildSUT(DefaultSUTConfig(30))
		if err != nil {
			t.Fatal(err)
		}
		core := sut.Cores[0]
		core.SetFastPaths(fast)
		sut.Hier.SetFastPaths(fast)
		if batched {
			isa.Replay(trace, core, isa.DefaultBatchCap)
		} else {
			for i := range trace {
				core.Consume(&trace[i])
			}
		}
		return core.Counters()
	}

	// The pipelined path: the same trace fed through the decoupled
	// three-stage pipeline, at several stage-buffer sizes (batch-boundary
	// and ring-depth invariance is part of the guarantee).
	runPipelined := func(batchCap, depth int) power4.Counters {
		sut, err := BuildSUT(DefaultSUTConfig(30))
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := power4.NewPipeline(sut.Cores, sut.Hier, power4.PipelineConfig{BatchCap: batchCap, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		isa.Replay(trace, pipe.Sink(0), isa.DefaultBatchCap)
		pipe.Close()
		return sut.Cores[0].Counters()
	}

	want := run(false, false) // the pre-change model
	got := run(true, true)    // the fused production path
	for _, ev := range power4.AllEvents() {
		if got.Get(ev) != want.Get(ev) {
			t.Errorf("%v: batched+fast = %d, reference = %d", ev, got.Get(ev), want.Get(ev))
		}
	}
	for _, pc := range []struct{ cap, depth int }{
		{1, 1}, {7, 2}, {256, 4}, {4096, 4},
	} {
		gotP := runPipelined(pc.cap, pc.depth)
		for _, ev := range power4.AllEvents() {
			if gotP.Get(ev) != want.Get(ev) {
				t.Errorf("pipelined cap=%d depth=%d: %v = %d, reference = %d",
					pc.cap, pc.depth, ev, gotP.Get(ev), want.Get(ev))
			}
		}
	}

	// Sanity: the real emitter trace must exercise the model broadly, or
	// the equality above is hollow.
	for _, ev := range []power4.Event{
		power4.EvLoads, power4.EvStores, power4.EvBrCond, power4.EvBrIndirect,
		power4.EvLarx, power4.EvStcx, power4.EvSyncCount, power4.EvKernelInst,
		power4.EvL1DLoadMiss, power4.EvL1IMiss, power4.EvDERATMiss,
	} {
		if want.Get(ev) == 0 {
			t.Errorf("emitter trace never produced %v", ev)
		}
	}
}
