// Package jvm models the Java virtual machine the paper's workload runs
// on: a JIT compiler with a method universe whose runtime profile is
// calibrated to the paper's "flat profile" findings (Section 4.1.2), and a
// flat-heap, non-generational mark-sweep-compact garbage collector with
// verbosegc-style statistics (Section 4.1.1).
package jvm

import (
	"fmt"
	"math/rand"
	"sort"
)

// Component classifies who owns a Java method, matching the paper's
// Figure 4 breakdown of JIT-compiled code: about 76% of it is WebSphere,
// Enterprise Java Services and Java library code, and only ~2% of overall
// CPU is the jas2004 benchmark code itself.
type Component uint8

// Method-owning components inside the application-server JVM.
const (
	CompWebSphere Component = iota // WebSphere application server classes
	CompEJS                        // Enterprise Java Services (EJB container)
	CompJavaLib                    // java.* / javax.* library code
	CompJas2004                    // the benchmark application itself
	CompOther                      // everything else (ORB, XML, logging, ...)
	numComponents
)

// NumComponents is the number of method-owning components.
const NumComponents = int(numComponents)

var componentNames = [...]string{
	CompWebSphere: "WebSphere",
	CompEJS:       "EJS",
	CompJavaLib:   "JavaLib",
	CompJas2004:   "jas2004",
	CompOther:     "Other",
}

// String names the component.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", uint8(c))
}

// MethodID identifies a method in the universe.
type MethodID uint32

// Method is one Java method known to the JVM.
type Method struct {
	ID        MethodID
	Name      string
	Component Component
	Weight    float64 // fraction of JITed-code CPU time (sums to 1)
	CodeSize  uint32  // bytes of JIT-compiled code
	BodyLen   int     // abstract instructions per invocation

	// Mutable JIT state.
	Invocations uint64
	Compiled    bool
	OptLevel    int
	CodeAddr    uint64 // address in the JIT code cache once compiled
}

// ProfileConfig parameterizes the flat-profile generator. Defaults encode
// the paper's measured facts:
//
//   - 8,500 JITed methods
//   - the hottest method (a char-to-byte converter) is <1% of overall time
//   - 224 methods cover 50% of JITed-code time
//   - ~76% of JITed time is WebSphere + EJS + JavaLib, ~3% is jas2004 code
type ProfileConfig struct {
	NumMethods int
	WarmSet    int     // methods covering WarmShare of the time
	WarmShare  float64 // fraction of JITed time in the warm set
	TopCap     float64 // max weight of the single hottest method
	Seed       int64
	// ComponentMix is the share of JITed time per component, indexed by
	// Component. The zero value selects the paper's measured mix.
	ComponentMix [NumComponents]float64
}

// DefaultProfileConfig returns the paper-calibrated configuration.
func DefaultProfileConfig() ProfileConfig {
	return ProfileConfig{
		NumMethods: 8500,
		WarmSet:    224,
		WarmShare:  0.50,
		TopCap:     0.018, // <1% of overall CPU once JITed code is ~45% of it
		Seed:       1,
	}
}

// defaultComponentMix is the paper's share of JITed time per component.
var defaultComponentMix = [NumComponents]float64{
	CompWebSphere: 0.42,
	CompEJS:       0.18,
	CompJavaLib:   0.16,
	CompJas2004:   0.03, // ~2% of overall CPU
	CompOther:     0.21,
}

// GenerateMethods builds a deterministic method universe whose weight
// distribution satisfies the flat-profile constraints. Weights are
// normalized to sum to 1 over the universe.
func GenerateMethods(cfg ProfileConfig) ([]*Method, error) {
	if cfg.NumMethods <= 0 || cfg.WarmSet <= 0 || cfg.WarmSet >= cfg.NumMethods {
		return nil, fmt.Errorf("jvm: bad profile config %+v", cfg)
	}
	if cfg.WarmShare <= 0 || cfg.WarmShare >= 1 || cfg.TopCap <= 0 {
		return nil, fmt.Errorf("jvm: bad profile shares %+v", cfg)
	}
	mix := cfg.ComponentMix
	if mix == ([NumComponents]float64{}) {
		mix = defaultComponentMix
	}
	var mixSum float64
	for _, v := range mix {
		if v < 0 {
			return nil, fmt.Errorf("jvm: negative component share in %v", mix)
		}
		mixSum += v
	}
	if mixSum <= 0 {
		return nil, fmt.Errorf("jvm: component mix sums to %v", mixSum)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Two-regime weight model: a warm set with a mild Zipf inside it, and a
	// long, even flatter tail. A single Zipf cannot simultaneously give
	// "224 methods = 50%" and "top method < 1%" over 8,500 methods; the
	// paper's profile is flatter than Zipf at the head.
	weights := make([]float64, cfg.NumMethods)
	var warmSum float64
	for i := 0; i < cfg.WarmSet; i++ {
		weights[i] = 1 / float64(i+8) // shifted to flatten the head
		warmSum += weights[i]
	}
	for i := 0; i < cfg.WarmSet; i++ {
		weights[i] *= cfg.WarmShare / warmSum
	}
	var tailSum float64
	for i := cfg.WarmSet; i < cfg.NumMethods; i++ {
		weights[i] = 1 / float64(i+64)
		tailSum += weights[i]
	}
	for i := cfg.WarmSet; i < cfg.NumMethods; i++ {
		weights[i] *= (1 - cfg.WarmShare) / tailSum
	}
	// Cap the hottest method, spilling the excess into the warm tail.
	if weights[0] > cfg.TopCap {
		excess := weights[0] - cfg.TopCap
		weights[0] = cfg.TopCap
		per := excess / float64(cfg.WarmSet-1)
		for i := 1; i < cfg.WarmSet; i++ {
			weights[i] += per
		}
	}

	// Assign components. The hottest method is the paper's char-to-byte
	// converter (a Java library conversion routine).
	methods := make([]*Method, cfg.NumMethods)
	compOf := makeComponentAssigner(rng, mix)
	for i := range methods {
		comp := compOf()
		name := fmt.Sprintf("%s.m%04d", componentNames[comp], i)
		if i == 0 {
			comp = CompJavaLib
			name = "JavaLib.io.CharToByteConverter.convert"
		}
		// Code sizes: log-uniform 256 B .. 16 KB, hot methods bigger due to
		// aggressive inlining.
		size := uint32(256 << uint(rng.Intn(7)))
		if i < cfg.WarmSet {
			size *= 2
		}
		methods[i] = &Method{
			ID:        MethodID(i),
			Name:      name,
			Component: comp,
			Weight:    weights[i],
			CodeSize:  size,
			BodyLen:   40 + rng.Intn(360),
		}
	}
	return methods, nil
}

// makeComponentAssigner returns a sampler over components matching the
// given mix.
func makeComponentAssigner(rng *rand.Rand, mix [NumComponents]float64) func() Component {
	comps := make([]Component, 0, NumComponents)
	cum := make([]float64, 0, NumComponents)
	var c float64
	for comp := Component(0); comp < numComponents; comp++ {
		c += mix[comp]
		comps = append(comps, comp)
		cum = append(cum, c)
	}
	return func() Component {
		x := rng.Float64() * cum[len(cum)-1]
		for i, v := range cum {
			if x <= v {
				return comps[i]
			}
		}
		return comps[len(comps)-1]
	}
}

// ProfileStats summarizes a weight distribution the way tprof would.
type ProfileStats struct {
	Methods        int
	TopWeight      float64 // hottest method's share of JITed time
	Top224Share    float64 // share of the 224 hottest methods
	ComponentShare map[Component]float64
	TotalCodeBytes uint64
}

// AnalyzeProfile computes the flat-profile statistics for a universe.
func AnalyzeProfile(methods []*Method) ProfileStats {
	ws := make([]float64, len(methods))
	var st ProfileStats
	st.Methods = len(methods)
	st.ComponentShare = map[Component]float64{}
	for i, m := range methods {
		ws[i] = m.Weight
		st.ComponentShare[m.Component] += m.Weight
		st.TotalCodeBytes += uint64(m.CodeSize)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	if len(ws) > 0 {
		st.TopWeight = ws[0]
	}
	n := 224
	if n > len(ws) {
		n = len(ws)
	}
	for _, w := range ws[:n] {
		st.Top224Share += w
	}
	return st
}
