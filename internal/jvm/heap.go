package jvm

import (
	"errors"
	"fmt"
	"sort"

	"jasworkload/internal/mem"
)

// ObjID identifies a live heap object.
type ObjID uint32

// nilObj marks an unused object-table slot.
const nilObj = ^ObjID(0)

// GCConfig parameterizes the flat-heap, non-generational
// mark-sweep-compact collector (the paper's J9 throughput collector).
type GCConfig struct {
	// MinReuseBytes: free chunks smaller than this are not put on the free
	// list. They are the paper's "dark matter", reclaimed only by
	// compaction or by coalescing with a freed neighbor.
	MinReuseBytes uint64
	// LowWaterBytes: a collection is requested when allocatable free space
	// drops below this.
	LowWaterBytes uint64

	// Pause-time model (simulated nanoseconds).
	MarkNsPerObj     float64
	MarkNsPerByte    float64 // live bytes traversed
	SweepNsPerObj    float64 // dead objects reclaimed
	SweepNsPerByte   float64 // whole heap walked
	CompactNsPerByte float64 // live bytes moved
}

// DefaultGCConfig returns timings calibrated to the paper's Figure 3
// (300-400 ms pauses at ~195 MB live in a 1 GB heap, mark ~80% of pause).
func DefaultGCConfig() GCConfig {
	return GCConfig{
		MinReuseBytes:    768,
		LowWaterBytes:    24 << 20,
		MarkNsPerObj:     260,
		MarkNsPerByte:    1.35,
		SweepNsPerObj:    110,
		SweepNsPerByte:   0.055,
		CompactNsPerByte: 2.2,
	}
}

// GCEvent is one verbosegc record.
type GCEvent struct {
	Seq        int
	AtMS       float64 // simulated time of the collection
	MarkMS     float64
	SweepMS    float64
	CompactMS  float64
	Compacted  bool
	LiveBytes  uint64 // reachable bytes after mark
	FreedBytes uint64
	DarkBytes  uint64 // accumulated dark matter after sweep
	FreeBytes  uint64 // allocatable free space after sweep
	UsedBytes  uint64 // heap minus allocatable free (live + dark + fragmentation)
	LiveObjs   int
}

// PauseMS is the total stop-the-world pause.
func (e GCEvent) PauseMS() float64 { return e.MarkMS + e.SweepMS + e.CompactMS }

// ErrHeapFull is returned when an allocation cannot be satisfied; the
// mutator should collect and retry (and compact if it persists).
var ErrHeapFull = errors.New("jvm: heap full")

type span struct{ addr, size uint64 }

type object struct {
	addr   uint64
	size   uint32
	refs   []ObjID
	alive  bool
	marked uint32 // mark epoch
}

// Heap is the flat Java heap: an object table, an address-ordered free
// list, dark-matter tracking and the collector.
type Heap struct {
	cfg    GCConfig
	region *mem.Region

	objects []object
	freeIDs []ObjID
	roots   map[ObjID]struct{}

	free []span // address-sorted, allocatable (size >= MinReuseBytes)
	dark []span // address-sorted, too small to reuse
	next int    // next-fit cursor into free

	epoch     uint32
	liveBytes uint64 // as of the last mark
	allocated uint64 // bytes currently allocated to objects
	gcSeq     int
	events    []GCEvent

	// GC scratch space, retained across collections so steady-state
	// collects allocate nothing (they are the hottest allocation sites
	// in a full report build otherwise).
	markScratch    []ObjID
	spanScratch    []span
	mergeScratch   []span
	compactScratch []compactPair
}

// compactPair is Compact's per-live-object scratch record.
type compactPair struct {
	id   ObjID
	addr uint64
}

// NewHeap builds a heap over the given region.
func NewHeap(cfg GCConfig, region *mem.Region) (*Heap, error) {
	if region == nil || region.Size == 0 {
		return nil, fmt.Errorf("jvm: nil or empty heap region")
	}
	if cfg.MinReuseBytes == 0 {
		return nil, fmt.Errorf("jvm: zero MinReuseBytes")
	}
	return &Heap{
		cfg:    cfg,
		region: region,
		roots:  map[ObjID]struct{}{},
		free:   []span{{addr: region.Base, size: region.Size}},
	}, nil
}

// Size returns the heap capacity in bytes.
func (h *Heap) Size() uint64 { return h.region.Size }

// FreeBytes returns the allocatable free space.
func (h *Heap) FreeBytes() uint64 {
	var n uint64
	for _, s := range h.free {
		n += s.size
	}
	return n
}

// DarkBytes returns the accumulated dark matter.
func (h *Heap) DarkBytes() uint64 {
	var n uint64
	for _, s := range h.dark {
		n += s.size
	}
	return n
}

// UsedBytes returns heap size minus allocatable free space — what verbosegc
// reports as "used", which the paper observes growing ~1 MB/min from dark
// matter even though the reachable set is stable.
func (h *Heap) UsedBytes() uint64 { return h.region.Size - h.FreeBytes() }

// AllocatedBytes returns bytes held by live (not yet collected) objects.
func (h *Heap) AllocatedBytes() uint64 { return h.allocated }

// LiveBytes returns the reachable bytes measured by the last mark phase.
func (h *Heap) LiveBytes() uint64 { return h.liveBytes }

// LiveObjects returns the number of allocated objects.
func (h *Heap) LiveObjects() int {
	n := 0
	for i := range h.objects {
		if h.objects[i].alive {
			n++
		}
	}
	return n
}

// NeedsGC reports whether free space fell under the low-water mark.
func (h *Heap) NeedsGC() bool { return h.FreeBytes() < h.cfg.LowWaterBytes }

// Alloc allocates size bytes and returns the new object. refs are the
// object's outgoing references (they must be alive). The object is
// unreachable until referenced by a root or another object.
func (h *Heap) Alloc(size uint32, refs ...ObjID) (ObjID, error) {
	if size == 0 {
		return nilObj, errors.New("jvm: zero-size allocation")
	}
	sz := (uint64(size) + 15) &^ 15 // 16-byte alignment like J9
	addr, ok := h.carve(sz)
	if !ok {
		return nilObj, ErrHeapFull
	}
	var id ObjID
	if n := len(h.freeIDs); n > 0 {
		id = h.freeIDs[n-1]
		h.freeIDs = h.freeIDs[:n-1]
	} else {
		h.objects = append(h.objects, object{})
		id = ObjID(len(h.objects) - 1)
	}
	o := &h.objects[id]
	o.addr = addr
	o.size = uint32(sz)
	o.refs = append(o.refs[:0], refs...)
	o.alive = true
	o.marked = 0
	h.allocated += sz
	return id, nil
}

// carve takes sz bytes from the free list (next-fit with wraparound).
func (h *Heap) carve(sz uint64) (uint64, bool) {
	n := len(h.free)
	if n == 0 {
		return 0, false
	}
	if h.next >= n {
		h.next = 0
	}
	for k := 0; k < n; k++ {
		i := (h.next + k) % n
		s := &h.free[i]
		if s.size < sz {
			continue
		}
		addr := s.addr
		s.addr += sz
		s.size -= sz
		if s.size < h.cfg.MinReuseBytes {
			// The remainder is too small to allocate from; it becomes dark
			// matter unless it is zero.
			if s.size > 0 {
				h.insertDark(span{addr: s.addr, size: s.size})
			}
			h.free = append(h.free[:i], h.free[i+1:]...)
			h.next = i
		} else {
			h.next = i
		}
		return addr, true
	}
	return 0, false
}

func (h *Heap) insertDark(s span) {
	i := sort.Search(len(h.dark), func(i int) bool { return h.dark[i].addr >= s.addr })
	h.dark = append(h.dark, span{})
	copy(h.dark[i+1:], h.dark[i:])
	h.dark[i] = s
}

// AddRoot makes id a GC root (thread stack, static, session registry...).
func (h *Heap) AddRoot(id ObjID) { h.roots[id] = struct{}{} }

// RemoveRoot drops a root; the object (graph) becomes collectable unless
// referenced elsewhere.
func (h *Heap) RemoveRoot(id ObjID) { delete(h.roots, id) }

// AddRef appends a reference from parent to child (e.g., a cache insert).
// References arrive one at a time, so the ref list skips the 1→2→4
// doubling ladder and jumps straight to a small headroom — across a run
// that ladder was the single largest allocation count in BuildReport.
func (h *Heap) AddRef(parent, child ObjID) {
	o := &h.objects[parent]
	if len(o.refs) == cap(o.refs) && cap(o.refs) < 8 {
		refs := make([]ObjID, len(o.refs), 8)
		copy(refs, o.refs)
		o.refs = refs
	}
	o.refs = append(o.refs, child)
}

// ClearRefs drops all outgoing references of id (e.g., a cache clear).
func (h *Heap) ClearRefs(id ObjID) { h.objects[id].refs = h.objects[id].refs[:0] }

// Addr returns the heap address of an object (for the memory trace).
func (h *Heap) Addr(id ObjID) uint64 { return h.objects[id].addr }

// ObjSize returns the allocated size of an object.
func (h *Heap) ObjSize(id ObjID) uint32 { return h.objects[id].size }

// Alive reports whether the object has not been collected.
func (h *Heap) Alive(id ObjID) bool { return int(id) < len(h.objects) && h.objects[id].alive }

// Refs returns the outgoing references of id.
func (h *Heap) Refs(id ObjID) []ObjID { return h.objects[id].refs }

// Collect runs a stop-the-world mark-sweep at simulated time nowMS and
// returns the verbosegc event. Compaction does not run here; it is a
// separate decision (see Compact), matching the paper's observation that
// no compaction occurred in the measured hour.
func (h *Heap) Collect(nowMS float64) GCEvent {
	h.epoch++
	// --- Mark ---
	var liveBytes uint64
	var liveObjs int
	stack := h.markScratch[:0]
	for id := range h.roots {
		if h.objects[id].alive && h.objects[id].marked != h.epoch {
			h.objects[id].marked = h.epoch
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := &h.objects[id]
		liveBytes += uint64(o.size)
		liveObjs++
		for _, r := range o.refs {
			ro := &h.objects[r]
			if ro.alive && ro.marked != h.epoch {
				ro.marked = h.epoch
				stack = append(stack, r)
			}
		}
	}
	h.markScratch = stack
	markMS := (h.cfg.MarkNsPerObj*float64(liveObjs) + h.cfg.MarkNsPerByte*float64(liveBytes)) / 1e6

	// --- Sweep ---
	freedSpans := h.spanScratch[:0]
	var freed uint64
	var deadObjs int
	for i := range h.objects {
		o := &h.objects[i]
		if o.alive && o.marked != h.epoch {
			freedSpans = append(freedSpans, span{addr: o.addr, size: uint64(o.size)})
			freed += uint64(o.size)
			deadObjs++
			o.alive = false
			// Keep the refs capacity: the id goes onto the free list and
			// the next Alloc/AddRef cycle on this slot refills in place
			// instead of re-growing a fresh slice per recycled object.
			o.refs = o.refs[:0]
			h.freeIDs = append(h.freeIDs, ObjID(i))
		}
	}
	h.allocated -= freed
	h.coalesce(freedSpans)
	h.spanScratch = freedSpans
	sweepMS := (h.cfg.SweepNsPerObj*float64(deadObjs) + h.cfg.SweepNsPerByte*float64(h.region.Size)) / 1e6

	h.liveBytes = liveBytes
	h.gcSeq++
	ev := GCEvent{
		Seq:        h.gcSeq,
		AtMS:       nowMS,
		MarkMS:     markMS,
		SweepMS:    sweepMS,
		LiveBytes:  liveBytes,
		FreedBytes: freed,
		DarkBytes:  h.DarkBytes(),
		FreeBytes:  h.FreeBytes(),
		UsedBytes:  h.UsedBytes(),
		LiveObjs:   liveObjs,
	}
	h.events = append(h.events, ev)
	return ev
}

// coalesce merges freed spans with the free and dark lists, reclassifying
// merged chunks: anything >= MinReuseBytes becomes allocatable; smaller
// remains dark matter.
func (h *Heap) coalesce(freed []span) {
	// free and dark are address-sorted invariants; only the freshly freed
	// spans (ordered by object id, not address) need sorting. A 3-way
	// merge then visits every span once, coalescing adjacent ones as they
	// stream out, instead of re-sorting the whole span population.
	sort.Slice(freed, func(i, j int) bool { return freed[i].addr < freed[j].addr })
	merged := h.mergeScratch[:0]
	a, b, c := h.free, h.dark, freed
	for len(a) > 0 || len(b) > 0 || len(c) > 0 {
		var s span
		switch {
		case len(a) > 0 && (len(b) == 0 || a[0].addr <= b[0].addr) && (len(c) == 0 || a[0].addr <= c[0].addr):
			s, a = a[0], a[1:]
		case len(b) > 0 && (len(c) == 0 || b[0].addr <= c[0].addr):
			s, b = b[0], b[1:]
		default:
			s, c = c[0], c[1:]
		}
		if n := len(merged); n > 0 && merged[n-1].addr+merged[n-1].size == s.addr {
			merged[n-1].size += s.size
		} else {
			merged = append(merged, s)
		}
	}
	// Every input span has been consumed into the merge scratch, so the
	// free and dark backing arrays are dead values here and safe to
	// refill in place.
	h.free = h.free[:0]
	h.dark = h.dark[:0]
	for _, s := range merged {
		if s.size >= h.cfg.MinReuseBytes {
			h.free = append(h.free, s)
		} else {
			h.dark = append(h.dark, s)
		}
	}
	h.mergeScratch = merged[:0]
	h.next = 0
}

// Compact slides all live objects to the bottom of the heap, eliminating
// fragmentation and dark matter, and returns the pause cost. The tuned
// system never needs it during an hour-long run; the heapsweep example
// shows it kicking in for undersized heaps.
func (h *Heap) Compact(nowMS float64) GCEvent {
	live := h.compactScratch[:0]
	for i := range h.objects {
		if h.objects[i].alive {
			live = append(live, compactPair{ObjID(i), h.objects[i].addr})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].addr < live[j].addr })
	cur := h.region.Base
	var moved uint64
	for _, p := range live {
		o := &h.objects[p.id]
		if o.addr != cur {
			o.addr = cur
			moved += uint64(o.size)
		}
		cur += uint64(o.size)
	}
	h.free = h.free[:0]
	if cur < h.region.End() {
		h.free = append(h.free, span{addr: cur, size: h.region.End() - cur})
	}
	h.dark = h.dark[:0] // keep the span list's capacity for post-compact churn
	h.next = 0
	h.compactScratch = live[:0]
	compactMS := h.cfg.CompactNsPerByte * float64(moved) / 1e6
	h.gcSeq++
	ev := GCEvent{
		Seq:       h.gcSeq,
		AtMS:      nowMS,
		CompactMS: compactMS,
		Compacted: true,
		LiveBytes: h.allocated,
		FreeBytes: h.FreeBytes(),
		UsedBytes: h.UsedBytes(),
	}
	h.events = append(h.events, ev)
	return ev
}

// Events returns the verbosegc log.
func (h *Heap) Events() []GCEvent { return h.events }
