package jvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jasworkload/internal/mem"
)

func testHeap(t *testing.T, size uint64) *Heap {
	t.Helper()
	as := mem.NewAddressSpace()
	ps := mem.Page16M
	if size < 16<<20 {
		ps = mem.Page4K
	}
	r, err := as.AddRegion("javaheap", 16<<20, size, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(DefaultGCConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHeapValidation(t *testing.T) {
	if _, err := NewHeap(DefaultGCConfig(), nil); err == nil {
		t.Fatal("nil region accepted")
	}
	as := mem.NewAddressSpace()
	r, _ := as.AddRegion("h", 16<<20, 16<<20, mem.Page16M, false)
	if _, err := NewHeap(GCConfig{}, r); err == nil {
		t.Fatal("zero MinReuseBytes accepted")
	}
}

func TestAllocBasics(t *testing.T) {
	h := testHeap(t, 16<<20)
	id, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Alive(id) {
		t.Fatal("fresh object dead")
	}
	if h.ObjSize(id) != 112 { // 16-byte aligned
		t.Fatalf("size = %d, want 112", h.ObjSize(id))
	}
	if h.Addr(id) < 16<<20 {
		t.Fatalf("address %#x outside region", h.Addr(id))
	}
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if h.AllocatedBytes() != 112 {
		t.Fatalf("allocated = %d", h.AllocatedBytes())
	}
}

func TestAllocAddressesDisjoint(t *testing.T) {
	h := testHeap(t, 16<<20)
	type iv struct{ a, b uint64 }
	var ivs []iv
	for i := 0; i < 1000; i++ {
		id, err := h.Alloc(uint32(16 + i%512))
		if err != nil {
			t.Fatal(err)
		}
		ivs = append(ivs, iv{h.Addr(id), h.Addr(id) + uint64(h.ObjSize(id))})
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].a < ivs[j].b && ivs[j].a < ivs[i].b {
				t.Fatalf("objects %d and %d overlap", i, j)
			}
		}
	}
}

func TestCollectReclaimsUnreachable(t *testing.T) {
	h := testHeap(t, 16<<20)
	root, _ := h.Alloc(1000)
	h.AddRoot(root)
	child, _ := h.Alloc(1000)
	h.AddRef(root, child)
	orphan, _ := h.Alloc(1000)

	ev := h.Collect(1000)
	if !h.Alive(root) || !h.Alive(child) {
		t.Fatal("reachable objects collected")
	}
	if h.Alive(orphan) {
		t.Fatal("orphan survived")
	}
	if ev.LiveObjs != 2 {
		t.Fatalf("live objects = %d, want 2", ev.LiveObjs)
	}
	if ev.FreedBytes != uint64(1008) {
		t.Fatalf("freed = %d, want 1008", ev.FreedBytes)
	}
	if ev.LiveBytes != 2016 {
		t.Fatalf("live = %d", ev.LiveBytes)
	}
	if ev.PauseMS() <= 0 {
		t.Fatal("zero pause")
	}
	if ev.AtMS != 1000 {
		t.Fatal("timestamp lost")
	}
}

func TestCollectTransitiveReachability(t *testing.T) {
	h := testHeap(t, 16<<20)
	// Chain of 100 objects from a root.
	prev, _ := h.Alloc(64)
	h.AddRoot(prev)
	ids := []ObjID{prev}
	for i := 0; i < 99; i++ {
		next, _ := h.Alloc(64)
		h.AddRef(prev, next)
		ids = append(ids, next)
		prev = next
	}
	h.Collect(0)
	for _, id := range ids {
		if !h.Alive(id) {
			t.Fatal("chain member collected")
		}
	}
	// Drop the root: the whole chain dies.
	h.RemoveRoot(ids[0])
	ev := h.Collect(1)
	if ev.LiveObjs != 0 {
		t.Fatalf("live after root drop = %d", ev.LiveObjs)
	}
	for _, id := range ids {
		if h.Alive(id) {
			t.Fatal("chain member survived root drop")
		}
	}
}

func TestCollectCycleDies(t *testing.T) {
	h := testHeap(t, 16<<20)
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	h.AddRef(a, b)
	h.AddRef(b, a) // cycle with no root
	h.Collect(0)
	if h.Alive(a) || h.Alive(b) {
		t.Fatal("unreachable cycle survived mark-sweep")
	}
}

func TestHeapFullAndReuse(t *testing.T) {
	h := testHeap(t, 16<<20)
	var ids []ObjID
	for {
		id, err := h.Alloc(1 << 20)
		if err == ErrHeapFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if len(ids) != 16 {
		t.Fatalf("allocated %d MB objects in a 16 MB heap", len(ids))
	}
	// Nothing rooted: a collection frees everything and allocation resumes.
	h.Collect(0)
	if _, err := h.Alloc(1 << 20); err != nil {
		t.Fatalf("alloc after GC failed: %v", err)
	}
}

func TestDarkMatterAccumulation(t *testing.T) {
	h := testHeap(t, 16<<20)
	// Interleave small long-lived and small short-lived objects: the
	// short-lived ones die surrounded by live neighbors, leaving
	// non-coalescible chunks below MinReuseBytes => dark matter.
	var survivors []ObjID
	for i := 0; i < 2000; i++ {
		keep, _ := h.Alloc(128)
		h.AddRoot(keep)
		survivors = append(survivors, keep)
		_, _ = h.Alloc(128) // dies at next GC
	}
	h.Collect(0)
	if h.DarkBytes() == 0 {
		t.Fatal("no dark matter from interleaved death pattern")
	}
	// Used > live: verbosegc "used" includes the dark matter.
	if h.UsedBytes() <= h.LiveBytes() {
		t.Fatalf("used %d <= live %d despite fragmentation", h.UsedBytes(), h.LiveBytes())
	}
	// Freeing the survivors coalesces the holes away.
	for _, id := range survivors {
		h.RemoveRoot(id)
	}
	h.Collect(1)
	if h.DarkBytes() != 0 {
		t.Fatalf("dark matter %d survived full coalescing", h.DarkBytes())
	}
}

func TestCompactEliminatesDarkMatter(t *testing.T) {
	h := testHeap(t, 16<<20)
	for i := 0; i < 500; i++ {
		keep, _ := h.Alloc(200)
		h.AddRoot(keep)
		_, _ = h.Alloc(200)
	}
	h.Collect(0)
	if h.DarkBytes() == 0 {
		t.Skip("pattern produced no dark matter")
	}
	ev := h.Compact(1)
	if !ev.Compacted || ev.CompactMS <= 0 {
		t.Fatalf("compact event = %+v", ev)
	}
	if h.DarkBytes() != 0 {
		t.Fatal("dark matter survived compaction")
	}
	// One contiguous free chunk at the top.
	if len(h.free) != 1 {
		t.Fatalf("free list has %d chunks after compaction", len(h.free))
	}
	// Objects remain disjoint and inside the region.
	var last uint64
	for i := range h.objects {
		if !h.objects[i].alive {
			continue
		}
		if h.objects[i].addr < last {
			t.Fatal("compaction produced overlapping objects")
		}
		last = h.objects[i].addr + uint64(h.objects[i].size)
	}
}

func TestMarkShareDominatesPause(t *testing.T) {
	h := testHeap(t, 256<<20)
	// Large live set: the paper reports mark is >80% of GC time.
	var root ObjID
	root, _ = h.Alloc(1024)
	h.AddRoot(root)
	for i := 0; i < 20000; i++ {
		id, _ := h.Alloc(8192)
		h.AddRef(root, id)
	}
	ev := h.Collect(0)
	share := ev.MarkMS / ev.PauseMS()
	if share < 0.7 || share > 0.95 {
		t.Fatalf("mark share = %.2f, want ~0.8", share)
	}
}

func TestNeedsGCWatermark(t *testing.T) {
	h := testHeap(t, 64<<20)
	if h.NeedsGC() {
		t.Fatal("fresh heap wants GC")
	}
	for {
		if _, err := h.Alloc(1 << 20); err != nil {
			break
		}
		if h.NeedsGC() {
			return // watermark crossed before exhaustion
		}
	}
	t.Fatal("NeedsGC never triggered")
}

// Property: allocation never hands out overlapping memory even across
// GC cycles with random lifetimes.
func TestAllocGCOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := testHeap(t, 4<<20)
		type rec struct {
			id   ObjID
			addr uint64
			size uint32
		}
		live := map[ObjID]rec{}
		for i := 0; i < 400; i++ {
			size := uint32(16 + rng.Intn(4096))
			id, err := h.Alloc(size)
			if err == ErrHeapFull {
				h.Collect(float64(i))
				// Everything unrooted dies; clear our mirror of unrooted.
				for k, r := range live {
					if !h.Alive(r.id) {
						delete(live, k)
					}
				}
				continue
			}
			if err != nil {
				return false
			}
			if rng.Intn(3) == 0 {
				h.AddRoot(id)
				r := rec{id, h.Addr(id), h.ObjSize(id)}
				for _, o := range live {
					if r.addr < o.addr+uint64(o.size) && o.addr < r.addr+uint64(r.size) {
						return false // overlap with a live object
					}
				}
				live[id] = r
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Accounting invariant: free + used == heap size, and allocated <= used.
func TestHeapAccountingInvariant(t *testing.T) {
	h := testHeap(t, 8<<20)
	rng := rand.New(rand.NewSource(77))
	check := func() {
		t.Helper()
		if h.FreeBytes()+h.UsedBytes() != h.Size() {
			t.Fatalf("free %d + used %d != size %d", h.FreeBytes(), h.UsedBytes(), h.Size())
		}
		if h.AllocatedBytes() > h.UsedBytes() {
			t.Fatalf("allocated %d > used %d", h.AllocatedBytes(), h.UsedBytes())
		}
	}
	for i := 0; i < 2000; i++ {
		id, err := h.Alloc(uint32(16 + rng.Intn(2000)))
		if err == ErrHeapFull {
			h.Collect(float64(i))
		} else if rng.Intn(4) == 0 {
			h.AddRoot(id)
		}
		if i%100 == 0 {
			check()
		}
	}
	check()
}

func TestClearRefs(t *testing.T) {
	h := testHeap(t, 16<<20)
	root, _ := h.Alloc(64)
	h.AddRoot(root)
	child, _ := h.Alloc(64)
	h.AddRef(root, child)
	if len(h.Refs(root)) != 1 {
		t.Fatal("ref not recorded")
	}
	h.ClearRefs(root)
	h.Collect(0)
	if h.Alive(child) {
		t.Fatal("cleared ref kept child alive")
	}
}
