package jvm

import (
	"math"
	"strings"
	"testing"
)

func syntheticEvents() []GCEvent {
	// 26 s apart, 300 ms pauses (80/20 mark/sweep), used growing 1 MB/min.
	var evs []GCEvent
	for i := 0; i < 10; i++ {
		at := float64(i) * 26000
		evs = append(evs, GCEvent{
			Seq:       i + 1,
			AtMS:      at,
			MarkMS:    240,
			SweepMS:   60,
			LiveBytes: 195 << 20,
			UsedBytes: uint64(200<<20) + uint64(at/60000*1024*1024),
		})
	}
	return evs
}

func TestSummarizePaperShape(t *testing.T) {
	elapsed := 10 * 26000.0
	s := Summarize(syntheticEvents(), elapsed)
	if s.Collections != 10 || s.Compactions != 0 {
		t.Fatalf("counts = %d/%d", s.Collections, s.Compactions)
	}
	if math.Abs(s.MeanIntervalSec-26) > 1e-9 {
		t.Fatalf("interval = %v", s.MeanIntervalSec)
	}
	if s.MeanPauseMS != 300 {
		t.Fatalf("pause = %v", s.MeanPauseMS)
	}
	// 300ms per 26s = 1.15% of runtime: the paper's "<2%", table "1.3%".
	if s.PercentOfRuntime < 1.0 || s.PercentOfRuntime > 1.4 {
		t.Fatalf("GC%% = %.2f", s.PercentOfRuntime)
	}
	if math.Abs(s.MarkShare-0.8) > 1e-9 {
		t.Fatalf("mark share = %v", s.MarkShare)
	}
	if math.Abs(s.UsedGrowthMBPerMin-1.0) > 0.01 {
		t.Fatalf("growth = %v MB/min", s.UsedGrowthMBPerMin)
	}
	if math.Abs(s.MeanLiveBytes-float64(195<<20)) > 1 {
		t.Fatalf("live = %v", s.MeanLiveBytes)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 1000)
	if s.Collections != 0 || s.MeanPauseMS != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeCountsCompactions(t *testing.T) {
	evs := []GCEvent{
		{Seq: 1, AtMS: 0, MarkMS: 100, SweepMS: 20},
		{Seq: 2, AtMS: 1000, CompactMS: 500, Compacted: true},
	}
	s := Summarize(evs, 2000)
	if s.Collections != 1 || s.Compactions != 1 {
		t.Fatalf("counts = %d/%d", s.Collections, s.Compactions)
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize(syntheticEvents(), 260000).String()
	for _, want := range []string{"Time Between GC", "GC Time", "Percent of Runtime", "dark matter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFormatVerboseGC(t *testing.T) {
	out := FormatVerboseGC([]GCEvent{
		{Seq: 1, AtMS: 26000, MarkMS: 240, SweepMS: 60, FreeBytes: 800 << 20, LiveBytes: 195 << 20},
		{Seq: 2, AtMS: 30000, CompactMS: 400, Compacted: true},
	})
	if !strings.Contains(out, "<GC(1)") || !strings.Contains(out, "<compact(2)") {
		t.Fatalf("verbosegc format wrong:\n%s", out)
	}
}

func TestSlope(t *testing.T) {
	if s := slope([]float64{0, 1, 2}, []float64{5, 7, 9}); math.Abs(s-2) > 1e-12 {
		t.Fatalf("slope = %v", s)
	}
	if s := slope([]float64{1, 1}, []float64{2, 3}); s != 0 {
		t.Fatalf("degenerate slope = %v", s)
	}
}
