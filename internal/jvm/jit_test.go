package jvm

import (
	"testing"

	"jasworkload/internal/mem"
)

func jitRig(t *testing.T, cacheBytes uint64) (*JIT, []*Method) {
	t.Helper()
	cfg := DefaultProfileConfig()
	cfg.NumMethods = 200
	cfg.WarmSet = 20
	ms, err := GenerateMethods(cfg)
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace()
	r, err := as.AddRegion("jitcode", 16<<20, cacheBytes, mem.Page4K, false)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJIT(DefaultJITConfig(), ms, r)
	if err != nil {
		t.Fatal(err)
	}
	return j, ms
}

func TestNewJITValidation(t *testing.T) {
	if _, err := NewJIT(JITConfig{}, nil, nil); err == nil {
		t.Fatal("bad config accepted")
	}
	ms, _ := GenerateMethods(ProfileConfig{NumMethods: 10, WarmSet: 2, WarmShare: 0.5, TopCap: 0.5, Seed: 1})
	if _, err := NewJIT(DefaultJITConfig(), ms, nil); err == nil {
		t.Fatal("nil cache accepted")
	}
}

func TestCompileAtThreshold(t *testing.T) {
	j, ms := jitRig(t, 16<<20)
	th := DefaultJITConfig().CompileThreshold
	m := ms[5]
	for i := uint64(0); i < th-1; i++ {
		if j.Invoke(m.ID) {
			t.Fatal("compiled before threshold")
		}
	}
	if m.Compiled {
		t.Fatal("compiled early")
	}
	if !j.Invoke(m.ID) {
		t.Fatal("threshold invocation did not compile")
	}
	if !m.Compiled || m.OptLevel != 1 {
		t.Fatalf("state = compiled=%v opt=%d", m.Compiled, m.OptLevel)
	}
	if m.CodeAddr == 0 {
		t.Fatal("no code address assigned")
	}
	c, r := j.Compilations()
	if c != 1 || r != 0 {
		t.Fatalf("compilations = %d/%d", c, r)
	}
}

func TestRecompileAtHigherLevels(t *testing.T) {
	j, ms := jitRig(t, 16<<20)
	m := ms[0]
	cfg := DefaultJITConfig()
	// Drive to max level.
	limit := cfg.CompileThreshold * pow(cfg.RecompileFactor, cfg.MaxOptLevel-1)
	for i := uint64(0); i <= limit; i++ {
		j.Invoke(m.ID)
	}
	if m.OptLevel != cfg.MaxOptLevel {
		t.Fatalf("opt level = %d, want %d", m.OptLevel, cfg.MaxOptLevel)
	}
	_, r := j.Compilations()
	if r != uint64(cfg.MaxOptLevel-1) {
		t.Fatalf("recompiles = %d, want %d", r, cfg.MaxOptLevel-1)
	}
	// Invocations beyond max level never recompile.
	before := m.CodeAddr
	for i := 0; i < 1000; i++ {
		if j.Invoke(m.ID) {
			t.Fatal("recompiled past max level")
		}
	}
	if m.CodeAddr != before {
		t.Fatal("code moved without recompilation")
	}
}

func TestCodeAddressesDisjointAndAligned(t *testing.T) {
	j, ms := jitRig(t, 16<<20)
	th := DefaultJITConfig().CompileThreshold
	for _, m := range ms[:50] {
		for i := uint64(0); i < th; i++ {
			j.Invoke(m.ID)
		}
	}
	type iv struct{ a, b uint64 }
	var ivs []iv
	for _, m := range ms[:50] {
		if !m.Compiled {
			t.Fatalf("method %d not compiled", m.ID)
		}
		if m.CodeAddr%128 != 0 {
			t.Fatalf("code not line-aligned: %#x", m.CodeAddr)
		}
		ivs = append(ivs, iv{m.CodeAddr, m.CodeAddr + uint64(m.CodeSize)})
	}
	for i := range ivs {
		for k := i + 1; k < len(ivs); k++ {
			if ivs[i].a < ivs[k].b && ivs[k].a < ivs[i].b {
				t.Fatalf("code bodies %d and %d overlap", i, k)
			}
		}
	}
	if j.CacheUsed() == 0 {
		t.Fatal("cache usage not tracked")
	}
}

func TestCodeCacheOverflow(t *testing.T) {
	j, ms := jitRig(t, 256<<10) // deliberately tiny cache (64 pages)
	th := DefaultJITConfig().CompileThreshold
	for _, m := range ms {
		for i := uint64(0); i < th; i++ {
			j.Invoke(m.ID)
		}
	}
	if !j.CacheOverflowed() {
		t.Fatal("tiny cache never overflowed")
	}
	// The JIT survives overflow; some methods stay uncompiled.
	uncompiled := 0
	for _, m := range ms {
		if !m.Compiled {
			uncompiled++
		}
	}
	if uncompiled == 0 {
		t.Fatal("all methods fit a cache that should overflow")
	}
}

func TestWarmUp(t *testing.T) {
	j, _ := jitRig(t, 32<<20)
	if j.CompiledShare() != 0 {
		t.Fatal("cold JIT has compiled share")
	}
	spent := j.WarmUp(0.9)
	if spent == 0 {
		t.Fatal("warmup did nothing")
	}
	if s := j.CompiledShare(); s < 0.9 {
		t.Fatalf("compiled share = %.2f after WarmUp(0.9)", s)
	}
	// Warm methods are at max opt level.
	maxed := 0
	for _, m := range j.Methods() {
		if m.OptLevel == DefaultJITConfig().MaxOptLevel {
			maxed++
		}
	}
	if maxed == 0 {
		t.Fatal("no method reached max opt level")
	}
}

func TestMethodAccessor(t *testing.T) {
	j, ms := jitRig(t, 16<<20)
	if j.Method(ms[3].ID) != ms[3] {
		t.Fatal("Method accessor wrong")
	}
	if len(j.Methods()) != len(ms) {
		t.Fatal("Methods accessor wrong")
	}
}
