package jvm

import (
	"math"
	"testing"
)

func TestGenerateMethodsValidation(t *testing.T) {
	bad := []ProfileConfig{
		{},
		{NumMethods: 100, WarmSet: 100, WarmShare: 0.5, TopCap: 0.01},
		{NumMethods: 100, WarmSet: 10, WarmShare: 1.5, TopCap: 0.01},
		{NumMethods: 100, WarmSet: 10, WarmShare: 0.5, TopCap: 0},
	}
	for i, cfg := range bad {
		if _, err := GenerateMethods(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

// The generated universe must satisfy the paper's flat-profile facts.
func TestFlatProfilePaperConstraints(t *testing.T) {
	ms, err := GenerateMethods(DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8500 {
		t.Fatalf("universe = %d methods, want 8500", len(ms))
	}
	st := AnalyzeProfile(ms)
	// Weights sum to 1.
	var sum float64
	for _, m := range ms {
		if m.Weight < 0 {
			t.Fatalf("negative weight on %s", m.Name)
		}
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// "Approximately 50% of the JITed code execution time is spent in 224
	// methods (out of the 8500 methods)".
	if st.Top224Share < 0.45 || st.Top224Share > 0.55 {
		t.Fatalf("top-224 share = %.3f, want ~0.50", st.Top224Share)
	}
	// "The hottest method accounted for <1% of the overall execution time";
	// JITed code is under half of overall, so <2.5% of JITed time.
	if st.TopWeight > 0.025 {
		t.Fatalf("top method = %.4f of JITed time, too hot", st.TopWeight)
	}
	// "About 76% of the JIT compiled code is made up of WebSphere,
	// Enterprise Java Services, and Java Library code."
	wasShare := st.ComponentShare[CompWebSphere] + st.ComponentShare[CompEJS] + st.ComponentShare[CompJavaLib]
	if wasShare < 0.70 || wasShare > 0.82 {
		t.Fatalf("WAS+EJS+JavaLib share = %.3f, want ~0.76", wasShare)
	}
	// jas2004 application code is a small sliver.
	if s := st.ComponentShare[CompJas2004]; s < 0.01 || s > 0.06 {
		t.Fatalf("jas2004 share = %.3f, want ~0.03", s)
	}
	// Multi-megabyte code footprint: larger than the 1.5 MB L2.
	if st.TotalCodeBytes < 4<<20 {
		t.Fatalf("code footprint = %d MB, want multi-megabyte", st.TotalCodeBytes>>20)
	}
	// Hottest method is the paper's char-to-byte converter.
	if ms[0].Name != "JavaLib.io.CharToByteConverter.convert" {
		t.Fatalf("hottest method = %q", ms[0].Name)
	}
}

func TestGenerateMethodsDeterministic(t *testing.T) {
	a, _ := GenerateMethods(DefaultProfileConfig())
	b, _ := GenerateMethods(DefaultProfileConfig())
	for i := range a {
		if a[i].Weight != b[i].Weight || a[i].Name != b[i].Name || a[i].CodeSize != b[i].CodeSize {
			t.Fatalf("universe not deterministic at %d", i)
		}
	}
}

func TestComponentString(t *testing.T) {
	for c := Component(0); c < numComponents; c++ {
		if c.String() == "" {
			t.Fatalf("component %d unnamed", c)
		}
	}
	if Component(99).String() != "component(99)" {
		t.Fatal("out-of-range name wrong")
	}
}

func TestAnalyzeProfileSmallUniverse(t *testing.T) {
	ms := []*Method{
		{Weight: 0.7, Component: CompJas2004, CodeSize: 100},
		{Weight: 0.3, Component: CompJavaLib, CodeSize: 50},
	}
	st := AnalyzeProfile(ms)
	if st.TopWeight != 0.7 || st.Top224Share != 1.0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalCodeBytes != 150 {
		t.Fatalf("code bytes = %d", st.TotalCodeBytes)
	}
}
