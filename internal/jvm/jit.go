package jvm

import (
	"fmt"
	"sort"

	"jasworkload/internal/mem"
)

// JITConfig controls the compilation model.
type JITConfig struct {
	// CompileThreshold is the invocation count at which a method is JIT
	// compiled. The paper notes a long run was needed "to ensure that most
	// 'important' WebSphere and jas2004 Java methods had a chance to be
	// profiled by the JVM runtime and then be JIT-compiled ... at high
	// optimization levels".
	CompileThreshold uint64
	// RecompileFactor: each higher optimization level needs this many times
	// more invocations.
	RecompileFactor uint64
	// MaxOptLevel is the highest optimization level.
	MaxOptLevel int
	// InlineGrowth multiplies code size per optimization level (aggressive
	// method inlining grows the code footprint).
	InlineGrowth float64
}

// DefaultJITConfig returns thresholds typical of a server-mode JIT.
func DefaultJITConfig() JITConfig {
	return JITConfig{
		CompileThreshold: 50,
		RecompileFactor:  20,
		MaxOptLevel:      3,
		InlineGrowth:     1.35,
	}
}

// JIT manages compilation state for the method universe and owns the code
// cache region where compiled method bodies get addresses.
type JIT struct {
	cfg     JITConfig
	methods []*Method
	cache   *mem.Region
	next    uint64 // bump pointer within the code cache

	compilations  uint64
	recompiles    uint64
	cacheOverflow bool
}

// NewJIT builds a JIT over the method universe with code placed in the
// given code-cache region.
func NewJIT(cfg JITConfig, methods []*Method, cache *mem.Region) (*JIT, error) {
	if cfg.CompileThreshold == 0 || cfg.MaxOptLevel < 0 {
		return nil, fmt.Errorf("jvm: bad JIT config %+v", cfg)
	}
	if cache == nil {
		return nil, fmt.Errorf("jvm: nil code cache region")
	}
	return &JIT{cfg: cfg, methods: methods, cache: cache, next: cache.Base}, nil
}

// Methods returns the universe.
func (j *JIT) Methods() []*Method { return j.methods }

// Method returns the method with the given id.
func (j *JIT) Method(id MethodID) *Method { return j.methods[id] }

// Invoke records one invocation of method id and runs the compilation
// policy. It reports whether a (re)compilation happened during this call.
func (j *JIT) Invoke(id MethodID) bool {
	m := j.methods[id]
	m.Invocations++
	switch {
	case !m.Compiled && m.Invocations >= j.cfg.CompileThreshold:
		j.compile(m, 1)
		return true
	case m.Compiled && m.OptLevel < j.cfg.MaxOptLevel &&
		m.Invocations >= j.cfg.CompileThreshold*pow(j.cfg.RecompileFactor, m.OptLevel):
		j.compile(m, m.OptLevel+1)
		return true
	}
	return false
}

func pow(base uint64, exp int) uint64 {
	r := uint64(1)
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}

// compile assigns (or reassigns) code-cache space at the given level.
func (j *JIT) compile(m *Method, level int) {
	size := uint64(float64(m.CodeSize) * powf(j.cfg.InlineGrowth, level-1))
	size = (size + 127) &^ 127 // line-align code bodies
	if j.next+size > j.cache.End() {
		// Code cache exhausted: keep the old body (real JITs flush; the
		// paper's footprint fits the default 64 MB cache).
		j.cacheOverflow = true
		return
	}
	if m.Compiled {
		j.recompiles++
	} else {
		j.compilations++
	}
	m.Compiled = true
	m.OptLevel = level
	m.CodeAddr = j.next
	j.next += size
}

func powf(b float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= b
	}
	return r
}

// Compilations returns (first-time compiles, recompiles).
func (j *JIT) Compilations() (uint64, uint64) { return j.compilations, j.recompiles }

// CacheUsed returns the bytes of code cache consumed.
func (j *JIT) CacheUsed() uint64 { return j.next - j.cache.Base }

// CacheOverflowed reports whether any compilation was rejected for space.
func (j *JIT) CacheOverflowed() bool { return j.cacheOverflow }

// CompiledShare returns the fraction of profile weight that is currently
// JIT compiled — the sim's proxy for "how warmed up is the system".
func (j *JIT) CompiledShare() float64 {
	var comp, total float64
	for _, m := range j.methods {
		total += m.Weight
		if m.Compiled {
			comp += m.Weight
		}
	}
	if total == 0 {
		return 0
	}
	return comp / total
}

// Precompile compiles methods covering the given profile-weight share
// directly at the top optimization level, the way WebSphere's shared-class
// cache / AOT store hands a restarted server warm code. It returns the
// number of methods compiled.
func (j *JIT) Precompile(share float64) int {
	ids := make([]MethodID, len(j.methods))
	for i := range ids {
		ids[i] = MethodID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return j.methods[ids[a]].Weight > j.methods[ids[b]].Weight })
	var covered float64
	n := 0
	for _, id := range ids {
		if covered >= share {
			break
		}
		m := j.methods[id]
		covered += m.Weight
		if !m.Compiled {
			j.compile(m, j.cfg.MaxOptLevel)
			if m.Compiled {
				n++
			}
		}
	}
	return n
}

// WarmUp drives invocations so that methods covering the given share of
// profile weight are compiled at the top optimization level, mimicking the
// paper's long warm-up runs. It returns the number of simulated
// invocations spent.
func (j *JIT) WarmUp(share float64) uint64 {
	// Hot-first: sort ids by weight descending.
	ids := make([]MethodID, len(j.methods))
	for i := range ids {
		ids[i] = MethodID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return j.methods[ids[a]].Weight > j.methods[ids[b]].Weight })
	var spent uint64
	var covered float64
	need := j.cfg.CompileThreshold * pow(j.cfg.RecompileFactor, j.cfg.MaxOptLevel-1)
	for _, id := range ids {
		if covered >= share {
			break
		}
		m := j.methods[id]
		for m.OptLevel < j.cfg.MaxOptLevel {
			if m.Invocations > need*2 {
				break // safety: cache overflow keeps a method below max level
			}
			j.Invoke(id)
			spent++
		}
		covered += m.Weight
	}
	return spent
}
