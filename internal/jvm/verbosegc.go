package jvm

import (
	"fmt"
	"strings"

	"jasworkload/internal/stats"
)

// GCSummary is the Figure 3 table: time between collections, pause length,
// share of runtime spent collecting, mark/sweep split, and the dark-matter
// growth that makes "used" heap creep upward.
type GCSummary struct {
	Collections        int
	Compactions        int
	MeanIntervalSec    float64
	MinIntervalSec     float64
	MaxIntervalSec     float64
	MeanPauseMS        float64
	MinPauseMS         float64
	MaxPauseMS         float64
	PercentOfRuntime   float64 // total pause / elapsed
	MarkShare          float64 // mark time / (mark + sweep)
	MeanLiveBytes      float64
	UsedGrowthMBPerMin float64 // slope of UsedBytes over time
}

// Summarize computes the summary over a verbosegc log covering elapsedMS of
// simulated run time.
func Summarize(events []GCEvent, elapsedMS float64) GCSummary {
	var s GCSummary
	if len(events) == 0 {
		return s
	}
	var intervals, pauses []float64
	var markTotal, sweepTotal, pauseTotal, liveTotal float64
	for i, e := range events {
		if e.Compacted {
			s.Compactions++
		} else {
			s.Collections++
		}
		pauses = append(pauses, e.PauseMS())
		pauseTotal += e.PauseMS()
		markTotal += e.MarkMS
		sweepTotal += e.SweepMS
		liveTotal += float64(e.LiveBytes)
		if i > 0 {
			intervals = append(intervals, (e.AtMS-events[i-1].AtMS)/1000)
		}
	}
	if len(intervals) > 0 {
		s.MeanIntervalSec = stats.Mean(intervals)
		s.MinIntervalSec = stats.Min(intervals)
		s.MaxIntervalSec = stats.Max(intervals)
	}
	s.MeanPauseMS = stats.Mean(pauses)
	s.MinPauseMS = stats.Min(pauses)
	s.MaxPauseMS = stats.Max(pauses)
	if elapsedMS > 0 {
		s.PercentOfRuntime = 100 * pauseTotal / elapsedMS
	}
	if markTotal+sweepTotal > 0 {
		s.MarkShare = markTotal / (markTotal + sweepTotal)
	}
	s.MeanLiveBytes = liveTotal / float64(len(events))
	// Used-bytes slope via least squares over (time, used).
	if len(events) >= 2 {
		var xs, ys []float64
		for _, e := range events {
			xs = append(xs, e.AtMS/60000)                     // minutes
			ys = append(ys, float64(e.UsedBytes)/(1024*1024)) // MB
		}
		s.UsedGrowthMBPerMin = slope(xs, ys)
	}
	return s
}

// slope returns the least-squares slope of y over x.
func slope(x, y []float64) float64 {
	mx, my := stats.Mean(x), stats.Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// String renders the summary as the Figure 3 companion table.
func (s GCSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Collections              %d (+%d compactions)\n", s.Collections, s.Compactions)
	fmt.Fprintf(&b, "Time Between GC (sec)    %.0f-%.0f (mean %.1f)\n", s.MinIntervalSec, s.MaxIntervalSec, s.MeanIntervalSec)
	fmt.Fprintf(&b, "GC Time (ms)             %.0f-%.0f (mean %.0f)\n", s.MinPauseMS, s.MaxPauseMS, s.MeanPauseMS)
	fmt.Fprintf(&b, "Average Percent of Runtime  %.2f%%\n", s.PercentOfRuntime)
	fmt.Fprintf(&b, "Mark share of GC time    %.0f%%\n", 100*s.MarkShare)
	fmt.Fprintf(&b, "Mean live heap           %.0f MB\n", s.MeanLiveBytes/(1024*1024))
	fmt.Fprintf(&b, "Used-heap growth         %.2f MB/min (dark matter)\n", s.UsedGrowthMBPerMin)
	return b.String()
}

// FormatVerboseGC renders events in a verbosegc-like line format.
func FormatVerboseGC(events []GCEvent) string {
	var b strings.Builder
	for _, e := range events {
		kind := "GC"
		if e.Compacted {
			kind = "compact"
		}
		fmt.Fprintf(&b, "<%s(%d) at=%.1fs mark=%.0fms sweep=%.0fms compact=%.0fms free=%dMB live=%dMB dark=%dKB>\n",
			kind, e.Seq, e.AtMS/1000, e.MarkMS, e.SweepMS, e.CompactMS,
			e.FreeBytes>>20, e.LiveBytes>>20, e.DarkBytes>>10)
	}
	return b.String()
}
