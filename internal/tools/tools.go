// Package tools renders the views the paper's measurement utilities
// produced: tprof-style function/component profiles (Figure 4), vmstat-style
// CPU utilization lines, and hpmstat-style counter-group dumps.
package tools

import (
	"fmt"
	"sort"
	"strings"

	"jasworkload/internal/hpm"
	"jasworkload/internal/jvm"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
)

// TProfReport is the function-level profile view.
type TProfReport struct {
	// SegmentShare is the Figure 4 breakdown: fraction of CPU cycles per
	// software component.
	SegmentShare map[server.Segment]float64
	// TopMethods are the hottest JITed methods with their share of JITed
	// time.
	TopMethods []MethodShare
	// MethodsFor50Pct is how many of the hottest methods cover half the
	// JITed time (the paper: 224 of 8500).
	MethodsFor50Pct int
	// TotalMethods is the universe size.
	TotalMethods int
	// HottestOverallShare is the hottest method's share of TOTAL cpu time
	// (the paper: <1%).
	HottestOverallShare float64
}

// MethodShare pairs a method with its JITed-time share.
type MethodShare struct {
	Name      string
	Component jvm.Component
	Share     float64
}

// TProf builds the profile report from the engine's segment accounting and
// the JIT's method universe.
func TProf(segTotals [server.NumSegments]uint64, methods []*jvm.Method, topN int) TProfReport {
	var total uint64
	for _, v := range segTotals {
		total += v
	}
	rep := TProfReport{SegmentShare: map[server.Segment]float64{}, TotalMethods: len(methods)}
	if total == 0 {
		return rep
	}
	for seg := server.Segment(0); seg < server.Segment(server.NumSegments); seg++ {
		rep.SegmentShare[seg] = float64(segTotals[seg]) / float64(total)
	}
	sorted := append([]*jvm.Method(nil), methods...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Weight > sorted[j].Weight })
	var cum float64
	for i, m := range sorted {
		if i < topN {
			rep.TopMethods = append(rep.TopMethods, MethodShare{Name: m.Name, Component: m.Component, Share: m.Weight})
		}
		if cum < 0.5 {
			cum += m.Weight
			if cum >= 0.5 {
				rep.MethodsFor50Pct = i + 1
			}
		}
	}
	if len(sorted) > 0 {
		rep.HottestOverallShare = sorted[0].Weight * rep.SegmentShare[server.SegWASJit]
	}
	return rep
}

// String renders the report.
func (r TProfReport) String() string {
	var b strings.Builder
	b.WriteString("Profile Breakdown - % of Runtime (Figure 4)\n")
	for seg := server.Segment(0); seg < server.Segment(server.NumSegments); seg++ {
		fmt.Fprintf(&b, "  %-14s %5.1f%%\n", seg, 100*r.SegmentShare[seg])
	}
	fmt.Fprintf(&b, "Flat profile: %d of %d methods cover 50%% of JITed time\n",
		r.MethodsFor50Pct, r.TotalMethods)
	fmt.Fprintf(&b, "Hottest method: %.2f%% of overall CPU\n", 100*r.HottestOverallShare)
	for _, m := range r.TopMethods {
		fmt.Fprintf(&b, "  %6.2f%%  %-10s %s\n", 100*m.Share, m.Component, m.Name)
	}
	return b.String()
}

// VMStat renders per-window utilization lines like `vmstat`.
func VMStat(ws []sim.WindowStats) string {
	var b strings.Builder
	b.WriteString(" t(s)   us  sy  id  wa   gc(ms) req/s\n")
	for _, w := range ws {
		var req int
		for _, c := range w.Completions {
			req += c
		}
		fmt.Fprintf(&b, "%5.0f  %3.0f %3.0f %3.0f %3.0f  %6.0f %5d\n",
			w.StartMS/1000, 100*w.UtilUser, 100*w.UtilSys, 100*w.UtilIdle,
			100*w.UtilIOWait, w.GCPauseMS, req)
	}
	return b.String()
}

// HPMStat renders a monitor's samples the way hpmstat prints a counter
// group: one column per event, one row per window.
func HPMStat(m *hpm.Monitor, maxRows int) string {
	var b strings.Builder
	g := m.Group()
	fmt.Fprintf(&b, "hpmstat group %q (window %d ms)\n", g.Name, m.WindowMS())
	fmt.Fprintf(&b, "%8s", "win")
	for _, ev := range g.Events {
		fmt.Fprintf(&b, " %22s", ev)
	}
	b.WriteByte('\n')
	samples := m.Samples()
	if maxRows > 0 && len(samples) > maxRows {
		samples = samples[len(samples)-maxRows:]
	}
	for _, s := range samples {
		fmt.Fprintf(&b, "%8d", s.Window)
		for _, ev := range g.Events {
			fmt.Fprintf(&b, " %22d", s.Values[ev])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
